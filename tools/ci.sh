#!/usr/bin/env bash
# Tier-1 CI gate: configure + build with -Wall -Wextra -Werror, run the
# static-analysis gates (splicer_lint over the tree, clang-tidy over
# compile_commands.json when the binary is available), run the full ctest
# suite, then re-run the fast `smoke` label on its own so the cheap-suite
# subset is exercised exactly as developers use it.
#
# After the unit suites, the fig7 bench runs in its smoke configuration
# three times to pin the batched-settlement contract:
#   1. --threads 1, epoch 0   -> the sequential baseline CSVs, which must
#      also be byte-identical to the frozen pre-refactor baseline in
#      tests/data/fig7_baseline (pins SyntheticSource + streaming engine +
#      the typed pooled-event scheduler: epoch-0 event streams must never
#      drift across refactors)
#   2. default threads, epoch 0 -> must be byte-identical to the baseline
#      (parallel runner AND the epoch-0 engine path change nothing)
#   3. epoch 10 ms            -> batched mode completes with the engine's
#      funds-conservation check intact
#
# The engine hot-path microbench then runs in fast mode and its
# BENCH_engine_hotpath.json is archived in the build dir, so every CI run
# records the events/sec trajectory of the event loop.
#
# Finally the workload subsystem smokes: a trace replay of the checked-in
# example trace through splicer_cli, plus streaming bursty/hotspot runs and
# a streaming --no-retain run (the retention contract), and an ASan+UBSan
# build of the smoke-label ctest subset so eviction-order bugs surface as
# hard errors instead of flakes.
#
# A SPLICER_AUDIT=ON build then runs the smoke-label suites with the
# dynamic contract witnesses compiled in (scheduler heap-order invariant,
# single-writer thread-id asserts on the mailbox lanes) — the runtime
# backstop for what splicer_lint can only approximate statically.
#
# Hostile-world gates (fault injection / channel churn / policy mutators):
#   * the robustness bench runs its fast sweep — it exits nonzero itself if
#     any cell ends with resident TUs or wedged queue value;
#   * explicit rate-0 flags through splicer_cli must reproduce the benign
#     run byte-for-byte (the mutator plumbing is provably dormant at rate
#     0, complementing the fig7 frozen-baseline diff above);
#   * a churn-storm stress (DeadlockUnderChurn) re-runs under the AUDIT
#     build so the close/refund sweeps execute with the dynamic witnesses
#     on, and the mutator + robustness suites re-run under ASan+UBSan.
#
# Sharded-engine gates:
#   * the hot-path JSON must carry the shard-scaling sweep ("shard_sweep"),
#     which doubles as the 1-shard-parity exerciser (the sweep's shards=1
#     point runs through the sharded coordinator);
#   * a splicer_cli --shards 4 run smokes the CLI plumbing;
#   * a ThreadSanitizer build runs the concurrency-bearing suites
#     (sharded scheduler/engine, thread pool, parallel runner) so a data
#     race in the barrier/mailbox protocol is a hard CI error.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . -DSPLICER_WERROR=ON -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "CI: splicer-lint repo-contract gate"
# Hard gate: zero unsuppressed findings across the tree. Every
# SPLICER_LINT_ALLOW must name a rule and carry a reason (bare allows are
# findings too), so this line is the machine check behind the determinism
# contracts README documents under "Static analysis & code contracts".
# The run is timed: the two-phase analysis (scrub + call graph + graph
# rules) must stay cheap enough to sit on the pre-test critical path, so
# a whole-tree pass over budget is itself a CI failure.
LINT_BUDGET_SECS=10
lint_start=$(date +%s)
"$BUILD_DIR/splicer_lint" --error-on-findings src tools bench examples
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "CI: splicer-lint whole-tree run took ${lint_elapsed}s (budget ${LINT_BUDGET_SECS}s)"
if [ "$lint_elapsed" -gt "$LINT_BUDGET_SECS" ]; then
  echo "CI: FAIL splicer-lint exceeded its runtime budget" >&2
  exit 1
fi
# Machine-readable report for the workflow artifact: same tree, SARIF 2.1.0
# with the full rule table as driver metadata.
"$BUILD_DIR/splicer_lint" --format sarif src tools bench examples \
  > "$BUILD_DIR/splicer_lint.sarif"
echo "CI: SARIF report written to $BUILD_DIR/splicer_lint.sarif"

echo "CI: clang-tidy over compile_commands.json"
if command -v clang-tidy >/dev/null 2>&1; then
  # The curated .clang-tidy (bugprone/performance/concurrency/const subset,
  # warnings-as-errors) over every src/ TU. xargs fans out one TU per core;
  # any diagnostic fails the gate.
  find src -name '*.cpp' -print0 |
    xargs -0 -P "$JOBS" -n 1 clang-tidy -p "$BUILD_DIR" --quiet
else
  # The container image has no clang-tidy; the GitHub `lint` job installs
  # it and enforces this gate on every push/PR.
  echo "CI: clang-tidy not found locally; enforced by the workflow lint job"
fi

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L smoke -j "$JOBS"

SMOKE_DIR="$BUILD_DIR/fig7-smoke"
rm -rf "$SMOKE_DIR"
mkdir -p "$SMOKE_DIR/baseline" "$SMOKE_DIR/epoch0"

echo "CI: fig7 smoke, sequential epoch-0 baseline"
SPLICER_BENCH_FAST=1 SPLICER_BENCH_CSV="$SMOKE_DIR/baseline" \
  "$BUILD_DIR/bench_fig7_small_scale" --threads 1 > "$SMOKE_DIR/baseline.txt"

echo "CI: fig7 smoke vs frozen pre-refactor baseline (workload subsystem)"
diff -r tests/data/fig7_baseline "$SMOKE_DIR/baseline"

echo "CI: fig7 smoke, parallel epoch-0 (must match baseline byte-for-byte)"
SPLICER_BENCH_FAST=1 SPLICER_BENCH_CSV="$SMOKE_DIR/epoch0" \
  "$BUILD_DIR/bench_fig7_small_scale" --settlement-epoch 0 > "$SMOKE_DIR/epoch0.txt"
diff -r "$SMOKE_DIR/baseline" "$SMOKE_DIR/epoch0"

echo "CI: fig7 smoke, forced full-recompute ticks (must match incremental)"
# The default run above used the incremental rate-control tick
# (dirty-channel price updates, memoized probe sums, sleeping pairs);
# SPLICER_FULL_RECOMPUTE=1 forces the legacy full per-tick sweep. The two
# modes must produce byte-identical CSVs — the incremental tick is a pure
# wall-time optimisation.
mkdir -p "$SMOKE_DIR/fullticks"
SPLICER_BENCH_FAST=1 SPLICER_BENCH_CSV="$SMOKE_DIR/fullticks" \
  SPLICER_FULL_RECOMPUTE=1 \
  "$BUILD_DIR/bench_fig7_small_scale" --threads 1 > "$SMOKE_DIR/fullticks.txt"
diff -r "$SMOKE_DIR/baseline" "$SMOKE_DIR/fullticks"

echo "CI: fig7 smoke, batched settlement (epoch 10 ms)"
SPLICER_BENCH_FAST=1 \
  "$BUILD_DIR/bench_fig7_small_scale" --settlement-epoch 10 > "$SMOKE_DIR/epoch10.txt"

echo "CI: engine hot-path microbench (archives BENCH_engine_hotpath.json)"
"$BUILD_DIR/bench_engine_hotpath" --fast --repeat 2 \
  --json "$BUILD_DIR/BENCH_engine_hotpath.json" > "$SMOKE_DIR/hotpath.txt"
# The JSON must exist and carry per-scheme events/sec rows plus the
# shard-scaling sweep (1/2/4/8 shards with measured + projected speedups).
grep -q '"events_per_sec"' "$BUILD_DIR/BENCH_engine_hotpath.json"
grep -q '"shard_sweep"' "$BUILD_DIR/BENCH_engine_hotpath.json"
grep -q '"projected_speedup"' "$BUILD_DIR/BENCH_engine_hotpath.json"
# The incremental rate-control tick must actually be doing its job: at
# least one rate scheme row carries nonzero skipped-update / reused-sum
# counters (all zero would mean the fast path silently degraded to the
# full sweep).
grep -q '"price_updates_skipped": [1-9]' "$BUILD_DIR/BENCH_engine_hotpath.json"
grep -q '"probe_sums_reused": [1-9]' "$BUILD_DIR/BENCH_engine_hotpath.json"

echo "CI: sharded engine CLI smoke (--shards 4)"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --payments 300 --shards 4 \
  > "$SMOKE_DIR/sharded.txt"
grep -q "sharded: 4 shards" "$SMOKE_DIR/sharded.txt"

echo "CI: trace replay smoke (splicer_cli --workload trace)"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --workload trace \
  --trace-file examples/traces/sample_trace.csv > "$SMOKE_DIR/trace.txt"
grep -q "workload trace" "$SMOKE_DIR/trace.txt"

echo "CI: streaming bursty + hotspot smokes"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --payments 300 \
  --workload bursty --streaming > "$SMOKE_DIR/bursty.txt"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --payments 300 \
  --workload hotspot --trials 2 > "$SMOKE_DIR/hotspot.txt"

echo "CI: retention-contract smoke (streaming + --no-retain evicts states)"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --payments 300 \
  --streaming --no-retain > "$SMOKE_DIR/no_retain.txt"
# The evicted column (last) of the Splicer row must be nonzero — matching
# the header alone would pass even if eviction silently became a no-op.
awk '$1 == "Splicer" { found = ($NF + 0) > 0 } END { exit !found }' \
  "$SMOKE_DIR/no_retain.txt"

echo "CI: hostile-world robustness bench (wedge-free fault/churn/policy sweep)"
SPLICER_BENCH_FAST=1 "$BUILD_DIR/bench_fig_robustness" \
  --json "$BUILD_DIR/BENCH_fig_robustness.json" > "$SMOKE_DIR/robustness.txt"
# The JSON must carry all three mutation panels with live mutation streams
# (an all-zero event count would mean the sweep silently ran benign).
grep -q '"mutation": "fault"' "$BUILD_DIR/BENCH_fig_robustness.json"
grep -q '"mutation": "churn"' "$BUILD_DIR/BENCH_fig_robustness.json"
grep -q '"mutation": "policy"' "$BUILD_DIR/BENCH_fig_robustness.json"
grep -q '"mutation_events": [1-9]' "$BUILD_DIR/BENCH_fig_robustness.json"

echo "CI: hostile-world rate-0 byte-identity (explicit zero-rate flags)"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --payments 300 \
  > "$SMOKE_DIR/benign.txt"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --payments 300 \
  --fault-rate 0 --churn-rate 0 --fee-policy 0 > "$SMOKE_DIR/rate0.txt"
diff "$SMOKE_DIR/benign.txt" "$SMOKE_DIR/rate0.txt"

echo "CI: hostile-world CLI smoke (active mutators + timelock budget)"
"$BUILD_DIR/splicer_cli" compare --nodes 60 --payments 300 \
  --fault-rate 2 --churn-rate 2 --fee-policy 1 --timelock-budget 16 \
  > "$SMOKE_DIR/hostile.txt"
grep -q "hostile: fault-rate 2" "$SMOKE_DIR/hostile.txt"

echo "CI: ASan+UBSan smoke subset"
SAN_DIR="$BUILD_DIR-asan"
cmake -B "$SAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPLICER_SANITIZE=ON -DSPLICER_BUILD_BENCH=OFF
cmake --build "$SAN_DIR" -j "$JOBS"
ctest --test-dir "$SAN_DIR" -L smoke --output-on-failure -j "$JOBS"
# The hostile-world suites under the sanitizers: the churn close-sweep
# refunds TUs whose vectors were moved out at resolution, so any stale
# read through a resolved LiveTu surfaces here as a hard error.
ctest --test-dir "$SAN_DIR" --output-on-failure -j "$JOBS" \
  -R 'scenario_mutator_test|robustness_test'

echo "CI: SPLICER_AUDIT smoke subset (dynamic contract witnesses)"
AUDIT_DIR="$BUILD_DIR-audit"
cmake -B "$AUDIT_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPLICER_AUDIT=ON -DSPLICER_BUILD_BENCH=OFF
cmake --build "$AUDIT_DIR" -j "$JOBS"
ctest --test-dir "$AUDIT_DIR" -L smoke --output-on-failure -j "$JOBS"
echo "CI: churn-storm stress under SPLICER_AUDIT (dynamic witnesses on)"
"$AUDIT_DIR/robustness_test" --gtest_filter='DeadlockUnderChurn.*'

echo "CI: ThreadSanitizer sharded-engine smoke"
TSAN_DIR="$BUILD_DIR-tsan"
cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DSPLICER_SANITIZE=thread -DSPLICER_BUILD_BENCH=OFF
cmake --build "$TSAN_DIR" -j "$JOBS" --target \
  sharded_scheduler_test sharded_engine_test thread_pool_test \
  parallel_experiment_test
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$JOBS" \
  -R 'sharded_scheduler_test|sharded_engine_test|thread_pool_test|parallel_experiment_test'

echo "CI: all green"
