#!/usr/bin/env bash
# Tier-1 CI gate: configure + build with -Wall -Wextra -Werror, run the
# full ctest suite, then re-run the fast `smoke` label on its own so the
# cheap-suite subset is exercised exactly as developers use it.
#
# Usage: tools/ci.sh [build-dir]   (default: build-ci)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-ci}"
JOBS="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 2)"

cmake -B "$BUILD_DIR" -S . -DSPLICER_WERROR=ON -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD_DIR" -j "$JOBS"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$JOBS"
ctest --test-dir "$BUILD_DIR" -L smoke -j "$JOBS"

echo "CI: all green"
