// splicer_lint CLI — the repo-contract static-analysis gate.
//
//   splicer_lint [--error-on-findings] [--format text|json|sarif]
//                [--dump-callgraph] [--list-rules] <path>...
//
// Paths are files or directories relative to the current working directory
// (CI invokes it from the repo root: `splicer_lint --error-on-findings src
// tools bench examples`).
//
// Exit status (pinned by tests/lint_test.cpp, relied on by tools/ci.sh):
//   0  clean tree, or findings reported without --error-on-findings, or a
//      pure informational invocation (--help, --list-rules with no paths)
//   1  findings present and --error-on-findings was given
//   2  usage error (unknown option/format, no paths) or IO error (missing
//      root, unreadable file)

#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "splicer_lint/cli.h"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  return splicer::lint::run_cli(std::filesystem::current_path(), args,
                                std::cout, std::cerr);
}
