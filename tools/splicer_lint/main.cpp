// splicer_lint CLI — the repo-contract static-analysis gate.
//
//   splicer_lint [--error-on-findings] [--list-rules] <path>...
//
// Paths are files or directories relative to the current working directory
// (CI invokes it from the repo root: `splicer_lint --error-on-findings src
// tools bench examples`). Exit status: 0 clean (or findings without
// --error-on-findings), 1 findings with --error-on-findings, 2 usage/IO
// error.

#include <cstdio>
#include <exception>
#include <filesystem>
#include <string>
#include <vector>

#include "splicer_lint/lint_core.h"

namespace {

void print_usage() {
  std::fputs(
      "usage: splicer_lint [--error-on-findings] [--list-rules] <path>...\n"
      "\n"
      "Token-level static analysis of the repo's determinism and\n"
      "memory-safety contracts. Suppress a finding with\n"
      "  // SPLICER_LINT_ALLOW(<rule-id>): <non-empty reason>\n"
      "on the offending line or the comment line directly above it.\n",
      stderr);
}

void print_rules() {
  for (const auto& rule : splicer::lint::rules()) {
    std::printf("%-16s [%s]\n    %s\n", std::string(rule.id).c_str(),
                std::string(rule.scope).c_str(),
                std::string(rule.summary).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  bool error_on_findings = false;
  bool list_rules = false;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--error-on-findings") {
      error_on_findings = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--help" || arg == "-h") {
      print_usage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "splicer_lint: unknown option '%s'\n", arg.c_str());
      print_usage();
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (list_rules) {
    print_rules();
    if (roots.empty()) return 0;
  }
  if (roots.empty()) {
    print_usage();
    return 2;
  }

  try {
    const auto findings =
        splicer::lint::lint_tree(std::filesystem::current_path(), roots);
    for (const auto& f : findings) {
      std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                  f.message.c_str());
    }
    if (findings.empty()) {
      std::printf("splicer_lint: clean\n");
      return 0;
    }
    std::printf("splicer_lint: %zu finding%s\n", findings.size(),
                findings.size() == 1 ? "" : "s");
    return error_on_findings ? 1 : 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "splicer_lint: %s\n", e.what());
    return 2;
  }
}
