#pragma once

// splicer-lint phase 2: graph-powered rules over the call graph built by
// call_graph.h. These close the one-call-deep holes in the token rules —
// a contract violation hiding behind a helper function is attributed to
// its callers through the graph:
//
//   writer-lanes-transitive  lane/mailbox ownership propagates through the
//            call graph: a helper that touches single-writer state
//            (ShardedScheduler lanes, Engine cross-shard inboxes, the
//            rate-router active sets) makes every caller a writer, and a
//            caller outside the owning component is flagged at the call
//            site. The owning component's sanctioned entry APIs
//            (post / deliver_* / inject_arrival, activate_channel /
//            wake_pair / mark_channel_dirty) are the one legal crossing.
//   hotpath-alloc  no new / make_unique / make_shared, no std container or
//            std::string construction, and no reserve/resize in any
//            function reachable from the hot event-loop entry points
//            (Engine::handle_event, any on_timer override, the rate-tick
//            entry run_protocol_tick) inside src/sim, src/routing,
//            src/pcn. Pool internals, per-engine scratch and
//            amortised-capacity sites carry a reasoned allow annotation
//            for the hotpath-alloc rule.
//   slab-alias-escape  a reference/pointer bound to Engine slab state that
//            is passed as an argument into a callee which transitively
//            reaches a relocation point (send_tu / fail_payment) is
//            flagged at the call site — the callee may relocate or evict
//            the slab the reference aliases, one or more calls deep.
//   float-order  floating accumulation inside merge/parallel contexts
//            (functions named merge / merge_from / drain_mailboxes and
//            everything they reach) must be annotated with why the
//            summation order is deterministic — these are exactly the
//            spots where the N-shard byte-identity gates would notice a
//            reordered sum.

#include <vector>

#include "splicer_lint/call_graph.h"
#include "splicer_lint/lint_core.h"

namespace splicer::lint {

/// A scrubbed source handed to the graph rules (scrubbed once by the
/// caller, shared with the token pass).
struct ScrubbedSource {
  std::string path;
  const std::vector<ScrubbedLine>* lines = nullptr;
};

/// Runs the four call-graph rules. Returned findings are raw (allow
/// suppression is applied by lint_files, uniformly with the token rules).
[[nodiscard]] std::vector<Finding> interprocedural_findings(
    const CallGraph& graph, const std::vector<ScrubbedSource>& sources);

}  // namespace splicer::lint
