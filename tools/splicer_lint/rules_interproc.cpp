#include "splicer_lint/rules_interproc.h"

#include <algorithm>
#include <deque>
#include <map>
#include <regex>
#include <set>
#include <string>
#include <utility>

namespace splicer::lint {
namespace {

constexpr std::string_view kHotDirs[] = {"src/sim/", "src/routing/",
                                         "src/pcn/"};

bool path_in(std::string_view path, std::string_view prefix) {
  return path.size() > prefix.size() && path.substr(0, prefix.size()) == prefix;
}

bool in_hot_dirs(std::string_view path) {
  return std::any_of(std::begin(kHotDirs), std::end(kHotDirs),
                     [&](std::string_view d) { return path_in(path, d); });
}

using SourceMap = std::map<std::string, const std::vector<ScrubbedLine>*>;

SourceMap index_sources(const std::vector<ScrubbedSource>& sources) {
  SourceMap map;
  for (const ScrubbedSource& s : sources) map[s.path] = s.lines;
  return map;
}

/// Calls visit(line_number, code) for every line of `def`'s signature+body
/// range ([line, body_end]) that exists in the sources.
template <typename Visit>
void for_each_body_line(const FunctionDef& def, const SourceMap& sources,
                        Visit&& visit) {
  auto it = sources.find(def.file);
  if (it == sources.end()) return;
  const std::vector<ScrubbedLine>& lines = *it->second;
  const int begin = std::max(def.line, 1);
  const int end = std::min<int>(def.body_end, static_cast<int>(lines.size()));
  for (int ln = begin; ln <= end; ++ln) {
    visit(ln, lines[static_cast<std::size_t>(ln) - 1].code);
  }
}

bool contains_word(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (std::isalnum(static_cast<unsigned char>(text[pos - 1])) ==
                         0 &&
                     text[pos - 1] != '_');
    const std::size_t end = pos + word.size();
    const bool right_ok =
        end >= text.size() ||
        (std::isalnum(static_cast<unsigned char>(text[end])) == 0 &&
         text[end] != '_');
    if (left_ok && right_ok) return true;
    pos += word.size();
  }
  return false;
}

void add(std::vector<Finding>& out, const std::string& file, int line,
         std::string_view rule, std::string message) {
  out.push_back(
      Finding{file, line, std::string(rule), std::move(message)});
}

/// Resolved callees per (caller, call_index).
using EdgeMap = std::map<std::pair<int, int>, std::vector<int>>;

EdgeMap edge_map(const CallGraph& graph) {
  EdgeMap map;
  for (const Edge& e : graph.edges()) {
    map[{e.caller, e.call_index}].push_back(e.callee);
  }
  return map;
}

// ---------------------------------------------------------------------------
// hotpath-alloc
// ---------------------------------------------------------------------------

void check_hotpath_alloc(const CallGraph& graph, const SourceMap& sources,
                         std::vector<Finding>& out) {
  std::vector<int> roots;
  for (const int r : graph.find("Engine", "handle_event")) roots.push_back(r);
  for (const int r : graph.find_by_name("on_timer")) roots.push_back(r);
  for (const int r : graph.find_by_name("run_protocol_tick"))
    roots.push_back(r);
  if (roots.empty()) return;
  const CallGraph::Reach reach = graph.reachable_from(roots);

  struct AllocPattern {
    std::regex re;
    const char* what;
  };
  // `new` / make_unique / make_shared; std container or std::string
  // construction (a mention whose template close is followed by a variable
  // name, brace or paren — `const std::vector<T>&` parameters and
  // `vector<T>::iterator` uses do not construct and are skipped below);
  // explicit capacity operations.
  static const std::regex kNew(R"((^|[^:\w])new\b)");
  static const std::regex kMake(R"(\bmake_(?:unique|shared)\b)");
  static const std::regex kContainer(
      R"(\bstd\s*::\s*(vector|deque|list|map|set|multimap|multiset|unordered_map|unordered_set|basic_string|priority_queue|queue|stack)\s*<)");
  static const std::regex kString(R"(\bstd\s*::\s*string\s*(\s[A-Za-z_]|[({]))");
  static const std::regex kCapacity(R"(\.\s*(reserve|resize)\s*\()");

  const std::vector<FunctionDef>& funcs = graph.functions();
  std::set<std::pair<std::string, int>> seen;  // one finding per (file, line)
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    if (reach.reachable[fi] == 0) continue;
    const FunctionDef& def = funcs[fi];
    if (!in_hot_dirs(def.file)) continue;
    const std::string chain = graph.chain(reach, static_cast<int>(fi));
    for_each_body_line(def, sources, [&](int ln, const std::string& code) {
      const char* what = nullptr;
      if (std::regex_search(code, kNew)) what = "operator new";
      else if (std::regex_search(code, kMake)) what = "make_unique/make_shared";
      else if (std::regex_search(code, kCapacity)) what = "reserve/resize";
      else if (std::regex_search(code, kString)) what = "std::string construction";
      else {
        std::smatch m;
        if (std::regex_search(code, m, kContainer)) {
          // Skip pure type mentions: find the matching '>' on this line and
          // look at what follows — '&' or '*' binds a reference/pointer,
          // "::" names a nested type; both are allocation-free.
          const std::size_t open =
              static_cast<std::size_t>(m.position(0)) + m.length(0) - 1;
          int depth = 0;
          std::size_t close = std::string::npos;
          for (std::size_t i = open; i < code.size(); ++i) {
            if (code[i] == '<') ++depth;
            else if (code[i] == '>') {
              if (--depth == 0) { close = i; break; }
            }
          }
          bool constructs = true;
          if (close != std::string::npos) {
            std::size_t next = code.find_first_not_of(" \t", close + 1);
            if (next != std::string::npos &&
                (code[next] == '&' || code[next] == '*' ||
                 code.compare(next, 2, "::") == 0)) {
              constructs = false;
            }
          }
          if (constructs) what = "std container construction";
        }
      }
      if (what == nullptr) return;
      if (!seen.insert({def.file, ln}).second) return;
      add(out, def.file, ln, "hotpath-alloc",
          std::string("allocation on the hot event path (") + what + ") in " +
              graph.qualified_name(static_cast<int>(fi)) +
              ", reachable via " + chain +
              " — hoist into per-engine scratch or a pool, or annotate with "
              "SPLICER_LINT_ALLOW(hotpath-alloc): <why this site is "
              "amortised/cold>");
    });
  }
}

// ---------------------------------------------------------------------------
// writer-lanes-transitive
// ---------------------------------------------------------------------------

void check_writer_lanes_transitive(const CallGraph& graph,
                                   const SourceMap& sources,
                                   std::vector<Finding>& out) {
  struct OwnedGroup {
    const char* pattern;
    const char* what;
    const char* owner_a;
    const char* owner_b;
    std::set<std::string> sanctioned;  // legal cross-component entry APIs
  };
  static const OwnedGroup kGroups[] = {
      {R"(\blanes_\b|\bdrain_mailboxes\s*\()",
       "ShardedScheduler mailbox lanes", "src/sim/sharded_scheduler.h",
       "src/sim/sharded_scheduler.cpp",
       {"post", "run", "drive"}},
      {R"(\b(handoff_inbox_|result_inbox_|injected_arrivals_)\b)",
       "Engine cross-shard inbox state", "src/routing/engine.h",
       "src/routing/engine.cpp",
       {"deliver_handoff", "deliver_result", "inject_arrival",
        "handle_event"}},
      {R"(\b(active_pairs_|active_channels_|sleep_subs_|wake_heap_)\b)",
       "rate-router active-set scheduling state", "src/routing/rate_protocol.h",
       "src/routing/rate_protocol.cpp",
       {"on_timer", "on_start", "run_protocol_tick"}},
  };

  const std::vector<FunctionDef>& funcs = graph.functions();
  for (const OwnedGroup& group : kGroups) {
    const std::regex touch_re(group.pattern);
    // 1. Functions that touch the owned state directly.
    std::vector<char> reaching(funcs.size(), 0);
    std::deque<int> queue;
    for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
      bool touches = false;
      for_each_body_line(funcs[fi], sources,
                         [&](int, const std::string& code) {
                           if (!touches && std::regex_search(code, touch_re))
                             touches = true;
                         });
      if (touches) {
        reaching[fi] = 1;
        queue.push_back(static_cast<int>(fi));
      }
    }
    // 2. Propagate writer-hood to callers, stopping at sanctioned APIs:
    //    calling post()/deliver_*() is the legal crossing, so a sanctioned
    //    function does not make its callers writers.
    while (!queue.empty()) {
      const int v = queue.front();
      queue.pop_front();
      if (group.sanctioned.count(funcs[static_cast<std::size_t>(v)].name) != 0)
        continue;
      for (const int u : graph.in_edges()[static_cast<std::size_t>(v)]) {
        if (reaching[static_cast<std::size_t>(u)] == 0) {
          reaching[static_cast<std::size_t>(u)] = 1;
          queue.push_back(u);
        }
      }
    }
    // 3. Flag calls from outside the owning component into non-sanctioned
    //    writer functions. Direct textual touches are the token rule's job
    //    (writer-lanes); lines that already match the pattern are skipped
    //    so one violation yields one finding.
    for (const Edge& e : graph.edges()) {
      const FunctionDef& caller = funcs[static_cast<std::size_t>(e.caller)];
      const FunctionDef& callee = funcs[static_cast<std::size_t>(e.callee)];
      if (reaching[static_cast<std::size_t>(e.callee)] == 0) continue;
      if (group.sanctioned.count(callee.name) != 0) continue;
      if (caller.file == group.owner_a || caller.file == group.owner_b)
        continue;
      const CallSite& call =
          caller.calls[static_cast<std::size_t>(e.call_index)];
      auto src_it = sources.find(caller.file);
      if (src_it != sources.end() && call.line >= 1 &&
          static_cast<std::size_t>(call.line) <= src_it->second->size() &&
          std::regex_search(
              (*src_it->second)[static_cast<std::size_t>(call.line) - 1].code,
              touch_re)) {
        continue;  // token writer-lanes already fires on this line
      }
      std::string sanctioned_list;
      for (const std::string& s : group.sanctioned) {
        if (!sanctioned_list.empty()) sanctioned_list += "/";
        sanctioned_list += s;
      }
      add(out, caller.file, call.line, "writer-lanes-transitive",
          "call to '" + graph.qualified_name(e.callee) +
              "' reaches " + group.what + " (owner: " + group.owner_a +
              ") from outside the owning component — cross-shard state has "
              "exactly one writer per window; go through the sanctioned "
              "APIs (" +
              sanctioned_list + ") or move the helper into the owner");
    }
  }
}

// ---------------------------------------------------------------------------
// slab-alias-escape
// ---------------------------------------------------------------------------

void check_slab_alias_escape(const CallGraph& graph, const SourceMap& sources,
                             std::vector<Finding>& out) {
  // Functions whose invocation may relocate/evict Engine slab slots: a
  // direct call (by name — resolution not required; the name is the
  // contract) to send_tu/fail_payment, propagated to every caller.
  const std::vector<FunctionDef>& funcs = graph.functions();
  std::vector<char> relocates(funcs.size(), 0);
  std::deque<int> queue;
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    for (const CallSite& call : funcs[fi].calls) {
      if (call.name == "send_tu" || call.name == "fail_payment") {
        relocates[fi] = 1;
        queue.push_back(static_cast<int>(fi));
        break;
      }
    }
  }
  while (!queue.empty()) {
    const int v = queue.front();
    queue.pop_front();
    for (const int u : graph.in_edges()[static_cast<std::size_t>(v)]) {
      if (relocates[static_cast<std::size_t>(u)] == 0) {
        relocates[static_cast<std::size_t>(u)] = 1;
        queue.push_back(u);
      }
    }
  }

  static const std::regex kSlabBind(
      R"([&*]\s*([A-Za-z_]\w*)\s*=\s*[^;]*\b(?:find_payment_state|payment_state|state_or_orphan)\s*\()");
  const EdgeMap edges = edge_map(graph);

  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    const FunctionDef& def = funcs[fi];
    if (!path_in(def.file, "src/routing/")) continue;
    // Slab bindings in this body, by declaration line.
    std::vector<std::pair<std::string, int>> bindings;
    for_each_body_line(def, sources, [&](int ln, const std::string& code) {
      std::smatch m;
      if (std::regex_search(code, m, kSlabBind)) {
        bindings.emplace_back(m[1].str(), ln);
      }
    });
    if (bindings.empty()) continue;
    for (std::size_t ci = 0; ci < def.calls.size(); ++ci) {
      const CallSite& call = def.calls[ci];
      if (call.name == "send_tu" || call.name == "fail_payment") continue;
      auto edge_it = edges.find({static_cast<int>(fi), static_cast<int>(ci)});
      if (edge_it == edges.end()) continue;
      const bool callee_relocates = std::any_of(
          edge_it->second.begin(), edge_it->second.end(),
          [&](int callee) { return relocates[static_cast<std::size_t>(callee)] != 0; });
      if (!callee_relocates) continue;
      for (const auto& [name, decl_line] : bindings) {
        if (call.line <= decl_line) continue;
        if (!contains_word(call.args, name)) continue;
        add(out, def.file, call.line, "slab-alias-escape",
            "'" + name + "' (bound to Engine slab state at line " +
                std::to_string(decl_line) + ") passed into '" + call.name +
                "', which transitively reaches send_tu()/fail_payment() — "
                "the callee may relocate or evict the slab this reference "
                "aliases; pass the PaymentId/TuId and re-fetch, or annotate "
                "with SPLICER_LINT_ALLOW(slab-alias-escape): <why the "
                "callee cannot relocate before the last use>");
        break;  // one finding per call site
      }
    }
  }
}

// ---------------------------------------------------------------------------
// float-order
// ---------------------------------------------------------------------------

void check_float_order(const CallGraph& graph, const SourceMap& sources,
                       std::vector<Finding>& out) {
  std::vector<int> roots;
  for (const char* name : {"merge", "merge_from", "drain_mailboxes"}) {
    for (const int r : graph.find_by_name(name)) roots.push_back(r);
  }
  if (roots.empty()) return;
  const CallGraph::Reach reach = graph.reachable_from(roots);

  static const std::regex kAccum(R"((\+=|-=))");
  static const std::regex kFloatCtx(R"(\b(double|float)\b)");

  const std::vector<FunctionDef>& funcs = graph.functions();
  for (std::size_t fi = 0; fi < funcs.size(); ++fi) {
    if (reach.reachable[fi] == 0) continue;
    const FunctionDef& def = funcs[fi];
    if (!path_in(def.file, "src/")) continue;
    bool float_ctx = false;
    int first_accum = 0;
    int accum_count = 0;
    for_each_body_line(def, sources, [&](int ln, const std::string& code) {
      if (std::regex_search(code, kFloatCtx)) float_ctx = true;
      if (std::regex_search(code, kAccum)) {
        ++accum_count;
        if (first_accum == 0) first_accum = ln;
      }
    });
    if (!float_ctx || first_accum == 0) continue;
    add(out, def.file, first_accum, "float-order",
        "floating accumulation in the merge/parallel context " +
            graph.qualified_name(static_cast<int>(fi)) + " (" +
            std::to_string(accum_count) +
            " compound-assignment line(s); reached via " +
            graph.chain(reach, static_cast<int>(fi)) +
            ") — shard/trial merge order feeds the byte-identity gates; "
            "annotate with SPLICER_LINT_ALLOW(float-order): <why the "
            "summation order is deterministic>");
  }
}

}  // namespace

std::vector<Finding> interprocedural_findings(
    const CallGraph& graph, const std::vector<ScrubbedSource>& sources) {
  const SourceMap map = index_sources(sources);
  std::vector<Finding> out;
  check_hotpath_alloc(graph, map, out);
  check_writer_lanes_transitive(graph, map, out);
  check_slab_alias_escape(graph, map, out);
  check_float_order(graph, map, out);
  return out;
}

}  // namespace splicer::lint
