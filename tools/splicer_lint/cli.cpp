#include "splicer_lint/cli.h"

#include <exception>
#include <string_view>

#include "splicer_lint/call_graph.h"
#include "splicer_lint/lint_core.h"

namespace splicer::lint {
namespace {

void print_usage(std::ostream& err) {
  err << "usage: splicer_lint [options] <path>...\n"
         "\n"
         "Two-phase static analysis of the repo's determinism and\n"
         "memory-safety contracts: per-file token rules plus call-graph\n"
         "rules (writer-lanes-transitive, hotpath-alloc, slab-alias-escape,\n"
         "float-order) over src/. Suppress a finding with\n"
         "  // SPLICER_LINT_ALLOW(<rule-id>): <non-empty reason>\n"
         "on the offending line or the comment line directly above it;\n"
         "stale suppressions are findings themselves.\n"
         "\n"
         "options:\n"
         "  --error-on-findings   exit 1 when findings are present\n"
         "  --format <fmt>        text (default), json, or sarif\n"
         "  --dump-callgraph      print the resolved call graph and every\n"
         "                        unresolved call, then exit\n"
         "  --list-rules          print the rule table\n"
         "  -h, --help            this text\n"
         "\n"
         "exit codes: 0 clean (or findings without --error-on-findings),\n"
         "1 findings with --error-on-findings, 2 usage or IO error\n";
}

void print_rules(std::ostream& out) {
  for (const RuleInfo& rule : rules()) {
    out << rule.id;
    for (std::size_t pad = rule.id.size(); pad < 24; ++pad) out << ' ';
    out << "[" << rule.scope << "]\n    " << rule.summary << "\n";
  }
}

void dump_callgraph(const CallGraph& graph, std::ostream& out) {
  const auto& fns = graph.functions();
  out << "functions: " << fns.size() << "\n";
  for (std::size_t i = 0; i < fns.size(); ++i) {
    out << "  " << graph.qualified_name(static_cast<int>(i)) << "  (" <<
        fns[i].file << ":" << fns[i].line << ")\n";
    for (const int callee : graph.out_edges()[i]) {
      out << "    -> " << graph.qualified_name(callee) << "\n";
    }
  }
  out << "unresolved calls: " << graph.unresolved().size() << "\n";
  for (const UnresolvedCall& u : graph.unresolved()) {
    const FunctionDef& caller = fns[static_cast<std::size_t>(u.caller)];
    const CallSite& site =
        caller.calls[static_cast<std::size_t>(u.call_index)];
    out << "  " << caller.file << ":" << site.line << "  "
        << graph.qualified_name(u.caller) << " -> " << site.name << "  ("
        << u.candidate_keys << " candidate scopes)\n";
  }
}

}  // namespace

int run_cli(const std::filesystem::path& repo_root,
            const std::vector<std::string>& args, std::ostream& out,
            std::ostream& err) {
  bool error_on_findings = false;
  bool list_rules = false;
  bool dump_graph = false;
  std::string format = "text";
  std::vector<std::string> roots;

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string_view arg = args[i];
    if (arg == "--error-on-findings") {
      error_on_findings = true;
    } else if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--dump-callgraph") {
      dump_graph = true;
    } else if (arg == "--format") {
      if (i + 1 >= args.size()) {
        err << "splicer_lint: --format needs an argument (text|json|sarif)\n";
        return kExitUsage;
      }
      format = args[++i];
      if (format != "text" && format != "json" && format != "sarif") {
        err << "splicer_lint: unknown format '" << format
            << "' (expected text, json or sarif)\n";
        return kExitUsage;
      }
    } else if (arg == "--help" || arg == "-h") {
      print_usage(err);
      return kExitClean;
    } else if (!arg.empty() && arg[0] == '-') {
      err << "splicer_lint: unknown option '" << arg << "'\n";
      print_usage(err);
      return kExitUsage;
    } else {
      roots.emplace_back(arg);
    }
  }

  if (list_rules) {
    print_rules(out);
    if (roots.empty()) return kExitClean;
  }
  if (roots.empty()) {
    print_usage(err);
    return kExitUsage;
  }

  try {
    if (dump_graph) {
      dump_callgraph(CallGraph::build(load_tree(repo_root, roots)), out);
      return kExitClean;
    }
    const std::vector<Finding> findings = lint_tree(repo_root, roots);
    if (format == "json") {
      out << to_json(findings);
    } else if (format == "sarif") {
      out << to_sarif(findings);
    } else {
      for (const Finding& f : findings) {
        out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message
            << "\n";
      }
      if (findings.empty()) {
        out << "splicer_lint: clean\n";
      } else {
        out << "splicer_lint: " << findings.size() << " finding"
            << (findings.size() == 1 ? "" : "s") << "\n";
      }
    }
    if (findings.empty()) return kExitClean;
    return error_on_findings ? kExitFindings : kExitClean;
  } catch (const std::exception& e) {
    err << "splicer_lint: " << e.what() << "\n";
    return kExitUsage;
  }
}

}  // namespace splicer::lint
