#pragma once

// splicer-lint phase 1: a lightweight symbol index and call graph over the
// scrubbed sources under src/. No compiler front-end — definitions are
// recognised token-level (an identifier chain followed by a balanced
// argument list and a function body, with ctor-init lists, trailing return
// types and template preambles skipped heuristically), and call sites are
// resolved by name + enclosing-class scope:
//
//   * a qualified call `X::f(...)` resolves to the definitions of X::f;
//   * a bare call `f(...)` inside a method of class C prefers C::f, then a
//     free function f, then a unique method f anywhere in the index;
//   * a member call `obj.f(...)` / `ptr->f(...)` resolves when exactly one
//     class in the index defines f (receiver types are unknown).
//
// Overloads within one (scope, name) key all receive edges (a call to an
// overload set over-approximates to every overload — safe for reachability
// rules). A name defined by several classes with no scope hint is recorded
// as an *unresolved* call: deliberately visible, both in --dump-callgraph
// output and in the fixture corpus, so resolution regressions are pinned
// rather than silent. Calls with no definition in the index (std::,
// external libraries) are external and ignored.
//
// The graph deliberately does not model virtual dispatch: the
// interprocedural rules name every override of a hot virtual (e.g.
// Router::on_timer) as its own analysis root instead.

#include <string>
#include <string_view>
#include <vector>

#include "splicer_lint/lint_core.h"

namespace splicer::lint {

/// One call site inside a function body.
struct CallSite {
  std::string qualifier;  // "Engine" for Engine::f(...), "" for bare f(...)
  std::string name;       // callee name
  int line = 0;           // 1-based line in the caller's file
  bool member_access = false;  // obj.f(...) / ptr->f(...)
  std::string args;       // scrubbed argument text (slab-escape analysis)
};

/// A function or method definition (has a body in the indexed sources).
struct FunctionDef {
  std::string scope;  // enclosing class ("Engine"), "" for free functions
  std::string name;
  std::string file;   // repo-relative path
  int line = 0;        // line of the signature (name token)
  int body_begin = 0;  // line of the opening brace
  int body_end = 0;    // line of the closing brace
  std::vector<CallSite> calls;
};

/// A resolved call edge. One call site may fan out to several definitions
/// (the callee's overload set).
struct Edge {
  int caller = -1;
  int call_index = -1;  // index into functions()[caller].calls
  int callee = -1;
};

/// A call that matched several (scope, name) keys and could not be pinned
/// to one class — recorded and reported, never silently dropped.
struct UnresolvedCall {
  int caller = -1;
  int call_index = -1;
  int candidate_keys = 0;
};

class CallGraph {
 public:
  /// Builds the index + graph. Only files whose path lies under src/
  /// participate; other files are ignored.
  [[nodiscard]] static CallGraph build(const std::vector<FileContent>& files);

  [[nodiscard]] const std::vector<FunctionDef>& functions() const {
    return functions_;
  }
  [[nodiscard]] const std::vector<Edge>& edges() const { return edges_; }
  [[nodiscard]] const std::vector<UnresolvedCall>& unresolved() const {
    return unresolved_;
  }

  /// Resolved callee lists per function index (deduplicated).
  [[nodiscard]] const std::vector<std::vector<int>>& out_edges() const {
    return out_edges_;
  }
  /// Resolved caller lists per function index (deduplicated).
  [[nodiscard]] const std::vector<std::vector<int>>& in_edges() const {
    return in_edges_;
  }

  /// All function indices with this (scope, name); scope "" = free.
  [[nodiscard]] std::vector<int> find(std::string_view scope,
                                      std::string_view name) const;
  /// All function indices with this name, any scope.
  [[nodiscard]] std::vector<int> find_by_name(std::string_view name) const;

  /// Forward reachability over resolved edges. parent[i] is the BFS
  /// predecessor (-1 for roots and unreached nodes) for chain messages.
  struct Reach {
    std::vector<char> reachable;
    std::vector<int> parent;
  };
  [[nodiscard]] Reach reachable_from(const std::vector<int>& roots) const;

  /// "root -> ... -> target" qualified-name chain from a Reach result.
  [[nodiscard]] std::string chain(const Reach& reach, int target) const;

  /// "Scope::name" or "name" for diagnostics.
  [[nodiscard]] std::string qualified_name(int index) const;

 private:
  std::vector<FunctionDef> functions_;
  std::vector<Edge> edges_;
  std::vector<UnresolvedCall> unresolved_;
  std::vector<std::vector<int>> out_edges_;
  std::vector<std::vector<int>> in_edges_;
};

}  // namespace splicer::lint
