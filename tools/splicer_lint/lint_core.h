#pragma once

// splicer-lint: repo-contract static analysis for the determinism-critical
// core. A token/regex-level checker (no compiler front-end, no LLVM dev
// dependency) that enforces the source-level contracts behind the repo's
// CI-gated guarantees — the frozen epoch-0 fig7 event stream, 1-shard
// parity with the sequential engine, and N-shard byte-identity.
//
// The analysis runs in two phases:
//
//   phase 1  per-file token scan: each source is scrubbed (comments and
//            literal contents blanked, positions preserved) and the
//            file-local rules run over the scrubbed lines. A tree-wide
//            sub-pass carries unordered-container member names from
//            headers into their .cpp files.
//   phase 2  repo-wide call-graph analysis (call_graph.h): a symbol index
//            of function/method definitions over src/ with call sites
//            resolved heuristically by name + enclosing-class scope, and
//            graph-powered rules (rules_interproc.h) that track contract
//            violations hiding one or more calls deep.
//
// File-local rules:
//
//   ambient-nondet   no wall clocks / ambient randomness / environment
//                    reads inside src/sim, src/routing, src/pcn — all
//                    entropy must flow from the seeded common::rng.
//   unordered-decl   every std::unordered_map/set in those dirs carries an
//                    adjacent allow annotation (rule id unordered-decl)
//                    asserting its iteration order can never reach the
//                    event stream (keyed access only, or sorted first).
//   unordered-iter   range-for / .begin() iteration over an unordered
//                    container in those dirs must be annotated or rewritten
//                    over an ordered/sorted container.
//   std-function     std::function is banned in src/ (SBO-free type
//                    erasure heap-allocates on the hot path); use
//                    common::SmallFunction, or annotate the documented
//                    fallback variants.
//   slab-alias       a reference/pointer bound to Engine slab state
//                    (find_payment_state / payment_state / state_or_orphan)
//                    must not be used after a slab relocation point
//                    (send_tu / fail_payment) in the same scope, and
//                    send_tu must never be dispatched from inside
//                    on_tu_forwarded (whose TU aliases the live_ slab).
//   writer-lanes     single-writer mailbox state (ShardedScheduler lanes,
//                    Engine cross-shard inboxes, rate-router active sets)
//                    is mutated only inside its owning component's
//                    translation units.
//
// Call-graph rules (tree runs only — see rules_interproc.h for the
// contracts): writer-lanes-transitive, hotpath-alloc, slab-alias-escape,
// float-order.
//
// Suppression: a finding is allowed by a comment on the same line, or on a
// comment-only line directly above the offending code, of the form
//     // SPLICER_LINT_ALLOW(<rule-id>): <non-empty reason>
// A bare allow (missing or empty reason) and an allow naming an unknown
// rule are themselves findings (bare-allow / unknown-rule), and in tree
// runs an allow whose rule never fires on its covered line is a
// stale-allow finding — suppressions cannot rot silently after the code
// they excused is fixed or deleted.
//
// Being token-level, the checker is deliberately conservative: it tracks
// brace depth but not control flow, resolves calls by name rather than by
// type, and clears slab-alias poison when the relocating block closes (the
// guard-clause `if (...) { fail_payment(...); return; }` idiom). False
// negatives are backstopped by the SPLICER_AUDIT dynamic witnesses and the
// runtime hard-errors in the engine.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace splicer::lint {

struct Finding {
  std::string file;     // repo-relative path (forward slashes)
  int line = 0;         // 1-based
  std::string rule;     // rule id, e.g. "ambient-nondet"
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view scope;    // human-readable path scope
  std::string_view summary;
};

/// The enforced rules, in reporting order (excludes the bare-allow /
/// unknown-rule meta findings, which police the annotations themselves).
[[nodiscard]] const std::vector<RuleInfo>& rules();

// ---------------------------------------------------------------------------
// Scrubber + allow parsing (shared with the call-graph phase)
// ---------------------------------------------------------------------------

/// One source line split into code text and comment text. Literal contents
/// are blanked with spaces (tokens inside strings never match a rule) and
/// column positions are preserved.
struct ScrubbedLine {
  std::string code;     // comments and literal contents replaced by spaces
  std::string comment;  // comment text only (for SPLICER_LINT_ALLOW parsing)
};

/// Splits a source into scrubbed lines. Handles //, /*...*/, "...", '...'
/// and raw strings (R"delim(...)delim" with any encoding prefix); an
/// unterminated literal at EOF scrubs to the end without error.
[[nodiscard]] std::vector<ScrubbedLine> scrub_source(std::string_view src);

/// A parsed SPLICER_LINT_ALLOW annotation.
struct Allow {
  int annotation_line = 0;  // where the comment sits (1-based)
  int covered_line = 0;     // which code line it suppresses
  std::string tag;
  bool has_reason = false;
};

/// All allow annotations in comment text. A trailing allow covers its own
/// line; an allow on a comment-only line covers the next code-bearing line.
[[nodiscard]] std::vector<Allow> collect_allows(
    const std::vector<ScrubbedLine>& lines);

// ---------------------------------------------------------------------------
// Linting
// ---------------------------------------------------------------------------

struct Options {
  /// Unordered-container variable names declared in *other* files (the
  /// tree pass feeds header declarations into .cpp scans so iteration over
  /// a member declared in the header is still caught).
  std::vector<std::string> extra_unordered_names;
};

/// Lints one in-memory source with the file-local rules only. The
/// `virtual_path` is the repo-relative path used for rule scoping (tests
/// lint fixture content under fake paths). Call-graph rules and stale-allow
/// detection need the whole tree — use lint_files/lint_tree for those.
[[nodiscard]] std::vector<Finding> lint_source(std::string_view virtual_path,
                                               std::string_view content,
                                               const Options& options = {});

/// Names of unordered-container variables declared in `content` (pass 1 of
/// the tree-wide cross-file iteration check).
[[nodiscard]] std::vector<std::string> unordered_container_names(
    std::string_view content);

/// An in-memory source file for the multi-file pipeline.
struct FileContent {
  std::string path;     // repo-relative, forward slashes
  std::string content;
};

/// Loads every lintable file (.h/.hpp/.cpp/.cc/.cxx) under each root (a
/// file or directory relative to `repo_root`) into memory, repo-relative
/// paths with forward slashes, sorted. Hidden directories, anything named
/// build*, and data dirs are skipped. Throws on a missing root or an
/// unreadable file.
[[nodiscard]] std::vector<FileContent> load_tree(
    const std::filesystem::path& repo_root,
    const std::vector<std::string>& roots);

/// The full two-phase analysis over a set of in-memory sources: file-local
/// rules on every file, the call graph + interprocedural rules over the
/// files under src/, allow suppression across both phases, and stale-allow
/// findings for suppressions that no longer match anything.
[[nodiscard]] std::vector<Finding> lint_files(
    const std::vector<FileContent>& files);

/// Recursively lints every .h/.hpp/.cpp/.cc/.cxx under each root (a file or
/// directory, relative to `repo_root`) through lint_files. Hidden
/// directories, anything named build*, and tests/data are skipped.
/// Findings are sorted by (file, line).
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::filesystem::path& repo_root,
    const std::vector<std::string>& roots);

// ---------------------------------------------------------------------------
// Machine-readable output (CI annotations)
// ---------------------------------------------------------------------------

/// Findings as a JSON array of {file, line, rule, message} objects.
[[nodiscard]] std::string to_json(const std::vector<Finding>& findings);

/// Findings as a minimal SARIF 2.1.0 document (one run, rule metadata from
/// rules(), one result per finding) — uploadable as a GitHub code-scanning
/// artifact.
[[nodiscard]] std::string to_sarif(const std::vector<Finding>& findings);

}  // namespace splicer::lint
