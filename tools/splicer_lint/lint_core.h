#pragma once

// splicer-lint: repo-contract static analysis for the determinism-critical
// core. A token/regex-level checker (no compiler front-end, no LLVM dev
// dependency) that enforces the source-level contracts behind the repo's
// CI-gated guarantees — the frozen epoch-0 fig7 event stream, 1-shard
// parity with the sequential engine, and N-shard byte-identity:
//
//   ambient-nondet   no wall clocks / ambient randomness / environment
//                    reads inside src/sim, src/routing, src/pcn — all
//                    entropy must flow from the seeded common::rng.
//   unordered-decl   every std::unordered_map/set in those dirs carries an
//                    adjacent allow annotation (rule id unordered-decl)
//                    asserting its iteration order can never reach the
//                    event stream (keyed access only, or sorted first).
//   unordered-iter   range-for / .begin() iteration over an unordered
//                    container in those dirs must be annotated or rewritten
//                    over an ordered/sorted container.
//   std-function     std::function is banned in src/ (SBO-free type
//                    erasure heap-allocates on the hot path); use
//                    common::SmallFunction, or annotate the documented
//                    fallback variants.
//   slab-alias       a reference/pointer bound to Engine slab state
//                    (find_payment_state / payment_state / state_or_orphan)
//                    must not be used after a slab relocation point
//                    (send_tu / fail_payment) in the same scope, and
//                    send_tu must never be dispatched from inside
//                    on_tu_forwarded (whose TU aliases the live_ slab).
//   writer-lanes     single-writer mailbox state (ShardedScheduler lanes,
//                    Engine cross-shard inboxes) is mutated only inside its
//                    owning component's translation units.
//
// Suppression: a finding is allowed by a comment on the same line, or on a
// comment-only line directly above the offending code, of the form
//     // SPLICER_LINT_ALLOW(<rule-id>): <non-empty reason>
// A bare allow (missing or empty reason) and an allow naming an unknown
// rule are themselves findings (bare-allow / unknown-rule) — the lint
// rejects them so every suppression documents *why* the contract holds.
//
// Being token-level, the checker is deliberately conservative: it sees one
// file at a time (plus a tree-wide pass that carries unordered-container
// member names from headers into their .cpp files), tracks brace depth but
// not control flow, and clears slab-alias poison when the relocating
// block closes (the guard-clause `if (...) { fail_payment(...); return; }`
// idiom). False negatives are backstopped by the SPLICER_AUDIT dynamic
// witnesses and the runtime hard-errors in the engine.

#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace splicer::lint {

struct Finding {
  std::string file;     // repo-relative path (forward slashes)
  int line = 0;         // 1-based
  std::string rule;     // rule id, e.g. "ambient-nondet"
  std::string message;
};

struct RuleInfo {
  std::string_view id;
  std::string_view scope;    // human-readable path scope
  std::string_view summary;
};

/// The enforced rules, in reporting order (excludes the bare-allow /
/// unknown-rule meta findings, which police the annotations themselves).
[[nodiscard]] const std::vector<RuleInfo>& rules();

struct Options {
  /// Unordered-container variable names declared in *other* files (the
  /// tree pass feeds header declarations into .cpp scans so iteration over
  /// a member declared in the header is still caught).
  std::vector<std::string> extra_unordered_names;
};

/// Lints one in-memory source. `virtual_path` is the repo-relative path
/// used for rule scoping (tests lint fixture content under fake paths).
[[nodiscard]] std::vector<Finding> lint_source(std::string_view virtual_path,
                                               std::string_view content,
                                               const Options& options = {});

/// Names of unordered-container variables declared in `content` (pass 1 of
/// the tree-wide cross-file iteration check).
[[nodiscard]] std::vector<std::string> unordered_container_names(
    std::string_view content);

/// Recursively lints every .h/.hpp/.cpp/.cc/.cxx under each root (a file or
/// directory, relative to `repo_root`). Hidden directories, anything named
/// build*, and tests/data are skipped. Findings are sorted by (file, line).
[[nodiscard]] std::vector<Finding> lint_tree(
    const std::filesystem::path& repo_root,
    const std::vector<std::string>& roots);

}  // namespace splicer::lint
