#pragma once

// splicer_lint command-line driver, separated from main() so the argument
// parsing, exit codes and output formats are testable in-process.

#include <filesystem>
#include <ostream>
#include <string>
#include <vector>

namespace splicer::lint {

/// Exit codes — part of the CLI contract, pinned by tests and relied on by
/// tools/ci.sh and the CI workflow:
///   0  clean tree, or findings reported without --error-on-findings, or a
///      pure informational invocation (--help, --list-rules with no paths)
///   1  findings present and --error-on-findings was given
///   2  usage error (unknown option, no paths) or IO error (missing root,
///      unreadable file)
inline constexpr int kExitClean = 0;
inline constexpr int kExitFindings = 1;
inline constexpr int kExitUsage = 2;

/// Runs the CLI against `repo_root` (paths in `args` are relative to it).
/// `args` excludes argv[0]. Findings/reports go to `out`, diagnostics and
/// usage to `err`. Returns the process exit code.
[[nodiscard]] int run_cli(const std::filesystem::path& repo_root,
                          const std::vector<std::string>& args,
                          std::ostream& out, std::ostream& err);

}  // namespace splicer::lint
