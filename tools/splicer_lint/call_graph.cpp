#include "splicer_lint/call_graph.h"

#include <algorithm>
#include <deque>
#include <map>
#include <set>
#include <utility>

namespace splicer::lint {
namespace {

// ---------------------------------------------------------------------------
// Lexer: scrubbed code lines -> token stream. Identifiers and the
// multi-char operators the parser cares about ("::", "->") are single
// tokens; everything else is one punctuation character per token.
// Preprocessor lines (and their backslash continuations) are skipped so
// macro bodies cannot unbalance the brace tracking.
// ---------------------------------------------------------------------------

struct Tok {
  std::string text;
  int line = 0;  // 1-based
};

bool ident_start(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_';
}
bool ident_char(char c) { return ident_start(c) || (c >= '0' && c <= '9'); }

std::vector<Tok> lex(const std::vector<ScrubbedLine>& lines) {
  std::vector<Tok> toks;
  bool pp_continuation = false;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const std::string& code = lines[li].code;
    const int line_no = static_cast<int>(li) + 1;
    const std::size_t first = code.find_first_not_of(" \t");
    const bool is_pp =
        pp_continuation || (first != std::string::npos && code[first] == '#');
    if (is_pp) {
      const std::size_t last = code.find_last_not_of(" \t");
      pp_continuation = last != std::string::npos && code[last] == '\\';
      continue;
    }
    for (std::size_t i = 0; i < code.size();) {
      const char c = code[i];
      if (c == ' ' || c == '\t') {
        ++i;
      } else if (ident_start(c)) {
        std::size_t j = i + 1;
        while (j < code.size() && ident_char(code[j])) ++j;
        toks.push_back(Tok{code.substr(i, j - i), line_no});
        i = j;
      } else if (c >= '0' && c <= '9') {
        std::size_t j = i + 1;
        while (j < code.size() &&
               (ident_char(code[j]) || code[j] == '.' || code[j] == '\''))
          ++j;
        toks.push_back(Tok{code.substr(i, j - i), line_no});
        i = j;
      } else if (c == ':' && i + 1 < code.size() && code[i + 1] == ':') {
        toks.push_back(Tok{"::", line_no});
        i += 2;
      } else if (c == '-' && i + 1 < code.size() && code[i + 1] == '>') {
        toks.push_back(Tok{"->", line_no});
        i += 2;
      } else {
        toks.push_back(Tok{std::string(1, c), line_no});
        ++i;
      }
    }
  }
  return toks;
}

bool is_ident(const Tok& t) { return ident_start(t.text[0]); }

const std::set<std::string>& control_keywords() {
  static const std::set<std::string> kWords = {
      "if",     "for",          "while",    "switch",      "return",
      "sizeof", "alignof",      "decltype", "static_assert", "catch",
      "throw",  "co_return",    "co_await", "co_yield"};
  return kWords;
}

// Keywords that can never *name* a function being defined.
const std::set<std::string>& non_def_keywords() {
  static const std::set<std::string> kWords = {
      "if",      "for",     "while", "switch", "return", "do",
      "else",    "new",     "delete", "case",  "goto",   "try",
      "catch",   "throw",   "using", "typedef", "static_assert",
      "noexcept", "alignas", "requires"};
  return kWords;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser {
  Parser(const std::vector<Tok>& t, const std::string& f,
         std::vector<FunctionDef>& o)
      : toks(t), file(f), out(o) {}

  const std::vector<Tok>& toks;
  const std::string& file;
  std::vector<FunctionDef>& out;

  // Innermost function being parsed (-1 at namespace/class scope) and the
  // class-name stack for attributing unqualified method definitions.
  int current_fn = -1;

  struct BraceEnt {
    enum Kind { kNamespace, kClass, kFunction, kOther } kind = kOther;
    int fn_before = -1;       // current_fn to restore on close
    bool class_scope = false; // pushed a class name
  };
  std::vector<BraceEnt> braces;
  std::vector<std::string> class_stack;

  // What the next '{' opens, decided by the construct classifiers below.
  BraceEnt::Kind pending = BraceEnt::kOther;
  std::string pending_class;
  int pending_fn = -1;

  [[nodiscard]] std::size_t skip_angles(std::size_t i) const {
    // toks[i] == "<": try to skip a balanced template argument list with a
    // bounded lookahead; returns i unchanged when it does not look like one
    // (comparison operators, shifts).
    int depth = 0;
    std::size_t j = i;
    const std::size_t limit = std::min(toks.size(), i + 128);
    for (; j < limit; ++j) {
      const std::string& t = toks[j].text;
      if (t == "<") {
        ++depth;
      } else if (t == ">") {
        --depth;
        if (depth == 0) return j + 1;
      } else if (t == ";" || t == "{" || t == "}") {
        return i;
      }
    }
    return i;
  }

  [[nodiscard]] std::size_t match_paren(std::size_t i) const {
    // toks[i] == "(": index just past the matching ")", or toks.size().
    int depth = 0;
    for (std::size_t j = i; j < toks.size(); ++j) {
      if (toks[j].text == "(") ++depth;
      else if (toks[j].text == ")") {
        --depth;
        if (depth == 0) return j + 1;
      }
    }
    return toks.size();
  }

  void open_brace() {
    BraceEnt ent;
    ent.kind = pending;
    ent.fn_before = current_fn;
    if (pending == BraceEnt::kClass) {
      class_stack.push_back(pending_class);
      ent.class_scope = true;
    } else if (pending == BraceEnt::kFunction) {
      current_fn = pending_fn;
    }
    braces.push_back(ent);
    pending = BraceEnt::kOther;
    pending_fn = -1;
    pending_class.clear();
  }

  void close_brace(int line) {
    if (braces.empty()) return;
    const BraceEnt ent = braces.back();
    braces.pop_back();
    if (ent.class_scope && !class_stack.empty()) class_stack.pop_back();
    if (ent.kind == BraceEnt::kFunction && current_fn >= 0) {
      out[static_cast<std::size_t>(current_fn)].body_end = line;
    }
    current_fn = ent.fn_before;
  }

  // Reads an identifier chain `A::B::name` (or `~name`) at i. Returns the
  // index past the chain; fills qualifier ("A::B" joined, last component
  // kept separately by the caller) and name. Returns i when no chain.
  [[nodiscard]] std::size_t read_chain(std::size_t i, std::string& qualifier,
                                       std::string& name) const {
    qualifier.clear();
    name.clear();
    std::size_t j = i;
    if (j < toks.size() && toks[j].text == "::") ++j;  // global-ns qualifier
    std::string prev;
    for (;;) {
      std::string part;
      if (j < toks.size() && toks[j].text == "~" && j + 1 < toks.size() &&
          is_ident(toks[j + 1])) {
        part = "~" + toks[j + 1].text;
        j += 2;
      } else if (j < toks.size() && is_ident(toks[j])) {
        part = toks[j].text;
        ++j;
      } else {
        break;
      }
      if (!prev.empty()) {
        if (!qualifier.empty()) qualifier += "::";
        qualifier += prev;
      }
      prev = std::move(part);
      // Template arguments between chain components: A<T>::f.
      if (j < toks.size() && toks[j].text == "<") {
        const std::size_t after = skip_angles(j);
        if (after != j && j + 0 < toks.size() && after < toks.size() &&
            toks[after].text == "::") {
          j = after;
        }
      }
      if (j < toks.size() && toks[j].text == "::") {
        ++j;
        continue;
      }
      break;
    }
    name = std::move(prev);
    return name.empty() ? i : j;
  }

  // After the ')' of a candidate signature at `i`, decide whether a
  // function body follows. Returns the index of the body '{' or npos.
  [[nodiscard]] std::size_t find_body_brace(std::size_t i) const {
    std::size_t j = i;
    while (j < toks.size()) {
      const std::string& t = toks[j].text;
      if (t == "{") return j;
      if (t == ";" || t == "}") return std::string::npos;
      if (t == "=") {
        // `= default;` / `= delete;` / `= 0;` — not a body.
        return std::string::npos;
      }
      if (t == ":") {
        // Ctor-init list: skip `member(init)` / `member{init}` groups until
        // the body brace.
        ++j;
        for (;;) {
          // Skip the member name (possibly qualified / templated).
          while (j < toks.size() && toks[j].text != "(" &&
                 toks[j].text != "{" && toks[j].text != ";" &&
                 toks[j].text != "}")
            ++j;
          if (j >= toks.size() || toks[j].text == ";" || toks[j].text == "}")
            return std::string::npos;
          if (toks[j].text == "(") {
            j = match_paren(j);
          } else {
            // Brace initializer: balance braces.
            int depth = 0;
            while (j < toks.size()) {
              if (toks[j].text == "{") ++depth;
              else if (toks[j].text == "}") {
                --depth;
                if (depth == 0) { ++j; break; }
              }
              ++j;
            }
          }
          if (j < toks.size() && toks[j].text == ",") { ++j; continue; }
          if (j < toks.size() && toks[j].text == "{") return j;
          return std::string::npos;
        }
      }
      if (t == "noexcept" && j + 1 < toks.size() && toks[j + 1].text == "(") {
        j = match_paren(j + 1);
        continue;
      }
      if (t == "(") {
        // Unexpected parens (e.g. attribute) — bail out conservatively.
        return std::string::npos;
      }
      if (t == "<") {
        const std::size_t after = skip_angles(j);
        if (after == j) return std::string::npos;
        j = after;
        continue;
      }
      // const / override / final / & / && / -> / trailing type tokens.
      ++j;
    }
    return std::string::npos;
  }

  void record_call(std::size_t chain_begin, std::size_t paren,
                   const std::string& qualifier, const std::string& name) {
    if (current_fn < 0) return;
    if (control_keywords().count(name) != 0) return;
    if (chain_begin > 0 && toks[chain_begin - 1].text == "new") return;
    CallSite call;
    call.qualifier = qualifier;
    call.name = name;
    call.line = toks[chain_begin].line;
    call.member_access =
        chain_begin > 0 && (toks[chain_begin - 1].text == "." ||
                            toks[chain_begin - 1].text == "->");
    // Argument text: tokens between the parens (bounded; long argument
    // lists truncate — the escape analysis only greps for identifiers).
    const std::size_t end = match_paren(paren);
    std::string args;
    for (std::size_t j = paren + 1; j + 1 < end && j < paren + 200; ++j) {
      if (!args.empty()) args += ' ';
      args += toks[j].text;
    }
    call.args = std::move(args);
    out[static_cast<std::size_t>(current_fn)].calls.push_back(std::move(call));
  }

  void parse() {
    std::size_t i = 0;
    while (i < toks.size()) {
      const std::string& t = toks[i].text;
      if (t == "{") {
        open_brace();
        ++i;
        continue;
      }
      if (t == "}") {
        close_brace(toks[i].line);
        ++i;
        continue;
      }
      if (t == "namespace") {
        std::size_t j = i + 1;
        while (j < toks.size() && (is_ident(toks[j]) || toks[j].text == "::"))
          ++j;
        if (j < toks.size() && toks[j].text == "{") {
          pending = BraceEnt::kNamespace;
        }
        i = j;
        continue;
      }
      if (t == "template") {
        if (i + 1 < toks.size() && toks[i + 1].text == "<") {
          const std::size_t after = skip_angles(i + 1);
          i = after == i + 1 ? i + 2 : after;
        } else {
          ++i;
        }
        continue;
      }
      if ((t == "class" || t == "struct" || t == "union" || t == "enum") &&
          current_fn < 0) {
        // Find the '{' or ';' that terminates the head; remember the last
        // identifier before any base-clause ':' as the type name.
        std::size_t j = i + 1;
        if (t == "enum" && j < toks.size() &&
            (toks[j].text == "class" || toks[j].text == "struct"))
          ++j;
        std::string name;
        bool saw_colon = false;
        while (j < toks.size() && toks[j].text != "{" && toks[j].text != ";") {
          if (toks[j].text == ":") saw_colon = true;
          if (!saw_colon && is_ident(toks[j]) &&
              toks[j].text != "final" && toks[j].text != "alignas")
            name = toks[j].text;
          if (toks[j].text == "(" ) break;  // e.g. `struct Foo* f(...)`
          ++j;
        }
        if (j < toks.size() && toks[j].text == "{" && t != "enum") {
          pending = BraceEnt::kClass;
          pending_class = name;
          i = j;
        } else if (j < toks.size() && toks[j].text == "{") {
          pending = BraceEnt::kOther;  // enum body
          i = j;
        } else {
          i = i + 1;  // forward declaration / variable of struct type
        }
        continue;
      }
      if (is_ident(toks[i]) || t == "~" ||
          (t == "::" && i + 1 < toks.size() && is_ident(toks[i + 1]))) {
        std::string qualifier;
        std::string name;
        const std::size_t after_chain = read_chain(i, qualifier, name);
        if (after_chain == i) {
          ++i;
          continue;
        }
        std::size_t j = after_chain;
        if (j < toks.size() && toks[j].text == "<") {
          const std::size_t after = skip_angles(j);
          if (after != j && after < toks.size() && toks[after].text == "(")
            j = after;
        }
        if (j < toks.size() && toks[j].text == "(") {
          if (current_fn >= 0) {
            record_call(i, j, qualifier, name);
            i = j + 1;  // rescan inside the argument list for nested calls
            continue;
          }
          if (non_def_keywords().count(name) != 0) {
            i = j + 1;
            continue;
          }
          const std::size_t after_paren = match_paren(j);
          const std::size_t body = find_body_brace(after_paren);
          if (body != std::string::npos) {
            FunctionDef def;
            std::string scope;
            if (!qualifier.empty()) {
              const std::size_t pos = qualifier.rfind("::");
              scope = pos == std::string::npos ? qualifier
                                               : qualifier.substr(pos + 2);
            } else if (!class_stack.empty()) {
              scope = class_stack.back();
            }
            def.scope = std::move(scope);
            def.name = name;
            def.file = file;
            def.line = toks[i].line;
            def.body_begin = toks[body].line;
            out.push_back(std::move(def));
            pending = BraceEnt::kFunction;
            pending_fn = static_cast<int>(out.size()) - 1;
            i = body;
            continue;
          }
          i = after_paren;
          continue;
        }
        i = after_chain;
        continue;
      }
      ++i;
    }
    // Unterminated bodies at EOF (should not happen on well-formed input):
    // close them at the last line so body_end is always set.
    const int last_line =
        toks.empty() ? 1 : toks.back().line;
    while (!braces.empty()) close_brace(last_line);
  }
};

bool under_src(std::string_view path) {
  return path.size() > 4 && path.substr(0, 4) == "src/";
}

}  // namespace

CallGraph CallGraph::build(const std::vector<FileContent>& files) {
  CallGraph graph;
  for (const FileContent& f : files) {
    if (!under_src(f.path)) continue;
    const std::vector<ScrubbedLine> lines = scrub_source(f.content);
    const std::vector<Tok> toks = lex(lines);
    Parser parser{toks, f.path, graph.functions_};
    parser.parse();
  }

  // Index: (scope, name) key -> definition indices (overload sets), and
  // name -> distinct keys.
  std::map<std::pair<std::string, std::string>, std::vector<int>> by_key;
  std::map<std::string, std::set<std::pair<std::string, std::string>>> by_name;
  for (std::size_t fi = 0; fi < graph.functions_.size(); ++fi) {
    const FunctionDef& def = graph.functions_[fi];
    by_key[{def.scope, def.name}].push_back(static_cast<int>(fi));
    by_name[def.name].insert({def.scope, def.name});
  }

  graph.out_edges_.assign(graph.functions_.size(), {});
  graph.in_edges_.assign(graph.functions_.size(), {});

  auto add_edges = [&](int caller, int call_index,
                       const std::vector<int>& callees) {
    for (const int callee : callees) {
      graph.edges_.push_back(Edge{caller, call_index, callee});
      graph.out_edges_[static_cast<std::size_t>(caller)].push_back(callee);
      graph.in_edges_[static_cast<std::size_t>(callee)].push_back(caller);
    }
  };

  for (std::size_t fi = 0; fi < graph.functions_.size(); ++fi) {
    const FunctionDef& caller = graph.functions_[fi];
    for (std::size_t ci = 0; ci < caller.calls.size(); ++ci) {
      const CallSite& call = caller.calls[ci];
      const int caller_i = static_cast<int>(fi);
      const int call_i = static_cast<int>(ci);
      if (!call.qualifier.empty()) {
        const std::size_t pos = call.qualifier.rfind("::");
        const std::string last =
            pos == std::string::npos ? call.qualifier
                                     : call.qualifier.substr(pos + 2);
        if (auto it = by_key.find({last, call.name}); it != by_key.end()) {
          add_edges(caller_i, call_i, it->second);
        } else if (auto free_it = by_key.find({"", call.name});
                   free_it != by_key.end()) {
          // Namespace-qualified call to a free function.
          add_edges(caller_i, call_i, free_it->second);
        }
        continue;
      }
      if (!call.member_access) {
        // Bare call: sibling method first, then a free function.
        if (!caller.scope.empty()) {
          if (auto it = by_key.find({caller.scope, call.name});
              it != by_key.end()) {
            add_edges(caller_i, call_i, it->second);
            continue;
          }
        }
        if (auto it = by_key.find({"", call.name}); it != by_key.end()) {
          add_edges(caller_i, call_i, it->second);
          continue;
        }
      }
      // Member call (receiver type unknown), or a bare name with no scoped
      // match: resolve when exactly one key in the whole index defines it.
      auto name_it = by_name.find(call.name);
      if (name_it == by_name.end()) continue;  // external
      std::set<std::pair<std::string, std::string>> keys = name_it->second;
      if (call.member_access) keys.erase({"", call.name});  // obj.f: methods
      if (keys.empty()) continue;
      if (keys.size() == 1) {
        add_edges(caller_i, call_i, by_key.at(*keys.begin()));
      } else {
        graph.unresolved_.push_back(
            UnresolvedCall{caller_i, call_i, static_cast<int>(keys.size())});
      }
    }
  }

  for (auto& v : graph.out_edges_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  for (auto& v : graph.in_edges_) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return graph;
}

std::vector<int> CallGraph::find(std::string_view scope,
                                 std::string_view name) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].scope == scope && functions_[i].name == name)
      out.push_back(static_cast<int>(i));
  }
  return out;
}

std::vector<int> CallGraph::find_by_name(std::string_view name) const {
  std::vector<int> out;
  for (std::size_t i = 0; i < functions_.size(); ++i) {
    if (functions_[i].name == name) out.push_back(static_cast<int>(i));
  }
  return out;
}

CallGraph::Reach CallGraph::reachable_from(const std::vector<int>& roots) const {
  Reach reach;
  reach.reachable.assign(functions_.size(), 0);
  reach.parent.assign(functions_.size(), -1);
  std::deque<int> queue;
  for (const int r : roots) {
    if (r >= 0 && static_cast<std::size_t>(r) < functions_.size() &&
        reach.reachable[static_cast<std::size_t>(r)] == 0) {
      reach.reachable[static_cast<std::size_t>(r)] = 1;
      queue.push_back(r);
    }
  }
  while (!queue.empty()) {
    const int u = queue.front();
    queue.pop_front();
    for (const int v : out_edges_[static_cast<std::size_t>(u)]) {
      if (reach.reachable[static_cast<std::size_t>(v)] == 0) {
        reach.reachable[static_cast<std::size_t>(v)] = 1;
        reach.parent[static_cast<std::size_t>(v)] = u;
        queue.push_back(v);
      }
    }
  }
  return reach;
}

std::string CallGraph::qualified_name(int index) const {
  const FunctionDef& def = functions_[static_cast<std::size_t>(index)];
  return def.scope.empty() ? def.name : def.scope + "::" + def.name;
}

std::string CallGraph::chain(const Reach& reach, int target) const {
  std::vector<int> path;
  for (int v = target; v >= 0; v = reach.parent[static_cast<std::size_t>(v)]) {
    path.push_back(v);
    if (path.size() > functions_.size()) break;  // defensive
  }
  std::string out;
  for (auto it = path.rbegin(); it != path.rend(); ++it) {
    if (!out.empty()) out += " -> ";
    out += qualified_name(*it);
  }
  return out;
}

}  // namespace splicer::lint
