#include "splicer_lint/lint_core.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <iterator>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

#include "splicer_lint/call_graph.h"
#include "splicer_lint/rules_interproc.h"

namespace splicer::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule table
// ---------------------------------------------------------------------------

constexpr std::string_view kHotDirs[] = {"src/sim/", "src/routing/",
                                         "src/pcn/"};
constexpr std::string_view kSrcDir = "src/";
constexpr std::string_view kRoutingDir = "src/routing/";

const std::vector<RuleInfo>& rule_table() {
  static const std::vector<RuleInfo> kRules = {
      {"ambient-nondet", "src/sim, src/routing, src/pcn",
       "no wall clocks, ambient randomness or getenv in sim paths; entropy "
       "must flow from the seeded common::rng"},
      {"unordered-decl", "src/sim, src/routing, src/pcn",
       "every std::unordered_map/set declaration is annotated with why its "
       "iteration order can never reach the event stream"},
      {"unordered-iter", "src/sim, src/routing, src/pcn",
       "no range-for/.begin() iteration over unordered containers unless "
       "annotated or rewritten over ordered/sorted containers"},
      {"std-function", "src/",
       "common::SmallFunction instead of std::function; the documented "
       "fallback variants are annotated in-source"},
      {"slab-alias", "src/routing",
       "no retained reference into Engine slab state across a relocation "
       "point (send_tu/fail_payment); no send_tu from on_tu_forwarded"},
      {"writer-lanes", "src/",
       "single-writer mailbox lanes and cross-shard inboxes mutate only "
       "inside their owning component"},
      {"writer-lanes-transitive", "src/ (call graph)",
       "lane/mailbox ownership propagates through calls: helpers that write "
       "owned state make their callers writers; only the sanctioned entry "
       "APIs cross the component boundary"},
      {"hotpath-alloc", "src/sim, src/routing, src/pcn (call graph)",
       "no allocation (new/make_unique/container or string construction/"
       "reserve/resize) reachable from Engine::handle_event, on_timer "
       "overrides or run_protocol_tick without a reasoned allow"},
      {"slab-alias-escape", "src/routing (call graph)",
       "no slab reference passed into a callee that transitively reaches "
       "send_tu/fail_payment — the callee may relocate the slab it aliases"},
      {"float-order", "src/ (call graph)",
       "floating accumulation in merge/parallel contexts (merge, merge_from, "
       "drain_mailboxes and their callees) is annotated with why summation "
       "order is deterministic"},
      {"stale-allow", "everywhere linted",
       "a SPLICER_LINT_ALLOW whose rule no longer fires on its covered line "
       "is dead and must be removed (tree runs only)"},
  };
  return kRules;
}

bool known_rule(std::string_view id) {
  const auto& table = rule_table();
  return std::any_of(table.begin(), table.end(),
                     [&](const RuleInfo& r) { return r.id == id; });
}

bool path_in(std::string_view path, std::string_view prefix) {
  return path.size() > prefix.size() && path.substr(0, prefix.size()) == prefix;
}

bool in_hot_dirs(std::string_view path) {
  return std::any_of(std::begin(kHotDirs), std::end(kHotDirs),
                     [&](std::string_view d) { return path_in(path, d); });
}

// ---------------------------------------------------------------------------
// Scrubber: split each line into code text and comment text, blanking
// string/char-literal contents (so tokens inside literals never match) while
// preserving column positions.
// ---------------------------------------------------------------------------

std::vector<ScrubbedLine> scrub(std::string_view src) {
  enum class State {
    kCode,
    kString,
    kChar,
    kLineComment,
    kBlockComment,
    kRawString
  };
  std::vector<ScrubbedLine> lines;
  ScrubbedLine current;
  State state = State::kCode;
  std::string raw_delim;  // for R"delim( ... )delim"

  auto flush_line = [&] {
    lines.push_back(std::move(current));
    current = ScrubbedLine{};
  };

  for (std::size_t i = 0; i < src.size(); ++i) {
    const char c = src[i];
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    const char next = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          ++i;
        } else if (c == '"') {
          // Raw string if the preceding identifier characters end in R
          // (covers R"..", u8R"..", LR"..", etc.).
          bool raw = false;
          if (!current.code.empty() && current.code.back() == 'R') {
            raw = true;
          }
          if (raw) {
            raw_delim.clear();
            std::size_t j = i + 1;
            while (j < src.size() && src[j] != '(' && src[j] != '\n') {
              raw_delim.push_back(src[j]);
              ++j;
            }
            state = State::kRawString;
            current.code.push_back('"');
            // Skip the delimiter and opening paren in the code output.
            i = j < src.size() ? j : src.size() - 1;
          } else {
            state = State::kString;
            current.code.push_back('"');
          }
        } else if (c == '\'') {
          state = State::kChar;
          current.code.push_back('\'');
        } else {
          current.code.push_back(c);
        }
        break;
      case State::kString:
        if (c == '\\') {
          current.code.push_back(' ');
          if (next != '\n' && next != '\0') {
            current.code.push_back(' ');
            ++i;
          }
        } else if (c == '"') {
          current.code.push_back('"');
          state = State::kCode;
        } else {
          current.code.push_back(' ');
        }
        break;
      case State::kChar:
        if (c == '\\') {
          current.code.push_back(' ');
          if (next != '\n' && next != '\0') {
            current.code.push_back(' ');
            ++i;
          }
        } else if (c == '\'') {
          current.code.push_back('\'');
          state = State::kCode;
        } else {
          current.code.push_back(' ');
        }
        break;
      case State::kRawString:
        if (c == ')' &&
            src.compare(i + 1, raw_delim.size(), raw_delim) == 0 &&
            i + 1 + raw_delim.size() < src.size() &&
            src[i + 1 + raw_delim.size()] == '"') {
          i += raw_delim.size() + 1;
          current.code.push_back('"');
          state = State::kCode;
        } else {
          current.code.push_back(' ');
        }
        break;
      case State::kLineComment:
        current.comment.push_back(c);
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          ++i;
        } else {
          current.comment.push_back(c);
        }
        break;
    }
  }
  flush_line();
  return lines;
}

bool blank(std::string_view s) {
  return std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return std::isspace(c) != 0; });
}

std::string trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b])) != 0) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])) != 0) --e;
  return std::string(s.substr(b, e - b));
}

// ---------------------------------------------------------------------------
// Allow annotations
// ---------------------------------------------------------------------------

// Matches `SPLICER_LINT_ALLOW(<rule>): <reason>` in comment text.
const std::regex kAllowRe(
    R"(SPLICER_LINT_ALLOW\s*\(\s*([A-Za-z0-9_-]*)\s*\)\s*(:\s*(.*))?)");

std::vector<Allow> collect_allows_impl(const std::vector<ScrubbedLine>& lines) {
  std::vector<Allow> allows;
  for (std::size_t i = 0; i < lines.size(); ++i) {
    std::smatch m;
    const std::string& comment = lines[i].comment;
    if (!std::regex_search(comment, m, kAllowRe)) continue;
    Allow allow;
    allow.annotation_line = static_cast<int>(i) + 1;
    allow.tag = m[1].str();
    allow.has_reason = m[2].matched && !trim(m[3].str()).empty();
    // A trailing allow covers its own line; an allow on a comment-only line
    // covers the next line that carries code (skipping blanks/comments).
    if (!blank(lines[i].code)) {
      allow.covered_line = allow.annotation_line;
    } else {
      allow.covered_line = 0;
      for (std::size_t j = i + 1; j < lines.size(); ++j) {
        if (!blank(lines[j].code)) {
          allow.covered_line = static_cast<int>(j) + 1;
          break;
        }
      }
    }
    allows.push_back(std::move(allow));
  }
  return allows;
}

// ---------------------------------------------------------------------------
// Per-rule token scanners
// ---------------------------------------------------------------------------

void add(std::vector<Finding>& out, std::string_view path, int line,
         std::string_view rule, std::string message) {
  out.push_back(Finding{std::string(path), line, std::string(rule),
                        std::move(message)});
}

struct TokenRule {
  const char* pattern;
  const char* what;
};

void check_ambient_nondet(std::string_view path,
                          const std::vector<ScrubbedLine>& lines,
                          std::vector<Finding>& out) {
  static const std::vector<std::pair<std::regex, std::string>> kBans = [] {
    const TokenRule raw[] = {
        {R"(\brandom_device\b)", "std::random_device"},
        {R"(\bsrand\s*\()", "srand()"},
        {R"(\brand\s*\()", "rand()"},
        {R"(\bsystem_clock\b)", "std::chrono::system_clock"},
        {R"(\bsteady_clock\b)", "std::chrono::steady_clock"},
        {R"(\bhigh_resolution_clock\b)", "std::chrono::high_resolution_clock"},
        {R"(\bgetenv\b)", "getenv()"},
        {R"(\btime\s*\(\s*(nullptr|NULL|0)\s*\))", "time(nullptr)"},
    };
    std::vector<std::pair<std::regex, std::string>> compiled;
    for (const auto& r : raw) compiled.emplace_back(std::regex(r.pattern), r.what);
    return compiled;
  }();
  for (std::size_t i = 0; i < lines.size(); ++i) {
    for (const auto& [re, what] : kBans) {
      if (std::regex_search(lines[i].code, re)) {
        add(out, path, static_cast<int>(i) + 1, "ambient-nondet",
            "ambient nondeterminism: " + what +
                " in a determinism-critical path; the seeded common::rng "
                "stream must be the only entropy/clock source");
      }
    }
  }
}

bool is_preprocessor(std::string_view code) {
  const std::size_t b = code.find_first_not_of(" \t");
  return b != std::string_view::npos && code[b] == '#';
}

void check_unordered_decl(std::string_view path,
                          const std::vector<ScrubbedLine>& lines,
                          std::vector<Finding>& out) {
  static const std::regex kUse(R"(\bunordered_(map|set)\s*<)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (is_preprocessor(lines[i].code)) continue;
    if (std::regex_search(lines[i].code, kUse)) {
      add(out, path, static_cast<int>(i) + 1, "unordered-decl",
          "unordered container in a determinism-critical dir: annotate with "
          "SPLICER_LINT_ALLOW(unordered-decl): <why iteration order can "
          "never reach the event stream>, or use an ordered container");
    }
  }
}

// Pass 1: names of variables declared as unordered containers.
std::vector<std::string> collect_unordered_names(
    const std::vector<ScrubbedLine>& lines) {
  static const std::regex kDecl(
      R"(\bunordered_(?:map|set)\s*<[^;]*>\s*([A-Za-z_]\w*)\s*(?:;|=|\{))");
  std::vector<std::string> names;
  for (const auto& line : lines) {
    auto begin = std::sregex_iterator(line.code.begin(), line.code.end(), kDecl);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      names.push_back((*it)[1].str());
    }
  }
  return names;
}

bool contains_word(const std::string& text, const std::string& word) {
  std::size_t pos = 0;
  while ((pos = text.find(word, pos)) != std::string::npos) {
    const bool left_ok =
        pos == 0 || (std::isalnum(static_cast<unsigned char>(text[pos - 1])) ==
                         0 &&
                     text[pos - 1] != '_');
    const std::size_t end = pos + word.size();
    const bool right_ok =
        end >= text.size() ||
        (std::isalnum(static_cast<unsigned char>(text[end])) == 0 &&
         text[end] != '_');
    if (left_ok && right_ok) return true;
    pos += word.size();
  }
  return false;
}

void check_unordered_iter(std::string_view path,
                          const std::vector<ScrubbedLine>& lines,
                          const std::vector<std::string>& extra_names,
                          std::vector<Finding>& out) {
  std::vector<std::string> names = collect_unordered_names(lines);
  names.insert(names.end(), extra_names.begin(), extra_names.end());

  static const std::regex kRangeFor(R"(\bfor\s*\(([^)]*)\))");
  static const std::regex kBegin(
      R"(([A-Za-z_]\w*)\s*\.\s*(c?r?begin)\s*\()");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    std::smatch m;
    if (std::regex_search(code, m, kRangeFor)) {
      std::string inner = m[1].str();
      if (inner.find(';') == std::string::npos) {
        // Range-for. Split at the range ':' — mask '::' first so scope
        // resolution in the declaration part cannot shadow it.
        std::string masked = inner;
        std::size_t pos = 0;
        while ((pos = masked.find("::", pos)) != std::string::npos) {
          masked[pos] = '\x01';
          masked[pos + 1] = '\x01';
        }
        const std::size_t colon = masked.find(':');
        if (colon != std::string::npos) {
          const std::string range_expr = inner.substr(colon + 1);
          const bool direct_type =
              range_expr.find("unordered_") != std::string::npos;
          const bool tracked_name = std::any_of(
              names.begin(), names.end(),
              [&](const std::string& n) { return contains_word(range_expr, n); });
          if (direct_type || tracked_name) {
            add(out, path, static_cast<int>(i) + 1, "unordered-iter",
                "iteration over an unordered container: hash order is not "
                "part of the determinism contract — sort first, use an "
                "ordered container, or annotate with "
                "SPLICER_LINT_ALLOW(unordered-iter): <why order cannot "
                "reach the event stream>");
          }
        }
      }
    }
    auto begin_it = std::sregex_iterator(code.begin(), code.end(), kBegin);
    for (auto it = begin_it; it != std::sregex_iterator(); ++it) {
      const std::string obj = (*it)[1].str();
      if (std::any_of(names.begin(), names.end(),
                      [&](const std::string& n) { return n == obj; })) {
        add(out, path, static_cast<int>(i) + 1, "unordered-iter",
            "iterator walk over unordered container '" + obj +
                "': hash order is not part of the determinism contract — "
                "sort first or annotate with "
                "SPLICER_LINT_ALLOW(unordered-iter): <reason>");
      }
    }
  }
}

void check_std_function(std::string_view path,
                        const std::vector<ScrubbedLine>& lines,
                        std::vector<Finding>& out) {
  static const std::regex kStdFunction(R"(\bstd\s*::\s*function\s*<)");
  for (std::size_t i = 0; i < lines.size(); ++i) {
    if (std::regex_search(lines[i].code, kStdFunction)) {
      add(out, path, static_cast<int>(i) + 1, "std-function",
          "std::function in src/: heap-allocating type erasure is banned on "
          "simulation paths — use common::SmallFunction, or annotate a "
          "documented fallback with SPLICER_LINT_ALLOW(std-function): "
          "<reason>");
    }
  }
}

void check_slab_alias(std::string_view path,
                      const std::vector<ScrubbedLine>& lines,
                      std::vector<Finding>& out) {
  // Bindings whose RHS reaches into the Engine's DenseIdMap slabs.
  static const std::regex kSlabSource(
      R"(\b(?:find_payment_state|payment_state|state_or_orphan)\s*\()");
  // `& name = rhs` / `* name = rhs` declarations (references or pointers).
  static const std::regex kRefBind(R"([&*]\s*([A-Za-z_]\w*)\s*=\s*([^;]*))");
  // Plain re-assignment of an existing pointer variable: `name = ...slab...`.
  static const std::regex kAssign(
      R"(\b([A-Za-z_]\w*)\s*=\s*[^;=]*\b(?:find_payment_state|payment_state|state_or_orphan)\s*\()");
  // Relocation points: calls (not declarations/definitions) that can grow,
  // relocate or evict slab slots.
  static const std::regex kReloc(R"((^|[^:\w])(send_tu|fail_payment)\s*\()");
  static const std::regex kRelocDecl(
      R"(::\s*(send_tu|fail_payment)\s*\(|\b(send_tu|fail_payment)\s*\(\s*(TransactionUnit|PaymentId)\b)");
  static const std::regex kForwardHook(R"(\bon_tu_forwarded\s*\()");

  struct Binding {
    std::string name;
    int line = 0;
    int depth = 0;
    bool poisoned = false;
    int poison_depth = 0;
    int reloc_line = 0;
    std::string reloc_what;
  };

  std::vector<Binding> bindings;
  int depth = 0;
  bool forward_pending = false;  // saw on_tu_forwarded(, body not yet open
  int forward_depth = -1;        // body depth of on_tu_forwarded, -1 = not in

  for (std::size_t i = 0; i < lines.size(); ++i) {
    const std::string& code = lines[i].code;
    const int line_no = static_cast<int>(i) + 1;

    // 1. Uses of poisoned bindings (before this line's own relocations —
    //    arguments on the relocation line itself are evaluated pre-call).
    for (const Binding& b : bindings) {
      if (!b.poisoned || b.line == line_no) continue;
      if (contains_word(code, b.name)) {
        add(out, path, line_no, "slab-alias",
            "'" + b.name + "' (bound to Engine slab state at line " +
                std::to_string(b.line) + ") used after " + b.reloc_what +
                " at line " + std::to_string(b.reloc_line) +
                " — slabs may relocate/evict; re-fetch via "
                "find_payment_state() after any dispatch");
      }
    }

    // 2. New bindings.
    const bool rhs_has_source = std::regex_search(code, kSlabSource);
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kRefBind);
         it != std::sregex_iterator(); ++it) {
      const std::string name = (*it)[1].str();
      const std::string rhs = (*it)[2].str();
      const bool from_slab = std::regex_search(rhs, kSlabSource);
      const bool from_tracked = std::any_of(
          bindings.begin(), bindings.end(),
          [&](const Binding& b) { return contains_word(rhs, b.name); });
      if (from_slab || from_tracked) {
        bindings.push_back(Binding{name, line_no, depth, false, 0, 0, {}});
      }
    }
    if (rhs_has_source) {
      std::smatch m;
      if (std::regex_search(code, m, kAssign)) {
        const std::string name = m[1].str();
        const bool already = std::any_of(
            bindings.begin(), bindings.end(),
            [&](const Binding& b) { return b.name == name; });
        if (!already) {
          bindings.push_back(Binding{name, line_no, depth, false, 0, 0, {}});
        }
      }
    }

    // 3. Relocation calls poison every live binding at the current depth.
    std::smatch reloc;
    if (std::regex_search(code, reloc, kReloc) &&
        !std::regex_search(code, kRelocDecl)) {
      const std::string what = reloc[2].str() + "()";
      for (Binding& b : bindings) {
        if (!b.poisoned) {
          b.poisoned = true;
          b.poison_depth = depth;
          b.reloc_line = line_no;
          b.reloc_what = what;
        }
      }
      if (forward_depth >= 0 && reloc[2].str() == "send_tu") {
        add(out, path, line_no, "slab-alias",
            "send_tu() dispatched from on_tu_forwarded: the hook's TU "
            "aliases live_ slab memory that send_tu can relocate (the "
            "engine hard-errors at runtime; defer via schedule_timer "
            "instead)");
      }
    }

    // 4. on_tu_forwarded body tracking + brace depth bookkeeping.
    if (std::regex_search(code, kForwardHook) &&
        code.find(';') == std::string::npos) {
      forward_pending = true;
    }
    for (const char c : code) {
      if (c == '{') {
        ++depth;
        if (forward_pending) {
          forward_depth = depth;
          forward_pending = false;
        }
      } else if (c == '}') {
        --depth;
        if (depth < 0) depth = 0;
        if (forward_depth >= 0 && depth < forward_depth) forward_depth = -1;
        // Leaving a block: drop bindings scoped deeper, and clear poison
        // whose relocating block just closed (guard-clause idiom — the
        // relocation path returned out of the function).
        bindings.erase(
            std::remove_if(bindings.begin(), bindings.end(),
                           [&](const Binding& b) { return b.depth > depth; }),
            bindings.end());
        for (Binding& b : bindings) {
          if (b.poisoned && b.poison_depth > depth) {
            b.poisoned = false;
            b.reloc_line = 0;
            b.reloc_what.clear();
          }
        }
      } else if (c == ';' && forward_pending) {
        forward_pending = false;  // was a declaration, not a definition
      }
    }
    if (depth == 0) bindings.clear();
  }
}

void check_writer_lanes(std::string_view path,
                        const std::vector<ScrubbedLine>& lines,
                        std::vector<Finding>& out) {
  struct Owned {
    const char* pattern;
    const char* what;
    const char* owner_a;
    const char* owner_b;
  };
  static const Owned kOwned[] = {
      {R"(\blanes_\b)", "ShardedScheduler mailbox lane storage 'lanes_'",
       "src/sim/sharded_scheduler.h", "src/sim/sharded_scheduler.cpp"},
      {R"(\bdrain_mailboxes\s*\()", "barrier drain 'drain_mailboxes()'",
       "src/sim/sharded_scheduler.h", "src/sim/sharded_scheduler.cpp"},
      {R"(\b(handoff_inbox_|result_inbox_|injected_arrivals_)\b)",
       "Engine cross-shard inbox state",
       "src/routing/engine.h", "src/routing/engine.cpp"},
      {R"(\b(active_pairs_|active_channels_|sleep_subs_|wake_heap_)\b)",
       "rate-router active-set scheduling state",
       "src/routing/rate_protocol.h", "src/routing/rate_protocol.cpp"},
      {R"(\b(staged_mutations_|mutators_|node_down_depth_|channel_close_depth_)\b)",
       "Engine hostile-world mutation state",
       "src/routing/engine.h", "src/routing/engine.cpp"},
  };
  static const std::vector<std::regex> kRes = [] {
    std::vector<std::regex> res;
    for (const auto& o : kOwned) res.emplace_back(o.pattern);
    return res;
  }();
  for (std::size_t r = 0; r < std::size(kOwned); ++r) {
    if (path == kOwned[r].owner_a || path == kOwned[r].owner_b) continue;
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (std::regex_search(lines[i].code, kRes[r])) {
        add(out, path, static_cast<int>(i) + 1, "writer-lanes",
            std::string(kOwned[r].what) +
                " referenced outside its owning component (" +
                kOwned[r].owner_a +
                "): cross-shard state has exactly one writer per window — "
                "go through the owning-shard API (post/deliver_*)");
      }
    }
  }
}

/// All file-local rule findings for one scrubbed source, unsuppressed.
std::vector<Finding> token_findings(std::string_view virtual_path,
                                    const std::vector<ScrubbedLine>& lines,
                                    const Options& options) {
  std::vector<Finding> raw;
  if (in_hot_dirs(virtual_path)) {
    check_ambient_nondet(virtual_path, lines, raw);
    check_unordered_decl(virtual_path, lines, raw);
    check_unordered_iter(virtual_path, lines, options.extra_unordered_names,
                         raw);
  }
  if (path_in(virtual_path, kSrcDir)) {
    check_std_function(virtual_path, lines, raw);
    check_writer_lanes(virtual_path, lines, raw);
  }
  if (path_in(virtual_path, kRoutingDir)) {
    check_slab_alias(virtual_path, lines, raw);
  }
  return raw;
}

/// Applies allow suppression to raw findings and polices the annotations
/// themselves (bare-allow / unknown-rule; stale-allow when requested).
/// `used` marks which allows suppressed at least one raw finding.
std::vector<Finding> apply_allows(std::string_view path,
                                  std::vector<Finding> raw,
                                  const std::vector<Allow>& allows,
                                  bool stale_check) {
  std::vector<char> used(allows.size(), 0);
  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (std::size_t a = 0; a < allows.size(); ++a) {
      const Allow& allow = allows[a];
      if (allow.has_reason && known_rule(allow.tag) && allow.tag == f.rule &&
          allow.covered_line == f.line) {
        suppressed = true;
        used[a] = 1;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }

  // The annotations themselves are linted: a bare allow suppresses nothing
  // and is an error; so is an allow naming a rule that does not exist; and
  // (tree runs) a valid allow whose rule never fired on its covered line
  // has rotted and must go.
  for (std::size_t a = 0; a < allows.size(); ++a) {
    const Allow& allow = allows[a];
    if (!known_rule(allow.tag)) {
      std::string known;
      for (const RuleInfo& r : rule_table()) {
        if (!known.empty()) known += ", ";
        known += r.id;
      }
      add(out, path, allow.annotation_line, "unknown-rule",
          "SPLICER_LINT_ALLOW names unknown rule '" + allow.tag +
              "' (known rules: " + known + ")");
    } else if (!allow.has_reason) {
      add(out, path, allow.annotation_line, "bare-allow",
          "SPLICER_LINT_ALLOW(" + allow.tag +
              ") without a reason: every suppression must document why the "
              "contract holds — write 'SPLICER_LINT_ALLOW(" +
              allow.tag + "): <reason>'");
    } else if (stale_check && used[a] == 0 && allow.tag != "stale-allow") {
      add(out, path, allow.annotation_line, "stale-allow",
          "SPLICER_LINT_ALLOW(" + allow.tag + ") at line " +
              std::to_string(allow.annotation_line) +
              " suppresses nothing: rule '" + allow.tag +
              "' does not fire on line " +
              std::to_string(allow.covered_line) +
              " — the code it excused was fixed or moved; delete the "
              "annotation (or re-anchor it to the offending line)");
    }
  }
  return out;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
}

}  // namespace

const std::vector<RuleInfo>& rules() { return rule_table(); }

std::vector<ScrubbedLine> scrub_source(std::string_view src) {
  return scrub(src);
}

std::vector<Allow> collect_allows(const std::vector<ScrubbedLine>& lines) {
  return collect_allows_impl(lines);
}

std::vector<std::string> unordered_container_names(std::string_view content) {
  return collect_unordered_names(scrub(content));
}

std::vector<Finding> lint_source(std::string_view virtual_path,
                                 std::string_view content,
                                 const Options& options) {
  const std::vector<ScrubbedLine> lines = scrub(content);
  const std::vector<Allow> allows = collect_allows_impl(lines);
  std::vector<Finding> out =
      apply_allows(virtual_path, token_findings(virtual_path, lines, options),
                   allows, /*stale_check=*/false);
  std::sort(out.begin(), out.end(), [](const Finding& a, const Finding& b) {
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  });
  return out;
}

std::vector<Finding> lint_files(const std::vector<FileContent>& files) {
  // Scrub everything once; collect the cross-file unordered names.
  std::vector<std::vector<ScrubbedLine>> scrubbed;
  scrubbed.reserve(files.size());
  Options options;
  for (const FileContent& f : files) {
    scrubbed.push_back(scrub(f.content));
    if (in_hot_dirs(f.path)) {
      for (std::string& n : collect_unordered_names(scrubbed.back())) {
        options.extra_unordered_names.push_back(std::move(n));
      }
    }
  }
  std::sort(options.extra_unordered_names.begin(),
            options.extra_unordered_names.end());
  options.extra_unordered_names.erase(
      std::unique(options.extra_unordered_names.begin(),
                  options.extra_unordered_names.end()),
      options.extra_unordered_names.end());

  // Phase 2: call graph + interprocedural rules over src/.
  const CallGraph graph = CallGraph::build(files);
  std::vector<ScrubbedSource> sources;
  sources.reserve(files.size());
  for (std::size_t i = 0; i < files.size(); ++i) {
    sources.push_back(ScrubbedSource{files[i].path, &scrubbed[i]});
  }
  std::vector<Finding> interproc = interprocedural_findings(graph, sources);

  // Per-file: token rules + this file's share of the graph findings, then
  // allow suppression (uniform across both phases) + annotation policing.
  std::map<std::string, std::vector<Finding>> interproc_by_file;
  for (Finding& f : interproc) {
    interproc_by_file[f.file].push_back(std::move(f));
  }
  std::vector<Finding> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<Finding> raw =
        token_findings(files[i].path, scrubbed[i], options);
    if (auto it = interproc_by_file.find(files[i].path);
        it != interproc_by_file.end()) {
      raw.insert(raw.end(), std::make_move_iterator(it->second.begin()),
                 std::make_move_iterator(it->second.end()));
    }
    std::vector<Finding> checked =
        apply_allows(files[i].path, std::move(raw),
                     collect_allows_impl(scrubbed[i]), /*stale_check=*/true);
    out.insert(out.end(), std::make_move_iterator(checked.begin()),
               std::make_move_iterator(checked.end()));
  }
  sort_findings(out);
  return out;
}

namespace {

bool lintable_extension(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".h" || ext == ".hpp" || ext == ".cpp" || ext == ".cc" ||
         ext == ".cxx";
}

bool skip_dir(const std::filesystem::path& p) {
  const std::string name = p.filename().string();
  return name.empty() || name.front() == '.' ||
         name.compare(0, 5, "build") == 0 || name == "data";
}

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) {
    throw std::runtime_error("splicer_lint: cannot read " + p.string());
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::vector<FileContent> load_tree(const std::filesystem::path& repo_root,
                                   const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  std::vector<fs::path> paths;
  for (const std::string& root : roots) {
    const fs::path abs = repo_root / root;
    if (fs::is_regular_file(abs)) {
      if (lintable_extension(abs)) paths.push_back(abs);
      continue;
    }
    if (!fs::is_directory(abs)) {
      throw std::runtime_error("splicer_lint: no such file or directory: " +
                               abs.string());
    }
    fs::recursive_directory_iterator it(abs), end;
    for (; it != end; ++it) {
      if (it->is_directory()) {
        if (skip_dir(it->path())) it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && lintable_extension(it->path())) {
        paths.push_back(it->path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  paths.erase(std::unique(paths.begin(), paths.end()), paths.end());

  std::vector<FileContent> files;
  files.reserve(paths.size());
  for (const fs::path& p : paths) {
    files.push_back(FileContent{fs::relative(p, repo_root).generic_string(),
                                read_file(p)});
  }
  return files;
}

std::vector<Finding> lint_tree(const std::filesystem::path& repo_root,
                               const std::vector<std::string>& roots) {
  return lint_files(load_tree(repo_root, roots));
}

std::string to_json(const std::vector<Finding>& findings) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "  {\"file\": \"" + json_escape(f.file) +
           "\", \"line\": " + std::to_string(f.line) + ", \"rule\": \"" +
           json_escape(f.rule) + "\", \"message\": \"" +
           json_escape(f.message) + "\"}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out += "]\n";
  return out;
}

std::string to_sarif(const std::vector<Finding>& findings) {
  std::string out;
  out +=
      "{\n"
      "  \"$schema\": "
      "\"https://json.schemastore.org/sarif-2.1.0.json\",\n"
      "  \"version\": \"2.1.0\",\n"
      "  \"runs\": [{\n"
      "    \"tool\": {\"driver\": {\n"
      "      \"name\": \"splicer_lint\",\n"
      "      \"informationUri\": "
      "\"tools/splicer_lint/RULES.md\",\n"
      "      \"rules\": [\n";
  const auto& table = rule_table();
  for (std::size_t i = 0; i < table.size(); ++i) {
    out += "        {\"id\": \"" + json_escape(table[i].id) +
           "\", \"shortDescription\": {\"text\": \"" +
           json_escape(table[i].summary) + "\"}}";
    if (i + 1 < table.size()) out += ",";
    out += "\n";
  }
  out +=
      "      ]\n"
      "    }},\n"
      "    \"results\": [\n";
  for (std::size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out += "      {\"ruleId\": \"" + json_escape(f.rule) +
           "\", \"level\": \"error\", \"message\": {\"text\": \"" +
           json_escape(f.message) +
           "\"}, \"locations\": [{\"physicalLocation\": "
           "{\"artifactLocation\": {\"uri\": \"" +
           json_escape(f.file) +
           "\"}, \"region\": {\"startLine\": " + std::to_string(f.line) +
           "}}}]}";
    if (i + 1 < findings.size()) out += ",";
    out += "\n";
  }
  out +=
      "    ]\n"
      "  }]\n"
      "}\n";
  return out;
}

}  // namespace splicer::lint
