// splicer_cli - command-line front end for the Splicer reproduction.
//
//   splicer_cli compare  [--nodes N] [--payments N] [--seed S] [--tau MS]
//                        [--fund-scale X] [--value-scale X] [--scale-free]
//                        [--threads N] [--trials K] [--settlement-epoch MS]
//                        [--workload synthetic|trace|bursty|hotspot]
//                        [--trace-file CSV] [--streaming] [--no-retain]
//                        [--burst-period S] [--burst-amplitude A]
//                        [--shift-interval S] [--shards N]
//                        [--fault-rate R] [--churn-rate R] [--fee-policy R]
//                        [--timelock-budget N]
//       run all six schemes on one shared scenario and print the comparison;
//       simulations fan out over N worker threads (0 = all hardware
//       threads) and, with K > 1, repeat over K derived-seed workloads and
//       report mean +/- 95% CI. --settlement-epoch > 0 batches engine
//       settlements per (channel, direction) per epoch (0 = exact per-hop).
//       --workload picks the traffic source (trace replays a
//       time,sender,receiver,amount CSV); --streaming makes every engine
//       run pull payments lazily instead of materialising the workload
//       AND evicts resolved payment states (the retention contract: a
//       streaming run holds O(concurrency) states, see the "resident"
//       column); --no-retain forces eviction for materialised runs too.
//       --shards > 1 runs each simulation on N engine shards with
//       barrier-synchronised cross-shard mailboxes (deterministic for a
//       fixed N; see README "Parallelism"); requires --trials 1, and
//       --threads then caps the shard workers instead of the scheme fan-out.
//       The hostile-world knobs (all default off; see README "Hostile-world
//       scenarios") inject Poisson faults/churn/policy rewrites:
//       --fault-rate/--churn-rate/--fee-policy are events per second and
//       --timelock-budget bounds admissible path timelock depth
//
//   splicer_cli place    [--nodes N] [--candidates N] [--omega W] [--seed S]
//                        [--solver exhaustive|approx|milp|descent]
//       solve one placement instance and print the plan + costs
//
//   splicer_cli workflow [--value TOKENS] [--kmg N] [--seed S]
//       trace one encrypted payment workflow (Fig. 3) step by step
//
//   splicer_cli topology [--nodes N] [--seed S] [--scale-free]
//       print topology statistics for the generated PCN

#include <algorithm>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "common/table.h"
#include "graph/generators.h"
#include "graph/metrics.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"
#include "placement/milp_solver.h"
#include "routing/experiment.h"
#include "routing/parallel_experiment.h"
#include "routing/sharded_engine.h"
#include "splicer/workflow.h"

using namespace splicer;

namespace {

/// Minimal --key value / --flag parser.
class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 2; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0) continue;
      key = key.substr(2);
      if (i + 1 < argc && std::strncmp(argv[i + 1], "--", 2) != 0) {
        values_[key] = argv[++i];
      } else {
        values_[key] = "1";
      }
    }
  }

  [[nodiscard]] std::uint64_t u64(const std::string& key, std::uint64_t fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtoull(it->second.c_str(), nullptr, 10);
  }
  [[nodiscard]] double real(const std::string& key, double fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : std::strtod(it->second.c_str(), nullptr);
  }
  [[nodiscard]] std::string str(const std::string& key, std::string fallback) const {
    const auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  [[nodiscard]] bool flag(const std::string& key) const {
    return values_.count(key) != 0;
  }

 private:
  std::map<std::string, std::string> values_;
};

/// Warns when a trace replay dropped rows: strict-mode replays otherwise
/// shrink the workload silently at the CLI level. Streaming scenarios never
/// materialise the trace, so a probe source is drained just for the count.
void warn_trace_skips(const routing::Scenario& scenario) {
  if (scenario.workload.kind != pcn::WorkloadKind::kTrace) return;
  std::size_t skipped = scenario.trace_rows_skipped;
  if (scenario.workload.streaming) {
    // Iterate without storing: skipped_ is counted by next(), and a
    // multi-million-row trace must not be materialised just for the count.
    const auto probe = scenario.make_source();
    while (probe->next()) {
    }
    if (const auto* trace =
            dynamic_cast<const pcn::TraceSource*>(probe.get())) {
      skipped = trace->rows_skipped();
    }
  }
  if (skipped > 0) {
    std::cout << "warning: trace replay skipped " << skipped
              << " row(s) (malformed, unmappable endpoint, or self-pay)\n";
  }
}

routing::ScenarioConfig scenario_from(const Args& args) {
  routing::ScenarioConfig config;
  config.seed = args.u64("seed", 42);
  config.topology.nodes = args.u64("nodes", 100);
  config.topology.fund_scale = args.real("fund-scale", 1.0);
  config.topology.scale_free = args.flag("scale-free");
  config.placement.candidate_count =
      args.u64("candidates", config.topology.nodes >= 1000 ? 30 : 10);
  config.placement.prefer_exact = config.topology.nodes < 1000;
  config.placement.omega = args.real("omega", 0.1);
  config.workload.payment_count = args.u64("payments", 1500);
  config.workload.horizon_seconds = args.real("horizon", 25.0);
  config.workload.value_scale = args.real("value-scale", 1.0);
  config.workload.kind = pcn::workload_kind_from(args.str("workload", "synthetic"));
  config.workload.trace_file = args.str("trace-file", "");
  config.workload.streaming = args.flag("streaming");
  config.workload.burst_period_s = args.real("burst-period", 10.0);
  config.workload.burst_amplitude = args.real("burst-amplitude", 0.8);
  config.workload.hotspot_shift_interval_s = args.real("shift-interval", 8.0);
  config.workload.validate();
  return config;
}

int cmd_compare(const Args& args) {
  const auto config = scenario_from(args);
  const std::size_t threads = args.u64("threads", 0);
  const std::size_t trials = std::max<std::uint64_t>(1, args.u64("trials", 1));
  const auto shards =
      static_cast<std::uint32_t>(std::max<std::uint64_t>(1, args.u64("shards", 1)));
  if (shards > 1 && trials > 1) {
    std::cerr << "error: --shards parallelises inside one simulation and "
                 "--trials across simulations; combine at most one of them "
                 "(run --shards with --trials 1)\n";
    return 1;
  }

  std::cout << "preparing scenario: " << config.topology.nodes << " nodes, ";
  if (config.workload.kind == pcn::WorkloadKind::kTrace) {
    std::cout << "trace " << config.workload.trace_file;
  } else {
    std::cout << config.workload.payment_count << " payments";
  }
  std::cout << ", workload " << pcn::to_string(config.workload.kind)
            << (config.workload.streaming ? " (streaming)" : "") << ", seed "
            << config.seed;
  if (trials > 1) std::cout << ", " << trials << " trials";
  std::cout << "\n";

  routing::SchemeConfig scheme_config;
  scheme_config.protocol.tau_s = args.real("tau", 200.0) / 1000.0;
  scheme_config.engine.settlement_epoch_s =
      args.real("settlement-epoch", 0.0) / 1000.0;
  // Retention contract: streaming runs evict resolved payment states (the
  // unbounded-run memory model); --no-retain forces eviction for
  // materialised runs too. Metrics are identical either way.
  scheme_config.engine.retain_resolved =
      !args.flag("no-retain") && !config.workload.streaming;
  // Hostile-world scenario pack: Poisson fault/churn/policy mutation
  // streams. All default off, in which case the run is byte-identical to
  // a benign one (no mutators are built at all).
  auto& hostile = scheme_config.engine.hostile;
  hostile.fault_rate = args.real("fault-rate", 0.0);
  hostile.churn_rate = args.real("churn-rate", 0.0);
  hostile.fee_policy_rate = args.real("fee-policy", 0.0);
  hostile.timelock_budget = static_cast<std::uint32_t>(args.u64(
      "timelock-budget", pcn::HostileConfig::kUnboundedTimelock));
  hostile.validate();
  if (hostile.any_mutation_active() ||
      hostile.timelock_budget != pcn::HostileConfig::kUnboundedTimelock) {
    std::cout << "hostile: fault-rate " << hostile.fault_rate
              << "/s, churn-rate " << hostile.churn_rate << "/s, fee-policy "
              << hostile.fee_policy_rate << "/s, timelock-budget ";
    if (hostile.timelock_budget == pcn::HostileConfig::kUnboundedTimelock) {
      std::cout << "unbounded";
    } else {
      std::cout << hostile.timelock_budget;
    }
    std::cout << "\n";
  }
  std::vector<routing::SchemeTask> tasks;
  for (const auto scheme :
       {routing::Scheme::kSplicer, routing::Scheme::kSpider,
        routing::Scheme::kFlash, routing::Scheme::kLandmark,
        routing::Scheme::kA2l, routing::Scheme::kShortestPath}) {
    tasks.push_back({scheme, scheme_config, {}});
  }

  routing::ParallelRunner runner({threads, trials});
  std::vector<routing::TaskResult> results;
  if (trials == 1) {
    // Prepare once, report the placement, and share the scenario across
    // every scheme task. (With trials > 1 each trial places its own
    // derived-seed scenario, so there is no single hub count to report and
    // the runner prepares them all itself.)
    std::vector<routing::Scenario> prepared;
    prepared.push_back(routing::prepare_scenario(config));
    std::cout << "placed " << prepared.front().multi_star.hubs.size()
              << " smooth nodes; " << prepared.front().clients.size()
              << " clients\n";
    warn_trace_skips(prepared.front());
    std::cout << "\n";
    if (shards > 1) {
      // Intra-simulation parallelism: each scheme runs once across N
      // engine shards (schemes stay sequential so the shard workers own
      // the machine); metrics land in the same trial-0 slot the table
      // below reads.
      results.resize(tasks.size());
      std::uint64_t crossings = 0;
      for (std::size_t t = 0; t < tasks.size(); ++t) {
        routing::ShardedEngineConfig sharded;
        sharded.shards = shards;
        sharded.threads = threads;
        results[t].trials.push_back(routing::run_scheme_sharded(
            prepared.front(), tasks[t].scheme, tasks[t].config, sharded));
        crossings += results[t].trials.back().cross_shard_messages;
      }
      std::cout << "sharded: " << shards << " shards, "
                << crossings << " cross-shard TU handoffs/results\n";
    } else {
      results = runner.run_prepared(prepared, tasks).front();
    }
  } else {
    if (config.workload.kind == pcn::WorkloadKind::kTrace) {
      // Derived-seed trials re-place their own topologies but replay the
      // same trace file; probe the base-seed scenario once so dropped rows
      // still warn. This pays one extra prepare_scenario (the exact skip
      // count needs the scenario's real client set for strict-mode range
      // checks) — 1/K of the preparation work the runner does anyway.
      warn_trace_skips(routing::prepare_scenario(config));
    }
    std::cout << "\n";
    results = runner.run({config}, tasks).front();
  }

  if (trials == 1) {
    common::Table table({"scheme", "TSR", "throughput", "avg delay (ms)",
                         "TUs sent", "TUs marked", "messages", "peak buf",
                         "resident", "evicted"});
    for (std::size_t t = 0; t < tasks.size(); ++t) {
      const auto& m = results[t].first();
      const auto row = table.add_row();
      table.set(row, 0, tasks[t].name());
      table.set(row, 1, common::format_percent(m.tsr()));
      table.set(row, 2, common::format_percent(m.normalized_throughput()));
      table.set(row, 3, m.average_delay_s() * 1000.0, 1);
      table.set(row, 4, static_cast<std::int64_t>(m.tus_sent));
      table.set(row, 5, static_cast<std::int64_t>(m.tus_marked));
      table.set(row, 6, static_cast<std::int64_t>(m.messages.total()));
      table.set(row, 7, static_cast<std::int64_t>(m.peak_payment_buffer));
      table.set(row, 8, static_cast<std::int64_t>(m.peak_resident_states));
      table.set(row, 9, static_cast<std::int64_t>(m.states_evicted));
    }
    std::cout << table.render();
    return 0;
  }

  // Mean +/- the 95% confidence half-width over the derived-seed trials.
  const auto pm = [](const common::RunningStats& s, int precision) {
    return common::format_double(s.mean(), precision) + " +/- " +
           common::format_double(common::ci95_half_width(s), precision);
  };
  common::Table table({"scheme", "TSR (%)", "throughput (%)",
                       "avg delay (ms)", "messages"});
  for (std::size_t t = 0; t < tasks.size(); ++t) {
    const auto& cell = results[t];
    const auto row = table.add_row();
    table.set(row, 0, tasks[t].name());
    common::RunningStats tsr_pct, thr_pct, delay_ms;
    for (const auto& m : cell.trials) {
      tsr_pct.add(m.tsr() * 100.0);
      thr_pct.add(m.normalized_throughput() * 100.0);
      delay_ms.add(m.average_delay_s() * 1000.0);
    }
    table.set(row, 1, pm(tsr_pct, 1));
    table.set(row, 2, pm(thr_pct, 1));
    table.set(row, 3, pm(delay_ms, 1));
    table.set(row, 4, pm(cell.messages, 0));
  }
  std::cout << table.render();
  return 0;
}

int cmd_place(const Args& args) {
  common::Rng rng(args.u64("seed", 42));
  const std::size_t nodes = args.u64("nodes", 100);
  const auto g = args.flag("scale-free")
                     ? graph::preferential_attachment(nodes, 4, rng)
                     : graph::watts_strogatz(nodes, 8, 0.15, rng);
  const auto instance = placement::build_instance_by_degree(
      g, args.u64("candidates", 10), args.real("omega", 0.1));

  const std::string solver = args.str("solver", "approx");
  placement::PlacementPlan plan;
  if (solver == "exhaustive") {
    plan = placement::solve_exhaustive(instance).plan;
  } else if (solver == "milp") {
    const auto result = placement::solve_milp(instance);
    std::cout << "MILP: " << result.variables << " vars, " << result.constraints
              << " constraints, " << result.stats.nodes_explored
              << " B&B nodes, status " << lp::to_string(result.status) << "\n";
    plan = result.plan;
  } else if (solver == "descent") {
    plan = placement::solve_greedy_descent(instance).plan;
  } else {
    plan = placement::solve_approx(instance).plan;
  }

  const auto costs = placement::balance_cost(instance, plan);
  std::cout << "solver: " << solver << "\nhubs (" << plan.hub_count() << "):";
  for (std::size_t n = 0; n < instance.candidate_count(); ++n) {
    if (plan.placed[n]) std::cout << " " << instance.candidates[n];
  }
  std::cout << "\nC_B = " << costs.balance << "  (C_M = " << costs.management
            << ", C_S = " << costs.synchronization << ", omega = "
            << instance.omega << ")\n";
  // Per-hub client counts.
  std::map<std::size_t, std::size_t> load;
  for (const auto a : plan.assignment) ++load[a];
  for (const auto& [hub, clients] : load) {
    std::cout << "  hub " << instance.candidates[hub] << " manages " << clients
              << " clients\n";
  }
  return 0;
}

int cmd_workflow(const Args& args) {
  common::Rng rng(args.u64("seed", 42));
  crypto::KeyManagementGroup kmg(args.u64("kmg", 5), rng.fork());
  core::PaymentWorkflow workflow(kmg, rng);
  core::PaymentDemand demand{1, 2, common::tokens(args.real("value", 13.25))};
  const auto result = workflow.execute(demand);
  for (const auto& line : result.trace) std::cout << line << "\n";
  std::cout << "TUs: " << result.tu_count << ", messages: " << result.messages
            << ", result: " << (result.success ? "SUCCESS" : "FAILURE") << "\n";
  return result.success ? 0 : 1;
}

int cmd_topology(const Args& args) {
  common::Rng rng(args.u64("seed", 42));
  const std::size_t nodes = args.u64("nodes", 100);
  const auto g = args.flag("scale-free")
                     ? graph::preferential_attachment(nodes, 4, rng)
                     : graph::watts_strogatz(nodes, 8, 0.15, rng);
  const auto stats = graph::degree_stats(g);
  std::cout << "nodes: " << g.node_count() << "\nchannels: " << g.edge_count()
            << "\ndegree: mean " << stats.mean << ", min " << stats.min
            << ", max " << stats.max
            << "\nconnected: " << (graph::is_connected(g) ? "yes" : "no")
            << "\nclustering: " << graph::average_clustering(g);
  if (nodes <= 2000) {
    std::cout << "\nmean hops: " << graph::HopMatrix(g).mean_hops();
  }
  std::cout << "\n";
  return 0;
}

void usage() {
  std::cout << "usage: splicer_cli <compare|place|workflow|topology> [--key value ...]\n"
               "  compare   run all routing schemes on one scenario\n"
               "  place     solve a hub-placement instance\n"
               "  workflow  trace one encrypted payment (Fig. 3)\n"
               "  topology  PCN topology statistics\n";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 2;
  }
  const std::string command = argv[1];
  const Args args(argc, argv);
  if (command == "compare") return cmd_compare(args);
  if (command == "place") return cmd_place(args);
  if (command == "workflow") return cmd_workflow(args);
  if (command == "topology") return cmd_topology(args);
  usage();
  return 2;
}
