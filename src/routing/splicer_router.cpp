#include "routing/splicer_router.h"

#include <stdexcept>

namespace splicer::routing {

SplicerRouter::SplicerRouter(std::vector<NodeId> hub_of, std::vector<NodeId> hubs)
    : SplicerRouter(std::move(hub_of), std::move(hubs), Config{}) {}

SplicerRouter::SplicerRouter(std::vector<NodeId> hub_of, std::vector<NodeId> hubs,
                             Config config)
    : RateRouterBase(config.protocol),
      hub_of_(std::move(hub_of)),
      hubs_(std::move(hubs)),
      config_(config) {
  if (hubs_.empty()) throw std::invalid_argument("SplicerRouter: no hubs");
}

void SplicerRouter::on_start(Engine& engine) {
  RateRouterBase::on_start(engine);
  // Epoch synchronisation (Fig. 5 step 1): every hub exchanges the final
  // global information of the last epoch with every other hub. The horizon
  // is queried per tick so streamed workloads keep extending it.
  const auto z = hubs_.size();
  engine.scheduler().every(config_.epoch_s, [&engine, z] {
    if (engine.past_horizon()) return false;
    engine.counters().sync_messages += z * (z - 1);
    return true;
  });
}

RateRouterBase::PairKey SplicerRouter::pair_of(const Engine& engine,
                                               const pcn::Payment& payment) const {
  (void)engine;
  return PairKey{payment.sender, payment.receiver};
}

std::vector<graph::Path> SplicerRouter::compute_pair_paths(
    Engine& engine, const PairKey& pair) const {
  const NodeId hub_s = hub_of_.at(pair.from);
  const NodeId hub_e = hub_of_.at(pair.to);
  const auto key = std::make_pair(hub_s, hub_e);
  const auto it = hub_path_cache_.find(key);
  if (it != hub_path_cache_.end()) return it->second;

  std::vector<graph::Path> paths;
  if (hub_s == hub_e) {
    // Both clients on one hub: the hub segment is the hub itself.
    graph::Path trivial;
    trivial.nodes.push_back(hub_s);
    paths.push_back(std::move(trivial));
  } else {
    paths = graph::select_paths(engine.network().topology(), hub_s, hub_e,
                                protocol_config().k_paths,
                                protocol_config().path_type);
  }
  hub_path_cache_.emplace(key, paths);
  return paths;
}

bool SplicerRouter::admit_tu(Engine& engine, const graph::Path& path,
                             const std::vector<Amount>& hop_amounts) {
  if (!protocol_config().source_gating) return true;
  const auto& network = engine.network();
  for (std::size_t i = 0; i < path.edges.size(); ++i) {
    const auto& ch = network.channel(path.edges[i]);
    if (ch.available(ch.direction_from(path.nodes[i])) < hop_amounts[i]) {
      return false;
    }
  }
  return true;
}

std::optional<graph::Path> SplicerRouter::assemble_path(
    Engine& engine, NodeId from, NodeId to, const graph::Path& pair_path) const {
  const auto& g = engine.network().topology();
  const NodeId hub_s = hub_of_.at(from);
  const NodeId hub_e = hub_of_.at(to);

  graph::Path full;
  // Sender spoke (skipped when the sender is itself the hub).
  if (from != hub_s) {
    const auto spoke = g.find_edge(from, hub_s);
    if (spoke == graph::kInvalidEdge) return std::nullopt;
    full.nodes.push_back(from);
    full.edges.push_back(spoke);
  }
  // Hub segment.
  if (pair_path.nodes.empty() || pair_path.nodes.front() != hub_s ||
      pair_path.nodes.back() != hub_e) {
    return std::nullopt;
  }
  full.nodes.insert(full.nodes.end(), pair_path.nodes.begin(), pair_path.nodes.end());
  full.edges.insert(full.edges.end(), pair_path.edges.begin(), pair_path.edges.end());
  // Receiver spoke.
  if (to != hub_e) {
    const auto spoke = g.find_edge(hub_e, to);
    if (spoke == graph::kInvalidEdge) return std::nullopt;
    full.nodes.push_back(to);
    full.edges.push_back(spoke);
  }
  full.length = static_cast<double>(full.edges.size());
  if (full.edges.empty()) return std::nullopt;  // degenerate: from == to
  return full;
}

}  // namespace splicer::routing
