#pragma once

// Parallel experiment execution for the Figs. 7/8/9 evaluation harness.
//
// The sequential harness (experiment.h) runs five schemes × many sweep
// points × (optionally) many seeds strictly one after another. All of that
// work is independent: a (scenario, trial, scheme) triple fully determines
// one simulation. ParallelRunner fans those triples across a fixed-shard
// ThreadPool and merges the per-shard metrics back in submission order, so
//
//   * the result for every (scenario, task, trial) lands at a fixed index —
//     thread interleaving never changes what is reported where; and
//   * every simulation derives its RNG seeds deterministically from
//     (base seed, scenario index, scheme, trial) — an N-thread run is
//     bit-identical to a 1-thread run of the same request.
//
// Trial 0 uses the caller's seeds untouched, which makes ParallelRunner a
// drop-in replacement for the sequential prepare_scenario()/run_scheme()
// loop: same numbers, just computed cores-wide. Trials >= 1 get derived
// seeds for confidence intervals across independent workloads.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/stats.h"
#include "routing/experiment.h"

namespace splicer::routing {

/// Deterministic seed derivation: folds each component into the base seed
/// with splitmix64 steps. Stable across platforms (see common/rng.h).
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base,
                                        std::uint64_t scenario_idx,
                                        std::uint64_t scheme_tag,
                                        std::uint64_t trial) noexcept;

/// One scheme execution request; `label` names the table column/row (useful
/// when the same scheme runs under several protocol configs, e.g. the tau
/// sweep or the rate-control ablation). Empty label = to_string(scheme).
struct SchemeTask {
  Scheme scheme = Scheme::kSplicer;
  SchemeConfig config;
  std::string label;

  [[nodiscard]] const char* name() const noexcept {
    return label.empty() ? to_string(scheme) : label.c_str();
  }
};

/// Metrics for one (scenario, task) cell, merged across trials.
struct TaskResult {
  std::vector<EngineMetrics> trials;  // indexed by trial
  common::RunningStats tsr;
  common::RunningStats throughput;
  common::RunningStats delay_s;
  common::RunningStats messages;
  /// Peak resident PaymentStates per trial (the retention-contract memory
  /// signal; equals the payment count unless eviction is enabled).
  common::RunningStats peak_resident;

  /// Trial-0 metrics: bit-identical to the sequential single-run path.
  [[nodiscard]] const EngineMetrics& first() const { return trials.front(); }
};

struct ParallelRunnerConfig {
  std::size_t threads = 0;  // 0 = one per hardware thread
  std::size_t trials = 1;   // independent derived-seed repetitions
};

class ParallelRunner {
 public:
  explicit ParallelRunner(ParallelRunnerConfig config = {});

  /// Runs every (scenario × trial × task) simulation across the pool.
  /// Phase 1 prepares each (scenario, trial) once — a prepared Scenario is
  /// shared read-only by all scheme tasks, so every scheme still sees the
  /// identical topology/placement/workload (the paper's comparison setup).
  /// Phase 2 runs the scheme simulations. Result[s][t] merges the trials
  /// for scenarios[s] under tasks[t].
  [[nodiscard]] std::vector<std::vector<TaskResult>> run(
      const std::vector<ScenarioConfig>& scenarios,
      const std::vector<SchemeTask>& tasks);

  /// Convenience: one scenario, plain scheme list, default configs.
  [[nodiscard]] std::vector<TaskResult> run(const ScenarioConfig& scenario,
                                            const std::vector<Scheme>& schemes);

  /// Runs the task grid over scenarios the caller prepared (and may have
  /// inspected: hub counts, client sets, ...). Single trial per cell — a
  /// prepared Scenario pins its workload, so repetitions would be copies;
  /// task configs are used verbatim.
  [[nodiscard]] std::vector<std::vector<TaskResult>> run_prepared(
      const std::vector<Scenario>& scenarios,
      const std::vector<SchemeTask>& tasks);

  [[nodiscard]] const ParallelRunnerConfig& config() const noexcept {
    return config_;
  }

 private:
  ParallelRunnerConfig config_;
};

/// Scheme tasks for the five comparison schemes under one shared config.
[[nodiscard]] std::vector<SchemeTask> comparison_tasks(SchemeConfig config = {});

}  // namespace splicer::routing
