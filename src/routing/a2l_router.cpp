#include "routing/a2l_router.h"

#include <algorithm>
#include <cmath>

#include "graph/metrics.h"
#include "routing/path_filter.h"

namespace splicer::routing {

A2lRouter::A2lRouter() : A2lRouter(Config{}) {}

void A2lRouter::on_start(Engine& engine) {
  hub_ = config_.hub != graph::kInvalidNode
             ? config_.hub
             : graph::nodes_by_degree(engine.network().topology()).front();
  hub_busy_until_ = 0.0;
}

void A2lRouter::on_payment(Engine& engine, const pcn::Payment& payment) {
  const auto& g = engine.network().topology();
  const auto in_edge = g.find_edge(payment.sender, hub_);
  const auto out_edge = g.find_edge(hub_, payment.receiver);
  if (in_edge == graph::kInvalidEdge || out_edge == graph::kInvalidEdge) {
    engine.fail_payment(payment.id, FailReason::kNoPath);
    return;
  }
  // Phase-based tumbler: the puzzle-promise phase for this payment starts
  // at the next epoch boundary; the hub's cryptographic pipeline then
  // serialises payments.
  const double boundary =
      config_.epoch_s > 0.0
          ? std::ceil(engine.now() / config_.epoch_s) * config_.epoch_s
          : engine.now();
  const double start = std::max(boundary, hub_busy_until_);
  hub_busy_until_ = start + config_.hub_crypto_s;
  if (hub_busy_until_ > payment.deadline) {
    engine.fail_payment(payment.id, FailReason::kHubOverload);
    return;
  }
  engine.counters().control_messages += 4;  // puzzle promise/solver exchange

  // Typed crypto-phase timer: the engine's PaymentState keeps the payment
  // and the star topology is immutable during a run, so the path is
  // recomputed on fire from the id alone — no closure, no Path copy.
  engine.schedule_timer(hub_busy_until_ - engine.now(), payment.id);
}

void A2lRouter::on_timer(Engine& engine, std::uint64_t a, std::uint64_t b) {
  (void)b;
  // Checked lookup: the crypto-phase delay can outlive the payment, whose
  // resolved state may already be evicted (streaming retention contract).
  const auto* state = engine.find_payment_state(a);
  if (state == nullptr || !state->active()) return;
  const pcn::Payment& payment = state->payment;
  const auto& g = engine.network().topology();

  graph::Path path;
  path.nodes = {payment.sender, hub_, payment.receiver};
  path.edges = {g.find_edge(payment.sender, hub_),
                g.find_edge(hub_, payment.receiver)};
  path.length = 2.0;

  // Hostile-world: the tumbler has exactly one route; if a spoke channel
  // closed, an endpoint (or the hub itself) is offline, or the two-hop
  // timelock cost is over budget, the payment cannot complete.
  if (const auto blocked = path_obstruction(
          engine.network(), path, engine.config().hostile.timelock_budget)) {
    engine.fail_payment(payment.id, *blocked);
    return;
  }

  TransactionUnit tu;
  tu.payment = payment.id;
  tu.value = payment.value;
  tu.path = std::move(path);
  tu.hop_amounts.assign(2, payment.value);
  tu.deadline = payment.deadline;
  engine.send_tu(std::move(tu));
}

void A2lRouter::on_tu_failed(Engine& engine, const TransactionUnit& tu,
                             FailReason reason) {
  (void)reason;
  // Unsplit and atomic: the payment cannot complete.
  engine.fail_payment(tu.payment, FailReason::kInsufficientFunds);
}

}  // namespace splicer::routing
