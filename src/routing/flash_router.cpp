#include "routing/flash_router.h"

#include <algorithm>

#include "graph/disjoint_paths.h"
#include "graph/max_flow.h"
#include "routing/path_filter.h"

namespace splicer::routing {

FlashRouter::FlashRouter() : FlashRouter(Config{}) {}

void FlashRouter::on_payment(Engine& engine, const pcn::Payment& payment) {
  auto& progress = progress_[payment.id];
  progress.elephant = payment.value > config_.elephant_threshold;
  progress.retries_left =
      progress.elephant ? config_.elephant_retries : config_.mice_retries;
  if (progress.elephant) {
    send_elephant(engine, payment, payment.value, progress);
  } else {
    send_mice(engine, payment, payment.value, progress);
  }
}

const std::vector<graph::Path>& FlashRouter::mice_paths(Engine& engine,
                                                        NodeId from, NodeId to) {
  const auto key = std::make_pair(from, to);
  const auto it = mice_cache_.find(key);
  if (it != mice_cache_.end()) return it->second;
  auto paths = graph::edge_disjoint_shortest_paths(engine.network().topology(),
                                                   from, to,
                                                   config_.mice_path_count);
  return mice_cache_.emplace(key, std::move(paths)).first->second;
}

void FlashRouter::send_mice(Engine& engine, const pcn::Payment& payment,
                            Amount value, PaymentProgress& progress) {
  const auto& paths = mice_paths(engine, payment.sender, payment.receiver);
  // Hostile-world filter over the precomputed candidates: skip paths that
  // are currently obstructed (closed channel, offline endpoint, timelock
  // over budget). In a benign run every path passes, so the random pick
  // below draws over the same range as before — identical RNG stream.
  mice_candidates_.clear();
  for (const auto& path : paths) {
    if (!path_obstruction(engine.network(), path,
                          engine.config().hostile.timelock_budget)) {
      mice_candidates_.push_back(&path);
    }
  }
  if (mice_candidates_.empty()) {
    engine.fail_payment(payment.id, FailReason::kNoPath);
    return;
  }
  const auto& path =
      *mice_candidates_[engine.rng().index(mice_candidates_.size())];
  TransactionUnit tu;
  tu.payment = payment.id;
  tu.value = value;
  tu.path = path;
  tu.hop_amounts.assign(path.edges.size(), value);
  tu.deadline = payment.deadline;
  ++progress.outstanding;
  engine.send_tu(std::move(tu));
}

void FlashRouter::send_elephant(Engine& engine, const pcn::Payment& payment,
                                Amount value, PaymentProgress& progress) {
  // Probe balances (stale up to probe_staleness_s: probes take a round
  // trip, so concurrent elephants plan against the same snapshot).
  if (snapshot_time_ < 0.0 ||
      engine.now() - snapshot_time_ >= config_.probe_staleness_s) {
    snapshot_forward_ = engine.network().forward_balances_tokens();
    snapshot_backward_ = engine.network().backward_balances_tokens();
    snapshot_time_ = engine.now();
    engine.counters().probe_messages += engine.network().channel_count() / 16;
    // Hostile-world: a closed or endpoint-offline channel contributes no
    // capacity in either direction, so max-flow plans around it.
    for (std::size_t c = 0; c < engine.network().channel_count(); ++c) {
      if (!engine.network().channel_usable(static_cast<ChannelId>(c))) {
        snapshot_forward_[c] = 0;
        snapshot_backward_[c] = 0;
      }
    }
  }

  graph::MaxFlowOptions options;
  options.forward_capacity = &snapshot_forward_;
  options.backward_capacity = &snapshot_backward_;
  options.flow_limit = common::to_tokens(value);
  options.max_paths = config_.max_flow_paths;
  auto flow = graph::max_flow(engine.network().topology(), payment.sender,
                              payment.receiver, options);
  // Drop flow paths obstructed since the snapshot (or whose timelock cost
  // exceeds the budget) and deduct their flow; the benign-run subtraction
  // is exact zero, keeping `reachable` bit-identical to the unfiltered sum.
  double usable_flow = flow.total_flow;
  std::erase_if(flow.paths, [&](const auto& flow_path) {
    if (!path_obstruction(engine.network(), flow_path.path,
                          engine.config().hostile.timelock_budget)) {
      return false;
    }
    usable_flow -= flow_path.flow;
    return true;
  });
  const Amount reachable = common::tokens(usable_flow);
  if (flow.paths.empty() || reachable < value) {
    engine.fail_payment(payment.id, FailReason::kInsufficientFunds);
    return;
  }
  // Split the value across the flow paths proportionally to their flows;
  // fix the rounding remainder on the widest path.
  std::vector<Amount> shares(flow.paths.size(), 0);
  Amount assigned = 0;
  std::size_t widest = 0;
  for (std::size_t i = 0; i < flow.paths.size(); ++i) {
    shares[i] = std::min<Amount>(
        common::tokens(flow.paths[i].flow),
        value - assigned);
    assigned += shares[i];
    if (flow.paths[i].flow > flow.paths[widest].flow) widest = i;
  }
  if (assigned < value) shares[widest] += value - assigned;

  for (std::size_t i = 0; i < flow.paths.size(); ++i) {
    if (shares[i] <= 0) continue;
    TransactionUnit tu;
    tu.payment = payment.id;
    tu.value = shares[i];
    tu.path = flow.paths[i].path;
    tu.hop_amounts.assign(tu.path.edges.size(), shares[i]);
    tu.deadline = payment.deadline;
    ++progress.outstanding;
    engine.send_tu(std::move(tu));
  }
}

void FlashRouter::on_tu_delivered(Engine& engine, const TransactionUnit& tu) {
  (void)engine;
  const auto it = progress_.find(tu.payment);
  if (it != progress_.end() && it->second.outstanding > 0) {
    --it->second.outstanding;
  }
}

void FlashRouter::on_tu_failed(Engine& engine, const TransactionUnit& tu,
                               FailReason reason) {
  (void)reason;
  const auto it = progress_.find(tu.payment);
  if (it == progress_.end()) return;
  auto& progress = it->second;
  if (progress.outstanding > 0) --progress.outstanding;
  progress.failed_value += tu.value;

  // Checked lookup: a sibling split's synchronous failure can resolve the
  // payment — and, under the retention contract, evict its state — before
  // this TU unwinds. Evicted == resolved == nothing left to retry.
  const auto* state = engine.find_payment_state(tu.payment);
  if (state == nullptr || !state->active()) return;
  if (progress.outstanding > 0) return;  // wait until all splits resolve

  if (progress.retries_left == 0) {
    engine.fail_payment(tu.payment, FailReason::kInsufficientFunds);
    return;
  }
  --progress.retries_left;
  const Amount retry_value = progress.failed_value;
  progress.failed_value = 0;
  // Copy: the retry's own splits can fail synchronously, resolve the
  // payment and (retention off) evict the state this reference points into.
  const pcn::Payment payment = state->payment;
  if (progress.elephant) {
    send_elephant(engine, payment, retry_value, progress);
  } else {
    send_mice(engine, payment, retry_value, progress);
  }
}

}  // namespace splicer::routing
