#include "routing/shortest_path_router.h"

#include "graph/shortest_path.h"
#include "routing/path_filter.h"

namespace splicer::routing {

void ShortestPathRouter::on_payment(Engine& engine, const pcn::Payment& payment) {
  const auto key = std::make_pair(payment.sender, payment.receiver);
  auto it = cache_.find(key);
  if (it == cache_.end()) {
    auto p = graph::shortest_path(engine.network().topology(), payment.sender,
                                  payment.receiver);
    if (!p || p->edges.empty()) {
      engine.fail_payment(payment.id, FailReason::kNoPath);
      return;
    }
    it = cache_.emplace(key, std::move(*p)).first;
  }
  // The strawman never re-plans, so a mutation obstructing its one cached
  // path fails the payment up front instead of burning locks on a prefix.
  if (const auto obstruction = path_obstruction(
          engine.network(), it->second, engine.config().hostile.timelock_budget)) {
    engine.fail_payment(payment.id, *obstruction);
    return;
  }
  TransactionUnit tu;
  tu.payment = payment.id;
  tu.value = payment.value;
  tu.path = it->second;
  tu.hop_amounts.assign(it->second.edges.size(), payment.value);
  tu.deadline = payment.deadline;
  engine.send_tu(std::move(tu));
}

void ShortestPathRouter::on_tu_failed(Engine& engine, const TransactionUnit& tu,
                                      FailReason reason) {
  (void)reason;
  engine.fail_payment(tu.payment, FailReason::kInsufficientFunds);
}

}  // namespace splicer::routing
