#include "routing/experiment.h"

#include <algorithm>
#include <stdexcept>

#include "graph/generators.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"
#include "routing/a2l_router.h"
#include "routing/flash_router.h"
#include "routing/landmark_router.h"
#include "routing/shortest_path_router.h"
#include "routing/spider_router.h"
#include "routing/splicer_router.h"

namespace splicer::routing {

const char* to_string(Scheme scheme) noexcept {
  switch (scheme) {
    case Scheme::kSplicer: return "Splicer";
    case Scheme::kSpider: return "Spider";
    case Scheme::kFlash: return "Flash";
    case Scheme::kLandmark: return "Landmark";
    case Scheme::kA2l: return "A2L";
    case Scheme::kShortestPath: return "ShortestPath";
  }
  return "?";
}

std::vector<Scheme> comparison_schemes() {
  return {Scheme::kSplicer, Scheme::kSpider, Scheme::kFlash, Scheme::kLandmark,
          Scheme::kA2l};
}

Scenario prepare_scenario(const ScenarioConfig& config) {
  common::Rng rng(config.seed);
  graph::Graph g =
      config.topology.scale_free
          ? graph::preferential_attachment(config.topology.nodes,
                                           config.topology.ws_degree / 2, rng)
          : graph::watts_strogatz(config.topology.nodes, config.topology.ws_degree,
                                  config.topology.ws_beta, rng);

  pcn::Network raw =
      pcn::Network::with_sampled_funds(std::move(g), config.topology.fund_scale, rng);

  placement::PlacementInstance instance = placement::build_instance_by_degree(
      raw.topology(), config.placement.candidate_count, config.placement.omega);

  placement::PlacementPlan plan;
  if (config.placement.prefer_exact && config.placement.candidate_count <= 14) {
    plan = placement::solve_exhaustive(instance).plan;
  } else {
    plan = placement::solve_approx(instance).plan;
  }

  placement::TransformResult multi_star =
      placement::build_multi_star(raw, instance, plan);
  placement::TransformResult single_star = placement::build_single_star(raw);

  // Clients: nodes that are endpoints in every substrate - exclude Splicer
  // hubs and the A2L hub so the same payments are routable everywhere.
  std::vector<pcn::NodeId> clients;
  for (pcn::NodeId v = 0; v < raw.node_count(); ++v) {
    if (!multi_star.is_hub[v] && v != single_star.hubs.front()) {
      clients.push_back(v);
    }
  }
  if (clients.size() < 2) throw std::logic_error("prepare_scenario: too few clients");

  config.workload.validate();
  // Snapshot the RNG at the workload point: make_source() re-derives the
  // identical stream from it for every run (and for the materialised
  // vector below, so streaming toggles nothing but memory).
  const common::Rng workload_rng = rng;
  std::vector<pcn::Payment> payments;
  std::size_t trace_rows_skipped = 0;
  if (!config.workload.streaming) {
    const auto source =
        pcn::make_traffic_source(clients, config.workload, workload_rng);
    payments = pcn::drain(*source);
    // Trace replays drop malformed/unmappable rows while draining; keep the
    // count so front ends can warn instead of silently shrinking the
    // workload.
    if (const auto* trace = dynamic_cast<const pcn::TraceSource*>(source.get())) {
      trace_rows_skipped = trace->rows_skipped();
    }
  }

  return Scenario{std::move(raw),       std::move(multi_star),
                  std::move(single_star), std::move(instance),
                  std::move(plan),      std::move(payments),
                  std::move(clients),   config.workload,
                  workload_rng,         trace_rows_skipped};
}

std::unique_ptr<pcn::TrafficSource> Scenario::make_source() const {
  if (!workload.streaming) {
    return std::make_unique<pcn::VectorSource>(&payments);
  }
  return pcn::make_traffic_source(clients, workload, workload_rng);
}

EngineMetrics run_scheme(const Scenario& scenario, Scheme scheme,
                         SchemeConfig config) {
  switch (scheme) {
    case Scheme::kSplicer: {
      config.engine.queues_enabled = true;
      SplicerRouter::Config rc;
      rc.protocol = config.protocol;
      SplicerRouter router(scenario.multi_star.hub_of, scenario.multi_star.hubs, rc);
      Engine engine(scenario.multi_star.network, scenario.make_source(),
                    router, config.engine);
      return engine.run();
    }
    case Scheme::kSpider: {
      config.engine.queues_enabled = true;
      SpiderRouter::Config rc;
      rc.protocol = config.protocol;
      // Spider's senders compute k shortest paths over the raw topology.
      rc.protocol.path_type = graph::PathType::kEdgeDisjointShortest;
      SpiderRouter router(rc);
      Engine engine(scenario.raw, scenario.make_source(), router,
                    config.engine);
      return engine.run();
    }
    case Scheme::kFlash: {
      config.engine.queues_enabled = false;
      FlashRouter router;
      Engine engine(scenario.raw, scenario.make_source(), router,
                    config.engine);
      return engine.run();
    }
    case Scheme::kLandmark: {
      config.engine.queues_enabled = false;
      LandmarkRouter router;
      Engine engine(scenario.raw, scenario.make_source(), router,
                    config.engine);
      return engine.run();
    }
    case Scheme::kA2l: {
      config.engine.queues_enabled = false;
      A2lRouter::Config rc;
      rc.hub = scenario.single_star.hubs.front();
      rc.epoch_s = config.protocol.tau_s;  // tumbler phase = update time
      A2lRouter router(rc);
      Engine engine(scenario.single_star.network, scenario.make_source(),
                    router, config.engine);
      return engine.run();
    }
    case Scheme::kShortestPath: {
      config.engine.queues_enabled = false;
      ShortestPathRouter router;
      Engine engine(scenario.raw, scenario.make_source(), router,
                    config.engine);
      return engine.run();
    }
  }
  throw std::invalid_argument("run_scheme: unknown scheme");
}

}  // namespace splicer::routing
