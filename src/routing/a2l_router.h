#pragma once

// A2L (S&P '21) baseline: a single cryptographic payment channel hub.
// Every payment is sender -> hub -> receiver in one hop each, atomically
// and unsplit. The hub performs its anonymous-atomic-lock cryptography for
// each payment, modelled as a fixed per-payment processing cost that
// serialises at the hub - the scalability bottleneck the paper contrasts
// against (A2L's TSR collapses as load and update time grow).

#include <optional>

#include "routing/engine.h"
#include "routing/router.h"

namespace splicer::routing {

class A2lRouter final : public Router {
 public:
  struct Config {
    /// Per-payment cryptographic processing time at the hub (puzzle
    /// generation + randomisation + solving, per the A2L protocol).
    double hub_crypto_s = 0.020;
    /// Tumbler epoch: puzzle promises are issued at epoch boundaries
    /// (TumbleBit/A2L are phase-based), so a payment first waits for the
    /// next boundary. Benches tie this to the update time tau, which is
    /// why A2L degrades fastest in the Fig. 7(c)/8(c) sweeps.
    double epoch_s = 0.2;
    /// Hub node; kInvalidNode = auto-detect (the star centre).
    NodeId hub = graph::kInvalidNode;
  };

  A2lRouter();  // default configuration
  explicit A2lRouter(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "A2L"; }

  void on_start(Engine& engine) override;
  void on_payment(Engine& engine, const pcn::Payment& payment) override;
  void on_tu_failed(Engine& engine, const TransactionUnit& tu,
                    FailReason reason) override;

 private:
  /// Crypto-phase completion timer: `a` is the PaymentId whose TU is now
  /// ready to dispatch (typed pooled event; no per-payment closure).
  void on_timer(Engine& engine, std::uint64_t a, std::uint64_t b) override;

  Config config_;
  NodeId hub_ = graph::kInvalidNode;
  double hub_busy_until_ = 0.0;
};

}  // namespace splicer::routing
