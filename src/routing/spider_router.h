#pragma once

// Spider (NSDI '20) baseline: multi-path source routing with packetised
// transaction units and price-based rate control - the scheme Splicer's
// protocol machinery descends from, so it shares RateRouterBase. The
// differences the paper leans on (SS V-B):
//  * routes are computed by each *sender* over the full raw topology, so
//    every payment pays an end-host route-computation latency that grows
//    with network size, serialised per sender (single-machine senders);
//  * no hub consolidation: paths run over raw client channels.

#include <unordered_map>

#include "routing/rate_protocol.h"

namespace splicer::routing {

class SpiderRouter final : public RateRouterBase {
 public:
  struct Config {
    RateProtocolConfig protocol;
    /// Route-computation latency model: base + per-node * |V| per payment,
    /// serialised per sender (see DESIGN.md substitution table).
    double compute_base_s = 0.0005;
    double compute_per_node_s = 5e-6;
  };

  explicit SpiderRouter(Config config = make_default_config());

  [[nodiscard]] std::string name() const override { return "Spider"; }

  [[nodiscard]] static Config make_default_config() {
    Config config;
    // Spider computes k shortest paths per sender; edge-disjoint shortest
    // is the scalable stand-in (see DESIGN.md).
    config.protocol.path_type = graph::PathType::kEdgeDisjointShortest;
    return config;
  }

 protected:
  [[nodiscard]] PairKey pair_of(const Engine& engine,
                                const pcn::Payment& payment) const override;
  [[nodiscard]] std::optional<graph::Path> assemble_path(
      Engine& engine, NodeId from, NodeId to,
      const graph::Path& pair_path) const override;
  [[nodiscard]] double decision_delay(Engine& engine,
                                      const pcn::Payment& payment) override;

 private:
  Config config_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed lookup/update by NodeId only,
  // never iterated; per-sender pacing order cannot reach the event stream.
  std::unordered_map<NodeId, double> sender_busy_until_;
};

}  // namespace splicer::routing
