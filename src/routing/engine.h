#pragma once

// Discrete-event execution engine for PCN routing schemes.
//
// Mechanics implemented here, identically for every router:
//  * hop-by-hop HTLC forwarding: lock on each channel direction, propagate
//    after the hop delay, settle backwards along the path on delivery,
//    refund backwards on failure (funds conservation is exact);
//  * per-direction processing-rate limits (r_process) and bounded waiting
//    queues with pluggable scheduling (FIFO/LIFO/SPF/EDF, Table II);
//  * congestion marking: a TU queued longer than the threshold T is marked
//    and aborted (paper SS IV-D congestion control);
//  * payment deadlines (transaction timeout, 3 s in the paper) and the
//    all-or-nothing completion rule (the destination hub releases funds to
//    the recipient only once every TU arrived);
//  * metrics: TSR, normalised throughput, delays, message counters.

#include <array>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "pcn/network.h"
#include "pcn/workload.h"
#include "routing/router.h"
#include "sim/counters.h"
#include "sim/scheduler.h"

namespace splicer::routing {

struct EngineConfig {
  double hop_delay_s = 0.005;             // per-channel propagation delay
  double queue_delay_threshold_s = 0.4;   // T (paper: 400 ms)
  Amount queue_capacity = common::whole_tokens(8000);  // q_amount bound
  SchedulingPolicy policy = SchedulingPolicy::kLifo;   // paper's default
  double process_rate_tokens_per_s = 4000.0;           // r_process per direction
  bool queues_enabled = true;   // false = atomic HTLC (fail on first shortage)
  double horizon_slack_s = 5.0; // keep simulating past the last deadline
  std::uint64_t seed = 1;
};

struct EngineMetrics {
  std::size_t payments_generated = 0;
  std::size_t payments_completed = 0;
  std::size_t payments_failed = 0;
  Amount value_generated = 0;
  Amount value_completed = 0;
  double total_completion_delay_s = 0.0;
  std::uint64_t tus_sent = 0;
  std::uint64_t tus_delivered = 0;
  std::uint64_t tus_failed = 0;
  std::uint64_t tus_marked = 0;
  /// TU failures by FailReason (indexed by the enum's underlying value).
  std::array<std::uint64_t, 6> tu_fail_reasons{};
  /// Payment failures by FailReason.
  std::array<std::uint64_t, 6> payment_fail_reasons{};
  sim::MessageCounters messages;
  double simulated_seconds = 0.0;

  /// Transaction success ratio: completed / generated payments.
  [[nodiscard]] double tsr() const {
    return payments_generated
               ? static_cast<double>(payments_completed) /
                     static_cast<double>(payments_generated)
               : 0.0;
  }
  /// Completed value over generated value (normalised throughput).
  [[nodiscard]] double normalized_throughput() const {
    return value_generated > 0 ? static_cast<double>(value_completed) /
                                     static_cast<double>(value_generated)
                               : 0.0;
  }
  [[nodiscard]] double average_delay_s() const {
    return payments_completed ? total_completion_delay_s /
                                    static_cast<double>(payments_completed)
                              : 0.0;
  }
};

/// Per-payment progress (router-visible).
struct PaymentState {
  pcn::Payment payment;
  Amount delivered = 0;     // settled at destination
  Amount in_flight = 0;     // dispatched, not yet settled/failed
  bool completed = false;
  bool failed = false;
  double completion_time = 0.0;

  [[nodiscard]] Amount remaining_to_dispatch() const noexcept {
    return payment.value - delivered - in_flight;
  }
  [[nodiscard]] bool active() const noexcept { return !completed && !failed; }
};

class Engine {
 public:
  Engine(pcn::Network network, std::vector<pcn::Payment> payments,
         Router& router, EngineConfig config = {});

  /// Runs the whole simulation; single call.
  EngineMetrics run();

  // ---- Router-facing API ----------------------------------------------
  [[nodiscard]] double now() const noexcept { return scheduler_.now(); }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] pcn::Network& network() noexcept { return network_; }
  [[nodiscard]] const pcn::Network& network() const noexcept { return network_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::MessageCounters& counters() noexcept { return metrics_.messages; }
  [[nodiscard]] EngineMetrics& metrics() noexcept { return metrics_; }

  /// Dispatches a TU (path and hop_amounts must be populated; next_hop 0).
  /// Returns the TU id. The engine owns the TU from here on and reports
  /// back through Router::on_tu_delivered / on_tu_failed.
  TuId send_tu(TransactionUnit tu);

  [[nodiscard]] PaymentState& payment_state(PaymentId id);
  [[nodiscard]] const std::vector<pcn::Payment>& payments() const noexcept {
    return payments_;
  }

  /// Marks the payment failed (router decision, e.g., no path exists).
  void fail_payment(PaymentId id, FailReason reason);

  /// Queue depth in value for a directed channel (router congestion input).
  [[nodiscard]] Amount queue_amount(ChannelId channel, pcn::Direction d) const;

 private:
  struct LiveTu {
    TransactionUnit tu;
    std::vector<char> hop_locked;  // which path edges currently hold a lock
  };
  struct QueuedTu {
    TuId id;
    double enqueued_at;
    sim::Scheduler::EventId mark_event;
  };
  struct DirectedState {
    std::deque<QueuedTu> queue;
    Amount queued_value = 0;
    double next_free = 0.0;  // processing-rate token bucket
  };

  // Mechanics.
  void schedule_arrivals();
  void attempt_hop(TuId id);
  void arrive_next(TuId id);
  void deliver(TuId id);
  void fail_tu(TuId id, FailReason reason);
  void settle_backwards(TuId id);
  void refund_backwards(TuId id, FailReason reason);
  void enqueue(TuId id, ChannelId channel, pcn::Direction d);
  void drain_queue(ChannelId channel, pcn::Direction d);
  std::size_t pick_from_queue(const DirectedState& state) const;
  void on_payment_deadline(PaymentId id);
  void register_delivery(LiveTu& live);

  [[nodiscard]] DirectedState& directed(ChannelId channel, pcn::Direction d) {
    return directed_[2 * channel + pcn::dir_index(d)];
  }
  [[nodiscard]] const DirectedState& directed(ChannelId channel,
                                              pcn::Direction d) const {
    return directed_[2 * channel + pcn::dir_index(d)];
  }

  pcn::Network network_;
  std::vector<pcn::Payment> payments_;
  Router& router_;
  EngineConfig config_;
  sim::Scheduler scheduler_;
  common::Rng rng_;
  EngineMetrics metrics_;

  std::unordered_map<PaymentId, PaymentState> states_;
  std::unordered_map<TuId, LiveTu> live_;
  std::vector<DirectedState> directed_;
  TuId next_tu_id_ = 1;
  Amount initial_funds_ = 0;
};

}  // namespace splicer::routing
