#pragma once

// Discrete-event execution engine for PCN routing schemes.
//
// Mechanics implemented here, identically for every router:
//  * hop-by-hop HTLC forwarding: lock on each channel direction, propagate
//    after the hop delay, settle backwards along the path on delivery,
//    refund backwards on failure (funds conservation is exact);
//  * per-direction processing-rate limits (r_process) and bounded waiting
//    queues with pluggable scheduling (FIFO/LIFO/SPF/EDF, Table II);
//  * congestion marking: a TU queued longer than the threshold T is marked
//    and aborted (paper SS IV-D congestion control);
//  * payment deadlines (transaction timeout, 3 s in the paper) and the
//    all-or-nothing completion rule (the destination hub releases funds to
//    the recipient only once every TU arrived);
//  * metrics: TSR, normalised throughput, delays, message counters.

#include <array>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/dense_id_map.h"
#include "common/rng.h"
#include "common/stats.h"
#include "pcn/network.h"
#include "pcn/scenario_mutator.h"
#include "pcn/traffic_source.h"
#include "pcn/workload.h"
#include "routing/router.h"
#include "sim/counters.h"
#include "sim/engine_event.h"
#include "sim/scheduler.h"

namespace splicer::routing {

struct EngineConfig {
  double hop_delay_s = 0.005;             // per-channel propagation delay
  double queue_delay_threshold_s = 0.4;   // T (paper: 400 ms)
  Amount queue_capacity = common::whole_tokens(8000);  // q_amount bound
  SchedulingPolicy policy = SchedulingPolicy::kLifo;   // paper's default
  double process_rate_tokens_per_s = 4000.0;           // r_process per direction
  bool queues_enabled = true;   // false = atomic HTLC (fail on first shortage)
  double horizon_slack_s = 5.0; // keep simulating past the last deadline
  std::uint64_t seed = 1;
  /// Batched settlement epoch. 0 (default) keeps the exact per-hop
  /// behaviour: every settle/refund of every TU hop is its own scheduler
  /// event (byte-identical to the pre-batching engine). When > 0, settle
  /// and refund contributions accumulate per (channel, direction) and are
  /// applied in bulk on the next multiple of `settlement_epoch_s` — one
  /// flush event per active epoch instead of one event per hop.
  double settlement_epoch_s = 0.0;
  /// Debug: after every queue mutation, re-derive each touched queue's
  /// value from its entries and throw on any drift (invariant test suite).
  bool validate_queues = false;
  /// Retention contract for resolved PaymentStates. true (default) keeps
  /// every state for the whole run — the legacy behaviour, required when
  /// callers inspect payment_state() after run() returns. false evicts a
  /// resolved payment's state as soon as nothing can reference it any more
  /// (no live TU, no queue entry, no pending deadline event, no epoch
  /// buffer), so a truly unbounded streaming run holds O(concurrency)
  /// states instead of one per payment ever processed. All reported
  /// metrics are folded into streaming accumulators at resolution time and
  /// are identical in both modes; only memory (peak_resident_states) and
  /// the states_evicted counter differ.
  bool retain_resolved = true;
  /// Debug/parity knob for the incremental rate-control tick. false
  /// (default) lets rate routers skip provably-identity per-tick work
  /// (dirty-channel price updates, memoized probe sums, sleeping pairs) —
  /// bit-identical results, less wall time. true forces the legacy full
  /// sweep over every channel and pair each tick; CI diffs the two modes'
  /// outputs byte for byte. Benches honour SPLICER_FULL_RECOMPUTE=1 by
  /// setting this (the env read lives in the bench layer — ambient state
  /// never reaches src/).
  bool full_recompute_ticks = false;
  /// Hostile-world scenario pack: fault injection, channel churn, per-edge
  /// fee/timelock policies (see pcn/scenario_mutator.h). All rates default
  /// to 0, in which case no mutator is built, no mutation event is ever
  /// scheduled and no RNG draw happens — the benign event stream is
  /// byte-identical to an engine without this field (CI-gated). Mutation
  /// randomness derives from hostile.seed, never from `seed`, so the
  /// stream is also bit-identical across shard counts.
  pcn::HostileConfig hostile;
};

struct EngineMetrics {
  std::size_t payments_generated = 0;
  std::size_t payments_completed = 0;
  std::size_t payments_failed = 0;
  Amount value_generated = 0;
  Amount value_completed = 0;
  std::uint64_t tus_sent = 0;
  std::uint64_t tus_delivered = 0;
  std::uint64_t tus_failed = 0;
  std::uint64_t tus_marked = 0;
  /// TU failures by FailReason (indexed by the enum's underlying value).
  std::array<std::uint64_t, kFailReasonCount> tu_fail_reasons{};
  /// Payment failures by FailReason.
  std::array<std::uint64_t, kFailReasonCount> payment_fail_reasons{};
  sim::MessageCounters messages;
  double simulated_seconds = 0.0;
  /// Scheduler events executed by run() (the batching cost signal).
  std::uint64_t scheduler_events = 0;
  /// Epoch flush events executed (0 when settlement_epoch_s == 0).
  std::uint64_t settlement_flushes = 0;
  /// Individual settle/refund operations coalesced into flush events.
  std::uint64_t settlements_batched = 0;
  /// Peak number of payments simultaneously resident in the arrival
  /// pipeline: pulled from the traffic source but not yet arrived, plus
  /// arrived but not yet completed/failed. The engine pulls lazily (one
  /// look-ahead payment), so this stays at the workload's concurrency
  /// level rather than its total size - the streaming-scale signal.
  std::size_t peak_payment_buffer = 0;
  /// Peak number of PaymentStates simultaneously resident. With
  /// retain_resolved (default) this equals payments_generated by the end
  /// of the run; with eviction it stays at the concurrency level — the
  /// retention-contract memory signal.
  std::size_t peak_resident_states = 0;
  /// Resolved PaymentStates evicted (always 0 when retain_resolved).
  std::uint64_t states_evicted = 0;
  /// Streaming per-run accumulators, folded at resolution time so no
  /// metric ever needs a post-hoc scan over retained states (the retention
  /// contract: resolved states may be long gone by the end of the run).
  common::RunningStats completion_delay_stats;  // seconds, completed payments
  common::RunningStats tus_per_payment_stats;   // TUs launched per resolved payment
  /// Value delivered by payments that nonetheless failed (partial
  /// deliveries observed at resolution time).
  Amount failed_delivered_value = 0;
  /// Sharded mode only (0 in a sequential run): TU handoffs plus TU results
  /// this shard sent to other shards, and barrier epochs executed. The
  /// merged metrics carry the totals.
  std::uint64_t cross_shard_messages = 0;
  std::uint64_t shard_barriers = 0;
  /// BSP critical path (sum over windows of the busiest shard's events);
  /// scheduler_events / this = the speedup the partition admits on enough
  /// cores. 0 in a sequential run; set by the coordinator after merging.
  std::uint64_t shard_critical_path_events = 0;
  /// Incremental rate-control tick work signals (0 for non-rate routers
  /// and in full-recompute mode; the only metrics allowed to differ
  /// between the two tick modes). Per-channel price updates skipped as
  /// provable identities, path price sums reused unchanged, and the peak
  /// number of pairs simultaneously awake in the probe sweep.
  std::uint64_t price_updates_skipped = 0;
  std::uint64_t probe_sums_reused = 0;
  std::size_t active_pairs_peak = 0;
  /// Hostile-world mutation events applied (0 in a benign run). In a
  /// sharded run every shard replays the full stream (state flags must
  /// agree everywhere), so the merged count is shards x stream length.
  std::uint64_t mutation_events = 0;
  /// Deadlock witnesses, stamped by finish_run() before the conservation
  /// check: TUs still resident in the live slab and value still sitting in
  /// waiting queues when the run ended. Both must be 0 for every scheme
  /// even under churn storms — a nonzero value is a wedged liquidity cycle
  /// (the deadlock-under-churn stress gate asserts this).
  std::size_t resident_tus_at_end = 0;
  Amount wedged_queue_value = 0;

  /// Transaction success ratio: completed / generated payments.
  [[nodiscard]] double tsr() const {
    return payments_generated
               ? static_cast<double>(payments_completed) /
                     static_cast<double>(payments_generated)
               : 0.0;
  }
  /// Completed value over generated value (normalised throughput).
  [[nodiscard]] double normalized_throughput() const {
    return value_generated > 0 ? static_cast<double>(value_completed) /
                                     static_cast<double>(value_generated)
                               : 0.0;
  }
  /// Mean completion delay, derived from the streamed accumulator (the
  /// exact sum-over-count of the legacy running total, bit for bit).
  [[nodiscard]] double average_delay_s() const {
    return payments_completed ? completion_delay_stats.sum() /
                                    static_cast<double>(payments_completed)
                              : 0.0;
  }

  /// Deterministic fold of another shard's metrics into this one: counters
  /// and accumulators sum, simulated_seconds takes the max. Peaks sum too —
  /// each shard's peak is attained on its own clock, so the sum is an upper
  /// bound on simultaneous residency, which is the capacity-planning signal
  /// the field exists for. Merging in ascending shard order makes the
  /// result independent of thread interleaving (RunningStats::merge is
  /// order-sensitive in the last bits).
  void merge_from(const EngineMetrics& other);
};

/// Per-payment progress (router-visible). With eviction enabled
/// (EngineConfig::retain_resolved == false) a resolved state disappears as
/// soon as the last engine-side reference is gone — routers must reach it
/// through Engine::find_payment_state() from any context that can outlive
/// resolution (deferred lambdas, demand queues, recurring ticks).
struct PaymentState {
  pcn::Payment payment;
  Amount delivered = 0;     // settled at destination
  Amount in_flight = 0;     // dispatched, not yet settled/failed
  bool completed = false;
  bool failed = false;
  double completion_time = 0.0;
  /// Engine-owned TUs of this payment still alive (in flight, queued, or
  /// awaiting their ack-chain release event). The eviction gate.
  std::uint32_t live_tus = 0;
  /// Total TUs ever launched for this payment (the retry signal folded
  /// into EngineMetrics::tus_per_payment_stats at resolution).
  std::uint32_t tus_launched = 0;
  /// The deadline event has not fired/been cancelled yet. Per-hop mode
  /// lets resolved payments' deadline events fire as no-ops (keeping the
  /// epoch-0 event stream byte-identical), so eviction must wait for them.
  bool deadline_pending = false;
  /// The pending deadline event (valid while deadline_pending). Batched
  /// mode cancels it on resolution; stored inline so no side map is needed.
  sim::Scheduler::EventId deadline_event = 0;
  /// Router::on_payment_resolved has fired for this payment (it fires
  /// exactly once, at quiescence — resolved with no live TU and no pending
  /// deadline event — whether or not the state is then evicted).
  bool resolution_notified = false;

  [[nodiscard]] Amount remaining_to_dispatch() const noexcept {
    return payment.value - delivered - in_flight;
  }
  [[nodiscard]] bool active() const noexcept { return !completed && !failed; }
};

/// A live TU crossing a shard boundary: the receiving shard adopts it under
/// a fresh local id and keeps forwarding. hop_locked travels with the TU —
/// earlier hops may hold locks on channels owned by shards it already left,
/// and the resolving shard routes their settle/refund acks back by owner.
struct TuHandoff {
  TransactionUnit tu;
  std::vector<char> hop_locked;
  TuId home_id = 0;               // the TU's id in its home shard
  std::uint32_t home_shard = 0;   // shard owning the payment's state
  double when = 0.0;              // emission time (clamped to the barrier)
};

/// Terminal outcome of a TU that resolved away from its home shard,
/// relayed back so the home shard can run the payment bookkeeping and the
/// router callbacks. tu.id is restored to the home id before posting.
struct TuResult {
  TransactionUnit tu;
  bool delivered = false;
  FailReason reason = FailReason::kNoPath;
  double when = 0.0;  // resolution time (clamped to the barrier)
};

/// What a shard-bound Engine needs from the sharding layer. All four calls
/// happen during the parallel phase, from the worker running shard `from`;
/// implementations append to single-writer mailbox lanes (see
/// sim/sharded_scheduler.h) and must not touch shared mutable state.
class ShardCoordinator {
 public:
  /// Owning shard of a channel (the partition is total and static).
  [[nodiscard]] virtual std::uint32_t shard_of_channel(
      ChannelId channel) const noexcept = 0;

  /// Ships a live TU to the shard owning its next-hop channel.
  virtual void handoff_tu(std::uint32_t from, TuHandoff msg) = 0;

  /// Relays a foreign TU's terminal outcome to its home shard.
  virtual void post_result(std::uint32_t from, std::uint32_t home_shard,
                           TuResult msg) = 0;

  /// Posts a settle/refund ack for a channel owned by another shard; the
  /// owner executes it at the next barrier (at max(when, barrier)).
  virtual void post_ack(std::uint32_t from, ChannelId channel, double when,
                        const sim::EngineEvent& event) = 0;

 protected:
  ~ShardCoordinator() = default;
};

class Engine : private sim::EventSink {
 public:
  /// Streams payments lazily out of `source`: the next arrival event is
  /// scheduled only when the previous one fires, so the engine never holds
  /// more than one unarrived payment regardless of workload size.
  Engine(pcn::Network network, std::unique_ptr<pcn::TrafficSource> source,
         Router& router, EngineConfig config = {});

  /// Compatibility: replays a pre-built vector (wrapped in a VectorSource).
  Engine(pcn::Network network, std::vector<pcn::Payment> payments,
         Router& router, EngineConfig config = {});

  /// Runs the whole simulation; single call. Equivalent to begin_run(),
  /// a run_window() loop bounded by the deadline-driven hard stop, then
  /// finish_run() — the sharded coordinator drives those pieces itself.
  EngineMetrics run();

  // ---- Sharded-mode lifecycle (coordinator-facing) ---------------------
  // A shard-bound engine is one shard of a ShardedEngine: it owns its full
  // network copy, scheduler, RNG and router, touches only channels its
  // shard owns, and exchanges TUs/acks with other shards through the
  // coordinator. All of these are harmless no-ops/equivalents in a
  // sequential run; Engine::run() itself never needs them.

  /// Binds this engine to a shard. `horizon_hint` seeds workload_horizon()
  /// for engines whose local source is empty (the coordinator streams
  /// arrivals in); pass the real source's hint.
  void bind_shard(ShardCoordinator* coordinator, std::uint32_t shard,
                  double horizon_hint);

  /// Router on_start + first lazy source pull (the opening of run()).
  void begin_run();

  /// Advances the local scheduler to `until` (inclusive); returns events
  /// executed (also folded into metrics().scheduler_events).
  std::size_t run_window(double until);

  /// Closing bookkeeping of run(): stamps simulated_seconds, applies any
  /// residual batched settlements, checks funds conservation.
  void finish_run();

  /// Streams one payment in from the coordinator (N-shard mode, where the
  /// per-shard sources are empty): schedules its arrival event locally.
  /// Arrival times must be monotone, as with a real source.
  void inject_arrival(pcn::Payment payment);

  /// Queues a cross-shard TU for adoption / a foreign TU's outcome for the
  /// home-side bookkeeping. Called at a barrier; the matching event fires
  /// no earlier than `not_before` (the barrier time).
  void deliver_handoff(TuHandoff msg, double not_before);
  void deliver_result(TuResult msg, double not_before);

  /// Deadline high-water mark pulled/injected so far; the coordinator's
  /// hard stop is the max over shards of this, plus the usual slack.
  [[nodiscard]] double last_deadline_seen() const noexcept {
    return last_deadline_seen_;
  }

  // ---- Router-facing API ----------------------------------------------
  [[nodiscard]] double now() const noexcept { return scheduler_.now(); }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] pcn::Network& network() noexcept { return network_; }
  [[nodiscard]] const pcn::Network& network() const noexcept { return network_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::MessageCounters& counters() noexcept { return metrics_.messages; }
  [[nodiscard]] EngineMetrics& metrics() noexcept { return metrics_; }

  /// Dispatches a TU (path and hop_amounts must be populated; next_hop 0).
  /// Returns the TU id. The engine owns the TU from here on and reports
  /// back through Router::on_tu_delivered / on_tu_failed.
  TuId send_tu(TransactionUnit tu);

  /// Strict lookup: throws on an unknown (or evicted) payment. Safe from
  /// any context holding a live TU of the payment — the TU pins the state.
  [[nodiscard]] PaymentState& payment_state(PaymentId id);

  /// Checked lookup that tolerates eviction: nullptr when the payment is
  /// unknown or its resolved state has been evicted (treat as inactive).
  [[nodiscard]] PaymentState* find_payment_state(PaymentId id) noexcept {
    return states_.find(id);
  }

  /// Arms a router timer `delay` seconds from now: fires back through
  /// Router::on_timer with (a, b) verbatim. A typed pooled event — use this
  /// instead of scheduler().after(...) for per-TU-frequency timers, where a
  /// captured lambda would heap-allocate.
  sim::Scheduler::EventId schedule_timer(double delay, std::uint64_t a,
                                         std::uint64_t b = 0) {
    return scheduler_.after(
        delay, sim::EngineEvent{.kind = sim::EngineEvent::Kind::kRouterTimer,
                                .channel = 0,
                                .aux = 0,
                                .a = a,
                                .b = b});
  }

  /// Grace period past the workload horizon during which recurring router
  /// events (price ticks, probes, hub sync, send drips) keep running, so
  /// the tail payments can still complete. One named constant shared by
  /// every cutoff site so a grace change can never leave them divergent.
  static constexpr double kHorizonGraceS = 0.5;

  /// True once the simulation clock has passed the workload horizon plus
  /// the grace period — recurring router events should stop re-arming.
  [[nodiscard]] bool past_horizon() const noexcept {
    return now() > workload_horizon() + kHorizonGraceS;
  }

  /// Upper bound on the last payment deadline: exact once the source is
  /// drained (and from the start for replay sources, whose hint is exact);
  /// before that, the larger of the source's hint and the deadlines seen so
  /// far. Routers bound their recurring price/probe ticks with this instead
  /// of scanning a materialised payment vector.
  [[nodiscard]] double workload_horizon() const noexcept {
    return source_horizon_ > last_deadline_seen_ ? source_horizon_
                                                 : last_deadline_seen_;
  }

  /// Quantised arrival-bucket key (nanosecond grid): same-instant hop
  /// arrivals must coalesce on an integer key, never on a raw double (two
  /// doubles that print alike can differ in the last bit and silently
  /// split a bucket). Public so tests can pin the quantisation contract.
  [[nodiscard]] static std::int64_t arrival_tick(double when) noexcept;

  /// Marks the payment failed (router decision, e.g., no path exists).
  void fail_payment(PaymentId id, FailReason reason);

  /// Queue depth in value for a directed channel (router congestion input).
  [[nodiscard]] Amount queue_amount(ChannelId channel, pcn::Direction d) const;

  // ---- Dirty-channel feed (incremental rate-control ticks) -------------
  // A rate router opts in at on_start; from then on every fund-moving
  // channel mutation the engine performs (lock, settle/refund acks, the
  // batched epoch flush — the inputs of price eqs. 21-22) appends the
  // channel to the dirty list, deduplicated by a flag. The router drains
  // the list once per protocol tick. Off by default so non-rate routers
  // pay nothing and the list can never grow unconsumed. In sharded runs
  // each shard's engine keeps its own list; cross-shard settle/refund acks
  // applied at a barrier land on the owning engine's list through the same
  // event path, so the next tick inside the window sees them.

  /// Opt in (idempotent). Sizes the flag vector to the network.
  void enable_dirty_channel_tracking() {
    dirty_tracking_ = true;
    channel_dirty_.assign(network_.channel_count(), 0);
    dirty_channels_.clear();
  }
  /// Appends `channel` to the dirty list (no-op when tracking is off or
  /// the channel is already listed). Hot path: one flag load on every
  /// channel mutation.
  void mark_channel_dirty(ChannelId channel) {
    if (!dirty_tracking_ || channel_dirty_[channel] != 0) return;
    channel_dirty_[channel] = 1;
    dirty_channels_.push_back(channel);
  }
  /// Channels mutated since the last clear, in first-mutation order (a
  /// deterministic function of the event stream).
  [[nodiscard]] const std::vector<ChannelId>& dirty_channels() const noexcept {
    return dirty_channels_;
  }
  void clear_dirty_channels() {
    for (const ChannelId c : dirty_channels_) channel_dirty_[c] = 0;
    dirty_channels_.clear();
  }

 private:
  struct LiveTu {
    TransactionUnit tu;
    std::vector<char> hop_locked;  // which path edges currently hold a lock
    /// Sharded mode: this TU was adopted from another shard and its payment
    /// state lives elsewhere — resolution relays a TuResult home instead of
    /// touching local payment bookkeeping.
    bool foreign = false;
    std::uint32_t home_shard = 0;  // valid when foreign
    TuId home_id = 0;              // the id the home shard knows the TU by
    /// deliver()/fail_tu() ran: in per-hop mode the entry outlives its
    /// resolution until the ack-chain kReleaseTu fires, and the channel-
    /// close sweep (and any late kMark) must not fail it a second time.
    bool resolved = false;
  };
  struct QueuedTu {
    TuId id;
    double enqueued_at;
    Amount amount;  // hop amount charged against queued_value at enqueue
    sim::Scheduler::EventId mark_event;
  };
  struct DirectedState {
    std::deque<QueuedTu> queue;
    Amount queued_value = 0;
    double next_free = 0.0;     // processing-rate token bucket
    bool drain_pending = false; // a drain wake-up is already scheduled
  };
  /// Per-epoch settle/refund totals for one channel direction, applied in
  /// bulk at the next settlement_epoch_s boundary.
  struct PendingSettlement {
    Amount settle_total = 0;
    Amount refund_total = 0;
    std::uint64_t settle_ops = 0;
    std::uint64_t refund_ops = 0;
  };
  /// Epoch buffer for batched settlement: pending totals per directed
  /// channel plus the dirty set, drained by one flush event per epoch. The
  /// same flush also wakes rate-blocked queues and deferred atomic-mode
  /// TUs, so one recurring event replaces per-direction and per-TU wake-ups.
  struct SettlementBatcher {
    std::vector<PendingSettlement> pending;  // index: 2*channel + dir
    std::vector<std::size_t> dirty;          // indices with nonzero pending
    std::vector<std::size_t> blocked_queues; // rate-blocked directed indices
    std::vector<TuId> deferred_tus;          // atomic TUs waiting on r_process
    bool flush_scheduled = false;
  };

  // Typed-event dispatch: every hot-path scheduler event lands here as a
  // tagged POD (see sim/engine_event.h) instead of a per-event closure.
  void handle_event(const sim::EngineEvent& event) override;

  // Mechanics.
  /// Pulls the next payment from the source (if any) and schedules its
  /// arrival event; called once at start-up and then from each arrival.
  void schedule_next_arrival();
  void on_arrival(const pcn::Payment& payment);
  void note_buffer_peak() noexcept;
  void attempt_hop(TuId id);
  /// Schedules arrive_next after the hop delay. Batched mode coalesces
  /// same-instant arrivals (common: a flush forwards many TUs at one
  /// boundary) into a single shared scheduler event.
  void schedule_hop_arrival(TuId id);
  void arrive_next(TuId id);
  void deliver(TuId id);
  void fail_tu(TuId id, FailReason reason);
  void settle_backwards(TuId id);
  void refund_backwards(TuId id, FailReason reason);
  void enqueue(TuId id, ChannelId channel, pcn::Direction d);
  void drain_queue(ChannelId channel, pcn::Direction d);
  /// Schedules one drain wake-up at `when` unless one is already pending
  /// for this direction (duplicate wake-ups flood the scheduler).
  void schedule_drain(ChannelId channel, pcn::Direction d, double when);
  std::size_t pick_from_queue(const DirectedState& state) const;
  void on_payment_deadline(PaymentId id);

  // Sharded-mode internals.
  /// True when the channel belongs to another shard (always false unbound).
  [[nodiscard]] bool channel_is_remote(ChannelId channel) const noexcept {
    return coordinator_ != nullptr &&
           coordinator_->shard_of_channel(channel) != shard_id_;
  }
  /// Ships a live TU to the shard owning its next-hop channel; the local
  /// entry is erased (the home payment pin, if any, stays held until the
  /// TuResult comes back).
  void export_tu(TuId id);
  /// Registers a handed-off TU under a fresh local id and forwards it.
  void adopt_tu(TuHandoff msg);
  /// Home-side bookkeeping for a TU that resolved on another shard: the
  /// payment-state block of deliver()/fail_tu(), the router callbacks, and
  /// the release of the live_tus pin taken at send_tu.
  void apply_remote_result(TuResult msg);

  // Retention contract.
  /// Orphan-tolerant lookup for engine-internal TU paths: nullptr means
  /// the payment was resolved and evicted (only possible with retention
  /// off); with retention on a miss is a caller bug and throws like
  /// payment_state().
  [[nodiscard]] PaymentState* state_or_orphan(PaymentId id);
  /// Folds the payment's final outcome (latency, TU count, partial value)
  /// into the streaming accumulators. Called exactly once, at resolution.
  void fold_resolution(const PaymentState& state);
  /// Erases the live TU entry, drops its payment's live_tus pin and evicts
  /// the state when that was the last reference. Replaces every direct
  /// live_.erase() at TU release sites.
  void release_live_tu(TuId id);
  /// Evicts the payment's state iff eviction is enabled, the payment is
  /// resolved and nothing (live TU, deadline event) references it.
  void maybe_evict(PaymentId id);

  // Batched settlement (settlement_epoch_s > 0).
  void add_pending(ChannelId channel, pcn::Direction d, Amount amount,
                   bool is_settle);
  /// Folds every still-locked hop of a resolved TU into the epoch buffer
  /// (settle on delivery, refund on failure).
  void add_pending_locked_hops(const LiveTu& live, bool is_settle);
  void schedule_flush();
  /// Cancels the payment's pending deadline event (batched mode only; the
  /// payment must still be unresolved, i.e. the event has not fired).
  void cancel_deadline_event(PaymentId id);
  /// Applies every pending settle/refund total, then (if `drain`) retries
  /// the queues whose funds changed.
  void flush_settlements(bool drain);

  /// validate_queues hook: recomputes the queue's value from its entries.
  void check_queue_invariant(ChannelId channel, pcn::Direction d) const;

  // Hostile-world mutation plumbing (inert unless config_.hostile enables
  // a mutator). The engine replays the merged mutator streams through its
  // own scheduler, one staged kMutation event at a time (the arrival
  // pattern): equal-timestamp events across mutators fire in ascending
  // mutator index order. In a sharded run every shard replays the whole
  // stream and flips the state flags (closed / offline / policy) so path
  // selection agrees everywhere; the fund-touching side effects of a close
  // (queue flush, in-flight refunds) run only on the channel's owning
  // shard.
  /// Builds the mutators and stages each one's first event (begin_run).
  void init_mutators();
  /// Schedules one kMutation event for the earliest staged event, if any.
  void schedule_next_mutation();
  /// Applies one mutation. Down/close depth counters make overlapping
  /// faults on one target idempotent: only 0 <-> 1 transitions flip flags.
  void apply_mutation(const pcn::MutationEvent& event);
  /// Close side effects on the owning shard: fail both waiting queues
  /// (kChannelClosed, mark events cancelled) and refund every unresolved
  /// in-flight TU holding a lock on the channel.
  void on_channel_close(ChannelId channel);

  // Directed-channel index scheme shared by directed_ and the batcher.
  [[nodiscard]] static constexpr std::size_t directed_index(
      ChannelId channel, pcn::Direction d) noexcept {
    return 2 * channel + pcn::dir_index(d);
  }
  [[nodiscard]] static constexpr ChannelId channel_of(std::size_t idx) noexcept {
    return static_cast<ChannelId>(idx / 2);
  }
  [[nodiscard]] static constexpr pcn::Direction direction_of(
      std::size_t idx) noexcept {
    return static_cast<pcn::Direction>(idx % 2);
  }

  [[nodiscard]] DirectedState& directed(ChannelId channel, pcn::Direction d) {
    return directed_[directed_index(channel, d)];
  }
  [[nodiscard]] const DirectedState& directed(ChannelId channel,
                                              pcn::Direction d) const {
    return directed_[directed_index(channel, d)];
  }

  pcn::Network network_;
  std::unique_ptr<pcn::TrafficSource> source_;
  Router& router_;
  EngineConfig config_;
  sim::Scheduler scheduler_;
  common::Rng rng_;
  EngineMetrics metrics_;

  // Streaming-arrival state.
  double source_horizon_ = 0.0;      // source->horizon_hint() at start
  double last_arrival_time_ = 0.0;   // monotonicity guard
  double last_deadline_seen_ = 0.0;  // grows as payments are pulled
  std::size_t pending_arrivals_ = 0; // pulled but not yet arrived (<= 1)
  std::size_t active_payments_ = 0;  // arrived, not yet resolved
  // The one pulled-but-not-arrived payment (pending_arrivals_ <= 1); its
  // kArrival event carries no payload, it just claims this slot.
  std::optional<pcn::Payment> staged_arrival_;

  // Slab stores exploiting that PaymentId/TuId are dense sequential ids:
  // hot-path lookups are a subtraction and a masked index instead of a
  // hash-map probe. Eviction (PR 4) frees the slot back into the window.
  common::DenseIdMap<PaymentState> states_;
  common::DenseIdMap<LiveTu> live_;
  std::vector<DirectedState> directed_;
  // Dirty-channel feed (see the router-facing section): flag per channel
  // plus the drain list, populated only after enable_dirty_channel_tracking.
  std::vector<char> channel_dirty_;
  std::vector<ChannelId> dirty_channels_;
  bool dirty_tracking_ = false;
  SettlementBatcher batcher_;
  // Hostile-world mutation state: the mutator streams, one staged event
  // per mutator, and per-target depth counters for overlapping faults.
  // Empty/unused in a benign run. Written only by the engine's mutation
  // plumbing (splicer_lint writer-lanes owns these names).
  std::vector<std::unique_ptr<pcn::ScenarioMutator>> mutators_;
  std::vector<std::optional<pcn::MutationEvent>> staged_mutations_;
  std::vector<std::uint32_t> node_down_depth_;
  std::vector<std::uint32_t> channel_close_depth_;
  // Batched mode: TUs arriving at the same instant share one event, keyed
  // by the tick-quantised arrival time (never by a raw double).
  // SPLICER_LINT_ALLOW(unordered-decl): keyed try_emplace/extract only; the
  // firing order of buckets comes from the scheduler heap, and TUs within a
  // bucket keep their deterministic insertion order in the vector.
  std::unordered_map<std::int64_t, std::vector<TuId>> arrival_buckets_;
  TuId next_tu_id_ = 1;
  Amount initial_funds_ = 0;

  // Sharded-mode state (inert in a sequential run).
  ShardCoordinator* coordinator_ = nullptr;
  std::uint32_t shard_id_ = 0;
  // Barrier-delivered rich messages; each entry is claimed in FIFO order by
  // its matching kRemoteHandoff/kRemoteResult event (scheduled at the same
  // barrier timestamp, so heap order equals deque order).
  std::deque<TuHandoff> handoff_inbox_;
  std::deque<TuResult> result_inbox_;
  // Coordinator-injected payments awaiting their kArrival events (N-shard
  // mode; the sequential path uses the single staged_arrival_ slot).
  std::deque<pcn::Payment> injected_arrivals_;
  // Guard: on_tu_forwarded receives a reference into the live_ slab, which
  // send_tu can relocate — dispatching from that hook is a hard error, not
  // silent UB (see Router::on_tu_forwarded's contract).
  bool in_forward_hook_ = false;
};

}  // namespace splicer::routing
