#pragma once

// Discrete-event execution engine for PCN routing schemes.
//
// Mechanics implemented here, identically for every router:
//  * hop-by-hop HTLC forwarding: lock on each channel direction, propagate
//    after the hop delay, settle backwards along the path on delivery,
//    refund backwards on failure (funds conservation is exact);
//  * per-direction processing-rate limits (r_process) and bounded waiting
//    queues with pluggable scheduling (FIFO/LIFO/SPF/EDF, Table II);
//  * congestion marking: a TU queued longer than the threshold T is marked
//    and aborted (paper SS IV-D congestion control);
//  * payment deadlines (transaction timeout, 3 s in the paper) and the
//    all-or-nothing completion rule (the destination hub releases funds to
//    the recipient only once every TU arrived);
//  * metrics: TSR, normalised throughput, delays, message counters.

#include <array>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "pcn/network.h"
#include "pcn/traffic_source.h"
#include "pcn/workload.h"
#include "routing/router.h"
#include "sim/counters.h"
#include "sim/scheduler.h"

namespace splicer::routing {

struct EngineConfig {
  double hop_delay_s = 0.005;             // per-channel propagation delay
  double queue_delay_threshold_s = 0.4;   // T (paper: 400 ms)
  Amount queue_capacity = common::whole_tokens(8000);  // q_amount bound
  SchedulingPolicy policy = SchedulingPolicy::kLifo;   // paper's default
  double process_rate_tokens_per_s = 4000.0;           // r_process per direction
  bool queues_enabled = true;   // false = atomic HTLC (fail on first shortage)
  double horizon_slack_s = 5.0; // keep simulating past the last deadline
  std::uint64_t seed = 1;
  /// Batched settlement epoch. 0 (default) keeps the exact per-hop
  /// behaviour: every settle/refund of every TU hop is its own scheduler
  /// event (byte-identical to the pre-batching engine). When > 0, settle
  /// and refund contributions accumulate per (channel, direction) and are
  /// applied in bulk on the next multiple of `settlement_epoch_s` — one
  /// flush event per active epoch instead of one event per hop.
  double settlement_epoch_s = 0.0;
  /// Debug: after every queue mutation, re-derive each touched queue's
  /// value from its entries and throw on any drift (invariant test suite).
  bool validate_queues = false;
};

struct EngineMetrics {
  std::size_t payments_generated = 0;
  std::size_t payments_completed = 0;
  std::size_t payments_failed = 0;
  Amount value_generated = 0;
  Amount value_completed = 0;
  double total_completion_delay_s = 0.0;
  std::uint64_t tus_sent = 0;
  std::uint64_t tus_delivered = 0;
  std::uint64_t tus_failed = 0;
  std::uint64_t tus_marked = 0;
  /// TU failures by FailReason (indexed by the enum's underlying value).
  std::array<std::uint64_t, kFailReasonCount> tu_fail_reasons{};
  /// Payment failures by FailReason.
  std::array<std::uint64_t, kFailReasonCount> payment_fail_reasons{};
  sim::MessageCounters messages;
  double simulated_seconds = 0.0;
  /// Scheduler events executed by run() (the batching cost signal).
  std::uint64_t scheduler_events = 0;
  /// Epoch flush events executed (0 when settlement_epoch_s == 0).
  std::uint64_t settlement_flushes = 0;
  /// Individual settle/refund operations coalesced into flush events.
  std::uint64_t settlements_batched = 0;
  /// Peak number of payments simultaneously resident in the arrival
  /// pipeline: pulled from the traffic source but not yet arrived, plus
  /// arrived but not yet completed/failed. The engine pulls lazily (one
  /// look-ahead payment), so this stays at the workload's concurrency
  /// level rather than its total size - the streaming-scale signal.
  std::size_t peak_payment_buffer = 0;

  /// Transaction success ratio: completed / generated payments.
  [[nodiscard]] double tsr() const {
    return payments_generated
               ? static_cast<double>(payments_completed) /
                     static_cast<double>(payments_generated)
               : 0.0;
  }
  /// Completed value over generated value (normalised throughput).
  [[nodiscard]] double normalized_throughput() const {
    return value_generated > 0 ? static_cast<double>(value_completed) /
                                     static_cast<double>(value_generated)
                               : 0.0;
  }
  [[nodiscard]] double average_delay_s() const {
    return payments_completed ? total_completion_delay_s /
                                    static_cast<double>(payments_completed)
                              : 0.0;
  }
};

/// Per-payment progress (router-visible).
struct PaymentState {
  pcn::Payment payment;
  Amount delivered = 0;     // settled at destination
  Amount in_flight = 0;     // dispatched, not yet settled/failed
  bool completed = false;
  bool failed = false;
  double completion_time = 0.0;

  [[nodiscard]] Amount remaining_to_dispatch() const noexcept {
    return payment.value - delivered - in_flight;
  }
  [[nodiscard]] bool active() const noexcept { return !completed && !failed; }
};

class Engine {
 public:
  /// Streams payments lazily out of `source`: the next arrival event is
  /// scheduled only when the previous one fires, so the engine never holds
  /// more than one unarrived payment regardless of workload size.
  Engine(pcn::Network network, std::unique_ptr<pcn::TrafficSource> source,
         Router& router, EngineConfig config = {});

  /// Compatibility: replays a pre-built vector (wrapped in a VectorSource).
  Engine(pcn::Network network, std::vector<pcn::Payment> payments,
         Router& router, EngineConfig config = {});

  /// Runs the whole simulation; single call.
  EngineMetrics run();

  // ---- Router-facing API ----------------------------------------------
  [[nodiscard]] double now() const noexcept { return scheduler_.now(); }
  [[nodiscard]] sim::Scheduler& scheduler() noexcept { return scheduler_; }
  [[nodiscard]] common::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] pcn::Network& network() noexcept { return network_; }
  [[nodiscard]] const pcn::Network& network() const noexcept { return network_; }
  [[nodiscard]] const EngineConfig& config() const noexcept { return config_; }
  [[nodiscard]] sim::MessageCounters& counters() noexcept { return metrics_.messages; }
  [[nodiscard]] EngineMetrics& metrics() noexcept { return metrics_; }

  /// Dispatches a TU (path and hop_amounts must be populated; next_hop 0).
  /// Returns the TU id. The engine owns the TU from here on and reports
  /// back through Router::on_tu_delivered / on_tu_failed.
  TuId send_tu(TransactionUnit tu);

  [[nodiscard]] PaymentState& payment_state(PaymentId id);

  /// Upper bound on the last payment deadline: exact once the source is
  /// drained (and from the start for replay sources, whose hint is exact);
  /// before that, the larger of the source's hint and the deadlines seen so
  /// far. Routers bound their recurring price/probe ticks with this instead
  /// of scanning a materialised payment vector.
  [[nodiscard]] double workload_horizon() const noexcept {
    return source_horizon_ > last_deadline_seen_ ? source_horizon_
                                                 : last_deadline_seen_;
  }

  /// Marks the payment failed (router decision, e.g., no path exists).
  void fail_payment(PaymentId id, FailReason reason);

  /// Queue depth in value for a directed channel (router congestion input).
  [[nodiscard]] Amount queue_amount(ChannelId channel, pcn::Direction d) const;

 private:
  struct LiveTu {
    TransactionUnit tu;
    std::vector<char> hop_locked;  // which path edges currently hold a lock
  };
  struct QueuedTu {
    TuId id;
    double enqueued_at;
    Amount amount;  // hop amount charged against queued_value at enqueue
    sim::Scheduler::EventId mark_event;
  };
  struct DirectedState {
    std::deque<QueuedTu> queue;
    Amount queued_value = 0;
    double next_free = 0.0;     // processing-rate token bucket
    bool drain_pending = false; // a drain wake-up is already scheduled
  };
  /// Per-epoch settle/refund totals for one channel direction, applied in
  /// bulk at the next settlement_epoch_s boundary.
  struct PendingSettlement {
    Amount settle_total = 0;
    Amount refund_total = 0;
    std::uint64_t settle_ops = 0;
    std::uint64_t refund_ops = 0;
  };
  /// Epoch buffer for batched settlement: pending totals per directed
  /// channel plus the dirty set, drained by one flush event per epoch. The
  /// same flush also wakes rate-blocked queues and deferred atomic-mode
  /// TUs, so one recurring event replaces per-direction and per-TU wake-ups.
  struct SettlementBatcher {
    std::vector<PendingSettlement> pending;  // index: 2*channel + dir
    std::vector<std::size_t> dirty;          // indices with nonzero pending
    std::vector<std::size_t> blocked_queues; // rate-blocked directed indices
    std::vector<TuId> deferred_tus;          // atomic TUs waiting on r_process
    bool flush_scheduled = false;
  };

  // Mechanics.
  /// Pulls the next payment from the source (if any) and schedules its
  /// arrival event; called once at start-up and then from each arrival.
  void schedule_next_arrival();
  void on_arrival(const pcn::Payment& payment);
  void note_buffer_peak() noexcept;
  void attempt_hop(TuId id);
  /// Schedules arrive_next after the hop delay. Batched mode coalesces
  /// same-instant arrivals (common: a flush forwards many TUs at one
  /// boundary) into a single shared scheduler event.
  void schedule_hop_arrival(TuId id);
  void arrive_next(TuId id);
  void deliver(TuId id);
  void fail_tu(TuId id, FailReason reason);
  void settle_backwards(TuId id);
  void refund_backwards(TuId id, FailReason reason);
  void enqueue(TuId id, ChannelId channel, pcn::Direction d);
  void drain_queue(ChannelId channel, pcn::Direction d);
  /// Schedules one drain wake-up at `when` unless one is already pending
  /// for this direction (duplicate wake-ups flood the scheduler).
  void schedule_drain(ChannelId channel, pcn::Direction d, double when);
  std::size_t pick_from_queue(const DirectedState& state) const;
  void on_payment_deadline(PaymentId id);
  void register_delivery(LiveTu& live);

  // Batched settlement (settlement_epoch_s > 0).
  void add_pending(ChannelId channel, pcn::Direction d, Amount amount,
                   bool is_settle);
  /// Folds every still-locked hop of a resolved TU into the epoch buffer
  /// (settle on delivery, refund on failure).
  void add_pending_locked_hops(const LiveTu& live, bool is_settle);
  void schedule_flush();
  /// Cancels the payment's pending deadline event (batched mode only; the
  /// payment must still be unresolved, i.e. the event has not fired).
  void cancel_deadline_event(PaymentId id);
  /// Applies every pending settle/refund total, then (if `drain`) retries
  /// the queues whose funds changed.
  void flush_settlements(bool drain);

  /// validate_queues hook: recomputes the queue's value from its entries.
  void check_queue_invariant(ChannelId channel, pcn::Direction d) const;

  // Directed-channel index scheme shared by directed_ and the batcher.
  [[nodiscard]] static constexpr std::size_t directed_index(
      ChannelId channel, pcn::Direction d) noexcept {
    return 2 * channel + pcn::dir_index(d);
  }
  [[nodiscard]] static constexpr ChannelId channel_of(std::size_t idx) noexcept {
    return static_cast<ChannelId>(idx / 2);
  }
  [[nodiscard]] static constexpr pcn::Direction direction_of(
      std::size_t idx) noexcept {
    return static_cast<pcn::Direction>(idx % 2);
  }

  [[nodiscard]] DirectedState& directed(ChannelId channel, pcn::Direction d) {
    return directed_[directed_index(channel, d)];
  }
  [[nodiscard]] const DirectedState& directed(ChannelId channel,
                                              pcn::Direction d) const {
    return directed_[directed_index(channel, d)];
  }

  pcn::Network network_;
  std::unique_ptr<pcn::TrafficSource> source_;
  Router& router_;
  EngineConfig config_;
  sim::Scheduler scheduler_;
  common::Rng rng_;
  EngineMetrics metrics_;

  // Streaming-arrival state.
  double source_horizon_ = 0.0;      // source->horizon_hint() at start
  double last_arrival_time_ = 0.0;   // monotonicity guard
  double last_deadline_seen_ = 0.0;  // grows as payments are pulled
  std::size_t pending_arrivals_ = 0; // pulled but not yet arrived (<= 1)
  std::size_t active_payments_ = 0;  // arrived, not yet resolved

  std::unordered_map<PaymentId, PaymentState> states_;
  // Batched mode: deadline events still pending, cancelled on resolution so
  // the scheduler never executes the no-op (per-hop mode lets them fire to
  // keep the epoch-0 event stream untouched).
  std::unordered_map<PaymentId, sim::Scheduler::EventId> deadline_events_;
  std::unordered_map<TuId, LiveTu> live_;
  std::vector<DirectedState> directed_;
  SettlementBatcher batcher_;
  // Batched mode: TUs arriving at exactly the same instant share one event.
  std::unordered_map<double, std::vector<TuId>> arrival_buckets_;
  TuId next_tu_id_ = 1;
  Amount initial_funds_ = 0;
};

}  // namespace splicer::routing
