#include "routing/sharded_engine.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>

#include "common/rng.h"
#include "routing/a2l_router.h"
#include "routing/flash_router.h"
#include "routing/landmark_router.h"
#include "routing/shortest_path_router.h"
#include "routing/spider_router.h"
#include "routing/splicer_router.h"

namespace splicer::routing {

// ---------------------------------------------------------------------------
// ShardPlan

ShardPlan ShardPlan::single(const pcn::Network& network) {
  ShardPlan plan;
  plan.shards = 1;
  plan.node_shard.assign(network.node_count(), 0);
  plan.channel_shard.assign(network.channel_count(), 0);
  return plan;
}

ShardPlan ShardPlan::contiguous(const pcn::Network& network,
                                std::uint32_t shards) {
  if (shards <= 1) return single(network);
  ShardPlan plan;
  plan.shards = shards;
  const std::size_t n = network.node_count();
  plan.node_shard.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    plan.node_shard[v] = static_cast<std::uint32_t>(v * shards / n);
  }
  plan.channel_shard.resize(network.channel_count());
  for (std::size_t c = 0; c < plan.channel_shard.size(); ++c) {
    const pcn::Channel& channel = network.channel(static_cast<ChannelId>(c));
    const NodeId low = std::min(channel.node_a(), channel.node_b());
    plan.channel_shard[c] = plan.node_shard[low];
  }
  return plan;
}

ShardPlan ShardPlan::hub_affinity(const pcn::Network& network,
                                  const std::vector<NodeId>& hub_of,
                                  const std::vector<NodeId>& hubs,
                                  std::uint32_t shards) {
  if (shards <= 1) return single(network);
  if (hub_of.size() != network.node_count()) {
    throw std::invalid_argument("ShardPlan::hub_affinity: hub_of size mismatch");
  }
  if (hubs.empty()) {
    throw std::invalid_argument("ShardPlan::hub_affinity: no hubs");
  }
  ShardPlan plan;
  plan.shards = shards;
  // hubs[i] -> shard i % shards; every node follows its managing hub.
  std::vector<std::uint32_t> shard_of_hub(network.node_count(), ~0u);
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    shard_of_hub[hubs[i]] = static_cast<std::uint32_t>(i % shards);
  }
  plan.node_shard.resize(network.node_count());
  for (std::size_t v = 0; v < plan.node_shard.size(); ++v) {
    const NodeId hub = hub_of[v];
    if (hub >= shard_of_hub.size() || shard_of_hub[hub] == ~0u) {
      throw std::invalid_argument(
          "ShardPlan::hub_affinity: node managed by an unplaced hub");
    }
    plan.node_shard[v] = shard_of_hub[hub];
  }
  // A channel follows its hub endpoint; a trunk between two hubs follows
  // the lower-id hub (deterministic and independent of edge orientation).
  plan.channel_shard.resize(network.channel_count());
  for (std::size_t c = 0; c < plan.channel_shard.size(); ++c) {
    const pcn::Channel& channel = network.channel(static_cast<ChannelId>(c));
    const NodeId a = channel.node_a();
    const NodeId b = channel.node_b();
    const bool a_hub = shard_of_hub[a] != ~0u;
    const bool b_hub = shard_of_hub[b] != ~0u;
    NodeId anchor;
    if (a_hub && b_hub) {
      anchor = std::min(a, b);
    } else if (a_hub) {
      anchor = a;
    } else if (b_hub) {
      anchor = b;
    } else {
      anchor = std::min(a, b);  // client-client edge: fall back to node map
    }
    plan.channel_shard[c] = plan.node_shard[anchor];
  }
  return plan;
}

void ShardPlan::validate(const pcn::Network& network) const {
  if (shards == 0) {
    throw std::invalid_argument("ShardPlan: zero shards");
  }
  if (node_shard.size() != network.node_count() ||
      channel_shard.size() != network.channel_count()) {
    throw std::invalid_argument("ShardPlan: size mismatch with network");
  }
  for (const std::uint32_t s : node_shard) {
    if (s >= shards) throw std::invalid_argument("ShardPlan: node shard out of range");
  }
  for (const std::uint32_t s : channel_shard) {
    if (s >= shards) {
      throw std::invalid_argument("ShardPlan: channel shard out of range");
    }
  }
}

// ---------------------------------------------------------------------------
// ShardedEngine

std::uint64_t ShardedEngine::shard_seed(std::uint64_t base, std::uint32_t shard,
                                        std::uint32_t shards) {
  if (shards <= 1) return base;  // bit-parity with the sequential engine
  std::uint64_t state = base;
  state = common::splitmix64(state) ^ (0x5348415244ull + shard);  // "SHARD"
  return common::splitmix64(state);
}

ShardedEngine::ShardedEngine(const pcn::Network& network,
                             std::unique_ptr<pcn::TrafficSource> source,
                             const RouterFactory& make_router, ShardPlan plan,
                             const EngineConfig& engine_config,
                             ShardedEngineConfig config)
    : plan_(std::move(plan)), config_(config) {
  plan_.validate(network);
  if (source == nullptr) {
    throw std::invalid_argument("ShardedEngine: null traffic source");
  }
  period_ = config_.barrier_period_s > 0
                ? config_.barrier_period_s
                : (engine_config.settlement_epoch_s > 0
                       ? engine_config.settlement_epoch_s
                       : 0.01);

  const std::uint32_t n = plan_.shards;
  const double horizon_hint = source->horizon_hint();
  routers_.reserve(n);
  engines_.reserve(n);
  handoff_lanes_.resize(static_cast<std::size_t>(n) * n);
  result_lanes_.resize(static_cast<std::size_t>(n) * n);
  for (std::uint32_t i = 0; i < n; ++i) {
    EngineConfig cfg = engine_config;
    cfg.seed = shard_seed(engine_config.seed, i, n);
    routers_.push_back(make_router(i));
    if (routers_.back() == nullptr) {
      throw std::invalid_argument("ShardedEngine: router factory returned null");
    }
    // One shard: the engine keeps the real source and its native lazy pull
    // (the byte-identity path). N shards: every engine starts empty and
    // the coordinator injects each payment into its sender's home shard.
    std::unique_ptr<pcn::TrafficSource> shard_source =
        (n == 1) ? std::move(source)
                 : std::make_unique<pcn::VectorSource>(std::vector<pcn::Payment>{});
    engines_.push_back(std::make_unique<Engine>(network, std::move(shard_source),
                                                *routers_.back(), cfg));
    if (n > 1) {
      engines_.back()->bind_shard(this, i, horizon_hint);
    }
  }
  if (n > 1) {
    source_ = std::move(source);
    staged_ = source_->next();
  }

  std::vector<sim::Scheduler*> schedulers;
  schedulers.reserve(n);
  for (auto& engine : engines_) schedulers.push_back(&engine->scheduler());
  sharded_ = std::make_unique<sim::ShardedScheduler>(std::move(schedulers),
                                                     period_);
}

EngineMetrics ShardedEngine::run() {
  for (auto& engine : engines_) engine->begin_run();

  std::size_t threads = config_.threads;
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = std::max<std::size_t>(1, std::min<std::size_t>(
                                           plan_.shards, hw == 0 ? 1 : hw));
  }
  threads = std::max<std::size_t>(1, std::min<std::size_t>(threads, plan_.shards));
  sim::ThreadPool pool(threads);
  sharded_->drive(pool, *this);

  for (auto& engine : engines_) engine->finish_run();

  EngineMetrics merged = engines_[0]->metrics();
  for (std::uint32_t i = 1; i < plan_.shards; ++i) {
    merged.merge_from(engines_[i]->metrics());
  }
  merged.shard_barriers = sharded_->barriers();
  merged.shard_critical_path_events = sharded_->critical_path_events();
  return merged;
}

std::size_t ShardedEngine::run_shard(std::size_t shard, sim::Time until) {
  return engines_[shard]->run_window(until);
}

void ShardedEngine::on_barrier(sim::Time barrier) {
  // Rich messages, fixed (destination, source, emission) order — the same
  // drain discipline as the POD lanes, so the destination's event order is
  // a pure function of the lane contents.
  const std::size_t n = plan_.shards;
  for (std::size_t to = 0; to < n; ++to) {
    for (std::size_t from = 0; from < n; ++from) {
      auto& handoffs = handoff_lanes_[from * n + to];
      while (!handoffs.empty()) {
        engines_[to]->deliver_handoff(std::move(handoffs.front()), barrier);
        handoffs.pop_front();
      }
      auto& results = result_lanes_[from * n + to];
      while (!results.empty()) {
        engines_[to]->deliver_result(std::move(results.front()), barrier);
        results.pop_front();
      }
    }
  }
}

void ShardedEngine::before_window(sim::Time window_end) {
  // Materialise every arrival due in the upcoming window as a scheduler
  // event on its sender's home shard. Injection happens before the window
  // runs, so the arrival fires at its true timestamp (the drive loop sizes
  // the window to cover next_work_time(), i.e. the staged arrival).
  if (source_ == nullptr) return;
  while (staged_.has_value() && staged_->arrival_time <= window_end) {
    const std::uint32_t home = plan_.node_shard[staged_->sender];
    engines_[home]->inject_arrival(std::move(*staged_));
    staged_ = source_->next();
  }
}

sim::Time ShardedEngine::next_work_time() const {
  return staged_.has_value() ? staged_->arrival_time
                             : sim::Scheduler::kForever;
}

sim::Time ShardedEngine::hard_stop() const {
  // Mirrors the sequential run() loop's extending bound: the latest
  // deadline pulled so far (including the staged, not-yet-injected
  // payment) plus slack. Grows between windows as arrivals stream in.
  double last = 0.0;
  for (const auto& engine : engines_) {
    last = std::max(last, engine->last_deadline_seen());
  }
  if (staged_.has_value()) last = std::max(last, staged_->deadline);
  return last + engines_[0]->config().horizon_slack_s + 60.0;
}

void ShardedEngine::handoff_tu(std::uint32_t from, TuHandoff msg) {
  const ChannelId boundary = msg.tu.path.edges[msg.tu.next_hop];
  const std::uint32_t to = plan_.channel_shard[boundary];
  handoff_lanes_[static_cast<std::size_t>(from) * plan_.shards + to].push_back(
      std::move(msg));
}

void ShardedEngine::post_result(std::uint32_t from, std::uint32_t home_shard,
                                TuResult msg) {
  result_lanes_[static_cast<std::size_t>(from) * plan_.shards + home_shard]
      .push_back(std::move(msg));
}

void ShardedEngine::post_ack(std::uint32_t from, ChannelId channel, double when,
                             const sim::EngineEvent& event) {
  sharded_->post(from, plan_.channel_shard[channel], when, event);
}

// ---------------------------------------------------------------------------
// run_scheme_sharded

EngineMetrics run_scheme_sharded(const Scenario& scenario, Scheme scheme,
                                 SchemeConfig config,
                                 ShardedEngineConfig sharded) {
  const std::uint32_t n = std::max<std::uint32_t>(1, sharded.shards);
  sharded.shards = n;
  switch (scheme) {
    case Scheme::kSplicer: {
      config.engine.queues_enabled = true;
      const ShardPlan plan = ShardPlan::hub_affinity(
          scenario.multi_star.network, scenario.multi_star.hub_of,
          scenario.multi_star.hubs, n);
      ShardedEngine engine(
          scenario.multi_star.network, scenario.make_source(),
          [&](std::uint32_t) -> std::unique_ptr<Router> {
            SplicerRouter::Config rc;
            rc.protocol = config.protocol;
            return std::make_unique<SplicerRouter>(scenario.multi_star.hub_of,
                                                   scenario.multi_star.hubs, rc);
          },
          plan, config.engine, sharded);
      return engine.run();
    }
    case Scheme::kSpider: {
      config.engine.queues_enabled = true;
      const ShardPlan plan = ShardPlan::contiguous(scenario.raw, n);
      ShardedEngine engine(
          scenario.raw, scenario.make_source(),
          [&](std::uint32_t) -> std::unique_ptr<Router> {
            SpiderRouter::Config rc;
            rc.protocol = config.protocol;
            rc.protocol.path_type = graph::PathType::kEdgeDisjointShortest;
            return std::make_unique<SpiderRouter>(rc);
          },
          plan, config.engine, sharded);
      return engine.run();
    }
    case Scheme::kFlash: {
      config.engine.queues_enabled = false;
      const ShardPlan plan = ShardPlan::contiguous(scenario.raw, n);
      ShardedEngine engine(
          scenario.raw, scenario.make_source(),
          [](std::uint32_t) -> std::unique_ptr<Router> {
            return std::make_unique<FlashRouter>();
          },
          plan, config.engine, sharded);
      return engine.run();
    }
    case Scheme::kLandmark: {
      config.engine.queues_enabled = false;
      const ShardPlan plan = ShardPlan::contiguous(scenario.raw, n);
      ShardedEngine engine(
          scenario.raw, scenario.make_source(),
          [](std::uint32_t) -> std::unique_ptr<Router> {
            return std::make_unique<LandmarkRouter>();
          },
          plan, config.engine, sharded);
      return engine.run();
    }
    case Scheme::kA2l: {
      config.engine.queues_enabled = false;
      // Single hub: hub affinity pins every channel to one shard — A2L's
      // serialisation point stays serialised, truthfully.
      const ShardPlan plan = ShardPlan::hub_affinity(
          scenario.single_star.network, scenario.single_star.hub_of,
          scenario.single_star.hubs, n);
      ShardedEngine engine(
          scenario.single_star.network, scenario.make_source(),
          [&](std::uint32_t) -> std::unique_ptr<Router> {
            A2lRouter::Config rc;
            rc.hub = scenario.single_star.hubs.front();
            rc.epoch_s = config.protocol.tau_s;  // tumbler phase = update time
            return std::make_unique<A2lRouter>(rc);
          },
          plan, config.engine, sharded);
      return engine.run();
    }
    case Scheme::kShortestPath: {
      config.engine.queues_enabled = false;
      const ShardPlan plan = ShardPlan::contiguous(scenario.raw, n);
      ShardedEngine engine(
          scenario.raw, scenario.make_source(),
          [](std::uint32_t) -> std::unique_ptr<Router> {
            return std::make_unique<ShortestPathRouter>();
          },
          plan, config.engine, sharded);
      return engine.run();
    }
  }
  throw std::invalid_argument("run_scheme_sharded: unknown scheme");
}

}  // namespace splicer::routing
