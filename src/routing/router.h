#pragma once

// Router strategy interface and the transaction-unit (TU) model shared by
// the simulation engine and every routing scheme.
//
// The engine executes mechanics (HTLC locks hop by hop, acks, waiting
// queues, congestion marking, deadlines, metrics); a Router decides policy
// (paths, splitting, rates, windows, retries) through the hooks below.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "pcn/types.h"
#include "pcn/workload.h"

namespace splicer::routing {

using pcn::Amount;
using pcn::ChannelId;
using pcn::NodeId;
using pcn::PaymentId;
using pcn::TuId;

/// Waiting-queue service orders evaluated in Table II.
enum class SchedulingPolicy : std::uint8_t {
  kFifo,  // first in, first out
  kLifo,  // last in, first out (the paper's pick: serves txns far from deadline)
  kSpf,   // smallest payment first
  kEdf,   // earliest deadline first
};

[[nodiscard]] const char* to_string(SchedulingPolicy policy) noexcept;

enum class FailReason : std::uint8_t {
  kNoPath,             // router found no usable path
  kInsufficientFunds,  // atomic lock failed mid-path
  kMarkedCongested,    // queued past the delay threshold T and marked
  kQueueOverflow,      // channel waiting queue full (q_amount bound)
  kTimeout,            // payment deadline passed
  kHubOverload,        // hub processing backlog (A2L crypto cost model)
  kNodeOffline,        // a path node is offline (hostile-world fault)
  kChannelClosed,      // a path channel closed (hostile-world churn)
  // When adding a reason: keep it above this comment, extend to_string, and
  // bump the static_assert below so kFailReasonCount tracks the enum.
};

/// Number of FailReason values; sizes the per-reason metric arrays.
inline constexpr std::size_t kFailReasonCount =
    static_cast<std::size_t>(FailReason::kChannelClosed) + 1;
static_assert(kFailReasonCount == 8,
              "FailReason changed: update kFailReasonCount's anchor "
              "(last enumerator), to_string(FailReason), and this assert");

[[nodiscard]] const char* to_string(FailReason reason) noexcept;

/// One transaction unit (paper: TU with fresh tuid). hop_amounts[i] is the
/// amount locked on the i-th path edge; it exceeds the delivered value by
/// the downstream forwarding fees (paper eq. 24).
struct TransactionUnit {
  TuId id = 0;
  PaymentId payment = 0;
  Amount value = 0;  // value delivered at the destination
  graph::Path path;
  std::vector<Amount> hop_amounts;
  std::size_t next_hop = 0;  // index of the edge about to be locked
  bool marked = false;
  double created_at = 0.0;
  double deadline = 0.0;
  std::size_t path_index = 0;  // which of its payment's k paths
};

class Engine;

class Router {
 public:
  virtual ~Router() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Called once before the first event; set up timers and caches here.
  virtual void on_start(Engine& engine) { (void)engine; }

  /// A client's payment request reaches its routing decision point.
  virtual void on_payment(Engine& engine, const pcn::Payment& payment) = 0;

  /// All hops of this TU settled at the destination.
  virtual void on_tu_delivered(Engine& engine, const TransactionUnit& tu) {
    (void)engine;
    (void)tu;
  }

  /// The TU was unwound (never reaches the destination).
  virtual void on_tu_failed(Engine& engine, const TransactionUnit& tu,
                            FailReason reason) {
    (void)engine;
    (void)tu;
    (void)reason;
  }

  /// A TU locked funds on (channel, direction); rate-based routers
  /// accumulate the per-direction arrival counters m_a here (eq. 22).
  /// `tu` refers into the engine's slab store: do NOT call
  /// Engine::send_tu from this hook (a slab grow may relocate the
  /// referenced TU). on_tu_delivered/on_tu_failed receive stable copies
  /// and are the places to dispatch follow-up TUs.
  virtual void on_tu_forwarded(Engine& engine, const TransactionUnit& tu,
                               ChannelId channel, pcn::Direction direction) {
    (void)engine;
    (void)tu;
    (void)channel;
    (void)direction;
  }

  /// The payment's deadline fired without full delivery.
  virtual void on_payment_timeout(Engine& engine, PaymentId payment) {
    (void)engine;
    (void)payment;
  }

  /// The payment reached quiescence: resolved (completed or failed), no
  /// live TU remains and its deadline event has fired or been cancelled —
  /// the engine will never invoke another per-TU hook for it. Fired exactly
  /// once per payment, immediately before the state would be evicted (it
  /// also fires, at the same point, when retention keeps the state). This
  /// is the place to erase per-payment entries from router-side maps.
  /// Contract: the hook must not dispatch TUs or schedule events — firing
  /// it must leave the simulation's event stream untouched.
  virtual void on_payment_resolved(Engine& engine, PaymentId payment) {
    (void)engine;
    (void)payment;
  }

  /// A timer armed through Engine::schedule_timer fired. `a` and `b` carry
  /// whatever the router packed when arming — the typed hot-path
  /// alternative to capturing lambdas for per-TU timers (pacing drips,
  /// deferred admits): a POD event in the scheduler pool instead of a
  /// heap-allocated closure.
  virtual void on_timer(Engine& engine, std::uint64_t a, std::uint64_t b) {
    (void)engine;
    (void)a;
    (void)b;
  }
};

}  // namespace splicer::routing
