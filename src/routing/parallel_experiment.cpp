#include "routing/parallel_experiment.h"

#include <optional>
#include <utility>

#include "common/rng.h"
#include "sim/thread_pool.h"

namespace splicer::routing {

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t scenario_idx,
                          std::uint64_t scheme_tag, std::uint64_t trial) noexcept {
  // Hash-combine chain: fully mix before absorbing each component, so that
  // nearby (scenario, scheme, trial) triples land far apart.
  std::uint64_t state = base;
  state = common::splitmix64(state) ^ scenario_idx;
  state = common::splitmix64(state) ^ scheme_tag;
  state = common::splitmix64(state) ^ trial;
  return common::splitmix64(state);
}

ParallelRunner::ParallelRunner(ParallelRunnerConfig config)
    : config_(config) {
  if (config_.trials == 0) config_.trials = 1;
}

std::vector<std::vector<TaskResult>> ParallelRunner::run(
    const std::vector<ScenarioConfig>& scenarios,
    const std::vector<SchemeTask>& tasks) {
  const std::size_t S = scenarios.size();
  const std::size_t K = config_.trials;
  const std::size_t T = tasks.size();

  sim::ThreadPool pool(config_.threads);

  // Phase 1: prepare each (scenario, trial) workload once. Trial 0 keeps
  // the caller's seed so results match the sequential path exactly; later
  // trials re-derive the scenario seed (scheme_tag 0: the workload must be
  // shared by every scheme within a trial).
  std::vector<ScenarioConfig> configs(S * K);
  // optional<>: Scenario has no default constructor (Network requires funds).
  std::vector<std::optional<Scenario>> prepared(S * K);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t k = 0; k < K; ++k) {
      ScenarioConfig config = scenarios[s];
      if (k > 0) config.seed = derive_seed(scenarios[s].seed, s, 0, k);
      configs[s * K + k] = std::move(config);
    }
  }
  pool.parallel_for(S * K, [&](std::size_t i) {
    prepared[i] = prepare_scenario(configs[i]);
  });

  // Phase 2: every (scenario, trial, task) simulation, one shard task each.
  // Results land at fixed indices, so merge order is independent of thread
  // interleaving. Trial 0 keeps the caller's engine seed (sequential
  // parity); later trials derive it per scheme so repetitions are
  // independent on the engine side too.
  std::vector<EngineMetrics> raw(S * K * T);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t k = 0; k < K; ++k) {
      for (std::size_t t = 0; t < T; ++t) {
        const std::size_t index = (s * K + k) * T + t;
        // Explicit wrap: the pinning key is the dense task index, folded
        // onto the worker ring (submit_to itself rejects out-of-range).
        pool.submit_to(index % pool.thread_count(), [&, s, k, t, index] {
          SchemeConfig config = tasks[t].config;
          if (k > 0) {
            config.engine.seed = derive_seed(
                scenarios[s].seed, s,
                static_cast<std::uint64_t>(tasks[t].scheme) + 1, k);
          }
          raw[index] = run_scheme(*prepared[s * K + k], tasks[t].scheme, config);
        });
      }
    }
  }
  pool.wait();
  prepared.clear();  // scenarios can be large (3000-node networks)

  // Merge: aggregate the per-shard metrics into per-(scenario, task) stats.
  std::vector<std::vector<TaskResult>> results(S);
  for (std::size_t s = 0; s < S; ++s) {
    results[s].resize(T);
    for (std::size_t t = 0; t < T; ++t) {
      TaskResult& cell = results[s][t];
      cell.trials.reserve(K);
      for (std::size_t k = 0; k < K; ++k) {
        EngineMetrics& m = raw[(s * K + k) * T + t];
        cell.tsr.add(m.tsr());
        cell.throughput.add(m.normalized_throughput());
        cell.delay_s.add(m.average_delay_s());
        cell.messages.add(static_cast<double>(m.messages.total()));
        cell.peak_resident.add(static_cast<double>(m.peak_resident_states));
        cell.trials.push_back(std::move(m));
      }
    }
  }
  return results;
}

std::vector<TaskResult> ParallelRunner::run(const ScenarioConfig& scenario,
                                            const std::vector<Scheme>& schemes) {
  std::vector<SchemeTask> tasks;
  tasks.reserve(schemes.size());
  for (const auto scheme : schemes) tasks.push_back({scheme, {}, {}});
  auto grid = run(std::vector<ScenarioConfig>{scenario}, tasks);
  return std::move(grid.front());
}

std::vector<std::vector<TaskResult>> ParallelRunner::run_prepared(
    const std::vector<Scenario>& scenarios, const std::vector<SchemeTask>& tasks) {
  const std::size_t S = scenarios.size();
  const std::size_t T = tasks.size();

  sim::ThreadPool pool(config_.threads);
  std::vector<EngineMetrics> raw(S * T);
  for (std::size_t s = 0; s < S; ++s) {
    for (std::size_t t = 0; t < T; ++t) {
      const std::size_t index = s * T + t;
      pool.submit_to(index % pool.thread_count(), [&, s, t, index] {
        raw[index] = run_scheme(scenarios[s], tasks[t].scheme, tasks[t].config);
      });
    }
  }
  pool.wait();

  std::vector<std::vector<TaskResult>> results(S);
  for (std::size_t s = 0; s < S; ++s) {
    results[s].resize(T);
    for (std::size_t t = 0; t < T; ++t) {
      TaskResult& cell = results[s][t];
      EngineMetrics& m = raw[s * T + t];
      cell.tsr.add(m.tsr());
      cell.throughput.add(m.normalized_throughput());
      cell.delay_s.add(m.average_delay_s());
      cell.messages.add(static_cast<double>(m.messages.total()));
      cell.peak_resident.add(static_cast<double>(m.peak_resident_states));
      cell.trials.push_back(std::move(m));
    }
  }
  return results;
}

std::vector<SchemeTask> comparison_tasks(SchemeConfig config) {
  std::vector<SchemeTask> tasks;
  for (const auto scheme : comparison_schemes()) {
    tasks.push_back({scheme, config, {}});
  }
  return tasks;
}

}  // namespace splicer::routing
