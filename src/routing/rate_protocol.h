#pragma once

// Rate-based multi-path routing machinery (paper SS IV-D, Alg. 2), shared
// by SplicerRouter (hub mode) and SpiderRouter (source-routing mode):
//
//  * per-channel capacity price   lambda_ab += kappa (n_a + n_b - c_ab)   (21)
//  * per-direction imbalance price mu_ab    += eta   (m_a - m_b)          (22)
//  * routing price                xi_ab      = 2 lambda + mu_ab - mu_ba   (23)
//  * forwarding fee               fee_ab     = T_fee * xi_ab              (24)
//  * path price                   rho_p      = (1+T_fee) sum xi           (25)
//  * rate update                  r_p       += alpha (U'(r) - rho_p)      (26)
//  * window update on abort/success                                  (27)/(28)
//
// Demands are split into TUs of value in [Min-TU, Max-TU] and dripped onto
// k paths at the per-path rates; windows bound outstanding TUs per path.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/disjoint_paths.h"
#include "routing/engine.h"
#include "routing/router.h"

namespace splicer::routing {

struct RateProtocolConfig {
  double tau_s = 0.2;          // price/probe update interval (Fig. 7(c) sweep)
  // Price steps act on the *capacity-relative* excess/imbalance: the same
  // absolute deficit is urgent on a 20-token channel and negligible on a
  // 60k-token trunk, and the channel's drain time is exactly what the
  // balance constraint protects. Calibrated so a flow that would drain its
  // channel within ~10 update periods gets priced past U'(r) before the
  // buffer empties - which is what makes the protocol deadlock-free in
  // practice.
  double kappa = 2.0;          // capacity price step (per relative excess)
  double eta = 0.4;            // imbalance price step (per relative imbalance)
  double alpha = 200.0;        // rate step
  /// Leaky-integrator factor applied to lambda/mu each update. Eq. (21)/(22)
  /// freeze when traffic stops entirely (m_a = m_b = 0); the mild decay lets
  /// throttled paths recover - a standard stabiliser for integral
  /// controllers (documented deviation, see DESIGN.md).
  double price_decay = 0.99;
  /// Ceiling on lambda and mu. Any price above ~U'(min_rate) already pins
  /// the rate to its floor; letting the integrator wind far past that only
  /// delays recovery (anti-windup clamp).
  double max_price = 4.0;
  double t_fee = 0.1;          // fee threshold parameter (0 < T_fee < 1)
  double delta_rtt_s = 0.2;    // Delta: expected lock duration per TU
  Amount min_tu = common::whole_tokens(1);  // paper: 1 token
  Amount max_tu = common::whole_tokens(4);  // paper: 4 tokens
  std::size_t k_paths = 5;                  // paper: 5
  graph::PathType path_type = graph::PathType::kEdgeDisjointWidest;
  double initial_rate_tps = 300.0;  // tokens/sec per path
  double min_rate_tps = 0.5;
  double max_rate_tps = 20000.0;
  double initial_window = 16.0;     // TUs outstanding per path
  double min_window = 1.0;
  double max_window = 500.0;
  double beta = 10.0;               // window decrease factor (paper: 10)
  double gamma = 0.1;               // window increase factor (paper: 0.1)
  double fee_rate_cap = 0.05;       // sanity cap on per-hop fee rate
  /// Source-side admission (Alg. 2 line 10): hold a TU at its smooth node
  /// while a downstream hop lacks funds. Only effective for routers with a
  /// global view (Splicer); disabling it shifts congestion handling onto
  /// the in-network waiting queues (Table II scheduling rows, ablations).
  bool source_gating = true;
};

/// Base router implementing the full rate/window protocol. Subclasses bind
/// it to a concrete topology role by implementing the virtuals.
class RateRouterBase : public Router {
 public:
  explicit RateRouterBase(RateProtocolConfig config) : config_(config) {}

  void on_start(Engine& engine) override;
  void on_payment(Engine& engine, const pcn::Payment& payment) override;
  void on_tu_delivered(Engine& engine, const TransactionUnit& tu) override;
  void on_tu_failed(Engine& engine, const TransactionUnit& tu,
                    FailReason reason) override;
  void on_tu_forwarded(Engine& engine, const TransactionUnit& tu,
                       ChannelId channel, pcn::Direction direction) override;
  void on_payment_resolved(Engine& engine, PaymentId payment) override;

  [[nodiscard]] const RateProtocolConfig& protocol_config() const noexcept {
    return config_;
  }

  /// Payments still holding a pair_of_payment_ entry (tests: the
  /// on_payment_resolved hook must leave this at 0 after a full run).
  [[nodiscard]] std::size_t tracked_payments() const noexcept {
    return pair_of_payment_.size();
  }

  /// Current routing price xi of a directed channel (tests/diagnostics).
  [[nodiscard]] double channel_price(ChannelId channel, pcn::Direction d) const;
  /// Current fee rate (eq. 24) of a directed channel.
  [[nodiscard]] double fee_rate(ChannelId channel, pcn::Direction d) const;

  /// Per-path protocol state of a pair (tests/diagnostics); empty if the
  /// pair has never been admitted.
  struct PathDiagnostics {
    double rate_tps = 0.0;
    double window = 0.0;
    double price = 0.0;
    std::size_t outstanding = 0;
    std::size_t hops = 0;
  };
  [[nodiscard]] std::vector<PathDiagnostics> pair_diagnostics(NodeId from,
                                                              NodeId to) const;

 protected:
  /// Endpoints between which the k-path set is computed. For Splicer these
  /// are the two hubs; for Spider the sender/receiver themselves.
  struct PairKey {
    NodeId from;
    NodeId to;
    auto operator<=>(const PairKey&) const = default;
  };
  [[nodiscard]] virtual PairKey pair_of(const Engine& engine,
                                        const pcn::Payment& payment) const = 0;

  /// Wraps a pair-level path into the full client-to-client path (Splicer
  /// prepends/appends the client spokes; Spider returns it unchanged).
  /// Called once per pair at path-set creation; probes, fees and TUs all
  /// use the full path.
  [[nodiscard]] virtual std::optional<graph::Path> assemble_path(
      Engine& engine, NodeId from, NodeId to, const graph::Path& pair_path)
      const = 0;

  /// Seconds of routing-decision latency before the payment's demand is
  /// admitted (models end-host route computation for Spider; ~0 for hubs).
  [[nodiscard]] virtual double decision_delay(Engine& engine,
                                              const pcn::Payment& payment) {
    (void)engine;
    (void)payment;
    return 0.0;
  }

  /// Computes the k pair-level paths. Default: select_paths on the engine
  /// topology with the configured path type.
  [[nodiscard]] virtual std::vector<graph::Path> compute_pair_paths(
      Engine& engine, const PairKey& pair) const;

  /// Called once per protocol tick (every tau) after prices update;
  /// subclasses may add bookkeeping (e.g., Splicer's epoch sync counting
  /// happens on its own timer).
  virtual void on_tick(Engine& engine) { (void)engine; }

  /// Source-side admission (paper Alg. 2 line 10, F_ab < |d_i|): whether a
  /// TU with these hop amounts may be dispatched now. Splicer's smooth
  /// nodes see (epoch-synchronised) global state and hold the TU at the
  /// source when a downstream channel lacks funds; source-routing senders
  /// (Spider) have no such view and always dispatch.
  [[nodiscard]] virtual bool admit_tu(Engine& engine, const graph::Path& path,
                                      const std::vector<Amount>& hop_amounts) {
    (void)engine;
    (void)path;
    (void)hop_amounts;
    return true;
  }

 private:
  struct ChannelPrices {
    double lambda = 0.0;
    double mu[2] = {0.0, 0.0};
    double arrived_tokens[2] = {0.0, 0.0};  // m_a / m_b this window
  };
  struct PathState {
    graph::Path full_path;    // client -> ... -> client, ready to send on
    /// Directed-channel index (2*channel + direction) of every path edge,
    /// precomputed once at path creation: probes and fee schedules read the
    /// flat per-tick price array instead of re-deriving the direction and
    /// chasing the channel record on every visit.
    std::vector<std::uint32_t> hop_index;
    double rate_tps = 0.0;
    double window = 0.0;
    double price = 0.0;       // rho_p from the latest probe
    std::size_t outstanding = 0;
    // Pacing state: the earliest next send is last_send +
    // last_tu_tokens / *current* rate, re-evaluated at drip time so a
    // recovered rate takes effect immediately.
    double last_send = -1e9;
    double last_tu_tokens = 0.0;
    double hold_until = 0.0;  // source-gating backoff
    bool drip_scheduled = false;

    [[nodiscard]] double earliest_send(double min_rate) const {
      const double rate = rate_tps > min_rate ? rate_tps : min_rate;
      const double paced = last_send + last_tu_tokens / rate;
      return paced > hold_until ? paced : hold_until;
    }
  };
  struct DemandEntry {
    PaymentId payment = 0;
    Amount remaining = 0;
  };
  struct PairState {
    std::vector<PathState> paths;
    std::deque<DemandEntry> demands;
    std::size_t round_robin_cursor = 0;
  };

  // Typed timer dispatch (Engine::schedule_timer): drip timers pack the
  // pair endpoints into `a` and the path index into `b`; deferred admits
  // pack the payment id into `a` and this sentinel into `b`. Path counts
  // are tiny (k paths per pair), so the sentinel can never collide.
  static constexpr std::uint64_t kAdmitTimer = ~std::uint64_t{0};
  [[nodiscard]] static constexpr std::uint64_t pack_pair(PairKey pair) noexcept {
    return (static_cast<std::uint64_t>(pair.from) << 32) | pair.to;
  }
  [[nodiscard]] static constexpr PairKey unpack_pair(std::uint64_t a) noexcept {
    return PairKey{static_cast<NodeId>(a >> 32),
                   static_cast<NodeId>(a & 0xffffffffu)};
  }
  void on_timer(Engine& engine, std::uint64_t a, std::uint64_t b) override;

  void admit_demand(Engine& engine, const pcn::Payment& payment);
  PairState* ensure_pair(Engine& engine, const PairKey& pair);
  void update_prices(Engine& engine);
  void probe_pairs(Engine& engine);
  void schedule_drip(Engine& engine, const PairKey& pair, std::size_t path_index);
  void try_send(Engine& engine, const PairKey& pair, std::size_t path_index);
  [[nodiscard]] double total_pair_rate(const PairState& pair) const;
  [[nodiscard]] std::vector<Amount> fee_schedule(const PathState& path,
                                                 Amount value) const;

  /// The one fee policy (eq. 24's rate term): shared by the public
  /// fee_rate() and the flat-array fee schedule so the formula can never
  /// diverge between the two data sources.
  [[nodiscard]] double fee_from_price(double price) const noexcept {
    return std::min(config_.fee_rate_cap, config_.t_fee * price);
  }

  /// O(1) pair lookup for the per-TU paths (drips, sends, delivery acks).
  /// pairs_ stays an ordered map because probe_pairs' iteration order
  /// schedules drip events — it must remain the sorted order the frozen
  /// event stream was recorded with; its nodes are pointer-stable, so the
  /// index can hold plain pointers.
  [[nodiscard]] PairState& pair_state(const PairKey& pair) {
    return *pair_index_.at(pack_pair(pair));
  }

  RateProtocolConfig config_;
  std::vector<ChannelPrices> prices_;
  /// channel_price() of every directed channel, refreshed by update_prices
  /// each tick (prices only change there): probe/fee sums become flat-array
  /// reads, bit-identical to recomputing the price per visit.
  std::vector<double> price_flat_;
  std::map<PairKey, PairState> pairs_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed O(1) lookup cache over pairs_;
  // never iterated — every order-sensitive sweep walks the ordered pairs_ map.
  std::unordered_map<std::uint64_t, PairState*> pair_index_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed lookup/erase by PaymentId only,
  // never iterated; iteration order cannot reach the event stream.
  std::unordered_map<PaymentId, PairKey> pair_of_payment_;
};

}  // namespace splicer::routing
