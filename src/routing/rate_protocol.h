#pragma once

// Rate-based multi-path routing machinery (paper SS IV-D, Alg. 2), shared
// by SplicerRouter (hub mode) and SpiderRouter (source-routing mode):
//
//  * per-channel capacity price   lambda_ab += kappa (n_a + n_b - c_ab)   (21)
//  * per-direction imbalance price mu_ab    += eta   (m_a - m_b)          (22)
//  * routing price                xi_ab      = 2 lambda + mu_ab - mu_ba   (23)
//  * forwarding fee               fee_ab     = T_fee * xi_ab              (24)
//  * path price                   rho_p      = (1+T_fee) sum xi           (25)
//  * rate update                  r_p       += alpha (U'(r) - rho_p)      (26)
//  * window update on abort/success                                  (27)/(28)
//
// Demands are split into TUs of value in [Min-TU, Max-TU] and dripped onto
// k paths at the per-path rates; windows bound outstanding TUs per path.

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/disjoint_paths.h"
#include "routing/engine.h"
#include "routing/router.h"

namespace splicer::routing {

struct RateProtocolConfig {
  double tau_s = 0.2;          // price/probe update interval (Fig. 7(c) sweep)
  // Price steps act on the *capacity-relative* excess/imbalance: the same
  // absolute deficit is urgent on a 20-token channel and negligible on a
  // 60k-token trunk, and the channel's drain time is exactly what the
  // balance constraint protects. Calibrated so a flow that would drain its
  // channel within ~10 update periods gets priced past U'(r) before the
  // buffer empties - which is what makes the protocol deadlock-free in
  // practice.
  double kappa = 2.0;          // capacity price step (per relative excess)
  double eta = 0.4;            // imbalance price step (per relative imbalance)
  double alpha = 200.0;        // rate step
  /// Leaky-integrator factor applied to lambda/mu each update. Eq. (21)/(22)
  /// freeze when traffic stops entirely (m_a = m_b = 0); the mild decay lets
  /// throttled paths recover - a standard stabiliser for integral
  /// controllers (documented deviation, see DESIGN.md).
  double price_decay = 0.99;
  /// Ceiling on lambda and mu. Any price above ~U'(min_rate) already pins
  /// the rate to its floor; letting the integrator wind far past that only
  /// delays recovery (anti-windup clamp).
  double max_price = 4.0;
  double t_fee = 0.1;          // fee threshold parameter (0 < T_fee < 1)
  double delta_rtt_s = 0.2;    // Delta: expected lock duration per TU
  Amount min_tu = common::whole_tokens(1);  // paper: 1 token
  Amount max_tu = common::whole_tokens(4);  // paper: 4 tokens
  std::size_t k_paths = 5;                  // paper: 5
  graph::PathType path_type = graph::PathType::kEdgeDisjointWidest;
  double initial_rate_tps = 300.0;  // tokens/sec per path
  double min_rate_tps = 0.5;
  double max_rate_tps = 20000.0;
  double initial_window = 16.0;     // TUs outstanding per path
  double min_window = 1.0;
  double max_window = 500.0;
  double beta = 10.0;               // window decrease factor (paper: 10)
  double gamma = 0.1;               // window increase factor (paper: 0.1)
  double fee_rate_cap = 0.05;       // sanity cap on per-hop fee rate
  /// Source-side admission (Alg. 2 line 10): hold a TU at its smooth node
  /// while a downstream hop lacks funds. Only effective for routers with a
  /// global view (Splicer); disabling it shifts congestion handling onto
  /// the in-network waiting queues (Table II scheduling rows, ablations).
  bool source_gating = true;
};

/// Base router implementing the full rate/window protocol. Subclasses bind
/// it to a concrete topology role by implementing the virtuals.
class RateRouterBase : public Router {
 public:
  explicit RateRouterBase(RateProtocolConfig config) : config_(config) {}

  void on_start(Engine& engine) override;
  void on_payment(Engine& engine, const pcn::Payment& payment) override;
  void on_tu_delivered(Engine& engine, const TransactionUnit& tu) override;
  void on_tu_failed(Engine& engine, const TransactionUnit& tu,
                    FailReason reason) override;
  void on_tu_forwarded(Engine& engine, const TransactionUnit& tu,
                       ChannelId channel, pcn::Direction direction) override;
  void on_payment_resolved(Engine& engine, PaymentId payment) override;

  [[nodiscard]] const RateProtocolConfig& protocol_config() const noexcept {
    return config_;
  }

  /// Payments still holding a pair_of_payment_ entry (tests: the
  /// on_payment_resolved hook must leave this at 0 after a full run).
  [[nodiscard]] std::size_t tracked_payments() const noexcept {
    return pair_of_payment_.size();
  }

  /// Current routing price xi of a directed channel (tests/diagnostics).
  [[nodiscard]] double channel_price(ChannelId channel, pcn::Direction d) const;
  /// Current fee rate (eq. 24) of a directed channel.
  [[nodiscard]] double fee_rate(ChannelId channel, pcn::Direction d) const;

  /// Per-path protocol state of a pair (tests/diagnostics); empty if the
  /// pair has never been admitted.
  struct PathDiagnostics {
    double rate_tps = 0.0;
    double window = 0.0;
    double price = 0.0;
    std::size_t outstanding = 0;
    std::size_t hops = 0;
  };
  [[nodiscard]] std::vector<PathDiagnostics> pair_diagnostics(NodeId from,
                                                              NodeId to) const;

  /// One price-update + probe round, exactly as the recurring tau timer
  /// runs it (minus the subclass on_tick hook). Public for the rate-tick
  /// microbenchmark, which drives ticks directly at controlled
  /// dirty-channel fractions; simulations never call this.
  void run_protocol_tick(Engine& engine);

 protected:
  /// Endpoints between which the k-path set is computed. For Splicer these
  /// are the two hubs; for Spider the sender/receiver themselves.
  struct PairKey {
    NodeId from;
    NodeId to;
    auto operator<=>(const PairKey&) const = default;
  };
  [[nodiscard]] virtual PairKey pair_of(const Engine& engine,
                                        const pcn::Payment& payment) const = 0;

  /// Wraps a pair-level path into the full client-to-client path (Splicer
  /// prepends/appends the client spokes; Spider returns it unchanged).
  /// Called once per pair at path-set creation; probes, fees and TUs all
  /// use the full path.
  [[nodiscard]] virtual std::optional<graph::Path> assemble_path(
      Engine& engine, NodeId from, NodeId to, const graph::Path& pair_path)
      const = 0;

  /// Seconds of routing-decision latency before the payment's demand is
  /// admitted (models end-host route computation for Spider; ~0 for hubs).
  [[nodiscard]] virtual double decision_delay(Engine& engine,
                                              const pcn::Payment& payment) {
    (void)engine;
    (void)payment;
    return 0.0;
  }

  /// Computes the k pair-level paths. Default: select_paths on the engine
  /// topology with the configured path type.
  [[nodiscard]] virtual std::vector<graph::Path> compute_pair_paths(
      Engine& engine, const PairKey& pair) const;

  /// Called once per protocol tick (every tau) after prices update;
  /// subclasses may add bookkeeping (e.g., Splicer's epoch sync counting
  /// happens on its own timer).
  virtual void on_tick(Engine& engine) { (void)engine; }

  /// Source-side admission (paper Alg. 2 line 10, F_ab < |d_i|): whether a
  /// TU with these hop amounts may be dispatched now. Splicer's smooth
  /// nodes see (epoch-synchronised) global state and hold the TU at the
  /// source when a downstream channel lacks funds; source-routing senders
  /// (Spider) have no such view and always dispatch.
  [[nodiscard]] virtual bool admit_tu(Engine& engine, const graph::Path& path,
                                      const std::vector<Amount>& hop_amounts) {
    (void)engine;
    (void)path;
    (void)hop_amounts;
    return true;
  }

 private:
  struct ChannelPrices {
    double lambda = 0.0;
    double mu[2] = {0.0, 0.0};
    double arrived_tokens[2] = {0.0, 0.0};  // m_a / m_b this window
  };
  struct PathState {
    graph::Path full_path;    // client -> ... -> client, ready to send on
    /// Directed-channel index (2*channel + direction) of every path edge,
    /// precomputed once at path creation: probes and fee schedules read the
    /// flat per-tick price array instead of re-deriving the direction and
    /// chasing the channel record on every visit.
    std::vector<std::uint32_t> hop_index;
    double rate_tps = 0.0;
    double window = 0.0;
    double price = 0.0;       // rho_p from the latest probe
    std::size_t outstanding = 0;
    // Pacing state: the earliest next send is last_send +
    // last_tu_tokens / *current* rate, re-evaluated at drip time so a
    // recovered rate takes effect immediately.
    double last_send = -1e9;
    double last_tu_tokens = 0.0;
    double hold_until = 0.0;  // source-gating backoff
    bool drip_scheduled = false;
    /// Tick at which `price` was last computed (0 = never). The cached sum
    /// is reusable while no hop's flat price changed bitwise after that
    /// tick (flat_tick_); reuse returns the identical double, so probes
    /// stay bit-identical to an unconditional re-sum.
    std::uint64_t price_tick = 0;
    /// Position (into hop_index) of the hop that last broke memo reuse,
    /// checked first on the next probe: a path crossing a hot channel
    /// fails its memo check in one load instead of re-scanning every
    /// hop's change tick alongside the re-sum it can't avoid anyway.
    std::uint32_t memo_hint = 0;

    [[nodiscard]] double earliest_send(double min_rate) const {
      const double rate = rate_tps > min_rate ? rate_tps : min_rate;
      const double paced = last_send + last_tu_tokens / rate;
      return paced > hold_until ? paced : hold_until;
    }
  };
  struct DemandEntry {
    PaymentId payment = 0;
    Amount remaining = 0;
  };
  struct PairState {
    std::vector<PathState> paths;
    std::deque<DemandEntry> demands;
    std::size_t round_robin_cursor = 0;
    /// Own key, mirrored from the pairs_ map so the active list can sort
    /// and the wake machinery can name the pair without a reverse lookup.
    PairKey key{};
    /// Active-pair scheduling (incremental mode only; full-recompute
    /// sweeps the whole map and never touches these). A pair sleeps when
    /// its per-tick probe is a provable identity: no demands, nothing
    /// outstanding, and every path's rate pinned at a clamp bound with a
    /// price that keeps it pinned. It wakes on new demand, on a TU retry,
    /// on any non-decay price change of an incident channel (sleep_subs_),
    /// or at a conservatively precomputed decay tick (wake_heap_).
    bool awake = true;
    /// Bumped by every wake: stale sleep subscriptions and wake-heap
    /// entries (issued under an older epoch) are dropped lazily on
    /// inspection instead of being hunted down eagerly.
    std::uint64_t sleep_epoch = 0;
    /// Epoch under which the hop subscriptions were last registered; a
    /// decay re-check that leaves the pair asleep keeps the epoch, so the
    /// existing subscriptions stay valid and are not re-appended.
    std::uint64_t subs_epoch = ~std::uint64_t{0};
    /// Tick of the last wake. Re-sleeping is deferred (resleep_delay
    /// ticks) after a wake so a pair oscillating at a trigger threshold
    /// probes normally instead of thrashing the subscription lists —
    /// staying awake is always result-identical, only slower.
    std::uint64_t last_wake_tick = 0;
    /// Tick at which the pair last fell asleep (0 = never slept).
    std::uint64_t last_sleep_tick = 0;
    /// Adaptive hysteresis: doubled every time a sleep is cut short (the
    /// wake came within 4x the current delay), reset after a sleep that
    /// lasted. Pairs with steady periodic traffic quickly stop paying the
    /// sleep/wake bookkeeping (subscription registration, sorted insert)
    /// for probe skips they never collect; genuinely idle pairs sleep once
    /// and stay asleep. A scheduling heuristic only — results don't
    /// depend on it (asleep or awake, the pair's updates are identities).
    std::uint64_t resleep_delay = kResleepDelayTicks;
  };

  // Typed timer dispatch (Engine::schedule_timer): drip timers pack the
  // pair endpoints into `a` and the path index into `b`; deferred admits
  // pack the payment id into `a` and this sentinel into `b`. Path counts
  // are tiny (k paths per pair), so the sentinel can never collide.
  static constexpr std::uint64_t kAdmitTimer = ~std::uint64_t{0};
  [[nodiscard]] static constexpr std::uint64_t pack_pair(PairKey pair) noexcept {
    return (static_cast<std::uint64_t>(pair.from) << 32) | pair.to;
  }
  [[nodiscard]] static constexpr PairKey unpack_pair(std::uint64_t a) noexcept {
    return PairKey{static_cast<NodeId>(a >> 32),
                   static_cast<NodeId>(a & 0xffffffffu)};
  }
  void on_timer(Engine& engine, std::uint64_t a, std::uint64_t b) override;

  void admit_demand(Engine& engine, const pcn::Payment& payment);
  PairState* ensure_pair(Engine& engine, const PairKey& pair);
  void update_prices(Engine& engine);
  void probe_pairs(Engine& engine);

  // ---- Incremental tick machinery (bit-identical to the full sweep) ----
  /// Applies eqs. (21)-(22) to one channel (the full sweep's loop body).
  /// Returns whether the channel still carries price state (any of
  /// lambda/mu nonzero) — an all-zero channel's next update is an exact
  /// identity (required == 0, urgency == 0, clamps pin at 0.0, flats stay
  /// 0.0 bitwise), so it can be retired from the active set until a new
  /// arrival or balance move re-activates it.
  bool update_channel_price(Engine& engine, ChannelId c);
  /// Adds a channel to the incremental update set (idempotent).
  void activate_channel(ChannelId c) {
    if (full_recompute_ || channel_active_[c] != 0) return;
    channel_active_[c] = 1;
    active_channels_.push_back(c);
  }
  /// Re-inserts a sleeping pair into the probe sweep (idempotent). Bumps
  /// sleep_epoch, invalidating its subscriptions and wake-heap entries.
  void wake_pair(PairState& state);
  /// Probes one pair (the full sweep's loop body) and, in incremental
  /// mode, evaluates the sleep condition afterwards.
  void probe_one_pair(Engine& engine, const PairKey& pair, PairState& state);
  /// Decay re-check for a heap-woken pair: true iff this tick's probe is
  /// still an identity (prices haven't decayed past any clamp threshold),
  /// in which case `rearm_tick` holds the next conservative wake tick
  /// (0 = none needed).
  [[nodiscard]] bool sleeping_probe_is_identity(const PairState& state,
                                                std::uint64_t& rearm_tick) const;
  /// Conservative tick count for which a min-pinned path of total rate
  /// `total_rate` provably stays pinned while `price` decays by at most
  /// factor price_decay per tick; 0 when no safe margin exists.
  [[nodiscard]] std::uint64_t decay_ticks_until_unpin(double price,
                                                      double total_rate) const;
  void schedule_drip(Engine& engine, const PairKey& pair, std::size_t path_index);
  void try_send(Engine& engine, const PairKey& pair, std::size_t path_index);
  [[nodiscard]] double total_pair_rate(const PairState& pair) const;
  /// Per-hop amounts (eq. 24) for a TU of `value` on `path`, filled into
  /// fee_scratch_ — valid until the next fee_schedule call. Rejected admits
  /// (funds short, window re-check) thus cost no allocation; only a TU that
  /// is actually sent copies the schedule into its own storage. The network
  /// supplies each hop's ChannelPolicy, whose {fee_base, fee_proportional}
  /// compose with the price-derived rate (identity in a benign run: base 0,
  /// proportional 0.0 leaves every double bit-identical).
  [[nodiscard]] const std::vector<Amount>& fee_schedule(
      const pcn::Network& network, const PathState& path, Amount value) const;

  /// The one fee policy (eq. 24's rate term): shared by the public
  /// fee_rate() and the flat-array fee schedule so the formula can never
  /// diverge between the two data sources.
  [[nodiscard]] double fee_from_price(double price) const noexcept {
    return std::min(config_.fee_rate_cap, config_.t_fee * price);
  }

  /// O(1) pair lookup for the per-TU paths (drips, sends, delivery acks).
  /// pairs_ stays an ordered map because probe_pairs' iteration order
  /// schedules drip events — it must remain the sorted order the frozen
  /// event stream was recorded with; its nodes are pointer-stable, so the
  /// index can hold plain pointers.
  [[nodiscard]] PairState& pair_state(const PairKey& pair) {
    return *pair_index_.at(pack_pair(pair));
  }

  RateProtocolConfig config_;
  std::vector<ChannelPrices> prices_;
  /// channel_price() of every directed channel, refreshed by update_prices
  /// each tick (prices only change there): probe/fee sums become flat-array
  /// reads, bit-identical to recomputing the price per visit.
  std::vector<double> price_flat_;

  // ---- Incremental tick state (inert when full_recompute_) -------------
  /// Mirror of EngineConfig::full_recompute_ticks, latched at on_start.
  bool full_recompute_ = false;
  /// Protocol tick counter (first tick = 1; 0 is the "never" sentinel for
  /// price_tick/flat_tick_).
  std::uint64_t tick_ = 0;
  /// Tick at which each directed channel's flat price last changed
  /// bitwise — the staleness clock for memoized path price sums.
  std::vector<std::uint64_t> flat_tick_;
  /// Channels whose price state may be nonzero, i.e. whose per-tick update
  /// is not a provable identity. Flag vector + compacting visit list;
  /// entries retire when their post-update state is exactly zero.
  std::vector<char> channel_active_;
  std::vector<ChannelId> active_channels_;
  /// Awake pairs in ascending PairKey order — the probe sweep's iteration
  /// set. The order matches the full sweep over the ordered pairs_ map, so
  /// the drip events it schedules form the identical subsequence of the
  /// frozen event stream. Compacted in place as pairs fall asleep; wakes
  /// insert at the sorted position. Single-owner state of the router tick
  /// (writer-lanes lint rule).
  std::vector<PairState*> active_pairs_;
  /// Wake masks for sleep subscriptions: which kind of flat-price change
  /// breaks the subscribing path's pin. A min-pinned path tolerates pure
  /// decay (the wake heap bounds that) but not a steeper drop; a
  /// max-pinned path tolerates any drop but no rise.
  static constexpr std::uint8_t kWakeOnDrop = 1;
  static constexpr std::uint8_t kWakeOnRise = 2;
  /// Base ticks a freshly woken pair stays in the sweep before it may
  /// sleep again (anti-thrash hysteresis; see PairState::resleep_delay
  /// for the adaptive doubling and kMaxResleepDelayTicks for the cap).
  static constexpr std::uint64_t kResleepDelayTicks = 4;
  static constexpr std::uint64_t kMaxResleepDelayTicks = 1024;
  /// Per-directed-channel sleep subscriptions (indexed like price_flat_):
  /// sleeping pairs to wake when this flat price changes in a way their
  /// mask cares about. Triggered entries and entries from older sleep
  /// epochs are dropped at inspection time.
  struct SleepSub {
    /// Direct pointer — pairs_ map nodes are pointer-stable and never
    /// erased, and waking is order-insensitive (a set-union of awake
    /// flags; the sweep order comes from the key-sorted active list), so
    /// no hash lookup is needed on the flat-change hot path.
    PairState* pair = nullptr;
    std::uint64_t epoch = 0;  // valid iff == the pair's sleep_epoch
    std::uint8_t mask = 0;    // kWakeOnDrop / kWakeOnRise
  };
  std::vector<std::vector<SleepSub>> sleep_subs_;
  /// Min-heap (by tick, then key) of conservative decay wake-ups for
  /// min-pinned sleeping pairs. Entries are re-validated on pop — a pair
  /// still provably pinned just re-arms under the same epoch.
  struct WakeEntry {
    std::uint64_t tick = 0;
    std::uint64_t key = 0;  // pack_pair key — ordering only, never deref'd
    PairState* pair = nullptr;  // stable node pointer (pairs_ never erases)
    std::uint64_t epoch = 0;
    /// Min-heap ordering: std::push_heap keeps the *greatest* on top, so
    /// "greater" entries (later ticks) sink. The packed key breaks ties so
    /// heap shape never depends on pointer values.
    friend bool operator<(const WakeEntry& a, const WakeEntry& b) noexcept {
      return a.tick != b.tick ? a.tick > b.tick : a.key > b.key;
    }
  };
  std::vector<WakeEntry> wake_heap_;

  std::map<PairKey, PairState> pairs_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed O(1) lookup cache over pairs_;
  // never iterated — every order-sensitive sweep walks the ordered pairs_ map.
  std::unordered_map<std::uint64_t, PairState*> pair_index_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed lookup/erase by PaymentId only,
  // never iterated; iteration order cannot reach the event stream.
  std::unordered_map<PaymentId, PairKey> pair_of_payment_;
  /// fee_schedule's output buffer: one live schedule at a time (try_send
  /// consumes it before the next call), so the per-TU vector is hoisted out
  /// of the send path — capacity reaches the longest path's hop count once
  /// and stays there. Mutable because fee_schedule is logically const.
  mutable std::vector<Amount> fee_scratch_;
};

}  // namespace splicer::routing
