#pragma once

// Flash (CoNEXT '19) baseline: elephant/mice split routing.
//  * Elephant payments (value above a threshold) probe current channel
//    balances and run a max-flow computation; the payment is split across
//    the augmenting paths and sent atomically, retrying with a fresh
//    max-flow on partial failure.
//  * Mice payments pick one of m precomputed shortest paths at random and
//    send atomically, retrying on another random path.
// No rate control and no waiting queues (atomic HTLCs), which is what
// exposes Flash to imbalance-driven failures in the paper's workload.

#include <map>
#include <unordered_map>

#include "routing/engine.h"
#include "routing/router.h"

namespace splicer::routing {

class FlashRouter final : public Router {
 public:
  struct Config {
    Amount elephant_threshold = common::whole_tokens(50);
    std::size_t max_flow_paths = 5;   // split width for elephants
    std::size_t mice_path_count = 4;  // m precomputed paths
    std::size_t mice_retries = 2;
    std::size_t elephant_retries = 1;
    /// Balance probes take a round trip, so Flash's view of channel
    /// balances is refreshed at most this often (stale between probes).
    double probe_staleness_s = 0.2;
  };

  FlashRouter();  // default configuration
  explicit FlashRouter(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Flash"; }

  void on_payment(Engine& engine, const pcn::Payment& payment) override;
  void on_tu_delivered(Engine& engine, const TransactionUnit& tu) override;
  void on_tu_failed(Engine& engine, const TransactionUnit& tu,
                    FailReason reason) override;
  void on_payment_resolved(Engine& engine, PaymentId payment) override {
    (void)engine;
    // No TU of the payment remains; retries stopped at resolution (both TU
    // hooks check the payment's active() state before redispatching).
    progress_.erase(payment);
  }

  /// Payments still holding a progress_ entry (tests: must be 0 post-run).
  [[nodiscard]] std::size_t tracked_payments() const noexcept {
    return progress_.size();
  }

 private:
  struct PaymentProgress {
    std::size_t retries_left = 0;
    bool elephant = false;
    Amount failed_value = 0;   // value that needs re-dispatch
    std::size_t outstanding = 0;
  };

  void send_elephant(Engine& engine, const pcn::Payment& payment, Amount value,
                     PaymentProgress& progress);
  void send_mice(Engine& engine, const pcn::Payment& payment, Amount value,
                 PaymentProgress& progress);
  const std::vector<graph::Path>& mice_paths(Engine& engine, NodeId from,
                                             NodeId to);

  Config config_;
  std::map<std::pair<NodeId, NodeId>, std::vector<graph::Path>> mice_cache_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed lookup/erase by PaymentId only,
  // never iterated; per-payment progress order cannot reach the event stream.
  std::unordered_map<PaymentId, PaymentProgress> progress_;
  // Stale balance snapshot shared by elephant max-flow computations.
  std::vector<double> snapshot_forward_;
  std::vector<double> snapshot_backward_;
  double snapshot_time_ = -1.0;
  // Scratch for hostile-world mice-path filtering (cleared per payment).
  std::vector<const graph::Path*> mice_candidates_;
};

}  // namespace splicer::routing
