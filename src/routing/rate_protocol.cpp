#include "routing/rate_protocol.h"

#include <algorithm>
#include <cmath>

#include "routing/path_filter.h"

namespace splicer::routing {

void RateRouterBase::on_start(Engine& engine) {
  const std::size_t channels = engine.network().channel_count();
  prices_.assign(channels, ChannelPrices{});
  // channel_price() of the zero-initialised prices is 0 for every
  // direction, so the flat mirror starts at zero too.
  price_flat_.assign(2 * channels, 0.0);

  // Incremental-tick state. The default mode skips provably-identity
  // per-tick work; full_recompute_ticks forces the legacy full sweeps so
  // CI can diff the two modes' outputs byte for byte.
  full_recompute_ = engine.config().full_recompute_ticks;
  tick_ = 0;
  flat_tick_.assign(2 * channels, 0);
  channel_active_.assign(channels, 0);
  active_channels_.clear();
  sleep_subs_.assign(2 * channels, {});
  wake_heap_.clear();
  active_pairs_.clear();
  if (!full_recompute_) {
    engine.enable_dirty_channel_tracking();
    // A reused router may carry pairs from a previous run: every pair
    // starts the run awake (the ordered map yields the sorted list).
    for (auto& [key, state] : pairs_) {
      state.key = key;
      state.awake = true;
      state.sleep_epoch = 0;
      state.subs_epoch = ~std::uint64_t{0};
      active_pairs_.push_back(&state);
    }
  }

  // workload_horizon() is queried per tick: for streaming sources it grows
  // as payments are pulled, so price updates keep running until the tail
  // payments' deadlines have passed (replay sources report it exactly from
  // the start, matching the old materialised-vector scan).
  engine.scheduler().every(config_.tau_s, [this, &engine] {
    if (engine.past_horizon()) return false;
    run_protocol_tick(engine);
    on_tick(engine);
    return true;
  });
}

void RateRouterBase::run_protocol_tick(Engine& engine) {
  update_prices(engine);
  probe_pairs(engine);
}

void RateRouterBase::on_payment(Engine& engine, const pcn::Payment& payment) {
  const double delay = decision_delay(engine, payment);
  if (delay <= 0.0) {
    admit_demand(engine, payment);
  } else {
    // Typed deferred admit: the engine's PaymentState holds the payment, so
    // the timer only needs the id — no per-payment closure allocation.
    engine.schedule_timer(delay, payment.id, kAdmitTimer);
  }
}

void RateRouterBase::on_timer(Engine& engine, std::uint64_t a, std::uint64_t b) {
  if (b == kAdmitTimer) {
    // Checked lookup: the decision delay can outlive the payment, and a
    // resolved state may already be evicted (streaming retention contract).
    const auto* state = engine.find_payment_state(a);
    if (state == nullptr || !state->active()) return;  // already timed out
    // SPLICER_LINT_ALLOW(slab-alias-escape): admit_demand re-fetches the
    // state by payment.id before acting; its fail_payment path returns
    // without touching the ref again, and the drip scheduling that can
    // reach send_tu runs after the last read of the aliased payment.
    admit_demand(engine, state->payment);
    return;
  }
  const PairKey pair = unpack_pair(a);
  pair_state(pair).paths[b].drip_scheduled = false;
  try_send(engine, pair, b);
}

void RateRouterBase::admit_demand(Engine& engine, const pcn::Payment& payment) {
  // Checked lookup: the decision delay can outlive the payment, and a
  // resolved state may already be evicted (streaming retention contract).
  const auto* state = engine.find_payment_state(payment.id);
  if (state == nullptr || !state->active()) return;  // already timed out
  const PairKey pair = pair_of(engine, payment);
  PairState* ps = ensure_pair(engine, pair);
  if (ps == nullptr || ps->paths.empty()) {
    engine.fail_payment(payment.id, FailReason::kNoPath);
    return;
  }
  pair_of_payment_[payment.id] = pair;
  wake_pair(*ps);  // new demand: the pair can no longer sit out probe sweeps
  ps->demands.push_back(DemandEntry{payment.id, payment.value});
  for (std::size_t i = 0; i < ps->paths.size(); ++i) {
    schedule_drip(engine, pair, i);
  }
}

RateRouterBase::PairState* RateRouterBase::ensure_pair(Engine& engine,
                                                       const PairKey& pair) {
  const auto it = pairs_.find(pair);
  if (it != pairs_.end()) return &it->second;

  PairState state;
  state.key = pair;
  // SPLICER_LINT_ALLOW(hotpath-alloc): first-touch pair construction — runs
  // once per (src, dst) pair on its first demand, never per TU or per tick.
  const std::vector<graph::Path> pair_paths = compute_pair_paths(engine, pair);
  // SPLICER_LINT_ALLOW(hotpath-alloc): same first-touch path — sizes the
  // pair's path list once for the pair's lifetime.
  state.paths.reserve(pair_paths.size());
  for (const auto& p : pair_paths) {
    auto full = assemble_path(engine, pair.from, pair.to, p);
    if (!full || full->edges.empty()) continue;
    PathState path_state;
    // One pass per hop fetches the channel record once for both the
    // capacity constraint (eq. 18: the sustained rate on a channel cannot
    // exceed c_ab / Delta; start at most there) and the directed hop index.
    double bottleneck = std::numeric_limits<double>::infinity();
    // SPLICER_LINT_ALLOW(hotpath-alloc): first-touch pair construction —
    // the hop index is built once per path when the pair is created.
    path_state.hop_index.reserve(full->edges.size());
    for (std::size_t i = 0; i < full->edges.size(); ++i) {
      const ChannelId e = full->edges[i];
      const auto& ch = engine.network().channel(e);
      bottleneck = std::min(bottleneck, common::to_tokens(ch.capacity()));
      const auto d = ch.direction_from(full->nodes[i]);
      path_state.hop_index.push_back(
          static_cast<std::uint32_t>(2 * e + pcn::dir_index(d)));
    }
    const double capacity_rate = bottleneck / std::max(config_.delta_rtt_s, 1e-6);
    path_state.full_path = std::move(*full);
    path_state.rate_tps = std::min(config_.initial_rate_tps, capacity_rate);
    path_state.window = config_.initial_window;
    state.paths.push_back(std::move(path_state));
  }
  if (state.paths.empty()) return nullptr;
  PairState* stored = &pairs_.emplace(pair, std::move(state)).first->second;
  pair_index_.emplace(pack_pair(pair), stored);
  if (!full_recompute_) {
    // New pairs are born awake; keep the active list sorted by key.
    const auto pos = std::lower_bound(
        active_pairs_.begin(), active_pairs_.end(), pair,
        [](const PairState* p, const PairKey& key) { return p->key < key; });
    active_pairs_.insert(pos, stored);
  }
  return stored;
}

// SPLICER_LINT_ALLOW(hotpath-alloc): first-touch pair construction — path
// selection runs once per pair (ensure_pair miss), never per TU or per tick.
std::vector<graph::Path> RateRouterBase::compute_pair_paths(
    Engine& engine, const PairKey& pair) const {
  return graph::select_paths(engine.network().topology(), pair.from, pair.to,
                             config_.k_paths, config_.path_type);
}

void RateRouterBase::update_prices(Engine& engine) {
  ++tick_;
  auto& network = engine.network();
  // Fold the engine's dirty-channel feed (every fund move since the last
  // tick) into the active set. Fund moves without arrivals are themselves
  // identity updates today (imbalance 0 zeroes the urgency term before the
  // balance-dependent normaliser matters), but activating them keeps the
  // skip provably safe against any future balance-dependent price term.
  for (const ChannelId c : engine.dirty_channels()) activate_channel(c);
  engine.clear_dirty_channels();

  if (full_recompute_) {
    // Legacy sweep: eqs. (21)-(22) applied to every channel every tau.
    for (ChannelId c = 0; c < network.channel_count(); ++c) {
      (void)update_channel_price(engine, c);
    }
    return;
  }
  // Incremental sweep: only channels whose update can differ from the
  // identity — ever-touched channels still carrying price state plus this
  // window's dirty feed. Visit order does not matter (per-channel updates
  // are independent) but is deterministic anyway: first-activation order
  // is a function of the event stream. Channels whose post-update state is
  // exactly zero retire until re-activated.
  const std::size_t visited = active_channels_.size();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < visited; ++i) {
    const ChannelId c = active_channels_[i];
    if (update_channel_price(engine, c)) {
      active_channels_[kept++] = c;
    } else {
      channel_active_[c] = 0;
    }
  }
  // SPLICER_LINT_ALLOW(hotpath-alloc): compaction shrink — kept <= size(),
  // so this resize never reallocates.
  active_channels_.resize(kept);
  engine.metrics().price_updates_skipped += network.channel_count() - visited;
}

bool RateRouterBase::update_channel_price(Engine& engine, ChannelId c) {
  auto& network = engine.network();
  auto& p = prices_[c];
  const double capacity_tokens = common::to_tokens(network.channel(c).capacity());
  // Funds required to sustain the current arrival rates for one lock
  // duration Delta (n_a + n_b of eq. 21).
  const double scale = config_.delta_rtt_s / config_.tau_s;
  const double required =
      (p.arrived_tokens[0] + p.arrived_tokens[1]) * scale;
  const double cap = std::max(capacity_tokens, 1e-9);
  p.lambda = std::clamp(
      p.lambda + config_.kappa * (required - capacity_tokens) / cap, 0.0,
      config_.max_price);
  // Imbalance urgency: the same net drain matters in proportion to the
  // funds remaining on the side being drained - the quantity the balance
  // constraint (eq. 19) ultimately protects. The cap/3 ceiling engages
  // the brake while headroom still exists (a side holding most of the
  // channel is not "safe" if the drain rate empties it within seconds).
  const auto& ch = network.channel(c);
  const double imbalance_tokens = p.arrived_tokens[0] - p.arrived_tokens[1];
  const double floor_tokens = 0.01 * cap;
  const double draining_side = common::to_tokens(
      ch.available(imbalance_tokens >= 0 ? pcn::Direction::kForward
                                         : pcn::Direction::kBackward));
  const double normaliser =
      std::clamp(draining_side, floor_tokens, cap / 3.0);
  const double urgency = imbalance_tokens / normaliser;
  p.mu[0] = std::clamp(p.mu[0] + config_.eta * urgency, 0.0, config_.max_price);
  p.mu[1] = std::clamp(p.mu[1] - config_.eta * urgency, 0.0, config_.max_price);
  p.lambda *= config_.price_decay;
  p.mu[0] *= config_.price_decay;
  p.mu[1] *= config_.price_decay;
  p.arrived_tokens[0] = 0.0;
  p.arrived_tokens[1] = 0.0;
  // Mirror into the flat per-direction array read by probes and fee
  // schedules until the next tick (prices only change here). A write only
  // happens on a bitwise change, which stamps the memoization clock and
  // checks the sleeping pairs subscribed to this flat.
  for (int dir = 0; dir < 2; ++dir) {
    const std::size_t idx = 2 * c + dir;
    const double old_flat = price_flat_[idx];
    const double new_flat =
        channel_price(c, static_cast<pcn::Direction>(dir));
    if (new_flat == old_flat) continue;
    price_flat_[idx] = new_flat;
    if (full_recompute_) continue;
    flat_tick_[idx] = tick_;
    auto& subs = sleep_subs_[idx];
    if (subs.empty()) continue;
    // Pin-safety triggers. A min-pinned path stays pinned while its price
    // decays by at most price_decay per tick, so only a steeper drop needs
    // a wake (pure decay is covered by the precomputed wake tick; lambda
    // collapsing through its clamp, or an imbalance reversal, is not). A
    // max-pinned path stays pinned under any price decrease, so only an
    // increase needs a wake. The comparisons subsume every arrival-driven
    // (non-decay) effect, so no arrival hint is needed. The 1e-9 slack
    // absorbs last-bit rounding between this product and the decayed
    // price terms (a clamped-then-decayed lambda can land one ulp under
    // it); the wake-tick margin of 2% dwarfs the slack's accumulated
    // drift, so the pin bound still holds.
    const bool steep_drop =
        new_flat < old_flat * config_.price_decay * (1.0 - 1e-9);
    const bool rise = new_flat > old_flat;
    if (!steep_drop && !rise) continue;
    std::size_t keep = 0;
    for (const SleepSub& sub : subs) {
      PairState* ps = sub.pair;
      if (ps->awake || ps->sleep_epoch != sub.epoch) {
        continue;  // stale: drop
      }
      if ((sub.mask & kWakeOnDrop && steep_drop) ||
          (sub.mask & kWakeOnRise && rise)) {
        wake_pair(*ps);
        continue;  // consumed
      }
      subs[keep++] = sub;  // still armed for the other trigger
    }
    // SPLICER_LINT_ALLOW(hotpath-alloc): compaction shrink — keep <= size(),
    // so this resize never reallocates.
    subs.resize(keep);
  }
  return p.lambda != 0.0 || p.mu[0] != 0.0 || p.mu[1] != 0.0;
}

double RateRouterBase::channel_price(ChannelId channel, pcn::Direction d) const {
  const auto& p = prices_.at(channel);
  const auto di = pcn::dir_index(d);
  return std::max(0.0, 2.0 * p.lambda + p.mu[di] - p.mu[1 - di]);
}

double RateRouterBase::fee_rate(ChannelId channel, pcn::Direction d) const {
  return fee_from_price(channel_price(channel, d));
}

void RateRouterBase::probe_pairs(Engine& engine) {
  if (full_recompute_) {
    for (auto& [pair, state] : pairs_) probe_one_pair(engine, pair, state);
    return;
  }
  // Decay wake-ups due this tick. Each is re-validated against the fresh
  // flat prices: a pair whose probe is still a provable identity re-arms
  // under the same epoch (its subscriptions stay valid), the rest join
  // the sweep below. Pop order cannot reach the event stream — a woken
  // pair is probed by the key-ordered sweep like any other.
  while (!wake_heap_.empty() && wake_heap_.front().tick <= tick_) {
    std::pop_heap(wake_heap_.begin(), wake_heap_.end());
    const WakeEntry entry = wake_heap_.back();
    wake_heap_.pop_back();
    PairState* ps = entry.pair;
    if (ps->awake || ps->sleep_epoch != entry.epoch) continue;
    std::uint64_t rearm = 0;
    if (sleeping_probe_is_identity(*ps, rearm) && rearm != 0) {
      wake_heap_.push_back(WakeEntry{rearm, entry.key, entry.pair, entry.epoch});
      std::push_heap(wake_heap_.begin(), wake_heap_.end());
    } else {
      wake_pair(*ps);
    }
  }
  // Sweep the awake pairs in ascending key order — the full sweep's order
  // over the sorted map, restricted to pairs whose probe can differ from
  // an identity. Sleeping pairs have no demands and nothing outstanding,
  // so the full sweep would schedule no drips and count no probe messages
  // for them either: the drip events this sweep schedules are the
  // identical subsequence of the frozen event stream.
  const std::size_t swept = active_pairs_.size();
  if (swept > engine.metrics().active_pairs_peak) {
    engine.metrics().active_pairs_peak = swept;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < swept; ++i) {
    PairState* ps = active_pairs_[i];
    if (!ps->awake) continue;  // defensive: pairs only sleep inside probes
    probe_one_pair(engine, ps->key, *ps);
    if (ps->awake) active_pairs_[kept++] = ps;
  }
  // SPLICER_LINT_ALLOW(hotpath-alloc): compaction shrink — kept <= size(),
  // so this resize never reallocates.
  active_pairs_.resize(kept);
}

void RateRouterBase::probe_one_pair(Engine& engine, const PairKey& pair,
                                    PairState& state) {
  // Probe messages are only sent on paths that carry or await traffic,
  // but the rate state always integrates the latest prices.
  bool active = !state.demands.empty();
  for (const auto& path : state.paths) active = active || path.outstanding > 0;
  const double total_rate = std::max(total_pair_rate(state), 1e-9);
  // Sleep candidate: an inactive pair whose every path's rate update is an
  // identity pinned at a clamp bound (incremental mode only). Interior
  // fixed points don't qualify — nothing guarantees the next tick is also
  // an identity.
  bool sleepable = !full_recompute_ && !active;
  bool has_min_pinned = false;
  double min_pinned_price = 0.0;
  for (auto& path : state.paths) {
    // Probe: sum xi along the full path (eq. 25) — flat-array reads in
    // the same hop order, so the sum is bit-identical to recomputing
    // each channel price in place. Memoized: when no hop's flat changed
    // bitwise since the cached sum was taken, re-summing would return
    // the identical double, so the cache is reused outright.
    double price;
    bool reuse =
        !full_recompute_ && path.price_tick != 0 && !path.hop_index.empty();
    // Hint first: a path through a hot channel keeps failing on the same
    // hop, so the common "changed" case costs one load instead of a scan.
    if (reuse && flat_tick_[path.hop_index[path.memo_hint]] > path.price_tick) {
      reuse = false;
    }
    if (reuse) {
      for (std::size_t h = 0; h < path.hop_index.size(); ++h) {
        if (flat_tick_[path.hop_index[h]] > path.price_tick) {
          path.memo_hint = static_cast<std::uint32_t>(h);
          reuse = false;
          break;
        }
      }
    }
    if (reuse) {
      price = path.price;
      ++engine.metrics().probe_sums_reused;
    } else {
      price = 0.0;
      for (const std::uint32_t idx : path.hop_index) price += price_flat_[idx];
      price *= (1.0 + config_.t_fee);
      path.price = price;
    }
    path.price_tick = tick_;
    if (active) engine.counters().probe_messages += path.full_path.edges.size();
    // Eq. (26): r_p += alpha (U'(r) - rho_p) with U = log.
    const double gradient = 1.0 / total_rate - price;
    const double next_rate =
        std::clamp(path.rate_tps + config_.alpha * gradient,
                   config_.min_rate_tps, config_.max_rate_tps);
    if (sleepable) {
      if (next_rate != path.rate_tps) {
        sleepable = false;
      } else if (path.rate_tps == config_.min_rate_tps) {
        if (!has_min_pinned || price < min_pinned_price) {
          min_pinned_price = price;
        }
        has_min_pinned = true;
      } else if (path.rate_tps != config_.max_rate_tps) {
        sleepable = false;  // interior identity
      }
    }
    path.rate_tps = next_rate;
    if (!state.demands.empty()) {
      schedule_drip(engine, pair, static_cast<std::size_t>(&path - state.paths.data()));
    }
  }
  if (!sleepable) return;
  // Hysteresis: a pair that just woke keeps probing for a while before it
  // may sleep again, so oscillation at a wake-trigger threshold (or steady
  // periodic traffic) cannot thrash the subscription lists — wake_pair
  // doubles the delay whenever a sleep is cut short. Awake pairs are
  // always result-correct; this only decides who pays sleep bookkeeping.
  if (state.last_wake_tick != 0 &&
      tick_ < state.last_wake_tick + state.resleep_delay) {
    return;
  }
  std::uint64_t wake_tick = 0;
  if (has_min_pinned) {
    const std::uint64_t ticks = decay_ticks_until_unpin(min_pinned_price, total_rate);
    if (ticks == 0) return;  // margin too thin — stay awake, probe next tick
    wake_tick = tick_ + ticks;
  }
  // Sleep. Hop subscriptions wake the pair on any flat change that could
  // break a pin; a previous sleep's subscriptions (same epoch — the pair
  // was last woken by a decay re-check that kept it asleep, or never) are
  // still armed and are not re-appended.
  state.awake = false;
  state.last_sleep_tick = tick_;
  if (state.subs_epoch != state.sleep_epoch) {
    for (const auto& path : state.paths) {
      const std::uint8_t mask =
          path.rate_tps == config_.min_rate_tps ? kWakeOnDrop : kWakeOnRise;
      for (const std::uint32_t idx : path.hop_index) {
        sleep_subs_[idx].push_back(SleepSub{&state, state.sleep_epoch, mask});
      }
    }
    state.subs_epoch = state.sleep_epoch;
  }
  if (wake_tick != 0) {
    wake_heap_.push_back(
        WakeEntry{wake_tick, pack_pair(pair), &state, state.sleep_epoch});
    std::push_heap(wake_heap_.begin(), wake_heap_.end());
  }
}

void RateRouterBase::wake_pair(PairState& state) {
  if (state.awake) return;
  state.awake = true;
  state.last_wake_tick = tick_;
  // Adaptive hysteresis: a sleep cut short means the sleep/wake
  // bookkeeping outweighed the skipped probes — back off exponentially.
  // A sleep that lasted earns the base delay back.
  if (tick_ < state.last_sleep_tick + 4 * state.resleep_delay) {
    state.resleep_delay = std::min(2 * state.resleep_delay,
                                   kMaxResleepDelayTicks);
  } else {
    state.resleep_delay = kResleepDelayTicks;
  }
  // Invalidates the pair's outstanding subscriptions and wake-heap
  // entries; they are dropped lazily wherever they are next inspected.
  ++state.sleep_epoch;
  const auto pos = std::lower_bound(
      active_pairs_.begin(), active_pairs_.end(), state.key,
      [](const PairState* p, const PairKey& key) { return p->key < key; });
  active_pairs_.insert(pos, &state);
}

bool RateRouterBase::sleeping_probe_is_identity(const PairState& state,
                                                std::uint64_t& rearm_tick) const {
  rearm_tick = 0;
  // A sleeping pair is inactive by construction — demand admission and TU
  // retries wake it eagerly — so only the rate identities need
  // re-checking, with the exact probe expressions.
  const double total_rate = std::max(total_pair_rate(state), 1e-9);
  bool has_min_pinned = false;
  double min_pinned_price = 0.0;
  for (const auto& path : state.paths) {
    double price = 0.0;
    for (const std::uint32_t idx : path.hop_index) price += price_flat_[idx];
    price *= (1.0 + config_.t_fee);
    const double gradient = 1.0 / total_rate - price;
    const double next_rate =
        std::clamp(path.rate_tps + config_.alpha * gradient,
                   config_.min_rate_tps, config_.max_rate_tps);
    if (next_rate != path.rate_tps) return false;
    if (path.rate_tps == config_.min_rate_tps) {
      if (!has_min_pinned || price < min_pinned_price) min_pinned_price = price;
      has_min_pinned = true;
    } else if (path.rate_tps != config_.max_rate_tps) {
      return false;
    }
  }
  if (has_min_pinned) {
    const std::uint64_t ticks = decay_ticks_until_unpin(min_pinned_price, total_rate);
    if (ticks == 0) return false;
    rearm_tick = tick_ + ticks;
  }
  return true;
}

std::uint64_t RateRouterBase::decay_ticks_until_unpin(double price,
                                                      double total_rate) const {
  // A min-pinned path's update stays an identity while price >= theta =
  // U'(total) = 1/total (the gradient then points below the clamp floor).
  // Between wakes every hop flat shrinks by at most the decay factor per
  // tick — steeper drops and any rise wake the pair through its
  // subscriptions — so price after k skipped ticks is >= price * decay^k
  // up to ~1e-12 of accumulated rounding drift. The 2% margin dwarfs that
  // drift: sleeping n ticks with price * decay^n >= 1.02 * theta can never
  // skip a tick whose update was not an identity.
  const double decay = config_.price_decay;
  if (!(decay > 0.0) || !(decay < 1.0)) return 0;
  const double theta = 1.0 / total_rate;
  if (!(price > 0.0) || !(theta > 0.0)) return 0;
  const double margin = 1.02 * theta;
  if (!(price > margin)) return 0;
  const double ticks = std::floor(std::log(price / margin) / -std::log(decay));
  if (!(ticks >= 2.0)) return 0;  // not worth the heap churn
  return static_cast<std::uint64_t>(std::min(ticks, 1.0e9));
}

std::vector<RateRouterBase::PathDiagnostics> RateRouterBase::pair_diagnostics(
    NodeId from, NodeId to) const {
  std::vector<PathDiagnostics> out;
  const auto it = pairs_.find(PairKey{from, to});
  if (it == pairs_.end()) return out;
  for (const auto& path : it->second.paths) {
    // The probe price is recomputed from the flat mirror instead of read
    // from the memo cache: identical bits when the cache is fresh (it was
    // summed from these exact flats) and current for pairs the incremental
    // sweep is holding asleep.
    double price = 0.0;
    for (const std::uint32_t idx : path.hop_index) price += price_flat_[idx];
    price *= (1.0 + config_.t_fee);
    out.push_back(PathDiagnostics{path.rate_tps, path.window, price,
                                  path.outstanding, path.full_path.edges.size()});
  }
  return out;
}

double RateRouterBase::total_pair_rate(const PairState& pair) const {
  double total = 0.0;
  for (const auto& path : pair.paths) total += path.rate_tps;
  return total;
}

const std::vector<Amount>& RateRouterBase::fee_schedule(
    const pcn::Network& network, const PathState& path, Amount value) const {
  // hop_amounts[i] = value + downstream fees; fees follow eq. (24) with the
  // current fee rates, charged on the forwarded amount, plus each hop
  // channel's hostile-world policy fee (base + proportional). The
  // precomputed hop_index avoids re-deriving each hop's direction per TU;
  // the flat price array yields the same fee_rate doubles bit for bit, and
  // an all-default policy adds exact zero to both terms.
  auto& amounts = fee_scratch_;
  // SPLICER_LINT_ALLOW(hotpath-alloc): per-router scratch — grows to the
  // longest path's hop count once, then every resize is within capacity.
  amounts.resize(path.hop_index.size());
  Amount carry = value;
  for (std::size_t i = path.hop_index.size(); i-- > 0;) {
    amounts[i] = carry;
    if (i == 0) break;
    const std::uint32_t idx = path.hop_index[i];
    const pcn::ChannelPolicy& policy =
        network.channel(static_cast<ChannelId>(idx / 2)).policy();
    const double rate =
        fee_from_price(price_flat_[idx]) + policy.fee_proportional;
    const auto fee = static_cast<Amount>(
        std::llround(rate * static_cast<double>(carry)));
    carry += std::max<Amount>(fee, 0) + std::max<Amount>(policy.fee_base, 0);
  }
  return amounts;
}

void RateRouterBase::schedule_drip(Engine& engine, const PairKey& pair,
                                   std::size_t path_index) {
  auto& state = pair_state(pair);
  auto& path = state.paths[path_index];
  if (path.drip_scheduled) return;
  if (engine.past_horizon()) return;
  path.drip_scheduled = true;
  const double delay =
      std::max(0.0, path.earliest_send(config_.min_rate_tps) - engine.now());
  // Typed drip timer (one per TU send on the hot path): POD fields in the
  // scheduler pool instead of a heap-allocated closure per drip.
  engine.schedule_timer(delay, pack_pair(pair), path_index);
}

void RateRouterBase::try_send(Engine& engine, const PairKey& pair,
                              std::size_t path_index) {
  auto& state = pair_state(pair);
  auto& path = state.paths[path_index];
  if (engine.past_horizon()) return;
  if (engine.now() + 1e-12 < path.earliest_send(config_.min_rate_tps)) {
    schedule_drip(engine, pair, path_index);  // pacing not yet satisfied
    return;
  }
  if (path.outstanding >= static_cast<std::size_t>(
                              std::max(1.0, std::floor(path.window)))) {
    return;  // window-bound; re-armed on delivery/failure
  }
  // Pop exhausted/inactive demands. Evicted states (resolved payments whose
  // PaymentState is already gone under the retention contract) count as
  // inactive, exactly like a still-resident resolved state.
  const PaymentState* front_state = nullptr;
  while (!state.demands.empty()) {
    const auto& front = state.demands.front();
    front_state = engine.find_payment_state(front.payment);
    if (front.remaining <= 0 || front_state == nullptr ||
        !front_state->active()) {
      state.demands.pop_front();
      continue;
    }
    break;
  }
  if (state.demands.empty()) return;
  // Hostile-world dispatch gate: the pair's path set is computed once, so a
  // mutation obstructing this path (closed channel, offline node, timelock
  // over budget) is discovered here, at send time, against current network
  // state — hold and retry like a funds-short admit; a reopened channel or
  // recovered node makes the path usable again with no path recompute.
  if (path_obstruction(engine.network(), path.full_path,
                       engine.config().hostile.timelock_budget)) {
    path.hold_until = std::max(path.hold_until, engine.now() + 0.05);
    schedule_drip(engine, pair, path_index);
    return;
  }
  auto& entry = state.demands.front();
  const auto& payment_state = *front_state;

  // TU sizing: Min-TU <= |d_i| <= Max-TU, avoiding a sub-Min-TU crumb.
  Amount tu_value;
  if (entry.remaining <= config_.max_tu) {
    tu_value = entry.remaining;
  } else if (entry.remaining - config_.max_tu < config_.min_tu) {
    tu_value = entry.remaining - config_.min_tu;
  } else {
    tu_value = config_.max_tu;
  }
  tu_value = std::max<Amount>(tu_value, 1);

  const auto& hop_amounts = fee_schedule(engine.network(), path, tu_value);
  if (!admit_tu(engine, path.full_path, hop_amounts)) {
    // Downstream funds are short (F_ab < |d_i|): hold at the source and
    // retry shortly instead of locking a doomed HTLC chain.
    path.hold_until = std::max(path.hold_until, engine.now() + 0.05);
    schedule_drip(engine, pair, path_index);
    return;
  }

  TransactionUnit tu;
  tu.payment = entry.payment;
  tu.value = tu_value;
  tu.path = path.full_path;
  tu.hop_amounts = hop_amounts;  // the TU owns its schedule; scratch is reused
  tu.deadline = payment_state.payment.deadline;
  tu.path_index = path_index;
  entry.remaining -= tu_value;
  ++path.outstanding;
  engine.send_tu(std::move(tu));

  path.last_send = engine.now();
  path.last_tu_tokens = common::to_tokens(tu_value);
  schedule_drip(engine, pair, path_index);
}

void RateRouterBase::on_tu_delivered(Engine& engine, const TransactionUnit& tu) {
  const auto it = pair_of_payment_.find(tu.payment);
  if (it == pair_of_payment_.end()) return;
  auto& state = pair_state(it->second);
  auto& path = state.paths[tu.path_index];
  if (path.outstanding > 0) --path.outstanding;
  // Eq. (28): window grows by gamma / sum of the pair's windows.
  double window_sum = 0.0;
  for (const auto& p : state.paths) window_sum += p.window;
  path.window = std::clamp(path.window + config_.gamma / std::max(window_sum, 1e-9),
                           config_.min_window, config_.max_window);
  schedule_drip(engine, it->second, tu.path_index);
}

void RateRouterBase::on_tu_failed(Engine& engine, const TransactionUnit& tu,
                                  FailReason reason) {
  const auto it = pair_of_payment_.find(tu.payment);
  if (it == pair_of_payment_.end()) return;
  const PairKey pair = it->second;
  auto& state = pair_state(pair);
  auto& path = state.paths[tu.path_index];
  if (path.outstanding > 0) --path.outstanding;
  if (reason == FailReason::kMarkedCongested ||
      reason == FailReason::kQueueOverflow) {
    // Eq. (27): the aborted TU shrinks the window by beta.
    path.window = std::clamp(path.window - config_.beta, config_.min_window,
                             config_.max_window);
  }
  // Unserved value is retried (front of the queue) while the deadline holds.
  const auto* payment_state = engine.find_payment_state(tu.payment);
  if (payment_state != nullptr && payment_state->active() &&
      engine.now() < payment_state->payment.deadline) {
    wake_pair(state);  // the retried demand re-activates the pair
    state.demands.push_front(DemandEntry{tu.payment, tu.value});
  }
  for (std::size_t i = 0; i < state.paths.size(); ++i) {
    schedule_drip(engine, pair, i);
  }
}

void RateRouterBase::on_payment_resolved(Engine& engine, PaymentId payment) {
  (void)engine;
  // Quiescent: no TU of this payment can ever reach on_tu_delivered /
  // on_tu_failed again (both tolerate the missing entry regardless), so the
  // pair lookup entry is dead weight from here on. The pair itself stays —
  // its paths, rates and windows are shared by every payment of the pair.
  pair_of_payment_.erase(payment);
}

void RateRouterBase::on_tu_forwarded(Engine& engine, const TransactionUnit& tu,
                                     ChannelId channel, pcn::Direction direction) {
  (void)engine;
  // m_a accumulation for eq. (22): value arriving into this direction.
  prices_.at(channel).arrived_tokens[pcn::dir_index(direction)] +=
      common::to_tokens(tu.hop_amounts[tu.next_hop]);
  activate_channel(channel);  // arrivals make the next price update non-trivial
}

}  // namespace splicer::routing
