#include "routing/rate_protocol.h"

#include <algorithm>
#include <cmath>

namespace splicer::routing {

void RateRouterBase::on_start(Engine& engine) {
  prices_.assign(engine.network().channel_count(), ChannelPrices{});
  // channel_price() of the zero-initialised prices is 0 for every
  // direction, so the flat mirror starts at zero too.
  price_flat_.assign(2 * engine.network().channel_count(), 0.0);
  // workload_horizon() is queried per tick: for streaming sources it grows
  // as payments are pulled, so price updates keep running until the tail
  // payments' deadlines have passed (replay sources report it exactly from
  // the start, matching the old materialised-vector scan).
  engine.scheduler().every(config_.tau_s, [this, &engine] {
    if (engine.past_horizon()) return false;
    update_prices(engine);
    probe_pairs(engine);
    on_tick(engine);
    return true;
  });
}

void RateRouterBase::on_payment(Engine& engine, const pcn::Payment& payment) {
  const double delay = decision_delay(engine, payment);
  if (delay <= 0.0) {
    admit_demand(engine, payment);
  } else {
    // Typed deferred admit: the engine's PaymentState holds the payment, so
    // the timer only needs the id — no per-payment closure allocation.
    engine.schedule_timer(delay, payment.id, kAdmitTimer);
  }
}

void RateRouterBase::on_timer(Engine& engine, std::uint64_t a, std::uint64_t b) {
  if (b == kAdmitTimer) {
    // Checked lookup: the decision delay can outlive the payment, and a
    // resolved state may already be evicted (streaming retention contract).
    const auto* state = engine.find_payment_state(a);
    if (state == nullptr || !state->active()) return;  // already timed out
    admit_demand(engine, state->payment);
    return;
  }
  const PairKey pair = unpack_pair(a);
  pair_state(pair).paths[b].drip_scheduled = false;
  try_send(engine, pair, b);
}

void RateRouterBase::admit_demand(Engine& engine, const pcn::Payment& payment) {
  // Checked lookup: the decision delay can outlive the payment, and a
  // resolved state may already be evicted (streaming retention contract).
  const auto* state = engine.find_payment_state(payment.id);
  if (state == nullptr || !state->active()) return;  // already timed out
  const PairKey pair = pair_of(engine, payment);
  PairState* ps = ensure_pair(engine, pair);
  if (ps == nullptr || ps->paths.empty()) {
    engine.fail_payment(payment.id, FailReason::kNoPath);
    return;
  }
  pair_of_payment_[payment.id] = pair;
  ps->demands.push_back(DemandEntry{payment.id, payment.value});
  for (std::size_t i = 0; i < ps->paths.size(); ++i) {
    schedule_drip(engine, pair, i);
  }
}

RateRouterBase::PairState* RateRouterBase::ensure_pair(Engine& engine,
                                                       const PairKey& pair) {
  const auto it = pairs_.find(pair);
  if (it != pairs_.end()) return &it->second;

  PairState state;
  const std::vector<graph::Path> pair_paths = compute_pair_paths(engine, pair);
  state.paths.reserve(pair_paths.size());
  for (const auto& p : pair_paths) {
    auto full = assemble_path(engine, pair.from, pair.to, p);
    if (!full || full->edges.empty()) continue;
    PathState path_state;
    // Capacity constraint (eq. 18): the sustained rate on a channel cannot
    // exceed c_ab / Delta; start at most there.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (const ChannelId e : full->edges) {
      bottleneck = std::min(
          bottleneck, common::to_tokens(engine.network().channel(e).capacity()));
    }
    const double capacity_rate = bottleneck / std::max(config_.delta_rtt_s, 1e-6);
    path_state.hop_index.reserve(full->edges.size());
    for (std::size_t i = 0; i < full->edges.size(); ++i) {
      const ChannelId e = full->edges[i];
      const auto d = engine.network().channel(e).direction_from(full->nodes[i]);
      path_state.hop_index.push_back(
          static_cast<std::uint32_t>(2 * e + pcn::dir_index(d)));
    }
    path_state.full_path = std::move(*full);
    path_state.rate_tps = std::min(config_.initial_rate_tps, capacity_rate);
    path_state.window = config_.initial_window;
    state.paths.push_back(std::move(path_state));
  }
  if (state.paths.empty()) return nullptr;
  PairState* stored = &pairs_.emplace(pair, std::move(state)).first->second;
  pair_index_.emplace(pack_pair(pair), stored);
  return stored;
}

std::vector<graph::Path> RateRouterBase::compute_pair_paths(
    Engine& engine, const PairKey& pair) const {
  return graph::select_paths(engine.network().topology(), pair.from, pair.to,
                             config_.k_paths, config_.path_type);
}

void RateRouterBase::update_prices(Engine& engine) {
  // Eqs. (21)-(22), applied every tau to every channel.
  auto& network = engine.network();
  for (ChannelId c = 0; c < network.channel_count(); ++c) {
    auto& p = prices_[c];
    const double capacity_tokens = common::to_tokens(network.channel(c).capacity());
    // Funds required to sustain the current arrival rates for one lock
    // duration Delta (n_a + n_b of eq. 21).
    const double scale = config_.delta_rtt_s / config_.tau_s;
    const double required =
        (p.arrived_tokens[0] + p.arrived_tokens[1]) * scale;
    const double cap = std::max(capacity_tokens, 1e-9);
    p.lambda = std::clamp(
        p.lambda + config_.kappa * (required - capacity_tokens) / cap, 0.0,
        config_.max_price);
    // Imbalance urgency: the same net drain matters in proportion to the
    // funds remaining on the side being drained - the quantity the balance
    // constraint (eq. 19) ultimately protects. The cap/3 ceiling engages
    // the brake while headroom still exists (a side holding most of the
    // channel is not "safe" if the drain rate empties it within seconds).
    const auto& ch = network.channel(c);
    const double imbalance_tokens = p.arrived_tokens[0] - p.arrived_tokens[1];
    const double floor_tokens = 0.01 * cap;
    const double draining_side = common::to_tokens(
        ch.available(imbalance_tokens >= 0 ? pcn::Direction::kForward
                                           : pcn::Direction::kBackward));
    const double normaliser =
        std::clamp(draining_side, floor_tokens, cap / 3.0);
    const double urgency = imbalance_tokens / normaliser;
    p.mu[0] = std::clamp(p.mu[0] + config_.eta * urgency, 0.0, config_.max_price);
    p.mu[1] = std::clamp(p.mu[1] - config_.eta * urgency, 0.0, config_.max_price);
    p.lambda *= config_.price_decay;
    p.mu[0] *= config_.price_decay;
    p.mu[1] *= config_.price_decay;
    p.arrived_tokens[0] = 0.0;
    p.arrived_tokens[1] = 0.0;
    // Mirror into the flat per-direction array read by probes and fee
    // schedules until the next tick (prices only change here).
    price_flat_[2 * c] = channel_price(c, pcn::Direction::kForward);
    price_flat_[2 * c + 1] = channel_price(c, pcn::Direction::kBackward);
  }
}

double RateRouterBase::channel_price(ChannelId channel, pcn::Direction d) const {
  const auto& p = prices_.at(channel);
  const auto di = pcn::dir_index(d);
  return std::max(0.0, 2.0 * p.lambda + p.mu[di] - p.mu[1 - di]);
}

double RateRouterBase::fee_rate(ChannelId channel, pcn::Direction d) const {
  return fee_from_price(channel_price(channel, d));
}

void RateRouterBase::probe_pairs(Engine& engine) {
  for (auto& [pair, state] : pairs_) {
    // Probe messages are only sent on paths that carry or await traffic,
    // but the rate state always integrates the latest prices.
    bool active = !state.demands.empty();
    for (const auto& path : state.paths) active = active || path.outstanding > 0;
    const double total_rate = std::max(total_pair_rate(state), 1e-9);
    for (auto& path : state.paths) {
      // Probe: sum xi along the full path (eq. 25) — flat-array reads in
      // the same hop order, so the sum is bit-identical to recomputing
      // each channel price in place.
      double price = 0.0;
      for (const std::uint32_t idx : path.hop_index) price += price_flat_[idx];
      price *= (1.0 + config_.t_fee);
      path.price = price;
      if (active) engine.counters().probe_messages += path.full_path.edges.size();
      // Eq. (26): r_p += alpha (U'(r) - rho_p) with U = log.
      const double gradient = 1.0 / total_rate - price;
      path.rate_tps = std::clamp(path.rate_tps + config_.alpha * gradient,
                                 config_.min_rate_tps, config_.max_rate_tps);
      if (!state.demands.empty()) {
        schedule_drip(engine, pair, static_cast<std::size_t>(&path - state.paths.data()));
      }
    }
  }
}

std::vector<RateRouterBase::PathDiagnostics> RateRouterBase::pair_diagnostics(
    NodeId from, NodeId to) const {
  std::vector<PathDiagnostics> out;
  const auto it = pairs_.find(PairKey{from, to});
  if (it == pairs_.end()) return out;
  for (const auto& path : it->second.paths) {
    out.push_back(PathDiagnostics{path.rate_tps, path.window, path.price,
                                  path.outstanding, path.full_path.edges.size()});
  }
  return out;
}

double RateRouterBase::total_pair_rate(const PairState& pair) const {
  double total = 0.0;
  for (const auto& path : pair.paths) total += path.rate_tps;
  return total;
}

std::vector<Amount> RateRouterBase::fee_schedule(const PathState& path,
                                                 Amount value) const {
  // hop_amounts[i] = value + downstream fees; fees follow eq. (24) with the
  // current fee rates, charged on the forwarded amount. The precomputed
  // hop_index avoids re-deriving each hop's direction per TU; the flat
  // price array yields the same fee_rate doubles bit for bit.
  std::vector<Amount> amounts(path.hop_index.size());
  Amount carry = value;
  for (std::size_t i = path.hop_index.size(); i-- > 0;) {
    amounts[i] = carry;
    if (i == 0) break;
    const double rate = fee_from_price(price_flat_[path.hop_index[i]]);
    const auto fee = static_cast<Amount>(
        std::llround(rate * static_cast<double>(carry)));
    carry += std::max<Amount>(fee, 0);
  }
  return amounts;
}

void RateRouterBase::schedule_drip(Engine& engine, const PairKey& pair,
                                   std::size_t path_index) {
  auto& state = pair_state(pair);
  auto& path = state.paths[path_index];
  if (path.drip_scheduled) return;
  if (engine.past_horizon()) return;
  path.drip_scheduled = true;
  const double delay =
      std::max(0.0, path.earliest_send(config_.min_rate_tps) - engine.now());
  // Typed drip timer (one per TU send on the hot path): POD fields in the
  // scheduler pool instead of a heap-allocated closure per drip.
  engine.schedule_timer(delay, pack_pair(pair), path_index);
}

void RateRouterBase::try_send(Engine& engine, const PairKey& pair,
                              std::size_t path_index) {
  auto& state = pair_state(pair);
  auto& path = state.paths[path_index];
  if (engine.past_horizon()) return;
  if (engine.now() + 1e-12 < path.earliest_send(config_.min_rate_tps)) {
    schedule_drip(engine, pair, path_index);  // pacing not yet satisfied
    return;
  }
  if (path.outstanding >= static_cast<std::size_t>(
                              std::max(1.0, std::floor(path.window)))) {
    return;  // window-bound; re-armed on delivery/failure
  }
  // Pop exhausted/inactive demands. Evicted states (resolved payments whose
  // PaymentState is already gone under the retention contract) count as
  // inactive, exactly like a still-resident resolved state.
  const PaymentState* front_state = nullptr;
  while (!state.demands.empty()) {
    const auto& front = state.demands.front();
    front_state = engine.find_payment_state(front.payment);
    if (front.remaining <= 0 || front_state == nullptr ||
        !front_state->active()) {
      state.demands.pop_front();
      continue;
    }
    break;
  }
  if (state.demands.empty()) return;
  auto& entry = state.demands.front();
  const auto& payment_state = *front_state;

  // TU sizing: Min-TU <= |d_i| <= Max-TU, avoiding a sub-Min-TU crumb.
  Amount tu_value;
  if (entry.remaining <= config_.max_tu) {
    tu_value = entry.remaining;
  } else if (entry.remaining - config_.max_tu < config_.min_tu) {
    tu_value = entry.remaining - config_.min_tu;
  } else {
    tu_value = config_.max_tu;
  }
  tu_value = std::max<Amount>(tu_value, 1);

  auto hop_amounts = fee_schedule(path, tu_value);
  if (!admit_tu(engine, path.full_path, hop_amounts)) {
    // Downstream funds are short (F_ab < |d_i|): hold at the source and
    // retry shortly instead of locking a doomed HTLC chain.
    path.hold_until = std::max(path.hold_until, engine.now() + 0.05);
    schedule_drip(engine, pair, path_index);
    return;
  }

  TransactionUnit tu;
  tu.payment = entry.payment;
  tu.value = tu_value;
  tu.path = path.full_path;
  tu.hop_amounts = std::move(hop_amounts);
  tu.deadline = payment_state.payment.deadline;
  tu.path_index = path_index;
  entry.remaining -= tu_value;
  ++path.outstanding;
  engine.send_tu(std::move(tu));

  path.last_send = engine.now();
  path.last_tu_tokens = common::to_tokens(tu_value);
  schedule_drip(engine, pair, path_index);
}

void RateRouterBase::on_tu_delivered(Engine& engine, const TransactionUnit& tu) {
  const auto it = pair_of_payment_.find(tu.payment);
  if (it == pair_of_payment_.end()) return;
  auto& state = pair_state(it->second);
  auto& path = state.paths[tu.path_index];
  if (path.outstanding > 0) --path.outstanding;
  // Eq. (28): window grows by gamma / sum of the pair's windows.
  double window_sum = 0.0;
  for (const auto& p : state.paths) window_sum += p.window;
  path.window = std::clamp(path.window + config_.gamma / std::max(window_sum, 1e-9),
                           config_.min_window, config_.max_window);
  schedule_drip(engine, it->second, tu.path_index);
}

void RateRouterBase::on_tu_failed(Engine& engine, const TransactionUnit& tu,
                                  FailReason reason) {
  const auto it = pair_of_payment_.find(tu.payment);
  if (it == pair_of_payment_.end()) return;
  const PairKey pair = it->second;
  auto& state = pair_state(pair);
  auto& path = state.paths[tu.path_index];
  if (path.outstanding > 0) --path.outstanding;
  if (reason == FailReason::kMarkedCongested ||
      reason == FailReason::kQueueOverflow) {
    // Eq. (27): the aborted TU shrinks the window by beta.
    path.window = std::clamp(path.window - config_.beta, config_.min_window,
                             config_.max_window);
  }
  // Unserved value is retried (front of the queue) while the deadline holds.
  const auto* payment_state = engine.find_payment_state(tu.payment);
  if (payment_state != nullptr && payment_state->active() &&
      engine.now() < payment_state->payment.deadline) {
    state.demands.push_front(DemandEntry{tu.payment, tu.value});
  }
  for (std::size_t i = 0; i < state.paths.size(); ++i) {
    schedule_drip(engine, pair, i);
  }
}

void RateRouterBase::on_payment_resolved(Engine& engine, PaymentId payment) {
  (void)engine;
  // Quiescent: no TU of this payment can ever reach on_tu_delivered /
  // on_tu_failed again (both tolerate the missing entry regardless), so the
  // pair lookup entry is dead weight from here on. The pair itself stays —
  // its paths, rates and windows are shared by every payment of the pair.
  pair_of_payment_.erase(payment);
}

void RateRouterBase::on_tu_forwarded(Engine& engine, const TransactionUnit& tu,
                                     ChannelId channel, pcn::Direction direction) {
  (void)engine;
  // m_a accumulation for eq. (22): value arriving into this direction.
  prices_.at(channel).arrived_tokens[pcn::dir_index(direction)] +=
      common::to_tokens(tu.hop_amounts[tu.next_hop]);
}

}  // namespace splicer::routing
