#pragma once

// Hostile-world path admission shared by every router.
//
// All six routing schemes must observe node liveness, channel churn and
// per-path timelock budgets when selecting paths; this header is the one
// predicate they share, so the admission rule can never diverge between
// schemes. The checks are pure reads over current network state — in a
// benign run (nothing closed, everything online, unit timelocks against an
// unbounded budget) every path passes and no RNG or event state is touched.

#include <cstdint>
#include <optional>

#include "graph/graph.h"
#include "pcn/network.h"
#include "routing/router.h"

namespace splicer::routing {

/// Sum of per-edge timelock costs along `path` (each edge defaults to 1).
[[nodiscard]] inline std::uint64_t path_timelock_cost(
    const pcn::Network& network, const graph::Path& path) {
  std::uint64_t cost = 0;
  for (const ChannelId edge : path.edges) {
    cost += network.channel(edge).policy().timelock;
  }
  return cost;
}

/// First obstruction that makes `path` inadmissible right now, or
/// std::nullopt when the path is usable: a closed channel (kChannelClosed),
/// an offline endpoint (kNodeOffline), or a total timelock cost above
/// `timelock_budget` (kNoPath — the path exists but is too deep). Checked
/// hop by hop from the source so the reported reason is the first one a
/// forwarding attempt would hit.
[[nodiscard]] inline std::optional<FailReason> path_obstruction(
    const pcn::Network& network, const graph::Path& path,
    std::uint32_t timelock_budget) {
  std::uint64_t timelock = 0;
  for (const ChannelId edge : path.edges) {
    const pcn::Channel& ch = network.channel(edge);
    if (ch.is_closed()) return FailReason::kChannelClosed;
    if (!network.node_online(ch.node_a()) || !network.node_online(ch.node_b())) {
      return FailReason::kNodeOffline;
    }
    timelock += ch.policy().timelock;
  }
  if (timelock > timelock_budget) return FailReason::kNoPath;
  return std::nullopt;
}

}  // namespace splicer::routing
