#include "routing/spider_router.h"

#include <algorithm>

namespace splicer::routing {

SpiderRouter::SpiderRouter(Config config)
    : RateRouterBase(config.protocol), config_(config) {}

RateRouterBase::PairKey SpiderRouter::pair_of(const Engine& engine,
                                              const pcn::Payment& payment) const {
  (void)engine;
  return PairKey{payment.sender, payment.receiver};
}

std::optional<graph::Path> SpiderRouter::assemble_path(
    Engine& engine, NodeId from, NodeId to, const graph::Path& pair_path) const {
  (void)engine;
  (void)from;
  (void)to;
  if (pair_path.edges.empty()) return std::nullopt;
  return pair_path;
}

double SpiderRouter::decision_delay(Engine& engine, const pcn::Payment& payment) {
  // Each sender is a single machine: route computations serialise, and each
  // takes time growing with the topology it must search.
  const double cost =
      config_.compute_base_s +
      config_.compute_per_node_s *
          static_cast<double>(engine.network().node_count());
  auto& busy_until = sender_busy_until_[payment.sender];
  const double start = std::max(engine.now(), busy_until);
  busy_until = start + cost;
  return busy_until - engine.now();
}

}  // namespace splicer::routing
