#pragma once

// Shared scenario preparation + scheme execution for the evaluation
// harness. One Scenario fixes topology, channel funds, placement and the
// payment workload; every scheme then runs against identical conditions
// (the paper's Figs. 7/8 compare the five schemes on the same workloads).

#include <cstdint>
#include <memory>
#include <vector>

#include "pcn/network.h"
#include "pcn/traffic_source.h"
#include "pcn/workload.h"
#include "placement/topology_transform.h"
#include "routing/engine.h"
#include "routing/rate_protocol.h"

namespace splicer::routing {

enum class Scheme : std::uint8_t {
  kSplicer,
  kSpider,
  kFlash,
  kLandmark,
  kA2l,
  kShortestPath,
};

[[nodiscard]] const char* to_string(Scheme scheme) noexcept;

/// The five schemes compared in Fig. 7 / Fig. 8.
[[nodiscard]] std::vector<Scheme> comparison_schemes();

struct TopologyConfig {
  std::size_t nodes = 100;       // paper: 100 (small) / 3000 (large)
  std::size_t ws_degree = 8;     // Watts-Strogatz ring degree
  double ws_beta = 0.15;         // rewiring probability
  double fund_scale = 1.0;       // Fig. 7(a)/8(a) channel-size sweep
  bool scale_free = false;       // preferential attachment instead of WS
};

struct PlacementSetup {
  std::size_t candidate_count = 10;
  double omega = 0.1;
  /// Exhaustive (exact) placement when candidate_count permits; otherwise
  /// the supermodular double greedy (paper Alg. 1).
  bool prefer_exact = true;
};

struct ScenarioConfig {
  TopologyConfig topology;
  PlacementSetup placement;
  pcn::WorkloadConfig workload;
  std::uint64_t seed = 42;
};

/// Prepared shared state for one evaluation point.
struct Scenario {
  pcn::Network raw;                          // source-routing substrate
  placement::TransformResult multi_star;     // Splicer substrate
  placement::TransformResult single_star;    // A2L substrate
  placement::PlacementInstance instance;
  placement::PlacementPlan plan;
  /// Materialised workload; empty when `workload.streaming` (every engine
  /// run then pulls a fresh deterministic stream via make_source()).
  std::vector<pcn::Payment> payments;
  std::vector<pcn::NodeId> clients;
  pcn::WorkloadConfig workload;
  common::Rng workload_rng;  // RNG snapshot the workload derives from
  /// Trace rows dropped while materialising a (non-streaming) trace
  /// workload: malformed lines, unmappable endpoints in strict mode,
  /// single-client self-pays. 0 for every other workload kind; for
  /// streaming trace replays query TraceSource::rows_skipped() on the
  /// drained source instead (the CLI does).
  std::size_t trace_rows_skipped = 0;

  /// Fresh per-run traffic source: a non-owning replay of `payments` when
  /// materialised, otherwise a new stream off the stored RNG snapshot.
  /// Every scheme run over one Scenario sees the identical payment
  /// sequence (the paper's shared-workload comparison setup); the Scenario
  /// must outlive the returned source.
  [[nodiscard]] std::unique_ptr<pcn::TrafficSource> make_source() const;
};

[[nodiscard]] Scenario prepare_scenario(const ScenarioConfig& config);

struct SchemeConfig {
  EngineConfig engine;
  RateProtocolConfig protocol;
};

/// Runs `scheme` over the scenario (fresh network copy each run).
[[nodiscard]] EngineMetrics run_scheme(const Scenario& scenario, Scheme scheme,
                                       SchemeConfig config = {});

}  // namespace splicer::routing
