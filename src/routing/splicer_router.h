#pragma once

// Splicer's distributed routing decision protocol (paper Alg. 2) bound to
// the multi-star topology: every client payment is admitted at the client's
// smooth node, split into TUs, and routed over the hub trunk mesh at
// price-controlled rates. Hub pairs synchronise global state every epoch
// (paper Fig. 5); the sync traffic is accounted in the message counters
// (it is part of the Fig. 9(e)/(f) overhead axis).

#include <map>
#include <utility>
#include <vector>

#include "routing/rate_protocol.h"

namespace splicer::routing {

class SplicerRouter final : public RateRouterBase {
 public:
  struct Config {
    RateProtocolConfig protocol;
    double epoch_s = 1.0;  // hub state-synchronisation epoch
  };

  /// `hub_of[v]` = managing hub for every node (hubs map to themselves);
  /// `hubs` = the placed smooth nodes. Both come from
  /// placement::TransformResult.
  SplicerRouter(std::vector<NodeId> hub_of, std::vector<NodeId> hubs);
  SplicerRouter(std::vector<NodeId> hub_of, std::vector<NodeId> hubs,
                Config config);

  [[nodiscard]] std::string name() const override { return "Splicer"; }

  void on_start(Engine& engine) override;

 protected:
  /// Rate/window/demand state is per client pair (the s,e of eq. 16)...
  [[nodiscard]] PairKey pair_of(const Engine& engine,
                                const pcn::Payment& payment) const override;
  /// ...while the k-path sets live on the hub trunk mesh and are cached
  /// per hub pair (every client pair on the same hubs shares them).
  [[nodiscard]] std::vector<graph::Path> compute_pair_paths(
      Engine& engine, const PairKey& pair) const override;
  [[nodiscard]] std::optional<graph::Path> assemble_path(
      Engine& engine, NodeId from, NodeId to,
      const graph::Path& pair_path) const override;
  /// Smooth nodes see the epoch-synchronised global channel state, so they
  /// hold TUs at the source while any downstream hop lacks funds
  /// (Alg. 2 line 10) instead of locking a doomed HTLC chain.
  [[nodiscard]] bool admit_tu(Engine& engine, const graph::Path& path,
                              const std::vector<Amount>& hop_amounts) override;

 private:
  std::vector<NodeId> hub_of_;
  std::vector<NodeId> hubs_;
  Config config_;
  mutable std::map<std::pair<NodeId, NodeId>, std::vector<graph::Path>>
      hub_path_cache_;
};

}  // namespace splicer::routing
