#pragma once

// Shard-parallel engine coordinator: N full Engine instances (each owning a
// private copy of the network, its own Scheduler, Router, RNG stream and
// metrics block) advance in lock-step between settlement-epoch barriers on
// a pinned thread pool. Shards share no mutable state; everything that
// crosses a shard boundary travels through single-writer mailbox lanes
// drained while all workers are parked at the barrier:
//
//   * POD acks (settle/refund ladder steps for hops whose channel lives on
//     another shard) ride the sim::ShardedScheduler lanes directly;
//   * rich messages — TU handoffs when a payment's next hop enters another
//     shard's channel, and TuResults carrying a foreign TU's outcome back
//     to its home shard — ride typed lanes owned by this coordinator and
//     are delivered via Engine::deliver_handoff / deliver_result.
//
// Determinism contract (CI-gated):
//   * shards == 1 is bit-identical to the sequential Engine::run(): one
//     engine, the real traffic source, no coordinator binding, and the
//     barrier loop's windows never reorder a single-scheduler stream.
//   * For fixed N, runs are bit-identical to each other regardless of the
//     worker count: mail is drained in fixed (destination, source,
//     emission) order and shard RNG seeds derive from the base seed alone.
//
// What sharding changes (documented quantisation, same spirit as the
// batched-settlement grid): cross-shard messages are delivered at the next
// barrier (clamped to it), and routers see only their shard's copy of the
// network — remote channels hold their initial balances, so global-view
// heuristics (Splicer's source gating) act on a stale view of foreign
// funds. Both effects are deterministic.

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "pcn/network.h"
#include "pcn/traffic_source.h"
#include "routing/engine.h"
#include "routing/experiment.h"
#include "routing/router.h"
#include "sim/sharded_scheduler.h"

namespace splicer::routing {

/// Static ownership map: every node and every channel belongs to exactly
/// one shard. A channel's shard owns both directions — rate buckets,
/// queues, funds and locks of that channel mutate only on its owner.
struct ShardPlan {
  std::uint32_t shards = 1;
  std::vector<std::uint32_t> node_shard;     // size = node_count
  std::vector<std::uint32_t> channel_shard;  // size = channel_count

  /// Everything on shard 0 (the 1-shard parity layout).
  [[nodiscard]] static ShardPlan single(const pcn::Network& network);

  /// Contiguous node-id ranges (node v -> v * shards / n); a channel
  /// follows its lower-id endpoint. The default for raw topologies, where
  /// Watts-Strogatz locality makes id ranges a reasonable edge cut.
  [[nodiscard]] static ShardPlan contiguous(const pcn::Network& network,
                                            std::uint32_t shards);

  /// Hub-affinity layout for star/multi-star substrates: hubs[i] lands on
  /// shard i % shards, every node follows its managing hub, and a channel
  /// follows its hub endpoint (trunk channels between two hubs follow the
  /// lower-id hub). Keeps each client's spoke local to the shard whose
  /// router admits its payments, so only trunk hops cross shards.
  [[nodiscard]] static ShardPlan hub_affinity(
      const pcn::Network& network, const std::vector<NodeId>& hub_of,
      const std::vector<NodeId>& hubs, std::uint32_t shards);

  /// Throws std::invalid_argument unless the plan covers `network` exactly
  /// and every assignment is < shards.
  void validate(const pcn::Network& network) const;
};

struct ShardedEngineConfig {
  std::uint32_t shards = 1;
  /// Barrier grid period in seconds. 0 = auto: the engine's
  /// settlement_epoch_s when batched settlement is on (the two
  /// quantisation grids then coincide), else 10 ms.
  double barrier_period_s = 0.0;
  /// Worker threads. 0 = auto: min(shards, hardware concurrency).
  std::size_t threads = 0;
};

/// Runs one simulation across N shards. Construction builds the per-shard
/// engines; run() drives them to completion and returns the merged metrics
/// (deterministic ascending-shard merge, see EngineMetrics::merge_from).
class ShardedEngine final : public ShardCoordinator,
                            private sim::ShardedScheduler::ShardRunner {
 public:
  /// Builds the router for one shard. Called once per shard, in shard
  /// order, during construction. Each shard must get its own instance:
  /// routers hold per-payment state and are never shared across threads.
  // SPLICER_LINT_ALLOW(std-function): construction-time only — invoked once
  // per shard while building the engine, never on the simulation hot path.
  using RouterFactory = std::function<std::unique_ptr<Router>(std::uint32_t)>;

  /// `network` is copied once per shard. `source` feeds the whole
  /// simulation: with 1 shard it is handed to the engine verbatim (native
  /// lazy pull, byte-identical to sequential); with N > 1 the coordinator
  /// pulls it and injects each payment into its sender's home shard before
  /// the window covering its arrival.
  ShardedEngine(const pcn::Network& network,
                std::unique_ptr<pcn::TrafficSource> source,
                const RouterFactory& make_router, ShardPlan plan,
                const EngineConfig& engine_config, ShardedEngineConfig config);

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  /// Runs to completion. Single call.
  [[nodiscard]] EngineMetrics run();

  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return plan_.shards;
  }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  /// Per-shard engine (tests/diagnostics).
  [[nodiscard]] Engine& engine(std::uint32_t shard) { return *engines_[shard]; }
  [[nodiscard]] Router& router(std::uint32_t shard) { return *routers_[shard]; }

  /// Deterministic per-shard RNG seed: the base seed itself when the plan
  /// has one shard (bit-parity with the sequential engine), else a
  /// splitmix64 chain over (base, shard).
  [[nodiscard]] static std::uint64_t shard_seed(std::uint64_t base,
                                                std::uint32_t shard,
                                                std::uint32_t shards);

  // --- ShardCoordinator (called by engines during parallel phases) -------
  [[nodiscard]] std::uint32_t shard_of_channel(
      ChannelId channel) const noexcept override {
    return plan_.channel_shard[channel];
  }
  void handoff_tu(std::uint32_t from, TuHandoff msg) override;
  void post_result(std::uint32_t from, std::uint32_t home_shard,
                   TuResult msg) override;
  void post_ack(std::uint32_t from, ChannelId channel, double when,
                const sim::EngineEvent& event) override;

 private:
  // --- ShardRunner (called by the drive loop) ----------------------------
  std::size_t run_shard(std::size_t shard, sim::Time until) override;
  void on_barrier(sim::Time barrier) override;
  void before_window(sim::Time window_end) override;
  [[nodiscard]] sim::Time next_work_time() const override;
  [[nodiscard]] sim::Time hard_stop() const override;

  void stage_next_arrival();

  ShardPlan plan_;
  ShardedEngineConfig config_;
  double period_;
  std::vector<std::unique_ptr<Router>> routers_;
  std::vector<std::unique_ptr<Engine>> engines_;
  std::unique_ptr<sim::ShardedScheduler> sharded_;

  // Coordinator-side source (N > 1 only; with one shard the engine owns
  // the source and these stay empty/null).
  std::unique_ptr<pcn::TrafficSource> source_;
  std::optional<pcn::Payment> staged_;

  // Rich-message lanes [from * N + to]: appended by the worker running
  // shard `from` during a parallel phase, drained by the coordinator at
  // the barrier (the pool's wait() is the happens-before edge) — the same
  // single-writer discipline as the POD mail lanes.
  std::vector<std::deque<TuHandoff>> handoff_lanes_;
  std::vector<std::deque<TuResult>> result_lanes_;
};

/// Sharded counterpart of run_scheme(): same per-scheme substrate, router
/// configuration and engine flags, executed on `sharded.shards` shards.
/// Hub-affinity partition for hub substrates (Splicer, A2L — note A2L's
/// single hub pins all channels to one shard, truthfully serialising what
/// the scheme serialises), contiguous ranges for raw-topology schemes.
/// With sharded.shards == 1 the result is byte-identical to run_scheme().
[[nodiscard]] EngineMetrics run_scheme_sharded(const Scenario& scenario,
                                               Scheme scheme,
                                               SchemeConfig config,
                                               ShardedEngineConfig sharded);

}  // namespace splicer::routing
