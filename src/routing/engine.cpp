#include "routing/engine.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace splicer::routing {

const char* to_string(SchedulingPolicy policy) noexcept {
  switch (policy) {
    case SchedulingPolicy::kFifo: return "FIFO";
    case SchedulingPolicy::kLifo: return "LIFO";
    case SchedulingPolicy::kSpf: return "SPF";
    case SchedulingPolicy::kEdf: return "EDF";
  }
  return "?";
}

const char* to_string(FailReason reason) noexcept {
  switch (reason) {
    case FailReason::kNoPath: return "no-path";
    case FailReason::kInsufficientFunds: return "insufficient-funds";
    case FailReason::kMarkedCongested: return "marked-congested";
    case FailReason::kQueueOverflow: return "queue-overflow";
    case FailReason::kTimeout: return "timeout";
    case FailReason::kHubOverload: return "hub-overload";
    case FailReason::kNodeOffline: return "node-offline";
    case FailReason::kChannelClosed: return "channel-closed";
  }
  return "?";
}

void EngineMetrics::merge_from(const EngineMetrics& other) {
  payments_generated += other.payments_generated;
  payments_completed += other.payments_completed;
  payments_failed += other.payments_failed;
  value_generated += other.value_generated;
  value_completed += other.value_completed;
  tus_sent += other.tus_sent;
  tus_delivered += other.tus_delivered;
  tus_failed += other.tus_failed;
  tus_marked += other.tus_marked;
  for (std::size_t i = 0; i < kFailReasonCount; ++i) {
    tu_fail_reasons[i] += other.tu_fail_reasons[i];
    payment_fail_reasons[i] += other.payment_fail_reasons[i];
  }
  messages += other.messages;
  simulated_seconds = std::max(simulated_seconds, other.simulated_seconds);
  scheduler_events += other.scheduler_events;
  settlement_flushes += other.settlement_flushes;
  settlements_batched += other.settlements_batched;
  peak_payment_buffer += other.peak_payment_buffer;
  peak_resident_states += other.peak_resident_states;
  states_evicted += other.states_evicted;
  completion_delay_stats.merge(other.completion_delay_stats);
  tus_per_payment_stats.merge(other.tus_per_payment_stats);
  failed_delivered_value += other.failed_delivered_value;
  cross_shard_messages += other.cross_shard_messages;
  shard_barriers += other.shard_barriers;
  price_updates_skipped += other.price_updates_skipped;
  probe_sums_reused += other.probe_sums_reused;
  // Each shard's router sweeps its own pair set; the simultaneous total
  // across shards is the sum of the per-shard peaks' upper bound, matching
  // the other peak fields' merge convention.
  active_pairs_peak += other.active_pairs_peak;
  mutation_events += other.mutation_events;
  resident_tus_at_end += other.resident_tus_at_end;
  wedged_queue_value += other.wedged_queue_value;
}

Engine::Engine(pcn::Network network, std::unique_ptr<pcn::TrafficSource> source,
               Router& router, EngineConfig config)
    : network_(std::move(network)),
      source_(std::move(source)),
      router_(router),
      config_(config),
      rng_(config.seed) {
  if (!source_) throw std::invalid_argument("Engine: null traffic source");
  scheduler_.set_sink(this);
  source_horizon_ = source_->horizon_hint();
  directed_.resize(2 * network_.channel_count());
  batcher_.pending.resize(2 * network_.channel_count());
  initial_funds_ = network_.total_funds();
}

std::int64_t Engine::arrival_tick(double when) noexcept {
  // Nanosecond grid: times this close are "the same instant" for arrival
  // coalescing (hop delays are milliseconds), and the integer key makes
  // same-instant equality exact instead of bit-pattern luck.
  return static_cast<std::int64_t>(std::llround(when * 1e9));
}

void Engine::handle_event(const sim::EngineEvent& event) {
  using Kind = sim::EngineEvent::Kind;
  switch (event.kind) {
    case Kind::kArrival: {
      if (staged_arrival_) {
        const pcn::Payment payment = std::move(*staged_arrival_);
        staged_arrival_.reset();
        on_arrival(payment);
      } else {
        // Coordinator-injected arrival (N-shard mode): monotone injection
        // times mean deque order equals event firing order.
        const pcn::Payment payment = std::move(injected_arrivals_.front());
        injected_arrivals_.pop_front();
        on_arrival(payment);
      }
      break;
    }
    case Kind::kDeadline:
      on_payment_deadline(static_cast<PaymentId>(event.a));
      break;
    case Kind::kAttemptHop:
      attempt_hop(static_cast<TuId>(event.a));
      break;
    case Kind::kArriveNext:
      arrive_next(static_cast<TuId>(event.a));
      break;
    case Kind::kArrivalBucket: {
      const auto node =
          arrival_buckets_.extract(static_cast<std::int64_t>(event.a));
      for (const TuId tu : node.mapped()) arrive_next(tu);
      break;
    }
    case Kind::kReleaseTu:
      release_live_tu(static_cast<TuId>(event.a));
      break;
    case Kind::kSettleAck:
    case Kind::kRefundAck: {
      auto& ch = network_.channel(event.channel);
      const pcn::Direction d = ch.direction_from(event.aux);
      const auto amount = static_cast<Amount>(event.a);
      ++metrics_.messages.ack_messages;
      mark_channel_dirty(event.channel);
      if (event.kind == Kind::kSettleAck) {
        ch.settle(d, amount);
        // The receiving side gained spendable funds: opposite direction.
        drain_queue(event.channel, pcn::opposite(d));
      } else {
        ch.refund(d, amount);
        // The payer side regained spendable funds: same direction.
        drain_queue(event.channel, d);
      }
      break;
    }
    case Kind::kMark: {
      const auto id = static_cast<TuId>(event.a);
      const ChannelId channel = event.channel;
      const auto d = static_cast<pcn::Direction>(event.aux);
      auto& state = directed(channel, d);
      const auto pos = std::find_if(
          state.queue.begin(), state.queue.end(),
          [id](const QueuedTu& q) { return q.id == id; });
      if (pos == state.queue.end()) break;  // already drained
      state.queued_value -= pos->amount;
      state.queue.erase(pos);
      if (config_.validate_queues) check_queue_invariant(channel, d);
      LiveTu* live = live_.find(id);
      // Stale (resolved elsewhere): the accounting was released above and
      // there is nothing left to fail.
      if (live == nullptr || live->resolved) break;
      live->tu.marked = true;
      fail_tu(id, FailReason::kMarkedCongested);
      break;
    }
    case Kind::kDrain:
      directed(event.channel, static_cast<pcn::Direction>(event.aux))
          .drain_pending = false;
      drain_queue(event.channel, static_cast<pcn::Direction>(event.aux));
      break;
    case Kind::kFlush:
      batcher_.flush_scheduled = false;
      ++metrics_.settlement_flushes;
      flush_settlements(/*drain=*/true);
      break;
    case Kind::kRouterTimer:
      router_.on_timer(*this, event.a, event.b);
      break;
    case Kind::kRemoteHandoff: {
      TuHandoff msg = std::move(handoff_inbox_.front());
      handoff_inbox_.pop_front();
      adopt_tu(std::move(msg));
      break;
    }
    case Kind::kRemoteResult: {
      TuResult msg = std::move(result_inbox_.front());
      result_inbox_.pop_front();
      apply_remote_result(std::move(msg));
      break;
    }
    case Kind::kMutation: {
      const auto idx = static_cast<std::size_t>(event.a);
      const pcn::MutationEvent mutation = *staged_mutations_[idx];
      staged_mutations_[idx] = mutators_[idx]->next();
      apply_mutation(mutation);
      schedule_next_mutation();
      break;
    }
    case Kind::kNone:
      throw std::logic_error("Engine: untyped event reached the sink");
  }
}

Engine::Engine(pcn::Network network, std::vector<pcn::Payment> payments,
               Router& router, EngineConfig config)
    : Engine(std::move(network),
             std::make_unique<pcn::VectorSource>(std::move(payments)), router,
             config) {}

EngineMetrics Engine::run() {
  begin_run();

  // The hard stop tracks the deadlines pulled so far; streamed arrivals
  // keep extending it, so the loop re-runs until the bound stabilises (for
  // replay sources the final bound equals the old whole-vector scan).
  double hard_stop = last_deadline_seen_ + config_.horizon_slack_s + 60.0;
  for (;;) {
    run_window(hard_stop);
    const double extended =
        last_deadline_seen_ + config_.horizon_slack_s + 60.0;
    if (scheduler_.empty() || extended <= hard_stop) break;
    hard_stop = extended;
  }

  finish_run();
  return metrics_;
}

void Engine::begin_run() {
  init_mutators();
  router_.on_start(*this);
  schedule_next_arrival();
  schedule_next_mutation();
}

std::size_t Engine::run_window(double until) {
  const std::size_t executed = scheduler_.run(until);
  metrics_.scheduler_events += executed;
  return executed;
}

void Engine::finish_run() {
  metrics_.simulated_seconds = scheduler_.now();
  if (config_.settlement_epoch_s > 0) {
    // Apply any residue whose flush boundary fell past the hard stop so the
    // final network state is fully settled; no queue retries — the
    // simulation is over.
    flush_settlements(/*drain=*/false);
  }
  // Deadlock witnesses for the churn stress gate: anything still alive or
  // queued at run end is wedged liquidity (benign AND hostile runs must
  // both end at zero — every ack chain, mark event and refund fires before
  // the deadline-driven hard stop).
  metrics_.resident_tus_at_end = live_.size();
  Amount wedged = 0;
  for (const DirectedState& ds : directed_) wedged += ds.queued_value;
  metrics_.wedged_queue_value = wedged;
  if (network_.total_funds() != initial_funds_) {
    throw std::logic_error("Engine: funds-conservation violation");
  }
}

void Engine::init_mutators() {
  if (!config_.hostile.any_mutation_active()) return;
  // Mutations cover the workload plus the slack tail; in sharded mode
  // begin_run() runs after bind_shard(), so workload_horizon() already
  // reflects the real source's hint and every shard derives the identical
  // stream from the identical horizon.
  const double horizon = workload_horizon() + config_.horizon_slack_s;
  mutators_ = pcn::make_mutators(config_.hostile, network_.node_count(),
                                 network_.channel_count(), horizon);
  staged_mutations_.clear();
  staged_mutations_.reserve(mutators_.size());
  for (auto& mutator : mutators_) staged_mutations_.push_back(mutator->next());
  node_down_depth_.assign(network_.node_count(), 0);
  channel_close_depth_.assign(network_.channel_count(), 0);
}

void Engine::schedule_next_mutation() {
  // One kMutation event in flight at a time: each firing re-stages its
  // mutator and re-arms the global minimum. Strict < keeps equal-timestamp
  // events firing in ascending mutator-index order (the construction order
  // pinned by make_mutators).
  std::size_t best = staged_mutations_.size();
  for (std::size_t i = 0; i < staged_mutations_.size(); ++i) {
    if (!staged_mutations_[i]) continue;
    if (best == staged_mutations_.size() ||
        staged_mutations_[i]->time < staged_mutations_[best]->time) {
      best = i;
    }
  }
  if (best == staged_mutations_.size()) return;
  scheduler_.at(staged_mutations_[best]->time,
                sim::EngineEvent{.kind = sim::EngineEvent::Kind::kMutation,
                                 .channel = 0,
                                 .aux = 0,
                                 .a = best});
}

void Engine::apply_mutation(const pcn::MutationEvent& event) {
  ++metrics_.mutation_events;
  using Kind = pcn::MutationEvent::Kind;
  switch (event.kind) {
    // Fault and churn flags flip only on the 0<->1 depth transition so
    // overlapping windows from independent primary draws stay idempotent;
    // the paired recovery event unwinds one level.
    case Kind::kNodeDown:
      if (node_down_depth_[event.node]++ == 0) {
        network_.set_node_online(event.node, false);
      }
      break;
    case Kind::kNodeUp:
      if (node_down_depth_[event.node] > 0 &&
          --node_down_depth_[event.node] == 0) {
        network_.set_node_online(event.node, true);
      }
      break;
    case Kind::kChannelClose:
      if (channel_close_depth_[event.channel]++ == 0) {
        network_.channel(event.channel).set_closed(true);
        mark_channel_dirty(event.channel);
        // Fund-touching side effects run on the owning shard only; every
        // other shard just flips the flag so path selection agrees.
        if (!channel_is_remote(event.channel)) on_channel_close(event.channel);
      }
      break;
    case Kind::kChannelReopen:
      if (channel_close_depth_[event.channel] > 0 &&
          --channel_close_depth_[event.channel] == 0) {
        network_.channel(event.channel).set_closed(false);
        mark_channel_dirty(event.channel);
      }
      break;
    case Kind::kFeePolicy: {
      auto& ch = network_.channel(event.channel);
      pcn::ChannelPolicy policy = ch.policy();
      policy.fee_base = event.policy.fee_base;
      policy.fee_proportional = event.policy.fee_proportional;
      policy.min_htlc = event.policy.min_htlc;
      ch.set_policy(policy);
      mark_channel_dirty(event.channel);
      break;
    }
    case Kind::kTimelock: {
      auto& ch = network_.channel(event.channel);
      pcn::ChannelPolicy policy = ch.policy();
      policy.timelock = event.policy.timelock;
      ch.set_policy(policy);
      mark_channel_dirty(event.channel);
      break;
    }
  }
}

void Engine::on_channel_close(ChannelId channel) {
  // The flag is already set, so any retry a failure callback triggers hits
  // the attempt_hop backstop instead of re-entering this channel's queues.
  //
  // Drain both waiting queues first: every queued TU fails with
  // kChannelClosed, releasing its queued_value and cancelling its mark
  // event — drain_queue's stale bookkeeping minus the retry.
  for (const pcn::Direction d :
       {pcn::Direction::kForward, pcn::Direction::kBackward}) {
    auto& ds = directed(channel, d);
    while (!ds.queue.empty()) {
      const QueuedTu entry = ds.queue.front();
      ds.queue.erase(ds.queue.begin());
      ds.queued_value -= entry.amount;
      scheduler_.cancel(entry.mark_event);
      fail_tu(entry.id, FailReason::kChannelClosed);
    }
    if (config_.validate_queues) check_queue_invariant(channel, d);
  }
  // Then refund every unresolved resident TU holding a lock on the closed
  // channel. Collect ids before failing any: batched-mode fail_tu erases
  // from live_ and failure callbacks may send new TUs (slab relocation), so
  // the traversal must see no mutation. TUs that locked this channel but
  // moved on to another shard resolve through their normal routed acks —
  // settle/refund stay legal on a closed channel, so they cannot wedge.
  // SPLICER_LINT_ALLOW(hotpath-alloc): churn events are Poisson-rare (zero
  // in benign runs) — never per-TU or per-hop work.
  std::vector<TuId> victims;
  live_.for_each([&](TuId id, const LiveTu& live) {
    if (live.resolved) return;
    const auto& tu = live.tu;
    for (std::size_t i = 0; i < tu.path.edges.size(); ++i) {
      if (tu.path.edges[i] == channel && live.hop_locked[i]) {
        victims.push_back(id);
        return;
      }
    }
  });
  for (const TuId id : victims) fail_tu(id, FailReason::kChannelClosed);
}

void Engine::bind_shard(ShardCoordinator* coordinator, std::uint32_t shard,
                        double horizon_hint) {
  coordinator_ = coordinator;
  shard_id_ = shard;
  source_horizon_ = std::max(source_horizon_, horizon_hint);
}

void Engine::inject_arrival(pcn::Payment payment) {
  if (payment.arrival_time < last_arrival_time_) {
    throw std::logic_error("Engine: injected arrivals not monotone");
  }
  last_arrival_time_ = payment.arrival_time;
  last_deadline_seen_ = std::max(last_deadline_seen_, payment.deadline);
  ++pending_arrivals_;
  note_buffer_peak();
  const double when = payment.arrival_time;
  injected_arrivals_.push_back(std::move(payment));
  scheduler_.at(when,
                sim::EngineEvent{.kind = sim::EngineEvent::Kind::kArrival});
}

void Engine::deliver_handoff(TuHandoff msg, double not_before) {
  const double when = std::max(msg.when, not_before);
  handoff_inbox_.push_back(std::move(msg));
  scheduler_.at(when,
                sim::EngineEvent{.kind = sim::EngineEvent::Kind::kRemoteHandoff});
}

void Engine::deliver_result(TuResult msg, double not_before) {
  const double when = std::max(msg.when, not_before);
  result_inbox_.push_back(std::move(msg));
  scheduler_.at(when,
                sim::EngineEvent{.kind = sim::EngineEvent::Kind::kRemoteResult});
}

void Engine::export_tu(TuId id) {
  LiveTu* live = live_.find(id);
  TuHandoff msg;
  msg.tu = std::move(live->tu);
  msg.hop_locked = std::move(live->hop_locked);
  msg.home_id = live->foreign ? live->home_id : id;
  msg.home_shard = live->foreign ? live->home_shard : shard_id_;
  msg.when = scheduler_.now();
  // Plain erase, not release_live_tu: the TU is still alive, so the home
  // payment's live_tus pin must stay held until its TuResult lands.
  live_.erase(id);
  // Not a data hop: the adopting shard counts it when it locks the channel.
  ++metrics_.cross_shard_messages;
  coordinator_->handoff_tu(shard_id_, std::move(msg));
}

void Engine::adopt_tu(TuHandoff msg) {
  TransactionUnit tu = std::move(msg.tu);
  const bool back_home = msg.home_shard == shard_id_;
  tu.id = next_tu_id_++;
  const TuId id = tu.id;
  LiveTu live;
  live.hop_locked = std::move(msg.hop_locked);
  live.foreign = !back_home;
  live.home_shard = msg.home_shard;
  live.home_id = msg.home_id;
  if (back_home) tu.id = msg.home_id;  // restore the router-visible id
  live.tu = std::move(tu);
  live_.emplace(id, std::move(live));
  attempt_hop(id);
}

void Engine::apply_remote_result(TuResult msg) {
  const TransactionUnit& tu = msg.tu;
  // Mirrors the payment-state block of deliver()/fail_tu(): the TU's hops
  // were settled/refunded by their owning shards; only the home-side
  // payment bookkeeping and router callbacks remain.
  if (msg.delivered) {
    if (auto* state = state_or_orphan(tu.payment)) {
      state->in_flight -= tu.value;
      state->delivered += tu.value;
      if (!state->failed && !state->completed &&
          state->delivered >= state->payment.value) {
        cancel_deadline_event(state->payment.id);
        state->completed = true;
        --active_payments_;
        state->completion_time = scheduler_.now();
        ++metrics_.payments_completed;
        metrics_.value_completed += state->payment.value;
        fold_resolution(*state);
        // Receipt ACK_tid forwarded back to the sender.
        metrics_.messages.control_messages += 1;
      }
    }
    router_.on_tu_delivered(*this, tu);
  } else {
    if (auto* state = state_or_orphan(tu.payment)) {
      state->in_flight -= tu.value;
    }
    router_.on_tu_failed(*this, tu, msg.reason);
  }
  // Release the live_tus pin taken at send_tu; the live_ entry itself was
  // erased when the TU was exported.
  if (auto* state = state_or_orphan(tu.payment)) {
    if (state->live_tus > 0) --state->live_tus;
    maybe_evict(tu.payment);
  }
}

void Engine::schedule_next_arrival() {
  auto payment = source_->next();
  if (!payment) return;
  if (payment->arrival_time < last_arrival_time_) {
    throw std::logic_error("Engine: source arrivals not monotone");
  }
  last_arrival_time_ = payment->arrival_time;
  // Fold the deadline in at pull time: the run() hard stop must already
  // cover this arrival while it is still pending, however sparse the
  // arrival process is.
  last_deadline_seen_ = std::max(last_deadline_seen_, payment->deadline);
  ++pending_arrivals_;
  note_buffer_peak();
  staged_arrival_ = std::move(*payment);
  scheduler_.at(staged_arrival_->arrival_time,
                sim::EngineEvent{.kind = sim::EngineEvent::Kind::kArrival});
}

void Engine::on_arrival(const pcn::Payment& payment) {
  --pending_arrivals_;
  auto [state, inserted] = states_.emplace(payment.id, PaymentState{payment});
  if (!inserted) throw std::logic_error("Engine: duplicate payment id");
  ++active_payments_;
  note_buffer_peak();
  if (states_.size() > metrics_.peak_resident_states) {
    metrics_.peak_resident_states = states_.size();
  }
  ++metrics_.payments_generated;
  metrics_.value_generated += payment.value;
  // payreq over the secure channel + KMG key issuance.
  metrics_.messages.control_messages += 2;
  state->deadline_pending = true;
  state->deadline_event = scheduler_.at(
      payment.deadline,
      sim::EngineEvent{.kind = sim::EngineEvent::Kind::kDeadline,
                       .channel = 0,
                       .aux = 0,
                       .a = payment.id});
  router_.on_payment(*this, payment);
  schedule_next_arrival();
}

void Engine::note_buffer_peak() noexcept {
  const std::size_t resident = pending_arrivals_ + active_payments_;
  if (resident > metrics_.peak_payment_buffer) {
    metrics_.peak_payment_buffer = resident;
  }
}

void Engine::cancel_deadline_event(PaymentId id) {
  // Per-hop mode never cancels: resolved payments' deadline events fire as
  // no-ops so the epoch-0 event stream stays byte-identical.
  if (config_.settlement_epoch_s <= 0) return;
  auto* state = find_payment_state(id);
  if (state == nullptr || !state->deadline_pending) return;
  scheduler_.cancel(state->deadline_event);
  state->deadline_pending = false;
}

void Engine::fold_resolution(const PaymentState& state) {
  metrics_.tus_per_payment_stats.add(static_cast<double>(state.tus_launched));
  if (state.completed) {
    metrics_.completion_delay_stats.add(state.completion_time -
                                        state.payment.arrival_time);
  } else {
    metrics_.failed_delivered_value += state.delivered;
  }
}

void Engine::release_live_tu(TuId id) {
  const LiveTu* live = live_.find(id);
  if (live == nullptr) return;
  const bool foreign = live->foreign;
  const PaymentId payment = live->tu.payment;
  live_.erase(id);
  // A foreign TU's payment lives on its home shard: the pin there is
  // released when the TuResult is applied, and the local states_ slab has
  // no entry to consult.
  if (foreign) return;
  if (auto* state = state_or_orphan(payment)) {
    if (state->live_tus > 0) --state->live_tus;
    maybe_evict(payment);
  }
}

void Engine::maybe_evict(PaymentId id) {
  PaymentState* state = states_.find(id);
  if (state == nullptr) return;
  if (state->active() || state->live_tus > 0 || state->deadline_pending) return;
  // Quiescent: resolved, no live TU, deadline event fired/cancelled — no
  // per-TU hook can ever fire for this payment again. Tell the router once
  // so it can drop its per-payment map entries; the hook's contract (no TU
  // dispatch, no event scheduling) keeps the event stream untouched, so
  // firing it under retention too costs nothing and frees router memory in
  // long retained runs as well.
  if (!state->resolution_notified) {
    state->resolution_notified = true;
    router_.on_payment_resolved(*this, id);
  }
  if (config_.retain_resolved) return;
  states_.erase(id);
  ++metrics_.states_evicted;
}

TuId Engine::send_tu(TransactionUnit tu) {
  if (in_forward_hook_) {
    // The on_tu_forwarded hook holds a reference into live_; inserting a
    // new TU could relocate the slab under it (Router::on_tu_forwarded
    // documents the contract — this makes a violation a hard error).
    throw std::logic_error("Engine::send_tu: called from on_tu_forwarded");
  }
  if (tu.path.edges.empty() || tu.hop_amounts.size() != tu.path.edges.size()) {
    throw std::invalid_argument("Engine::send_tu: malformed TU");
  }
  if (tu.value <= 0) throw std::invalid_argument("Engine::send_tu: value <= 0");
  tu.id = next_tu_id_++;
  tu.next_hop = 0;
  tu.created_at = scheduler_.now();
  const TuId id = tu.id;

  // Orphan-tolerant: a router may keep dispatching splits of a payment
  // that a sibling TU's synchronous failure just resolved — and, with
  // retention off, evicted. The retained engine dispatches TUs for
  // already-failed payments too, so the orphan TU must flow identically
  // (its resolution skips the per-payment bookkeeping; everything else is
  // the same). With retention on a miss still throws.
  if (auto* state = state_or_orphan(tu.payment)) {
    state->in_flight += tu.value;
    ++state->live_tus;
    ++state->tus_launched;
  }

  LiveTu live;
  live.hop_locked.assign(tu.path.edges.size(), 0);
  live.tu = std::move(tu);
  live_.emplace(id, std::move(live));
  ++metrics_.tus_sent;
  attempt_hop(id);
  return id;
}

PaymentState& Engine::payment_state(PaymentId id) {
  PaymentState* state = states_.find(id);
  if (state == nullptr) throw std::out_of_range("Engine: unknown payment");
  return *state;
}

PaymentState* Engine::state_or_orphan(PaymentId id) {
  auto* state = find_payment_state(id);
  if (state == nullptr && config_.retain_resolved) {
    // Retention on: nothing is ever evicted, so a miss can only be a router
    // handing the engine a bogus payment id — keep the historical throw
    // instead of silently moving funds with no bookkeeping.
    throw std::out_of_range("Engine: unknown payment");
  }
  return state;
}

void Engine::fail_payment(PaymentId id, FailReason reason) {
  auto* state = state_or_orphan(id);
  if (state == nullptr || !state->active()) return;  // resolved and evicted
  cancel_deadline_event(id);
  state->failed = true;
  --active_payments_;
  ++metrics_.payments_failed;
  ++metrics_.payment_fail_reasons[static_cast<std::size_t>(reason)];
  fold_resolution(*state);
  router_.on_payment_timeout(*this, id);
  maybe_evict(id);
}

Amount Engine::queue_amount(ChannelId channel, pcn::Direction d) const {
  return directed(channel, d).queued_value;
}

void Engine::attempt_hop(TuId id) {
  LiveTu* live_ptr = live_.find(id);
  if (live_ptr == nullptr) return;  // already resolved and released
  auto& live = *live_ptr;
  // Per-hop mode keeps a resolved TU's live entry until kReleaseTu with its
  // tu vectors vacated; a pending retry event must not touch it.
  if (live.resolved) return;
  auto& tu = live.tu;
  const std::size_t hop = tu.next_hop;
  const ChannelId channel = tu.path.edges[hop];
  if (channel_is_remote(channel)) {
    // Every lock is taken by the channel's owner: ship the TU there before
    // touching rate buckets, queues or funds.
    export_tu(id);
    return;
  }
  const NodeId from = tu.path.nodes[hop];
  auto& ch = network_.channel(channel);
  const pcn::Direction d = ch.direction_from(from);
  auto& ds = directed(channel, d);
  const Amount amount = tu.hop_amounts[hop];

  // Hostile-world admission backstop: whatever path the router chose (or
  // cached before a mutation landed), no new lock goes onto a closed
  // channel, through an offline endpoint, or below the channel's min_htlc
  // policy floor. In-flight settles and refunds stay legal on a closed
  // channel — only new locks are refused, so conservation is untouched.
  // All three reads hit identity defaults in a benign run.
  if (ch.is_closed()) {
    fail_tu(id, FailReason::kChannelClosed);
    return;
  }
  if (!network_.node_online(ch.node_a()) ||
      !network_.node_online(ch.node_b())) {
    fail_tu(id, FailReason::kNodeOffline);
    return;
  }
  if (amount < ch.policy().min_htlc) {
    fail_tu(id, FailReason::kInsufficientFunds);
    return;
  }

  // Processing-rate limit (r_process, paper Alg. 2 line 10): processing
  // capacity delays forwarding; in queue mode the TU takes a queue slot,
  // in atomic mode it simply waits for the processor.
  if (scheduler_.now() < ds.next_free) {
    if (config_.queues_enabled) {
      enqueue(id, channel, d);
    } else if (config_.settlement_epoch_s > 0) {
      // Batched mode: retry from the shared epoch flush instead of one
      // scheduler event per waiting TU.
      batcher_.deferred_tus.push_back(id);
      schedule_flush();
    } else {
      scheduler_.at(ds.next_free,
                    sim::EngineEvent{
                        .kind = sim::EngineEvent::Kind::kAttemptHop,
                        .channel = 0,
                        .aux = 0,
                        .a = id});
    }
    return;
  }
  // Funds check (F_ab < |d_i|, same line).
  if (!ch.lock(d, amount)) {
    if (config_.queues_enabled) {
      enqueue(id, channel, d);
    } else {
      fail_tu(id, FailReason::kInsufficientFunds);
    }
    return;
  }
  live.hop_locked[hop] = 1;
  mark_channel_dirty(channel);
  ds.next_free = std::max(scheduler_.now(), ds.next_free) +
                 common::to_tokens(amount) / config_.process_rate_tokens_per_s;
  ++metrics_.messages.data_hops;
  in_forward_hook_ = true;
  router_.on_tu_forwarded(*this, tu, channel, d);
  in_forward_hook_ = false;
  schedule_hop_arrival(id);
}

void Engine::schedule_hop_arrival(TuId id) {
  if (config_.settlement_epoch_s <= 0) {
    scheduler_.after(config_.hop_delay_s,
                     sim::EngineEvent{
                         .kind = sim::EngineEvent::Kind::kArriveNext,
                         .channel = 0,
                         .aux = 0,
                         .a = id});
    return;
  }
  // Batched mode: a flush forwards whole queues at one boundary, so many
  // TUs arrive at the identical instant — share one event per tick-
  // quantised timestamp. Arrival order inside a bucket is insertion order,
  // i.e. the order the separate events would have fired in.
  const double when = scheduler_.now() + config_.hop_delay_s;
  const std::int64_t key = arrival_tick(when);
  const auto [it, inserted] = arrival_buckets_.try_emplace(key);
  it->second.push_back(id);
  if (inserted) {
    scheduler_.at(when,
                  sim::EngineEvent{
                      .kind = sim::EngineEvent::Kind::kArrivalBucket,
                      .channel = 0,
                      .aux = 0,
                      .a = static_cast<std::uint64_t>(key)});
  }
}

void Engine::arrive_next(TuId id) {
  LiveTu* live = live_.find(id);
  if (live == nullptr || live->resolved) return;
  auto& tu = live->tu;
  ++tu.next_hop;
  if (tu.next_hop == tu.path.edges.size()) {
    deliver(id);
  } else {
    attempt_hop(id);
  }
}

void Engine::deliver(TuId id) {
  LiveTu* live_ptr = live_.find(id);
  if (live_ptr == nullptr) return;
  auto& live = *live_ptr;
  live.resolved = true;
  ++metrics_.tus_delivered;

  if (live.foreign) {
    // The payment lives on another shard: settle the hops (routing remote
    // acks to their owners), then relay the outcome home for the payment
    // bookkeeping and router callbacks.
    settle_backwards(id);
    TuResult result;
    result.tu = std::move(live.tu);
    result.tu.id = live.home_id;
    result.delivered = true;
    result.when = scheduler_.now();
    ++metrics_.cross_shard_messages;
    coordinator_->post_result(shard_id_, live.home_shard, std::move(result));
    if (config_.settlement_epoch_s > 0) release_live_tu(id);
    return;
  }

  // Orphan-tolerant: a TU of a payment resolved and evicted before it was
  // sent settles its hops like any other; only the per-payment bookkeeping
  // is gone.
  if (auto* state = state_or_orphan(live.tu.payment)) {
    state->in_flight -= live.tu.value;
    state->delivered += live.tu.value;
    if (!state->failed && !state->completed &&
        state->delivered >= state->payment.value) {
      cancel_deadline_event(state->payment.id);
      state->completed = true;
      --active_payments_;
      state->completion_time = scheduler_.now();
      ++metrics_.payments_completed;
      metrics_.value_completed += state->payment.value;
      fold_resolution(*state);
      // Receipt ACK_tid forwarded back to the sender.
      metrics_.messages.control_messages += 1;
    }
  }
  settle_backwards(id);
  // Hand the router a moved-out TU instead of a deep copy (path +
  // hop_amounts vectors, once per delivered TU). The live entry is only
  // consulted for scalar fields afterwards (tu.payment at release), and
  // scalars survive a memberwise move; a resolved TU can hold no queue
  // entry, so nothing reads the vacated vectors.
  const TransactionUnit tu_copy = std::move(live.tu);
  router_.on_tu_delivered(*this, tu_copy);
  // Batched mode settles from the epoch buffer, so nothing references the
  // live entry anymore; per-hop mode releases it after the last ack event.
  if (config_.settlement_epoch_s > 0) release_live_tu(id);
}

void Engine::settle_backwards(TuId id) {
  LiveTu* live_ptr = live_.find(id);
  if (live_ptr == nullptr) return;
  auto& live = *live_ptr;
  const auto& tu = live.tu;
  const std::size_t hops = tu.path.edges.size();
  if (config_.settlement_epoch_s > 0) {
    // Batched mode: fold every locked hop into the epoch buffer; a single
    // flush event applies them all at the next settlement_epoch_s boundary.
    add_pending_locked_hops(live, /*is_settle=*/true);
    return;  // deliver() releases the live entry
  }
  // The ack walks back from the destination, one hop per hop_delay,
  // settling each lock into the receiving side. Hops locked by other
  // shards get their ack via the coordinator; the owner executes it at the
  // next barrier, no earlier than its natural timestamp.
  double delay = config_.hop_delay_s;
  for (std::size_t i = hops; i-- > 0;) {
    if (!live.hop_locked[i]) continue;
    const sim::EngineEvent ack{
        .kind = sim::EngineEvent::Kind::kSettleAck,
        .channel = tu.path.edges[i],
        .aux = tu.path.nodes[i],
        .a = static_cast<std::uint64_t>(tu.hop_amounts[i])};
    if (channel_is_remote(tu.path.edges[i])) {
      coordinator_->post_ack(shard_id_, tu.path.edges[i],
                             scheduler_.now() + delay, ack);
    } else {
      scheduler_.after(delay, ack);
    }
    delay += config_.hop_delay_s;
  }
  scheduler_.after(delay,
                   sim::EngineEvent{.kind = sim::EngineEvent::Kind::kReleaseTu,
                                    .channel = 0,
                                    .aux = 0,
                                    .a = id});
}

void Engine::fail_tu(TuId id, FailReason reason) {
  LiveTu* live = live_.find(id);
  // The resolved check makes failure idempotent: a channel-close sweep and
  // a late mark/retry event may both reach the same per-hop-mode TU while
  // its entry awaits kReleaseTu.
  if (live == nullptr || live->resolved) return;
  live->resolved = true;
  if (live->foreign) {
    ++metrics_.tus_failed;
    ++metrics_.tu_fail_reasons[static_cast<std::size_t>(reason)];
    if (reason == FailReason::kMarkedCongested) ++metrics_.tus_marked;
    refund_backwards(id, reason);
    TuResult result;
    result.tu = std::move(live->tu);
    result.tu.id = live->home_id;
    result.delivered = false;
    result.reason = reason;
    result.when = scheduler_.now();
    ++metrics_.cross_shard_messages;
    coordinator_->post_result(shard_id_, live->home_shard, std::move(result));
    if (config_.settlement_epoch_s > 0) release_live_tu(id);
    return;
  }
  // Orphan TUs (see send_tu) have no payment state to update.
  if (auto* state = state_or_orphan(live->tu.payment)) {
    state->in_flight -= live->tu.value;
  }
  ++metrics_.tus_failed;
  ++metrics_.tu_fail_reasons[static_cast<std::size_t>(reason)];
  if (reason == FailReason::kMarkedCongested) ++metrics_.tus_marked;
  refund_backwards(id, reason);
  // Moved, not copied — refund_backwards has already folded every locked
  // hop, and the live entry only needs scalar fields afterwards (see
  // deliver()). refund_backwards schedules events but never inserts into
  // live_, so `live` stays valid across the call.
  const TransactionUnit tu_copy = std::move(live->tu);
  router_.on_tu_failed(*this, tu_copy, reason);
  if (config_.settlement_epoch_s > 0) release_live_tu(id);
}

void Engine::refund_backwards(TuId id, FailReason reason) {
  (void)reason;
  LiveTu* live_ptr = live_.find(id);
  if (live_ptr == nullptr) return;
  auto& live = *live_ptr;
  const auto& tu = live.tu;
  if (config_.settlement_epoch_s > 0) {
    add_pending_locked_hops(live, /*is_settle=*/false);
    return;  // fail_tu() releases the live entry
  }
  double delay = config_.hop_delay_s;
  for (std::size_t i = tu.path.edges.size(); i-- > 0;) {
    if (!live.hop_locked[i]) continue;
    const sim::EngineEvent ack{
        .kind = sim::EngineEvent::Kind::kRefundAck,
        .channel = tu.path.edges[i],
        .aux = tu.path.nodes[i],
        .a = static_cast<std::uint64_t>(tu.hop_amounts[i])};
    if (channel_is_remote(tu.path.edges[i])) {
      coordinator_->post_ack(shard_id_, tu.path.edges[i],
                             scheduler_.now() + delay, ack);
    } else {
      scheduler_.after(delay, ack);
    }
    delay += config_.hop_delay_s;
  }
  scheduler_.after(delay,
                   sim::EngineEvent{.kind = sim::EngineEvent::Kind::kReleaseTu,
                                    .channel = 0,
                                    .aux = 0,
                                    .a = id});
}

void Engine::enqueue(TuId id, ChannelId channel, pcn::Direction d) {
  auto& live = live_.at(id);
  auto& ds = directed(channel, d);
  const Amount amount = live.tu.hop_amounts[live.tu.next_hop];
  if (ds.queued_value + amount > config_.queue_capacity) {
    fail_tu(id, FailReason::kQueueOverflow);
    return;
  }
  QueuedTu queued;
  queued.id = id;
  queued.enqueued_at = scheduler_.now();
  queued.amount = amount;
  // Congestion marking: if still queued after T, mark & abort (eq. 27 path,
  // handled by the kMark branch of handle_event).
  queued.mark_event = scheduler_.after(
      config_.queue_delay_threshold_s,
      sim::EngineEvent{.kind = sim::EngineEvent::Kind::kMark,
                       .channel = channel,
                       .aux = static_cast<std::uint32_t>(pcn::dir_index(d)),
                       .a = id});
  ds.queued_value += amount;
  ds.queue.push_back(queued);
  // If blocked on the rate limiter, retry when the bucket frees up.
  if (scheduler_.now() < ds.next_free) schedule_drain(channel, d, ds.next_free);
  if (config_.validate_queues) check_queue_invariant(channel, d);
}

std::size_t Engine::pick_from_queue(const DirectedState& state) const {
  switch (config_.policy) {
    case SchedulingPolicy::kFifo:
      return 0;
    case SchedulingPolicy::kLifo:
      return state.queue.size() - 1;
    case SchedulingPolicy::kSpf: {
      std::size_t best = 0;
      Amount best_value = 0;
      for (std::size_t i = 0; i < state.queue.size(); ++i) {
        const LiveTu* live = live_.find(state.queue[i].id);
        // Stale: evict before policy picks.
        if (live == nullptr || live->resolved) return i;
        const Amount v = live->tu.value;
        if (i == 0 || v < best_value) {
          best = i;
          best_value = v;
        }
      }
      return best;
    }
    case SchedulingPolicy::kEdf: {
      std::size_t best = 0;
      double best_deadline = 0.0;
      for (std::size_t i = 0; i < state.queue.size(); ++i) {
        const LiveTu* live = live_.find(state.queue[i].id);
        // Stale: evict before policy picks.
        if (live == nullptr || live->resolved) return i;
        const double dl = live->tu.deadline;
        if (i == 0 || dl < best_deadline) {
          best = i;
          best_deadline = dl;
        }
      }
      return best;
    }
  }
  return 0;
}

void Engine::drain_queue(ChannelId channel, pcn::Direction d) {
  auto& ds = directed(channel, d);
  auto& ch = network_.channel(channel);
  while (!ds.queue.empty()) {
    if (scheduler_.now() < ds.next_free) {
      schedule_drain(channel, d, ds.next_free);
      break;
    }
    const std::size_t index = pick_from_queue(ds);
    const QueuedTu entry = ds.queue[index];
    const LiveTu* live = live_.find(entry.id);
    if (live == nullptr || live->resolved) {
      // Stale entry (TU resolved elsewhere): release its accounting too —
      // erasing the entry alone would leak queued_value and leave the mark
      // event live to fire against a recycled queue position.
      scheduler_.cancel(entry.mark_event);
      ds.queue.erase(ds.queue.begin() + static_cast<std::ptrdiff_t>(index));
      ds.queued_value -= entry.amount;
      continue;
    }
    const Amount amount = live->tu.hop_amounts[live->tu.next_hop];
    if (ch.available(d) < amount) break;  // wait for the next settle/refund
    scheduler_.cancel(entry.mark_event);
    ds.queue.erase(ds.queue.begin() + static_cast<std::ptrdiff_t>(index));
    ds.queued_value -= amount;
    attempt_hop(entry.id);  // re-checks rate & funds; both were just verified
  }
  if (config_.validate_queues) check_queue_invariant(channel, d);
}

void Engine::schedule_drain(ChannelId channel, pcn::Direction d, double when) {
  auto& ds = directed(channel, d);
  if (ds.drain_pending) return;  // one wake-up is enough
  ds.drain_pending = true;
  if (config_.settlement_epoch_s > 0) {
    // Batched mode: the recurring epoch flush retries this queue; no
    // per-direction wake-up event.
    batcher_.blocked_queues.push_back(directed_index(channel, d));
    schedule_flush();
    return;
  }
  scheduler_.at(when,
                sim::EngineEvent{
                    .kind = sim::EngineEvent::Kind::kDrain,
                    .channel = channel,
                    .aux = static_cast<std::uint32_t>(pcn::dir_index(d)),
                    .a = 0});
}

void Engine::add_pending_locked_hops(const LiveTu& live, bool is_settle) {
  const auto& tu = live.tu;
  for (std::size_t i = tu.path.edges.size(); i-- > 0;) {
    if (!live.hop_locked[i]) continue;
    if (channel_is_remote(tu.path.edges[i])) {
      // The lock lives on another shard's copy of the channel; folding it
      // into the local epoch buffer would move funds that were never locked
      // here. Route the ack to the owner, who applies it on arrival (the
      // barrier already quantises it onto the settlement grid).
      const sim::EngineEvent ack{
          .kind = is_settle ? sim::EngineEvent::Kind::kSettleAck
                            : sim::EngineEvent::Kind::kRefundAck,
          .channel = tu.path.edges[i],
          .aux = tu.path.nodes[i],
          .a = static_cast<std::uint64_t>(tu.hop_amounts[i])};
      coordinator_->post_ack(shard_id_, tu.path.edges[i],
                             scheduler_.now() + config_.hop_delay_s, ack);
      continue;
    }
    const auto& ch = network_.channel(tu.path.edges[i]);
    add_pending(tu.path.edges[i], ch.direction_from(tu.path.nodes[i]),
                tu.hop_amounts[i], is_settle);
  }
}

void Engine::add_pending(ChannelId channel, pcn::Direction d, Amount amount,
                        bool is_settle) {
  auto& p = batcher_.pending[directed_index(channel, d)];
  if (p.settle_ops == 0 && p.refund_ops == 0) {
    batcher_.dirty.push_back(directed_index(channel, d));
  }
  if (is_settle) {
    p.settle_total += amount;
    ++p.settle_ops;
  } else {
    p.refund_total += amount;
    ++p.refund_ops;
  }
  // The per-hop ack still flows in the modelled network; only its
  // simulation event is coalesced.
  ++metrics_.messages.ack_messages;
  ++metrics_.settlements_batched;
  schedule_flush();
}

void Engine::schedule_flush() {
  if (config_.settlement_epoch_s <= 0) {
    throw std::logic_error("Engine: schedule_flush without batched mode");
  }
  if (batcher_.flush_scheduled) return;
  batcher_.flush_scheduled = true;
  scheduler_.at_next_boundary(
      config_.settlement_epoch_s,
      sim::EngineEvent{.kind = sim::EngineEvent::Kind::kFlush});
}

void Engine::flush_settlements(bool drain) {
  // SPLICER_LINT_ALLOW(hotpath-alloc): swap-steal — an empty vector
  // allocates nothing; the flush runs once per settlement epoch, not per TU.
  std::vector<std::size_t> dirty;
  dirty.swap(batcher_.dirty);
  // Two passes: apply every fund movement first, then retry the queues, so
  // a drained TU can use funds applied by a later entry of the same flush.
  // Queue retries during the drain pass can refund into the batcher again;
  // the totals were reset in the first pass, so those land in a new epoch.
  // SPLICER_LINT_ALLOW(hotpath-alloc): per-epoch flush scratch — grows with
  // this epoch's settled channels, once per settlement boundary.
  std::vector<std::pair<ChannelId, pcn::Direction>> to_drain;
  for (const std::size_t idx : dirty) {
    auto& p = batcher_.pending[idx];
    const ChannelId channel = channel_of(idx);
    const pcn::Direction d = direction_of(idx);
    auto& ch = network_.channel(channel);
    if (p.settle_ops > 0 || p.refund_ops > 0) mark_channel_dirty(channel);
    if (p.settle_ops > 0) {
      ch.settle_n(d, p.settle_total, p.settle_ops);
      // The receiving side gained spendable funds: opposite direction.
      to_drain.emplace_back(channel, pcn::opposite(d));
    }
    if (p.refund_ops > 0) {
      ch.refund_n(d, p.refund_total, p.refund_ops);
      // The payer side regained spendable funds: same direction.
      to_drain.emplace_back(channel, d);
    }
    p = PendingSettlement{};
  }
  if (!drain) return;
  for (const auto& [channel, dir] : to_drain) drain_queue(channel, dir);

  // Wake every rate-blocked queue; drains that are still blocked (or block
  // again) re-register for the next flush via schedule_drain.
  // SPLICER_LINT_ALLOW(hotpath-alloc): swap-steal — an empty vector
  // allocates nothing; once per settlement epoch.
  std::vector<std::size_t> blocked;
  blocked.swap(batcher_.blocked_queues);
  for (const std::size_t idx : blocked) {
    directed_[idx].drain_pending = false;
    drain_queue(channel_of(idx), direction_of(idx));
  }

  // Retry atomic-mode TUs that were waiting on a processing slot; a retry
  // that is still blocked re-defers itself onto the next flush.
  // SPLICER_LINT_ALLOW(hotpath-alloc): swap-steal — an empty vector
  // allocates nothing; once per settlement epoch.
  std::vector<TuId> deferred;
  deferred.swap(batcher_.deferred_tus);
  for (const TuId id : deferred) attempt_hop(id);
}

void Engine::check_queue_invariant(ChannelId channel, pcn::Direction d) const {
  const auto& ds = directed(channel, d);
  Amount sum = 0;
  for (const auto& entry : ds.queue) {
    sum += entry.amount;
    const LiveTu* live = live_.find(entry.id);
    if (live != nullptr &&
        live->tu.hop_amounts[live->tu.next_hop] != entry.amount) {
      throw std::logic_error(
          "Engine: queued amount diverged from the TU's hop amount");
    }
  }
  if (sum != ds.queued_value) {
    throw std::logic_error("Engine: queued_value drifted from queue contents");
  }
}

void Engine::on_payment_deadline(PaymentId id) {
  PaymentState* state_ptr = states_.find(id);
  if (state_ptr == nullptr) return;  // never arrived (should not happen)
  auto& state = *state_ptr;
  // Fired: the generation counter already invalidated the event id, so a
  // late cancel_deadline_event is a detected no-op.
  state.deadline_pending = false;
  if (!state.active()) {
    // Per-hop mode resolves payments without cancelling the deadline event
    // (the epoch-0 event stream must stay untouched); its no-op firing is
    // the last reference, so the state can finally go.
    maybe_evict(id);
    return;
  }
  state.failed = true;
  --active_payments_;
  ++metrics_.payments_failed;
  ++metrics_.payment_fail_reasons[static_cast<std::size_t>(FailReason::kTimeout)];
  ++metrics_.messages.control_messages;  // withdraw notice
  fold_resolution(state);
  router_.on_payment_timeout(*this, id);
  maybe_evict(id);
}

}  // namespace splicer::routing
