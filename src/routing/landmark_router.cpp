#include "routing/landmark_router.h"

#include <algorithm>
#include <queue>

#include "graph/metrics.h"
#include "routing/path_filter.h"

namespace splicer::routing {

void LandmarkRouter::on_start(Engine& engine) {
  const auto& g = engine.network().topology();
  landmarks_ = graph::nodes_by_degree(g);
  landmarks_.resize(std::min(config_.landmark_count, landmarks_.size()));

  parent_.assign(landmarks_.size(), {});
  parent_edge_.assign(landmarks_.size(), {});
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    auto& parent = parent_[i];
    auto& parent_edge = parent_edge_[i];
    parent.assign(g.node_count(), graph::kInvalidNode);
    parent_edge.assign(g.node_count(), graph::kInvalidEdge);
    std::queue<NodeId> frontier;
    parent[landmarks_[i]] = landmarks_[i];
    frontier.push(landmarks_[i]);
    while (!frontier.empty()) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const auto& half : g.neighbors(u)) {
        if (parent[half.to] == graph::kInvalidNode) {
          parent[half.to] = u;
          parent_edge[half.to] = half.edge;
          frontier.push(half.to);
        }
      }
    }
  }
}

std::optional<graph::Path> LandmarkRouter::via_landmark(const Engine& engine,
                                                        std::size_t landmark_index,
                                                        NodeId from, NodeId to) const {
  (void)engine;
  const auto& parent = parent_[landmark_index];
  const auto& parent_edge = parent_edge_[landmark_index];
  const NodeId landmark = landmarks_[landmark_index];
  if (parent[from] == graph::kInvalidNode || parent[to] == graph::kInvalidNode) {
    return std::nullopt;
  }
  // from -> landmark: walk up the BFS tree.
  graph::Path path;
  NodeId cur = from;
  path.nodes.push_back(cur);
  while (cur != landmark) {
    path.edges.push_back(parent_edge[cur]);
    cur = parent[cur];
    path.nodes.push_back(cur);
  }
  // landmark -> to: walk up from `to`, then reverse the segment.
  std::vector<NodeId> down_nodes;
  std::vector<graph::EdgeId> down_edges;
  cur = to;
  while (cur != landmark) {
    down_nodes.push_back(cur);
    down_edges.push_back(parent_edge[cur]);
    cur = parent[cur];
  }
  for (std::size_t i = down_nodes.size(); i-- > 0;) {
    path.edges.push_back(down_edges[i]);
    path.nodes.push_back(down_nodes[i]);
  }
  path.length = static_cast<double>(path.edges.size());
  return prune_loops(path);
}

graph::Path LandmarkRouter::prune_loops(const graph::Path& path) {
  // Landmark paths are a few dozen nodes at most, so a linear scan of the
  // pruned prefix beats a per-call hash map (called once per candidate
  // path per payment — hot enough that the map allocation showed up).
  graph::Path pruned;
  pruned.nodes.reserve(path.nodes.size());
  pruned.edges.reserve(path.edges.size());
  for (std::size_t i = 0; i < path.nodes.size(); ++i) {
    const NodeId node = path.nodes[i];
    const auto it = std::find(pruned.nodes.begin(), pruned.nodes.end(), node);
    if (it != pruned.nodes.end()) {
      // Cut the cycle: drop everything after the first occurrence.
      const auto keep = static_cast<std::size_t>(it - pruned.nodes.begin());
      pruned.nodes.resize(keep + 1);
      pruned.edges.resize(keep);
    } else {
      if (!pruned.nodes.empty()) pruned.edges.push_back(path.edges[i - 1]);
      pruned.nodes.push_back(node);
    }
  }
  pruned.length = static_cast<double>(pruned.edges.size());
  return pruned;
}

void LandmarkRouter::on_payment(Engine& engine, const pcn::Payment& payment) {
  std::vector<graph::Path> paths;
  // Hostile-world filter: a landmark path through a closed channel, an
  // offline node or past the timelock budget is not a candidate. The first
  // obstruction seen becomes the failure reason when nothing survives.
  std::optional<FailReason> obstruction;
  for (std::size_t i = 0; i < landmarks_.size(); ++i) {
    auto p = via_landmark(engine, i, payment.sender, payment.receiver);
    if (!p || p->edges.empty()) continue;
    if (const auto blocked = path_obstruction(
            engine.network(), *p, engine.config().hostile.timelock_budget)) {
      if (!obstruction) obstruction = blocked;
      continue;
    }
    paths.push_back(std::move(*p));
  }
  if (paths.empty()) {
    engine.fail_payment(payment.id, obstruction.value_or(FailReason::kNoPath));
    return;
  }
  retries_left_[payment.id] = config_.chunk_retries * paths.size();
  // Equal chunks, remainder on the first path.
  const auto k = static_cast<Amount>(paths.size());
  const Amount base = payment.value / k;
  for (std::size_t i = 0; i < paths.size(); ++i) {
    Amount chunk = (i == 0) ? payment.value - base * (k - 1) : base;
    if (chunk <= 0) continue;
    TransactionUnit tu;
    tu.payment = payment.id;
    tu.value = chunk;
    tu.path = paths[i];
    tu.hop_amounts.assign(paths[i].edges.size(), chunk);
    tu.deadline = payment.deadline;
    tu.path_index = i;
    engine.send_tu(std::move(tu));
  }
}

void LandmarkRouter::on_tu_failed(Engine& engine, const TransactionUnit& tu,
                                  FailReason reason) {
  (void)reason;
  // Checked lookup: a sibling chunk's synchronous failure can resolve the
  // payment — and, under the retention contract, evict its state — before
  // this TU unwinds. Evicted == resolved == nothing left to retry.
  const auto* state = engine.find_payment_state(tu.payment);
  if (state == nullptr || !state->active()) return;
  auto& retries = retries_left_[tu.payment];
  if (retries == 0) {
    engine.fail_payment(tu.payment, FailReason::kInsufficientFunds);
    return;
  }
  --retries;
  // Retry the chunk through a different landmark.
  const std::size_t next_index =
      (tu.path_index + 1 + engine.rng().index(landmarks_.size() - 1)) %
      landmarks_.size();
  auto p = via_landmark(engine, next_index, state->payment.sender,
                        state->payment.receiver);
  if (!p || p->edges.empty()) {
    engine.fail_payment(tu.payment, FailReason::kNoPath);
    return;
  }
  if (const auto blocked = path_obstruction(
          engine.network(), *p, engine.config().hostile.timelock_budget)) {
    engine.fail_payment(tu.payment, *blocked);
    return;
  }
  TransactionUnit retry;
  retry.payment = tu.payment;
  retry.value = tu.value;
  retry.path = std::move(*p);
  retry.hop_amounts.assign(retry.path.edges.size(), tu.value);
  retry.deadline = tu.deadline;
  retry.path_index = next_index;
  engine.send_tu(std::move(retry));
}

}  // namespace splicer::routing
