#pragma once

// Naive single-shortest-path atomic routing: the strawman of paper SS II-B.
// Transactions always take the one shortest path, which drains directional
// balances and produces exactly the local deadlock of Fig. 1 - the
// routing_deadlock tests and the deadlock_demo example are built on this.

#include <map>

#include "routing/engine.h"
#include "routing/router.h"

namespace splicer::routing {

class ShortestPathRouter final : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "ShortestPath"; }

  void on_payment(Engine& engine, const pcn::Payment& payment) override;
  void on_tu_failed(Engine& engine, const TransactionUnit& tu,
                    FailReason reason) override;

 private:
  std::map<std::pair<NodeId, NodeId>, graph::Path> cache_;
};

}  // namespace splicer::routing
