#pragma once

// Landmark routing baseline (used by Flare/SilentWhispers/SpeedyMurmurs-
// style schemes, paper SS V-B): k well-connected landmark nodes; each
// payment travels sender -> landmark_i -> receiver along shortest paths,
// one equal value chunk per landmark, sent atomically with no retries.

#include <optional>
#include <unordered_map>
#include <vector>

#include "routing/engine.h"
#include "routing/router.h"

namespace splicer::routing {

class LandmarkRouter final : public Router {
 public:
  struct Config {
    std::size_t landmark_count = 5;
    /// One retry of a failed chunk via a different landmark keeps the
    /// baseline from degenerating (prior landmark schemes re-route on
    /// failure); the payment still dies if the retry fails.
    std::size_t chunk_retries = 1;
  };

  LandmarkRouter() : LandmarkRouter(Config{}) {}
  explicit LandmarkRouter(Config config) : config_(config) {}

  [[nodiscard]] std::string name() const override { return "Landmark"; }

  void on_start(Engine& engine) override;
  void on_payment(Engine& engine, const pcn::Payment& payment) override;
  void on_tu_failed(Engine& engine, const TransactionUnit& tu,
                    FailReason reason) override;
  void on_payment_resolved(Engine& engine, PaymentId payment) override {
    (void)engine;
    // on_tu_failed consults retries_left_ only while the payment is active,
    // which can't recur once the payment is quiescent.
    retries_left_.erase(payment);
  }

  /// Payments still holding a retries_left_ entry (tests: 0 post-run).
  [[nodiscard]] std::size_t tracked_payments() const noexcept {
    return retries_left_.size();
  }

  /// Exposed for tests: the via-landmark path with loops pruned.
  [[nodiscard]] static graph::Path prune_loops(const graph::Path& path);

 private:
  [[nodiscard]] std::optional<graph::Path> via_landmark(const Engine& engine,
                                                        std::size_t landmark_index,
                                                        NodeId from, NodeId to) const;

  Config config_;
  std::vector<NodeId> landmarks_;
  // Per landmark: BFS parent forest (parent node + connecting edge).
  std::vector<std::vector<NodeId>> parent_;
  std::vector<std::vector<graph::EdgeId>> parent_edge_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed lookup/erase by PaymentId only,
  // never iterated; retry bookkeeping order cannot reach the event stream.
  std::unordered_map<PaymentId, std::size_t> retries_left_;
};

}  // namespace splicer::routing
