#include "graph/metrics.h"

#include <algorithm>
#include <numeric>

#include "graph/shortest_path.h"

namespace splicer::graph {

std::vector<NodeId> connected_components(const Graph& g) {
  std::vector<NodeId> reps;
  std::vector<char> visited(g.node_count(), 0);
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < g.node_count(); ++start) {
    if (visited[start]) continue;
    reps.push_back(start);
    visited[start] = 1;
    stack.push_back(start);
    while (!stack.empty()) {
      const NodeId u = stack.back();
      stack.pop_back();
      for (const auto& half : g.neighbors(u)) {
        if (!visited[half.to]) {
          visited[half.to] = 1;
          stack.push_back(half.to);
        }
      }
    }
  }
  return reps;
}

bool is_connected(const Graph& g) {
  return g.node_count() <= 1 || connected_components(g).size() == 1;
}

double average_clustering(const Graph& g) {
  if (g.node_count() == 0) return 0.0;
  double total = 0.0;
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const auto& nbrs = g.neighbors(u);
    if (nbrs.size() < 2) continue;
    std::size_t closed = 0;
    for (std::size_t i = 0; i < nbrs.size(); ++i) {
      for (std::size_t j = i + 1; j < nbrs.size(); ++j) {
        if (g.has_edge(nbrs[i].to, nbrs[j].to)) ++closed;
      }
    }
    const double possible =
        static_cast<double>(nbrs.size()) * static_cast<double>(nbrs.size() - 1) / 2.0;
    total += static_cast<double>(closed) / possible;
  }
  return total / static_cast<double>(g.node_count());
}

HopMatrix::HopMatrix(const Graph& g) : n_(g.node_count()) {
  data_.assign(n_ * n_, kUnreachableHops);
  for (NodeId src = 0; src < n_; ++src) {
    const auto hops = bfs_hops(g, src);
    for (NodeId dst = 0; dst < n_; ++dst) {
      if (hops[dst] >= 0) {
        data_[static_cast<std::size_t>(src) * n_ + dst] =
            static_cast<std::uint16_t>(hops[dst]);
      }
    }
  }
}

double HopMatrix::mean_hops() const {
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t a = 0; a < n_; ++a) {
    for (std::size_t b = a + 1; b < n_; ++b) {
      const auto h = data_[a * n_ + b];
      if (h != kUnreachableHops) {
        sum += h;
        ++count;
      }
    }
  }
  return count ? sum / static_cast<double>(count) : 0.0;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats stats;
  if (g.node_count() == 0) return stats;
  stats.min = g.degree(0);
  for (NodeId u = 0; u < g.node_count(); ++u) {
    const std::size_t d = g.degree(u);
    stats.mean += static_cast<double>(d);
    stats.min = std::min(stats.min, d);
    stats.max = std::max(stats.max, d);
  }
  stats.mean /= static_cast<double>(g.node_count());
  return stats;
}

std::vector<NodeId> nodes_by_degree(const Graph& g) {
  std::vector<NodeId> nodes(g.node_count());
  std::iota(nodes.begin(), nodes.end(), 0);
  std::stable_sort(nodes.begin(), nodes.end(), [&](NodeId a, NodeId b) {
    if (g.degree(a) != g.degree(b)) return g.degree(a) > g.degree(b);
    return a < b;
  });
  return nodes;
}

}  // namespace splicer::graph
