#include "graph/widest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

namespace splicer::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

[[nodiscard]] double capacity_of(const Graph& g, EdgeId e,
                                 const WidestOptions& options) {
  return options.capacities ? (*options.capacities)[e] : g.edge(e).capacity;
}
}  // namespace

std::optional<Path> widest_path(const Graph& g, NodeId src, NodeId dst,
                                const WidestOptions& options) {
  if (src == dst) {
    Path trivial;
    trivial.nodes.push_back(src);
    return trivial;
  }
  std::vector<double> width(g.node_count(), -1.0);
  std::vector<int> hops(g.node_count(), 0);
  std::vector<NodeId> parent(g.node_count(), kInvalidNode);
  std::vector<EdgeId> parent_edge(g.node_count(), kInvalidEdge);

  // Max-heap on (width, -hops).
  using Item = std::tuple<double, int, NodeId>;
  std::priority_queue<Item> heap;
  width.at(src) = kInf;
  heap.emplace(kInf, 0, src);

  while (!heap.empty()) {
    const auto [w, negated_hops, u] = heap.top();
    heap.pop();
    if (w < width[u] || (w == width[u] && -negated_hops > hops[u])) continue;
    for (const auto& half : g.neighbors(u)) {
      if (options.disabled_edges && (*options.disabled_edges)[half.edge]) continue;
      const double through = std::min(w, capacity_of(g, half.edge, options));
      const int nh = hops[u] + 1;
      if (through > width[half.to] ||
          (through == width[half.to] && nh < hops[half.to])) {
        width[half.to] = through;
        hops[half.to] = nh;
        parent[half.to] = u;
        parent_edge[half.to] = half.edge;
        heap.emplace(through, -nh, half.to);
      }
    }
  }
  if (width[dst] < 0.0) return std::nullopt;

  Path path;
  NodeId cur = dst;
  while (cur != src) {
    path.nodes.push_back(cur);
    path.edges.push_back(parent_edge[cur]);
    cur = parent[cur];
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  path.length = static_cast<double>(path.edges.size());
  return path;
}

namespace {
void dfs_widest(const Graph& g, NodeId u, NodeId dst, double bottleneck,
                std::vector<char>& visited, double& best) {
  if (u == dst) {
    best = std::max(best, bottleneck);
    return;
  }
  for (const auto& half : g.neighbors(u)) {
    if (visited[half.to]) continue;
    visited[half.to] = 1;
    dfs_widest(g, half.to, dst,
               std::min(bottleneck, g.edge(half.edge).capacity), visited, best);
    visited[half.to] = 0;
  }
}
}  // namespace

double brute_force_widest_bottleneck(const Graph& g, NodeId src, NodeId dst) {
  std::vector<char> visited(g.node_count(), 0);
  visited.at(src) = 1;
  double best = -1.0;
  dfs_widest(g, src, dst, kInf, visited, best);
  return best;
}

}  // namespace splicer::graph
