#pragma once

// Undirected weighted graph with stable edge identifiers.
//
// PCN topology is undirected (a payment channel can forward in both
// directions); per-direction state (balances, prices, queues) lives in
// pcn::Network keyed by (EdgeId, direction). Each edge carries
//   weight   - routing length (hops by default, 1.0), and
//   capacity - total channel funds, used by widest-path / max-flow.

#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

namespace splicer::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr EdgeId kInvalidEdge = std::numeric_limits<EdgeId>::max();

/// Adjacency entry: neighbour plus the connecting edge.
struct HalfEdge {
  NodeId to;
  EdgeId edge;
};

class Graph {
 public:
  struct Edge {
    NodeId u;
    NodeId v;
    double weight;
    double capacity;
  };

  explicit Graph(std::size_t node_count);

  [[nodiscard]] std::size_t node_count() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t edge_count() const noexcept { return edges_.size(); }

  /// Adds an undirected edge; returns its id. Parallel edges are allowed
  /// (the PCN model does not create them, but the graph does not forbid).
  EdgeId add_edge(NodeId u, NodeId v, double weight = 1.0, double capacity = 1.0);

  [[nodiscard]] const Edge& edge(EdgeId e) const { return edges_.at(e); }
  [[nodiscard]] std::span<const HalfEdge> neighbors(NodeId n) const {
    return adjacency_.at(n);
  }
  [[nodiscard]] std::size_t degree(NodeId n) const { return adjacency_.at(n).size(); }

  /// The endpoint of `e` that is not `from`.
  [[nodiscard]] NodeId other_end(EdgeId e, NodeId from) const;

  void set_weight(EdgeId e, double weight) {
    edges_.at(e).weight = weight;
    // Conservative: a differing write clears the uniform flag for good
    // (restoring uniformity by rewriting every edge is not tracked).
    if (weight != uniform_weight_) uniform_weight_ = 0.0;
  }
  void set_capacity(EdgeId e, double capacity) { edges_.at(e).capacity = capacity; }

  /// The weight shared by every edge when all weights are equal and
  /// positive; 0.0 otherwise (no edges, mixed weights, or non-positive).
  /// Maintained incrementally so shortest-path callers can pick the
  /// uniform-weight fast path without scanning the edge list per query.
  [[nodiscard]] double uniform_positive_weight() const noexcept {
    return uniform_weight_;
  }

  /// First edge between u and v, or kInvalidEdge.
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const {
    return find_edge(u, v) != kInvalidEdge;
  }

  /// Globally unique stamp of this graph's edge structure: assigned fresh
  /// (from a process-wide counter) at construction and on every add_edge,
  /// and shared only by copies — equal versions imply equal adjacency.
  /// Traversal kernels key flattened-adjacency caches on it so repeated
  /// queries against the same topology skip the per-node vector chase
  /// (see shortest_path.cpp) without the graph owning any mutable cache.
  [[nodiscard]] std::uint64_t structure_version() const noexcept {
    return version_;
  }

 private:
  std::vector<Edge> edges_;
  std::vector<std::vector<HalfEdge>> adjacency_;
  double uniform_weight_ = 0.0;  // see uniform_positive_weight()
  std::uint64_t version_ = 0;    // see structure_version()
};

/// A simple (loop-free) path. `nodes` has one more element than `edges`;
/// `length` is the sum of edge weights. An empty path (s == t) has no edges.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<EdgeId> edges;
  double length = 0.0;

  [[nodiscard]] std::size_t hop_count() const noexcept { return edges.size(); }
  [[nodiscard]] bool empty() const noexcept { return edges.empty(); }
  [[nodiscard]] NodeId source() const { return nodes.front(); }
  [[nodiscard]] NodeId target() const { return nodes.back(); }

  /// Minimum edge capacity along the path; +inf for an empty path.
  [[nodiscard]] double bottleneck(const Graph& g) const;

  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Path& a, const Path& b) {
    return a.nodes == b.nodes && a.edges == b.edges;
  }
};

/// Validates internal consistency (endpoints chain, edges exist); used by
/// tests and debug assertions.
[[nodiscard]] bool is_valid_path(const Graph& g, const Path& p);

}  // namespace splicer::graph
