#pragma once

// Edmonds-Karp max-flow with flow-path decomposition. Flash (CoNEXT '19)
// routes "elephant" payments along max-flow paths probed from current
// channel balances; this module is that substrate.

#include <vector>

#include "graph/graph.h"

namespace splicer::graph {

/// One decomposed flow path with the amount it carries.
struct FlowPath {
  Path path;
  double flow = 0.0;
};

struct MaxFlowResult {
  double total_flow = 0.0;
  std::vector<FlowPath> paths;  // BFS augmenting paths in discovery order
};

/// Max flow from src to dst. Undirected edges are modelled as a pair of
/// anti-parallel arcs whose capacities can differ via `forward_capacity` /
/// `backward_capacity` overrides (PCN channels have per-direction balances;
/// "forward" means u->v of the stored edge). With no overrides both
/// directions use edge.capacity.
///
/// `flow_limit` stops early once that much flow is found (Flash does not
/// need the full max flow, just enough for the payment); `max_paths` bounds
/// the number of augmenting paths.
struct MaxFlowOptions {
  const std::vector<double>* forward_capacity = nullptr;
  const std::vector<double>* backward_capacity = nullptr;
  double flow_limit = -1.0;      // < 0 = unlimited
  std::size_t max_paths = 0;     // 0 = unlimited
};

[[nodiscard]] MaxFlowResult max_flow(const Graph& g, NodeId src, NodeId dst,
                                     const MaxFlowOptions& options = {});

}  // namespace splicer::graph
