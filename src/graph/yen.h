#pragma once

// Yen's k-shortest loopless paths. This is the "KSP" path type of the
// paper's Table II and the path generator behind the "Heuristic"
// (fund-richest) type, which runs Yen under a 1/(capacity+1) edge weight.

#include <vector>

#include "graph/graph.h"
#include "graph/shortest_path.h"

namespace splicer::graph {

/// Up to k loopless shortest paths in non-decreasing length order. Fewer
/// than k are returned when the graph does not contain k distinct simple
/// paths. `weights` optionally overrides edge weights (non-negative).
[[nodiscard]] std::vector<Path> yen_ksp(const Graph& g, NodeId src, NodeId dst,
                                        std::size_t k,
                                        const std::vector<double>* weights = nullptr);

/// Table II "Heuristic": k feasible paths with the highest channel funds;
/// implemented as Yen under weight 1/(capacity+1) so fund-rich channels are
/// preferred. Paths may share edges.
[[nodiscard]] std::vector<Path> highest_fund_paths(const Graph& g, NodeId src,
                                                   NodeId dst, std::size_t k);

}  // namespace splicer::graph
