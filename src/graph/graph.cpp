#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <sstream>
#include <stdexcept>

namespace splicer::graph {

namespace {
/// Process-wide structure-version source. Relaxed is enough: the counter
/// only needs uniqueness, and the value never orders anything observable
/// (cache keys rebuild identical content for identical structures).
std::uint64_t next_structure_version() noexcept {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

Graph::Graph(std::size_t node_count)
    : adjacency_(node_count), version_(next_structure_version()) {}

EdgeId Graph::add_edge(NodeId u, NodeId v, double weight, double capacity) {
  if (u >= node_count() || v >= node_count()) {
    throw std::out_of_range("Graph::add_edge: node out of range");
  }
  if (u == v) throw std::invalid_argument("Graph::add_edge: self-loop");
  version_ = next_structure_version();
  const auto id = static_cast<EdgeId>(edges_.size());
  if (edges_.empty()) {
    uniform_weight_ = weight > 0 ? weight : 0.0;
  } else if (weight != uniform_weight_) {
    uniform_weight_ = 0.0;
  }
  edges_.push_back(Edge{u, v, weight, capacity});
  adjacency_[u].push_back(HalfEdge{v, id});
  adjacency_[v].push_back(HalfEdge{u, id});
  return id;
}

NodeId Graph::other_end(EdgeId e, NodeId from) const {
  const Edge& rec = edges_.at(e);
  if (rec.u == from) return rec.v;
  if (rec.v == from) return rec.u;
  throw std::invalid_argument("Graph::other_end: node not on edge");
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const {
  const auto& smaller =
      adjacency_.at(u).size() <= adjacency_.at(v).size() ? adjacency_[u] : adjacency_[v];
  const NodeId want = (&smaller == &adjacency_[u]) ? v : u;
  for (const auto& half : smaller) {
    if (half.to == want) return half.edge;
  }
  return kInvalidEdge;
}

double Path::bottleneck(const Graph& g) const {
  double result = std::numeric_limits<double>::infinity();
  for (const EdgeId e : edges) result = std::min(result, g.edge(e).capacity);
  return result;
}

std::string Path::to_string() const {
  std::ostringstream out;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (i) out << " -> ";
    out << nodes[i];
  }
  return out.str();
}

bool is_valid_path(const Graph& g, const Path& p) {
  if (p.nodes.empty()) return false;
  if (p.nodes.size() != p.edges.size() + 1) return false;
  for (std::size_t i = 0; i < p.edges.size(); ++i) {
    if (p.edges[i] >= g.edge_count()) return false;
    const auto& e = g.edge(p.edges[i]);
    const NodeId a = p.nodes[i];
    const NodeId b = p.nodes[i + 1];
    if (!((e.u == a && e.v == b) || (e.u == b && e.v == a))) return false;
  }
  // Simple path: no repeated nodes.
  std::vector<NodeId> sorted = p.nodes;
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace splicer::graph
