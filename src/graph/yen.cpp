#include "graph/yen.h"

#include <algorithm>
#include <set>

namespace splicer::graph {

namespace {

/// Total order for the candidate set: by length, then lexicographic nodes
/// (deterministic across platforms).
struct PathLess {
  bool operator()(const Path& a, const Path& b) const {
    if (a.length != b.length) return a.length < b.length;
    return a.nodes < b.nodes;
  }
};

}  // namespace

std::vector<Path> yen_ksp(const Graph& g, NodeId src, NodeId dst, std::size_t k,
                          const std::vector<double>* weights) {
  std::vector<Path> result;
  if (k == 0 || src == dst) return result;

  DijkstraOptions base_options;
  base_options.weights = weights;
  auto first = shortest_path(g, src, dst, base_options);
  if (!first) return result;
  result.push_back(std::move(*first));

  std::set<Path, PathLess> candidates;
  std::vector<char> edge_mask(g.edge_count(), 0);
  std::vector<char> node_mask(g.node_count(), 0);

  while (result.size() < k) {
    const Path& prev = result.back();
    // Spur from every node of the previous path except the last.
    for (std::size_t i = 0; i + 1 < prev.nodes.size(); ++i) {
      const NodeId spur_node = prev.nodes[i];

      std::fill(edge_mask.begin(), edge_mask.end(), 0);
      std::fill(node_mask.begin(), node_mask.end(), 0);

      // Remove edges that would recreate an already-found path sharing the
      // same root prefix.
      for (const Path& found : result) {
        if (found.nodes.size() > i &&
            std::equal(prev.nodes.begin(), prev.nodes.begin() + static_cast<std::ptrdiff_t>(i) + 1,
                       found.nodes.begin())) {
          if (i < found.edges.size()) edge_mask[found.edges[i]] = 1;
        }
      }
      // Remove root-path nodes (except the spur node) to keep paths simple.
      for (std::size_t j = 0; j < i; ++j) node_mask[prev.nodes[j]] = 1;

      DijkstraOptions options;
      options.weights = weights;
      options.disabled_edges = &edge_mask;
      options.disabled_nodes = &node_mask;
      auto spur = shortest_path(g, spur_node, dst, options);
      if (!spur) continue;

      // total = root prefix + spur.
      Path total;
      total.nodes.assign(prev.nodes.begin(), prev.nodes.begin() + static_cast<std::ptrdiff_t>(i));
      total.edges.assign(prev.edges.begin(), prev.edges.begin() + static_cast<std::ptrdiff_t>(i));
      total.nodes.insert(total.nodes.end(), spur->nodes.begin(), spur->nodes.end());
      total.edges.insert(total.edges.end(), spur->edges.begin(), spur->edges.end());
      total.length = 0.0;
      for (const EdgeId e : total.edges) {
        total.length += weights ? (*weights)[e] : g.edge(e).weight;
      }
      if (std::find(result.begin(), result.end(), total) == result.end()) {
        candidates.insert(std::move(total));
      }
    }
    if (candidates.empty()) break;
    result.push_back(*candidates.begin());
    candidates.erase(candidates.begin());
  }
  return result;
}

std::vector<Path> highest_fund_paths(const Graph& g, NodeId src, NodeId dst,
                                     std::size_t k) {
  std::vector<double> inverse_fund(g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    inverse_fund[e] = 1.0 / (g.edge(e).capacity + 1.0);
  }
  auto paths = yen_ksp(g, src, dst, k, &inverse_fund);
  // Report true hop length, not the synthetic weight.
  for (auto& p : paths) {
    p.length = 0.0;
    for (const EdgeId e : p.edges) p.length += g.edge(e).weight;
  }
  return paths;
}

}  // namespace splicer::graph
