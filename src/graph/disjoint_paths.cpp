#include "graph/disjoint_paths.h"

#include <set>

#include "graph/shortest_path.h"
#include "graph/widest_path.h"
#include "graph/yen.h"

namespace splicer::graph {

const char* to_string(PathType type) noexcept {
  switch (type) {
    case PathType::kShortest: return "KSP";
    case PathType::kHeuristic: return "Heuristic";
    case PathType::kEdgeDisjointWidest: return "EDW";
    case PathType::kEdgeDisjointShortest: return "EDS";
  }
  return "?";
}

std::vector<Path> edge_disjoint_shortest_paths(const Graph& g, NodeId src,
                                               NodeId dst, std::size_t k) {
  std::vector<Path> result;
  // Reused scratch: the k-path selectors run once per (src, dst) pair but
  // thousands of pairs per experiment; the per-call edge-mask allocation
  // was measurable on the pair-setup hot path.
  static thread_local std::vector<char> disabled;
  disabled.assign(g.edge_count(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    DijkstraOptions options;
    options.disabled_edges = &disabled;
    auto p = shortest_path(g, src, dst, options);
    if (!p || p->empty()) break;
    for (const EdgeId e : p->edges) disabled[e] = 1;
    result.push_back(std::move(*p));
  }
  return result;
}

std::vector<Path> edge_disjoint_widest_paths(const Graph& g, NodeId src,
                                             NodeId dst, std::size_t k) {
  std::vector<Path> result;
  std::vector<char> disabled(g.edge_count(), 0);
  for (std::size_t i = 0; i < k; ++i) {
    WidestOptions options;
    options.disabled_edges = &disabled;
    auto p = widest_path(g, src, dst, options);
    if (!p || p->empty()) break;
    for (const EdgeId e : p->edges) disabled[e] = 1;
    result.push_back(std::move(*p));
  }
  return result;
}

std::vector<Path> select_paths(const Graph& g, NodeId src, NodeId dst,
                               std::size_t k, PathType type) {
  switch (type) {
    case PathType::kShortest: return yen_ksp(g, src, dst, k);
    case PathType::kHeuristic: return highest_fund_paths(g, src, dst, k);
    case PathType::kEdgeDisjointWidest:
      return edge_disjoint_widest_paths(g, src, dst, k);
    case PathType::kEdgeDisjointShortest:
      return edge_disjoint_shortest_paths(g, src, dst, k);
  }
  return {};
}

bool paths_edge_disjoint(const std::vector<Path>& paths) {
  std::set<EdgeId> seen;
  for (const auto& p : paths) {
    for (const EdgeId e : p.edges) {
      if (!seen.insert(e).second) return false;
    }
  }
  return true;
}

}  // namespace splicer::graph
