#include "graph/generators.h"

#include <stdexcept>

#include "graph/metrics.h"

namespace splicer::graph {

Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                     common::Rng& rng) {
  if (k % 2 != 0 || k == 0) {
    throw std::invalid_argument("watts_strogatz: k must be even and > 0");
  }
  if (k >= n) throw std::invalid_argument("watts_strogatz: k must be < n");
  Graph g(n);
  // Track existing pairs to avoid duplicate edges after rewiring.
  const auto exists = [&](NodeId a, NodeId b) { return a == b || g.has_edge(a, b); };
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto u = static_cast<NodeId>(i);
      auto v = static_cast<NodeId>((i + j) % n);
      if (rng.bernoulli(beta)) {
        // Rewire the far endpoint uniformly; keep the lattice edge if no
        // valid alternative is found quickly (dense corner case).
        for (int attempt = 0; attempt < 16; ++attempt) {
          const auto candidate = static_cast<NodeId>(rng.index(n));
          if (!exists(u, candidate)) {
            v = candidate;
            break;
          }
        }
      }
      if (!exists(u, v)) g.add_edge(u, v);
    }
  }
  patch_connectivity(g);
  return g;
}

Graph preferential_attachment(std::size_t n, std::size_t m, common::Rng& rng) {
  if (m == 0) throw std::invalid_argument("preferential_attachment: m must be > 0");
  if (n < m + 1) {
    throw std::invalid_argument("preferential_attachment: n must be > m");
  }
  Graph g(n);
  std::vector<NodeId> pool;  // node appears once per incident edge endpoint
  // Seed clique over the first m+1 nodes.
  for (std::size_t i = 0; i <= m; ++i) {
    for (std::size_t j = i + 1; j <= m; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
      pool.push_back(static_cast<NodeId>(i));
      pool.push_back(static_cast<NodeId>(j));
    }
  }
  for (std::size_t i = m + 1; i < n; ++i) {
    const auto u = static_cast<NodeId>(i);
    std::vector<NodeId> chosen;
    int guard = 0;
    while (chosen.size() < m && guard++ < 1000) {
      const NodeId v = pool[rng.index(pool.size())];
      if (v == u) continue;
      bool dup = false;
      for (const NodeId c : chosen) dup = dup || (c == v);
      if (!dup) chosen.push_back(v);
    }
    for (const NodeId v : chosen) {
      g.add_edge(u, v);
      pool.push_back(u);
      pool.push_back(v);
    }
  }
  return g;
}

Graph star(std::size_t n) {
  if (n < 2) throw std::invalid_argument("star: need >= 2 nodes");
  Graph g(n);
  for (std::size_t i = 1; i < n; ++i) g.add_edge(0, static_cast<NodeId>(i));
  return g;
}

Graph multi_star(std::size_t hubs, std::size_t clients) {
  if (hubs == 0) throw std::invalid_argument("multi_star: need >= 1 hub");
  Graph g(hubs + clients);
  for (std::size_t i = 0; i < hubs; ++i) {
    for (std::size_t j = i + 1; j < hubs; ++j) {
      g.add_edge(static_cast<NodeId>(i), static_cast<NodeId>(j));
    }
  }
  for (std::size_t c = 0; c < clients; ++c) {
    g.add_edge(static_cast<NodeId>(hubs + c), static_cast<NodeId>(c % hubs));
  }
  return g;
}

std::size_t patch_connectivity(Graph& g) {
  const auto components = connected_components(g);
  if (components.empty()) return 0;
  std::size_t added = 0;
  // components[i] holds the representative (smallest node) of component i;
  // wire every non-first representative to node 0.
  for (std::size_t i = 1; i < components.size(); ++i) {
    g.add_edge(0, components[i]);
    ++added;
  }
  return added;
}

}  // namespace splicer::graph
