#pragma once

// Topology metrics: connectivity, clustering, degree statistics, and
// all-pairs hop distances (the `hops` quantity behind the paper's placement
// costs zeta = 0.02*hops, delta = 0.01*hops, epsilon = 0.05*hops).

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace splicer::graph {

/// Representatives (smallest node id) of each connected component, in
/// ascending order. Size 1 means connected.
[[nodiscard]] std::vector<NodeId> connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Average local clustering coefficient (Watts-Strogatz diagnostic).
[[nodiscard]] double average_clustering(const Graph& g);

/// Dense all-pairs hop matrix via n BFS runs. kUnreachableHops where
/// disconnected. Memory: n^2 * 2 bytes (18 MB at n=3000).
inline constexpr std::uint16_t kUnreachableHops = 0xFFFF;

class HopMatrix {
 public:
  explicit HopMatrix(const Graph& g);

  [[nodiscard]] std::uint16_t hops(NodeId a, NodeId b) const {
    return data_[static_cast<std::size_t>(a) * n_ + b];
  }
  [[nodiscard]] std::size_t node_count() const noexcept { return n_; }

  /// Mean hops over all distinct reachable pairs.
  [[nodiscard]] double mean_hops() const;

 private:
  std::size_t n_;
  std::vector<std::uint16_t> data_;
};

struct DegreeStats {
  double mean = 0.0;
  std::size_t min = 0;
  std::size_t max = 0;
};

[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// Nodes sorted by degree descending (ties by id ascending); the candidate
/// "excellence" criterion of the trust model picks the best-connected nodes.
[[nodiscard]] std::vector<NodeId> nodes_by_degree(const Graph& g);

}  // namespace splicer::graph
