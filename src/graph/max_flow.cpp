#include "graph/max_flow.h"

#include <algorithm>
#include <limits>
#include <queue>

namespace splicer::graph {

namespace {
constexpr double kEps = 1e-9;
}

MaxFlowResult max_flow(const Graph& g, NodeId src, NodeId dst,
                       const MaxFlowOptions& options) {
  MaxFlowResult result;
  if (src == dst) return result;

  // Residual capacities per arc: arc 2e = u->v of edge e, arc 2e+1 = v->u.
  std::vector<double> residual(2 * g.edge_count());
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const double fwd =
        options.forward_capacity ? (*options.forward_capacity)[e] : g.edge(e).capacity;
    const double bwd =
        options.backward_capacity ? (*options.backward_capacity)[e] : g.edge(e).capacity;
    residual[2 * e] = fwd;
    residual[2 * e + 1] = bwd;
  }

  const auto arc_of = [&](EdgeId e, NodeId from) -> std::size_t {
    return g.edge(e).u == from ? 2 * e : 2 * e + 1;
  };

  std::vector<NodeId> parent(g.node_count());
  std::vector<EdgeId> parent_edge(g.node_count());

  while (true) {
    if (options.flow_limit >= 0.0 && result.total_flow >= options.flow_limit - kEps) break;
    if (options.max_paths != 0 && result.paths.size() >= options.max_paths) break;

    // BFS for an augmenting path in the residual graph.
    std::fill(parent.begin(), parent.end(), kInvalidNode);
    parent[src] = src;
    std::queue<NodeId> frontier;
    frontier.push(src);
    while (!frontier.empty() && parent[dst] == kInvalidNode) {
      const NodeId u = frontier.front();
      frontier.pop();
      for (const auto& half : g.neighbors(u)) {
        if (parent[half.to] != kInvalidNode) continue;
        if (residual[arc_of(half.edge, u)] <= kEps) continue;
        parent[half.to] = u;
        parent_edge[half.to] = half.edge;
        frontier.push(half.to);
      }
    }
    if (parent[dst] == kInvalidNode) break;  // no augmenting path

    // Bottleneck along the found path.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (NodeId v = dst; v != src; v = parent[v]) {
      bottleneck = std::min(bottleneck, residual[arc_of(parent_edge[v], parent[v])]);
    }
    if (options.flow_limit >= 0.0) {
      bottleneck = std::min(bottleneck, options.flow_limit - result.total_flow);
    }

    FlowPath fp;
    fp.flow = bottleneck;
    for (NodeId v = dst; v != src; v = parent[v]) {
      residual[arc_of(parent_edge[v], parent[v])] -= bottleneck;
      residual[arc_of(parent_edge[v], v)] += bottleneck;
      fp.path.nodes.push_back(v);
      fp.path.edges.push_back(parent_edge[v]);
    }
    fp.path.nodes.push_back(src);
    std::reverse(fp.path.nodes.begin(), fp.path.nodes.end());
    std::reverse(fp.path.edges.begin(), fp.path.edges.end());
    fp.path.length = static_cast<double>(fp.path.edges.size());

    result.total_flow += bottleneck;
    result.paths.push_back(std::move(fp));
  }
  return result;
}

}  // namespace splicer::graph
