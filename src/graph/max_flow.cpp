#include "graph/max_flow.h"

#include <algorithm>
#include <limits>
#include <vector>

namespace splicer::graph {

namespace {
constexpr double kEps = 1e-9;
}

MaxFlowResult max_flow(const Graph& g, NodeId src, NodeId dst,
                       const MaxFlowOptions& options) {
  MaxFlowResult result;
  if (src == dst) return result;

  // Residual capacities per arc: arc 2e = u->v of edge e, arc 2e+1 = v->u.
  // Thread-local scratch: Flash runs one max_flow per elephant payment, so
  // the per-call buffer allocations were hot-path churn.
  static thread_local std::vector<double> residual;
  residual.assign(2 * g.edge_count(), 0.0);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    const double fwd =
        options.forward_capacity ? (*options.forward_capacity)[e] : g.edge(e).capacity;
    const double bwd =
        options.backward_capacity ? (*options.backward_capacity)[e] : g.edge(e).capacity;
    residual[2 * e] = fwd;
    residual[2 * e + 1] = bwd;
  }

  const auto arc_of = [&](EdgeId e, NodeId from) -> std::size_t {
    return g.edge(e).u == from ? 2 * e : 2 * e + 1;
  };

  static thread_local std::vector<NodeId> parent;
  static thread_local std::vector<EdgeId> parent_edge;
  static thread_local std::vector<NodeId> frontier;
  parent.resize(g.node_count());
  parent_edge.resize(g.node_count());

  while (true) {
    if (options.flow_limit >= 0.0 && result.total_flow >= options.flow_limit - kEps) break;
    if (options.max_paths != 0 && result.paths.size() >= options.max_paths) break;

    // BFS for an augmenting path in the residual graph. The frontier is an
    // index-cursor vector (identical visit order to the old std::queue,
    // without a deque allocation per round).
    std::fill(parent.begin(), parent.end(), kInvalidNode);
    parent[src] = src;
    frontier.clear();
    frontier.push_back(src);
    for (std::size_t head = 0;
         head < frontier.size() && parent[dst] == kInvalidNode; ++head) {
      const NodeId u = frontier[head];
      for (const auto& half : g.neighbors(u)) {
        if (parent[half.to] != kInvalidNode) continue;
        if (residual[arc_of(half.edge, u)] <= kEps) continue;
        parent[half.to] = u;
        parent_edge[half.to] = half.edge;
        frontier.push_back(half.to);
      }
    }
    if (parent[dst] == kInvalidNode) break;  // no augmenting path

    // Bottleneck along the found path.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (NodeId v = dst; v != src; v = parent[v]) {
      bottleneck = std::min(bottleneck, residual[arc_of(parent_edge[v], parent[v])]);
    }
    if (options.flow_limit >= 0.0) {
      bottleneck = std::min(bottleneck, options.flow_limit - result.total_flow);
    }

    FlowPath fp;
    fp.flow = bottleneck;
    for (NodeId v = dst; v != src; v = parent[v]) {
      residual[arc_of(parent_edge[v], parent[v])] -= bottleneck;
      residual[arc_of(parent_edge[v], v)] += bottleneck;
      fp.path.nodes.push_back(v);
      fp.path.edges.push_back(parent_edge[v]);
    }
    fp.path.nodes.push_back(src);
    std::reverse(fp.path.nodes.begin(), fp.path.nodes.end());
    std::reverse(fp.path.edges.begin(), fp.path.edges.end());
    fp.path.length = static_cast<double>(fp.path.edges.size());

    result.total_flow += bottleneck;
    result.paths.push_back(std::move(fp));
  }
  return result;
}

}  // namespace splicer::graph
