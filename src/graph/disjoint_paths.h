#pragma once

// Edge-disjoint path sets (Table II path types "EDS" and "EDW") and the
// unified path-selection entry point used by the routers.

#include <vector>

#include "graph/graph.h"

namespace splicer::graph {

/// The four path types evaluated in Table II.
enum class PathType {
  kShortest,     // KSP: Yen k-shortest paths (may share edges)
  kHeuristic,    // k fund-richest paths (may share edges)
  kEdgeDisjointWidest,    // EDW: successive widest paths, edges removed
  kEdgeDisjointShortest,  // EDS: successive shortest paths, edges removed
};

[[nodiscard]] const char* to_string(PathType type) noexcept;

/// Up to k edge-disjoint shortest paths: repeatedly run Dijkstra and disable
/// the edges of each found path.
[[nodiscard]] std::vector<Path> edge_disjoint_shortest_paths(const Graph& g,
                                                             NodeId src, NodeId dst,
                                                             std::size_t k);

/// Up to k edge-disjoint widest paths: repeatedly run widest_path and
/// disable the edges of each found path.
[[nodiscard]] std::vector<Path> edge_disjoint_widest_paths(const Graph& g,
                                                           NodeId src, NodeId dst,
                                                           std::size_t k);

/// Dispatches on `type`; the routers call this.
[[nodiscard]] std::vector<Path> select_paths(const Graph& g, NodeId src, NodeId dst,
                                             std::size_t k, PathType type);

/// True if no edge occurs in more than one path.
[[nodiscard]] bool paths_edge_disjoint(const std::vector<Path>& paths);

}  // namespace splicer::graph
