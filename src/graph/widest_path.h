#pragma once

// Widest (maximum-bottleneck) paths. Table II's best path type "EDW"
// (edge-disjoint widest) is built from this primitive: the paper finds that
// with heavy-tailed channel sizes, widest paths utilise network capacity
// best.

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace splicer::graph {

struct WidestOptions {
  /// If non-null, edge e uses (*capacities)[e] instead of g.edge(e).capacity.
  const std::vector<double>* capacities = nullptr;
  const std::vector<char>* disabled_edges = nullptr;
};

/// Path maximising the minimum capacity along it (ties broken toward fewer
/// hops). nullopt if dst unreachable. Dijkstra on the (max, min) semiring.
[[nodiscard]] std::optional<Path> widest_path(const Graph& g, NodeId src,
                                              NodeId dst,
                                              const WidestOptions& options = {});

/// Oracle for tests: brute-force widest bottleneck via DFS enumeration
/// (exponential; only for tiny graphs).
[[nodiscard]] double brute_force_widest_bottleneck(const Graph& g, NodeId src,
                                                   NodeId dst);

}  // namespace splicer::graph
