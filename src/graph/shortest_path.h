#pragma once

// Shortest-path primitives: BFS hop counts, Dijkstra with optional per-edge
// weight overrides and edge masks (the masks are what Yen's algorithm and
// the edge-disjoint path selectors build on), and Bellman-Ford as an
// independent oracle for property tests.

#include <optional>
#include <vector>

#include "graph/graph.h"

namespace splicer::graph {

/// Hop distance from `src` to every node; -1 where unreachable.
[[nodiscard]] std::vector<int> bfs_hops(const Graph& g, NodeId src);

/// Per-call options for dijkstra().
struct DijkstraOptions {
  /// If non-null, edge e uses (*weights)[e] instead of g.edge(e).weight.
  const std::vector<double>* weights = nullptr;
  /// If non-null, edges with (*disabled_edges)[e] are skipped.
  const std::vector<char>* disabled_edges = nullptr;
  /// If non-null, nodes with (*disabled_nodes)[n] cannot be traversed
  /// (source is always allowed to start).
  const std::vector<char>* disabled_nodes = nullptr;
  /// If set, the search stops once this node is settled (popped with its
  /// final distance). A settled node's parent chain is final, so the
  /// extracted src->stop_at path is bit-identical to a full run — only
  /// dist/parent entries of nodes farther than stop_at are left unset.
  /// shortest_path() sets this; single-source callers leave it invalid.
  NodeId stop_at = kInvalidNode;
};

struct DijkstraResult {
  std::vector<double> dist;       // +inf where unreachable
  std::vector<NodeId> parent;     // kInvalidNode at source/unreachable
  std::vector<EdgeId> parent_edge;
};

/// Non-negative weights required (checked in debug; negative weights throw).
[[nodiscard]] DijkstraResult dijkstra(const Graph& g, NodeId src,
                                      const DijkstraOptions& options = {});

/// Reconstructs the path src->dst from a DijkstraResult; nullopt if
/// unreachable. `length` is re-accumulated from the effective weights.
[[nodiscard]] std::optional<Path> extract_path(const Graph& g,
                                               const DijkstraResult& result,
                                               NodeId src, NodeId dst);

/// One-shot shortest path.
[[nodiscard]] std::optional<Path> shortest_path(const Graph& g, NodeId src,
                                                NodeId dst,
                                                const DijkstraOptions& options = {});

/// Bellman-Ford distances (oracle for tests; O(n*m)).
[[nodiscard]] std::vector<double> bellman_ford(const Graph& g, NodeId src);

}  // namespace splicer::graph
