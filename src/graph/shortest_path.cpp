#include "graph/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace splicer::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

[[nodiscard]] double effective_weight(const Graph& g, EdgeId e,
                                      const DijkstraOptions& options) {
  const double w = options.weights ? (*options.weights)[e] : g.edge(e).weight;
  if (w < 0) throw std::invalid_argument("dijkstra: negative edge weight");
  return w;
}
}  // namespace

std::vector<int> bfs_hops(const Graph& g, NodeId src) {
  std::vector<int> hops(g.node_count(), -1);
  std::queue<NodeId> frontier;
  hops.at(src) = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& half : g.neighbors(u)) {
      if (hops[half.to] == -1) {
        hops[half.to] = hops[u] + 1;
        frontier.push(half.to);
      }
    }
  }
  return hops;
}

DijkstraResult dijkstra(const Graph& g, NodeId src, const DijkstraOptions& options) {
  DijkstraResult result;
  result.dist.assign(g.node_count(), kInf);
  result.parent.assign(g.node_count(), kInvalidNode);
  result.parent_edge.assign(g.node_count(), kInvalidEdge);

  using Item = std::pair<double, NodeId>;  // (dist, node)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  result.dist.at(src) = 0.0;
  heap.emplace(0.0, src);

  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > result.dist[u]) continue;  // stale entry
    for (const auto& half : g.neighbors(u)) {
      if (options.disabled_edges && (*options.disabled_edges)[half.edge]) continue;
      if (options.disabled_nodes && (*options.disabled_nodes)[half.to]) continue;
      const double nd = d + effective_weight(g, half.edge, options);
      if (nd < result.dist[half.to]) {
        result.dist[half.to] = nd;
        result.parent[half.to] = u;
        result.parent_edge[half.to] = half.edge;
        heap.emplace(nd, half.to);
      }
    }
  }
  return result;
}

std::optional<Path> extract_path(const Graph& g, const DijkstraResult& result,
                                 NodeId src, NodeId dst) {
  if (result.dist.at(dst) == kInf) return std::nullopt;
  Path path;
  NodeId cur = dst;
  while (cur != src) {
    path.nodes.push_back(cur);
    const EdgeId e = result.parent_edge[cur];
    path.edges.push_back(e);
    cur = result.parent[cur];
    if (path.nodes.size() > g.node_count()) {
      throw std::logic_error("extract_path: parent cycle");
    }
  }
  path.nodes.push_back(src);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.edges.begin(), path.edges.end());
  path.length = result.dist[dst];
  return path;
}

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const DijkstraOptions& options) {
  if (src == dst) {
    Path trivial;
    trivial.nodes.push_back(src);
    return trivial;
  }
  return extract_path(g, dijkstra(g, src, options), src, dst);
}

std::vector<double> bellman_ford(const Graph& g, NodeId src) {
  std::vector<double> dist(g.node_count(), kInf);
  dist.at(src) = 0.0;
  for (std::size_t round = 0; round + 1 < g.node_count(); ++round) {
    bool changed = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto& rec = g.edge(e);
      if (dist[rec.u] + rec.weight < dist[rec.v]) {
        dist[rec.v] = dist[rec.u] + rec.weight;
        changed = true;
      }
      if (dist[rec.v] + rec.weight < dist[rec.u]) {
        dist[rec.u] = dist[rec.v] + rec.weight;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace splicer::graph
