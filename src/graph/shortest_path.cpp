#include "graph/shortest_path.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <stdexcept>

namespace splicer::graph {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();

using HeapItem = std::pair<double, NodeId>;  // (dist, node)

/// Flattened adjacency (CSR) of one graph structure, rebuilt per
/// structure_version(): the per-node vector-of-vectors chase was the
/// dominant cache-miss source in the k-path relaxation loops. Halves are
/// appended in exactly the adjacency order, so every traversal sees the
/// identical neighbour sequence — bit-identical results. Thread-local with
/// a small pool so shard workers alternating between per-shard topologies
/// (same thread, different engines per barrier window) don't thrash.
struct CsrView {
  std::uint64_t version = 0;  // 0 = empty slot (real versions start at 1)
  std::uint64_t last_used = 0;
  std::vector<std::uint32_t> offsets;  // node -> first half index
  std::vector<HalfEdge> halves;
};

const CsrView& csr_for(const Graph& g) {
  static thread_local CsrView pool[4];
  static thread_local std::uint64_t use_clock = 0;
  const std::uint64_t version = g.structure_version();
  CsrView* slot = nullptr;
  for (auto& view : pool) {
    if (view.version == version) {
      view.last_used = ++use_clock;
      return view;
    }
    if (slot == nullptr || view.last_used < slot->last_used) slot = &view;
  }
  slot->version = version;
  slot->last_used = ++use_clock;
  slot->offsets.assign(g.node_count() + 1, 0);
  for (NodeId n = 0; n < g.node_count(); ++n) {
    slot->offsets[n + 1] =
        slot->offsets[n] + static_cast<std::uint32_t>(g.degree(n));
  }
  slot->halves.resize(slot->offsets[g.node_count()]);
  for (NodeId n = 0; n < g.node_count(); ++n) {
    std::uint32_t at = slot->offsets[n];
    for (const auto& half : g.neighbors(n)) slot->halves[at++] = half;
  }
  return *slot;
}

/// Relaxation loop with the option checks hoisted to compile time — the
/// k-path selectors call dijkstra thousands of times per run, and the
/// per-edge null checks dominated the inner loop. Pop order is the strict
/// total order on (dist, node), so every specialisation (and the old
/// std::priority_queue) yields bit-identical results.
template <bool kWeights, bool kDisabledEdges, bool kDisabledNodes>
void dijkstra_loop(const Graph& g, const DijkstraOptions& options,
                   std::vector<HeapItem>& heap, DijkstraResult& result) {
  const CsrView& csr = csr_for(g);
  const std::greater<HeapItem> later;
  while (!heap.empty()) {
    const auto [d, u] = heap.front();
    std::pop_heap(heap.begin(), heap.end(), later);
    heap.pop_back();
    if (d > result.dist[u]) continue;  // stale entry
    if (u == options.stop_at) break;   // settled: its parent chain is final
    const std::uint32_t begin = csr.offsets[u];
    const std::uint32_t end = csr.offsets[u + 1];
    for (std::uint32_t h = begin; h < end; ++h) {
      const HalfEdge half = csr.halves[h];
      if constexpr (kDisabledEdges) {
        if ((*options.disabled_edges)[half.edge]) continue;
      }
      if constexpr (kDisabledNodes) {
        if ((*options.disabled_nodes)[half.to]) continue;
      }
      const double w =
          kWeights ? (*options.weights)[half.edge] : g.edge(half.edge).weight;
      if (w < 0) throw std::invalid_argument("dijkstra: negative edge weight");
      const double nd = d + w;
      if (nd < result.dist[half.to]) {
        result.dist[half.to] = nd;
        result.parent[half.to] = u;
        result.parent_edge[half.to] = half.edge;
        heap.emplace_back(nd, half.to);
        std::push_heap(heap.begin(), heap.end(), later);
      }
    }
  }
}
}  // namespace

std::vector<int> bfs_hops(const Graph& g, NodeId src) {
  std::vector<int> hops(g.node_count(), -1);
  std::queue<NodeId> frontier;
  hops.at(src) = 0;
  frontier.push(src);
  while (!frontier.empty()) {
    const NodeId u = frontier.front();
    frontier.pop();
    for (const auto& half : g.neighbors(u)) {
      if (hops[half.to] == -1) {
        hops[half.to] = hops[u] + 1;
        frontier.push(half.to);
      }
    }
  }
  return hops;
}

namespace {
/// Uniform-weight fast path. When every edge carries the same positive
/// weight w, the heap's strict (dist, node) pop order is exactly
/// "level by level, ascending node id within a level": all level-k entries
/// pop before any level-(k+1) entry (k*w accumulates strictly), and a node
/// is only ever pushed once (relaxations strictly improve). Processing a
/// sorted level therefore performs the identical relaxation sequence —
/// same parents, same accumulated dist doubles, same early-exit cut — with
/// no heap traffic at all. The PCN topologies are hop-weighted, so this is
/// the common case for the k-path selectors.
///
/// Goal-directed cut: under uniform weights a node's (dist, parent,
/// parent_edge) are final the moment they are first assigned — every later
/// relaxation of the node offers the same level distance and fails the
/// strict `<`. So when `stop_at` is set the search can return at the
/// assignment itself, not when the node's level is processed: the parent
/// chain extract_path walks is already exactly the one the full run (and
/// the heap loop) would produce.
template <bool kDisabledEdges, bool kDisabledNodes>
void uniform_level_loop(const Graph& g, const DijkstraOptions& options,
                        double weight, NodeId src, DijkstraResult& result) {
  const CsrView& csr = csr_for(g);
  static thread_local std::vector<NodeId> level;
  static thread_local std::vector<NodeId> next;
  level.clear();
  next.clear();
  level.push_back(src);
  while (!level.empty()) {
    std::sort(level.begin(), level.end());  // the heap's within-level order
    for (const NodeId u : level) {
      if (u == options.stop_at) return;  // settled: parent chain is final
      const double d = result.dist[u];
      const std::uint32_t begin = csr.offsets[u];
      const std::uint32_t end = csr.offsets[u + 1];
      for (std::uint32_t h = begin; h < end; ++h) {
        const HalfEdge half = csr.halves[h];
        if constexpr (kDisabledEdges) {
          if ((*options.disabled_edges)[half.edge]) continue;
        }
        if constexpr (kDisabledNodes) {
          if ((*options.disabled_nodes)[half.to]) continue;
        }
        const double nd = d + weight;
        if (nd < result.dist[half.to]) {
          result.dist[half.to] = nd;
          result.parent[half.to] = u;
          result.parent_edge[half.to] = half.edge;
          if (half.to == options.stop_at) return;  // assignment is final
          next.push_back(half.to);
        }
      }
    }
    level.swap(next);
    next.clear();
  }
}

/// Shared implementation: fills `result` in place so callers with a scratch
/// result (shortest_path, called thousands of times per experiment for
/// k-path setup) reuse its capacity instead of allocating three vectors
/// per call.
void dijkstra_into(const Graph& g, NodeId src, const DijkstraOptions& options,
                   DijkstraResult& result) {
  result.dist.assign(g.node_count(), kInf);
  result.parent.assign(g.node_count(), kInvalidNode);
  result.parent_edge.assign(g.node_count(), kInvalidEdge);
  result.dist.at(src) = 0.0;

  if (options.weights == nullptr) {
    // Maintained incrementally by the Graph — no per-query edge scan.
    const double w0 = g.uniform_positive_weight();
    if (w0 > 0) {
      if (options.disabled_edges == nullptr &&
          options.disabled_nodes == nullptr) {
        uniform_level_loop<false, false>(g, options, w0, src, result);
      } else if (options.disabled_nodes == nullptr) {
        uniform_level_loop<true, false>(g, options, w0, src, result);
      } else if (options.disabled_edges == nullptr) {
        uniform_level_loop<false, true>(g, options, w0, src, result);
      } else {
        uniform_level_loop<true, true>(g, options, w0, src, result);
      }
      return;
    }
  }

  // Reused scratch heap: thread-local, so parallel experiment runs stay
  // independent.
  static thread_local std::vector<HeapItem> heap;
  heap.clear();
  heap.emplace_back(0.0, src);

  const int variant = (options.weights ? 4 : 0) |
                      (options.disabled_edges ? 2 : 0) |
                      (options.disabled_nodes ? 1 : 0);
  switch (variant) {
    case 0: dijkstra_loop<false, false, false>(g, options, heap, result); break;
    case 1: dijkstra_loop<false, false, true>(g, options, heap, result); break;
    case 2: dijkstra_loop<false, true, false>(g, options, heap, result); break;
    case 3: dijkstra_loop<false, true, true>(g, options, heap, result); break;
    case 4: dijkstra_loop<true, false, false>(g, options, heap, result); break;
    case 5: dijkstra_loop<true, false, true>(g, options, heap, result); break;
    case 6: dijkstra_loop<true, true, false>(g, options, heap, result); break;
    default: dijkstra_loop<true, true, true>(g, options, heap, result); break;
  }
}
}  // namespace

DijkstraResult dijkstra(const Graph& g, NodeId src, const DijkstraOptions& options) {
  DijkstraResult result;
  dijkstra_into(g, src, options, result);
  return result;
}

std::optional<Path> extract_path(const Graph& g, const DijkstraResult& result,
                                 NodeId src, NodeId dst) {
  if (result.dist.at(dst) == kInf) return std::nullopt;
  // Walk the parent chain once to size the buffers exactly (the walk is a
  // handful of loads; the incremental push_back growth it replaces was
  // several reallocations per extracted path).
  std::size_t hops = 0;
  for (NodeId cur = dst; cur != src; cur = result.parent[cur]) {
    if (++hops > g.node_count()) {
      throw std::logic_error("extract_path: parent cycle");
    }
  }
  Path path;
  path.nodes.resize(hops + 1);
  path.edges.resize(hops);
  NodeId cur = dst;
  for (std::size_t i = hops; i-- > 0;) {
    path.nodes[i + 1] = cur;
    path.edges[i] = result.parent_edge[cur];
    cur = result.parent[cur];
  }
  path.nodes[0] = src;
  path.length = result.dist[dst];
  return path;
}

std::optional<Path> shortest_path(const Graph& g, NodeId src, NodeId dst,
                                  const DijkstraOptions& options) {
  if (src == dst) {
    Path trivial;
    trivial.nodes.push_back(src);
    return trivial;
  }
  // Goal-directed: stop the search the moment dst settles. The extracted
  // path is identical to a full single-source run (see stop_at's contract);
  // on the k-path hot paths this cuts most of each Dijkstra. The scratch
  // result recycles its vectors across the thousands of per-pair calls.
  DijkstraOptions goal_options = options;
  goal_options.stop_at = dst;
  static thread_local DijkstraResult scratch;
  dijkstra_into(g, src, goal_options, scratch);
  return extract_path(g, scratch, src, dst);
}

std::vector<double> bellman_ford(const Graph& g, NodeId src) {
  std::vector<double> dist(g.node_count(), kInf);
  dist.at(src) = 0.0;
  for (std::size_t round = 0; round + 1 < g.node_count(); ++round) {
    bool changed = false;
    for (EdgeId e = 0; e < g.edge_count(); ++e) {
      const auto& rec = g.edge(e);
      if (dist[rec.u] + rec.weight < dist[rec.v]) {
        dist[rec.v] = dist[rec.u] + rec.weight;
        changed = true;
      }
      if (dist[rec.v] + rec.weight < dist[rec.u]) {
        dist[rec.u] = dist[rec.v] + rec.weight;
        changed = true;
      }
    }
    if (!changed) break;
  }
  return dist;
}

}  // namespace splicer::graph
