#pragma once

// Exact placement by exhaustive enumeration of candidate subsets, each
// evaluated under the Lemma-1 optimal assignment. Lemma 1 makes this a
// provably exact oracle: for every placement x the assignment is optimal,
// so scanning all 2^|V_SNC|-1 non-empty subsets scans all optima. Used as
// the "optimal" line in Fig. 9 (and to cross-check the MILP in tests) at
// candidate counts where a dense-tableau MILP would be slow.

#include <cstddef>

#include "placement/types.h"

namespace splicer::placement {

struct ExhaustiveResult {
  PlacementPlan plan;
  CostBreakdown costs;
  std::size_t subsets_evaluated = 0;
};

/// Requires candidate_count <= 24 (2^24 evaluations is already ~10^7 times
/// a Lemma-1 assignment; keep instances sensible).
[[nodiscard]] ExhaustiveResult solve_exhaustive(const PlacementInstance& instance);

}  // namespace splicer::placement
