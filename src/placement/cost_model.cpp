#include "placement/cost_model.h"

#include <stdexcept>

#include "graph/shortest_path.h"
#include "placement/assignment.h"

namespace splicer::placement {

void PlacementInstance::validate() const {
  if (candidates.empty()) throw std::invalid_argument("instance: no candidates");
  if (zeta.size() != clients.size()) throw std::invalid_argument("instance: zeta rows");
  for (const auto& row : zeta) {
    if (row.size() != candidates.size()) {
      throw std::invalid_argument("instance: zeta cols");
    }
  }
  if (delta.size() != candidates.size() || epsilon.size() != candidates.size()) {
    throw std::invalid_argument("instance: delta/epsilon rows");
  }
  for (const auto& row : delta) {
    if (row.size() != candidates.size()) {
      throw std::invalid_argument("instance: delta cols");
    }
  }
  for (const auto& row : epsilon) {
    if (row.size() != candidates.size()) {
      throw std::invalid_argument("instance: epsilon cols");
    }
  }
  if (omega < 0) throw std::invalid_argument("instance: omega < 0");
}

PlacementInstance build_instance(const graph::Graph& graph,
                                 std::vector<graph::NodeId> candidates,
                                 double omega,
                                 const CostCoefficients& coefficients) {
  PlacementInstance instance;
  instance.omega = omega;
  instance.candidates = std::move(candidates);

  std::vector<char> is_candidate(graph.node_count(), 0);
  for (const auto c : instance.candidates) is_candidate.at(c) = 1;
  for (graph::NodeId n = 0; n < graph.node_count(); ++n) {
    if (!is_candidate[n]) instance.clients.push_back(n);
  }

  // Hop distances from each candidate (cheaper than a full HopMatrix for
  // large graphs: |V_SNC| BFS runs).
  std::vector<std::vector<int>> hops_from_candidate;
  hops_from_candidate.reserve(instance.candidates.size());
  for (const auto c : instance.candidates) {
    hops_from_candidate.push_back(graph::bfs_hops(graph, c));
  }

  const auto n_cand = instance.candidates.size();
  const auto n_client = instance.clients.size();
  instance.zeta.assign(n_client, std::vector<double>(n_cand, 0.0));
  instance.delta.assign(n_cand, std::vector<double>(n_cand, 0.0));
  instance.epsilon.assign(n_cand, std::vector<double>(n_cand, 0.0));

  constexpr double kDisconnected = 1e6;  // effectively forbids assignment
  for (std::size_t m = 0; m < n_client; ++m) {
    for (std::size_t n = 0; n < n_cand; ++n) {
      const int h = hops_from_candidate[n][instance.clients[m]];
      instance.zeta[m][n] =
          h < 0 ? kDisconnected : coefficients.zeta_per_hop * h;
    }
  }
  double delta_sum = 0.0;
  std::size_t delta_pairs = 0;
  for (std::size_t n = 0; n < n_cand; ++n) {
    for (std::size_t l = 0; l < n_cand; ++l) {
      if (n == l) continue;
      const int h = hops_from_candidate[n][instance.candidates[l]];
      const double hop_cost = h < 0 ? kDisconnected : static_cast<double>(h);
      instance.delta[n][l] = coefficients.delta_per_hop * hop_cost;
      instance.epsilon[n][l] = coefficients.epsilon_per_hop * hop_cost;
      delta_sum += instance.delta[n][l];
      ++delta_pairs;
    }
  }
  if (coefficients.uniform_delta && delta_pairs > 0) {
    const double uniform = delta_sum / static_cast<double>(delta_pairs);
    for (std::size_t n = 0; n < n_cand; ++n) {
      for (std::size_t l = 0; l < n_cand; ++l) {
        if (n != l) instance.delta[n][l] = uniform;
      }
    }
  }
  instance.validate();
  return instance;
}

PlacementInstance build_instance_by_degree(const graph::Graph& graph,
                                           std::size_t candidate_count,
                                           double omega,
                                           const CostCoefficients& coefficients) {
  if (candidate_count == 0 || candidate_count > graph.node_count()) {
    throw std::invalid_argument("build_instance_by_degree: bad candidate_count");
  }
  auto by_degree = graph::nodes_by_degree(graph);
  by_degree.resize(candidate_count);
  return build_instance(graph, std::move(by_degree), omega, coefficients);
}

double management_cost(const PlacementInstance& instance, const PlacementPlan& plan) {
  double total = 0.0;
  for (std::size_t m = 0; m < instance.client_count(); ++m) {
    total += instance.zeta[m][plan.assignment.at(m)];
  }
  return total;
}

double synchronization_cost(const PlacementInstance& instance,
                            const PlacementPlan& plan) {
  // Clients managed per placed candidate.
  std::vector<double> managed(instance.candidate_count(), 0.0);
  for (std::size_t m = 0; m < instance.client_count(); ++m) {
    managed.at(plan.assignment[m]) += 1.0;
  }
  double total = 0.0;
  for (std::size_t n = 0; n < instance.candidate_count(); ++n) {
    if (!plan.placed.at(n)) continue;
    for (std::size_t l = 0; l < instance.candidate_count(); ++l) {
      if (!plan.placed.at(l)) continue;
      total += instance.delta[n][l] * managed[n] + instance.epsilon[n][l];
    }
  }
  return total;
}

CostBreakdown balance_cost(const PlacementInstance& instance,
                           const PlacementPlan& plan) {
  CostBreakdown costs;
  costs.management = management_cost(instance, plan);
  costs.synchronization = synchronization_cost(instance, plan);
  costs.balance = costs.management + instance.omega * costs.synchronization;
  return costs;
}

double empty_set_penalty(const PlacementInstance& instance) {
  // Upper bound on f over non-empty subsets: worst-case management
  // (every client at its most expensive candidate) plus full-mesh
  // synchronisation with every client on the delta-heaviest hub.
  double worst_management = 0.0;
  for (std::size_t m = 0; m < instance.client_count(); ++m) {
    double row_max = 0.0;
    for (const double z : instance.zeta[m]) row_max = std::max(row_max, z);
    worst_management += row_max;
  }
  double worst_sync = 0.0;
  for (std::size_t n = 0; n < instance.candidate_count(); ++n) {
    for (std::size_t l = 0; l < instance.candidate_count(); ++l) {
      worst_sync += instance.delta[n][l] * static_cast<double>(instance.client_count()) +
                    instance.epsilon[n][l];
    }
  }
  return worst_management + instance.omega * worst_sync + 1.0;
}

submodular::SetFunction placement_set_function(const PlacementInstance& instance) {
  instance.validate();
  submodular::SetFunction f;
  f.ground_size = instance.candidate_count();
  const double penalty = empty_set_penalty(instance);
  f.value = [&instance, penalty](const submodular::Subset& subset) {
    if (submodular::cardinality(subset) == 0) return penalty;
    const PlacementPlan plan = optimal_assignment(instance, subset);
    return balance_cost(instance, plan).balance;
  };
  return f;
}

}  // namespace splicer::placement
