#include "placement/topology_transform.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "graph/metrics.h"
#include "graph/shortest_path.h"

namespace splicer::placement {

namespace {

using graph::NodeId;
using pcn::Amount;

/// Spendable funds a node holds across all its channel sides.
Amount node_liquidity(const pcn::Network& network, NodeId node) {
  Amount total = 0;
  for (const auto& half : network.topology().neighbors(node)) {
    const auto& ch = network.channel(half.edge);
    total += ch.available(ch.direction_from(node));
  }
  // Floor so isolated/poor nodes still get a usable spoke.
  return std::max(total, common::whole_tokens(10));
}

/// Assigns every node to its nearest hub by BFS hops (hubs map to self).
/// Client assignments from `plan` take precedence (they are Lemma-1
/// optimal, which equals nearest-hub only for uniform delta).
std::vector<NodeId> assign_all_nodes(const pcn::Network& source,
                                     const PlacementInstance& instance,
                                     const PlacementPlan& plan,
                                     const std::vector<NodeId>& hubs) {
  const auto& g = source.topology();
  std::vector<NodeId> hub_of(g.node_count(), graph::kInvalidNode);
  std::vector<int> best_hops(g.node_count(), std::numeric_limits<int>::max());
  for (const NodeId hub : hubs) {
    const auto hops = graph::bfs_hops(g, hub);
    for (NodeId v = 0; v < g.node_count(); ++v) {
      if (hops[v] >= 0 && hops[v] < best_hops[v]) {
        best_hops[v] = hops[v];
        hub_of[v] = hub;
      }
    }
  }
  for (const NodeId hub : hubs) hub_of[hub] = hub;
  // Plan assignments override (instance clients only).
  for (std::size_t m = 0; m < instance.client_count(); ++m) {
    hub_of[instance.clients[m]] = instance.candidates[plan.assignment[m]];
  }
  // Disconnected stragglers go to the first hub.
  for (NodeId v = 0; v < g.node_count(); ++v) {
    if (hub_of[v] == graph::kInvalidNode) hub_of[v] = hubs.front();
  }
  return hub_of;
}

TransformResult assemble(const pcn::Network& source, std::vector<NodeId> hubs,
                         std::vector<NodeId> hub_of,
                         const TransformOptions& options) {
  const auto& g = source.topology();
  const std::size_t n = g.node_count();
  std::vector<char> is_hub(n, 0);
  for (const NodeId hub : hubs) is_hub[hub] = 1;

  graph::Graph star(n);
  std::vector<Amount> funds_ab;
  std::vector<Amount> funds_ba;

  // Spokes: one channel per non-hub node.
  for (NodeId v = 0; v < n; ++v) {
    if (is_hub[v]) continue;
    const Amount liquidity = node_liquidity(source, v);
    const auto hub_side = static_cast<Amount>(
        static_cast<double>(liquidity) * options.hub_spoke_factor);
    star.add_edge(v, hub_of[v]);
    funds_ab.push_back(liquidity);  // edge stored (v, hub): forward = v->hub
    funds_ba.push_back(hub_side);
  }

  // Trunks: aggregate original cross-region liquidity per hub pair.
  const auto hub_index = [&](NodeId hub) {
    return static_cast<std::size_t>(
        std::find(hubs.begin(), hubs.end(), hub) - hubs.begin());
  };
  std::vector<std::vector<Amount>> crossing(hubs.size(),
                                            std::vector<Amount>(hubs.size(), 0));
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    const std::size_t ru = hub_index(hub_of[edge.u]);
    const std::size_t rv = hub_index(hub_of[edge.v]);
    if (ru == rv) continue;
    const Amount total = source.channel(e).total();
    crossing[std::min(ru, rv)][std::max(ru, rv)] += total;
  }
  const Amount trunk_floor = common::tokens(options.min_trunk_side_tokens);
  // Bounded trunk degree: each hub nominates its most liquid partners; a
  // trunk is kept if either endpoint nominated it.
  std::vector<std::vector<char>> nominated(hubs.size(),
                                           std::vector<char>(hubs.size(), 0));
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    std::vector<std::size_t> partners;
    for (std::size_t j = 0; j < hubs.size(); ++j) {
      const Amount cross = crossing[std::min(i, j)][std::max(i, j)];
      if (j != i && cross > 0) partners.push_back(j);
    }
    std::sort(partners.begin(), partners.end(), [&](std::size_t a, std::size_t b) {
      const Amount ca = crossing[std::min(i, a)][std::max(i, a)];
      const Amount cb = crossing[std::min(i, b)][std::max(i, b)];
      if (ca != cb) return ca > cb;
      return a < b;
    });
    if (options.max_trunks_per_hub != 0 &&
        partners.size() > options.max_trunks_per_hub) {
      partners.resize(options.max_trunks_per_hub);
    }
    for (const auto j : partners) nominated[i][j] = 1;
  }
  std::vector<std::vector<char>> linked(hubs.size(),
                                        std::vector<char>(hubs.size(), 0));
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    for (std::size_t j = i + 1; j < hubs.size(); ++j) {
      if (crossing[i][j] <= 0) continue;
      if (!nominated[i][j] && !nominated[j][i]) continue;
      const Amount side = std::max(crossing[i][j] / 2, trunk_floor);
      star.add_edge(hubs[i], hubs[j]);
      funds_ab.push_back(side);
      funds_ba.push_back(side);
      linked[i][j] = 1;
    }
  }
  // Guarantee hub-mesh connectivity: link every hub to hub 0 if its
  // component lacks a path (cheap union-find over the trunk links).
  std::vector<std::size_t> parent(hubs.size());
  for (std::size_t i = 0; i < hubs.size(); ++i) parent[i] = i;
  const auto find = [&](std::size_t a) {
    while (parent[a] != a) a = parent[a] = parent[parent[a]];
    return a;
  };
  for (std::size_t i = 0; i < hubs.size(); ++i) {
    for (std::size_t j = i + 1; j < hubs.size(); ++j) {
      if (linked[i][j]) parent[find(i)] = find(j);
    }
  }
  for (std::size_t i = 1; i < hubs.size(); ++i) {
    if (find(i) != find(0)) {
      star.add_edge(hubs[0], hubs[i]);
      funds_ab.push_back(trunk_floor);
      funds_ba.push_back(trunk_floor);
      parent[find(i)] = find(0);
    }
  }

  TransformResult result{
      pcn::Network(std::move(star), std::move(funds_ab), std::move(funds_ba)),
      std::move(hubs), std::move(hub_of), std::move(is_hub)};
  return result;
}

}  // namespace

TransformResult build_multi_star(const pcn::Network& source,
                                 const PlacementInstance& instance,
                                 const PlacementPlan& plan,
                                 const TransformOptions& options) {
  if (plan.placed.size() != instance.candidate_count() ||
      plan.assignment.size() != instance.client_count()) {
    throw std::invalid_argument("build_multi_star: plan/instance mismatch");
  }
  std::vector<NodeId> hubs;
  for (std::size_t nn = 0; nn < instance.candidate_count(); ++nn) {
    if (plan.placed[nn]) hubs.push_back(instance.candidates[nn]);
  }
  if (hubs.empty()) throw std::invalid_argument("build_multi_star: no hubs placed");
  auto hub_of = assign_all_nodes(source, instance, plan, hubs);
  return assemble(source, std::move(hubs), std::move(hub_of), options);
}

TransformResult build_single_star(const pcn::Network& source, graph::NodeId hub,
                                  const TransformOptions& options) {
  if (hub == graph::kInvalidNode) {
    hub = graph::nodes_by_degree(source.topology()).front();
  }
  std::vector<NodeId> hubs{hub};
  std::vector<NodeId> hub_of(source.node_count(), hub);
  return assemble(source, std::move(hubs), std::move(hub_of), options);
}

}  // namespace splicer::placement
