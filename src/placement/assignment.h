#pragma once

// Lemma 1 (paper SS IV-C): given a placement x, the optimal assignment maps
// each client m to
//   argmin_{n : x_n = 1}  omega * sum_{l : x_l = 1} delta_nl + zeta_mn
// Ties break toward the smallest candidate index (deterministic).

#include "placement/types.h"
#include "submodular/set_function.h"

namespace splicer::placement {

/// Optimal assignment for the placement encoded by `placed` (size =
/// candidate_count, at least one set bit). Returns a full PlacementPlan.
[[nodiscard]] PlacementPlan optimal_assignment(const PlacementInstance& instance,
                                               const submodular::Subset& placed);

/// Per-candidate Lemma-1 assignment score omega * sum_l delta_nl + zeta_mn
/// for client m; exposed for tests.
[[nodiscard]] double assignment_score(const PlacementInstance& instance,
                                      const submodular::Subset& placed,
                                      std::size_t client, std::size_t candidate);

}  // namespace splicer::placement
