#include "placement/milp_solver.h"

#include <stdexcept>
#include <string>

#include "placement/approx_solver.h"
#include "placement/assignment.h"
#include "placement/cost_model.h"

namespace splicer::placement {

namespace {

/// Variable index bookkeeping for the linearised model.
struct Indices {
  std::size_t n_cand = 0;
  std::size_t n_client = 0;

  [[nodiscard]] int x(std::size_t n) const { return static_cast<int>(n); }
  [[nodiscard]] int y(std::size_t m, std::size_t n) const {
    return static_cast<int>(n_cand + m * n_cand + n);
  }
  [[nodiscard]] int theta(std::size_t n, std::size_t l) const {
    return static_cast<int>(n_cand + n_client * n_cand + n * n_cand + l);
  }
  [[nodiscard]] int phi(std::size_t n, std::size_t l, std::size_t m) const {
    return static_cast<int>(n_cand + n_client * n_cand + n_cand * n_cand +
                            (n * n_cand + l) * n_client + m);
  }
};

}  // namespace

lp::Model build_placement_milp(const PlacementInstance& instance,
                               MilpFormulation formulation) {
  instance.validate();
  const Indices ix{instance.candidate_count(), instance.client_count()};
  const bool faithful = formulation == MilpFormulation::kFaithful;

  lp::Model model;
  // x_n: branch first (priority 2); y_mn second (priority 1).
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    model.add_binary("x_" + std::to_string(n), /*branch_priority=*/2);
  }
  for (std::size_t m = 0; m < ix.n_client; ++m) {
    for (std::size_t n = 0; n < ix.n_cand; ++n) {
      model.add_binary("y_" + std::to_string(m) + "_" + std::to_string(n),
                       /*branch_priority=*/1);
    }
  }
  // theta_nl / phi_nlm: binary in the faithful formulation (eqs. 6-7),
  // continuous [0,1] in the tight one (they settle at the products).
  const auto aux_kind = faithful ? lp::VarKind::kBinary : lp::VarKind::kContinuous;
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    for (std::size_t l = 0; l < ix.n_cand; ++l) {
      model.add_variable("th_" + std::to_string(n) + "_" + std::to_string(l), 0.0,
                         1.0, aux_kind);
    }
  }
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    for (std::size_t l = 0; l < ix.n_cand; ++l) {
      for (std::size_t m = 0; m < ix.n_client; ++m) {
        model.add_variable("ph_" + std::to_string(n) + "_" + std::to_string(l) +
                               "_" + std::to_string(m),
                           0.0, 1.0, aux_kind);
      }
    }
  }

  // Each client assigned exactly once: sum_n y_mn = 1  (from eq. 2 setup).
  for (std::size_t m = 0; m < ix.n_client; ++m) {
    lp::LinearExpr expr;
    for (std::size_t n = 0; n < ix.n_cand; ++n) expr.push_back({ix.y(m, n), 1.0});
    model.add_constraint(std::move(expr), lp::Relation::kEqual, 1.0);
  }
  // Assignment only to placed nodes: y_mn <= x_n.
  for (std::size_t m = 0; m < ix.n_client; ++m) {
    for (std::size_t n = 0; n < ix.n_cand; ++n) {
      model.add_constraint({{ix.y(m, n), 1.0}, {ix.x(n), -1.0}},
                           lp::Relation::kLessEqual, 0.0);
    }
  }
  // (8): theta_nl >= x_n + x_l - 1  [and, faithful only, theta <= x_n, x_l].
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    for (std::size_t l = 0; l < ix.n_cand; ++l) {
      model.add_constraint(
          {{ix.x(n), 1.0}, {ix.x(l), 1.0}, {ix.theta(n, l), -1.0}},
          lp::Relation::kLessEqual, 1.0);
      if (faithful) {
        model.add_constraint({{ix.theta(n, l), 1.0}, {ix.x(n), -1.0}},
                             lp::Relation::kLessEqual, 0.0);
        model.add_constraint({{ix.theta(n, l), 1.0}, {ix.x(l), -1.0}},
                             lp::Relation::kLessEqual, 0.0);
      }
    }
  }
  // (9): phi_nlm >= theta_nl + y_mn - 1  [faithful adds the upper links].
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    for (std::size_t l = 0; l < ix.n_cand; ++l) {
      for (std::size_t m = 0; m < ix.n_client; ++m) {
        model.add_constraint({{ix.theta(n, l), 1.0},
                              {ix.y(m, n), 1.0},
                              {ix.phi(n, l, m), -1.0}},
                             lp::Relation::kLessEqual, 1.0);
        if (faithful) {
          model.add_constraint({{ix.phi(n, l, m), 1.0}, {ix.theta(n, l), -1.0}},
                               lp::Relation::kLessEqual, 0.0);
          model.add_constraint({{ix.phi(n, l, m), 1.0}, {ix.y(m, n), -1.0}},
                               lp::Relation::kLessEqual, 0.0);
        }
      }
    }
  }

  // Objective (10): C_M(y) + omega * sum_nl (sum_m delta_nl phi_nlm
  //                                          + eps_nl theta_nl).
  lp::LinearExpr objective;
  for (std::size_t m = 0; m < ix.n_client; ++m) {
    for (std::size_t n = 0; n < ix.n_cand; ++n) {
      if (instance.zeta[m][n] != 0.0) {
        objective.push_back({ix.y(m, n), instance.zeta[m][n]});
      }
    }
  }
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    for (std::size_t l = 0; l < ix.n_cand; ++l) {
      if (instance.omega * instance.epsilon[n][l] != 0.0) {
        objective.push_back({ix.theta(n, l), instance.omega * instance.epsilon[n][l]});
      }
      if (instance.delta[n][l] == 0.0) continue;
      for (std::size_t m = 0; m < ix.n_client; ++m) {
        objective.push_back({ix.phi(n, l, m), instance.omega * instance.delta[n][l]});
      }
    }
  }
  model.set_objective(std::move(objective), lp::Sense::kMinimize);
  return model;
}

namespace {

std::vector<double> plan_to_values(const PlacementInstance& instance,
                                   const PlacementPlan& plan,
                                   const lp::Model& model) {
  const Indices ix{instance.candidate_count(), instance.client_count()};
  std::vector<double> values(model.variable_count(), 0.0);
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    values[static_cast<std::size_t>(ix.x(n))] = plan.placed[n] ? 1.0 : 0.0;
  }
  for (std::size_t m = 0; m < ix.n_client; ++m) {
    values[static_cast<std::size_t>(ix.y(m, plan.assignment[m]))] = 1.0;
  }
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    for (std::size_t l = 0; l < ix.n_cand; ++l) {
      const double theta =
          (plan.placed[n] && plan.placed[l]) ? 1.0 : 0.0;
      values[static_cast<std::size_t>(ix.theta(n, l))] = theta;
      if (theta == 0.0) continue;
      for (std::size_t m = 0; m < ix.n_client; ++m) {
        if (plan.assignment[m] == n) {
          values[static_cast<std::size_t>(ix.phi(n, l, m))] = 1.0;
        }
      }
    }
  }
  return values;
}

}  // namespace

MilpResult solve_milp(const PlacementInstance& instance, const MilpOptions& options) {
  MilpResult result;
  const lp::Model model = build_placement_milp(instance, options.formulation);
  result.variables = model.variable_count();
  result.constraints = model.constraint_count();

  lp::BranchAndBoundSolver solver(options.branch_and_bound);
  if (options.warm_start_from_approximation) {
    const ApproxResult warm = solve_approx(instance);
    solver.set_warm_start(plan_to_values(instance, warm.plan, model));
  }
  const lp::Solution solution = solver.solve(model);
  result.status = solution.status;
  result.stats = solver.stats();
  if (solution.status != lp::SolveStatus::kOptimal &&
      solution.status != lp::SolveStatus::kNodeLimit) {
    return result;
  }

  const Indices ix{instance.candidate_count(), instance.client_count()};
  result.plan.placed.assign(ix.n_cand, 0);
  for (std::size_t n = 0; n < ix.n_cand; ++n) {
    result.plan.placed[n] =
        solution.values[static_cast<std::size_t>(ix.x(n))] > 0.5 ? 1 : 0;
  }
  result.plan.assignment.assign(ix.n_client, 0);
  for (std::size_t m = 0; m < ix.n_client; ++m) {
    for (std::size_t n = 0; n < ix.n_cand; ++n) {
      if (solution.values[static_cast<std::size_t>(ix.y(m, n))] > 0.5) {
        result.plan.assignment[m] = n;
        break;
      }
    }
  }
  result.costs = balance_cost(instance, result.plan);
  return result;
}

}  // namespace splicer::placement
