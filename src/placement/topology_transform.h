#pragma once

// Turns a raw client PCN plus a placement plan into the multi-star-like
// topology of Definition 1 / Fig. 2(b), modelling the trust model's
// "removal of redundant payment channels" (Fig. 4):
//
//  * every non-hub node keeps exactly one channel, to its assigned hub;
//    its original liquidity (the sum of its channel-side funds) moves onto
//    the client side of that spoke, and the hub matches it on its side;
//  * hub-hub trunk channels aggregate the funds of the original edges that
//    crossed between the two hubs' client regions (consolidated liquidity);
//    a spanning structure over hubs guarantees connectivity even if no
//    original edge crossed.
//
// Non-chosen candidates become ordinary clients, assigned by the same
// Lemma-1 rule.

#include <vector>

#include "pcn/network.h"
#include "placement/types.h"

namespace splicer::placement {

struct TransformOptions {
  /// Hub side of a client spoke = client liquidity * this factor ("hubs
  /// perform many routes, have larger capital", paper SS V-B).
  double hub_spoke_factor = 2.0;
  /// Floor for each side of a trunk channel, in tokens, so that spanning
  /// edges added purely for connectivity are usable.
  double min_trunk_side_tokens = 200.0;
  /// Each hub keeps at most this many trunk channels (its most liquid
  /// ones); 0 = unlimited (complete crossing mesh). Maintaining O(z^2)
  /// trunks is the "redundant channel" pattern Fig. 4 removes; a bounded
  /// trunk degree also gives the hub mesh real path diversity.
  std::size_t max_trunks_per_hub = 6;
};

struct TransformResult {
  pcn::Network network;
  /// Chosen hubs as topology node ids.
  std::vector<graph::NodeId> hubs;
  /// For every node: the hub managing it (hubs map to themselves).
  std::vector<graph::NodeId> hub_of;
  /// For every node: true if it is a hub.
  std::vector<char> is_hub;
};

/// `source` must be the network the instance was built from (node ids are
/// shared). The plan's assignment covers instance.clients; remaining nodes
/// (unchosen candidates) are assigned by Lemma 1.
[[nodiscard]] TransformResult build_multi_star(const pcn::Network& source,
                                               const PlacementInstance& instance,
                                               const PlacementPlan& plan,
                                               const TransformOptions& options = {});

/// Single-hub star (the A2L / TumbleBit baseline topology, Fig. 2(a)).
/// `hub` defaults to the highest-degree node when kInvalidNode. The default
/// options capitalise the tumbler at 0.75x each client's liquidity: a
/// single operator pledges finite collateral, unlike Splicer's community-
/// pledged multi-hub pool (paper trust model) - this is the "payment
/// channel balance: no" row of the paper's Table I.
[[nodiscard]] TransformResult build_single_star(
    const pcn::Network& source, graph::NodeId hub = graph::kInvalidNode,
    const TransformOptions& options = TransformOptions{0.75, 200.0});

}  // namespace splicer::placement
