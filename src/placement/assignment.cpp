#include "placement/assignment.h"

#include <limits>
#include <stdexcept>

namespace splicer::placement {

double assignment_score(const PlacementInstance& instance,
                        const submodular::Subset& placed, std::size_t client,
                        std::size_t candidate) {
  double sync = 0.0;
  for (std::size_t l = 0; l < instance.candidate_count(); ++l) {
    if (placed[l]) sync += instance.delta[candidate][l];
  }
  return instance.omega * sync + instance.zeta[client][candidate];
}

PlacementPlan optimal_assignment(const PlacementInstance& instance,
                                 const submodular::Subset& placed) {
  if (placed.size() != instance.candidate_count()) {
    throw std::invalid_argument("optimal_assignment: subset size mismatch");
  }
  if (submodular::cardinality(placed) == 0) {
    throw std::invalid_argument("optimal_assignment: empty placement");
  }
  PlacementPlan plan;
  plan.placed.assign(placed.begin(), placed.end());
  plan.assignment.resize(instance.client_count());

  // Precompute the per-candidate sync term once (same for every client).
  std::vector<double> sync_term(instance.candidate_count(), 0.0);
  for (std::size_t n = 0; n < instance.candidate_count(); ++n) {
    if (!placed[n]) continue;
    for (std::size_t l = 0; l < instance.candidate_count(); ++l) {
      if (placed[l]) sync_term[n] += instance.delta[n][l];
    }
  }
  for (std::size_t m = 0; m < instance.client_count(); ++m) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_candidate = instance.candidate_count();
    for (std::size_t n = 0; n < instance.candidate_count(); ++n) {
      if (!placed[n]) continue;
      const double score = instance.omega * sync_term[n] + instance.zeta[m][n];
      if (score < best) {
        best = score;
        best_candidate = n;
      }
    }
    plan.assignment[m] = best_candidate;
  }
  return plan;
}

}  // namespace splicer::placement
