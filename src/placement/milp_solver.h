#pragma once

// Small-scale exact placement via the paper's MILP linearisation
// (SS IV-C, eqs. 6-10):
//   theta_nl  = x_n * x_l        linearised by (8)
//   phi_nlm   = theta_nl * y_mn  linearised by (9)
//   objective  C_M(y) + omega * C_S_hat(theta, phi)   (eq. 10)
//
// Two formulations are provided:
//  * kFaithful: constraints (8)-(9) exactly as printed, theta/phi binary -
//    the paper's formulation verbatim.
//  * kTight: because delta, epsilon >= 0 and the objective minimises, the
//    upper-linking constraints (theta <= x_n etc.) are slack at any
//    optimum, so only the lower bounds theta >= x_n + x_l - 1 and
//    phi >= theta + y - 1 are kept and theta/phi relax to continuous
//    [0,1]. Provably equivalent (tests assert it); about 3x fewer rows.

#include "lp/branch_and_bound.h"
#include "placement/types.h"

namespace splicer::placement {

enum class MilpFormulation { kFaithful, kTight };

struct MilpOptions {
  MilpFormulation formulation = MilpFormulation::kTight;
  lp::BranchAndBoundOptions branch_and_bound;
  /// Warm-start branch & bound from the double-greedy approximation.
  bool warm_start_from_approximation = true;
};

struct MilpResult {
  lp::SolveStatus status = lp::SolveStatus::kInfeasible;
  PlacementPlan plan;       // valid when status == kOptimal or kNodeLimit
  CostBreakdown costs;
  lp::BranchAndBoundStats stats;
  std::size_t variables = 0;
  std::size_t constraints = 0;
};

/// Builds the MILP for `instance` (exposed for tests and the micro bench).
[[nodiscard]] lp::Model build_placement_milp(const PlacementInstance& instance,
                                             MilpFormulation formulation);

/// Solves the placement MILP exactly.
[[nodiscard]] MilpResult solve_milp(const PlacementInstance& instance,
                                    const MilpOptions& options = {});

}  // namespace splicer::placement
