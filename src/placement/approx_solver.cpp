#include "placement/approx_solver.h"

#include "placement/assignment.h"
#include "placement/cost_model.h"
#include "submodular/double_greedy.h"
#include "submodular/greedy_descent.h"

namespace splicer::placement {

namespace {

ApproxResult finish(const PlacementInstance& instance, submodular::Subset subset,
                    std::size_t oracle_calls) {
  // Guard: an empty subset cannot serve clients; fall back to the single
  // best hub (the penalty in the set function makes this unreachable in
  // practice, but stay safe).
  if (submodular::cardinality(subset) == 0) {
    double best = 0.0;
    std::size_t best_n = 0;
    for (std::size_t n = 0; n < instance.candidate_count(); ++n) {
      subset.assign(instance.candidate_count(), 0);
      subset[n] = 1;
      const auto plan = optimal_assignment(instance, subset);
      const double cost = balance_cost(instance, plan).balance;
      if (n == 0 || cost < best) {
        best = cost;
        best_n = n;
      }
    }
    subset.assign(instance.candidate_count(), 0);
    subset[best_n] = 1;
  }
  ApproxResult result;
  result.plan = optimal_assignment(instance, subset);
  result.costs = balance_cost(instance, result.plan);
  result.oracle_calls = oracle_calls;
  return result;
}

}  // namespace

ApproxResult solve_approx(const PlacementInstance& instance) {
  instance.validate();
  const auto f = placement_set_function(instance);
  const auto minimized = submodular::minimize_supermodular(f, empty_set_penalty(instance));
  return finish(instance, minimized.subset, minimized.oracle_calls);
}

ApproxResult solve_approx_randomized(const PlacementInstance& instance,
                                     common::Rng& rng) {
  instance.validate();
  const auto f = placement_set_function(instance);
  const auto minimized = submodular::minimize_supermodular_randomized(
      f, empty_set_penalty(instance), rng);
  return finish(instance, minimized.subset, minimized.oracle_calls);
}

ApproxResult solve_greedy_descent(const PlacementInstance& instance) {
  instance.validate();
  const auto f = placement_set_function(instance);
  const auto descended =
      submodular::greedy_descent(f, submodular::full_subset(instance.candidate_count()));
  return finish(instance, descended.subset, descended.oracle_calls);
}

}  // namespace splicer::placement
