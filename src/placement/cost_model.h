#pragma once

// Builds placement instances from topologies and evaluates the paper's cost
// functions. The paper's experiment parameters (SS V-A):
//   zeta_mn = 0.02 * hops_mn,  delta_nl = 0.01 * hops_nl,
//   eps_nl  = 0.05 * hops_nl.

#include "graph/metrics.h"
#include "placement/types.h"
#include "submodular/set_function.h"

namespace splicer::placement {

struct CostCoefficients {
  double zeta_per_hop = 0.02;     // management
  double delta_per_hop = 0.01;    // synchronisation, per managed client
  double epsilon_per_hop = 0.05;  // synchronisation, constant
  /// If true, delta_nl is replaced by its uniform mean over candidate
  /// pairs - the Lemma-2 condition under which f is provably supermodular.
  bool uniform_delta = false;
};

/// Instance over `graph` with the given candidate set; clients are all
/// remaining nodes. Costs derive from BFS hop counts.
[[nodiscard]] PlacementInstance build_instance(const graph::Graph& graph,
                                               std::vector<graph::NodeId> candidates,
                                               double omega,
                                               const CostCoefficients& coefficients = {});

/// Convenience: top-`candidate_count` nodes by degree become candidates
/// (the trust model's "excellence" selection).
[[nodiscard]] PlacementInstance build_instance_by_degree(
    const graph::Graph& graph, std::size_t candidate_count, double omega,
    const CostCoefficients& coefficients = {});

/// Management cost C_M (eq. 3) of a plan.
[[nodiscard]] double management_cost(const PlacementInstance& instance,
                                     const PlacementPlan& plan);

/// Synchronisation cost C_S (eq. 4) of a plan.
[[nodiscard]] double synchronization_cost(const PlacementInstance& instance,
                                          const PlacementPlan& plan);

/// Balance cost C_B (eq. 5) plus its parts.
[[nodiscard]] CostBreakdown balance_cost(const PlacementInstance& instance,
                                         const PlacementPlan& plan);

/// The set function f(X) = C_B(x_X, y(x_X)) of eq. (14): subsets of the
/// candidate set evaluated under the Lemma-1 optimal assignment. The empty
/// set (no hubs -> clients unassignable) evaluates to
/// `empty_set_penalty(instance)`.
[[nodiscard]] submodular::SetFunction placement_set_function(
    const PlacementInstance& instance);

/// An upper bound on max_X f(X) (used as f_ub when flipping minimisation
/// into submodular maximisation); also the f(empty set) penalty.
[[nodiscard]] double empty_set_penalty(const PlacementInstance& instance);

}  // namespace splicer::placement
