#pragma once

// Data model for the PCH placement problem (paper SS III-C / SS IV-B).
//
//   x_n in {0,1}  - candidate n in V_SNC becomes an actual smooth node
//   y_mn in {0,1} - client m in V_CLI is assigned to smooth node n
//   zeta_mn  - management cost of assigning m to n        (eq. 3)
//   delta_nl - per-client synchronisation cost between n,l (eq. 4)
//   eps_nl   - constant synchronisation cost between n,l   (eq. 4)
//   omega    - tradeoff weight                              (eq. 5)

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace splicer::placement {

struct PlacementInstance {
  /// Candidate smooth nodes (V_SNC) as topology node ids.
  std::vector<graph::NodeId> candidates;
  /// Clients (V_CLI) as topology node ids.
  std::vector<graph::NodeId> clients;

  /// zeta[m][n]: client index m (into `clients`) x candidate index n.
  std::vector<std::vector<double>> zeta;
  /// delta[n][l], epsilon[n][l]: candidate x candidate.
  std::vector<std::vector<double>> delta;
  std::vector<std::vector<double>> epsilon;

  double omega = 0.1;

  [[nodiscard]] std::size_t candidate_count() const noexcept { return candidates.size(); }
  [[nodiscard]] std::size_t client_count() const noexcept { return clients.size(); }

  /// Structural sanity (matrix shapes); throws std::invalid_argument.
  void validate() const;
};

/// A solved placement: which candidates are smooth nodes, and per-client
/// assignment. Indices refer to positions in the instance vectors.
struct PlacementPlan {
  std::vector<char> placed;             // size = candidate_count
  std::vector<std::size_t> assignment;  // size = client_count; candidate index

  [[nodiscard]] std::size_t hub_count() const noexcept {
    std::size_t c = 0;
    for (const char bit : placed) c += bit != 0;
    return c;
  }
};

/// Cost report for a plan (Fig. 9 plots these separately).
struct CostBreakdown {
  double management = 0.0;       // C_M (eq. 3)
  double synchronization = 0.0;  // C_S (eq. 4)
  double balance = 0.0;          // C_B = C_M + omega * C_S (eq. 5)
};

}  // namespace splicer::placement
