#pragma once

// Large-scale approximate placement (paper SS IV-C, Alg. 1): minimise the
// supermodular f(X) by maximising f_hat = f_ub - f(X) with double greedy.
// Lemma 2 guarantees supermodularity for uniform delta; on hop-derived
// (non-uniform) delta the algorithm still runs and is evaluated empirically
// (Fig. 9(a) shows it tracks the optimum closely).

#include "common/rng.h"
#include "placement/types.h"

namespace splicer::placement {

struct ApproxResult {
  PlacementPlan plan;
  CostBreakdown costs;
  std::size_t oracle_calls = 0;
};

/// Deterministic double greedy (paper Alg. 1 with the a_i >= b_i rule).
[[nodiscard]] ApproxResult solve_approx(const PlacementInstance& instance);

/// Randomised double greedy (paper Alg. 1 line 5: add with probability
/// a'/(a'+b')); 1/2-approximation of the submodular maximisation in
/// expectation.
[[nodiscard]] ApproxResult solve_approx_randomized(const PlacementInstance& instance,
                                                   common::Rng& rng);

/// Greedy-descent baseline from the full candidate set (ablation).
[[nodiscard]] ApproxResult solve_greedy_descent(const PlacementInstance& instance);

}  // namespace splicer::placement
