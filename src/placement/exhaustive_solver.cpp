#include "placement/exhaustive_solver.h"

#include <limits>
#include <stdexcept>

#include "placement/assignment.h"
#include "placement/cost_model.h"

namespace splicer::placement {

ExhaustiveResult solve_exhaustive(const PlacementInstance& instance) {
  instance.validate();
  const std::size_t n = instance.candidate_count();
  if (n > 24) throw std::invalid_argument("solve_exhaustive: too many candidates");

  ExhaustiveResult result;
  double best = std::numeric_limits<double>::infinity();
  submodular::Subset subset(n, 0);
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 1; mask < limit; ++mask) {
    for (std::size_t i = 0; i < n; ++i) subset[i] = (mask >> i) & 1 ? 1 : 0;
    const PlacementPlan plan = optimal_assignment(instance, subset);
    const CostBreakdown costs = balance_cost(instance, plan);
    ++result.subsets_evaluated;
    if (costs.balance < best) {
      best = costs.balance;
      result.plan = plan;
      result.costs = costs;
    }
  }
  return result;
}

}  // namespace splicer::placement
