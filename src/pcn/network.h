#pragma once

// Network state: topology graph + one Channel per edge. Owns a copy of the
// graph so that transformed topologies (multi-star) and raw topologies can
// coexist. Provides the funds-conservation oracle used by tests and debug
// checks.

#include <vector>

#include "common/rng.h"
#include "graph/graph.h"
#include "pcn/channel.h"
#include "pcn/types.h"

namespace splicer::pcn {

class Network {
 public:
  /// Takes the topology and explicit per-side funds (parallel to edges).
  Network(graph::Graph topology, std::vector<Amount> funds_ab,
          std::vector<Amount> funds_ba);

  /// Builds a network with per-side funds sampled from the paper's heavy-
  /// tailed channel-size distribution, multiplied by `fund_scale`
  /// (Fig. 7(a)/8(a) sweep). Also rewrites each edge's `capacity` to the
  /// channel total so path selectors see consistent static data.
  static Network with_sampled_funds(graph::Graph topology, double fund_scale,
                                    common::Rng& rng);

  /// Builds a network whose every side holds exactly `per_side`.
  static Network with_uniform_funds(graph::Graph topology, Amount per_side);

  [[nodiscard]] const graph::Graph& topology() const noexcept { return topology_; }
  [[nodiscard]] std::size_t channel_count() const noexcept { return channels_.size(); }
  [[nodiscard]] std::size_t node_count() const noexcept { return topology_.node_count(); }

  [[nodiscard]] Channel& channel(ChannelId id) { return channels_.at(id); }
  [[nodiscard]] const Channel& channel(ChannelId id) const { return channels_.at(id); }

  /// Direction of edge `id` when leaving `from`.
  [[nodiscard]] Direction direction_from(ChannelId id, NodeId from) const {
    return channels_.at(id).direction_from(from);
  }

  /// Spendable balance for `from` across edge `id`.
  [[nodiscard]] Amount available_from(ChannelId id, NodeId from) const {
    const auto& ch = channels_.at(id);
    return ch.available(ch.direction_from(from));
  }

  /// Node liveness (hostile-world fault injection). Every node starts
  /// online; an offline node refuses new forwarding attempts on all its
  /// channels (in-flight settles/refunds still complete — an outage strands
  /// no funds).
  [[nodiscard]] bool node_online(NodeId node) const {
    return node_online_.at(node) != 0;
  }
  void set_node_online(NodeId node, bool online) {
    node_online_.at(node) = online ? 1 : 0;
  }

  /// A channel accepts new locks: open and both endpoints online. The path
  /// filters (routing/path_filter.h) and the engine's attempt_hop guard
  /// share this predicate.
  [[nodiscard]] bool channel_usable(ChannelId id) const {
    const Channel& ch = channels_.at(id);
    return !ch.is_closed() && node_online(ch.node_a()) && node_online(ch.node_b());
  }

  /// Sum of all balances and locks; constant across lock/settle/refund.
  [[nodiscard]] Amount total_funds() const noexcept;

  /// Current per-direction balances as double token vectors (size =
  /// edge_count), for max-flow / widest-path overrides. forward = u->v.
  [[nodiscard]] std::vector<double> forward_balances_tokens() const;
  [[nodiscard]] std::vector<double> backward_balances_tokens() const;

 private:
  graph::Graph topology_;
  std::vector<Channel> channels_;
  std::vector<std::uint8_t> node_online_;  // 1 = online; sized to node_count
};

}  // namespace splicer::pcn
