#include "pcn/workload.h"

#include <stdexcept>

#include "pcn/traffic_source.h"

namespace splicer::pcn {

const char* to_string(WorkloadKind kind) noexcept {
  switch (kind) {
    case WorkloadKind::kSynthetic: return "synthetic";
    case WorkloadKind::kTrace: return "trace";
    case WorkloadKind::kBursty: return "bursty";
    case WorkloadKind::kHotspot: return "hotspot";
  }
  return "?";
}

WorkloadKind workload_kind_from(const std::string& name) {
  if (name == "synthetic") return WorkloadKind::kSynthetic;
  if (name == "trace") return WorkloadKind::kTrace;
  if (name == "bursty") return WorkloadKind::kBursty;
  if (name == "hotspot") return WorkloadKind::kHotspot;
  throw std::invalid_argument(
      "unknown workload kind '" + name +
      "' (expected synthetic|trace|bursty|hotspot)");
}

void WorkloadConfig::validate() const {
  // A trace replays however many rows the file holds; every generative
  // kind needs a positive target count.
  if (kind != WorkloadKind::kTrace && payment_count == 0) {
    throw std::invalid_argument("WorkloadConfig: payment_count must be > 0");
  }
  if (!(horizon_seconds > 0.0)) {
    throw std::invalid_argument("WorkloadConfig: horizon_seconds must be > 0");
  }
  if (!(timeout_seconds > 0.0)) {
    throw std::invalid_argument("WorkloadConfig: timeout_seconds must be > 0");
  }
  if (!(sink_fraction >= 0.0 && sink_fraction <= 1.0)) {
    throw std::invalid_argument(
        "WorkloadConfig: sink_fraction must be in [0, 1]");
  }
  if (!(imbalance >= 0.0 && imbalance <= 1.0)) {
    throw std::invalid_argument("WorkloadConfig: imbalance must be in [0, 1]");
  }
  if (!(value_scale > 0.0)) {
    throw std::invalid_argument("WorkloadConfig: value_scale must be > 0");
  }
  if (sender_zipf < 0.0 || receiver_zipf < 0.0) {
    throw std::invalid_argument("WorkloadConfig: zipf exponents must be >= 0");
  }
  if (kind == WorkloadKind::kTrace && trace_file.empty()) {
    throw std::invalid_argument(
        "WorkloadConfig: trace workload needs a trace_file");
  }
  if (kind == WorkloadKind::kBursty) {
    if (!(burst_period_s > 0.0)) {
      throw std::invalid_argument("WorkloadConfig: burst_period_s must be > 0");
    }
    if (!(burst_amplitude >= 0.0 && burst_amplitude <= 1.0)) {
      throw std::invalid_argument(
          "WorkloadConfig: burst_amplitude must be in [0, 1]");
    }
  }
  if (kind == WorkloadKind::kHotspot && !(hotspot_shift_interval_s > 0.0)) {
    throw std::invalid_argument(
        "WorkloadConfig: hotspot_shift_interval_s must be > 0");
  }
}

std::vector<Payment> generate_payments(const std::vector<NodeId>& clients,
                                       const WorkloadConfig& config,
                                       common::Rng& rng) {
  if (clients.size() < 2) {
    throw std::invalid_argument("generate_payments: need >= 2 clients");
  }
  // The synthetic stream consumes the RNG in exactly the order this
  // function historically drew; hand the final state back so callers that
  // keep using `rng` afterwards see an unchanged stream.
  SyntheticSource source(clients, config, rng);
  auto payments = drain(source, config.payment_count);
  rng = source.rng_state();
  return payments;
}

std::vector<Amount> net_flow_by_node(std::size_t node_count,
                                     const std::vector<Payment>& payments) {
  std::vector<Amount> net(node_count, 0);
  for (const auto& p : payments) {
    net.at(p.sender) -= p.value;
    net.at(p.receiver) += p.value;
  }
  return net;
}

}  // namespace splicer::pcn
