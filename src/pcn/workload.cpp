#include "pcn/workload.h"

#include <algorithm>
#include <stdexcept>

#include "common/samplers.h"

namespace splicer::pcn {

std::vector<Payment> generate_payments(const std::vector<NodeId>& clients,
                                       const WorkloadConfig& config,
                                       common::Rng& rng) {
  if (clients.size() < 2) {
    throw std::invalid_argument("generate_payments: need >= 2 clients");
  }
  const auto value_sampler = common::make_txn_value_sampler();
  const common::ZipfSampler sender_sampler(clients.size(), config.sender_zipf);
  const common::ZipfSampler receiver_sampler(clients.size(), config.receiver_zipf);

  // Distinct random popularity orders for senders and receivers, so the
  // hottest sender is generally not the hottest receiver.
  std::vector<NodeId> sender_order = clients;
  std::vector<NodeId> receiver_order = clients;
  rng.shuffle(sender_order);
  rng.shuffle(receiver_order);

  const std::size_t sink_count =
      std::max<std::size_t>(1, static_cast<std::size_t>(
                                   static_cast<double>(clients.size()) *
                                   config.sink_fraction));

  // Poisson arrivals with rate matched to the horizon.
  const double rate = static_cast<double>(config.payment_count) /
                      std::max(config.horizon_seconds, 1e-9);
  common::PoissonProcess arrivals(rate);

  std::vector<Payment> payments;
  payments.reserve(config.payment_count);
  for (std::size_t i = 0; i < config.payment_count; ++i) {
    Payment p;
    p.id = static_cast<PaymentId>(i + 1);
    p.sender = sender_order[sender_sampler.sample(rng)];
    if (rng.bernoulli(config.imbalance)) {
      // Route extra mass to the sink set: net funds drain toward them.
      p.receiver = receiver_order[rng.index(sink_count)];
    } else {
      p.receiver = receiver_order[receiver_sampler.sample(rng)];
    }
    if (p.receiver == p.sender) {
      // Deterministic fallback: next client in receiver order.
      const auto it = std::find(receiver_order.begin(), receiver_order.end(), p.sender);
      const auto idx = static_cast<std::size_t>(it - receiver_order.begin());
      p.receiver = receiver_order[(idx + 1) % receiver_order.size()];
    }
    p.value = common::tokens(value_sampler.sample(rng) * config.value_scale);
    p.value = std::max<Amount>(p.value, common::whole_tokens(1));
    p.arrival_time = arrivals.next(rng);
    p.deadline = p.arrival_time + config.timeout_seconds;
    payments.push_back(p);
  }
  // Arrival times are already sorted (Poisson process is monotone), but the
  // engine relies on it, so assert the invariant cheaply here.
  for (std::size_t i = 1; i < payments.size(); ++i) {
    if (payments[i].arrival_time < payments[i - 1].arrival_time) {
      throw std::logic_error("generate_payments: arrivals not monotone");
    }
  }
  return payments;
}

std::vector<Amount> net_flow_by_node(std::size_t node_count,
                                     const std::vector<Payment>& payments) {
  std::vector<Amount> net(node_count, 0);
  for (const auto& p : payments) {
    net.at(p.sender) -= p.value;
    net.at(p.receiver) += p.value;
  }
  return net;
}

}  // namespace splicer::pcn
