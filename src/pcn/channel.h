#pragma once

// A bidirectional payment channel with per-direction spendable balances and
// in-flight HTLC locks.
//
// Funds movement follows HTLC semantics (paper SS II-A): forwarding value v
// from a to b first *locks* v on a's side; when the downstream hop
// acknowledges, the lock *settles* into b's spendable balance; on failure
// or timeout the lock is *refunded* back to a. The channel total
// (balances + locks) is invariant under all three operations, which is the
// basis of the simulator's funds-conservation checks.

#include <cstdint>

#include "pcn/types.h"

namespace splicer::pcn {

/// Per-edge forwarding policy (CLoTH's channel model): a flat fee, a
/// proportional fee on the forwarded amount, the smallest admissible hop
/// amount, and the timelock cost of traversing the edge. The defaults are
/// the arithmetic identity — zero fees, no HTLC floor, unit timelock — so
/// an unmutated network behaves exactly like the pre-policy engine.
struct ChannelPolicy {
  Amount fee_base = 0;          // flat per-hop fee
  double fee_proportional = 0;  // fraction of the forwarded amount
  Amount min_htlc = 0;          // hops below this amount are rejected
  std::uint32_t timelock = 1;   // per-edge timelock cost (path-depth budget)
};

class Channel {
 public:
  /// `node_a`/`node_b` are the endpoints as stored in the topology edge
  /// (u, v); `funds_ab` is the spendable balance on a's side (usable for
  /// a -> b payments), `funds_ba` on b's side.
  Channel(NodeId node_a, NodeId node_b, Amount funds_ab, Amount funds_ba);

  [[nodiscard]] NodeId node_a() const noexcept { return node_a_; }
  [[nodiscard]] NodeId node_b() const noexcept { return node_b_; }

  /// Direction when sending out of `from`; throws if `from` is not an
  /// endpoint.
  [[nodiscard]] Direction direction_from(NodeId from) const;

  /// The node that pays (source side) in direction `d`.
  [[nodiscard]] NodeId payer(Direction d) const noexcept {
    return d == Direction::kForward ? node_a_ : node_b_;
  }
  [[nodiscard]] NodeId payee(Direction d) const noexcept {
    return d == Direction::kForward ? node_b_ : node_a_;
  }

  [[nodiscard]] Amount available(Direction d) const noexcept {
    return balance_[dir_index(d)];
  }
  [[nodiscard]] Amount locked(Direction d) const noexcept {
    return locked_[dir_index(d)];
  }
  /// Total funds in the channel (both balances + both lock pools).
  [[nodiscard]] Amount total() const noexcept {
    return balance_[0] + balance_[1] + locked_[0] + locked_[1];
  }
  /// Capacity in the paper's sense (c_ab): all funds in the channel.
  [[nodiscard]] Amount capacity() const noexcept { return total(); }

  /// Moves `value` from the payer's spendable balance into the lock pool.
  /// Returns false (no state change) if insufficient balance. value > 0.
  [[nodiscard]] bool lock(Direction d, Amount value);

  /// Settles a previously locked `value`: lock pool -> payee's balance.
  void settle(Direction d, Amount value);

  /// Refunds a previously locked `value`: lock pool -> payer's balance.
  void refund(Direction d, Amount value);

  /// Applies `count` coalesced settlements totalling `total` in one move
  /// (batched per-epoch settlement). Equivalent to `count` settle() calls;
  /// throws if `total` exceeds the lock pool.
  void settle_n(Direction d, Amount total, std::uint64_t count);

  /// Applies `count` coalesced refunds totalling `total` in one move.
  void refund_n(Direction d, Amount total, std::uint64_t count);

  /// Directly transfers spendable balance payer->payee (used for fees and
  /// for instant settlement models). Returns false if insufficient.
  [[nodiscard]] bool transfer(Direction d, Amount value);

  /// Imbalance |balance_ab - balance_ba| (diagnostics / rebalancing tests).
  [[nodiscard]] Amount imbalance() const noexcept;

  /// Count of fund-moving operations (lock/settle/refund/transfer,
  /// including the batched *_n forms) applied since construction. A cheap
  /// change stamp: two snapshots with equal generation saw no mutation in
  /// between, so any derived per-channel quantity is still valid. The
  /// engine's dirty-channel list (Engine::mark_channel_dirty) is built on
  /// the same mutation sites; incremental rate-control uses the list for
  /// per-tick work and this counter for cross-mode validation (two runs
  /// that executed identical mutation sequences end at equal generations).
  [[nodiscard]] std::uint64_t generation() const noexcept { return generation_; }

  /// Churn state: a closed channel refuses new locks at the engine level
  /// (attempt_hop fails the TU with kChannelClosed) while in-flight
  /// settles/refunds of locks taken before the close stay legal — funds
  /// never leave the channel, so conservation holds across close/reopen.
  [[nodiscard]] bool is_closed() const noexcept { return closed_; }
  void set_closed(bool closed) noexcept { closed_ = closed; }

  /// Per-edge forwarding policy (fees, HTLC floor, timelock cost).
  [[nodiscard]] const ChannelPolicy& policy() const noexcept { return policy_; }
  void set_policy(const ChannelPolicy& policy) noexcept { policy_ = policy; }

 private:
  NodeId node_a_;
  NodeId node_b_;
  Amount balance_[2];
  Amount locked_[2];
  std::uint64_t generation_ = 0;
  bool closed_ = false;
  ChannelPolicy policy_{};
};

}  // namespace splicer::pcn
