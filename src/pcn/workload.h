#pragma once

// Payment workload generation (paper SS V-A):
//  * values from the credit-card-calibrated log-normal (with a scale knob
//    for the Fig. 7(b)/8(b) transaction-size sweep),
//  * Poisson arrivals over a configurable horizon,
//  * Zipf-skewed endpoints with an explicit imbalance knob so that net
//    flows are unbalanced - the paper confirms its transactions "are
//    guaranteed to cause some local deadlocks and contain large-value
//    transactions".
//
// The paper's synthetic workload is one of several WorkloadKinds; the
// streaming source implementations live in pcn/traffic_source.h.

#include <string>
#include <vector>

#include "common/rng.h"
#include "pcn/types.h"

namespace splicer::pcn {

struct Payment {
  PaymentId id = 0;
  NodeId sender = graph::kInvalidNode;
  NodeId receiver = graph::kInvalidNode;
  Amount value = 0;
  double arrival_time = 0.0;  // seconds
  double deadline = 0.0;      // arrival + timeout
};

/// Which traffic source a workload config describes (see traffic_source.h).
enum class WorkloadKind : std::uint8_t {
  kSynthetic,  // the paper's workload: log-normal values, Zipf endpoints
  kTrace,      // CSV trace replay (time,sender,receiver,amount)
  kBursty,     // synthetic with a sinusoidal-rate (diurnal) Poisson process
  kHotspot,    // synthetic with Zipf popularity ranks rotating mid-run
};

[[nodiscard]] const char* to_string(WorkloadKind kind) noexcept;
/// Parses "synthetic" | "trace" | "bursty" | "hotspot" (CLI flag values);
/// throws std::invalid_argument on anything else.
[[nodiscard]] WorkloadKind workload_kind_from(const std::string& name);

struct WorkloadConfig {
  WorkloadKind kind = WorkloadKind::kSynthetic;
  std::size_t payment_count = 2000;
  double horizon_seconds = 30.0;   // arrivals spread over [0, horizon)
  double timeout_seconds = 3.0;    // paper: transaction timeout 3 s
  double value_scale = 1.0;        // Fig. 7(b)/8(b) sweep
  double sender_zipf = 0.6;        // endpoint popularity skew
  double receiver_zipf = 0.9;      // receivers more concentrated -> net sinks
  double imbalance = 0.15;         // extra probability mass on "sink" nodes
  double sink_fraction = 0.1;      // fraction of clients acting as sinks

  /// Streaming mode: the scenario keeps no materialised payment vector and
  /// every engine run pulls payments lazily from a fresh TrafficSource.
  bool streaming = false;

  // ---- kTrace ----------------------------------------------------------
  std::string trace_file;     // CSV path: time,sender,receiver,amount
  /// true: trace endpoint labels are opaque and get remapped onto the
  /// client set in first-seen order. false: endpoints must be numeric
  /// indices into the client set; out-of-range rows are skipped.
  bool trace_remap = true;

  // ---- kBursty ---------------------------------------------------------
  double burst_period_s = 10.0;   // sinusoid period of the arrival rate
  double burst_amplitude = 0.8;   // relative swing in [0, 1]

  // ---- kHotspot --------------------------------------------------------
  double hotspot_shift_interval_s = 8.0;  // arrival-time span between shifts
  std::size_t hotspot_rotation = 0;       // ranks rotated per shift; 0 = n/4

  /// Throws std::invalid_argument on inconsistent knobs (zero payments,
  /// non-positive horizon/timeout, sink_fraction outside [0, 1], ...).
  void validate() const;
};

/// Generates `config.payment_count` payments among `clients` (>= 2 nodes).
/// Senders and receivers are always distinct. Deterministic given `rng`
/// (implemented by draining a traffic source built for `config`; the
/// caller's rng is advanced exactly as the draining consumed it).
[[nodiscard]] std::vector<Payment> generate_payments(
    const std::vector<NodeId>& clients, const WorkloadConfig& config,
    common::Rng& rng);

/// Net flow per node (positive = net receiver), in milli-tokens; the
/// imbalance diagnostic used by tests to prove the workload is
/// deadlock-prone.
[[nodiscard]] std::vector<Amount> net_flow_by_node(std::size_t node_count,
                                                   const std::vector<Payment>& payments);

}  // namespace splicer::pcn
