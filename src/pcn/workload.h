#pragma once

// Payment workload generation (paper SS V-A):
//  * values from the credit-card-calibrated log-normal (with a scale knob
//    for the Fig. 7(b)/8(b) transaction-size sweep),
//  * Poisson arrivals over a configurable horizon,
//  * Zipf-skewed endpoints with an explicit imbalance knob so that net
//    flows are unbalanced - the paper confirms its transactions "are
//    guaranteed to cause some local deadlocks and contain large-value
//    transactions".

#include <vector>

#include "common/rng.h"
#include "pcn/types.h"

namespace splicer::pcn {

struct Payment {
  PaymentId id = 0;
  NodeId sender = graph::kInvalidNode;
  NodeId receiver = graph::kInvalidNode;
  Amount value = 0;
  double arrival_time = 0.0;  // seconds
  double deadline = 0.0;      // arrival + timeout
};

struct WorkloadConfig {
  std::size_t payment_count = 2000;
  double horizon_seconds = 30.0;   // arrivals spread over [0, horizon)
  double timeout_seconds = 3.0;    // paper: transaction timeout 3 s
  double value_scale = 1.0;        // Fig. 7(b)/8(b) sweep
  double sender_zipf = 0.6;        // endpoint popularity skew
  double receiver_zipf = 0.9;      // receivers more concentrated -> net sinks
  double imbalance = 0.15;         // extra probability mass on "sink" nodes
  double sink_fraction = 0.1;      // fraction of clients acting as sinks
};

/// Generates `config.payment_count` payments among `clients` (>= 2 nodes).
/// Senders and receivers are always distinct. Deterministic given `rng`.
[[nodiscard]] std::vector<Payment> generate_payments(
    const std::vector<NodeId>& clients, const WorkloadConfig& config,
    common::Rng& rng);

/// Net flow per node (positive = net receiver), in milli-tokens; the
/// imbalance diagnostic used by tests to prove the workload is
/// deadlock-prone.
[[nodiscard]] std::vector<Amount> net_flow_by_node(std::size_t node_count,
                                                   const std::vector<Payment>& payments);

}  // namespace splicer::pcn
