#include "pcn/traffic_source.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <numbers>
#include <stdexcept>
#include <utility>

namespace splicer::pcn {

namespace {

double synthetic_rate(const WorkloadConfig& config) {
  return static_cast<double>(config.payment_count) /
         std::max(config.horizon_seconds, 1e-9);
}

}  // namespace

// ---- VectorSource ---------------------------------------------------------

VectorSource::VectorSource(std::vector<Payment> payments)
    : owned_(std::move(payments)), view_(&owned_) {
  // The engine streams in arrival order; accept any vector and order it
  // here (stable, so equal-time payments keep their construction order —
  // and a no-op for the already-sorted generator outputs).
  std::stable_sort(owned_.begin(), owned_.end(),
                   [](const Payment& a, const Payment& b) {
                     return a.arrival_time < b.arrival_time;
                   });
  for (const auto& p : *view_) horizon_ = std::max(horizon_, p.deadline);
}

VectorSource::VectorSource(const std::vector<Payment>* payments)
    : view_(payments) {
  if (view_ == nullptr) {
    throw std::invalid_argument("VectorSource: null payment vector");
  }
  for (std::size_t i = 0; i < view_->size(); ++i) {
    if (i > 0 &&
        (*view_)[i].arrival_time < (*view_)[i - 1].arrival_time) {
      throw std::invalid_argument(
          "VectorSource: shared payment vector must be sorted by arrival");
    }
    horizon_ = std::max(horizon_, (*view_)[i].deadline);
  }
}

std::optional<Payment> VectorSource::next() {
  if (cursor_ >= view_->size()) return std::nullopt;
  return (*view_)[cursor_++];
}

std::size_t VectorSource::estimated_count() const { return view_->size(); }

void VectorSource::reset(std::uint64_t /*seed*/) { cursor_ = 0; }

// ---- SyntheticSource ------------------------------------------------------

SyntheticSource::SyntheticSource(std::vector<NodeId> clients,
                                 WorkloadConfig config, common::Rng rng)
    : clients_(std::move(clients)),
      config_(config),
      rng_(rng),
      value_sampler_(common::make_txn_value_sampler()),
      sender_sampler_(clients_.size(), config.sender_zipf),
      receiver_sampler_(clients_.size(), config.receiver_zipf),
      arrivals_(synthetic_rate(config)) {
  if (clients_.size() < 2) {
    throw std::invalid_argument("SyntheticSource: need >= 2 clients");
  }
  config_.validate();
  // Non-virtual on purpose: derived classes layer their own state in their
  // constructors; virtual dispatch only matters on reset().
  SyntheticSource::rebuild();
}

void SyntheticSource::rebuild() {
  // Distinct random popularity orders for senders and receivers, so the
  // hottest sender is generally not the hottest receiver. Draw order is
  // pinned by the fig7 byte-identity gate: sender shuffle, receiver
  // shuffle, then per payment sender / imbalance / receiver / value /
  // arrival (exactly the historical generate_payments()).
  sender_order_ = clients_;
  receiver_order_ = clients_;
  rng_.shuffle(sender_order_);
  rng_.shuffle(receiver_order_);
  sink_count_ = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(clients_.size()) *
                                  config_.sink_fraction));
  arrivals_ = common::PoissonProcess(synthetic_rate(config_));
  emitted_ = 0;
  last_arrival_ = 0.0;
}

void SyntheticSource::reset(std::uint64_t seed) {
  rng_ = common::Rng(seed);
  rebuild();
}

NodeId SyntheticSource::distinct_receiver(NodeId sender, NodeId receiver) const {
  if (receiver != sender) return receiver;
  // Deterministic fallback: next client in receiver order.
  const auto it =
      std::find(receiver_order_.begin(), receiver_order_.end(), sender);
  const auto idx = static_cast<std::size_t>(it - receiver_order_.begin());
  return receiver_order_[(idx + 1) % receiver_order_.size()];
}

std::pair<NodeId, NodeId> SyntheticSource::draw_endpoints() {
  const NodeId sender = sender_order_[sender_sampler_.sample(rng_)];
  NodeId receiver;
  if (rng_.bernoulli(config_.imbalance)) {
    // Route extra mass to the sink set: net funds drain toward them.
    receiver = receiver_order_[rng_.index(sink_count_)];
  } else {
    receiver = receiver_order_[receiver_sampler_.sample(rng_)];
  }
  return {sender, distinct_receiver(sender, receiver)};
}

double SyntheticSource::draw_arrival() { return arrivals_.next(rng_); }

std::optional<Payment> SyntheticSource::next() {
  if (emitted_ >= config_.payment_count) return std::nullopt;
  Payment p;
  p.id = static_cast<PaymentId>(emitted_ + 1);
  const auto [sender, receiver] = draw_endpoints();
  p.sender = sender;
  p.receiver = receiver;
  p.value = common::tokens(value_sampler_.sample(rng_) * config_.value_scale);
  p.value = std::max<Amount>(p.value, common::whole_tokens(1));
  p.arrival_time = draw_arrival();
  if (p.arrival_time < last_arrival_) {
    throw std::logic_error("SyntheticSource: arrivals not monotone");
  }
  last_arrival_ = p.arrival_time;
  p.deadline = p.arrival_time + config_.timeout_seconds;
  ++emitted_;
  return p;
}

double SyntheticSource::horizon_hint() const {
  return config_.horizon_seconds + config_.timeout_seconds;
}

// ---- BurstySource ---------------------------------------------------------

BurstySource::BurstySource(std::vector<NodeId> clients, WorkloadConfig config,
                           common::Rng rng)
    : SyntheticSource(std::move(clients), config, rng) {}

double BurstySource::draw_arrival() {
  // Thinning (Lewis-Shedler): candidates from a homogeneous process at the
  // peak rate, each kept with probability rate(t) / peak.
  const double base = synthetic_rate(config_);
  const double peak = base * (1.0 + config_.burst_amplitude);
  double t = last_arrival_;
  for (;;) {
    t += rng_.exponential(peak);
    const double rate =
        base * (1.0 + config_.burst_amplitude *
                          std::sin(2.0 * std::numbers::pi * t /
                                   config_.burst_period_s));
    if (rng_.uniform01() * peak <= rate) return t;
  }
}

double BurstySource::horizon_hint() const {
  // Troughs push the tail of the count-matched process past the nominal
  // horizon; half a burst period of slack covers the final trough.
  return config_.horizon_seconds + 0.5 * config_.burst_period_s +
         config_.timeout_seconds;
}

// ---- HotspotShiftSource ---------------------------------------------------

HotspotShiftSource::HotspotShiftSource(std::vector<NodeId> clients,
                                       WorkloadConfig config, common::Rng rng)
    : SyntheticSource(std::move(clients), config, rng) {
  next_shift_at_ = config_.hotspot_shift_interval_s;
  rotation_ = config_.hotspot_rotation != 0
                  ? std::min(config_.hotspot_rotation, clients_.size() - 1)
                  : std::max<std::size_t>(1, clients_.size() / 4);
}

void HotspotShiftSource::rebuild() {
  SyntheticSource::rebuild();
  next_shift_at_ = config_.hotspot_shift_interval_s;
}

std::pair<NodeId, NodeId> HotspotShiftSource::draw_endpoints() {
  // Rotate the popularity ranks when the stream's clock (the previous
  // arrival) crosses a shift boundary: the Zipf samplers are unchanged,
  // but which node holds each rank moves.
  while (last_arrival_ >= next_shift_at_) {
    std::rotate(sender_order_.begin(),
                sender_order_.begin() + static_cast<std::ptrdiff_t>(rotation_),
                sender_order_.end());
    std::rotate(
        receiver_order_.begin(),
        receiver_order_.begin() + static_cast<std::ptrdiff_t>(rotation_),
        receiver_order_.end());
    next_shift_at_ += config_.hotspot_shift_interval_s;
  }
  return SyntheticSource::draw_endpoints();
}

// ---- TraceSource ----------------------------------------------------------

TraceSource::TraceSource(std::string path, std::vector<NodeId> clients,
                         WorkloadConfig config)
    : path_(std::move(path)), clients_(std::move(clients)), config_(config) {
  if (clients_.size() < 2) {
    throw std::invalid_argument("TraceSource: need >= 2 clients");
  }
  config_.validate();
  // Pre-scan: row count, time base, monotonicity and the replay horizon in
  // one streaming pass (no rows are materialised).
  std::ifstream scan(path_);
  if (!scan) {
    throw std::invalid_argument("TraceSource: cannot open " + path_);
  }
  std::string line;
  Row row;
  double last_time = 0.0;
  double last_kept = 0.0;
  bool any_kept = false;
  while (std::getline(scan, line)) {
    if (!parse_line(line, row)) continue;
    if (!have_time_base_) {
      time_base_ = row.time;
      have_time_base_ = true;
    }
    const double t = row.time - time_base_;
    if (t < last_time) {
      throw std::invalid_argument("TraceSource: rows not sorted by time in " +
                                  path_);
    }
    last_time = t;
    if (t >= config_.horizon_seconds) continue;  // horizon clip
    if (!config_.trace_remap) {
      // Numeric mode: endpoints must index the client set.
      char* end = nullptr;
      const auto s = std::strtoull(row.sender.c_str(), &end, 10);
      const bool s_ok = end != nullptr && *end == '\0' && s < clients_.size();
      const auto r = std::strtoull(row.receiver.c_str(), &end, 10);
      const bool r_ok = end != nullptr && *end == '\0' && r < clients_.size();
      if (!s_ok || !r_ok) continue;
    }
    ++rows_;
    last_kept = t;
    any_kept = true;
  }
  if (any_kept) horizon_ = last_kept + config_.timeout_seconds;
  rewind();
}

bool TraceSource::parse_line(const std::string& line, Row& row) const {
  if (line.empty() || line[0] == '#') return false;
  // time,sender,receiver,amount
  const auto c1 = line.find(',');
  if (c1 == std::string::npos) return false;
  const auto c2 = line.find(',', c1 + 1);
  if (c2 == std::string::npos) return false;
  const auto c3 = line.find(',', c2 + 1);
  if (c3 == std::string::npos || line.find(',', c3 + 1) != std::string::npos) {
    return false;
  }
  char* end = nullptr;
  const std::string time_field = line.substr(0, c1);
  row.time = std::strtod(time_field.c_str(), &end);
  if (end == time_field.c_str() || *end != '\0') return false;  // header row
  row.sender = line.substr(c1 + 1, c2 - c1 - 1);
  row.receiver = line.substr(c2 + 1, c3 - c2 - 1);
  if (row.sender.empty() || row.receiver.empty()) return false;
  const std::string amount_field = line.substr(c3 + 1);
  // Trim a trailing carriage return (CRLF traces).
  row.amount = std::strtod(amount_field.c_str(), &end);
  if (end == amount_field.c_str() || (*end != '\0' && *end != '\r')) {
    return false;
  }
  return row.amount > 0.0;
}

std::optional<NodeId> TraceSource::map_endpoint(const std::string& label) {
  if (config_.trace_remap) {
    // Opaque labels (pubkeys, usernames): first-seen round-robin over the
    // client set, so a trace with more endpoints than clients folds onto
    // them deterministically.
    const auto [it, inserted] = remap_.try_emplace(label, NodeId{});
    if (inserted) {
      it->second = clients_[next_client_ % clients_.size()];
      ++next_client_;
    }
    return it->second;
  }
  char* end = nullptr;
  const auto idx = std::strtoull(label.c_str(), &end, 10);
  if (end == label.c_str() || *end != '\0' || idx >= clients_.size()) {
    return std::nullopt;  // unknown endpoint: caller skips the row
  }
  return clients_[idx];
}

std::optional<Payment> TraceSource::next() {
  std::string line;
  Row row;
  while (std::getline(in_, line)) {
    if (!parse_line(line, row)) {
      if (!line.empty() && line[0] != '#') ++skipped_;
      continue;
    }
    const double t = row.time - time_base_;
    if (t >= config_.horizon_seconds) {
      ++skipped_;
      continue;  // horizon clip (later rows may not be clipped if equal-time)
    }
    const auto sender = map_endpoint(row.sender);
    const auto receiver = map_endpoint(row.receiver);
    if (!sender || !receiver) {
      ++skipped_;
      continue;
    }
    Payment p;
    p.id = next_id_++;
    p.sender = *sender;
    p.receiver = *receiver;
    if (p.receiver == p.sender) {
      // Two labels folded onto one client: bump to the next client, like
      // the synthetic generator's distinct-receiver fallback.
      const auto at = std::find(clients_.begin(), clients_.end(), p.sender);
      const auto idx = static_cast<std::size_t>(at - clients_.begin());
      p.receiver = clients_[(idx + 1) % clients_.size()];
    }
    p.value = common::tokens(row.amount * config_.value_scale);
    p.value = std::max<Amount>(p.value, common::whole_tokens(1));
    p.arrival_time = t;
    last_arrival_ = t;
    p.deadline = t + config_.timeout_seconds;
    return p;
  }
  return std::nullopt;
}

void TraceSource::rewind() {
  in_ = std::ifstream(path_);
  if (!in_) {
    throw std::invalid_argument("TraceSource: cannot open " + path_);
  }
  remap_.clear();
  next_client_ = 0;
  last_arrival_ = 0.0;
  next_id_ = 1;
  skipped_ = 0;
}

void TraceSource::reset(std::uint64_t /*seed*/) { rewind(); }

// ---- Factory --------------------------------------------------------------

std::unique_ptr<TrafficSource> make_traffic_source(std::vector<NodeId> clients,
                                                   const WorkloadConfig& config,
                                                   common::Rng rng) {
  config.validate();
  if (clients.size() < 2) {
    throw std::invalid_argument("make_traffic_source: need >= 2 clients");
  }
  switch (config.kind) {
    case WorkloadKind::kSynthetic:
      return std::make_unique<SyntheticSource>(std::move(clients), config, rng);
    case WorkloadKind::kTrace:
      return std::make_unique<TraceSource>(config.trace_file,
                                           std::move(clients), config);
    case WorkloadKind::kBursty:
      return std::make_unique<BurstySource>(std::move(clients), config, rng);
    case WorkloadKind::kHotspot:
      return std::make_unique<HotspotShiftSource>(std::move(clients), config,
                                                  rng);
  }
  throw std::invalid_argument("make_traffic_source: unknown workload kind");
}

std::vector<Payment> drain(TrafficSource& source, std::size_t limit) {
  std::vector<Payment> payments;
  payments.reserve(std::min(source.estimated_count(), limit));
  while (payments.size() < limit) {
    auto p = source.next();
    if (!p) break;
    payments.push_back(*p);
  }
  return payments;
}

}  // namespace splicer::pcn
