#pragma once

// Hostile-world scenario mutators: fault injection and network churn.
//
// The paper's evaluation runs in a benign world — no node ever fails, no
// channel ever closes, fees follow one global schedule and paths are
// unbounded in timelock depth. A ScenarioMutator is the adversarial
// counterpart of pcn::TrafficSource: a pull-based, deterministic stream of
// typed MutationEvents in nondecreasing time order that the routing engine
// replays through its scheduler, so mutations compose with any workload
// (synthetic / trace / bursty / hotspot) and with sharded execution.
//
// Implementations:
//  * NodeFaultMutator   - node failure/recovery with exponential
//                         inter-failure and repair times;
//  * ChannelChurnMutator- channel close/reopen with exponential
//                         inter-close and reopen times (the engine refunds
//                         in-flight TUs holding locks on a closing channel);
//  * FeePolicyMutator   - rewrites a random edge's {fee_base,
//                         fee_proportional, min_htlc} policy, generalising
//                         the single fee_from_price seam of the rate
//                         protocol to per-edge schedules (CLoTH's model);
//  * TimelockMutator    - rewrites a random edge's timelock cost, which
//                         bounds admissible path depth against the
//                         per-path timelock budget.
//
// Determinism contract (mirrors TrafficSource): next() emits events with
// nondecreasing time; reset(seed) rewinds and re-derives all randomness
// from `seed` — construct-or-reset with equal seeds yields equal streams.
// Mutator randomness is seeded from HostileConfig::seed, never from the
// engine's RNG, so enabling mutators perturbs no workload draw, and every
// shard of a sharded run rebuilds the identical stream regardless of its
// per-shard engine seed (mutation streams are bit-identical across shard
// counts; only their side effects are partitioned by channel ownership).

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "pcn/channel.h"
#include "pcn/types.h"

namespace splicer::pcn {

/// One typed mutation. `policy` is the payload of kFeePolicy (fee fields)
/// and kTimelock (timelock field); the other kinds ignore it.
struct MutationEvent {
  enum class Kind : std::uint8_t {
    kNodeDown,       // node: target node went offline
    kNodeUp,         // node: target node recovered
    kChannelClose,   // channel: target channel closed
    kChannelReopen,  // channel: target channel reopened
    kFeePolicy,      // channel: new {fee_base, fee_proportional, min_htlc}
    kTimelock,       // channel: new per-edge timelock cost
  };

  double time = 0.0;
  Kind kind = Kind::kNodeDown;
  NodeId node = 0;
  ChannelId channel = 0;
  ChannelPolicy policy{};
};

[[nodiscard]] const char* to_string(MutationEvent::Kind kind) noexcept;

/// Knobs for the hostile-world scenario pack. All rates are events per
/// second across the whole network; every rate defaults to 0, in which
/// case the corresponding mutator is not built at all and the simulation
/// is byte-identical to a benign run (the CI fig7 gate pins this).
struct HostileConfig {
  /// Seed for the mutation streams. Deliberately separate from
  /// EngineConfig::seed: mutation randomness must not consume engine RNG
  /// draws, and sharded runs derive per-shard engine seeds while every
  /// shard must replay the identical mutation stream.
  std::uint64_t seed = 0x486f7374696c65ull;  // "Hostile"

  // ---- NodeFaultMutator ------------------------------------------------
  double fault_rate = 0.0;   // node failures per second
  double mean_down_s = 0.5;  // mean outage duration (exponential)

  // ---- ChannelChurnMutator ---------------------------------------------
  double churn_rate = 0.0;     // channel closes per second
  double mean_closed_s = 0.5;  // mean closed duration (exponential)

  // ---- FeePolicyMutator ------------------------------------------------
  double fee_policy_rate = 0.0;  // per-edge policy rewrites per second
  Amount fee_base_cap = common::whole_tokens(1);  // fee_base ~ U[0, cap]
  double fee_proportional_cap = 0.01;             // fee_prop ~ U[0, cap]
  Amount min_htlc_cap = 0;                        // min_htlc ~ U[0, cap]

  // ---- TimelockMutator -------------------------------------------------
  double timelock_rate = 0.0;      // per-edge timelock rewrites per second
  std::uint32_t timelock_max = 4;  // rewritten cost ~ U{1, ..., max}

  /// Per-path timelock budget enforced by the routers: a path whose edge
  /// timelock costs (default 1 each) sum above this is inadmissible.
  /// kUnboundedTimelock (the default) disables the bound; 0 is invalid
  /// (it would reject every path, including single hops).
  static constexpr std::uint32_t kUnboundedTimelock = ~0u;
  std::uint32_t timelock_budget = kUnboundedTimelock;

  /// Any mutator has a nonzero rate (the engine builds mutators at all
  /// only then — the zero-rate path must not even size a vector).
  [[nodiscard]] bool any_mutation_active() const noexcept {
    return fault_rate > 0 || churn_rate > 0 || fee_policy_rate > 0 ||
           timelock_rate > 0;
  }

  /// Throws std::invalid_argument on inconsistent knobs: negative rates,
  /// non-positive mean down/closed times, negative fee caps, zero
  /// timelock_max, timelock budgets < 1.
  void validate() const;
};

/// Pull-based deterministic stream of mutation events (see file comment).
class ScenarioMutator {
 public:
  virtual ~ScenarioMutator() = default;

  /// Next event in time order; std::nullopt once exhausted. Times are
  /// nondecreasing within one mutator's stream.
  [[nodiscard]] virtual std::optional<MutationEvent> next() = 0;

  /// Rewinds to the first event, re-deriving randomness from `seed`.
  virtual void reset(std::uint64_t seed) = 0;

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Shared machinery for the Poisson-driven mutators: primary events arrive
/// as a homogeneous Poisson process at `rate` over [0, horizon); each may
/// schedule one follow-up (recovery/reopen), and emission merges the two
/// in (time, sequence) order so next() is globally sorted.
class PoissonMutator : public ScenarioMutator {
 public:
  PoissonMutator(double rate, double horizon, std::uint64_t seed);

  [[nodiscard]] std::optional<MutationEvent> next() final;
  void reset(std::uint64_t seed) final;

 protected:
  /// Fills `event` (kind/target/payload) for the primary event at `time`.
  /// Returns the follow-up delay to schedule, or a value <= 0 for none.
  virtual double fill_primary(MutationEvent& event) = 0;
  /// Fills the follow-up for a primary previously emitted on `target`.
  virtual void fill_followup(MutationEvent& event, std::uint64_t target) = 0;
  /// Re-derives subclass state after rng_ was rewound.
  virtual void rebuild() {}

  common::Rng rng_;

 private:
  struct Followup {
    double time;
    std::uint64_t seq;
    std::uint64_t target;
  };

  /// The follow-up key of a primary event (node or channel id).
  [[nodiscard]] static std::uint64_t event_target(
      const MutationEvent& event) noexcept;

  double rate_;
  double horizon_;
  double next_primary_ = 0.0;
  std::uint64_t seq_ = 0;
  // Min-heap on (time, seq): equal-time follow-ups emit in schedule order.
  std::vector<Followup> followups_;
};

class NodeFaultMutator final : public PoissonMutator {
 public:
  NodeFaultMutator(std::size_t node_count, double fault_rate,
                   double mean_down_s, double horizon, std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "node-fault"; }

 protected:
  double fill_primary(MutationEvent& event) override;
  void fill_followup(MutationEvent& event, std::uint64_t target) override;

 private:
  std::size_t node_count_;
  double mean_down_s_;
};

class ChannelChurnMutator final : public PoissonMutator {
 public:
  ChannelChurnMutator(std::size_t channel_count, double churn_rate,
                      double mean_closed_s, double horizon,
                      std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "channel-churn"; }

 protected:
  double fill_primary(MutationEvent& event) override;
  void fill_followup(MutationEvent& event, std::uint64_t target) override;

 private:
  std::size_t channel_count_;
  double mean_closed_s_;
};

class FeePolicyMutator final : public PoissonMutator {
 public:
  FeePolicyMutator(std::size_t channel_count, const HostileConfig& config,
                   double horizon, std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "fee-policy"; }

 protected:
  double fill_primary(MutationEvent& event) override;
  void fill_followup(MutationEvent& event, std::uint64_t target) override;

 private:
  std::size_t channel_count_;
  Amount fee_base_cap_;
  double fee_proportional_cap_;
  Amount min_htlc_cap_;
};

class TimelockMutator final : public PoissonMutator {
 public:
  TimelockMutator(std::size_t channel_count, double timelock_rate,
                  std::uint32_t timelock_max, double horizon,
                  std::uint64_t seed);
  [[nodiscard]] std::string name() const override { return "timelock"; }

 protected:
  double fill_primary(MutationEvent& event) override;
  void fill_followup(MutationEvent& event, std::uint64_t target) override;

 private:
  std::size_t channel_count_;
  std::uint32_t timelock_max_;
};

/// Builds the mutators `config` enables (zero-rate mutators are omitted;
/// an all-zero config returns an empty vector), in a fixed order —
/// node-fault, channel-churn, fee-policy, timelock — with per-mutator
/// sub-seeds derived from config.seed. `horizon` bounds event generation
/// (pass the workload horizon plus any slack). Calls config.validate().
[[nodiscard]] std::vector<std::unique_ptr<ScenarioMutator>> make_mutators(
    const HostileConfig& config, std::size_t node_count,
    std::size_t channel_count, double horizon);

}  // namespace splicer::pcn
