#pragma once

// Pluggable streaming payment workloads.
//
// A TrafficSource is a pull-based iterator over Payments in arrival order:
// the routing engine asks for the next payment only when the previous
// arrival event fires, so a 10^6-payment run never materialises the full
// workload (the ROADMAP's trace-replay / scenario-diversity item).
//
// Implementations:
//  * VectorSource    - replays a pre-built vector (compatibility shim; the
//                      classic prepare_scenario path).
//  * SyntheticSource - the paper's SS V-A workload (log-normal values,
//                      Poisson arrivals, Zipf endpoints), bit-identical to
//                      the historical generate_payments() for the same RNG.
//  * TraceSource     - CSV replay (time,sender,receiver,amount) with
//                      endpoint remapping onto the client set, value
//                      rescaling and horizon clipping.
//  * BurstySource    - diurnal traffic: sinusoidal-rate Poisson arrivals
//                      (thinning), synthetic values/endpoints.
//  * HotspotShiftSource - synthetic workload whose Zipf popularity ranks
//                      rotate every shift interval, stressing placement
//                      staleness.
//
// Every source emits payments with non-decreasing arrival_time and ids
// 1, 2, 3, ... in emission order; reset(seed) rewinds the source and
// re-derives its randomness from `seed` (a source is deterministic:
// construct-or-reset with equal seeds => equal payment streams).

#include <cstdint>
#include <fstream>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/samplers.h"
#include "pcn/workload.h"

namespace splicer::pcn {

class TrafficSource {
 public:
  virtual ~TrafficSource() = default;

  /// Next payment in arrival order; std::nullopt once exhausted.
  [[nodiscard]] virtual std::optional<Payment> next() = 0;

  /// Expected number of payments this source will emit (exact where the
  /// source knows it; a sizing hint, not a contract).
  [[nodiscard]] virtual std::size_t estimated_count() const = 0;

  /// Rewinds to the first payment, re-deriving randomness from `seed`.
  virtual void reset(std::uint64_t seed) = 0;

  /// Upper estimate of the last payment's deadline (arrival + timeout).
  /// Exact for vector/trace sources; config-derived for generative ones.
  /// Routers use it to bound their recurring price/probe ticks.
  [[nodiscard]] virtual double horizon_hint() const = 0;
};

/// Replays an existing payment vector. Non-owning when constructed from a
/// pointer (the Scenario shares one vector across scheme runs); owning when
/// constructed from a moved-in vector (the Engine's compatibility ctor).
class VectorSource final : public TrafficSource {
 public:
  explicit VectorSource(std::vector<Payment> payments);
  explicit VectorSource(const std::vector<Payment>* payments);

  [[nodiscard]] std::optional<Payment> next() override;
  [[nodiscard]] std::size_t estimated_count() const override;
  void reset(std::uint64_t seed) override;  // seed ignored: replay is fixed
  [[nodiscard]] double horizon_hint() const override { return horizon_; }

 private:
  std::vector<Payment> owned_;
  const std::vector<Payment>* view_;
  std::size_t cursor_ = 0;
  double horizon_ = 0.0;
};

/// The paper's synthetic workload as a stream. For the same starting RNG
/// state this emits exactly the payments the historical generate_payments()
/// returned (same draw order), which the CI fig7 byte-identity gate pins.
class SyntheticSource : public TrafficSource {
 public:
  SyntheticSource(std::vector<NodeId> clients, WorkloadConfig config,
                  common::Rng rng);

  [[nodiscard]] std::optional<Payment> next() override;
  [[nodiscard]] std::size_t estimated_count() const override {
    return config_.payment_count;
  }
  void reset(std::uint64_t seed) override;
  [[nodiscard]] double horizon_hint() const override;

  /// RNG state after the draws so far (generate_payments uses this to keep
  /// advancing the caller's generator exactly as the legacy code did).
  [[nodiscard]] const common::Rng& rng_state() const noexcept { return rng_; }

 protected:
  /// Draws the endpoint pair for payment `emitted_` (kHotspot overrides the
  /// rank rotation; draw order must stay sender, [imbalance], receiver).
  [[nodiscard]] virtual std::pair<NodeId, NodeId> draw_endpoints();
  /// Next arrival timestamp (kBursty overrides with a thinned process).
  [[nodiscard]] virtual double draw_arrival();
  /// Re-derives per-stream state after rng_ was rewound.
  virtual void rebuild();

  [[nodiscard]] NodeId distinct_receiver(NodeId sender, NodeId receiver) const;

  std::vector<NodeId> clients_;
  WorkloadConfig config_;
  common::Rng rng_;
  common::LogNormalSampler value_sampler_;
  common::ZipfSampler sender_sampler_;
  common::ZipfSampler receiver_sampler_;
  std::vector<NodeId> sender_order_;
  std::vector<NodeId> receiver_order_;
  std::size_t sink_count_ = 1;
  common::PoissonProcess arrivals_;
  std::size_t emitted_ = 0;
  double last_arrival_ = 0.0;
};

/// Diurnal/bursty arrivals: a non-homogeneous Poisson process with rate
///   rate(t) = base * (1 + amplitude * sin(2 pi t / period)),
/// realised by thinning a homogeneous process at the peak rate. Values and
/// endpoints are drawn exactly like the synthetic workload.
class BurstySource final : public SyntheticSource {
 public:
  BurstySource(std::vector<NodeId> clients, WorkloadConfig config,
               common::Rng rng);

  [[nodiscard]] double horizon_hint() const override;

 protected:
  [[nodiscard]] double draw_arrival() override;
};

/// Synthetic workload whose endpoint popularity rotates: every
/// hotspot_shift_interval_s of arrival time the sender/receiver rank
/// orders rotate by `hotspot_rotation` positions, so the hottest endpoints
/// move mid-run (stresses hub-placement staleness).
class HotspotShiftSource final : public SyntheticSource {
 public:
  HotspotShiftSource(std::vector<NodeId> clients, WorkloadConfig config,
                     common::Rng rng);

 protected:
  [[nodiscard]] std::pair<NodeId, NodeId> draw_endpoints() override;
  void rebuild() override;

 private:
  double next_shift_at_ = 0.0;
  std::size_t rotation_ = 1;
};

/// Replays a CSV transaction trace: one `time,sender,receiver,amount` row
/// per line (header rows and '#' comments are skipped). Rows stream off
/// disk one at a time; the constructor makes one cheap pre-scan pass to
/// learn the row count and time span (no materialisation).
///
///  * time     seconds, non-decreasing (throws on out-of-order rows);
///             shifted so the first replayed row arrives at t = 0
///  * endpoints remapped per config.trace_remap (see WorkloadConfig)
///  * amount   tokens, scaled by config.value_scale, floored at 1 token
///  * rows arriving at or past config.horizon_seconds are clipped
class TraceSource final : public TrafficSource {
 public:
  TraceSource(std::string path, std::vector<NodeId> clients,
              WorkloadConfig config);

  [[nodiscard]] std::optional<Payment> next() override;
  [[nodiscard]] std::size_t estimated_count() const override { return rows_; }
  void reset(std::uint64_t seed) override;  // seed ignored: replay is fixed
  [[nodiscard]] double horizon_hint() const override { return horizon_; }

  /// Rows dropped so far (malformed, unmappable endpoint, self-pay with a
  /// single client, or past the horizon clip).
  [[nodiscard]] std::size_t rows_skipped() const noexcept { return skipped_; }

 private:
  struct Row {
    double time;
    std::string sender;
    std::string receiver;
    double amount;
  };
  [[nodiscard]] bool parse_line(const std::string& line, Row& row) const;
  [[nodiscard]] std::optional<NodeId> map_endpoint(const std::string& label);
  void rewind();

  std::string path_;
  std::vector<NodeId> clients_;
  WorkloadConfig config_;
  std::ifstream in_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed lookup/insert by trace label
  // only, never iterated; remap assignment follows first-seen file order.
  std::unordered_map<std::string, NodeId> remap_;
  std::size_t next_client_ = 0;  // first-seen round-robin remap cursor
  std::size_t rows_ = 0;         // replayable rows (pre-scan)
  double horizon_ = 0.0;         // last replayed deadline (pre-scan)
  double time_base_ = 0.0;       // first row's timestamp (shifted to 0)
  bool have_time_base_ = false;
  double last_arrival_ = 0.0;
  PaymentId next_id_ = 1;
  std::size_t skipped_ = 0;
};

/// Builds the source described by `config.kind` over `clients`. The RNG is
/// taken by value: the source owns an independent stream snapshot (trace
/// replay ignores it). Calls config.validate().
[[nodiscard]] std::unique_ptr<TrafficSource> make_traffic_source(
    std::vector<NodeId> clients, const WorkloadConfig& config, common::Rng rng);

/// Drains a source into a vector (tests, the legacy generate_payments path;
/// `limit` guards against unbounded sources).
[[nodiscard]] std::vector<Payment> drain(TrafficSource& source,
                                         std::size_t limit = ~std::size_t{0});

}  // namespace splicer::pcn
