#include "pcn/scenario_mutator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace splicer::pcn {

const char* to_string(MutationEvent::Kind kind) noexcept {
  switch (kind) {
    case MutationEvent::Kind::kNodeDown: return "node-down";
    case MutationEvent::Kind::kNodeUp: return "node-up";
    case MutationEvent::Kind::kChannelClose: return "channel-close";
    case MutationEvent::Kind::kChannelReopen: return "channel-reopen";
    case MutationEvent::Kind::kFeePolicy: return "fee-policy";
    case MutationEvent::Kind::kTimelock: return "timelock";
  }
  return "?";
}

void HostileConfig::validate() const {
  const auto fail = [](const char* what) {
    throw std::invalid_argument(std::string("HostileConfig: ") + what);
  };
  if (fault_rate < 0 || !std::isfinite(fault_rate)) {
    fail("fault_rate must be finite and >= 0");
  }
  if (churn_rate < 0 || !std::isfinite(churn_rate)) {
    fail("churn_rate must be finite and >= 0");
  }
  if (fee_policy_rate < 0 || !std::isfinite(fee_policy_rate)) {
    fail("fee_policy_rate must be finite and >= 0");
  }
  if (timelock_rate < 0 || !std::isfinite(timelock_rate)) {
    fail("timelock_rate must be finite and >= 0");
  }
  if (fault_rate > 0 && mean_down_s <= 0) {
    fail("mean_down_s must be > 0 when fault_rate is set");
  }
  if (churn_rate > 0 && mean_closed_s <= 0) {
    fail("mean_closed_s must be > 0 when churn_rate is set");
  }
  if (fee_base_cap < 0) fail("fee_base_cap must be >= 0");
  if (fee_proportional_cap < 0 || fee_proportional_cap >= 1) {
    fail("fee_proportional_cap must be in [0, 1)");
  }
  if (min_htlc_cap < 0) fail("min_htlc_cap must be >= 0");
  if (timelock_rate > 0 && timelock_max < 1) {
    fail("timelock_max must be >= 1 when timelock_rate is set");
  }
  if (timelock_budget < 1) {
    fail("timelock_budget must be >= 1 (kUnboundedTimelock disables it)");
  }
}

// ---------------------------------------------------------------------------
// PoissonMutator

PoissonMutator::PoissonMutator(double rate, double horizon, std::uint64_t seed)
    : rng_(seed), rate_(rate), horizon_(horizon) {
  if (rate_ <= 0) throw std::invalid_argument("PoissonMutator: rate must be > 0");
  reset(seed);
}

void PoissonMutator::reset(std::uint64_t seed) {
  rng_ = common::Rng(seed);
  followups_.clear();
  seq_ = 0;
  next_primary_ = rng_.exponential(rate_);
  rebuild();
}

std::optional<MutationEvent> PoissonMutator::next() {
  const auto later = [](const Followup& a, const Followup& b) {
    return a.time > b.time || (a.time == b.time && a.seq > b.seq);
  };
  for (;;) {
    const bool primary_due =
        next_primary_ < horizon_ &&
        (followups_.empty() || next_primary_ <= followups_.front().time);
    if (primary_due) {
      MutationEvent event;
      event.time = next_primary_;
      // Draw order is fixed: target/payload first, then the follow-up
      // delay, then the next inter-arrival — the stream is a pure
      // function of the seed.
      const double followup_delay = fill_primary(event);
      if (followup_delay > 0) {
        followups_.push_back(
            Followup{event.time + followup_delay, seq_++, event_target(event)});
        std::push_heap(followups_.begin(), followups_.end(), later);
      }
      next_primary_ += rng_.exponential(rate_);
      return event;
    }
    if (followups_.empty()) return std::nullopt;
    std::pop_heap(followups_.begin(), followups_.end(), later);
    const Followup f = followups_.back();
    followups_.pop_back();
    if (f.time >= horizon_) continue;  // clipped: the outage outlives the run
    MutationEvent event;
    event.time = f.time;
    fill_followup(event, f.target);
    return event;
  }
}

std::uint64_t PoissonMutator::event_target(const MutationEvent& event) noexcept {
  switch (event.kind) {
    case MutationEvent::Kind::kNodeDown:
    case MutationEvent::Kind::kNodeUp:
      return event.node;
    default:
      return event.channel;
  }
}

// ---------------------------------------------------------------------------
// NodeFaultMutator

NodeFaultMutator::NodeFaultMutator(std::size_t node_count, double fault_rate,
                                   double mean_down_s, double horizon,
                                   std::uint64_t seed)
    : PoissonMutator(fault_rate, horizon, seed),
      node_count_(node_count),
      mean_down_s_(mean_down_s) {
  if (node_count_ == 0) {
    throw std::invalid_argument("NodeFaultMutator: empty network");
  }
}

double NodeFaultMutator::fill_primary(MutationEvent& event) {
  event.kind = MutationEvent::Kind::kNodeDown;
  event.node = static_cast<NodeId>(rng_.index(node_count_));
  return rng_.exponential(1.0 / mean_down_s_);
}

void NodeFaultMutator::fill_followup(MutationEvent& event,
                                     std::uint64_t target) {
  event.kind = MutationEvent::Kind::kNodeUp;
  event.node = static_cast<NodeId>(target);
}

// ---------------------------------------------------------------------------
// ChannelChurnMutator

ChannelChurnMutator::ChannelChurnMutator(std::size_t channel_count,
                                         double churn_rate,
                                         double mean_closed_s, double horizon,
                                         std::uint64_t seed)
    : PoissonMutator(churn_rate, horizon, seed),
      channel_count_(channel_count),
      mean_closed_s_(mean_closed_s) {
  if (channel_count_ == 0) {
    throw std::invalid_argument("ChannelChurnMutator: no channels");
  }
}

double ChannelChurnMutator::fill_primary(MutationEvent& event) {
  event.kind = MutationEvent::Kind::kChannelClose;
  event.channel = static_cast<ChannelId>(rng_.index(channel_count_));
  return rng_.exponential(1.0 / mean_closed_s_);
}

void ChannelChurnMutator::fill_followup(MutationEvent& event,
                                        std::uint64_t target) {
  event.kind = MutationEvent::Kind::kChannelReopen;
  event.channel = static_cast<ChannelId>(target);
}

// ---------------------------------------------------------------------------
// FeePolicyMutator

FeePolicyMutator::FeePolicyMutator(std::size_t channel_count,
                                   const HostileConfig& config, double horizon,
                                   std::uint64_t seed)
    : PoissonMutator(config.fee_policy_rate, horizon, seed),
      channel_count_(channel_count),
      fee_base_cap_(config.fee_base_cap),
      fee_proportional_cap_(config.fee_proportional_cap),
      min_htlc_cap_(config.min_htlc_cap) {
  if (channel_count_ == 0) {
    throw std::invalid_argument("FeePolicyMutator: no channels");
  }
}

double FeePolicyMutator::fill_primary(MutationEvent& event) {
  event.kind = MutationEvent::Kind::kFeePolicy;
  event.channel = static_cast<ChannelId>(rng_.index(channel_count_));
  event.policy.fee_base =
      fee_base_cap_ > 0 ? rng_.uniform_int(0, fee_base_cap_) : 0;
  event.policy.fee_proportional =
      fee_proportional_cap_ > 0 ? rng_.uniform(0.0, fee_proportional_cap_) : 0.0;
  event.policy.min_htlc =
      min_htlc_cap_ > 0 ? rng_.uniform_int(0, min_htlc_cap_) : 0;
  return 0.0;  // policy rewrites have no follow-up
}

void FeePolicyMutator::fill_followup(MutationEvent& event,
                                     std::uint64_t target) {
  (void)event;
  (void)target;
  throw std::logic_error("FeePolicyMutator: no follow-ups are scheduled");
}

// ---------------------------------------------------------------------------
// TimelockMutator

TimelockMutator::TimelockMutator(std::size_t channel_count,
                                 double timelock_rate,
                                 std::uint32_t timelock_max, double horizon,
                                 std::uint64_t seed)
    : PoissonMutator(timelock_rate, horizon, seed),
      channel_count_(channel_count),
      timelock_max_(timelock_max) {
  if (channel_count_ == 0) {
    throw std::invalid_argument("TimelockMutator: no channels");
  }
  if (timelock_max_ < 1) {
    throw std::invalid_argument("TimelockMutator: timelock_max must be >= 1");
  }
}

double TimelockMutator::fill_primary(MutationEvent& event) {
  event.kind = MutationEvent::Kind::kTimelock;
  event.channel = static_cast<ChannelId>(rng_.index(channel_count_));
  event.policy.timelock =
      static_cast<std::uint32_t>(rng_.uniform_int(1, timelock_max_));
  return 0.0;
}

void TimelockMutator::fill_followup(MutationEvent& event,
                                    std::uint64_t target) {
  (void)event;
  (void)target;
  throw std::logic_error("TimelockMutator: no follow-ups are scheduled");
}

// ---------------------------------------------------------------------------
// make_mutators

std::vector<std::unique_ptr<ScenarioMutator>> make_mutators(
    const HostileConfig& config, std::size_t node_count,
    std::size_t channel_count, double horizon) {
  config.validate();
  std::vector<std::unique_ptr<ScenarioMutator>> mutators;
  if (!config.any_mutation_active()) return mutators;
  // Fixed sub-seed derivation and fixed construction order: the merged
  // stream (and its engine tie-breaking, which fires lower mutator indices
  // first at equal timestamps) is a pure function of config.seed.
  std::uint64_t state = config.seed;
  const std::uint64_t fault_seed = common::splitmix64(state);
  const std::uint64_t churn_seed = common::splitmix64(state);
  const std::uint64_t fee_seed = common::splitmix64(state);
  const std::uint64_t timelock_seed = common::splitmix64(state);
  if (config.fault_rate > 0) {
    mutators.push_back(std::make_unique<NodeFaultMutator>(
        node_count, config.fault_rate, config.mean_down_s, horizon,
        fault_seed));
  }
  if (config.churn_rate > 0) {
    mutators.push_back(std::make_unique<ChannelChurnMutator>(
        channel_count, config.churn_rate, config.mean_closed_s, horizon,
        churn_seed));
  }
  if (config.fee_policy_rate > 0) {
    mutators.push_back(std::make_unique<FeePolicyMutator>(
        channel_count, config, horizon, fee_seed));
  }
  if (config.timelock_rate > 0) {
    mutators.push_back(std::make_unique<TimelockMutator>(
        channel_count, config.timelock_rate, config.timelock_max, horizon,
        timelock_seed));
  }
  return mutators;
}

}  // namespace splicer::pcn
