#include "pcn/network.h"

#include <stdexcept>

#include "common/samplers.h"

namespace splicer::pcn {

Network::Network(graph::Graph topology, std::vector<Amount> funds_ab,
                 std::vector<Amount> funds_ba)
    : topology_(std::move(topology)) {
  if (funds_ab.size() != topology_.edge_count() ||
      funds_ba.size() != topology_.edge_count()) {
    throw std::invalid_argument("Network: funds vectors must match edge count");
  }
  node_online_.assign(topology_.node_count(), 1);
  channels_.reserve(topology_.edge_count());
  for (ChannelId e = 0; e < topology_.edge_count(); ++e) {
    const auto& edge = topology_.edge(e);
    channels_.emplace_back(edge.u, edge.v, funds_ab[e], funds_ba[e]);
    topology_.set_capacity(e, common::to_tokens(funds_ab[e] + funds_ba[e]));
  }
}

Network Network::with_sampled_funds(graph::Graph topology, double fund_scale,
                                    common::Rng& rng) {
  const auto sampler = common::make_channel_size_sampler();
  std::vector<Amount> ab(topology.edge_count());
  std::vector<Amount> ba(topology.edge_count());
  for (std::size_t e = 0; e < topology.edge_count(); ++e) {
    ab[e] = common::tokens(sampler.sample(rng) * fund_scale);
    ba[e] = common::tokens(sampler.sample(rng) * fund_scale);
  }
  return Network(std::move(topology), std::move(ab), std::move(ba));
}

Network Network::with_uniform_funds(graph::Graph topology, Amount per_side) {
  std::vector<Amount> ab(topology.edge_count(), per_side);
  std::vector<Amount> ba(topology.edge_count(), per_side);
  return Network(std::move(topology), std::move(ab), std::move(ba));
}

Amount Network::total_funds() const noexcept {
  Amount total = 0;
  for (const auto& ch : channels_) total += ch.total();
  return total;
}

std::vector<double> Network::forward_balances_tokens() const {
  std::vector<double> out(channels_.size());
  for (std::size_t e = 0; e < channels_.size(); ++e) {
    out[e] = common::to_tokens(channels_[e].available(Direction::kForward));
  }
  return out;
}

std::vector<double> Network::backward_balances_tokens() const {
  std::vector<double> out(channels_.size());
  for (std::size_t e = 0; e < channels_.size(); ++e) {
    out[e] = common::to_tokens(channels_[e].available(Direction::kBackward));
  }
  return out;
}

}  // namespace splicer::pcn
