#pragma once

// Shared identifiers for the payment-channel-network model.

#include <cstdint>

#include "common/amount.h"
#include "graph/graph.h"

namespace splicer::pcn {

using NodeId = graph::NodeId;
using ChannelId = graph::EdgeId;  // channels are edges of the topology graph
using common::Amount;

using PaymentId = std::uint64_t;
using TuId = std::uint64_t;  // transaction-unit id (paper: tuid)

/// Direction across a channel. kForward is the stored edge's u -> v.
enum class Direction : std::uint8_t { kForward = 0, kBackward = 1 };

[[nodiscard]] constexpr Direction opposite(Direction d) noexcept {
  return d == Direction::kForward ? Direction::kBackward : Direction::kForward;
}

[[nodiscard]] constexpr std::size_t dir_index(Direction d) noexcept {
  return static_cast<std::size_t>(d);
}

/// Directed channel reference: (channel, direction) - the unit that carries
/// balances, prices and queues.
struct DirectedChannel {
  ChannelId channel = graph::kInvalidEdge;
  Direction direction = Direction::kForward;

  friend bool operator==(const DirectedChannel&, const DirectedChannel&) = default;
};

}  // namespace splicer::pcn
