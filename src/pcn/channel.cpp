#include "pcn/channel.h"

#include <cstdlib>
#include <stdexcept>

namespace splicer::pcn {

Channel::Channel(NodeId node_a, NodeId node_b, Amount funds_ab, Amount funds_ba)
    : node_a_(node_a), node_b_(node_b), balance_{funds_ab, funds_ba}, locked_{0, 0} {
  if (funds_ab < 0 || funds_ba < 0) {
    throw std::invalid_argument("Channel: negative initial funds");
  }
  if (node_a == node_b) throw std::invalid_argument("Channel: self-channel");
}

Direction Channel::direction_from(NodeId from) const {
  if (from == node_a_) return Direction::kForward;
  if (from == node_b_) return Direction::kBackward;
  throw std::invalid_argument("Channel: node not an endpoint");
}

bool Channel::lock(Direction d, Amount value) {
  if (value <= 0) throw std::invalid_argument("Channel::lock: value must be > 0");
  auto& balance = balance_[dir_index(d)];
  if (balance < value) return false;
  balance -= value;
  locked_[dir_index(d)] += value;
  ++generation_;
  return true;
}

void Channel::settle(Direction d, Amount value) {
  auto& lock_pool = locked_[dir_index(d)];
  if (value <= 0 || lock_pool < value) {
    throw std::logic_error("Channel::settle: settling more than locked");
  }
  lock_pool -= value;
  balance_[dir_index(opposite(d))] += value;
  ++generation_;
}

void Channel::refund(Direction d, Amount value) {
  auto& lock_pool = locked_[dir_index(d)];
  if (value <= 0 || lock_pool < value) {
    throw std::logic_error("Channel::refund: refunding more than locked");
  }
  lock_pool -= value;
  balance_[dir_index(d)] += value;
  ++generation_;
}

void Channel::settle_n(Direction d, Amount total, std::uint64_t count) {
  if (count == 0) throw std::invalid_argument("Channel::settle_n: count == 0");
  if (total < static_cast<Amount>(count)) {
    // Each coalesced settlement moved at least one token unit.
    throw std::invalid_argument("Channel::settle_n: total below count");
  }
  settle(d, total);
}

void Channel::refund_n(Direction d, Amount total, std::uint64_t count) {
  if (count == 0) throw std::invalid_argument("Channel::refund_n: count == 0");
  if (total < static_cast<Amount>(count)) {
    throw std::invalid_argument("Channel::refund_n: total below count");
  }
  refund(d, total);
}

bool Channel::transfer(Direction d, Amount value) {
  if (value <= 0) throw std::invalid_argument("Channel::transfer: value must be > 0");
  auto& from = balance_[dir_index(d)];
  if (from < value) return false;
  from -= value;
  balance_[dir_index(opposite(d))] += value;
  ++generation_;
  return true;
}

Amount Channel::imbalance() const noexcept {
  return std::llabs(balance_[0] - balance_[1]);
}

}  // namespace splicer::pcn
