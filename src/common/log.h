#pragma once

// Minimal leveled logger. Default level is Warn so tests and benches stay
// quiet; examples raise it to Info to narrate the workflow.

#include <sstream>
#include <string>

namespace splicer::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global minimum level; messages below it are discarded.
void set_log_level(LogLevel level) noexcept;
[[nodiscard]] LogLevel log_level() noexcept;

/// Writes one line to stderr if `level` passes the global threshold.
void log_line(LogLevel level, const std::string& message);

/// Stream-style logging: LogMessage(LogLevel::kInfo) << "x=" << x;
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage();

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace splicer::common
