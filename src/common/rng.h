#pragma once

// Deterministic pseudo-random number generation for simulations.
//
// We deliberately avoid <random> distribution objects: their output is
// implementation-defined, which would make experiment results differ across
// standard libraries. Everything here is bit-exact on any platform.
//
// The generator is xoshiro256** (Blackman & Vigna), seeded via splitmix64,
// which is the recommended seeding procedure for the xoshiro family.

#include <array>
#include <cstdint>
#include <cstddef>
#include <vector>

namespace splicer::common {

/// splitmix64 step; used for seeding and as a cheap stateless hash.
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Deterministic, platform-independent PRNG (xoshiro256**).
class Rng {
 public:
  /// Seeds the full 256-bit state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) noexcept;

  /// Next raw 64-bit value.
  [[nodiscard]] std::uint64_t next_u64() noexcept;

  /// Uniform integer in [0, bound). Requires bound > 0. Unbiased
  /// (Lemire-style rejection).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p) noexcept;

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  [[nodiscard]] double normal() noexcept;

  /// Normal with mean/stddev.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Exponential with given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept;

  /// Log-normal: exp(normal(mu, sigma)).
  [[nodiscard]] double log_normal(double mu, double sigma) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Uniformly chosen element index of a non-empty container size.
  [[nodiscard]] std::size_t index(std::size_t size) noexcept {
    return static_cast<std::size_t>(next_below(size));
  }

  /// Derives an independent child generator; stable given call order.
  [[nodiscard]] Rng fork() noexcept;

 private:
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace splicer::common
