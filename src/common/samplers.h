#pragma once

// Workload samplers calibrated to the distributions the paper evaluates on:
//
//  * Channel funds follow the heavy-tailed Lightning channel-size dataset
//    (Tikhomirov et al. [27]); the paper reports min 10, median 152 and
//    mean 403 tokens. A log-normal matches all three statistics:
//        median = exp(mu)            -> mu    = ln 152
//        mean   = exp(mu + s^2/2)    -> s^2   = 2 ln(403/152)
//  * Transaction values follow the Kaggle credit-card dataset [28] adopted
//    by Spider: median ~ 22, mean ~ 88.35 -> same calibration recipe.
//  * Transaction endpoints are skewed (Zipf) so net flows are imbalanced,
//    which is what makes local deadlocks reachable (paper SS II-B, SS V-A).

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace splicer::common {

/// Log-normal sampler specified by its median and mean (both > 0,
/// mean >= median), optionally truncated below at `floor`.
class LogNormalSampler {
 public:
  LogNormalSampler(double median, double mean, double floor = 0.0);

  [[nodiscard]] double sample(Rng& rng) const;

  [[nodiscard]] double mu() const noexcept { return mu_; }
  [[nodiscard]] double sigma() const noexcept { return sigma_; }

 private:
  double mu_;
  double sigma_;
  double floor_;
};

/// Zipf(s) over {0, .., n-1} via precomputed CDF; deterministic and O(log n)
/// per sample. s = 0 degenerates to uniform.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s);

  [[nodiscard]] std::size_t sample(Rng& rng) const;
  [[nodiscard]] std::size_t size() const noexcept { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

/// Homogeneous Poisson arrival process: successive arrival timestamps with
/// exponential inter-arrival gaps.
class PoissonProcess {
 public:
  explicit PoissonProcess(double rate_per_sec, double start_time = 0.0);

  [[nodiscard]] double next(Rng& rng);
  [[nodiscard]] double rate() const noexcept { return rate_; }

 private:
  double rate_;
  double now_;
};

/// Paper SS V-A channel-size statistics (tokens).
struct ChannelSizeDefaults {
  static constexpr double kMinTokens = 10.0;
  static constexpr double kMedianTokens = 152.0;
  static constexpr double kMeanTokens = 403.0;
};

/// Kaggle credit-card dataset value statistics (tokens ~ currency units).
struct TxnValueDefaults {
  static constexpr double kMinTokens = 1.0;
  static constexpr double kMedianTokens = 22.0;
  static constexpr double kMeanTokens = 88.35;
};

/// Channel-fund sampler calibrated per the paper; `scale` multiplies the
/// sampled size (Fig. 7(a)/8(a) sweep the mean channel size).
[[nodiscard]] LogNormalSampler make_channel_size_sampler();

/// Transaction-value sampler calibrated to the credit-card dataset; Fig.
/// 7(b)/8(b) sweep a multiplicative scale on top.
[[nodiscard]] LogNormalSampler make_txn_value_sampler();

}  // namespace splicer::common
