#include "common/table.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace splicer::common {

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("Table: empty header");
}

std::size_t Table::add_row() {
  cells_.emplace_back(header_.size());
  return cells_.size() - 1;
}

void Table::set(std::size_t row, std::size_t col, std::string value) {
  cells_.at(row).at(col) = std::move(value);
}

void Table::set(std::size_t row, std::size_t col, double value, int precision) {
  set(row, col, format_double(value, precision));
}

void Table::set(std::size_t row, std::size_t col, std::int64_t value) {
  set(row, col, std::to_string(value));
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  cells_.push_back(std::move(cells));
}

std::string Table::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : cells_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  const auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    out << "\n";
  };
  emit_row(header_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  out << std::string(total, '-') << "\n";
  for (const auto& row : cells_) emit_row(row);
  return out.str();
}

namespace {
std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += "\"\"";
    else quoted += ch;
  }
  quoted += '"';
  return quoted;
}
}  // namespace

std::string Table::to_csv() const {
  std::ostringstream out;
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) out << ',';
      out << csv_escape(row[c]);
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : cells_) emit(row);
  return out.str();
}

void Table::write_csv(const std::string& path) const {
  std::ofstream file(path);
  if (!file) throw std::runtime_error("Table: cannot open " + path);
  file << to_csv();
  if (!file) throw std::runtime_error("Table: write failed for " + path);
}

std::string format_double(double value, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << value;
  return out.str();
}

std::string format_percent(double ratio, int precision) {
  return format_double(ratio * 100.0, precision) + "%";
}

}  // namespace splicer::common
