#include "common/rng.h"

#include <cmath>
#include <numbers>

namespace splicer::common {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next_u64();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<unsigned __int128>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::uniform01() noexcept {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

bool Rng::bernoulli(double p) noexcept { return uniform01() < p; }

double Rng::normal() noexcept {
  // Box-Muller; re-draw u1 to avoid log(0).
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

double Rng::exponential(double rate) noexcept {
  double u = uniform01();
  while (u <= 0.0) u = uniform01();
  return -std::log(u) / rate;
}

double Rng::log_normal(double mu, double sigma) noexcept {
  return std::exp(normal(mu, sigma));
}

Rng Rng::fork() noexcept { return Rng(next_u64()); }

}  // namespace splicer::common
