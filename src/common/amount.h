#pragma once

// Token amounts as exact integers.
//
// All channel balances, HTLC locks and payment values are held in
// milli-tokens (1 token = 1000 mtok) so that funds-conservation invariants
// can be asserted with exact equality; floating point is used only for
// fluid quantities (rates, prices) as in the paper's eqs. (21)-(28).

#include <cstdint>
#include <string>

namespace splicer::common {

/// Milli-tokens. Signed so that deltas/fees can be expressed, but network
/// state must never hold a negative amount (checked in pcn::Channel).
using Amount = std::int64_t;

inline constexpr Amount kMilliPerToken = 1000;

[[nodiscard]] constexpr Amount tokens(double t) noexcept {
  // Round-half-away-from-zero to the nearest milli-token.
  const double scaled = t * static_cast<double>(kMilliPerToken);
  return static_cast<Amount>(scaled >= 0 ? scaled + 0.5 : scaled - 0.5);
}

[[nodiscard]] constexpr Amount whole_tokens(std::int64_t t) noexcept {
  return t * kMilliPerToken;
}

[[nodiscard]] constexpr double to_tokens(Amount a) noexcept {
  return static_cast<double>(a) / static_cast<double>(kMilliPerToken);
}

[[nodiscard]] inline std::string amount_to_string(Amount a) {
  const Amount whole = a / kMilliPerToken;
  const Amount frac = (a < 0 ? -a : a) % kMilliPerToken;
  char buf[48];
  std::snprintf(buf, sizeof buf, "%lld.%03lld", static_cast<long long>(whole),
                static_cast<long long>(frac));
  return buf;
}

}  // namespace splicer::common
