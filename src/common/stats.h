#pragma once

// Small statistics toolkit used by the evaluation harness: running moments,
// order statistics, and fixed-width histograms.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace splicer::common {

/// Welford running mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }

  /// Merges another accumulator (parallel Welford combination).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Two-sided 95% Student t quantile for `df` degrees of freedom: the exact
/// table entry for df <= 30, then linear interpolation in 1/df through the
/// df = 40, 60, 120 and infinity (1.960) anchors — no 2.042 -> 1.96 jump
/// between df 30 and 31. 0 for df == 0.
[[nodiscard]] double student_t95(std::size_t df) noexcept;

/// Half-width of the 95% confidence interval of the mean: t * s / sqrt(n)
/// with the two-sided Student t quantile (student_t95) for n - 1 degrees
/// of freedom. 0 for fewer than two samples.
[[nodiscard]] double ci95_half_width(const RunningStats& stats) noexcept;

/// Percentile of a sample (linear interpolation between closest ranks).
/// q in [0, 1]. Copies and sorts; fine for evaluation-sized data.
[[nodiscard]] double percentile(std::vector<double> values, double q);

/// Median convenience wrapper.
[[nodiscard]] double median(std::vector<double> values);

/// Arithmetic mean; 0 for empty input.
[[nodiscard]] double mean_of(const std::vector<double>& values);

/// Fixed-width histogram over [lo, hi); out-of-range values clamp to the
/// edge buckets. Used for degree/fund distribution sanity reports.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] double bucket_lo(std::size_t i) const noexcept;
  [[nodiscard]] double bucket_hi(std::size_t i) const noexcept;

  /// Multi-line ASCII rendering (for example programs).
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace splicer::common
