#pragma once

// Slab map for dense sequential ids.
//
// PaymentIds and TuIds are handed out as sequential uint64s (by the traffic
// sources and the engine respectively), and entries are erased roughly in
// id order as payments/TUs resolve. A hash map pays hashing plus a bucket
// chase on every hot-path lookup for keys that are, in effect, array
// indices. DenseIdMap instead keeps a ring of slots covering the id window
// [base_id, base_id + span): find/erase are a subtraction and a masked
// index, and erasing the oldest live id slides the window forward, so a
// streaming run's window stays at the concurrency level (the eviction
// contract of PR 4 keeps erasing resolved entries). Out-of-order inserts
// inside — or on either side of — the window are supported; they only cost
// window span, never correctness.

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <utility>
#include <vector>

namespace splicer::common {

template <typename T>
class DenseIdMap {
 public:
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }

  [[nodiscard]] T* find(std::uint64_t id) noexcept {
    if (!anchored_ || id < base_id_ || id - base_id_ >= span_) return nullptr;
    const std::size_t idx = slot_index(id);
    return live_[idx] ? &ring_[idx] : nullptr;
  }
  [[nodiscard]] const T* find(std::uint64_t id) const noexcept {
    return const_cast<DenseIdMap*>(this)->find(id);
  }

  /// Strict lookup; throws std::out_of_range on a missing id.
  [[nodiscard]] T& at(std::uint64_t id) {
    T* value = find(id);
    if (value == nullptr) throw std::out_of_range("DenseIdMap: unknown id");
    return *value;
  }

  /// Inserts `value` under `id`. Returns {slot, inserted}; an existing live
  /// entry is left untouched (inserted == false), matching map::emplace.
  std::pair<T*, bool> emplace(std::uint64_t id, T value) {
    if (!anchored_ || span_ == 0) {
      // First insert, or the window fully drained: re-anchor at `id` so an
      // id jump never forces the window to span the dead gap.
      reserve_capacity(1);
      anchored_ = true;
      base_id_ = id;
      head_ = 0;
      span_ = 1;
    } else if (id >= base_id_ + span_) {
      const std::uint64_t new_span = id - base_id_ + 1;
      reserve_capacity(new_span);
      span_ = static_cast<std::size_t>(new_span);
    } else if (id < base_id_) {
      const std::uint64_t grow_by = base_id_ - id;
      reserve_capacity(span_ + grow_by);
      head_ = (head_ - static_cast<std::size_t>(grow_by)) & mask();
      base_id_ = id;
      span_ += static_cast<std::size_t>(grow_by);
    }
    const std::size_t idx = slot_index(id);
    if (live_[idx]) return {&ring_[idx], false};
    ring_[idx] = std::move(value);
    live_[idx] = 1;
    ++size_;
    return {&ring_[idx], true};
  }

  /// Visits every live entry in ascending id order (a deterministic
  /// function of map contents, independent of insertion history). The
  /// callback gets (id, T&) and must not insert or erase — mutations that
  /// move the window invalidate the traversal; collect ids first if the
  /// visit needs to erase.
  template <typename F>
  void for_each(F&& f) {
    for (std::size_t i = 0; i < span_; ++i) {
      const std::size_t idx = (head_ + i) & mask();
      if (live_[idx]) f(base_id_ + i, ring_[idx]);
    }
  }

  /// Erases the entry (resetting the slot's T so held resources free
  /// immediately); slides the window past leading dead slots. Returns
  /// whether anything was erased.
  bool erase(std::uint64_t id) {
    T* value = find(id);
    if (value == nullptr) return false;
    const std::size_t idx = slot_index(id);
    ring_[idx] = T{};
    live_[idx] = 0;
    --size_;
    while (span_ > 0 && !live_[head_]) {
      head_ = (head_ + 1) & mask();
      ++base_id_;
      --span_;
    }
    return true;
  }

 private:
  [[nodiscard]] std::size_t mask() const noexcept { return ring_.size() - 1; }
  [[nodiscard]] std::size_t slot_index(std::uint64_t id) const noexcept {
    return (head_ + static_cast<std::size_t>(id - base_id_)) & mask();
  }

  /// Hard ceiling on the id window. The map is for *dense* sequential ids;
  /// a window this wide means a caller handed in ids with huge gaps, and
  /// allocating O(gap) slots (or wrapping the doubling loop past 2^63)
  /// must be a loud error, not an OOM.
  static constexpr std::uint64_t kMaxSpan = std::uint64_t{1} << 31;

  /// Grows the ring (power-of-two capacity) until it covers `needed` ids,
  /// compacting the current window to the front of the new ring.
  void reserve_capacity(std::uint64_t needed) {
    if (needed <= ring_.size()) return;
    if (needed > kMaxSpan) {
      throw std::length_error(
          "DenseIdMap: id window too sparse (ids must be dense sequential)");
    }
    std::size_t capacity = ring_.empty() ? 16 : ring_.size();
    while (capacity < needed) capacity *= 2;
    std::vector<T> ring(capacity);
    std::vector<std::uint8_t> live(capacity, 0);
    for (std::size_t i = 0; i < span_; ++i) {
      const std::size_t from = (head_ + i) & mask();
      if (!live_[from]) continue;
      ring[i] = std::move(ring_[from]);
      live[i] = 1;
    }
    ring_ = std::move(ring);
    live_ = std::move(live);
    head_ = 0;
  }

  std::vector<T> ring_;
  std::vector<std::uint8_t> live_;
  std::uint64_t base_id_ = 0;
  std::size_t head_ = 0;  // ring offset of base_id_
  std::size_t span_ = 0;  // ids covered by the window
  std::size_t size_ = 0;  // live entries
  bool anchored_ = false;
};

}  // namespace splicer::common
