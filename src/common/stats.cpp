#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <sstream>
#include <stdexcept>

namespace splicer::common {

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  // SPLICER_LINT_ALLOW(float-order): every caller merges in a fixed index
  // order — shard results are folded 0..N-1 and trial stats are folded in
  // trial order — so this Chan-style combine sees operands in the same
  // sequence on every run and the gates see identical bits.
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double student_t95(std::size_t df) noexcept {
  if (df == 0) return 0.0;
  // Two-sided 95% Student t quantiles for df = 1..30.
  static constexpr double kT95[30] = {
      12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
      2.201,  2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
      2.080,  2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042};
  if (df <= 30) return kT95[df - 1];
  // Beyond the table: interpolate linearly in 1/df through the standard
  // df = 40, 60, 120, infinity anchors (the quantile is near-linear in
  // 1/df, the classic textbook interpolation rule). Continuous at df 30.
  struct Anchor {
    double inv_df;
    double t;
  };
  static constexpr Anchor kTail[] = {{1.0 / 30.0, 2.042},
                                     {1.0 / 40.0, 2.021},
                                     {1.0 / 60.0, 2.000},
                                     {1.0 / 120.0, 1.980},
                                     {0.0, 1.960}};
  const double x = 1.0 / static_cast<double>(df);
  for (std::size_t i = 1; i < std::size(kTail); ++i) {
    if (x >= kTail[i].inv_df) {
      const Anchor hi = kTail[i - 1];
      const Anchor lo = kTail[i];
      const double frac = (x - lo.inv_df) / (hi.inv_df - lo.inv_df);
      return lo.t + frac * (hi.t - lo.t);
    }
  }
  return 1.960;
}

double ci95_half_width(const RunningStats& stats) noexcept {
  if (stats.count() < 2) return 0.0;
  return student_t95(stats.count() - 1) * stats.stddev() /
         std::sqrt(static_cast<double>(stats.count()));
}

double percentile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("percentile q out of [0,1]");
  std::sort(values.begin(), values.end());
  if (values.size() == 1) return values.front();
  const double rank = q * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const auto hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] + frac * (values[hi] - values[lo]);
}

double median(std::vector<double> values) { return percentile(std::move(values), 0.5); }

double mean_of(const std::vector<double>& values) {
  if (values.empty()) return 0.0;
  double s = 0.0;
  for (const double v : values) s += v;
  return s / static_cast<double>(values.size());
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {
  if (buckets == 0) throw std::invalid_argument("Histogram needs >= 1 bucket");
  if (!(lo < hi)) throw std::invalid_argument("Histogram needs lo < hi");
}

void Histogram::add(double x) noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto idx = static_cast<std::ptrdiff_t>((x - lo_) / width);
  idx = std::clamp<std::ptrdiff_t>(idx, 0,
                                   static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const noexcept {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(i);
}

double Histogram::bucket_hi(std::size_t i) const noexcept {
  return bucket_lo(i + 1);
}

std::string Histogram::render(std::size_t width) const {
  std::uint64_t peak = 1;
  for (const auto c : counts_) peak = std::max(peak, c);
  std::ostringstream out;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(width));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

}  // namespace splicer::common
