#include "common/samplers.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace splicer::common {

LogNormalSampler::LogNormalSampler(double median, double mean, double floor)
    : floor_(floor) {
  if (!(median > 0.0) || !(mean > 0.0)) {
    throw std::invalid_argument("LogNormalSampler: median and mean must be > 0");
  }
  if (mean < median) {
    throw std::invalid_argument("LogNormalSampler: mean must be >= median");
  }
  mu_ = std::log(median);
  sigma_ = std::sqrt(2.0 * std::log(mean / median));
}

double LogNormalSampler::sample(Rng& rng) const {
  return std::max(floor_, rng.log_normal(mu_, sigma_));
}

ZipfSampler::ZipfSampler(std::size_t n, double s) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double acc = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), s);
    cdf_[k] = acc;
  }
  for (auto& v : cdf_) v /= acc;
  cdf_.back() = 1.0;  // guard against FP round-off at the tail
}

std::size_t ZipfSampler::sample(Rng& rng) const {
  const double u = rng.uniform01();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

PoissonProcess::PoissonProcess(double rate_per_sec, double start_time)
    : rate_(rate_per_sec), now_(start_time) {
  if (!(rate_per_sec > 0.0)) {
    throw std::invalid_argument("PoissonProcess: rate must be > 0");
  }
}

double PoissonProcess::next(Rng& rng) {
  now_ += rng.exponential(rate_);
  return now_;
}

LogNormalSampler make_channel_size_sampler() {
  return LogNormalSampler(ChannelSizeDefaults::kMedianTokens,
                          ChannelSizeDefaults::kMeanTokens,
                          ChannelSizeDefaults::kMinTokens);
}

LogNormalSampler make_txn_value_sampler() {
  return LogNormalSampler(TxnValueDefaults::kMedianTokens,
                          TxnValueDefaults::kMeanTokens,
                          TxnValueDefaults::kMinTokens);
}

}  // namespace splicer::common
