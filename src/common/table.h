#pragma once

// Aligned console tables and CSV emission for the benchmark harness. Every
// figure/table bench prints a human-readable table (the paper's rows/series)
// and can mirror it to CSV for plotting.

#include <iosfwd>
#include <string>
#include <vector>

namespace splicer::common {

/// Column-aligned text table. Cells are strings; numeric helpers format with
/// fixed precision so that series line up visually.
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Starts a new row; returns the row index.
  std::size_t add_row();

  void set(std::size_t row, std::size_t col, std::string value);
  void set(std::size_t row, std::size_t col, double value, int precision = 3);
  void set(std::size_t row, std::size_t col, std::int64_t value);

  /// Appends a full row at once (must match header width).
  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return cells_.size(); }
  [[nodiscard]] std::size_t cols() const noexcept { return header_.size(); }

  /// Renders with a separator under the header.
  [[nodiscard]] std::string render() const;

  /// Emits RFC-4180-ish CSV (quotes cells containing commas/quotes).
  [[nodiscard]] std::string to_csv() const;

  /// Writes CSV to a file path; throws std::runtime_error on I/O failure.
  void write_csv(const std::string& path) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision (helper shared with benches).
[[nodiscard]] std::string format_double(double value, int precision = 3);

/// Formats a ratio as a percentage string like "93.1%".
[[nodiscard]] std::string format_percent(double ratio, int precision = 1);

}  // namespace splicer::common
