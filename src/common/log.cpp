#include "common/log.h"

#include <atomic>
#include <iostream>

namespace splicer::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log_line(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

LogMessage::~LogMessage() { log_line(level_, stream_.str()); }

}  // namespace splicer::common
