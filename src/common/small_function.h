#pragma once

// Move-only type-erased callable with small-buffer storage.
//
// std::function heap-allocates any target larger than its 16-byte internal
// buffer and requires copyability; on the experiment sweep path that costs
// one allocation per submitted task. SmallFunction stores targets up to
// `Capacity` bytes inline (no allocation, the common case for lambdas
// capturing a few pointers/indices) and falls back to the heap only for
// oversized targets. Move-only, so tasks can own move-only state.

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace splicer::common {

template <typename Signature, std::size_t Capacity = 48>
class SmallFunction;

template <typename R, typename... Args, std::size_t Capacity>
class SmallFunction<R(Args...), Capacity> {
 public:
  SmallFunction() noexcept = default;
  SmallFunction(std::nullptr_t) noexcept {}  // NOLINT(google-explicit-constructor)

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  SmallFunction(F&& f) {  // NOLINT(google-explicit-constructor)
    using Target = std::decay_t<F>;
    if constexpr (sizeof(Target) <= Capacity &&
                  alignof(Target) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Target>) {
      ::new (static_cast<void*>(storage_)) Target(std::forward<F>(f));
      ops_ = &inline_ops<Target>;
    } else {
      // Oversized target: the inline object is just an owning pointer.
      ::new (static_cast<void*>(storage_))
          Target*(new Target(std::forward<F>(f)));
      ops_ = &boxed_ops<Target>;
    }
  }

  SmallFunction(SmallFunction&& other) noexcept { move_from(other); }

  SmallFunction& operator=(SmallFunction&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }

  SmallFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  SmallFunction(const SmallFunction&) = delete;
  SmallFunction& operator=(const SmallFunction&) = delete;

  ~SmallFunction() { reset(); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  R operator()(Args... args) {
    if (ops_ == nullptr) throw std::bad_function_call();
    return ops_->call(storage_, std::forward<Args>(args)...);
  }

 private:
  struct Ops {
    R (*call)(void* storage, Args&&... args);
    void (*relocate)(void* dst, void* src) noexcept;  // move + destroy src
    void (*destroy)(void* storage) noexcept;
  };

  template <typename Target>
  static constexpr Ops inline_ops{
      [](void* storage, Args&&... args) -> R {
        return (*static_cast<Target*>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Target(std::move(*static_cast<Target*>(src)));
        static_cast<Target*>(src)->~Target();
      },
      [](void* storage) noexcept { static_cast<Target*>(storage)->~Target(); },
  };

  template <typename Target>
  static constexpr Ops boxed_ops{
      [](void* storage, Args&&... args) -> R {
        return (**static_cast<Target**>(storage))(std::forward<Args>(args)...);
      },
      [](void* dst, void* src) noexcept {
        ::new (dst) Target*(*static_cast<Target**>(src));
        *static_cast<Target**>(src) = nullptr;
      },
      [](void* storage) noexcept { delete *static_cast<Target**>(storage); },
  };

  void move_from(SmallFunction& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(storage_, other.storage_);
      ops_ = std::exchange(other.ops_, nullptr);
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[Capacity < sizeof(void*)
                                                   ? sizeof(void*)
                                                   : Capacity];
  const Ops* ops_ = nullptr;
};

}  // namespace splicer::common
