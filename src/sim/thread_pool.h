#pragma once

// Fixed-shard thread pool for the experiment harness.
//
// Deliberately work-stealing-free: every task is pinned to a shard (worker)
// at submission time, either explicitly (`submit_to`) or round-robin
// (`submit`). With sharding fixed at submission, the assignment of tasks to
// workers is a pure function of the submission sequence — independent of
// scheduling jitter — which keeps parallel experiment runs reproducible and
// easy to reason about. Experiment tasks are coarse (one simulation each)
// and pre-counted, so stealing would buy little and cost placement
// determinism.
//
// Exceptions thrown by tasks are captured; the first one is rethrown from
// `wait()` and the rest are discarded. The pool is reusable after `wait()`
// returns or throws.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/small_function.h"

namespace splicer::sim {

class ThreadPool {
 public:
  /// Task type: move-only with small-buffer storage, so a submission whose
  /// captures fit the inline buffer costs no allocation (std::function
  /// heap-allocates anything past 16 bytes and forbids move-only captures).
  using Task = common::SmallFunction<void()>;

  /// Spawns `threads` workers; 0 means one per hardware thread.
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains outstanding work (exceptions are dropped at this point — call
  /// `wait()` first if you care), then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return shards_.size();
  }

  /// Enqueues a task on the next shard (round-robin over workers).
  void submit(Task task);

  /// Enqueues a task on a specific shard. `shard` must be < thread_count();
  /// anything else throws std::out_of_range. Wrapping is deliberately not
  /// done here: silent modulo aliasing folds two logical shards onto one
  /// worker — serializing them with no visible signal — which is exactly
  /// the mismatch the sharded engine needs surfaced. Callers that want a
  /// wrapped key must write `key % pool.thread_count()` themselves, making
  /// the fold explicit at the call site.
  void submit_to(std::size_t shard, Task task);

  /// Blocks until every submitted task has finished. If any task threw, the
  /// first captured exception is rethrown here and the rest are discarded.
  void wait();

  /// Runs `body(i)` for every i in [0, n), sharded into `thread_count()`
  /// contiguous blocks: shard s executes indices [n*s/W, n*(s+1)/W) where
  /// W = thread_count(), so index i always lands on shard floor(i*W/n)-ish
  /// (the unique s whose block contains i). The mapping is a pure function
  /// of (n, W) — stable across runs. Blocks until done (exceptions as in
  /// `wait()`). `body` is captured by reference (it outlives the call) — no
  /// type-erasure wrapper, no per-shard allocation.
  template <typename F>
  void parallel_for(std::size_t n, F&& body) {
    const std::size_t workers = thread_count();
    for (std::size_t s = 0; s < workers; ++s) {
      const std::size_t begin = n * s / workers;
      const std::size_t end = n * (s + 1) / workers;
      if (begin == end) continue;
      submit_to(s, [&body, begin, end] {
        for (std::size_t i = begin; i < end; ++i) body(i);
      });
    }
    wait();
  }

  /// Shard index of the calling worker thread, or -1 off-pool.
  [[nodiscard]] static int current_shard() noexcept;

 private:
  struct Shard {
    std::mutex mutex;
    std::condition_variable ready;
    std::deque<Task> queue;
    std::thread worker;
  };

  void worker_loop(std::size_t shard_index);
  void record_exception(std::exception_ptr error);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::size_t> next_shard_{0};

  std::mutex done_mutex_;
  std::condition_variable all_done_;
  std::size_t pending_ = 0;        // guarded by done_mutex_
  std::atomic<bool> stopping_{false};
  std::exception_ptr first_error_; // guarded by done_mutex_
};

}  // namespace splicer::sim
