#pragma once

// Network traffic accounting shared by the routing engine and the placement
// effectiveness evaluation (Fig. 9(e)/(f) plots delay vs "total traffic
// overhead": every data hop and control message increments these).

#include <cstdint>

namespace splicer::sim {

struct MessageCounters {
  std::uint64_t data_hops = 0;        // one TU crossing one channel
  std::uint64_t ack_messages = 0;     // per-hop acknowledgments
  /// Price probes, one per hop of each probed path. Counted only for
  /// pairs with traffic (demands queued or TUs outstanding) — a pair the
  /// incremental tick holds asleep is by definition traffic-free, so both
  /// tick modes count the exact same probes (memoized path-price sums
  /// reuse a cached double, never skip the counting).
  std::uint64_t probe_messages = 0;
  std::uint64_t sync_messages = 0;    // hub<->hub epoch synchronisation
  std::uint64_t control_messages = 0; // payreq, key fetch, receipts, misc

  [[nodiscard]] std::uint64_t total() const noexcept {
    return data_hops + ack_messages + probe_messages + sync_messages +
           control_messages;
  }

  MessageCounters& operator+=(const MessageCounters& other) noexcept {
    data_hops += other.data_hops;
    ack_messages += other.ack_messages;
    probe_messages += other.probe_messages;
    sync_messages += other.sync_messages;
    control_messages += other.control_messages;
    return *this;
  }
};

}  // namespace splicer::sim
