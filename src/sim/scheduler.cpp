#include "sim/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

namespace splicer::sim {

std::uint32_t Scheduler::acquire_node(Time when) {
  std::uint32_t slot;
  if (free_head_ != kNullIndex) {
    slot = free_head_;
    free_head_ = pool_[slot].next_free;
    pool_[slot].next_free = kNullIndex;
  } else {
    slot = static_cast<std::uint32_t>(pool_.size());
    pool_.emplace_back();
  }
  Node& node = pool_[slot];
  node.when = when < now_ ? now_ : when;
  node.seq = next_seq_++;
  return slot;
}

void Scheduler::release_node(std::uint32_t slot) {
  Node& node = pool_[slot];
  ++node.generation;  // invalidate outstanding EventIds for this slot
  node.heap_pos = kNullIndex;
  node.event = EngineEvent{};
  node.callback = nullptr;
  node.next_free = free_head_;
  free_head_ = slot;
}

Scheduler::EventId Scheduler::at(Time when, Callback callback) {
  const std::uint32_t slot = acquire_node(when);
  pool_[slot].callback = std::move(callback);
  heap_push(slot);
  return (static_cast<EventId>(pool_[slot].generation) << 32) | slot;
}

Scheduler::EventId Scheduler::at(Time when, const EngineEvent& event) {
  if (sink_ == nullptr) {
    throw std::logic_error("Scheduler: typed event scheduled without a sink");
  }
  if (event.kind == EngineEvent::Kind::kNone) {
    // kNone is the pool's "this node carries a callback" discriminator;
    // letting it through would mis-route the event to the (empty) callback
    // branch at fire time — reject at the scheduling site instead.
    throw std::invalid_argument("Scheduler: typed event with kind kNone");
  }
  const std::uint32_t slot = acquire_node(when);
  pool_[slot].event = event;
  heap_push(slot);
  return (static_cast<EventId>(pool_[slot].generation) << 32) | slot;
}

namespace {
[[nodiscard]] Time next_boundary_after(Time now, Time period) {
  if (period <= 0) {
    throw std::invalid_argument("Scheduler::at_next_boundary: period <= 0");
  }
  // Strictly after now: a flush that runs exactly on boundary k*period and
  // generates new work must coalesce that work onto boundary (k+1)*period.
  Time when = (std::floor(now / period) + 1.0) * period;
  while (when <= now) when += period;  // guard against rounding at huge t/period
  return when;
}
}  // namespace

Scheduler::EventId Scheduler::at_next_boundary(Time period, Callback callback) {
  return at(next_boundary_after(now_, period), std::move(callback));
}

Scheduler::EventId Scheduler::at_next_boundary(Time period,
                                               const EngineEvent& event) {
  return at(next_boundary_after(now_, period), event);
}

bool Scheduler::cancel(EventId id) {
  const std::uint32_t slot = slot_of(id);
  if (slot >= pool_.size()) return false;
  Node& node = pool_[slot];
  // A stale generation (or a free slot) means the event already fired or
  // was cancelled: report failure without touching any accounting.
  if (node.generation != generation_of(id) || node.heap_pos == kNullIndex) {
    return false;
  }
  heap_remove(node.heap_pos);
  release_node(slot);
  return true;
}

// SPLICER_LINT_ALLOW(std-function): definition of the documented periodic-
// tick fallback variant declared in scheduler.h; not on the hot path.
void Scheduler::every(Time period, std::function<bool()> callback) {
  after(period, [this, period, cb = std::move(callback)]() mutable {
    if (cb()) every(period, std::move(cb));
  });
}

#ifdef SPLICER_AUDIT
void Scheduler::audit_check_pop(const HeapEntry& top) {
  const bool monotone =
      top.when > audit_last_when_ ||
      (top.when == audit_last_when_ && top.seq > audit_last_seq_);
  if (!monotone) {
    throw std::logic_error(
        "Scheduler audit: non-monotone (when, seq) pop — heap order broken");
  }
  if (top.when < now_) {
    throw std::logic_error("Scheduler audit: popped event is in the past");
  }
  audit_last_when_ = top.when;
  audit_last_seq_ = top.seq;
}

void Scheduler::audit_validate_heap() const {
  const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
  for (std::uint32_t pos = 0; pos < size; ++pos) {
    const HeapEntry& entry = heap_[pos];
    if (pos > 0 && fires_before(entry, heap_[(pos - 1) / 4])) {
      throw std::logic_error(
          "Scheduler audit: 4-ary heap property violated");
    }
    const Node& node = pool_[entry.slot];
    if (node.heap_pos != pos || node.when != entry.when ||
        node.seq != entry.seq) {
      throw std::logic_error(
          "Scheduler audit: heap entry / pool back-pointer mismatch");
    }
  }
}
#endif

bool Scheduler::step() {
  if (heap_.empty()) return false;
#ifdef SPLICER_AUDIT
  audit_check_pop(heap_[0]);
#endif
  const std::uint32_t slot = heap_[0].slot;
  Node& node = pool_[slot];
  now_ = node.when;
  // Copy the payload out before releasing: the handler may schedule new
  // events, which can recycle this slot or grow the pool.
  const EngineEvent event = node.event;
  Callback callback = std::move(node.callback);
  heap_remove(0);
  release_node(slot);
  if (event.kind == EngineEvent::Kind::kNone) {
    callback();  // empty callbacks throw bad_function_call, as before
  } else {
    sink_->handle_event(event);
  }
  return true;
}

std::size_t Scheduler::run(Time until, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && !heap_.empty()) {
    if (heap_[0].when > until) break;
    if (step()) ++executed;
  }
  return executed;
}

void Scheduler::heap_push(std::uint32_t slot) {
  const Node& node = pool_[slot];
  pool_[slot].heap_pos = static_cast<std::uint32_t>(heap_.size());
  heap_.push_back(HeapEntry{node.when, node.seq, slot});
  sift_up(pool_[slot].heap_pos);
#ifdef SPLICER_AUDIT
  audit_on_mutation();
#endif
}

void Scheduler::heap_remove(std::uint32_t pos) {
  const HeapEntry last = heap_.back();
  heap_.pop_back();
  if (pos == heap_.size()) {
#ifdef SPLICER_AUDIT
    audit_on_mutation();
#endif
    return;  // removed the tail entry
  }
  heap_[pos] = last;
  pool_[last.slot].heap_pos = pos;
  // The moved entry may violate the heap property in either direction.
  sift_down(pos);
  sift_up(pool_[last.slot].heap_pos);
#ifdef SPLICER_AUDIT
  audit_on_mutation();
#endif
}

void Scheduler::sift_up(std::uint32_t pos) {
  const HeapEntry entry = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!fires_before(entry, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    pool_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = entry;
  pool_[entry.slot].heap_pos = pos;
}

void Scheduler::sift_down(std::uint32_t pos) {
  const HeapEntry entry = heap_[pos];
  const std::uint32_t size = static_cast<std::uint32_t>(heap_.size());
  for (;;) {
    const std::uint32_t first_child = pos * 4 + 1;
    if (first_child >= size) break;
    std::uint32_t best = first_child;
    const std::uint32_t last_child =
        std::min(first_child + 3, size - 1);
    for (std::uint32_t c = first_child + 1; c <= last_child; ++c) {
      if (fires_before(heap_[c], heap_[best])) best = c;
    }
    if (!fires_before(heap_[best], entry)) break;
    heap_[pos] = heap_[best];
    pool_[heap_[pos].slot].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = entry;
  pool_[entry.slot].heap_pos = pos;
}

}  // namespace splicer::sim
