#include "sim/scheduler.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace splicer::sim {

Scheduler::EventId Scheduler::at(Time when, Callback callback) {
  const EventId id = next_id_++;
  queue_.push(Event{when < now_ ? now_ : when, id, std::move(callback)});
  ++live_count_;
  return id;
}

Scheduler::EventId Scheduler::at_next_boundary(Time period, Callback callback) {
  if (period <= 0) {
    throw std::invalid_argument("Scheduler::at_next_boundary: period <= 0");
  }
  // Strictly after now: a flush that runs exactly on boundary k*period and
  // generates new work must coalesce that work onto boundary (k+1)*period.
  Time when = (std::floor(now_ / period) + 1.0) * period;
  while (when <= now_) when += period;  // guard against rounding at huge t/period
  return at(when, std::move(callback));
}

bool Scheduler::cancel(EventId id) {
  if (id == 0 || id >= next_id_) return false;
  const bool inserted = cancelled_.insert(id).second;
  if (inserted && live_count_ > 0) --live_count_;
  return inserted;
}

void Scheduler::every(Time period, std::function<bool()> callback) {
  after(period, [this, period, cb = std::move(callback)]() mutable {
    if (cb()) every(period, std::move(cb));
  });
}

bool Scheduler::step() {
  while (!queue_.empty()) {
    // priority_queue::top is const; move via const_cast is the standard
    // workaround and safe because we pop immediately.
    Event event = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    const auto it = cancelled_.find(event.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;  // skip cancelled without counting it as executed
    }
    --live_count_;
    now_ = event.when;
    event.callback();
    return true;
  }
  return false;
}

std::size_t Scheduler::run(Time until, std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && !queue_.empty()) {
    // Peek next live event time without executing past `until`.
    if (queue_.top().when > until) break;
    if (step()) ++executed;
  }
  return executed;
}

}  // namespace splicer::sim
