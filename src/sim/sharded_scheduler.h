#pragma once

// Barrier-synchronous facade over N per-shard Schedulers.
//
// Each shard owns a full Scheduler (typed event pool + 4-ary heap) and runs
// lock-free within a barrier window; shards communicate only through
// per-(source, destination) mailbox lanes that are drained while every
// shard is parked at the barrier. That single-writer/drain-at-barrier
// discipline is the whole concurrency story: during a parallel phase, lane
// (s, d) is appended to exclusively by the worker running shard s, and the
// coordinator thread reads it only after the pool's wait() (whose mutex
// hand-off establishes the happens-before edge). No atomics, no locks on
// the simulation hot path — and, crucially, the simulation outcome is a
// pure function of the event streams, never of thread interleaving:
//
//   * Within a window a shard sees only its own scheduler, so its event
//     order is the sequential (when, seq) order regardless of what other
//     shards do.
//   * Mail is delivered at the barrier in a fixed (destination, source,
//     emission) order, and a message whose timestamp has already passed is
//     clamped to the barrier time — delivery quantisation onto the barrier
//     grid, the same contract the batched settlement grid already imposes.
//
// Hence: N-shard runs are bit-identical for fixed N, and a 1-shard run
// (one scheduler, no mail) is bit-identical to driving that scheduler's
// run() directly, because Scheduler::run(until) only advances time to
// events it actually fires — windowing cannot change the stream.

#include <cstddef>
#include <cstdint>
#include <vector>

#ifdef SPLICER_AUDIT
#include <atomic>
#include <memory>
#endif

#include "sim/engine_event.h"
#include "sim/scheduler.h"
#include "sim/thread_pool.h"

namespace splicer::sim {

class ShardedScheduler {
 public:
  /// Callbacks the drive loop needs from the owner of the shards (the
  /// sharded engine, or a test harness). run_shard() is invoked
  /// concurrently for distinct shards; everything else runs on the
  /// coordinator thread while the workers are parked.
  class ShardRunner {
   public:
    /// Parallel phase: advance shard `shard` to `until` (inclusive).
    /// Returns the number of events executed.
    virtual std::size_t run_shard(std::size_t shard, Time until) = 0;

    /// Serial phase, after the mailboxes for this barrier have been
    /// drained. Deliver rich cross-shard messages, inject new arrivals due
    /// in the next window, and so on.
    virtual void on_barrier(Time barrier) = 0;

    /// Serial phase, after the window end has been fixed but before any
    /// shard runs. Receives the exact window end, so work that must exist
    /// as scheduler events before the window executes (source arrivals,
    /// lookahead injection) can be materialised for everything due at or
    /// before `window_end` — even when drive() fast-forwards over several
    /// empty periods in one window.
    virtual void before_window(Time window_end) { (void)window_end; }

    /// Earliest pending work the schedulers cannot see (e.g. the next
    /// undelivered source arrival). kForever when there is none.
    [[nodiscard]] virtual Time next_work_time() const { return Scheduler::kForever; }

    /// Absolute time past which pending events are abandoned, mirroring the
    /// sequential engine's deadline-driven hard stop. May grow between
    /// windows as new work is discovered. kForever disables the stop.
    [[nodiscard]] virtual Time hard_stop() const { return Scheduler::kForever; }

   protected:
    ~ShardRunner() = default;
  };

  /// The facade references, but does not own, the shard schedulers: each
  /// engine keeps its own Scheduler, the facade coordinates them.
  /// `barrier_period` must be > 0; align it with the settlement epoch so
  /// the two quantisation grids coincide.
  ShardedScheduler(std::vector<Scheduler*> shards, Time barrier_period);

  [[nodiscard]] std::size_t shard_count() const noexcept { return shards_.size(); }
  [[nodiscard]] Time barrier_period() const noexcept { return period_; }
  [[nodiscard]] Scheduler& shard(std::size_t i) { return *shards_[i]; }

  /// Posts a typed event from shard `from` to shard `to`, due at absolute
  /// time `when`. Callable only from the worker currently running shard
  /// `from` (or from the coordinator between windows): lane (from, to) has
  /// exactly one writer at any moment. The event is scheduled on the
  /// destination at the next barrier, at max(when, barrier).
  void post(std::size_t from, std::size_t to, Time when, const EngineEvent& event);

  /// True while any lane holds undelivered mail.
  [[nodiscard]] bool mail_pending() const noexcept;

  /// Earliest pending event across all shard schedulers (kForever if none).
  [[nodiscard]] Time next_event_time() const noexcept;

  /// Drains every lane into its destination scheduler in (destination,
  /// source, emission) order, clamping each event to fire no earlier than
  /// `barrier`. Called by drive() at each barrier; exposed for tests.
  void drain_mailboxes(Time barrier);

  /// Runs the barrier loop to completion: repeatedly pick the next window
  /// end (fast-forwarding over empty epochs to the earliest pending event,
  /// clamped to the runner's hard stop), run every shard to it in parallel
  /// on `pool`, then drain mail and call the runner's barrier hook. Shard
  /// i is pinned to worker i % pool.thread_count(). Stops when no work
  /// remains at or before the hard stop. Returns total events executed.
  std::uint64_t drive(ThreadPool& pool, ShardRunner& runner);

  /// Barriers completed and cross-shard messages delivered so far.
  [[nodiscard]] std::uint64_t barriers() const noexcept { return barriers_; }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }

  /// BSP critical path in events: the sum over windows of the busiest
  /// shard's event count. With one worker per shard, wall time tracks this
  /// rather than the total — total / critical_path is the parallel speedup
  /// the partition admits on enough cores, independent of the host
  /// (stragglers at each barrier are fully accounted).
  [[nodiscard]] std::uint64_t critical_path_events() const noexcept {
    return critical_path_events_;
  }

 private:
  struct Mail {
    Time when;
    EngineEvent event;
  };

  [[nodiscard]] std::vector<Mail>& lane(std::size_t from, std::size_t to) {
    return lanes_[from * shards_.size() + to];
  }

#ifdef SPLICER_AUDIT
  // Dynamic witness for the single-writer lane contract (SPLICER_AUDIT
  // builds): the first post() from source shard `from` in a phase claims
  // that shard's lanes for its thread; a post from any other thread before
  // the next reset throws. drive() resets ownership at each parallel/serial
  // phase boundary. The atomics exist only in audit builds — the release
  // hot path stays lock- and atomic-free.
  void audit_reset_lane_owners() noexcept;
  void audit_check_lane_writer(std::size_t from);
  std::unique_ptr<std::atomic<std::uint64_t>[]> audit_lane_owner_;
#endif

  std::vector<Scheduler*> shards_;
  Time period_;
  std::vector<std::vector<Mail>> lanes_;  // [from * N + to], single writer
  std::uint64_t barriers_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t critical_path_events_ = 0;
};

}  // namespace splicer::sim
