#pragma once

// Deterministic discrete-event scheduler. Events fire in (time, sequence)
// order, so two events at the same timestamp execute in scheduling order -
// runs are bit-reproducible given the same seed and call sequence. This is
// the substitute substrate for the paper's LND-testnet deployment (see
// DESIGN.md substitution table).
//
// Hot-path representation: events live in a free-list pool (stable slots,
// no per-event allocation) and are ordered by an index-based 4-ary min-heap
// that moves 4-byte slot indices instead of whole event records. An event
// is either a typed EngineEvent (dispatched through the registered
// EventSink) or a std::function fallback for low-frequency work. EventIds
// encode (slot, generation), so cancel() removes the event from the heap
// eagerly — no tombstone set to sift through, and cancelling an
// already-fired id is a detected no-op (the generation has moved on).

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/engine_event.h"

namespace splicer::sim {

using Time = double;  // seconds

class Scheduler {
 public:
  // SPLICER_LINT_ALLOW(std-function): the documented low-frequency fallback
  // variant (ticks, tests, tools); hot-path traffic uses typed pooled
  // EngineEvents that never touch this type-erased path.
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Registers the typed-event receiver. Required before scheduling any
  /// EngineEvent; fallback callbacks work without one.
  void set_sink(EventSink* sink) noexcept { sink_ = sink; }

  /// Schedules at absolute time (clamped to now if in the past).
  EventId at(Time when, Callback callback);
  EventId at(Time when, const EngineEvent& event);

  /// Schedules `delay` seconds from now (delay < 0 clamps to 0).
  EventId after(Time delay, Callback callback) {
    return at(now_ + delay, std::move(callback));
  }
  EventId after(Time delay, const EngineEvent& event) {
    return at(now_ + delay, event);
  }

  /// Schedules at the next strict multiple of `period` after now — the
  /// coalescing point for per-epoch batched work: every request made inside
  /// one epoch lands on the same boundary timestamp. period must be > 0.
  EventId at_next_boundary(Time period, Callback callback);
  EventId at_next_boundary(Time period, const EngineEvent& event);

  /// Cancels a pending event; returns false if already fired/cancelled.
  /// Eager: the event leaves the heap immediately and its pool slot is
  /// recycled (the slot's generation counter invalidates the old id).
  bool cancel(EventId id);

  /// Schedules `callback` every `period` seconds starting at now+period,
  /// until it returns false.
  // SPLICER_LINT_ALLOW(std-function): periodic ticks fire a handful of times
  // per simulated second — the documented fallback variant, not the hot path.
  void every(Time period, std::function<bool()> callback);

  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Timestamp of the next pending event, or kForever when empty. The
  /// sharded facade uses this to fast-forward across empty barrier epochs.
  [[nodiscard]] Time next_event_time() const noexcept {
    return heap_.empty() ? kForever : heap_[0].when;
  }

  /// Executes the next event; returns false if none remain.
  bool step();

  /// Runs until the queue drains, `until` is passed, or `max_events` fire.
  /// Returns the number of events executed.
  std::size_t run(Time until = kForever, std::size_t max_events = kUnlimited);

  static constexpr Time kForever = 1e100;
  static constexpr std::size_t kUnlimited = ~std::size_t{0};

 private:
  static constexpr std::uint32_t kNullIndex = 0xffffffffu;

  struct Node {
    Time when = 0.0;
    std::uint64_t seq = 0;           // (when, seq) is the firing order
    std::uint32_t generation = 1;    // bumped on release; validates EventIds
    std::uint32_t heap_pos = kNullIndex;  // kNullIndex when free
    std::uint32_t next_free = kNullIndex;
    EngineEvent event;
    Callback callback;  // non-empty = fallback dispatch
  };

  [[nodiscard]] static constexpr std::uint32_t slot_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id);
  }
  [[nodiscard]] static constexpr std::uint32_t generation_of(EventId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }

  /// Pops a pool slot (growing the pool if the free list is empty) and
  /// stamps it with `when` and the next sequence number.
  std::uint32_t acquire_node(Time when);
  /// Returns a slot to the free list; bumps its generation so any EventId
  /// still pointing at it is detected as stale.
  void release_node(std::uint32_t slot);

  /// Heap entry with the ordering key inlined: sift comparisons stay in the
  /// contiguous heap array instead of chasing pool nodes per comparison.
  struct HeapEntry {
    Time when;
    std::uint64_t seq;
    std::uint32_t slot;
  };

  [[nodiscard]] static bool fires_before(const HeapEntry& a,
                                         const HeapEntry& b) noexcept {
    if (a.when != b.when) return a.when < b.when;
    return a.seq < b.seq;
  }

  void heap_push(std::uint32_t slot);
  void heap_remove(std::uint32_t pos);
  void sift_up(std::uint32_t pos);
  void sift_down(std::uint32_t pos);

#ifdef SPLICER_AUDIT
  // Dynamic witness for the heap-order invariant (SPLICER_AUDIT builds):
  // pops must be monotone in (when, seq) — the firing order the frozen fig7
  // baseline depends on — and every ~4096 heap mutations the full 4-ary heap
  // property plus the pool heap_pos back-pointers are re-validated.
  void audit_check_pop(const HeapEntry& top);
  void audit_validate_heap() const;
  void audit_on_mutation() {
    if ((++audit_mutations_ & 0xfffu) == 0) audit_validate_heap();
  }
  Time audit_last_when_ = -kForever;
  std::uint64_t audit_last_seq_ = 0;
  std::uint64_t audit_mutations_ = 0;
#endif

  Time now_ = 0.0;
  std::uint64_t next_seq_ = 1;
  EventSink* sink_ = nullptr;
  std::vector<Node> pool_;
  std::uint32_t free_head_ = kNullIndex;
  std::vector<HeapEntry> heap_;  // 4-ary min-heap keyed by (when, seq)
};

}  // namespace splicer::sim
