#pragma once

// Deterministic discrete-event scheduler. Events fire in (time, sequence)
// order, so two events at the same timestamp execute in scheduling order -
// runs are bit-reproducible given the same seed and call sequence. This is
// the substitute substrate for the paper's LND-testnet deployment (see
// DESIGN.md substitution table).

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

namespace splicer::sim {

using Time = double;  // seconds

class Scheduler {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedules at absolute time (clamped to now if in the past).
  EventId at(Time when, Callback callback);

  /// Schedules `delay` seconds from now (delay < 0 clamps to 0).
  EventId after(Time delay, Callback callback) {
    return at(now_ + delay, std::move(callback));
  }

  /// Schedules at the next strict multiple of `period` after now — the
  /// coalescing point for per-epoch batched work: every request made inside
  /// one epoch lands on the same boundary timestamp. period must be > 0.
  EventId at_next_boundary(Time period, Callback callback);

  /// Cancels a pending event; returns false if already fired/cancelled.
  bool cancel(EventId id);

  /// Schedules `callback` every `period` seconds starting at now+period,
  /// until it returns false.
  void every(Time period, std::function<bool()> callback);

  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_count_; }

  /// Executes the next event; returns false if none remain.
  bool step();

  /// Runs until the queue drains, `until` is passed, or `max_events` fire.
  /// Returns the number of events executed.
  std::size_t run(Time until = kForever, std::size_t max_events = kUnlimited);

  static constexpr Time kForever = 1e100;
  static constexpr std::size_t kUnlimited = ~std::size_t{0};

 private:
  struct Event {
    Time when;
    EventId id;
    Callback callback;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.id > b.id;
    }
  };

  Time now_ = 0.0;
  EventId next_id_ = 1;
  std::size_t live_count_ = 0;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;  // lazily dropped on pop
};

}  // namespace splicer::sim
