#include "sim/thread_pool.h"

#include <algorithm>
#include <stdexcept>
#include <string>
#include <utility>

namespace splicer::sim {

namespace {
thread_local int t_shard = -1;
}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  shards_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  for (std::size_t i = 0; i < threads; ++i) {
    shards_[i]->worker = std::thread([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // wait() semantics without the rethrow: a dtor must not throw.
    std::unique_lock lock(done_mutex_);
    all_done_.wait(lock, [this] { return pending_ == 0; });
  }
  stopping_.store(true, std::memory_order_release);
  for (auto& shard : shards_) {
    {
      std::lock_guard lock(shard->mutex);
    }
    shard->ready.notify_all();
  }
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
}

void ThreadPool::submit(Task task) {
  const std::size_t next = next_shard_.fetch_add(1, std::memory_order_relaxed);
  submit_to(next % shards_.size(), std::move(task));
}

void ThreadPool::submit_to(std::size_t shard_index, Task task) {
  if (shard_index >= shards_.size()) {
    throw std::out_of_range("ThreadPool::submit_to: shard " +
                            std::to_string(shard_index) + " >= thread_count " +
                            std::to_string(shards_.size()));
  }
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard lock(done_mutex_);
    ++pending_;
  }
  {
    std::lock_guard lock(shard.mutex);
    shard.queue.push_back(std::move(task));
  }
  shard.ready.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock lock(done_mutex_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
  if (first_error_) {
    std::exception_ptr error = std::exchange(first_error_, nullptr);
    lock.unlock();
    std::rethrow_exception(error);
  }
}

int ThreadPool::current_shard() noexcept { return t_shard; }

void ThreadPool::worker_loop(std::size_t shard_index) {
  t_shard = static_cast<int>(shard_index);
  Shard& shard = *shards_[shard_index];
  for (;;) {
    Task task;
    {
      std::unique_lock lock(shard.mutex);
      shard.ready.wait(lock, [&] {
        return !shard.queue.empty() || stopping_.load(std::memory_order_acquire);
      });
      if (shard.queue.empty()) return;  // stopping and drained
      task = std::move(shard.queue.front());
      shard.queue.pop_front();
    }
    try {
      task();
    } catch (...) {
      record_exception(std::current_exception());
    }
    {
      std::lock_guard lock(done_mutex_);
      --pending_;
      if (pending_ == 0) all_done_.notify_all();
    }
  }
}

void ThreadPool::record_exception(std::exception_ptr error) {
  std::lock_guard lock(done_mutex_);
  if (!first_error_) first_error_ = std::move(error);
}

}  // namespace splicer::sim
