#include "sim/sharded_scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#ifdef SPLICER_AUDIT
#include <functional>
#include <string>
#include <thread>
#endif

namespace splicer::sim {

ShardedScheduler::ShardedScheduler(std::vector<Scheduler*> shards,
                                   Time barrier_period)
    : shards_(std::move(shards)),
      period_(barrier_period),
      lanes_(shards_.size() * shards_.size()) {
  if (shards_.empty()) {
    throw std::invalid_argument("ShardedScheduler: no shards");
  }
  for (const Scheduler* s : shards_) {
    if (s == nullptr) {
      throw std::invalid_argument("ShardedScheduler: null shard scheduler");
    }
  }
  if (!(period_ > 0)) {
    throw std::invalid_argument("ShardedScheduler: barrier period must be > 0");
  }
#ifdef SPLICER_AUDIT
  // Value-initialised: 0 = lanes of that source shard unclaimed.
  audit_lane_owner_ =
      std::make_unique<std::atomic<std::uint64_t>[]>(shards_.size());
#endif
}

#ifdef SPLICER_AUDIT
void ShardedScheduler::audit_reset_lane_owners() noexcept {
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    audit_lane_owner_[i].store(0, std::memory_order_release);
  }
}

void ShardedScheduler::audit_check_lane_writer(std::size_t from) {
  // |1 keeps a legitimate hash of 0 from reading as "unclaimed".
  const std::uint64_t self =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) | 1;
  std::uint64_t expected = 0;
  std::atomic<std::uint64_t>& owner = audit_lane_owner_[from];
  if (!owner.compare_exchange_strong(expected, self,
                                     std::memory_order_acq_rel) &&
      expected != self) {
    throw std::logic_error(
        "ShardedScheduler audit: second thread posted from source shard " +
        std::to_string(from) + " within one phase — single-writer lane "
        "contract violated");
  }
}
#endif

void ShardedScheduler::post(std::size_t from, std::size_t to, Time when,
                            const EngineEvent& event) {
  if (from >= shards_.size() || to >= shards_.size()) {
    throw std::out_of_range("ShardedScheduler::post: shard out of range");
  }
  if (event.kind == EngineEvent::Kind::kNone) {
    throw std::invalid_argument("ShardedScheduler::post: event with kind kNone");
  }
#ifdef SPLICER_AUDIT
  audit_check_lane_writer(from);
#endif
  lane(from, to).push_back(Mail{when, event});
}

bool ShardedScheduler::mail_pending() const noexcept {
  for (const auto& l : lanes_) {
    if (!l.empty()) return true;
  }
  return false;
}

Time ShardedScheduler::next_event_time() const noexcept {
  Time next = Scheduler::kForever;
  for (const Scheduler* s : shards_) {
    next = std::min(next, s->next_event_time());
  }
  return next;
}

void ShardedScheduler::drain_mailboxes(Time barrier) {
  const std::size_t n = shards_.size();
  // Fixed (destination, source, emission) order: within one barrier every
  // clamped message lands on the same timestamp, so the destination heap's
  // sequence numbers — and therefore the firing order — reproduce this
  // drain order exactly, independent of which worker ran which shard.
  for (std::size_t to = 0; to < n; ++to) {
    for (std::size_t from = 0; from < n; ++from) {
      auto& l = lane(from, to);
      for (const Mail& mail : l) {
        shards_[to]->at(std::max(mail.when, barrier), mail.event);
        ++messages_delivered_;
      }
      l.clear();
    }
  }
}

std::uint64_t ShardedScheduler::drive(ThreadPool& pool, ShardRunner& runner) {
  const std::size_t n = shards_.size();
  const std::size_t workers = pool.thread_count();
  std::vector<std::size_t> executed(n, 0);
  std::uint64_t total = 0;
  Time barrier = 0.0;
  for (;;) {
    drain_mailboxes(barrier);
    runner.on_barrier(barrier);
    const Time next =
        std::min(next_event_time(), runner.next_work_time());
    // All deliverable work became scheduler events above, so kForever here
    // means the simulation is drained; past the hard stop, pending events
    // are abandoned exactly as the sequential engine abandons them.
    if (next >= Scheduler::kForever || next > runner.hard_stop()) break;

    // Next window end: the smallest barrier-grid multiple covering `next`
    // and strictly after the current barrier (fast-forwarding over empty
    // epochs), clamped to the hard stop so no event fires that the
    // sequential engine would have abandoned.
    Time target = std::ceil(next / period_) * period_;
    while (target <= barrier) target += period_;
    const Time until = std::min(target, runner.hard_stop());
    runner.before_window(until);

#ifdef SPLICER_AUDIT
    // New parallel phase: forget the serial-phase (coordinator) ownership
    // so each source shard's lanes are claimed by whichever worker runs it.
    audit_reset_lane_owners();
#endif
    if (n == 1 || workers == 1) {
      // Degenerate layouts run inline: same window semantics, no
      // cross-thread hand-off cost on the 1-shard parity path.
      for (std::size_t i = 0; i < n; ++i) executed[i] = runner.run_shard(i, until);
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        pool.submit_to(i % workers, [&runner, &executed, i, until] {
          executed[i] = runner.run_shard(i, until);
        });
      }
      pool.wait();
    }
#ifdef SPLICER_AUDIT
    // Back on the coordinator: release worker ownership so serial-phase
    // posts (on_barrier / before_window injection) don't trip the check.
    audit_reset_lane_owners();
#endif
    std::size_t window_max = 0;
    for (std::size_t i = 0; i < n; ++i) {
      total += executed[i];
      window_max = std::max(window_max, executed[i]);
    }
    critical_path_events_ += window_max;
    ++barriers_;
    barrier = until;
  }
  return total;
}

}  // namespace splicer::sim
