#pragma once

// Typed hot-path event payload for the discrete-event scheduler.
//
// The simulation engine schedules millions of events per run; carrying each
// one as a std::function closure costs a heap allocation and an indirect
// call per event. An EngineEvent is instead a tag plus a few POD fields,
// stored inline in the scheduler's event pool and dispatched through a
// single EventSink virtual call — no allocation anywhere on the hot path.
// std::function callbacks remain available as a fallback variant for
// low-frequency work (recurring router ticks, tests, tools).

#include <cstdint>

namespace splicer::sim {

struct EngineEvent {
  enum class Kind : std::uint8_t {
    kNone = 0,       // unset — the event carries a fallback callback instead
    kArrival,        // pull the staged payment into the engine
    kDeadline,       // payment deadline fired: a = PaymentId
    kAttemptHop,     // (re)try a TU's current hop: a = TuId
    kArriveNext,     // TU reached the next node after the hop delay: a = TuId
    kArrivalBucket,  // batched mode: shared same-instant arrivals, a = tick key
    kReleaseTu,      // ack chain fully walked back: a = TuId
    kSettleAck,      // per-hop settle ack: channel, aux = from-node, a = amount
    kRefundAck,      // per-hop refund ack: channel, aux = from-node, a = amount
    kMark,           // congestion mark check: a = TuId, channel, aux = direction
    kDrain,          // rate-limiter queue wake-up: channel, aux = direction
    kFlush,          // settlement-epoch flush boundary
    kRouterTimer,    // router-owned timer: a and b are router-defined
    kRemoteHandoff,  // sharded mode: adopt the next TU from the handoff inbox
    kRemoteResult,   // sharded mode: apply the next entry of the result inbox
    kMutation,       // hostile-world mutation due: a = staged mutator index
  };

  Kind kind = Kind::kNone;
  std::uint32_t channel = 0;  // ChannelId where applicable
  std::uint32_t aux = 0;      // Direction / NodeId where applicable
  std::uint64_t a = 0;        // primary payload (TuId / PaymentId / amount / key)
  std::uint64_t b = 0;        // secondary payload (router timers)
};

/// Receiver for typed events. The engine implements this once; the
/// scheduler dispatches every typed event through it (one devirtualizable
/// call instead of one type-erased closure per event).
class EventSink {
 public:
  virtual void handle_event(const EngineEvent& event) = 0;

 protected:
  ~EventSink() = default;
};

}  // namespace splicer::sim
