#pragma once

// Double-greedy unconstrained submodular maximisation (paper Alg. 1):
// maintains X (growing from the empty set) and Y (shrinking from the full
// ground set); at element u_i it either adds u_i to X or removes it from Y
// based on the marginal gains a_i, b_i. The randomised variant takes the
// "add" branch with probability a'/(a'+b') (a' = b' = 0 resolves to "add",
// paper Alg. 1 line 10) and guarantees E[g(X)] >= 1/2 * OPT; the
// deterministic variant (a_i >= b_i => add) guarantees 1/3 * OPT.

#include "common/rng.h"
#include "submodular/set_function.h"

namespace splicer::submodular {

struct DoubleGreedyResult {
  Subset subset;
  double value = 0.0;
  std::size_t oracle_calls = 0;
};

/// Deterministic double greedy (1/3-approximation for non-negative g).
[[nodiscard]] DoubleGreedyResult double_greedy(const SetFunction& g);

/// Randomised double greedy (1/2-approximation in expectation).
[[nodiscard]] DoubleGreedyResult double_greedy_randomized(const SetFunction& g,
                                                          common::Rng& rng);

/// Minimises a supermodular f by maximising g = f_ub - f, where f_ub is any
/// upper bound on max f (it only shifts g to be non-negative). Returns the
/// minimising subset and f's value there.
struct MinimizeResult {
  Subset subset;
  double value = 0.0;  // f(subset)
  std::size_t oracle_calls = 0;
};

[[nodiscard]] MinimizeResult minimize_supermodular(const SetFunction& f, double f_ub);
[[nodiscard]] MinimizeResult minimize_supermodular_randomized(const SetFunction& f,
                                                              double f_ub,
                                                              common::Rng& rng);

}  // namespace splicer::submodular
