#include "submodular/double_greedy.h"

#include <algorithm>

namespace splicer::submodular {

namespace {

/// Shared core; `decide` returns true to take the add branch.
template <typename Decide>
DoubleGreedyResult run_double_greedy(const SetFunction& g, Decide&& decide) {
  DoubleGreedyResult result;
  const std::size_t n = g.ground_size;
  Subset x = empty_subset(n);
  Subset y = full_subset(n);

  const auto eval = [&](const Subset& s) {
    ++result.oracle_calls;
    return g.value(s);
  };

  double gx = eval(x);
  double gy = eval(y);

  for (std::size_t u = 0; u < n; ++u) {
    x[u] = 1;
    const double gx_with = eval(x);
    x[u] = 0;
    y[u] = 0;
    const double gy_without = eval(y);
    y[u] = 1;

    const double a = gx_with - gx;   // gain of adding u to X
    const double b = gy_without - gy;  // gain of removing u from Y
    if (decide(a, b)) {
      x[u] = 1;
      gx = gx_with;
    } else {
      y[u] = 0;
      gy = gy_without;
    }
  }
  // X == Y at termination.
  result.subset = std::move(x);
  result.value = gx;
  return result;
}

}  // namespace

DoubleGreedyResult double_greedy(const SetFunction& g) {
  return run_double_greedy(g, [](double a, double b) { return a >= b; });
}

DoubleGreedyResult double_greedy_randomized(const SetFunction& g, common::Rng& rng) {
  return run_double_greedy(g, [&rng](double a, double b) {
    const double ap = std::max(a, 0.0);
    const double bp = std::max(b, 0.0);
    if (ap == 0.0 && bp == 0.0) return true;  // paper Alg. 1 line 10
    return rng.uniform01() < ap / (ap + bp);
  });
}

namespace {
MinimizeResult to_minimize_result(const SetFunction& f, DoubleGreedyResult greedy) {
  MinimizeResult result;
  result.subset = std::move(greedy.subset);
  result.value = f.value(result.subset);
  result.oracle_calls = greedy.oracle_calls + 1;
  return result;
}

SetFunction complement(const SetFunction& f, double f_ub) {
  SetFunction g;
  g.ground_size = f.ground_size;
  g.value = [&f, f_ub](const Subset& s) { return f_ub - f.value(s); };
  return g;
}
}  // namespace

MinimizeResult minimize_supermodular(const SetFunction& f, double f_ub) {
  const SetFunction g = complement(f, f_ub);
  return to_minimize_result(f, double_greedy(g));
}

MinimizeResult minimize_supermodular_randomized(const SetFunction& f, double f_ub,
                                                common::Rng& rng) {
  const SetFunction g = complement(f, f_ub);
  return to_minimize_result(f, double_greedy_randomized(g, rng));
}

}  // namespace splicer::submodular
