#pragma once

// Greedy local-descent minimisation baseline (Il'ev-style greedy descent,
// paper ref. [19]) used by the placement ablation bench to show what the
// double greedy buys over plain hill climbing.

#include "submodular/set_function.h"

namespace splicer::submodular {

struct GreedyDescentResult {
  Subset subset;
  double value = 0.0;
  std::size_t oracle_calls = 0;
  std::size_t moves = 0;
};

/// Starts from `start` and repeatedly applies the single best add-or-remove
/// move that strictly decreases f, until a local minimum (or `max_moves`).
[[nodiscard]] GreedyDescentResult greedy_descent(const SetFunction& f, Subset start,
                                                 std::size_t max_moves = 10000);

}  // namespace splicer::submodular
