#pragma once

// Supermodularity / submodularity verification oracles for tests.
// Definition 2 of the paper: f is supermodular iff for all A subset of B and
// i outside B:  f(A + i) - f(A) <= f(B + i) - f(B).

#include "common/rng.h"
#include "submodular/set_function.h"

namespace splicer::submodular {

/// Exhaustive check of Definition 2 (exponential; ground sets <= ~12).
[[nodiscard]] bool is_supermodular_exhaustive(const SetFunction& f,
                                              double tolerance = 1e-9);

/// Randomised spot check: samples `trials` (A, B, i) triples with A subset
/// of B. Returns false on the first violation.
[[nodiscard]] bool is_supermodular_sampled(const SetFunction& f, common::Rng& rng,
                                           std::size_t trials = 200,
                                           double tolerance = 1e-9);

/// Brute-force global minimum over all subsets (exponential; tests only).
struct BruteForceResult {
  Subset subset;
  double value = 0.0;
};
[[nodiscard]] BruteForceResult brute_force_minimum(const SetFunction& f);
[[nodiscard]] BruteForceResult brute_force_maximum(const SetFunction& f);

}  // namespace splicer::submodular
