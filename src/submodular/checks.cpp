#include "submodular/checks.h"

#include <limits>
#include <stdexcept>

namespace splicer::submodular {

namespace {
Subset from_mask(std::size_t n, std::uint64_t mask) {
  Subset s(n, 0);
  for (std::size_t i = 0; i < n; ++i) s[i] = (mask >> i) & 1 ? 1 : 0;
  return s;
}
}  // namespace

bool is_supermodular_exhaustive(const SetFunction& f, double tolerance) {
  const std::size_t n = f.ground_size;
  if (n > 16) throw std::invalid_argument("is_supermodular_exhaustive: n too large");
  const std::uint64_t limit = 1ULL << n;
  // Precompute all values.
  std::vector<double> value(limit);
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    value[mask] = f.value(from_mask(n, mask));
  }
  for (std::uint64_t b = 0; b < limit; ++b) {
    // Enumerate subsets a of b.
    for (std::uint64_t a = b;; a = (a - 1) & b) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t bit = 1ULL << i;
        if (b & bit) continue;  // i must be outside B
        const double lhs = value[a | bit] - value[a];
        const double rhs = value[b | bit] - value[b];
        if (lhs > rhs + tolerance) return false;
      }
      if (a == 0) break;
    }
  }
  return true;
}

bool is_supermodular_sampled(const SetFunction& f, common::Rng& rng,
                             std::size_t trials, double tolerance) {
  const std::size_t n = f.ground_size;
  if (n == 0) return true;
  Subset a(n), b(n);
  for (std::size_t t = 0; t < trials; ++t) {
    std::size_t outside_count = 0;
    for (std::size_t i = 0; i < n; ++i) {
      b[i] = rng.bernoulli(0.5) ? 1 : 0;
      a[i] = b[i] && rng.bernoulli(0.5) ? 1 : 0;
      if (!b[i]) ++outside_count;
    }
    if (outside_count == 0) continue;
    // Pick i outside B.
    std::size_t pick = rng.index(outside_count);
    std::size_t chosen = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!b[i] && pick-- == 0) {
        chosen = i;
        break;
      }
    }
    const double fa = f.value(a);
    const double fb = f.value(b);
    a[chosen] = 1;
    const double fai = f.value(a);
    a[chosen] = 0;
    b[chosen] = 1;
    const double fbi = f.value(b);
    b[chosen] = 0;
    if ((fai - fa) > (fbi - fb) + tolerance) return false;
  }
  return true;
}

namespace {
template <typename Better>
BruteForceResult brute_force(const SetFunction& f, Better&& better) {
  const std::size_t n = f.ground_size;
  if (n > 24) throw std::invalid_argument("brute_force: n too large");
  BruteForceResult best;
  best.value = std::numeric_limits<double>::quiet_NaN();
  const std::uint64_t limit = 1ULL << n;
  for (std::uint64_t mask = 0; mask < limit; ++mask) {
    const Subset s = from_mask(n, mask);
    const double v = f.value(s);
    if (mask == 0 || better(v, best.value)) {
      best.subset = s;
      best.value = v;
    }
  }
  return best;
}
}  // namespace

BruteForceResult brute_force_minimum(const SetFunction& f) {
  return brute_force(f, [](double a, double b) { return a < b; });
}

BruteForceResult brute_force_maximum(const SetFunction& f) {
  return brute_force(f, [](double a, double b) { return a > b; });
}

}  // namespace splicer::submodular
