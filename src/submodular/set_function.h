#pragma once

// Set functions over a ground set {0, .., n-1}, represented as char masks.
//
// The paper's large-scale placement (SS IV-C) minimises a supermodular
// balance-cost f(X) by maximising the non-negative submodular
// f_hat(X) = f_ub - f(X) with the Buchbinder et al. 1/2-approximation
// double greedy (paper Alg. 1).

#include <cstddef>
#include <functional>
#include <vector>

namespace splicer::submodular {

/// Subset indicator over the ground set.
using Subset = std::vector<char>;

/// Evaluation oracle. Implementations should be deterministic.
struct SetFunction {
  std::size_t ground_size = 0;
  // SPLICER_LINT_ALLOW(std-function): offline placement-solver oracle,
  // evaluated during hub selection before any simulation starts — never on
  // the simulation hot path.
  std::function<double(const Subset&)> value;
};

[[nodiscard]] inline Subset empty_subset(std::size_t n) { return Subset(n, 0); }
[[nodiscard]] inline Subset full_subset(std::size_t n) { return Subset(n, 1); }

[[nodiscard]] inline std::size_t cardinality(const Subset& s) {
  std::size_t c = 0;
  for (const char bit : s) c += bit != 0;
  return c;
}

}  // namespace splicer::submodular
