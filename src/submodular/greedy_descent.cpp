#include "submodular/greedy_descent.h"

#include <stdexcept>

namespace splicer::submodular {

GreedyDescentResult greedy_descent(const SetFunction& f, Subset start,
                                   std::size_t max_moves) {
  if (start.size() != f.ground_size) {
    throw std::invalid_argument("greedy_descent: start size mismatch");
  }
  GreedyDescentResult result;
  result.subset = std::move(start);
  const auto eval = [&](const Subset& s) {
    ++result.oracle_calls;
    return f.value(s);
  };
  result.value = eval(result.subset);

  while (result.moves < max_moves) {
    double best_value = result.value;
    std::size_t best_element = f.ground_size;
    for (std::size_t u = 0; u < f.ground_size; ++u) {
      result.subset[u] ^= 1;  // toggle
      const double candidate = eval(result.subset);
      result.subset[u] ^= 1;  // restore
      if (candidate < best_value) {
        best_value = candidate;
        best_element = u;
      }
    }
    if (best_element == f.ground_size) break;  // local minimum
    result.subset[best_element] ^= 1;
    result.value = best_value;
    ++result.moves;
  }
  return result;
}

}  // namespace splicer::submodular
