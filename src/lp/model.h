#pragma once

// Linear/mixed-integer model builder. The paper's small-scale placement
// solution converts the NP-hard hub-placement objective into a MILP
// (eqs. 6-10) and hands it to a commercial solver; src/lp is the in-tree
// substitute: this model API + two-phase simplex + branch & bound.

#include <limits>
#include <string>
#include <vector>

namespace splicer::lp {

enum class Relation { kLessEqual, kEqual, kGreaterEqual };
enum class VarKind { kContinuous, kBinary, kInteger };
enum class Sense { kMinimize, kMaximize };

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

/// One linear term: coeff * var.
struct Term {
  int var;
  double coeff;
};

using LinearExpr = std::vector<Term>;

class Model {
 public:
  /// Adds a variable; returns its index. Binary implies bounds [0,1].
  /// Lower bounds must be finite; upper bounds may be +infinity.
  /// `branch_priority`: branch & bound branches on fractional variables of
  /// the highest priority class first (placement branches hub selectors x
  /// before assignment variables y, which collapses the tree).
  int add_variable(std::string name, double lower, double upper,
                   VarKind kind = VarKind::kContinuous, int branch_priority = 0);

  int add_binary(std::string name, int branch_priority = 0) {
    return add_variable(std::move(name), 0.0, 1.0, VarKind::kBinary,
                        branch_priority);
  }

  /// Adds `expr (relation) rhs`; returns the constraint index. Duplicate
  /// variable terms in `expr` are summed.
  int add_constraint(LinearExpr expr, Relation relation, double rhs);

  void set_objective(LinearExpr expr, Sense sense = Sense::kMinimize);

  [[nodiscard]] std::size_t variable_count() const noexcept { return vars_.size(); }
  [[nodiscard]] std::size_t constraint_count() const noexcept { return rows_.size(); }

  struct Variable {
    std::string name;
    double lower;
    double upper;
    VarKind kind;
    int branch_priority;
  };
  struct Constraint {
    LinearExpr expr;  // normalized: sorted by var, no duplicates
    Relation relation;
    double rhs;
  };

  [[nodiscard]] const Variable& variable(int i) const { return vars_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const Constraint& constraint(int i) const { return rows_.at(static_cast<std::size_t>(i)); }
  [[nodiscard]] const LinearExpr& objective() const noexcept { return objective_; }
  [[nodiscard]] Sense sense() const noexcept { return sense_; }

  [[nodiscard]] bool has_integer_variables() const noexcept;

  /// Objective value of a concrete assignment (no feasibility check).
  [[nodiscard]] double evaluate_objective(const std::vector<double>& values) const;

  /// Whether `values` satisfies all constraints, bounds and integrality
  /// within `tolerance`; used by tests.
  [[nodiscard]] bool is_feasible(const std::vector<double>& values,
                                 double tolerance = 1e-6) const;

 private:
  std::vector<Variable> vars_;
  std::vector<Constraint> rows_;
  LinearExpr objective_;
  Sense sense_ = Sense::kMinimize;
};

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,  // simplex gave up; solution invalid
  kNodeLimit,       // B&B gave up; best incumbent returned if any
};

[[nodiscard]] const char* to_string(SolveStatus status) noexcept;

struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;

  [[nodiscard]] bool ok() const noexcept { return status == SolveStatus::kOptimal; }
};

}  // namespace splicer::lp
