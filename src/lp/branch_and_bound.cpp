#include "lp/branch_and_bound.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

namespace splicer::lp {

namespace {

struct Node {
  std::vector<double> lower;
  std::vector<double> upper;
  double bound;  // LP relaxation objective (minimization form)

  bool operator<(const Node& other) const {
    // priority_queue is a max-heap; we want the smallest bound on top.
    return bound > other.bound;
  }
};

/// Index of the most fractional integer variable within the highest branch
/// priority class that has any fractional variable; -1 if all integral.
int most_fractional(const Model& model, const std::vector<double>& values,
                    double tolerance) {
  int best = -1;
  int best_priority = 0;
  double best_score = -1.0;
  for (std::size_t j = 0; j < model.variable_count(); ++j) {
    const auto& var = model.variable(static_cast<int>(j));
    if (var.kind == VarKind::kContinuous) continue;
    const double v = values[j];
    const double frac = std::abs(v - std::round(v));
    if (frac <= tolerance) continue;
    // Most fractional = frac closest to 0.5.
    const double score = 0.5 - std::abs(frac - 0.5);
    if (best == -1 || var.branch_priority > best_priority ||
        (var.branch_priority == best_priority && score > best_score)) {
      best = static_cast<int>(j);
      best_priority = var.branch_priority;
      best_score = score;
    }
  }
  return best;
}

}  // namespace

Solution BranchAndBoundSolver::solve(const Model& model) const {
  stats_ = BranchAndBoundStats{};
  const SimplexSolver simplex(options_.simplex);
  const double sign = model.sense() == Sense::kMinimize ? 1.0 : -1.0;

  std::vector<double> root_lower(model.variable_count());
  std::vector<double> root_upper(model.variable_count());
  for (std::size_t j = 0; j < model.variable_count(); ++j) {
    root_lower[j] = model.variable(static_cast<int>(j)).lower;
    root_upper[j] = model.variable(static_cast<int>(j)).upper;
  }

  Solution incumbent;
  incumbent.status = SolveStatus::kInfeasible;
  double incumbent_cost = std::numeric_limits<double>::infinity();
  if (warm_start_ && model.is_feasible(*warm_start_)) {
    incumbent.status = SolveStatus::kOptimal;
    incumbent.values = *warm_start_;
    incumbent.objective = model.evaluate_objective(*warm_start_);
    incumbent_cost = sign * incumbent.objective;
    ++stats_.incumbent_updates;
  }

  const Solution root = simplex.solve_with_bounds(model, root_lower, root_upper);
  if (root.status == SolveStatus::kUnbounded) return root;
  if (root.status == SolveStatus::kIterationLimit) return root;
  if (root.status == SolveStatus::kInfeasible) {
    return incumbent.status == SolveStatus::kOptimal ? incumbent : root;
  }

  std::priority_queue<Node> open;
  open.push(Node{std::move(root_lower), std::move(root_upper),
                 sign * root.objective});
  bool node_limit_hit = false;

  while (!open.empty()) {
    if (stats_.nodes_explored >= options_.max_nodes) {
      node_limit_hit = true;
      break;
    }
    Node node = open.top();
    open.pop();
    if (node.bound >= incumbent_cost - options_.objective_tolerance) {
      ++stats_.nodes_pruned_bound;
      continue;  // best-first: every remaining node is also pruned, but
                 // popping them individually keeps the stats honest
    }
    ++stats_.nodes_explored;

    const Solution relaxed = simplex.solve_with_bounds(model, node.lower, node.upper);
    if (relaxed.status == SolveStatus::kInfeasible) {
      ++stats_.nodes_infeasible;
      continue;
    }
    if (relaxed.status == SolveStatus::kIterationLimit) {
      // Treat as unprunable failure; give up globally to stay sound.
      Solution s;
      s.status = SolveStatus::kIterationLimit;
      return s;
    }
    const double node_cost = sign * relaxed.objective;
    if (node_cost >= incumbent_cost - options_.objective_tolerance) {
      ++stats_.nodes_pruned_bound;
      continue;
    }

    const int branch_var =
        most_fractional(model, relaxed.values, options_.integrality_tolerance);
    if (branch_var < 0) {
      // Integral solution better than the incumbent.
      incumbent.status = SolveStatus::kOptimal;
      incumbent.values = relaxed.values;
      // Snap integer values exactly.
      for (std::size_t j = 0; j < model.variable_count(); ++j) {
        if (model.variable(static_cast<int>(j)).kind != VarKind::kContinuous) {
          incumbent.values[j] = std::round(incumbent.values[j]);
        }
      }
      incumbent.objective = model.evaluate_objective(incumbent.values);
      incumbent_cost = sign * incumbent.objective;
      ++stats_.incumbent_updates;
      continue;
    }

    const double v = relaxed.values[static_cast<std::size_t>(branch_var)];
    Node down = node;
    down.upper[static_cast<std::size_t>(branch_var)] = std::floor(v);
    down.bound = node_cost;
    Node up = std::move(node);
    up.lower[static_cast<std::size_t>(branch_var)] = std::ceil(v);
    up.bound = node_cost;
    open.push(std::move(down));
    open.push(std::move(up));
  }

  if (incumbent.status == SolveStatus::kOptimal) {
    if (node_limit_hit) incumbent.status = SolveStatus::kNodeLimit;
    return incumbent;
  }
  Solution s;
  s.status = node_limit_hit ? SolveStatus::kNodeLimit : SolveStatus::kInfeasible;
  return s;
}

}  // namespace splicer::lp
