#pragma once

// Branch & bound for mixed binary/integer programs over the simplex LP
// relaxation. Commercial solvers combine branch & bound with cutting
// planes (paper SS IV-C); this implementation uses pure best-bound-first
// branch & bound with most-fractional branching, which is exact, just
// slower - adequate for the placement instances exercised in-tree.

#include <optional>
#include <vector>

#include "lp/model.h"
#include "lp/simplex.h"

namespace splicer::lp {

struct BranchAndBoundOptions {
  std::size_t max_nodes = 200000;
  double integrality_tolerance = 1e-6;
  /// Prune margin: nodes whose bound is within this of the incumbent are cut.
  double objective_tolerance = 1e-9;
  SimplexOptions simplex;
};

struct BranchAndBoundStats {
  std::size_t nodes_explored = 0;
  std::size_t nodes_pruned_bound = 0;
  std::size_t nodes_infeasible = 0;
  std::size_t incumbent_updates = 0;
};

class BranchAndBoundSolver {
 public:
  explicit BranchAndBoundSolver(BranchAndBoundOptions options = {})
      : options_(options) {}

  /// Exact solve (status kOptimal) unless the node limit triggers, in which
  /// case the best incumbent is returned with status kNodeLimit.
  [[nodiscard]] Solution solve(const Model& model) const;

  /// Seeds the incumbent with a known-feasible assignment (e.g., the
  /// Lemma-1 greedy placement) so bound pruning bites immediately.
  void set_warm_start(std::vector<double> values) { warm_start_ = std::move(values); }

  [[nodiscard]] const BranchAndBoundStats& stats() const noexcept { return stats_; }

 private:
  BranchAndBoundOptions options_;
  std::optional<std::vector<double>> warm_start_;
  mutable BranchAndBoundStats stats_;
};

}  // namespace splicer::lp
