#include "lp/simplex.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace splicer::lp {

namespace {

/// Dense tableau state for one solve.
class Tableau {
 public:
  Tableau(const Model& model, const std::vector<double>& lower,
          const std::vector<double>& upper, const SimplexOptions& options)
      : model_(model), lower_(lower), upper_(upper), options_(options) {}

  Solution run() {
    validate_bounds();
    if (!shift_bounds_ok_) return fail(SolveStatus::kInfeasible);
    build();
    if (!phase1()) return fail(SolveStatus::kInfeasible);
    if (iterations_exhausted_) return fail(SolveStatus::kIterationLimit);
    const SolveStatus phase2_status = phase2();
    if (phase2_status != SolveStatus::kOptimal) return fail(phase2_status);
    return extract();
  }

  /// Pre-pass: validate bounds; called from constructor path.
  void validate_bounds() {
    for (std::size_t j = 0; j < lower_.size(); ++j) {
      if (upper_[j] < lower_[j] - options_.tolerance) {
        shift_bounds_ok_ = false;
        return;
      }
    }
  }

 private:
  // Column layout: [0, n_struct) structural vars (shifted to lb=0),
  // then slacks/surplus, then artificials. rhs_ kept separately.
  const Model& model_;
  const std::vector<double>& lower_;
  const std::vector<double>& upper_;
  const SimplexOptions& options_;

  std::size_t n_struct_ = 0;
  std::size_t n_total_ = 0;
  std::size_t first_artificial_ = 0;
  std::vector<std::vector<double>> a_;  // m rows
  std::vector<double> rhs_;
  std::vector<std::size_t> basis_;      // basis_[row] = column
  std::vector<double> reduced_;         // reduced-cost row
  double objective_shift_ = 0.0;        // constant from bound shifting
  bool shift_bounds_ok_ = true;
  bool iterations_exhausted_ = false;
  std::size_t iterations_used_ = 0;

  Solution fail(SolveStatus status) const {
    Solution s;
    s.status = status;
    return s;
  }

  [[nodiscard]] std::size_t iteration_cap() const {
    if (options_.max_iterations) return options_.max_iterations;
    // Generous default: simplex rarely needs more than ~4(m+n) pivots in
    // practice; the cap only guards against pathological cycling.
    return 200 + 50 * (a_.size() + n_total_);
  }

  void build() {
    n_struct_ = model_.variable_count();

    // Row material: every model constraint, plus an upper-bound row for
    // each variable with a finite upper bound after shifting.
    struct RowSpec {
      LinearExpr expr;  // in shifted variables
      Relation rel;
      double rhs;
    };
    std::vector<RowSpec> specs;
    specs.reserve(model_.constraint_count() + n_struct_);

    for (std::size_t c = 0; c < model_.constraint_count(); ++c) {
      const auto& row = model_.constraint(static_cast<int>(c));
      double shifted_rhs = row.rhs;
      for (const Term& t : row.expr) {
        shifted_rhs -= t.coeff * lower_[static_cast<std::size_t>(t.var)];
      }
      specs.push_back(RowSpec{row.expr, row.relation, shifted_rhs});
    }
    for (std::size_t j = 0; j < n_struct_; ++j) {
      const double span = upper_[j] - lower_[j];
      if (std::isfinite(span)) {
        specs.push_back(RowSpec{{Term{static_cast<int>(j), 1.0}},
                                Relation::kLessEqual, span});
      }
    }

    // Normalize rhs >= 0 and count auxiliary columns.
    std::size_t n_slack = 0;
    std::size_t n_artificial = 0;
    for (auto& spec : specs) {
      if (spec.rhs < 0) {
        for (auto& t : spec.expr) t.coeff = -t.coeff;
        spec.rhs = -spec.rhs;
        spec.rel = spec.rel == Relation::kLessEqual ? Relation::kGreaterEqual
                   : spec.rel == Relation::kGreaterEqual ? Relation::kLessEqual
                                                         : Relation::kEqual;
      }
      switch (spec.rel) {
        case Relation::kLessEqual: ++n_slack; break;
        case Relation::kGreaterEqual: ++n_slack; ++n_artificial; break;
        case Relation::kEqual: ++n_artificial; break;
      }
    }

    const std::size_t m = specs.size();
    first_artificial_ = n_struct_ + n_slack;
    n_total_ = first_artificial_ + n_artificial;
    a_.assign(m, std::vector<double>(n_total_, 0.0));
    rhs_.assign(m, 0.0);
    basis_.assign(m, 0);

    std::size_t slack_cursor = n_struct_;
    std::size_t artificial_cursor = first_artificial_;
    for (std::size_t i = 0; i < m; ++i) {
      const auto& spec = specs[i];
      for (const Term& t : spec.expr) {
        a_[i][static_cast<std::size_t>(t.var)] += t.coeff;
      }
      rhs_[i] = spec.rhs;
      switch (spec.rel) {
        case Relation::kLessEqual:
          a_[i][slack_cursor] = 1.0;
          basis_[i] = slack_cursor++;
          break;
        case Relation::kGreaterEqual:
          a_[i][slack_cursor++] = -1.0;
          a_[i][artificial_cursor] = 1.0;
          basis_[i] = artificial_cursor++;
          break;
        case Relation::kEqual:
          a_[i][artificial_cursor] = 1.0;
          basis_[i] = artificial_cursor++;
          break;
      }
    }
  }

  void pivot(std::size_t row, std::size_t col) {
    const double p = a_[row][col];
    for (double& v : a_[row]) v /= p;
    rhs_[row] /= p;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (i == row) continue;
      const double factor = a_[i][col];
      if (factor == 0.0) continue;
      for (std::size_t j = 0; j < n_total_; ++j) a_[i][j] -= factor * a_[row][j];
      a_[i][col] = 0.0;  // exact zero to stop drift
      rhs_[i] -= factor * rhs_[row];
    }
    const double rfactor = reduced_[col];
    if (rfactor != 0.0) {
      for (std::size_t j = 0; j < n_total_; ++j) reduced_[j] -= rfactor * a_[row][j];
      reduced_[col] = 0.0;
    }
    basis_[row] = col;
  }

  /// Runs simplex iterations on the current reduced-cost row. Columns
  /// >= entering_limit are never chosen to enter (used to ban artificials
  /// in phase 2). Returns kOptimal / kUnbounded / kIterationLimit.
  SolveStatus iterate(std::size_t entering_limit) {
    const std::size_t cap = iteration_cap();
    while (true) {
      if (iterations_used_++ > cap) {
        iterations_exhausted_ = true;
        return SolveStatus::kIterationLimit;
      }
      // Bland's rule: smallest-index column with negative reduced cost.
      std::size_t entering = n_total_;
      for (std::size_t j = 0; j < entering_limit; ++j) {
        if (reduced_[j] < -options_.tolerance) {
          entering = j;
          break;
        }
      }
      if (entering == n_total_) return SolveStatus::kOptimal;

      // Ratio test, Bland tie-break on smallest basis column.
      std::size_t leaving_row = a_.size();
      double best_ratio = 0.0;
      for (std::size_t i = 0; i < a_.size(); ++i) {
        if (a_[i][entering] > options_.tolerance) {
          const double ratio = rhs_[i] / a_[i][entering];
          if (leaving_row == a_.size() || ratio < best_ratio - options_.tolerance ||
              (std::abs(ratio - best_ratio) <= options_.tolerance &&
               basis_[i] < basis_[leaving_row])) {
            leaving_row = i;
            best_ratio = ratio;
          }
        }
      }
      if (leaving_row == a_.size()) return SolveStatus::kUnbounded;
      pivot(leaving_row, entering);
    }
  }

  bool phase1() {
    if (first_artificial_ == n_total_) {
      return true;  // no artificials; initial slack basis is feasible
    }
    // Phase-1 objective: minimize sum of artificials. Reduced costs start
    // as c_j - sum over artificial-basic rows of A[i][j].
    reduced_.assign(n_total_, 0.0);
    for (std::size_t j = first_artificial_; j < n_total_; ++j) reduced_[j] = 1.0;
    double z = 0.0;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] >= first_artificial_) {
        for (std::size_t j = 0; j < n_total_; ++j) reduced_[j] -= a_[i][j];
        z += rhs_[i];
      }
    }
    (void)z;
    const SolveStatus status = iterate(n_total_);
    if (status == SolveStatus::kIterationLimit) return true;  // flagged; caller checks
    if (status == SolveStatus::kUnbounded) {
      // Phase-1 objective is bounded below by 0; cannot be unbounded.
      throw std::logic_error("simplex: phase-1 unbounded");
    }
    // Recompute the phase-1 objective value = sum of artificial values.
    double infeasibility = 0.0;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] >= first_artificial_) infeasibility += rhs_[i];
    }
    if (infeasibility > 1e-6) return false;

    // Drive any degenerate artificials out of the basis where possible.
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < first_artificial_) continue;
      for (std::size_t j = 0; j < first_artificial_; ++j) {
        if (std::abs(a_[i][j]) > options_.tolerance) {
          pivot(i, j);
          break;
        }
      }
      // If no pivot column exists the row is redundant; the artificial
      // stays basic at value ~0, which is harmless as it cannot re-enter.
    }
    return true;
  }

  SolveStatus phase2() {
    // Real objective in shifted variables (minimization form).
    std::vector<double> cost(n_total_, 0.0);
    const double sign = model_.sense() == Sense::kMinimize ? 1.0 : -1.0;
    objective_shift_ = 0.0;
    for (const Term& t : model_.objective()) {
      cost[static_cast<std::size_t>(t.var)] += sign * t.coeff;
      objective_shift_ += sign * t.coeff * lower_[static_cast<std::size_t>(t.var)];
    }
    reduced_ = cost;
    for (std::size_t i = 0; i < a_.size(); ++i) {
      const double cb = cost[basis_[i]];
      if (cb != 0.0) {
        for (std::size_t j = 0; j < n_total_; ++j) reduced_[j] -= cb * a_[i][j];
      }
    }
    // Artificials must not re-enter.
    return iterate(first_artificial_);
  }

  Solution extract() const {
    Solution s;
    s.status = SolveStatus::kOptimal;
    s.values.assign(model_.variable_count(), 0.0);
    for (std::size_t i = 0; i < a_.size(); ++i) {
      if (basis_[i] < n_struct_) s.values[basis_[i]] = rhs_[i];
    }
    for (std::size_t j = 0; j < n_struct_; ++j) s.values[j] += lower_[j];
    s.objective = model_.evaluate_objective(s.values);
    return s;
  }
};

}  // namespace

Solution SimplexSolver::solve(const Model& model) const {
  std::vector<double> lower(model.variable_count());
  std::vector<double> upper(model.variable_count());
  for (std::size_t j = 0; j < model.variable_count(); ++j) {
    lower[j] = model.variable(static_cast<int>(j)).lower;
    upper[j] = model.variable(static_cast<int>(j)).upper;
  }
  return solve_with_bounds(model, lower, upper);
}

Solution SimplexSolver::solve_with_bounds(const Model& model,
                                          const std::vector<double>& lower,
                                          const std::vector<double>& upper) const {
  if (lower.size() != model.variable_count() || upper.size() != model.variable_count()) {
    throw std::invalid_argument("SimplexSolver: bound vector size mismatch");
  }
  Tableau tableau(model, lower, upper, options_);
  return tableau.run();
}

}  // namespace splicer::lp
