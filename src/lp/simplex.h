#pragma once

// Two-phase dense tableau simplex with Bland's anti-cycling rule.
//
// Scope: exact LP relaxations of the placement MILPs (hundreds to a few
// thousand rows/columns). Dense storage keeps the implementation auditable;
// it is not a sparse industrial code and does not pretend to be.

#include <vector>

#include "lp/model.h"

namespace splicer::lp {

struct SimplexOptions {
  /// Hard cap on pivots across both phases (0 = heuristic default based on
  /// problem size).
  std::size_t max_iterations = 0;
  /// Feasibility / reduced-cost tolerance.
  double tolerance = 1e-9;
};

class SimplexSolver {
 public:
  explicit SimplexSolver(SimplexOptions options = {}) : options_(options) {}

  /// Solves the continuous relaxation of `model` (integrality ignored).
  [[nodiscard]] Solution solve(const Model& model) const;

  /// Same, with per-variable bound overrides (branch & bound tightens
  /// bounds without copying the model). Vectors must have size
  /// model.variable_count().
  [[nodiscard]] Solution solve_with_bounds(const Model& model,
                                           const std::vector<double>& lower,
                                           const std::vector<double>& upper) const;

 private:
  SimplexOptions options_;
};

}  // namespace splicer::lp
