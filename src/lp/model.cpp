#include "lp/model.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace splicer::lp {

namespace {
/// Sorts by variable and merges duplicate terms.
LinearExpr normalize(LinearExpr expr) {
  std::sort(expr.begin(), expr.end(),
            [](const Term& a, const Term& b) { return a.var < b.var; });
  LinearExpr out;
  for (const Term& t : expr) {
    if (!out.empty() && out.back().var == t.var) {
      out.back().coeff += t.coeff;
    } else {
      out.push_back(t);
    }
  }
  return out;
}
}  // namespace

int Model::add_variable(std::string name, double lower, double upper, VarKind kind,
                        int branch_priority) {
  if (!std::isfinite(lower)) {
    throw std::invalid_argument("Model: lower bound must be finite");
  }
  if (upper < lower) throw std::invalid_argument("Model: upper < lower");
  if (kind == VarKind::kBinary && (lower < 0.0 || upper > 1.0)) {
    throw std::invalid_argument("Model: binary bounds must be within [0,1]");
  }
  vars_.push_back(Variable{std::move(name), lower, upper, kind, branch_priority});
  return static_cast<int>(vars_.size()) - 1;
}

int Model::add_constraint(LinearExpr expr, Relation relation, double rhs) {
  for (const Term& t : expr) {
    if (t.var < 0 || static_cast<std::size_t>(t.var) >= vars_.size()) {
      throw std::out_of_range("Model: constraint references unknown variable");
    }
  }
  rows_.push_back(Constraint{normalize(std::move(expr)), relation, rhs});
  return static_cast<int>(rows_.size()) - 1;
}

void Model::set_objective(LinearExpr expr, Sense sense) {
  for (const Term& t : expr) {
    if (t.var < 0 || static_cast<std::size_t>(t.var) >= vars_.size()) {
      throw std::out_of_range("Model: objective references unknown variable");
    }
  }
  objective_ = normalize(std::move(expr));
  sense_ = sense;
}

bool Model::has_integer_variables() const noexcept {
  return std::any_of(vars_.begin(), vars_.end(), [](const Variable& v) {
    return v.kind != VarKind::kContinuous;
  });
}

double Model::evaluate_objective(const std::vector<double>& values) const {
  double total = 0.0;
  for (const Term& t : objective_) {
    total += t.coeff * values.at(static_cast<std::size_t>(t.var));
  }
  return total;
}

bool Model::is_feasible(const std::vector<double>& values, double tolerance) const {
  if (values.size() != vars_.size()) return false;
  for (std::size_t i = 0; i < vars_.size(); ++i) {
    const auto& v = vars_[i];
    if (values[i] < v.lower - tolerance || values[i] > v.upper + tolerance) return false;
    if (v.kind != VarKind::kContinuous &&
        std::abs(values[i] - std::round(values[i])) > tolerance) {
      return false;
    }
  }
  for (const auto& row : rows_) {
    double lhs = 0.0;
    for (const Term& t : row.expr) lhs += t.coeff * values[static_cast<std::size_t>(t.var)];
    switch (row.relation) {
      case Relation::kLessEqual:
        if (lhs > row.rhs + tolerance) return false;
        break;
      case Relation::kEqual:
        if (std::abs(lhs - row.rhs) > tolerance) return false;
        break;
      case Relation::kGreaterEqual:
        if (lhs < row.rhs - tolerance) return false;
        break;
    }
  }
  return true;
}

const char* to_string(SolveStatus status) noexcept {
  switch (status) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
    case SolveStatus::kNodeLimit: return "node-limit";
  }
  return "?";
}

}  // namespace splicer::lp
