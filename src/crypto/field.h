#pragma once

// Arithmetic in the prime field Z_p with p = 2^61 - 1 (Mersenne prime).
//
// SIMULATION-GRADE CRYPTO. This field backs the simulated key-management
// group (KMG): ElGamal keypairs and Shamir shares with toy parameters that
// exercise the paper's workflow (fresh (pk_tid, sk_tid) per transaction,
// Enc/Dec of payment demands, threshold key retrieval) at simulation speed.
// 61-bit groups offer no real-world security; a deployment would swap in a
// production DKG + ECIES suite behind the same interfaces.

#include <cstdint>

namespace splicer::crypto {

inline constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

/// Reduction of a 64-bit value into [0, p).
[[nodiscard]] constexpr std::uint64_t reduce(std::uint64_t x) noexcept {
  x = (x & kPrime) + (x >> 61);
  return x >= kPrime ? x - kPrime : x;
}

[[nodiscard]] constexpr std::uint64_t add_mod(std::uint64_t a, std::uint64_t b) noexcept {
  const std::uint64_t s = a + b;  // < 2^62, no overflow
  return s >= kPrime ? s - kPrime : s;
}

[[nodiscard]] constexpr std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b) noexcept {
  return a >= b ? a - b : a + kPrime - b;
}

[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) noexcept;

/// a^e mod p by square-and-multiply.
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e) noexcept;

/// Multiplicative inverse via Fermat (a != 0).
[[nodiscard]] std::uint64_t inv_mod(std::uint64_t a);

/// Fixed group generator used by the simulated ElGamal scheme.
inline constexpr std::uint64_t kGenerator = 3;

}  // namespace splicer::crypto
