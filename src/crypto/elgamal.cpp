#include "crypto/elgamal.h"

namespace splicer::crypto {

KeyPair generate_keypair(common::Rng& rng) {
  KeyPair kp;
  // Secret in [1, p-2]; avoid 0 (degenerate pk = 1).
  kp.secret_key = 1 + rng.next_below(kPrime - 2);
  kp.public_key = pow_mod(kGenerator, kp.secret_key);
  return kp;
}

Bytes apply_keystream(std::uint64_t key, const Bytes& data) {
  Bytes out(data.size());
  std::uint64_t state = key ^ 0xa5a5a5a5a5a5a5a5ULL;
  std::uint64_t word = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (i % 8 == 0) word = common::splitmix64(state);
    out[i] = data[i] ^ static_cast<std::uint8_t>(word >> ((i % 8) * 8));
  }
  return out;
}

std::uint64_t auth_tag(std::uint64_t key, const Bytes& data) noexcept {
  // FNV-1a over (key || data || length).
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](std::uint8_t byte) {
    h ^= byte;
    h *= 0x100000001b3ULL;
  };
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(key >> (i * 8)));
  for (const auto b : data) mix(b);
  const std::uint64_t len = data.size();
  for (int i = 0; i < 8; ++i) mix(static_cast<std::uint8_t>(len >> (i * 8)));
  return h;
}

Ciphertext encrypt(std::uint64_t public_key, const Bytes& plaintext,
                   common::Rng& rng) {
  Ciphertext ct;
  const std::uint64_t k = 1 + rng.next_below(kPrime - 2);
  ct.ephemeral = pow_mod(kGenerator, k);
  const std::uint64_t shared = pow_mod(public_key, k);
  ct.body = apply_keystream(shared, plaintext);
  ct.tag = auth_tag(shared, plaintext);
  return ct;
}

bool decrypt(std::uint64_t secret_key, const Ciphertext& ciphertext,
             Bytes& plaintext_out) {
  const std::uint64_t shared = pow_mod(ciphertext.ephemeral, secret_key);
  plaintext_out = apply_keystream(shared, ciphertext.body);
  if (auth_tag(shared, plaintext_out) != ciphertext.tag) {
    plaintext_out.clear();
    return false;
  }
  return true;
}

}  // namespace splicer::crypto
