#pragma once

// "TLS-like" authenticated channel simulation. The paper has clients
// establish TLS sessions with their smooth node before sending payreq; in
// the simulator a SecureChannel is a shared symmetric key with seal/open
// (keystream + tag). Tampering is detected, which is all the protocol
// logic observes.

#include <cstdint>
#include <optional>

#include "common/rng.h"
#include "crypto/elgamal.h"

namespace splicer::crypto {

struct SealedMessage {
  Bytes body;
  std::uint64_t tag = 0;
  std::uint64_t sequence = 0;  // replay counter bound into the tag
};

class SecureChannel {
 public:
  /// Simulated handshake: both ends derive the same key from an ephemeral
  /// ECDH-style exchange (here: ElGamal agreement).
  static SecureChannel establish(common::Rng& rng);

  /// Constructs from a known shared key (tests).
  explicit SecureChannel(std::uint64_t shared_key) : key_(shared_key) {}

  [[nodiscard]] SealedMessage seal(const Bytes& plaintext);

  /// Returns the plaintext, or nullopt if the tag fails or the sequence is
  /// a replay (not strictly increasing).
  [[nodiscard]] std::optional<Bytes> open(const SealedMessage& message);

  [[nodiscard]] std::uint64_t key() const noexcept { return key_; }

 private:
  std::uint64_t key_;
  std::uint64_t send_sequence_ = 0;
  std::uint64_t recv_sequence_ = 0;
};

}  // namespace splicer::crypto
