#pragma once

// Shamir secret sharing over Z_p (p = 2^61 - 1). The KMG issues each
// per-transaction secret key as (n, t) shares across its smooth-node
// members; any t of them reconstruct via Lagrange interpolation at 0.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "crypto/field.h"

namespace splicer::crypto {

struct Share {
  std::uint64_t x = 0;  // evaluation point (1-based member index)
  std::uint64_t y = 0;  // polynomial value
};

/// Splits `secret` into `share_count` shares with reconstruction threshold
/// `threshold` (1 <= threshold <= share_count). secret must be < p.
[[nodiscard]] std::vector<Share> split_secret(std::uint64_t secret,
                                              std::size_t share_count,
                                              std::size_t threshold,
                                              common::Rng& rng);

/// Reconstructs the secret from >= threshold shares (extra shares are
/// consistent by construction; duplicates by x are invalid).
[[nodiscard]] std::uint64_t reconstruct_secret(const std::vector<Share>& shares);

}  // namespace splicer::crypto
