#include "crypto/field.h"

#include <stdexcept>

namespace splicer::crypto {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) noexcept {
  const unsigned __int128 prod =
      static_cast<unsigned __int128>(reduce(a)) * reduce(b);
  // Mersenne reduction: p = 2^61 - 1, so 2^61 == 1 (mod p).
  const auto lo = static_cast<std::uint64_t>(prod & kPrime);
  const auto hi = static_cast<std::uint64_t>(prod >> 61);
  return reduce(lo + reduce(hi));
}

std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e) noexcept {
  std::uint64_t base = reduce(a);
  std::uint64_t result = 1;
  while (e != 0) {
    if (e & 1) result = mul_mod(result, base);
    base = mul_mod(base, base);
    e >>= 1;
  }
  return result;
}

std::uint64_t inv_mod(std::uint64_t a) {
  const std::uint64_t r = reduce(a);
  if (r == 0) throw std::domain_error("inv_mod: zero has no inverse");
  return pow_mod(r, kPrime - 2);
}

}  // namespace splicer::crypto
