#pragma once

// Key Management Group (KMG) simulation. In Splicer a KMG of iota smooth
// nodes runs a distributed key-generation protocol [14] and hands out fresh
// per-transaction keypairs: the smooth node obtains (pk_tid, sk_tid), the
// sender encrypts its payment demand to pk_tid, and per-TU keys (pk_tuid)
// protect the split units (paper SS III-A workflow, steps 1-3).
//
// This simulation issues ElGamal keypairs, splits each secret key into
// (iota, threshold) Shamir shares across the member nodes, and reconstructs
// on demand - exercising the same message pattern without a real DKG.

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "crypto/elgamal.h"
#include "crypto/shamir.h"

namespace splicer::crypto {

using TransactionId = std::uint64_t;

class KeyManagementGroup {
 public:
  /// `member_count` = iota (paper system parameter); threshold defaults to
  /// a majority.
  KeyManagementGroup(std::size_t member_count, common::Rng rng,
                     std::size_t threshold = 0);

  [[nodiscard]] std::size_t member_count() const noexcept { return member_count_; }
  [[nodiscard]] std::size_t threshold() const noexcept { return threshold_; }

  /// Issues a fresh keypair for `id`; returns the public key. Re-issuing
  /// for an existing id replaces the old key (fresh per transaction).
  std::uint64_t issue_key(TransactionId id);

  /// Public key lookup (what the smooth node forwards to the sender).
  [[nodiscard]] std::optional<std::uint64_t> public_key(TransactionId id) const;

  /// Threshold-reconstructs sk_id from the first `threshold` member shares
  /// and decrypts. Returns nullopt for unknown id or failed authentication.
  [[nodiscard]] std::optional<Bytes> decrypt(TransactionId id,
                                             const Ciphertext& ciphertext) const;

  /// Member share of a transaction key (tests verify any t-subset works).
  [[nodiscard]] const std::vector<Share>& shares(TransactionId id) const;

  /// Number of issue operations (overhead accounting).
  [[nodiscard]] std::size_t issued_count() const noexcept { return issued_; }

 private:
  struct KeyRecord {
    std::uint64_t public_key;
    std::vector<Share> shares;
  };

  std::size_t member_count_;
  std::size_t threshold_;
  common::Rng rng_;
  std::unordered_map<TransactionId, KeyRecord> keys_;
  std::size_t issued_ = 0;
};

}  // namespace splicer::crypto
