#include "crypto/secure_channel.h"

#include "crypto/field.h"

namespace splicer::crypto {

SecureChannel SecureChannel::establish(common::Rng& rng) {
  // Ephemeral agreement: a chooses x, b chooses y; shared = g^(xy).
  const std::uint64_t x = 1 + rng.next_below(kPrime - 2);
  const std::uint64_t y = 1 + rng.next_below(kPrime - 2);
  const std::uint64_t gx = pow_mod(kGenerator, x);
  const std::uint64_t shared = pow_mod(gx, y);
  return SecureChannel(shared);
}

SealedMessage SecureChannel::seal(const Bytes& plaintext) {
  SealedMessage msg;
  msg.sequence = ++send_sequence_;
  msg.body = apply_keystream(key_ ^ msg.sequence, plaintext);
  msg.tag = auth_tag(key_ ^ msg.sequence, plaintext);
  return msg;
}

std::optional<Bytes> SecureChannel::open(const SealedMessage& message) {
  if (message.sequence <= recv_sequence_) return std::nullopt;  // replay
  const Bytes plaintext = apply_keystream(key_ ^ message.sequence, message.body);
  if (auth_tag(key_ ^ message.sequence, plaintext) != message.tag) {
    return std::nullopt;
  }
  recv_sequence_ = message.sequence;
  return plaintext;
}

}  // namespace splicer::crypto
