#pragma once

// Simulated hybrid ElGamal over Z_p* (p = 2^61 - 1): ElGamal key agreement
// derives a session key; the payload is XOR-encrypted under a splitmix64
// keystream and authenticated with an FNV-1a tag. Toy parameters - see the
// caveat in field.h. The interfaces mirror what the Splicer workflow needs:
// fresh per-transaction keypairs and Enc(pk, D_tid) / Dec(sk, c).

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "crypto/field.h"

namespace splicer::crypto {

using Bytes = std::vector<std::uint8_t>;

struct KeyPair {
  std::uint64_t public_key = 0;   // g^sk
  std::uint64_t secret_key = 0;   // in [1, p-1)
};

[[nodiscard]] KeyPair generate_keypair(common::Rng& rng);

struct Ciphertext {
  std::uint64_t ephemeral = 0;  // g^k
  Bytes body;                   // keystream-XORed payload
  std::uint64_t tag = 0;        // authenticator over plaintext
};

/// Encrypts `plaintext` to `public_key` with a fresh ephemeral exponent.
[[nodiscard]] Ciphertext encrypt(std::uint64_t public_key, const Bytes& plaintext,
                                 common::Rng& rng);

/// Decrypts; returns false (and clears `plaintext_out`) if the tag check
/// fails (tampered or wrong key).
[[nodiscard]] bool decrypt(std::uint64_t secret_key, const Ciphertext& ciphertext,
                           Bytes& plaintext_out);

/// Keystream/tag helpers shared with SecureChannel.
[[nodiscard]] Bytes apply_keystream(std::uint64_t key, const Bytes& data);
[[nodiscard]] std::uint64_t auth_tag(std::uint64_t key, const Bytes& data) noexcept;

}  // namespace splicer::crypto
