#include "crypto/kmg.h"

#include <stdexcept>

namespace splicer::crypto {

KeyManagementGroup::KeyManagementGroup(std::size_t member_count, common::Rng rng,
                                       std::size_t threshold)
    : member_count_(member_count),
      threshold_(threshold == 0 ? member_count / 2 + 1 : threshold),
      rng_(rng) {
  if (member_count_ == 0) {
    throw std::invalid_argument("KeyManagementGroup: need >= 1 member");
  }
  if (threshold_ > member_count_) {
    throw std::invalid_argument("KeyManagementGroup: threshold > members");
  }
}

std::uint64_t KeyManagementGroup::issue_key(TransactionId id) {
  const KeyPair kp = generate_keypair(rng_);
  KeyRecord record;
  record.public_key = kp.public_key;
  record.shares = split_secret(kp.secret_key, member_count_, threshold_, rng_);
  keys_[id] = std::move(record);
  ++issued_;
  return kp.public_key;
}

std::optional<std::uint64_t> KeyManagementGroup::public_key(TransactionId id) const {
  const auto it = keys_.find(id);
  if (it == keys_.end()) return std::nullopt;
  return it->second.public_key;
}

std::optional<Bytes> KeyManagementGroup::decrypt(TransactionId id,
                                                 const Ciphertext& ciphertext) const {
  const auto it = keys_.find(id);
  if (it == keys_.end()) return std::nullopt;
  const std::vector<Share> quorum(it->second.shares.begin(),
                                  it->second.shares.begin() +
                                      static_cast<std::ptrdiff_t>(threshold_));
  const std::uint64_t secret = reconstruct_secret(quorum);
  Bytes plaintext;
  if (!crypto::decrypt(secret, ciphertext, plaintext)) return std::nullopt;
  return plaintext;
}

const std::vector<Share>& KeyManagementGroup::shares(TransactionId id) const {
  const auto it = keys_.find(id);
  if (it == keys_.end()) throw std::out_of_range("KeyManagementGroup: unknown id");
  return it->second.shares;
}

}  // namespace splicer::crypto
