#include "crypto/shamir.h"

#include <stdexcept>

namespace splicer::crypto {

std::vector<Share> split_secret(std::uint64_t secret, std::size_t share_count,
                                std::size_t threshold, common::Rng& rng) {
  if (threshold == 0 || threshold > share_count) {
    throw std::invalid_argument("split_secret: invalid threshold");
  }
  if (secret >= kPrime) throw std::invalid_argument("split_secret: secret >= p");

  // Random polynomial of degree threshold-1 with constant term = secret.
  std::vector<std::uint64_t> coeffs(threshold);
  coeffs[0] = secret;
  for (std::size_t i = 1; i < threshold; ++i) coeffs[i] = rng.next_below(kPrime);

  std::vector<Share> shares(share_count);
  for (std::size_t s = 0; s < share_count; ++s) {
    const std::uint64_t x = s + 1;
    // Horner evaluation.
    std::uint64_t y = 0;
    for (std::size_t i = threshold; i-- > 0;) {
      y = add_mod(mul_mod(y, x), coeffs[i]);
    }
    shares[s] = Share{x, y};
  }
  return shares;
}

std::uint64_t reconstruct_secret(const std::vector<Share>& shares) {
  if (shares.empty()) throw std::invalid_argument("reconstruct_secret: no shares");
  for (std::size_t i = 0; i < shares.size(); ++i) {
    for (std::size_t j = i + 1; j < shares.size(); ++j) {
      if (shares[i].x == shares[j].x) {
        throw std::invalid_argument("reconstruct_secret: duplicate share point");
      }
    }
  }
  // Lagrange interpolation at x = 0:
  //   secret = sum_i y_i * prod_{j != i} (0 - x_j) / (x_i - x_j).
  std::uint64_t secret = 0;
  for (std::size_t i = 0; i < shares.size(); ++i) {
    std::uint64_t numerator = 1;
    std::uint64_t denominator = 1;
    for (std::size_t j = 0; j < shares.size(); ++j) {
      if (i == j) continue;
      numerator = mul_mod(numerator, sub_mod(0, shares[j].x));
      denominator = mul_mod(denominator, sub_mod(shares[i].x, shares[j].x));
    }
    const std::uint64_t weight = mul_mod(numerator, inv_mod(denominator));
    secret = add_mod(secret, mul_mod(shares[i].y, weight));
  }
  return secret;
}

}  // namespace splicer::crypto
