#pragma once

// End-to-end Splicer system facade: candidates -> placement -> multi-star
// transform -> KMG setup -> payment workflow crypto -> rate-based routing
// simulation. This is the public "run the whole paper pipeline" API the
// quickstart example uses; benches drive the lower layers directly for
// their parameter sweeps.

#include <cstdint>
#include <string>

#include "crypto/kmg.h"
#include "routing/experiment.h"
#include "splicer/workflow.h"

namespace splicer::core {

struct SystemOptions {
  routing::ScenarioConfig scenario;
  routing::SchemeConfig scheme;  // engine + protocol knobs for Splicer
  std::size_t kmg_members = 5;   // iota
  /// Run the byte-level workflow crypto for the first N payments (all
  /// payments still route; crypto sampling keeps huge runs fast).
  std::size_t crypto_sample = 64;
};

struct SystemReport {
  routing::EngineMetrics metrics;
  std::size_t hub_count = 0;
  double balance_cost = 0.0;
  double management_cost = 0.0;
  double synchronization_cost = 0.0;
  std::size_t kmg_keys_issued = 0;
  std::size_t workflows_executed = 0;
  std::size_t workflows_succeeded = 0;
  std::string summary() const;
};

class SplicerSystem {
 public:
  explicit SplicerSystem(SystemOptions options);

  /// Runs placement + workflow crypto sample + the routing simulation.
  [[nodiscard]] SystemReport run();

  /// The prepared scenario (valid after construction).
  [[nodiscard]] const routing::Scenario& scenario() const noexcept {
    return scenario_;
  }

 private:
  SystemOptions options_;
  routing::Scenario scenario_;
};

}  // namespace splicer::core
