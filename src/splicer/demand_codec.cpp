#include "splicer/demand_codec.h"

namespace splicer::core {

namespace {
void put_u32(crypto::Bytes& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(crypto::Bytes& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
std::uint32_t get_u32(const crypto::Bytes& in, std::size_t at) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[at + i]) << (8 * i);
  return v;
}
std::uint64_t get_u64(const crypto::Bytes& in, std::size_t at) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[at + i]) << (8 * i);
  return v;
}
}  // namespace

crypto::Bytes encode_demand(const PaymentDemand& demand) {
  crypto::Bytes out;
  out.reserve(16);
  put_u32(out, demand.sender);
  put_u32(out, demand.receiver);
  put_u64(out, static_cast<std::uint64_t>(demand.value));
  return out;
}

std::optional<PaymentDemand> decode_demand(const crypto::Bytes& bytes) {
  if (bytes.size() != 16) return std::nullopt;
  PaymentDemand demand;
  demand.sender = get_u32(bytes, 0);
  demand.receiver = get_u32(bytes, 4);
  demand.value = static_cast<pcn::Amount>(get_u64(bytes, 8));
  return demand;
}

}  // namespace splicer::core
