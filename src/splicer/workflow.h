#pragma once

// The paper's payment preparation & execution workflow (SS III-A, Fig. 3)
// at message-level fidelity for one transaction:
//
//  prep:  P_s <-TLS-> S_i handshake; payreq; S_i fetches fresh
//         (pk_tid, sk_tid) from the KMG; state_tid = (tid, theta_tid)
//  (1)    P_s sends (tid, Enc(pk_tid, D_tid))
//  (2-3)  S_i decrypts, splits D_tid into K TUs bounded by Min/Max-TU,
//         each TU re-encrypted to a fresh pk_tuid for the destination hub
//         S_j, which decrypts and ACKs; theta updates per-TU
//  (4)    S_j pays P_r once every TU arrived; ACK_tid returns to P_s
//
// This class executes the real (simulation-grade) cryptography for every
// step and records a human-readable trace; the routing engine reuses the
// same split bounds but elides the byte-level crypto for throughput (see
// DESIGN.md).

#include <string>
#include <vector>

#include "crypto/kmg.h"
#include "crypto/secure_channel.h"
#include "splicer/demand_codec.h"

namespace splicer::core {

struct WorkflowConfig {
  pcn::Amount min_tu = common::whole_tokens(1);
  pcn::Amount max_tu = common::whole_tokens(4);
  std::size_t kmg_members = 5;  // iota
};

struct WorkflowResult {
  bool success = false;
  crypto::TransactionId tid = 0;
  std::size_t tu_count = 0;           // K
  std::vector<pcn::Amount> tu_values; // |d_i| for each TU
  std::size_t messages = 0;           // end-to-end message count
  std::vector<std::string> trace;     // step-by-step narration
};

/// Executes one payment workflow. `kmg` persists across payments (fresh
/// keys per tid/tuid are issued from it); `rng` drives the ephemeral keys.
class PaymentWorkflow {
 public:
  PaymentWorkflow(crypto::KeyManagementGroup& kmg, common::Rng& rng,
                  WorkflowConfig config = {});

  /// Runs preparation + execution for `demand`. The returned result's
  /// `success` is false if any decryption/authentication step failed
  /// (which indicates tampering; never happens in honest runs).
  [[nodiscard]] WorkflowResult execute(const PaymentDemand& demand);

  /// Splits a demand value into TU values within [min_tu, max_tu] (the
  /// same rule the router uses; exposed for property tests).
  [[nodiscard]] std::vector<pcn::Amount> split_into_tus(pcn::Amount value) const;

 private:
  crypto::KeyManagementGroup& kmg_;
  common::Rng& rng_;
  WorkflowConfig config_;
  crypto::TransactionId next_tid_ = 1;
};

}  // namespace splicer::core
