#include "splicer/system.h"

#include <sstream>

#include "common/table.h"
#include "placement/cost_model.h"

namespace splicer::core {

SplicerSystem::SplicerSystem(SystemOptions options)
    : options_(std::move(options)),
      scenario_(routing::prepare_scenario(options_.scenario)) {}

SystemReport SplicerSystem::run() {
  SystemReport report;
  report.hub_count = scenario_.multi_star.hubs.size();
  const auto costs = placement::balance_cost(scenario_.instance, scenario_.plan);
  report.balance_cost = costs.balance;
  report.management_cost = costs.management;
  report.synchronization_cost = costs.synchronization;

  // Byte-level workflow crypto for a sample of payments (paper Fig. 3).
  common::Rng crypto_rng(options_.scenario.seed ^ 0xC0FFEE);
  crypto::KeyManagementGroup kmg(options_.kmg_members, crypto_rng.fork());
  PaymentWorkflow workflow(kmg, crypto_rng,
                           WorkflowConfig{options_.scheme.protocol.min_tu,
                                          options_.scheme.protocol.max_tu,
                                          options_.kmg_members});
  const std::size_t sample =
      std::min(options_.crypto_sample, scenario_.payments.size());
  for (std::size_t i = 0; i < sample; ++i) {
    const auto& p = scenario_.payments[i];
    const auto result =
        workflow.execute(PaymentDemand{p.sender, p.receiver, p.value});
    ++report.workflows_executed;
    if (result.success) ++report.workflows_succeeded;
  }
  report.kmg_keys_issued = kmg.issued_count();

  report.metrics = routing::run_scheme(scenario_, routing::Scheme::kSplicer,
                                       options_.scheme);
  return report;
}

std::string SystemReport::summary() const {
  std::ostringstream out;
  out << "hubs=" << hub_count << " C_B=" << balance_cost
      << " (C_M=" << management_cost << ", C_S=" << synchronization_cost << ")\n"
      << "payments=" << metrics.payments_generated
      << " completed=" << metrics.payments_completed
      << " TSR=" << common::format_percent(metrics.tsr())
      << " throughput=" << common::format_percent(metrics.normalized_throughput())
      << " avg_delay=" << common::format_double(metrics.average_delay_s() * 1000.0, 1)
      << "ms\n"
      << "TUs sent=" << metrics.tus_sent << " delivered=" << metrics.tus_delivered
      << " marked=" << metrics.tus_marked
      << " messages=" << metrics.messages.total() << "\n"
      << "KMG keys issued=" << kmg_keys_issued << " workflows=" << workflows_executed
      << "/" << workflows_succeeded << " ok";
  return out.str();
}

}  // namespace splicer::core
