#pragma once

// Wire encoding of payment demands D_tid = (P_s, P_r, val_tid) - the tuple
// the sender encrypts to the smooth node's fresh transaction key
// (paper SS III-A, payment execution step 1).

#include <cstdint>
#include <optional>

#include "crypto/elgamal.h"
#include "pcn/types.h"

namespace splicer::core {

struct PaymentDemand {
  pcn::NodeId sender = 0;
  pcn::NodeId receiver = 0;
  pcn::Amount value = 0;  // val_tid, milli-tokens

  friend bool operator==(const PaymentDemand&, const PaymentDemand&) = default;
};

/// Fixed-width little-endian encoding (4 + 4 + 8 bytes).
[[nodiscard]] crypto::Bytes encode_demand(const PaymentDemand& demand);

/// Returns nullopt on malformed input (wrong length).
[[nodiscard]] std::optional<PaymentDemand> decode_demand(const crypto::Bytes& bytes);

}  // namespace splicer::core
