#include "splicer/workflow.h"

#include <stdexcept>

namespace splicer::core {

PaymentWorkflow::PaymentWorkflow(crypto::KeyManagementGroup& kmg, common::Rng& rng,
                                 WorkflowConfig config)
    : kmg_(kmg), rng_(rng), config_(config) {
  if (config_.min_tu <= 0 || config_.max_tu < config_.min_tu) {
    throw std::invalid_argument("PaymentWorkflow: bad TU bounds");
  }
}

std::vector<pcn::Amount> PaymentWorkflow::split_into_tus(pcn::Amount value) const {
  std::vector<pcn::Amount> tus;
  pcn::Amount remaining = value;
  while (remaining > 0) {
    pcn::Amount tu;
    if (remaining <= config_.max_tu) {
      tu = remaining;
    } else if (remaining - config_.max_tu < config_.min_tu) {
      tu = remaining - config_.min_tu;  // avoid a sub-Min-TU crumb
    } else {
      tu = config_.max_tu;
    }
    tus.push_back(tu);
    remaining -= tu;
  }
  return tus;
}

WorkflowResult PaymentWorkflow::execute(const PaymentDemand& demand) {
  WorkflowResult result;
  result.tid = next_tid_++;
  auto step = [&result](std::string line) {
    result.trace.push_back(std::move(line));
    ++result.messages;
  };

  // --- Payment preparation -------------------------------------------
  crypto::SecureChannel sender_channel = crypto::SecureChannel::establish(rng_);
  step("TLS: P_s <-> S_i secure channel established");
  const auto payreq = sender_channel.seal(encode_demand(demand));
  step("payreq: P_s -> S_i (sealed)");
  if (!sender_channel.open(payreq)) return result;  // tampered payreq

  const std::uint64_t pk_tid = kmg_.issue_key(result.tid);
  step("KMG: issued (pk_tid, sk_tid) for tid=" + std::to_string(result.tid));

  // --- Execution step (1): P_s -> S_i (tid, Enc(pk_tid, D_tid)) -------
  const auto inp = crypto::encrypt(pk_tid, encode_demand(demand), rng_);
  step("P_s -> S_i: (tid, inp = Enc(pk_tid, D_tid)) + funds");

  // --- (2): S_i decrypts and splits ------------------------------------
  const auto decrypted = kmg_.decrypt(result.tid, inp);
  if (!decrypted) return result;
  const auto recovered = decode_demand(*decrypted);
  if (!recovered || !(*recovered == demand)) return result;
  step("S_i: D_tid = Dec(sk_tid, inp) recovered");

  result.tu_values = split_into_tus(demand.value);
  result.tu_count = result.tu_values.size();
  step("S_i: split into K=" + std::to_string(result.tu_count) + " TUs");

  // --- (3): per-TU keys, S_i -> S_j, ACK_tuid --------------------------
  std::size_t acked = 0;
  for (std::size_t i = 0; i < result.tu_values.size(); ++i) {
    const crypto::TransactionId tuid =
        (result.tid << 20) | static_cast<crypto::TransactionId>(i + 1);
    const std::uint64_t pk_tuid = kmg_.issue_key(tuid);
    PaymentDemand tu_demand{demand.sender, demand.receiver, result.tu_values[i]};
    const auto tu_ct = crypto::encrypt(pk_tuid, encode_demand(tu_demand), rng_);
    ++result.messages;  // S_i -> S_j: Enc(pk_tuid, D_tuid)
    const auto tu_plain = kmg_.decrypt(tuid, tu_ct);
    if (!tu_plain) return result;
    const auto tu_rec = decode_demand(*tu_plain);
    if (!tu_rec || !(*tu_rec == tu_demand)) return result;
    ++result.messages;  // ACK_tuid: S_j -> S_i
    ++acked;            // theta^i_tuid := true
  }
  if (acked != result.tu_count) return result;
  step("S_i: all ACK_tuid received, theta_tid := true");

  // --- (4): S_j pays P_r in full; ACK_tid returns to P_s ---------------
  step("S_j -> P_r: " + common::amount_to_string(demand.value) + " tokens");
  step("ACK_tid: P_r -> ... -> P_s");
  result.success = true;
  return result;
}

}  // namespace splicer::core
