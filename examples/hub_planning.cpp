// Hub planning: explore the management/synchronisation cost tradeoff
// (paper SS IV-B/C, Fig. 9) for a community deciding where to place PCHs.
//
// Sweeps the weight omega, solving each instance three ways - exact
// (exhaustive Lemma-1 oracle), MILP-equivalent tight model on a reduced
// instance, and the double-greedy approximation - then prints the chosen
// hub counts and costs.

#include <iostream>

#include "common/table.h"
#include "graph/generators.h"
#include "placement/approx_solver.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"
#include "placement/milp_solver.h"

using namespace splicer;

int main() {
  common::Rng rng(2024);
  const auto g = graph::watts_strogatz(100, 8, 0.15, rng);

  std::cout << "=== PCH hub planning on a 100-node PCN ===\n\n";

  common::Table table({"omega", "exact hubs", "exact C_B", "approx hubs",
                       "approx C_B", "approx/exact", "C_M", "C_S"});
  for (const double omega : {0.01, 0.02, 0.04, 0.08, 0.16, 0.32, 0.64}) {
    const auto instance = placement::build_instance_by_degree(g, 12, omega);
    const auto exact = placement::solve_exhaustive(instance);
    const auto approx = placement::solve_approx(instance);
    const auto row = table.add_row();
    table.set(row, 0, omega, 2);
    table.set(row, 1, static_cast<std::int64_t>(exact.plan.hub_count()));
    table.set(row, 2, exact.costs.balance, 3);
    table.set(row, 3, static_cast<std::int64_t>(approx.plan.hub_count()));
    table.set(row, 4, approx.costs.balance, 3);
    table.set(row, 5, approx.costs.balance / exact.costs.balance, 3);
    table.set(row, 6, exact.costs.management, 3);
    table.set(row, 7, exact.costs.synchronization, 3);
  }
  std::cout << table.render() << "\n";

  // A small MILP instance solved by the in-tree branch & bound, checked
  // against the exhaustive optimum.
  common::Rng rng_small(7);
  const auto g_small = graph::watts_strogatz(24, 4, 0.2, rng_small);
  const auto instance = placement::build_instance_by_degree(g_small, 5, 0.1);
  const auto milp = placement::solve_milp(instance);
  const auto exact = placement::solve_exhaustive(instance);
  std::cout << "MILP on 24-node instance: status=" << lp::to_string(milp.status)
            << " C_B=" << milp.costs.balance << " (exhaustive optimum "
            << exact.costs.balance << "), " << milp.variables << " vars, "
            << milp.constraints << " constraints, " << milp.stats.nodes_explored
            << " B&B nodes\n";
  return 0;
}
