// IoT micropayments: the paper's motivating deployment ("mobile or IoT
// devices make payments; clients outsource the routing computation to
// smooth nodes"). A fleet of lightweight devices streams many small
// payments to a handful of service providers - an extremely imbalanced
// workload. We compare Splicer against Spider source routing and report
// what the imbalance does to each.

#include <iostream>

#include "common/table.h"
#include "routing/experiment.h"

using namespace splicer;

int main() {
  routing::ScenarioConfig scenario;
  scenario.seed = 99;
  scenario.topology.nodes = 200;
  scenario.placement.candidate_count = 12;
  scenario.placement.omega = 0.05;
  // IoT profile: many tiny payments, heavily concentrated receivers.
  scenario.workload.payment_count = 3000;
  scenario.workload.horizon_seconds = 30.0;
  scenario.workload.value_scale = 0.1;     // micropayments
  scenario.workload.receiver_zipf = 1.4;   // few service providers
  scenario.workload.imbalance = 0.6;       // strong net sinks
  scenario.workload.sink_fraction = 0.05;

  std::cout << "=== IoT micropayment fleet (200 devices, 3000 payments) ===\n\n";
  const auto prepared = routing::prepare_scenario(scenario);
  std::cout << "hubs placed: " << prepared.multi_star.hubs.size() << "\n";

  const auto net = pcn::net_flow_by_node(prepared.raw.node_count(), prepared.payments);
  pcn::Amount max_sink = 0;
  for (const auto v : net) max_sink = std::max(max_sink, v);
  std::cout << "heaviest net sink receives "
            << common::amount_to_string(max_sink) << " tokens net\n\n";

  common::Table table({"scheme", "TSR", "throughput", "avg delay (ms)",
                       "TUs marked", "messages"});
  for (const auto scheme : {routing::Scheme::kSplicer, routing::Scheme::kSpider,
                            routing::Scheme::kFlash}) {
    const auto m = routing::run_scheme(prepared, scheme);
    const auto row = table.add_row();
    table.set(row, 0, routing::to_string(scheme));
    table.set(row, 1, common::format_percent(m.tsr()));
    table.set(row, 2, common::format_percent(m.normalized_throughput()));
    table.set(row, 3, m.average_delay_s() * 1000.0, 1);
    table.set(row, 4, static_cast<std::int64_t>(m.tus_marked));
    table.set(row, 5, static_cast<std::int64_t>(m.messages.total()));
  }
  std::cout << table.render();
  return 0;
}
