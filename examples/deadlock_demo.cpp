// Reproduces the local deadlock of paper Fig. 1 and shows how Splicer's
// rate-based routing avoids it.
//
// Setup (Fig. 1(b)): triangle A-C-B, every channel 10 tokens per side.
// Streams: A->B at 1 token/s, C->B at 2 token/s, B->A at 2 token/s. Under
// naive shortest-path routing C's funds toward B drain (net outflow), and
// once they hit zero even A<->B traffic dies through C: throughput -> 0.
// Splicer's imbalance price mu throttles the C->B flow before the drain
// completes, so the A<->B stream keeps flowing (nearly deadlock-free).

#include <iostream>

#include "common/table.h"
#include "graph/generators.h"
#include "routing/engine.h"
#include "routing/shortest_path_router.h"
#include "routing/splicer_router.h"

using namespace splicer;

namespace {

// Streams of 1-token payments approximate the paper's fluid rates.
std::vector<pcn::Payment> fig1_streams(double seconds) {
  std::vector<pcn::Payment> payments;
  pcn::PaymentId id = 1;
  const auto add_stream = [&](pcn::NodeId from, pcn::NodeId to, double rate) {
    for (double t = 0.05; t < seconds; t += 1.0 / rate) {
      pcn::Payment p;
      p.id = id++;
      p.sender = from;
      p.receiver = to;
      p.value = common::whole_tokens(1);
      p.arrival_time = t;
      p.deadline = t + 3.0;
      payments.push_back(p);
    }
  };
  // Node ids: A=0, B=1, C=2 (C relays between A and B).
  add_stream(0, 1, 1.0);  // A -> B @ 1 token/s
  add_stream(2, 1, 2.0);  // C -> B @ 2 token/s
  add_stream(1, 0, 2.0);  // B -> A @ 2 token/s
  std::sort(payments.begin(), payments.end(),
            [](const auto& a, const auto& b) { return a.arrival_time < b.arrival_time; });
  for (std::size_t i = 0; i < payments.size(); ++i) payments[i].id = i + 1;
  return payments;
}

pcn::Network fig1_network() {
  graph::Graph g(3);
  g.add_edge(0, 2);  // A - C
  g.add_edge(2, 1);  // C - B
  return pcn::Network::with_uniform_funds(std::move(g), common::whole_tokens(10));
}

}  // namespace

int main() {
  constexpr double kSeconds = 30.0;

  std::cout << "=== Fig. 1 local deadlock demo ===\n\n";

  {
    routing::ShortestPathRouter naive;
    routing::EngineConfig config;
    config.queues_enabled = false;
    routing::Engine engine(fig1_network(), fig1_streams(kSeconds), naive, config);
    const auto m = engine.run();
    std::cout << "naive shortest-path routing:\n"
              << "  completed " << m.payments_completed << "/" << m.payments_generated
              << " payments, TSR=" << common::format_percent(m.tsr())
              << ", throughput=" << common::format_percent(m.normalized_throughput())
              << "\n  (C's channel toward B drains; the network deadlocks)\n\n";
  }
  {
    // Splicer with hubs = {C}: all routing through the smooth node C with
    // imbalance-aware rates.
    routing::SplicerRouter::Config rc;
    rc.protocol.k_paths = 1;
  rc.protocol.initial_rate_tps = 20.0;  // proportionate to 20-token channels
    routing::SplicerRouter splicer({2, 2, 2}, {2}, rc);
    routing::EngineConfig config;
    config.queues_enabled = true;
    routing::Engine engine(fig1_network(), fig1_streams(kSeconds), splicer, config);
    const auto m = engine.run();
    std::cout << "Splicer rate-based routing (hub at C):\n"
              << "  completed " << m.payments_completed << "/" << m.payments_generated
              << " payments, TSR=" << common::format_percent(m.tsr())
              << ", throughput=" << common::format_percent(m.normalized_throughput())
              << "\n  (imbalance price throttles the unsustainable C->B flow;\n"
              << "   balanced A<->B traffic keeps flowing)\n";
  }
  return 0;
}
