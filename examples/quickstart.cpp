// Quickstart: run the full Splicer pipeline on a 100-node small-world PCN.
//
//   placement (exact, Lemma-1 oracle) -> multi-star transform -> KMG +
//   encrypted payment workflow -> rate-based deadlock-free routing, and
//   compare the result against the Spider baseline on the same workload.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [seed]

#include <cstdlib>
#include <iostream>

#include "common/table.h"
#include "splicer/system.h"

int main(int argc, char** argv) {
  using namespace splicer;

  core::SystemOptions options;
  options.scenario.seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  options.scenario.topology.nodes = 100;
  options.scenario.placement.candidate_count = 10;
  options.scenario.placement.omega = 0.1;
  options.scenario.workload.payment_count = 1500;
  options.scenario.workload.horizon_seconds = 20.0;

  std::cout << "=== Splicer quickstart (100-node Watts-Strogatz PCN) ===\n\n";

  core::SplicerSystem system(options);
  const auto& scenario = system.scenario();
  std::cout << "topology: " << scenario.raw.node_count() << " nodes, "
            << scenario.raw.channel_count() << " channels (raw)\n"
            << "placement: " << scenario.multi_star.hubs.size()
            << " smooth nodes selected from "
            << scenario.instance.candidate_count() << " candidates\n"
            << "multi-star: " << scenario.multi_star.network.channel_count()
            << " channels after redundant-channel removal\n\n";

  const auto report = system.run();
  std::cout << "--- Splicer ---\n" << report.summary() << "\n\n";

  const auto spider =
      routing::run_scheme(scenario, routing::Scheme::kSpider, options.scheme);
  std::cout << "--- Spider (baseline, same workload) ---\n"
            << "TSR=" << common::format_percent(spider.tsr())
            << " throughput=" << common::format_percent(spider.normalized_throughput())
            << " avg_delay="
            << common::format_double(spider.average_delay_s() * 1000.0, 1) << "ms\n";

  const double tsr_gain = report.metrics.tsr() - spider.tsr();
  std::cout << "\nSplicer TSR advantage over Spider: "
            << common::format_double(tsr_gain * 100.0, 1) << " points\n";
  return 0;
}
