// Message-level trace of one encrypted payment through the Splicer
// workflow (paper Fig. 3): TLS handshake, payreq, KMG key issuance,
// Enc/Dec of the demand, TU splitting with per-TU keys, ACK aggregation.

#include <iostream>

#include "splicer/workflow.h"

using namespace splicer;

int main() {
  common::Rng rng(12345);
  crypto::KeyManagementGroup kmg(/*member_count=*/5, rng.fork());
  core::PaymentWorkflow workflow(kmg, rng);

  core::PaymentDemand demand;
  demand.sender = 17;
  demand.receiver = 42;
  demand.value = common::tokens(13.250);  // 13.25 tokens

  std::cout << "=== Splicer payment workflow trace ===\n"
            << "P_s=" << demand.sender << "  P_r=" << demand.receiver
            << "  val=" << common::amount_to_string(demand.value) << " tokens\n"
            << "KMG: " << kmg.member_count() << " members, threshold "
            << kmg.threshold() << "\n\n";

  const auto result = workflow.execute(demand);
  for (const auto& line : result.trace) std::cout << "  " << line << "\n";

  std::cout << "\nTUs: " << result.tu_count << " [";
  for (std::size_t i = 0; i < result.tu_values.size(); ++i) {
    std::cout << (i ? ", " : "") << common::amount_to_string(result.tu_values[i]);
  }
  std::cout << "]\nmessages: " << result.messages
            << "\nKMG keys issued: " << kmg.issued_count()
            << "\nresult: " << (result.success ? "SUCCESS" : "FAILURE") << "\n";
  return result.success ? 0 : 1;
}
