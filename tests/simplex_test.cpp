#include "lp/simplex.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace splicer::lp {
namespace {

TEST(Simplex, TextbookMaximisation) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 -> (2, 6), z = 36.
  Model m;
  const int x = m.add_variable("x", 0.0, kInfinity);
  const int y = m.add_variable("y", 0.0, kInfinity);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 4.0);
  m.add_constraint({{y, 2.0}}, Relation::kLessEqual, 12.0);
  m.add_constraint({{x, 3.0}, {y, 2.0}}, Relation::kLessEqual, 18.0);
  m.set_objective({{x, 3.0}, {y, 5.0}}, Sense::kMaximize);
  const auto s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 36.0, 1e-9);
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
  EXPECT_NEAR(s.values[1], 6.0, 1e-9);
}

TEST(Simplex, MinimisationWithGreaterEqual) {
  // min 2x + 3y s.t. x + y >= 4, x >= 1 -> (4, 0)? check: obj 8 at (4,0);
  // (1,3) costs 11. Optimum x=4,y=0.
  Model m;
  const int x = m.add_variable("x", 0.0, kInfinity);
  const int y = m.add_variable("y", 0.0, kInfinity);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 4.0);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 1.0);
  m.set_objective({{x, 2.0}, {y, 3.0}});
  const auto s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 8.0, 1e-9);
}

TEST(Simplex, EqualityConstraint) {
  // min x + y s.t. x + 2y = 6, x,y in [0, 10] -> (0, 3), obj 3.
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0);
  const int y = m.add_variable("y", 0.0, 10.0);
  m.add_constraint({{x, 1.0}, {y, 2.0}}, Relation::kEqual, 6.0);
  m.set_objective({{x, 1.0}, {y, 1.0}});
  const auto s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 3.0, 1e-9);
  EXPECT_NEAR(s.values[1], 3.0, 1e-9);
}

TEST(Simplex, DetectsInfeasible) {
  Model m;
  const int x = m.add_variable("x", 0.0, 1.0);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 5.0);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  Model m;
  const int x = m.add_variable("x", 0.0, kInfinity);
  m.set_objective({{x, 1.0}}, Sense::kMaximize);
  EXPECT_EQ(SimplexSolver().solve(m).status, SolveStatus::kUnbounded);
}

TEST(Simplex, NonZeroLowerBoundsShift) {
  // min x + y with x in [2,5], y in [3,7], x + y >= 6 -> (2,4) or (3,3): obj 5... wait x>=2,y>=3 -> min sum 5 but constraint >=6 -> obj 6.
  Model m;
  const int x = m.add_variable("x", 2.0, 5.0);
  const int y = m.add_variable("y", 3.0, 7.0);
  m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kGreaterEqual, 6.0);
  m.set_objective({{x, 1.0}, {y, 1.0}});
  const auto s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 6.0, 1e-9);
  EXPECT_GE(s.values[0], 2.0 - 1e-9);
  EXPECT_GE(s.values[1], 3.0 - 1e-9);
}

TEST(Simplex, BoundOverridesForBranchAndBound) {
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0);
  m.set_objective({{x, 1.0}}, Sense::kMaximize);
  const auto s = SimplexSolver().solve_with_bounds(m, {0.0}, {3.5});
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], 3.5, 1e-9);
}

TEST(Simplex, ContradictoryBoundOverridesAreInfeasible) {
  Model m;
  (void)m.add_variable("x", 0.0, 10.0);
  m.set_objective({{0, 1.0}});
  const auto s = SimplexSolver().solve_with_bounds(m, {5.0}, {4.0});
  EXPECT_EQ(s.status, SolveStatus::kInfeasible);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // Klee-Minty-flavoured degeneracy guard: redundant constraints.
  Model m;
  const int x = m.add_variable("x", 0.0, kInfinity);
  const int y = m.add_variable("y", 0.0, kInfinity);
  for (int i = 0; i < 5; ++i) {
    m.add_constraint({{x, 1.0}, {y, 1.0}}, Relation::kLessEqual, 10.0);
  }
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 10.0);
  m.set_objective({{x, 1.0}, {y, 2.0}}, Sense::kMaximize);
  const auto s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 20.0, 1e-9);
}

// Property: simplex solutions are feasible and at least as good as random
// feasible points (local optimality proxy on random LPs).
class SimplexPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexPropertyTest, FeasibleAndBeatsRandomPoints) {
  common::Rng rng(GetParam());
  Model m;
  const int n = 5;
  for (int j = 0; j < n; ++j) {
    (void)m.add_variable("x" + std::to_string(j), 0.0, rng.uniform(1.0, 10.0));
  }
  for (int c = 0; c < 4; ++c) {
    LinearExpr expr;
    for (int j = 0; j < n; ++j) expr.push_back({j, rng.uniform(0.0, 2.0)});
    m.add_constraint(std::move(expr), Relation::kLessEqual, rng.uniform(5.0, 20.0));
  }
  LinearExpr obj;
  for (int j = 0; j < n; ++j) obj.push_back({j, rng.uniform(-1.0, 3.0)});
  m.set_objective(std::move(obj), Sense::kMaximize);

  const auto s = SimplexSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(m.is_feasible(s.values, 1e-6));
  // Sample feasible points by scaling random points into the polytope.
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> point(n);
    for (int j = 0; j < n; ++j) {
      point[j] = rng.uniform(0.0, m.variable(j).upper) * 0.2;
    }
    if (m.is_feasible(point, 1e-9)) {
      EXPECT_LE(m.evaluate_objective(point), s.objective + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace splicer::lp
