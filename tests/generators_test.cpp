#include "graph/generators.h"

#include <gtest/gtest.h>

#include "graph/metrics.h"

namespace splicer::graph {
namespace {

class WattsStrogatzParam
    : public ::testing::TestWithParam<std::tuple<std::size_t, std::size_t, double>> {};

TEST_P(WattsStrogatzParam, ConnectedWithExpectedEdgeBudget) {
  const auto [n, k, beta] = GetParam();
  common::Rng rng(11);
  const Graph g = watts_strogatz(n, k, beta, rng);
  EXPECT_EQ(g.node_count(), n);
  EXPECT_TRUE(is_connected(g));
  // Ring lattice creates ~n*k/2 edges; rewiring may drop a few duplicates.
  EXPECT_GE(g.edge_count(), n * k / 2 - n);
  EXPECT_LE(g.edge_count(), n * k / 2 + n);
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, WattsStrogatzParam,
    ::testing::Values(std::tuple{20, 4, 0.0}, std::tuple{100, 8, 0.15},
                      std::tuple{100, 8, 0.5}, std::tuple{500, 6, 0.15},
                      std::tuple{1000, 8, 0.15}, std::tuple{100, 8, 1.0}));

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  common::Rng rng(1);
  const Graph g = watts_strogatz(12, 4, 0.0, rng);
  // Every node connects to neighbours at distance 1 and 2 on the ring.
  for (NodeId i = 0; i < 12; ++i) {
    EXPECT_TRUE(g.has_edge(i, (i + 1) % 12));
    EXPECT_TRUE(g.has_edge(i, (i + 2) % 12));
  }
}

TEST(WattsStrogatz, HighClusteringAtLowBeta) {
  common::Rng rng(2);
  const Graph lattice = watts_strogatz(200, 8, 0.0, rng);
  const Graph random_ish = watts_strogatz(200, 8, 1.0, rng);
  EXPECT_GT(average_clustering(lattice), 0.5);
  EXPECT_LT(average_clustering(random_ish), average_clustering(lattice));
}

TEST(WattsStrogatz, RewiringShortensPaths) {
  common::Rng rng(3);
  const Graph lattice = watts_strogatz(300, 6, 0.0, rng);
  const Graph small_world = watts_strogatz(300, 6, 0.2, rng);
  EXPECT_LT(HopMatrix(small_world).mean_hops(), HopMatrix(lattice).mean_hops());
}

TEST(WattsStrogatz, ParameterValidation) {
  common::Rng rng(4);
  EXPECT_THROW((void)watts_strogatz(10, 3, 0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)watts_strogatz(10, 0, 0.1, rng), std::invalid_argument);
  EXPECT_THROW((void)watts_strogatz(4, 4, 0.1, rng), std::invalid_argument);
}

TEST(WattsStrogatz, DeterministicGivenSeed) {
  common::Rng a(5), b(5);
  const Graph g1 = watts_strogatz(50, 4, 0.3, a);
  const Graph g2 = watts_strogatz(50, 4, 0.3, b);
  ASSERT_EQ(g1.edge_count(), g2.edge_count());
  for (EdgeId e = 0; e < g1.edge_count(); ++e) {
    EXPECT_EQ(g1.edge(e).u, g2.edge(e).u);
    EXPECT_EQ(g1.edge(e).v, g2.edge(e).v);
  }
}

TEST(PreferentialAttachment, DegreeDistributionIsSkewed) {
  common::Rng rng(6);
  const Graph g = preferential_attachment(1000, 3, rng);
  EXPECT_TRUE(is_connected(g));
  const auto stats = degree_stats(g);
  // Scale-free: hub degree far exceeds the mean (ROLL generates such nets).
  EXPECT_GT(static_cast<double>(stats.max), 5.0 * stats.mean);
  EXPECT_GE(stats.min, 3u);
}

TEST(PreferentialAttachment, EdgeCount) {
  common::Rng rng(7);
  const std::size_t n = 200, m = 2;
  const Graph g = preferential_attachment(n, m, rng);
  // Seed clique of m+1 nodes + m edges per later node.
  EXPECT_EQ(g.edge_count(), m * (m + 1) / 2 + (n - m - 1) * m);
}

TEST(PreferentialAttachment, Validation) {
  common::Rng rng(8);
  EXPECT_THROW((void)preferential_attachment(2, 0, rng), std::invalid_argument);
  EXPECT_THROW((void)preferential_attachment(2, 2, rng), std::invalid_argument);
}

TEST(Star, Shape) {
  const Graph g = star(6);
  EXPECT_EQ(g.edge_count(), 5u);
  EXPECT_EQ(g.degree(0), 5u);
  for (NodeId i = 1; i < 6; ++i) EXPECT_EQ(g.degree(i), 1u);
  EXPECT_THROW((void)star(1), std::invalid_argument);
}

TEST(MultiStar, Shape) {
  const Graph g = multi_star(3, 9);
  EXPECT_TRUE(is_connected(g));
  // Hub mesh: 3 edges; spokes: 9.
  EXPECT_EQ(g.edge_count(), 3u + 9u);
  for (NodeId c = 3; c < 12; ++c) EXPECT_EQ(g.degree(c), 1u);
}

TEST(PatchConnectivity, JoinsComponents) {
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  g.add_edge(4, 5);
  EXPECT_FALSE(is_connected(g));
  const std::size_t added = patch_connectivity(g);
  EXPECT_EQ(added, 2u);
  EXPECT_TRUE(is_connected(g));
}

}  // namespace
}  // namespace splicer::graph
