// stale-allow fixture: the first allow still suppresses a live finding
// (used); the second excuses code that was since fixed — in tree runs it
// must surface as a stale-allow finding. Pinned by LintStaleAllow.*.
#include <unordered_map>

struct Table {
  // SPLICER_LINT_ALLOW(unordered-decl): keyed O(1) lookups only; no loop
  // ever walks this map, so iteration order cannot reach the event stream.
  std::unordered_map<int, int> used_;
  // SPLICER_LINT_ALLOW(unordered-decl): this map was replaced by a sorted
  // vector long ago; the annotation outlived the code it excused.
  int stale_[4];
};
