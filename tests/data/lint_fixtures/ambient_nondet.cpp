// splicer-lint fixture: ambient-nondet — wall clocks, ambient randomness
// and environment reads in a determinism-critical path.
#include <chrono>
#include <cstdlib>
#include <random>

double bad_clock() {
  return static_cast<double>(std::chrono::system_clock::now().time_since_epoch().count());
}

int bad_entropy() {
  std::random_device rd;
  return static_cast<int>(rd()) + rand();
}

// SPLICER_LINT_ALLOW(ambient-nondet): fixture-only; never feeds the event stream.
long allowed_clock() { return std::chrono::steady_clock::now().time_since_epoch().count(); }

const char* kDoc = "mentions std::random_device and rand() in a string";
// A comment naming system_clock is not a finding either.
long bad_time() { return time(nullptr); }
char* bad_env() { return std::getenv("PATH"); }
