// splicer-lint fixture: bare-allow and unknown-rule meta findings.
#include <unordered_map>

// SPLICER_LINT_ALLOW(unordered-decl)
std::unordered_map<int, int> bare_allow_does_not_suppress;

// SPLICER_LINT_ALLOW(no-such-rule): a reason that cannot save an unknown tag.
std::unordered_map<int, int> unknown_rule_does_not_suppress;

// SPLICER_LINT_ALLOW(unordered-decl):
std::unordered_map<int, int> empty_reason_is_bare;
