// call-graph fixture: a bare call inside a method prefers the sibling
// method over a free function of the same name; the same bare call in a
// free function takes the free definition. Pinned by
// CallGraphCorpus.MethodShadowsFreeFunction.
int tally() { return 0; }

struct Counter {
  int tally() { return 1; }
  int total() { return tally(); }
};

int outside() { return tally(); }
