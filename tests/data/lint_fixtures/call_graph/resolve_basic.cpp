// call-graph fixture: basic resolution — free functions, methods, bare and
// qualified calls. Pinned by CallGraphCorpus.ResolveBasic.
int leaf() { return 1; }

int caller() { return leaf(); }

struct Widget {
  int helper() { return leaf(); }
  int run();
};

int Widget::run() { return helper() + caller(); }
