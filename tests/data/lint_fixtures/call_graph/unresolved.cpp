// call-graph fixture: a member call whose name is defined by two classes
// cannot be pinned without receiver types — it is recorded as an
// unresolved call (deliberately visible, never silently dropped). Pinned
// by CallGraphCorpus.AmbiguousMemberCallIsUnresolved.
struct Alpha {
  void tick() {}
};
struct Beta {
  void tick() {}
};

template <typename T>
void drive(T& obj) { obj.tick(); }
