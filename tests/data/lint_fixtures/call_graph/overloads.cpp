// call-graph fixture: a call into an overload set over-approximates to an
// edge per overload (safe for reachability). Pinned by
// CallGraphCorpus.OverloadsGetAnEdgeEach.
int pick(int v) { return v; }
int pick(double v) { return static_cast<int>(v); }

int use() { return pick(3); }
