// splicer-lint fixture: writer-lanes — rate-router active-set scheduling
// state touched outside the router core. The active lists and wake
// machinery keep the incremental tick bit-identical to the full sweep;
// outside writers would break the retire/wake invariants silently.
struct Meddler {
  void poke() {
    active_pairs_.clear();
    active_channels_.push_back(3);
    sleep_subs_[0].clear();
    wake_heap_.pop_back();
  }
};
