// splicer-lint fixture: writer-lanes — mailbox state touched outside its
// owning component.
struct Peer {
  void poke() {
    lanes_[0].clear();
    drain_mailboxes(0.0);
    handoff_inbox_.clear();
  }
};
