// slab-alias-escape fixture: the slab reference escapes into a helper that
// reaches send_tu one call deep; the annotated twin documents why its
// callee cannot relocate before the last use. Pinned by
// LintInterproc.SlabAliasEscape*.
struct Engine {
  void* find_payment_state(int id);
  void send_tu(int tu);
};

void forward_one(Engine& engine, void* state) {
  engine.send_tu(1);
}

void bad_driver(Engine& engine) {
  auto* state = engine.find_payment_state(7);
  forward_one(engine, state);
}

void ok_driver(Engine& engine) {
  auto* state = engine.find_payment_state(9);
  // SPLICER_LINT_ALLOW(slab-alias-escape): forward_one reads the state
  // before its send_tu and never touches it afterwards.
  forward_one(engine, state);
}
