// splicer-lint fixture: std-function on a simulation path.
#include <functional>

using BadCallback = std::function<void(int)>;

// SPLICER_LINT_ALLOW(std-function): documented fallback, construction-time only.
using OkCallback = std::function<void()>;
