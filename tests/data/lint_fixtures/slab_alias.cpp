// splicer-lint fixture: slab-alias — retained slab references across
// relocation points, and send_tu from on_tu_forwarded.
struct Engine;

void stale_after_send(Engine& engine) {
  auto* state = engine.find_payment_state(7);
  engine.send_tu(3);
  state->retries++;
}

void guard_clause_ok(Engine& engine) {
  auto* state = engine.find_payment_state(7);
  if (state == nullptr) {
    engine.fail_payment(7);
    return;
  }
  state->retries++;
}

struct Router {
  void on_tu_forwarded(Engine& engine) {
    engine.send_tu(9);
  }
};
