// splicer-lint fixture: writer-lanes — Engine hostile-world mutation state
// touched outside the engine core. The staged-event slots and depth
// counters make mutation replay idempotent and bit-identical across shard
// counts; an outside writer could double-apply a close or strand a depth.
struct Meddler {
  void poke() {
    staged_mutations_[0].reset();
    mutators_.clear();
    node_down_depth_[7] = 0;
    channel_close_depth_.assign(4, 1);
  }
};
