// splicer-lint fixture: clean — ordered containers, no banned tokens.
#include <map>
#include <vector>

struct Clean {
  std::map<int, int> ordered_;
  std::vector<int> dense_;
};

int sum(const Clean& c) {
  int total = 0;
  for (const auto& [k, v] : c.ordered_) total += v;
  return total;
}
