// hotpath-alloc fixture: the allocation hides two calls below the hot
// entry point — only the call graph can see it. The annotated pool refill
// is the sanctioned shape. Pinned by LintInterproc.HotpathAlloc*.
struct Engine {
  void handle_event();
  void dispatch();
  void build_scratch();
  void refill_pool();
};

void Engine::handle_event() {
  dispatch();
  refill_pool();
}

void Engine::dispatch() { build_scratch(); }

void Engine::build_scratch() {
  int* block = new int[8];
  delete[] block;
}

void Engine::refill_pool() {
  // SPLICER_LINT_ALLOW(hotpath-alloc): pool refill — runs once per pool
  // exhaustion, amortised across thousands of events.
  int* block = new int[64];
  delete[] block;
}
