// float-order fixture: the floating accumulation lives in a helper reached
// from merge(); the annotated twin pins the sanctioned shape. Pinned by
// LintInterproc.FloatOrder*.
struct ShardStats {
  double mean_ = 0.0;
  long count_ = 0;
  void merge(const ShardStats& other);
  void fold_in(const ShardStats& other);
};

void ShardStats::merge(const ShardStats& other) { fold_in(other); }

void ShardStats::fold_in(const ShardStats& other) {
  const double weight = other.mean_;
  mean_ += weight;
  count_ += other.count_;
}

struct OkStats {
  double sum_ = 0.0;
  void merge(const OkStats& other) {
    const double incoming = other.sum_;
    // SPLICER_LINT_ALLOW(float-order): shards are folded in ascending
    // shard index on the coordinator thread; the order never varies.
    sum_ += incoming;
  }
};
