// writer-lanes-transitive fixture (user half): calling a non-sanctioned
// helper that writes lanes_ makes this caller a writer — flagged at the
// call site even though this file never names lanes_ at all. post() is the
// legal crossing, and the annotated call pins a reasoned exception. Pinned
// by LintInterproc.WriterLanesTransitive*.
struct ShardedScheduler;

void bad_reset(ShardedScheduler& sched) {
  sched.clear_lane(3);
}

void good_post(ShardedScheduler& sched) {
  sched.post(3);
}

void excused_reset(ShardedScheduler& sched) {
  // SPLICER_LINT_ALLOW(writer-lanes-transitive): test-only teardown drain;
  // the simulation is single-threaded here and no concurrent writer exists.
  sched.clear_lane(4);
}
