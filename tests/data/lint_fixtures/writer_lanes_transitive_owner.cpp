// writer-lanes-transitive fixture (owner half, linted as
// src/sim/sharded_scheduler.cpp): helpers inside the owning component may
// touch lanes_; post() is a sanctioned entry API. Pinned by
// LintInterproc.WriterLanesTransitive*.
struct ShardedScheduler {
  void clear_lane(int lane);
  void post(int lane);
  int lanes_[8];
};

void ShardedScheduler::clear_lane(int lane) { lanes_[lane] = 0; }

void ShardedScheduler::post(int lane) { lanes_[lane] += 1; }
