// splicer-lint fixture: unordered-decl and unordered-iter.
#include <unordered_map>
#include <unordered_set>

struct Fixture {
  std::unordered_map<int, int> naked_;
  // SPLICER_LINT_ALLOW(unordered-decl): keyed lookup only, never iterated.
  std::unordered_set<int> allowed_;
};

int iterate(Fixture& f) {
  int sum = 0;
  for (const auto& [k, v] : f.naked_) sum += v;
  // SPLICER_LINT_ALLOW(unordered-iter): order-independent sum, never emitted.
  for (int v : f.allowed_) sum += v;
  auto it = f.naked_.begin();
  (void)it;
  return sum;
}
