#include "sim/thread_pool.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <set>
#include <stdexcept>
#include <utility>
#include <vector>

namespace splicer::sim {
namespace {

TEST(ThreadPool, DefaultsToAtLeastOneWorker) {
  ThreadPool pool(0);
  EXPECT_GE(pool.thread_count(), 1u);
}

TEST(ThreadPool, SubmitAndDrain) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 1000; ++i) {
    pool.submit([&counter] { counter.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPool, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 50; ++i) {
      pool.submit([&counter] { ++counter; });
    }
    pool.wait();
    EXPECT_EQ(counter.load(), 50 * (batch + 1));
  }
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&hits](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsANoop) {
  ThreadPool pool(3);
  pool.parallel_for(0, [](std::size_t) { FAIL() << "body must not run"; });
}

TEST(ThreadPool, SubmitToPinsTaskToShard) {
  constexpr std::size_t kWorkers = 4;
  ThreadPool pool(kWorkers);
  std::vector<std::atomic<int>> observed(kWorkers);
  for (auto& o : observed) o.store(-2);
  for (std::size_t shard = 0; shard < kWorkers; ++shard) {
    pool.submit_to(shard, [&observed, shard] {
      observed[shard].store(ThreadPool::current_shard());
    });
  }
  pool.wait();
  for (std::size_t shard = 0; shard < kWorkers; ++shard) {
    EXPECT_EQ(observed[shard].load(), static_cast<int>(shard));
  }
}

TEST(ThreadPool, OutOfRangeShardIsACheckedError) {
  // Silent modulo aliasing would fold two logical shards onto one worker
  // with no signal; the sharded engine relies on this being loud instead.
  ThreadPool pool(2);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.submit_to(7, [&ran] { ++ran; }), std::out_of_range);
  EXPECT_THROW(pool.submit_to(2, [&ran] { ++ran; }), std::out_of_range);
  pool.submit_to(1, [&ran] { ++ran; });  // in-range still works
  pool.wait();
  EXPECT_EQ(ran.load(), 1);
}

TEST(ThreadPool, CurrentShardIsMinusOneOffPool) {
  EXPECT_EQ(ThreadPool::current_shard(), -1);
}

TEST(ThreadPool, FirstExceptionPropagatesFromWait) {
  ThreadPool pool(2);
  pool.submit([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(pool.wait(), std::runtime_error);
}

TEST(ThreadPool, PoolIsUsableAfterAnException) {
  ThreadPool pool(2);
  pool.submit([] { throw std::logic_error("first batch fails"); });
  EXPECT_THROW(pool.wait(), std::logic_error);

  std::atomic<int> counter{0};
  for (int i = 0; i < 20; ++i) pool.submit([&counter] { ++counter; });
  pool.wait();  // must not rethrow the already-consumed exception
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, LaterTasksStillRunWhenOneThrows) {
  ThreadPool pool(1);  // single shard: the throwing task runs first
  std::atomic<int> counter{0};
  pool.submit([] { throw std::runtime_error("early"); });
  for (int i = 0; i < 10; ++i) pool.submit([&counter] { ++counter; });
  EXPECT_THROW(pool.wait(), std::runtime_error);
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPool, ExceptionInParallelForBodyPropagates) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 63) throw std::out_of_range("63");
                                 }),
               std::out_of_range);
}

TEST(ThreadPool, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) pool.submit([&counter] { ++counter; });
    // no wait(): the destructor must drain before joining
  }
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, AcceptsMoveOnlyTasks) {
  // The small-buffer task type must carry move-only captures, which
  // std::function rejected (one reason every submission heap-allocated).
  ThreadPool pool(2);
  std::atomic<int> sum{0};
  for (int i = 1; i <= 10; ++i) {
    auto owned = std::make_unique<int>(i);
    pool.submit([&sum, owned = std::move(owned)] { sum += *owned; });
  }
  pool.wait();
  EXPECT_EQ(sum.load(), 55);
}

TEST(SmallFunction, InlineAndBoxedTargetsBehaveIdentically) {
  // Small capture: fits the inline buffer.
  int hits = 0;
  common::SmallFunction<void()> small = [&hits] { ++hits; };
  EXPECT_TRUE(static_cast<bool>(small));
  small();
  EXPECT_EQ(hits, 1);

  // Oversized capture: spills to the heap box, same semantics.
  std::array<std::uint64_t, 32> big{};
  big[31] = 7;
  common::SmallFunction<int()> boxed = [big] {
    return static_cast<int>(big[31]);
  };
  EXPECT_EQ(boxed(), 7);

  // Move transfers the target and empties the source.
  auto moved = std::move(boxed);
  EXPECT_EQ(moved(), 7);
  EXPECT_FALSE(static_cast<bool>(boxed));  // NOLINT(bugprone-use-after-move)

  common::SmallFunction<void()> empty;
  EXPECT_FALSE(static_cast<bool>(empty));
  EXPECT_THROW(empty(), std::bad_function_call);
}

TEST(SmallFunction, DestroysMoveOnlyTargetExactlyOnce) {
  auto counted = std::make_shared<int>(0);
  {
    common::SmallFunction<void()> f = [counted] { ++*counted; };
    EXPECT_EQ(counted.use_count(), 2);
    f();
    auto g = std::move(f);
    EXPECT_EQ(counted.use_count(), 2);  // transferred, not duplicated
    g();
  }
  EXPECT_EQ(counted.use_count(), 1);  // released on destruction
  EXPECT_EQ(*counted, 2);
}

}  // namespace
}  // namespace splicer::sim
