#include "graph/max_flow.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace splicer::graph {
namespace {

TEST(MaxFlow, ClassicExample) {
  // Two parallel 2-hop routes with capacities 10/5 and 4/8.
  Graph g(4);
  g.add_edge(0, 1, 1.0, 10.0);
  g.add_edge(1, 3, 1.0, 5.0);
  g.add_edge(0, 2, 1.0, 4.0);
  g.add_edge(2, 3, 1.0, 8.0);
  const auto result = max_flow(g, 0, 3);
  EXPECT_DOUBLE_EQ(result.total_flow, 9.0);  // 5 + 4
}

TEST(MaxFlow, BottleneckSingleEdge) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 100.0);
  g.add_edge(1, 2, 1.0, 7.0);
  const auto result = max_flow(g, 0, 2);
  EXPECT_DOUBLE_EQ(result.total_flow, 7.0);
}

TEST(MaxFlow, FlowLimitStopsEarly) {
  Graph g(3);
  g.add_edge(0, 1, 1.0, 100.0);
  g.add_edge(1, 2, 1.0, 100.0);
  MaxFlowOptions options;
  options.flow_limit = 25.0;
  const auto result = max_flow(g, 0, 2, options);
  EXPECT_DOUBLE_EQ(result.total_flow, 25.0);
}

TEST(MaxFlow, MaxPathsBound) {
  Graph g(6);
  for (NodeId mid = 1; mid <= 4; ++mid) {
    g.add_edge(0, mid, 1.0, 1.0);
    g.add_edge(mid, 5, 1.0, 1.0);
  }
  MaxFlowOptions options;
  options.max_paths = 2;
  const auto result = max_flow(g, 0, 5, options);
  EXPECT_EQ(result.paths.size(), 2u);
  EXPECT_DOUBLE_EQ(result.total_flow, 2.0);
}

TEST(MaxFlow, AsymmetricDirectionCapacities) {
  Graph g(2);
  g.add_edge(0, 1, 1.0, 0.0);
  std::vector<double> fwd{9.0};   // 0->1 of stored edge
  std::vector<double> bwd{2.0};   // 1->0
  MaxFlowOptions options;
  options.forward_capacity = &fwd;
  options.backward_capacity = &bwd;
  EXPECT_DOUBLE_EQ(max_flow(g, 0, 1, options).total_flow, 9.0);
  EXPECT_DOUBLE_EQ(max_flow(g, 1, 0, options).total_flow, 2.0);
}

TEST(MaxFlow, DisconnectedIsZero) {
  Graph g(4);
  g.add_edge(0, 1, 1.0, 5.0);
  const auto result = max_flow(g, 0, 3);
  EXPECT_DOUBLE_EQ(result.total_flow, 0.0);
  EXPECT_TRUE(result.paths.empty());
}

TEST(MaxFlow, PathsCarryTheFlow) {
  Graph g(4);
  g.add_edge(0, 1, 1.0, 10.0);
  g.add_edge(1, 3, 1.0, 5.0);
  g.add_edge(0, 2, 1.0, 4.0);
  g.add_edge(2, 3, 1.0, 8.0);
  const auto result = max_flow(g, 0, 3);
  double sum = 0.0;
  for (const auto& fp : result.paths) {
    EXPECT_GT(fp.flow, 0.0);
    EXPECT_TRUE(is_valid_path(g, fp.path));
    sum += fp.flow;
  }
  EXPECT_DOUBLE_EQ(sum, result.total_flow);
}

// Property: max flow can never exceed the degree cut at source or sink.
class MaxFlowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MaxFlowPropertyTest, BoundedByTrivialCuts) {
  common::Rng rng(GetParam());
  Graph g = watts_strogatz(30, 4, 0.3, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) g.set_capacity(e, rng.uniform(1, 50));
  const NodeId s = 0, t = 15;
  double s_cut = 0.0, t_cut = 0.0;
  for (const auto& half : g.neighbors(s)) s_cut += g.edge(half.edge).capacity;
  for (const auto& half : g.neighbors(t)) t_cut += g.edge(half.edge).capacity;
  const auto result = max_flow(g, s, t);
  EXPECT_LE(result.total_flow, std::min(s_cut, t_cut) + 1e-9);
  EXPECT_GT(result.total_flow, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaxFlowPropertyTest,
                         ::testing::Values(100, 200, 300, 400, 500));

}  // namespace
}  // namespace splicer::graph
