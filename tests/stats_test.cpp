#include "common/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace splicer::common {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStats, KnownMeanAndVariance) {
  RunningStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(1);
  RunningStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal(3.0, 2.0);
    all.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), all.min());
  EXPECT_DOUBLE_EQ(left.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a, b;
  a.add(1.0);
  a.add(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, MedianOfOddCount) {
  EXPECT_DOUBLE_EQ(median({3.0, 1.0, 2.0}), 2.0);
}

TEST(Percentile, MedianOfEvenCountInterpolates) {
  EXPECT_DOUBLE_EQ(median({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(Percentile, ExtremesAreMinMax) {
  const std::vector<double> v{5.0, 1.0, 9.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(v, 1.0), 9.0);
}

TEST(Percentile, EmptyReturnsZero) { EXPECT_DOUBLE_EQ(percentile({}, 0.5), 0.0); }

TEST(Percentile, OutOfRangeThrows) {
  EXPECT_THROW((void)percentile({1.0}, 1.5), std::invalid_argument);
  EXPECT_THROW((void)percentile({1.0}, -0.1), std::invalid_argument);
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

TEST(Histogram, CountsFallIntoBuckets) {
  Histogram h(0.0, 10.0, 5);
  h.add(0.5);
  h.add(1.5);
  h.add(9.9);
  EXPECT_EQ(h.bucket(0), 2u);  // [0,2)
  EXPECT_EQ(h.bucket(4), 1u);  // [8,10)
  EXPECT_EQ(h.total(), 3u);
}

TEST(Histogram, OutOfRangeClampsToEdges) {
  Histogram h(0.0, 10.0, 5);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.bucket(0), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
}

TEST(Histogram, BucketBounds) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(4), 10.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(Histogram(0.0, 10.0, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(5.0, 5.0, 3), std::invalid_argument);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 2.0, 2);
  h.add(0.5);
  const std::string text = h.render();
  EXPECT_NE(text.find('#'), std::string::npos);
}

TEST(StudentT95, TableEntriesAreExact) {
  EXPECT_DOUBLE_EQ(student_t95(1), 12.706);
  EXPECT_DOUBLE_EQ(student_t95(10), 2.228);
  EXPECT_DOUBLE_EQ(student_t95(30), 2.042);
}

TEST(StudentT95, NoDiscontinuityPastTheTable) {
  // The historical implementation jumped from t(30) = 2.042 straight to
  // 1.96 at df 31; the interpolated tail steps down smoothly instead.
  const double t30 = student_t95(30);
  const double t31 = student_t95(31);
  EXPECT_DOUBLE_EQ(t30, 2.042);
  // Pin the interpolated df = 31 value: linear in 1/df between the df = 30
  // and df = 40 anchors, t = 2.021 + (2.042 - 2.021) *
  // (1/31 - 1/40) / (1/30 - 1/40).
  const double expected31 =
      2.021 + (2.042 - 2.021) * (1.0 / 31 - 1.0 / 40) / (1.0 / 30 - 1.0 / 40);
  EXPECT_DOUBLE_EQ(t31, expected31);
  EXPECT_NEAR(t31, 2.0394, 1e-3);
  EXPECT_LT(t30 - t31, 0.005);  // a step, not the old 0.082 cliff
}

TEST(StudentT95, TailHitsTheStandardAnchorsAndLimit) {
  EXPECT_DOUBLE_EQ(student_t95(40), 2.021);
  EXPECT_DOUBLE_EQ(student_t95(60), 2.000);
  EXPECT_DOUBLE_EQ(student_t95(120), 1.980);
  EXPECT_NEAR(student_t95(100000), 1.960, 1e-3);
  // Monotone non-increasing across the seam and the whole tail.
  double prev = student_t95(25);
  for (std::size_t df = 26; df <= 200; ++df) {
    const double t = student_t95(df);
    EXPECT_LE(t, prev + 1e-12) << "df " << df;
    prev = t;
  }
  EXPECT_DOUBLE_EQ(student_t95(0), 0.0);
}

TEST(StudentT95, Ci95UsesTheSmoothedQuantile) {
  RunningStats wide;  // 32 samples -> df 31, the old cliff edge
  for (int i = 0; i < 32; ++i) wide.add(static_cast<double>(i % 2));
  const double expected =
      student_t95(31) * wide.stddev() / std::sqrt(32.0);
  EXPECT_DOUBLE_EQ(ci95_half_width(wide), expected);
}

}  // namespace
}  // namespace splicer::common
