// Reproduction of paper SS II-B / Fig. 1: the local deadlock under naive
// routing, and Splicer's rate-based protocol sustaining the balanced flows.

#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "routing/engine.h"
#include "routing/shortest_path_router.h"
#include "routing/splicer_router.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

pcn::Network fig1_network() {
  graph::Graph g(3);  // A=0, B=1, C=2
  g.add_edge(0, 2);   // A - C
  g.add_edge(2, 1);   // C - B
  return pcn::Network::with_uniform_funds(std::move(g), whole_tokens(10));
}

std::vector<pcn::Payment> fig1_streams(double seconds) {
  std::vector<pcn::Payment> payments;
  const auto add = [&](NodeId s, NodeId r, double rate) {
    for (double t = 0.05; t < seconds; t += 1.0 / rate) {
      pcn::Payment p;
      p.sender = s;
      p.receiver = r;
      p.value = whole_tokens(1);
      p.arrival_time = t;
      p.deadline = t + 3.0;
      payments.push_back(p);
    }
  };
  add(0, 1, 1.0);  // A -> B at 1 token/s
  add(2, 1, 2.0);  // C -> B at 2 token/s
  add(1, 0, 2.0);  // B -> A at 2 token/s
  std::sort(payments.begin(), payments.end(), [](const auto& a, const auto& b) {
    return a.arrival_time < b.arrival_time;
  });
  for (std::size_t i = 0; i < payments.size(); ++i) payments[i].id = i + 1;
  return payments;
}

struct StreamStats {
  int completed_ab = 0, total_ab = 0;
  int completed_cb = 0, total_cb = 0;
  int completed_ba = 0, total_ba = 0;
  double last_completion = 0.0;
};

StreamStats analyze(Engine& engine, const std::vector<pcn::Payment>& payments) {
  StreamStats stats;
  for (const auto& p : payments) {
    const auto& st = engine.payment_state(p.id);
    const bool done = st.completed;
    if (p.sender == 0) {
      ++stats.total_ab;
      stats.completed_ab += done;
    } else if (p.sender == 2) {
      ++stats.total_cb;
      stats.completed_cb += done;
    } else {
      ++stats.total_ba;
      stats.completed_ba += done;
    }
    if (done) stats.last_completion = std::max(stats.last_completion, st.completion_time);
  }
  return stats;
}

TEST(Fig1Deadlock, NaiveRoutingDeadlocksCompletely) {
  const auto payments = fig1_streams(30.0);
  ShortestPathRouter naive;
  EngineConfig config;
  config.queues_enabled = false;
  Engine engine(fig1_network(), payments, naive, config);
  const auto m = engine.run();
  const auto stats = analyze(engine, payments);

  // The imbalanced rates drain C: after ~10 s nothing completes, even the
  // balanced A<->B streams with ample total funds ("local deadlock").
  EXPECT_LT(m.tsr(), 0.40);
  EXPECT_LT(stats.last_completion, 15.0);
  // Insufficient funds, not timeouts, is the naive failure mode.
  EXPECT_GT(m.payment_fail_reasons[static_cast<std::size_t>(
                FailReason::kInsufficientFunds)],
            50u);
}

TEST(Fig1Deadlock, SplicerSustainsBalancedFlows) {
  const auto payments = fig1_streams(30.0);
  SplicerRouter::Config rc;
  rc.protocol.k_paths = 1;
  rc.protocol.initial_rate_tps = 20.0;  // proportionate to 20-token channels
  SplicerRouter splicer({2, 2, 2}, {2}, rc);
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(fig1_network(), payments, splicer, config);
  const auto m = engine.run();
  const auto stats = analyze(engine, payments);

  // The fluid-model optimum here is 2 tokens/s: A->B and B->A at 1 each
  // (paper SS II-B), i.e. TSR = 60/150 = 40%. Splicer's discrete protocol
  // approaches it (min-rate floors and 1-token TU granularity cost a few
  // points) and keeps completing payments past the naive 10 s drain point.
  EXPECT_GT(m.tsr(), 0.33);
  EXPECT_GT(stats.last_completion, 12.0);
  // Throughput strictly better than the naive deadlock.
  ShortestPathRouter naive;
  EngineConfig atomic_config;
  atomic_config.queues_enabled = false;
  Engine naive_engine(fig1_network(), payments, naive, atomic_config);
  const auto naive_m = naive_engine.run();
  EXPECT_GT(m.payments_completed, naive_m.payments_completed);
}

TEST(Fig1Deadlock, SplicerKeepsChannelsAlive) {
  // After the run, no channel side should be fully drained under Splicer -
  // the balance constraint (eq. 19) in action.
  const auto payments = fig1_streams(30.0);
  SplicerRouter::Config rc;
  rc.protocol.k_paths = 1;
  rc.protocol.initial_rate_tps = 20.0;  // proportionate to 20-token channels
  SplicerRouter splicer({2, 2, 2}, {2}, rc);
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(fig1_network(), payments, splicer, config);
  (void)engine.run();
  int drained_sides = 0;
  for (pcn::ChannelId c = 0; c < engine.network().channel_count(); ++c) {
    const auto& ch = engine.network().channel(c);
    drained_sides += ch.available(pcn::Direction::kForward) == 0;
    drained_sides += ch.available(pcn::Direction::kBackward) == 0;
  }
  EXPECT_LE(drained_sides, 1);
}

TEST(Fig1Deadlock, BalancedOnlyWorkloadIsNearPerfect) {
  // Control experiment: with only the balanced A<->B streams, even at the
  // same rates, Splicer completes nearly everything.
  std::vector<pcn::Payment> payments;
  const auto add = [&](NodeId s, NodeId r, double rate) {
    for (double t = 0.05; t < 30.0; t += 1.0 / rate) {
      pcn::Payment p;
      p.sender = s;
      p.receiver = r;
      p.value = whole_tokens(1);
      p.arrival_time = t;
      p.deadline = t + 3.0;
      payments.push_back(p);
    }
  };
  add(0, 1, 1.0);
  add(1, 0, 1.0);
  std::sort(payments.begin(), payments.end(), [](const auto& a, const auto& b) {
    return a.arrival_time < b.arrival_time;
  });
  for (std::size_t i = 0; i < payments.size(); ++i) payments[i].id = i + 1;

  SplicerRouter::Config rc;
  rc.protocol.k_paths = 1;
  rc.protocol.initial_rate_tps = 20.0;  // proportionate to 20-token channels
  SplicerRouter splicer({2, 2, 2}, {2}, rc);
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(fig1_network(), payments, splicer, config);
  const auto m = engine.run();
  EXPECT_GT(m.tsr(), 0.9);
}

}  // namespace
}  // namespace splicer::routing
