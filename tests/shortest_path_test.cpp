#include "graph/shortest_path.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace splicer::graph {
namespace {

Graph diamond() {
  // 0 -1- 1 -1- 3,  0 -1- 2 -5- 3
  Graph g(4);
  g.add_edge(0, 1, 1.0);
  g.add_edge(1, 3, 1.0);
  g.add_edge(0, 2, 1.0);
  g.add_edge(2, 3, 5.0);
  return g;
}

TEST(BfsHops, Distances) {
  const Graph g = diamond();
  const auto hops = bfs_hops(g, 0);
  EXPECT_EQ(hops[0], 0);
  EXPECT_EQ(hops[1], 1);
  EXPECT_EQ(hops[2], 1);
  EXPECT_EQ(hops[3], 2);
}

TEST(BfsHops, UnreachableIsMinusOne) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_EQ(bfs_hops(g, 0)[2], -1);
}

TEST(Dijkstra, PicksCheaperRoute) {
  const Graph g = diamond();
  const auto p = shortest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 1, 3}));
  EXPECT_DOUBLE_EQ(p->length, 2.0);
  EXPECT_TRUE(is_valid_path(g, *p));
}

TEST(Dijkstra, WeightOverride) {
  const Graph g = diamond();
  std::vector<double> weights{10.0, 10.0, 1.0, 1.0};  // make lower route cheap
  DijkstraOptions options;
  options.weights = &weights;
  const auto p = shortest_path(g, 0, 3, options);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Dijkstra, DisabledEdgeForcesDetour) {
  const Graph g = diamond();
  std::vector<char> disabled(g.edge_count(), 0);
  disabled[0] = 1;  // kill 0-1
  DijkstraOptions options;
  options.disabled_edges = &disabled;
  const auto p = shortest_path(g, 0, 3, options);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Dijkstra, DisabledNodeForcesDetour) {
  const Graph g = diamond();
  std::vector<char> disabled(g.node_count(), 0);
  disabled[1] = 1;
  DijkstraOptions options;
  options.disabled_nodes = &disabled;
  const auto p = shortest_path(g, 0, 3, options);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 2, 3}));
}

TEST(Dijkstra, UnreachableReturnsNullopt) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(shortest_path(g, 0, 2).has_value());
}

TEST(Dijkstra, TrivialSourceEqualsTarget) {
  const Graph g = diamond();
  const auto p = shortest_path(g, 2, 2);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

TEST(Dijkstra, NegativeWeightThrows) {
  Graph g(2);
  g.add_edge(0, 1, -1.0);
  EXPECT_THROW((void)shortest_path(g, 0, 1), std::invalid_argument);
}

// Property: Dijkstra distances equal Bellman-Ford on random graphs.
class DijkstraPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraPropertyTest, MatchesBellmanFord) {
  common::Rng rng(GetParam());
  Graph g = watts_strogatz(60, 6, 0.3, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    g.set_weight(e, rng.uniform(0.1, 10.0));
  }
  const NodeId src = static_cast<NodeId>(rng.index(g.node_count()));
  const auto result = dijkstra(g, src);
  const auto reference = bellman_ford(g, src);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_NEAR(result.dist[v], reference[v], 1e-9) << "node " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ExtractPath, ReconstructionIsConsistent) {
  common::Rng rng(99);
  const Graph g = watts_strogatz(80, 6, 0.2, rng);
  const auto result = dijkstra(g, 0);
  for (NodeId v = 1; v < g.node_count(); v += 7) {
    const auto p = extract_path(g, result, 0, v);
    ASSERT_TRUE(p.has_value());
    EXPECT_TRUE(is_valid_path(g, *p));
    EXPECT_EQ(p->source(), 0u);
    EXPECT_EQ(p->target(), v);
    EXPECT_DOUBLE_EQ(p->length, result.dist[v]);
  }
}

}  // namespace
}  // namespace splicer::graph
