#include "common/samplers.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/stats.h"

namespace splicer::common {
namespace {

TEST(LogNormalSampler, CalibratedChannelSizeMatchesPaperStatistics) {
  // Paper SS V-A: min 10, median 152, mean 403 tokens.
  Rng rng(1);
  const auto sampler = make_channel_size_sampler();
  std::vector<double> samples;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double x = sampler.sample(rng);
    samples.push_back(x);
    stats.add(x);
  }
  EXPECT_GE(stats.min(), ChannelSizeDefaults::kMinTokens);
  EXPECT_NEAR(median(samples), ChannelSizeDefaults::kMedianTokens,
              ChannelSizeDefaults::kMedianTokens * 0.05);
  EXPECT_NEAR(stats.mean(), ChannelSizeDefaults::kMeanTokens,
              ChannelSizeDefaults::kMeanTokens * 0.10);
}

TEST(LogNormalSampler, CalibratedTxnValueMatchesCreditCardStatistics) {
  Rng rng(2);
  const auto sampler = make_txn_value_sampler();
  std::vector<double> samples;
  RunningStats stats;
  for (int i = 0; i < 200000; ++i) {
    const double x = sampler.sample(rng);
    samples.push_back(x);
    stats.add(x);
  }
  EXPECT_NEAR(median(samples), TxnValueDefaults::kMedianTokens,
              TxnValueDefaults::kMedianTokens * 0.05);
  EXPECT_NEAR(stats.mean(), TxnValueDefaults::kMeanTokens,
              TxnValueDefaults::kMeanTokens * 0.10);
}

TEST(LogNormalSampler, HeavyTail) {
  // A calibrated sampler must produce values well above the mean sometimes
  // ("large-value transactions that the Lightning Network cannot handle").
  Rng rng(3);
  const auto sampler = make_txn_value_sampler();
  double biggest = 0.0;
  for (int i = 0; i < 50000; ++i) biggest = std::max(biggest, sampler.sample(rng));
  EXPECT_GT(biggest, 10.0 * TxnValueDefaults::kMeanTokens);
}

TEST(LogNormalSampler, RejectsBadCalibration) {
  EXPECT_THROW(LogNormalSampler(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(LogNormalSampler(10.0, 5.0), std::invalid_argument);  // mean < median
}

TEST(LogNormalSampler, FloorApplies) {
  Rng rng(4);
  LogNormalSampler s(1.0, 2.0, /*floor=*/0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(s.sample(rng), 0.9);
}

TEST(ZipfSampler, UniformWhenSIsZero) {
  Rng rng(5);
  ZipfSampler zipf(4, 0.0);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_NEAR(c, n / 4, n / 40);
}

TEST(ZipfSampler, SkewFavoursLowIndices) {
  Rng rng(6);
  ZipfSampler zipf(100, 1.2);
  std::vector<int> counts(100, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.sample(rng)];
  EXPECT_GT(counts[0], counts[10] * 3);
  EXPECT_GT(counts[0], counts[50] * 10);
}

TEST(ZipfSampler, AllIndicesReachable) {
  Rng rng(7);
  ZipfSampler zipf(5, 1.0);
  std::vector<int> counts(5, 0);
  for (int i = 0; i < 20000; ++i) ++counts[zipf.sample(rng)];
  for (const int c : counts) EXPECT_GT(c, 0);
}

TEST(ZipfSampler, RejectsEmptyDomain) {
  EXPECT_THROW(ZipfSampler(0, 1.0), std::invalid_argument);
}

TEST(PoissonProcess, ArrivalsAreMonotone) {
  Rng rng(8);
  PoissonProcess arrivals(100.0);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const double t = arrivals.next(rng);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(PoissonProcess, MeanRateMatches) {
  Rng rng(9);
  PoissonProcess arrivals(50.0);
  double last = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) last = arrivals.next(rng);
  EXPECT_NEAR(n / last, 50.0, 2.0);
}

TEST(PoissonProcess, RejectsNonPositiveRate) {
  EXPECT_THROW(PoissonProcess(0.0), std::invalid_argument);
  EXPECT_THROW(PoissonProcess(-1.0), std::invalid_argument);
}

}  // namespace
}  // namespace splicer::common
