// Full-pipeline integration: placement -> transform -> KMG crypto ->
// routing simulation through the SplicerSystem facade.

#include "splicer/system.h"

#include <gtest/gtest.h>

namespace splicer::core {
namespace {

SystemOptions small_options(std::uint64_t seed = 5) {
  SystemOptions options;
  options.scenario.seed = seed;
  options.scenario.topology.nodes = 80;
  options.scenario.placement.candidate_count = 8;
  options.scenario.workload.payment_count = 300;
  options.scenario.workload.horizon_seconds = 6.0;
  options.crypto_sample = 16;
  return options;
}

TEST(SplicerSystem, EndToEndRunProducesReport) {
  SplicerSystem system(small_options());
  const auto report = system.run();
  EXPECT_GE(report.hub_count, 1u);
  EXPECT_GT(report.balance_cost, 0.0);
  EXPECT_NEAR(report.balance_cost,
              report.management_cost +
                  small_options().scenario.placement.omega *
                      report.synchronization_cost,
              1e-9);
  EXPECT_EQ(report.metrics.payments_generated, 300u);
  EXPECT_GT(report.metrics.tsr(), 0.3);
  EXPECT_EQ(report.workflows_executed, 16u);
  EXPECT_EQ(report.workflows_succeeded, 16u);
  // One tid key + per-TU keys for each sampled workflow.
  EXPECT_GT(report.kmg_keys_issued, 16u);
  EXPECT_FALSE(report.summary().empty());
}

TEST(SplicerSystem, DeterministicReports) {
  SplicerSystem a(small_options(9)), b(small_options(9));
  const auto ra = a.run();
  const auto rb = b.run();
  EXPECT_EQ(ra.metrics.payments_completed, rb.metrics.payments_completed);
  EXPECT_EQ(ra.kmg_keys_issued, rb.kmg_keys_issued);
  EXPECT_DOUBLE_EQ(ra.balance_cost, rb.balance_cost);
}

TEST(SplicerSystem, ScenarioAccessibleBeforeRun) {
  SplicerSystem system(small_options());
  EXPECT_EQ(system.scenario().raw.node_count(), 80u);
  EXPECT_GE(system.scenario().multi_star.hubs.size(), 1u);
}

TEST(SplicerSystem, OmegaShiftsHubCount) {
  auto mgmt_heavy = small_options(13);
  mgmt_heavy.scenario.placement.omega = 0.01;
  auto sync_heavy = small_options(13);
  sync_heavy.scenario.placement.omega = 1.0;
  SplicerSystem a(std::move(mgmt_heavy)), b(std::move(sync_heavy));
  EXPECT_GE(a.scenario().multi_star.hubs.size(),
            b.scenario().multi_star.hubs.size());
}

TEST(SplicerSystem, CryptoSampleClampedToPaymentCount) {
  auto options = small_options(15);
  options.scenario.workload.payment_count = 10;
  options.crypto_sample = 1000;
  SplicerSystem system(std::move(options));
  const auto report = system.run();
  EXPECT_EQ(report.workflows_executed, 10u);
}

}  // namespace
}  // namespace splicer::core
