#include "common/amount.h"

#include <gtest/gtest.h>

namespace splicer::common {
namespace {

TEST(Amount, TokensRoundTrip) {
  EXPECT_EQ(tokens(1.0), 1000);
  EXPECT_EQ(tokens(0.001), 1);
  EXPECT_EQ(tokens(152.5), 152500);
  EXPECT_DOUBLE_EQ(to_tokens(whole_tokens(403)), 403.0);
}

TEST(Amount, RoundingIsNearest) {
  EXPECT_EQ(tokens(0.0014), 1);
  EXPECT_EQ(tokens(0.0016), 2);
  EXPECT_EQ(tokens(-0.0016), -2);
}

TEST(Amount, WholeTokens) {
  EXPECT_EQ(whole_tokens(10), 10000);
  EXPECT_EQ(whole_tokens(0), 0);
  EXPECT_EQ(whole_tokens(-3), -3000);
}

TEST(Amount, ToString) {
  EXPECT_EQ(amount_to_string(whole_tokens(13) + 250), "13.250");
  EXPECT_EQ(amount_to_string(0), "0.000");
  EXPECT_EQ(amount_to_string(5), "0.005");
}

TEST(Amount, ExactIntegerArithmetic) {
  // The reason for milli-token integers: no drift under repeated ops.
  Amount total = 0;
  for (int i = 0; i < 1000000; ++i) total += 1;  // 1 mtok each
  EXPECT_EQ(total, whole_tokens(1000));
}

}  // namespace
}  // namespace splicer::common
