#include "lp/branch_and_bound.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"

namespace splicer::lp {
namespace {

TEST(BranchAndBound, KnapsackToy) {
  // max 10a + 6b + 4c s.t. a+b+c <= 2 (binaries) -> a=b=1, obj 16.
  Model m;
  const int a = m.add_binary("a");
  const int b = m.add_binary("b");
  const int c = m.add_binary("c");
  m.add_constraint({{a, 1.0}, {b, 1.0}, {c, 1.0}}, Relation::kLessEqual, 2.0);
  m.set_objective({{a, 10.0}, {b, 6.0}, {c, 4.0}}, Sense::kMaximize);
  const auto s = BranchAndBoundSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 16.0, 1e-9);
  EXPECT_NEAR(s.values[0], 1.0, 1e-9);
  EXPECT_NEAR(s.values[1], 1.0, 1e-9);
  EXPECT_NEAR(s.values[2], 0.0, 1e-9);
}

TEST(BranchAndBound, FractionalLpForcedIntegral) {
  // max x s.t. 2x <= 5 with x integer in [0, 10] -> x = 2.
  Model m;
  const int x = m.add_variable("x", 0.0, 10.0, VarKind::kInteger);
  m.add_constraint({{x, 2.0}}, Relation::kLessEqual, 5.0);
  m.set_objective({{x, 1.0}}, Sense::kMaximize);
  const auto s = BranchAndBoundSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.values[0], 2.0, 1e-9);
}

TEST(BranchAndBound, MixedIntegerContinuous) {
  // max 2b + x s.t. b + x <= 1.5, x in [0,1]: b=1, x=0.5 -> 2.5.
  Model m;
  const int b = m.add_binary("b");
  const int x = m.add_variable("x", 0.0, 1.0);
  m.add_constraint({{b, 1.0}, {x, 1.0}}, Relation::kLessEqual, 1.5);
  m.set_objective({{b, 2.0}, {x, 1.0}}, Sense::kMaximize);
  const auto s = BranchAndBoundSolver().solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 2.5, 1e-9);
}

TEST(BranchAndBound, InfeasibleIntegerProgram) {
  // 0.4 <= x <= 0.6 has no integer point.
  Model m;
  const int x = m.add_variable("x", 0.0, 1.0, VarKind::kInteger);
  m.add_constraint({{x, 1.0}}, Relation::kGreaterEqual, 0.4);
  m.add_constraint({{x, 1.0}}, Relation::kLessEqual, 0.6);
  m.set_objective({{x, 1.0}});
  EXPECT_EQ(BranchAndBoundSolver().solve(m).status, SolveStatus::kInfeasible);
}

TEST(BranchAndBound, WarmStartAccepted) {
  Model m;
  const int a = m.add_binary("a");
  const int b = m.add_binary("b");
  m.add_constraint({{a, 1.0}, {b, 1.0}}, Relation::kLessEqual, 1.0);
  m.set_objective({{a, 3.0}, {b, 2.0}}, Sense::kMaximize);
  BranchAndBoundSolver solver;
  solver.set_warm_start({0.0, 1.0});  // feasible, objective 2
  const auto s = solver.solve(m);
  ASSERT_TRUE(s.ok());
  EXPECT_NEAR(s.objective, 3.0, 1e-9);  // still finds the true optimum
  EXPECT_GE(solver.stats().incumbent_updates, 2u);
}

TEST(BranchAndBound, NodeLimitReturnsIncumbent) {
  Model m;
  const int a = m.add_binary("a");
  m.set_objective({{a, 1.0}}, Sense::kMaximize);
  BranchAndBoundOptions options;
  options.max_nodes = 0;  // no exploration allowed
  BranchAndBoundSolver solver(options);
  solver.set_warm_start({0.0});
  const auto s = solver.solve(m);
  EXPECT_EQ(s.status, SolveStatus::kNodeLimit);
  EXPECT_NEAR(s.objective, 0.0, 1e-9);  // warm start survives
}

/// Brute-force oracle over all binary assignments.
double brute_force_binary(const Model& m) {
  const std::size_t n = m.variable_count();
  double best = -1e100;
  const double sign = m.sense() == Sense::kMaximize ? 1.0 : -1.0;
  for (std::uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    std::vector<double> values(n);
    for (std::size_t j = 0; j < n; ++j) values[j] = (mask >> j) & 1 ? 1.0 : 0.0;
    if (!m.is_feasible(values, 1e-9)) continue;
    best = std::max(best, sign * m.evaluate_objective(values));
  }
  return sign * best;
}

// Property sweep: B&B == brute force on random binary programs.
class BnbPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BnbPropertyTest, MatchesBruteForce) {
  common::Rng rng(GetParam());
  Model m;
  const int n = 8;
  for (int j = 0; j < n; ++j) (void)m.add_binary("b" + std::to_string(j));
  for (int c = 0; c < 3; ++c) {
    LinearExpr expr;
    for (int j = 0; j < n; ++j) expr.push_back({j, rng.uniform(0.0, 3.0)});
    m.add_constraint(std::move(expr), Relation::kLessEqual, rng.uniform(3.0, 9.0));
  }
  LinearExpr obj;
  for (int j = 0; j < n; ++j) obj.push_back({j, rng.uniform(-2.0, 5.0)});
  m.set_objective(std::move(obj), Sense::kMaximize);

  const auto s = BranchAndBoundSolver().solve(m);
  ASSERT_TRUE(s.ok()) << to_string(s.status);
  EXPECT_TRUE(m.is_feasible(s.values, 1e-6));
  EXPECT_NEAR(s.objective, brute_force_binary(m), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BnbPropertyTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

}  // namespace
}  // namespace splicer::lp
