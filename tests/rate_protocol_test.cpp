#include "routing/rate_protocol.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "routing/splicer_router.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

pcn::Network hub_pair_network() {
  // Clients 0, 3 on hubs 1, 2; trunk 1-2.
  graph::Graph g(4);
  g.add_edge(0, 1);  // spoke
  g.add_edge(1, 2);  // trunk
  g.add_edge(2, 3);  // spoke
  return pcn::Network::with_uniform_funds(std::move(g), whole_tokens(1000));
}

std::vector<pcn::Payment> stream(NodeId s, NodeId r, Amount v, double rate,
                                 double seconds, PaymentId first_id = 1) {
  std::vector<pcn::Payment> payments;
  PaymentId id = first_id;
  for (double t = 0.05; t < seconds; t += 1.0 / rate) {
    pcn::Payment p;
    p.id = id++;
    p.sender = s;
    p.receiver = r;
    p.value = v;
    p.arrival_time = t;
    p.deadline = t + 3.0;
    payments.push_back(p);
  }
  return payments;
}

SplicerRouter::Config hub_config() {
  SplicerRouter::Config config;
  config.protocol.k_paths = 1;
  return config;
}

TEST(RateProtocol, BalancedTrafficFlowsFreely) {
  auto payments = stream(0, 3, whole_tokens(10), 3.0, 10.0);
  auto reverse = stream(3, 0, whole_tokens(10), 3.0, 10.0, 1000);
  payments.insert(payments.end(), reverse.begin(), reverse.end());
  std::sort(payments.begin(), payments.end(),
            [](const auto& a, const auto& b) { return a.arrival_time < b.arrival_time; });
  for (std::size_t i = 0; i < payments.size(); ++i) payments[i].id = i + 1;

  SplicerRouter router({1, 1, 2, 2}, {1, 2}, hub_config());
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(hub_pair_network(), payments, router, config);
  const auto m = engine.run();
  EXPECT_GT(m.tsr(), 0.95);
}

TEST(RateProtocol, PricesRiseOnImbalance) {
  // Heavy one-way flow (no reverse traffic) must raise the forward price.
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, hub_config());
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(hub_pair_network(),
                stream(0, 3, whole_tokens(40), 8.0, 10.0), router, config);
  (void)engine.run();
  const ChannelId trunk = 1;
  EXPECT_GT(router.channel_price(trunk, pcn::Direction::kForward), 0.0);
  EXPECT_DOUBLE_EQ(router.channel_price(trunk, pcn::Direction::kBackward), 0.0);
}

TEST(RateProtocol, FeeFollowsPriceWithCap) {
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, hub_config());
  EngineConfig config;
  Engine engine(hub_pair_network(),
                stream(0, 3, whole_tokens(40), 8.0, 10.0), router, config);
  (void)engine.run();
  const auto& protocol = router.protocol_config();
  const double price = router.channel_price(1, pcn::Direction::kForward);
  const double fee = router.fee_rate(1, pcn::Direction::kForward);
  EXPECT_LE(fee, protocol.fee_rate_cap + 1e-12);
  EXPECT_NEAR(fee, std::min(protocol.fee_rate_cap, protocol.t_fee * price), 1e-12);
}

TEST(RateProtocol, ImbalancedFlowThrottledBelowBalanced) {
  // One-way heavy flow (7500 tokens demanded through a 2000-token channel
  // with zero reverse traffic): the balance throttle must refuse most of
  // it, while the balanced variant of the same volume sails through.
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, hub_config());
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(hub_pair_network(),
                stream(0, 3, whole_tokens(50), 10.0, 15.0), router, config);
  const auto one_way = engine.run();
  EXPECT_LT(one_way.normalized_throughput(), 0.6);

  auto balanced = stream(0, 3, whole_tokens(50), 5.0, 15.0);
  auto reverse = stream(3, 0, whole_tokens(50), 5.0, 15.0, 5000);
  balanced.insert(balanced.end(), reverse.begin(), reverse.end());
  std::sort(balanced.begin(), balanced.end(), [](const auto& a, const auto& b) {
    return a.arrival_time < b.arrival_time;
  });
  for (std::size_t i = 0; i < balanced.size(); ++i) balanced[i].id = i + 1;
  SplicerRouter router2({1, 1, 2, 2}, {1, 2}, hub_config());
  Engine engine2(hub_pair_network(), balanced, router2, config);
  const auto both_ways = engine2.run();
  EXPECT_GT(both_ways.normalized_throughput(),
            one_way.normalized_throughput() + 0.2);
}

TEST(RateProtocol, WindowShrinksOnMarkedTus) {
  // Tiny trunk + aggressive flow => queueing => marks => window decrease.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::vector<Amount> ab{whole_tokens(5000), whole_tokens(20), whole_tokens(5000)};
  std::vector<Amount> ba{whole_tokens(5000), whole_tokens(20), whole_tokens(5000)};
  pcn::Network net(std::move(g), std::move(ab), std::move(ba));

  SplicerRouter::Config rc = hub_config();
  // Disable source gating effects dominating: gating holds TUs, so marks
  // are rare for Splicer; instead verify the window ends at or below start.
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, rc);
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(std::move(net), stream(0, 3, whole_tokens(100), 10.0, 10.0),
                router, config);
  (void)engine.run();
  const auto diag = router.pair_diagnostics(0, 3);
  ASSERT_FALSE(diag.empty());
  EXPECT_LE(diag[0].window, router.protocol_config().initial_window + 1.0);
}

TEST(RateProtocol, TuSplitRespectsBounds) {
  // Track TU values through a spying subclass-free approach: use metrics.
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, hub_config());
  EngineConfig config;
  Engine engine(hub_pair_network(), stream(0, 3, whole_tokens(10), 2.0, 5.0),
                router, config);
  const auto m = engine.run();
  // 10-token payments with Max-TU 4 and Min-TU 1: ceil(10/4) = 3 TUs each.
  ASSERT_GT(m.tus_sent, 0u);
  const double tus_per_payment =
      static_cast<double>(m.tus_sent) / static_cast<double>(m.payments_generated);
  EXPECT_NEAR(tus_per_payment, 3.0, 0.5);
}

TEST(RateProtocol, NoPathFailsPayment) {
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);  // two islands
  pcn::Network net = pcn::Network::with_uniform_funds(std::move(g), whole_tokens(100));
  SplicerRouter router({1, 1, 3, 3}, {1, 3}, hub_config());
  EngineConfig config;
  Engine engine(std::move(net), stream(0, 2, whole_tokens(5), 2.0, 2.0), router,
                config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 0u);
  EXPECT_GT(m.payment_fail_reasons[static_cast<std::size_t>(FailReason::kNoPath)], 0u);
}

TEST(RateProtocol, ProbesAreCounted) {
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, hub_config());
  EngineConfig config;
  Engine engine(hub_pair_network(), stream(0, 3, whole_tokens(20), 4.0, 8.0),
                router, config);
  const auto m = engine.run();
  EXPECT_GT(m.messages.probe_messages, 0u);
}

TEST(RateProtocol, EpochSyncCounted) {
  SplicerRouter::Config rc = hub_config();
  rc.epoch_s = 1.0;
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, rc);
  EngineConfig config;
  Engine engine(hub_pair_network(), stream(0, 3, whole_tokens(5), 2.0, 6.0),
                router, config);
  const auto m = engine.run();
  // 2 hubs -> 2 sync messages per epoch over ~9 seconds of simulation.
  EXPECT_GE(m.messages.sync_messages, 10u);
}

TEST(RateProtocol, SourceGatingPreventsWastedLocks) {
  // Splicer's admission check: when the trunk lacks funds entirely, TUs
  // stay at the source (no failed TUs, no marks).
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  std::vector<Amount> ab{whole_tokens(5000), 0, whole_tokens(5000)};
  std::vector<Amount> ba{whole_tokens(5000), 0, whole_tokens(5000)};
  pcn::Network net(std::move(g), std::move(ab), std::move(ba));
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, hub_config());
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(std::move(net), stream(0, 3, whole_tokens(5), 2.0, 4.0), router,
                config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 0u);
  EXPECT_EQ(m.tus_failed, 0u);  // nothing ever locked and died downstream
}

}  // namespace
}  // namespace splicer::routing
