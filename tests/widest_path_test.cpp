#include "graph/widest_path.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace splicer::graph {
namespace {

TEST(WidestPath, MaximisesBottleneck) {
  // 0->1->3 bottleneck 5; 0->2->3 bottleneck 8.
  Graph g(4);
  g.add_edge(0, 1, 1.0, 5.0);
  g.add_edge(1, 3, 1.0, 10.0);
  g.add_edge(0, 2, 1.0, 8.0);
  g.add_edge(2, 3, 1.0, 9.0);
  const auto p = widest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 2, 3}));
  EXPECT_DOUBLE_EQ(p->bottleneck(g), 8.0);
}

TEST(WidestPath, TieBreaksTowardFewerHops) {
  // Direct edge bottleneck 5 vs 3-hop route bottleneck 5.
  Graph g(4);
  g.add_edge(0, 3, 1.0, 5.0);
  g.add_edge(0, 1, 1.0, 5.0);
  g.add_edge(1, 2, 1.0, 5.0);
  g.add_edge(2, 3, 1.0, 5.0);
  const auto p = widest_path(g, 0, 3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hop_count(), 1u);
}

TEST(WidestPath, CapacityOverride) {
  Graph g(3);
  const EdgeId top = g.add_edge(0, 1, 1.0, 1.0);
  const EdgeId bottom = g.add_edge(0, 2, 1.0, 100.0);
  g.add_edge(1, 2, 1.0, 50.0);
  std::vector<double> caps(g.edge_count());
  caps[top] = 100.0;
  caps[bottom] = 1.0;
  caps[2] = 50.0;
  WidestOptions options;
  options.capacities = &caps;
  const auto p = widest_path(g, 0, 2, options);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes, (std::vector<NodeId>{0, 1, 2}));
}

TEST(WidestPath, DisabledEdges) {
  Graph g(3);
  g.add_edge(0, 2, 1.0, 100.0);
  g.add_edge(0, 1, 1.0, 10.0);
  g.add_edge(1, 2, 1.0, 10.0);
  std::vector<char> disabled{1, 0, 0};
  WidestOptions options;
  options.disabled_edges = &disabled;
  const auto p = widest_path(g, 0, 2, options);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hop_count(), 2u);
}

TEST(WidestPath, UnreachableIsNullopt) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_FALSE(widest_path(g, 0, 2).has_value());
}

TEST(WidestPath, TrivialPath) {
  Graph g(2);
  g.add_edge(0, 1);
  const auto p = widest_path(g, 1, 1);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->empty());
}

// Property sweep: widest_path bottleneck equals exhaustive DFS result.
class WidestPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WidestPropertyTest, MatchesBruteForce) {
  common::Rng rng(GetParam());
  Graph g = watts_strogatz(12, 4, 0.4, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) {
    g.set_capacity(e, rng.uniform(1.0, 100.0));
  }
  for (int trial = 0; trial < 6; ++trial) {
    const auto s = static_cast<NodeId>(rng.index(g.node_count()));
    const auto t = static_cast<NodeId>(rng.index(g.node_count()));
    if (s == t) continue;
    const auto p = widest_path(g, s, t);
    const double brute = brute_force_widest_bottleneck(g, s, t);
    if (!p.has_value()) {
      EXPECT_LT(brute, 0.0);
      continue;
    }
    EXPECT_TRUE(is_valid_path(g, *p));
    EXPECT_NEAR(p->bottleneck(g), brute, 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WidestPropertyTest,
                         ::testing::Values(10, 20, 30, 40, 50, 60, 70, 80));

}  // namespace
}  // namespace splicer::graph
