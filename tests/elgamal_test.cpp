#include "crypto/elgamal.h"

#include <gtest/gtest.h>

namespace splicer::crypto {
namespace {

Bytes to_bytes(const std::string& s) { return Bytes(s.begin(), s.end()); }

TEST(ElGamal, KeypairIsConsistent) {
  common::Rng rng(1);
  const KeyPair kp = generate_keypair(rng);
  EXPECT_NE(kp.secret_key, 0u);
  EXPECT_EQ(kp.public_key, pow_mod(kGenerator, kp.secret_key));
}

TEST(ElGamal, EncryptDecryptRoundTrip) {
  common::Rng rng(2);
  const KeyPair kp = generate_keypair(rng);
  const Bytes plaintext = to_bytes("payment demand D_tid = (P_s, P_r, val)");
  const Ciphertext ct = encrypt(kp.public_key, plaintext, rng);
  Bytes recovered;
  ASSERT_TRUE(decrypt(kp.secret_key, ct, recovered));
  EXPECT_EQ(recovered, plaintext);
}

TEST(ElGamal, EmptyPlaintext) {
  common::Rng rng(3);
  const KeyPair kp = generate_keypair(rng);
  const Ciphertext ct = encrypt(kp.public_key, {}, rng);
  Bytes recovered{1, 2, 3};
  ASSERT_TRUE(decrypt(kp.secret_key, ct, recovered));
  EXPECT_TRUE(recovered.empty());
}

TEST(ElGamal, CiphertextDiffersFromPlaintext) {
  common::Rng rng(4);
  const KeyPair kp = generate_keypair(rng);
  const Bytes plaintext = to_bytes("secret");
  const Ciphertext ct = encrypt(kp.public_key, plaintext, rng);
  EXPECT_NE(ct.body, plaintext);
}

TEST(ElGamal, FreshEphemeralPerEncryption) {
  common::Rng rng(5);
  const KeyPair kp = generate_keypair(rng);
  const Bytes plaintext = to_bytes("same message");
  const Ciphertext a = encrypt(kp.public_key, plaintext, rng);
  const Ciphertext b = encrypt(kp.public_key, plaintext, rng);
  EXPECT_NE(a.ephemeral, b.ephemeral);
  EXPECT_NE(a.body, b.body);  // different keystream
}

TEST(ElGamal, WrongKeyFailsAuthentication) {
  common::Rng rng(6);
  const KeyPair kp = generate_keypair(rng);
  const KeyPair other = generate_keypair(rng);
  const Ciphertext ct = encrypt(kp.public_key, to_bytes("x"), rng);
  Bytes recovered;
  EXPECT_FALSE(decrypt(other.secret_key, ct, recovered));
  EXPECT_TRUE(recovered.empty());
}

TEST(ElGamal, TamperedBodyDetected) {
  common::Rng rng(7);
  const KeyPair kp = generate_keypair(rng);
  Ciphertext ct = encrypt(kp.public_key, to_bytes("pay 10 tokens"), rng);
  ct.body[3] ^= 0x40;
  Bytes recovered;
  EXPECT_FALSE(decrypt(kp.secret_key, ct, recovered));
}

TEST(ElGamal, TamperedTagDetected) {
  common::Rng rng(8);
  const KeyPair kp = generate_keypair(rng);
  Ciphertext ct = encrypt(kp.public_key, to_bytes("pay 10 tokens"), rng);
  ct.tag ^= 1;
  Bytes recovered;
  EXPECT_FALSE(decrypt(kp.secret_key, ct, recovered));
}

TEST(Keystream, IsAnInvolution) {
  const Bytes data = to_bytes("some payload bytes for xor");
  const Bytes once = apply_keystream(12345, data);
  const Bytes twice = apply_keystream(12345, once);
  EXPECT_EQ(twice, data);
  EXPECT_NE(once, data);
}

TEST(AuthTag, SensitiveToLengthExtension) {
  // Tag binds the length, so a truncated message cannot collide trivially.
  const Bytes a = to_bytes("abc");
  const Bytes b = to_bytes("ab");
  EXPECT_NE(auth_tag(1, a), auth_tag(1, b));
  EXPECT_NE(auth_tag(1, a), auth_tag(2, a));  // key-sensitive too
}

}  // namespace
}  // namespace splicer::crypto
