#include "crypto/kmg.h"

#include <gtest/gtest.h>

namespace splicer::crypto {
namespace {

TEST(Kmg, IssueAndDecrypt) {
  common::Rng rng(1);
  KeyManagementGroup kmg(5, rng.fork());
  const std::uint64_t pk = kmg.issue_key(100);
  const Bytes demand{1, 2, 3, 4};
  common::Rng enc_rng(2);
  const Ciphertext ct = encrypt(pk, demand, enc_rng);
  const auto plain = kmg.decrypt(100, ct);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(*plain, demand);
}

TEST(Kmg, DefaultThresholdIsMajority) {
  common::Rng rng(2);
  KeyManagementGroup kmg(5, rng.fork());
  EXPECT_EQ(kmg.threshold(), 3u);
  KeyManagementGroup even(4, rng.fork());
  EXPECT_EQ(even.threshold(), 3u);
}

TEST(Kmg, SharesReconstructTheIssuedKey) {
  common::Rng rng(3);
  KeyManagementGroup kmg(5, rng.fork());
  const std::uint64_t pk = kmg.issue_key(7);
  const auto& shares = kmg.shares(7);
  ASSERT_EQ(shares.size(), 5u);
  const std::uint64_t sk = reconstruct_secret(
      {shares[2], shares[3], shares[4]});  // any t-subset
  EXPECT_EQ(pow_mod(kGenerator, sk), pk);
}

TEST(Kmg, UnknownIdReturnsNullopt) {
  common::Rng rng(4);
  KeyManagementGroup kmg(3, rng.fork());
  Ciphertext ct;
  EXPECT_FALSE(kmg.decrypt(999, ct).has_value());
  EXPECT_FALSE(kmg.public_key(999).has_value());
  EXPECT_THROW((void)kmg.shares(999), std::out_of_range);
}

TEST(Kmg, ReissueReplacesKey) {
  common::Rng rng(5);
  KeyManagementGroup kmg(3, rng.fork());
  const std::uint64_t pk1 = kmg.issue_key(1);
  const std::uint64_t pk2 = kmg.issue_key(1);
  EXPECT_NE(pk1, pk2);
  EXPECT_EQ(kmg.public_key(1), pk2);
  EXPECT_EQ(kmg.issued_count(), 2u);
}

TEST(Kmg, FreshKeysPerTransaction) {
  common::Rng rng(6);
  KeyManagementGroup kmg(3, rng.fork());
  const std::uint64_t a = kmg.issue_key(1);
  const std::uint64_t b = kmg.issue_key(2);
  EXPECT_NE(a, b);
}

TEST(Kmg, TamperedCiphertextRejected) {
  common::Rng rng(7);
  KeyManagementGroup kmg(5, rng.fork());
  const std::uint64_t pk = kmg.issue_key(10);
  common::Rng enc_rng(8);
  Ciphertext ct = encrypt(pk, {9, 9, 9}, enc_rng);
  ct.body[0] ^= 1;
  EXPECT_FALSE(kmg.decrypt(10, ct).has_value());
}

TEST(Kmg, Validation) {
  common::Rng rng(9);
  EXPECT_THROW(KeyManagementGroup(0, rng.fork()), std::invalid_argument);
  EXPECT_THROW(KeyManagementGroup(3, rng.fork(), 4), std::invalid_argument);
}

}  // namespace
}  // namespace splicer::crypto
