#include "placement/topology_transform.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/metrics.h"
#include "placement/cost_model.h"
#include "placement/exhaustive_solver.h"

namespace splicer::placement {
namespace {

struct Fixture {
  pcn::Network raw;
  PlacementInstance instance;
  PlacementPlan plan;
};

Fixture make_fixture(std::uint64_t seed, std::size_t nodes = 60,
                     std::size_t candidates = 6, double omega = 0.1) {
  common::Rng rng(seed);
  auto g = graph::watts_strogatz(nodes, 6, 0.2, rng);
  pcn::Network raw = pcn::Network::with_sampled_funds(std::move(g), 1.0, rng);
  auto instance = build_instance_by_degree(raw.topology(), candidates, omega);
  auto plan = solve_exhaustive(instance).plan;
  return Fixture{std::move(raw), std::move(instance), std::move(plan)};
}

TEST(MultiStar, EveryClientHasExactlyOneSpoke) {
  const auto fx = make_fixture(1);
  const auto result = build_multi_star(fx.raw, fx.instance, fx.plan);
  const auto& g = result.network.topology();
  for (pcn::NodeId v = 0; v < g.node_count(); ++v) {
    if (result.is_hub[v]) continue;
    EXPECT_EQ(g.degree(v), 1u) << "client " << v;
    // The one edge goes to the assigned hub.
    EXPECT_EQ(g.neighbors(v)[0].to, result.hub_of[v]);
  }
}

TEST(MultiStar, HubsMapToThemselves) {
  const auto fx = make_fixture(2);
  const auto result = build_multi_star(fx.raw, fx.instance, fx.plan);
  for (const auto hub : result.hubs) {
    EXPECT_TRUE(result.is_hub[hub]);
    EXPECT_EQ(result.hub_of[hub], hub);
  }
}

TEST(MultiStar, NetworkIsConnected) {
  const auto fx = make_fixture(3);
  const auto result = build_multi_star(fx.raw, fx.instance, fx.plan);
  EXPECT_TRUE(graph::is_connected(result.network.topology()));
}

TEST(MultiStar, PlanAssignmentsAreRespected) {
  const auto fx = make_fixture(4);
  const auto result = build_multi_star(fx.raw, fx.instance, fx.plan);
  for (std::size_t m = 0; m < fx.instance.client_count(); ++m) {
    const auto client = fx.instance.clients[m];
    const auto hub = fx.instance.candidates[fx.plan.assignment[m]];
    EXPECT_EQ(result.hub_of[client], hub);
  }
}

TEST(MultiStar, SpokeCarriesClientLiquidity) {
  const auto fx = make_fixture(5);
  const auto result = build_multi_star(fx.raw, fx.instance, fx.plan);
  const auto& g = result.network.topology();
  // Pick one client and verify spoke funds == original liquidity.
  for (pcn::NodeId v = 0; v < g.node_count(); ++v) {
    if (result.is_hub[v]) continue;
    pcn::Amount liquidity = 0;
    for (const auto& half : fx.raw.topology().neighbors(v)) {
      const auto& ch = fx.raw.channel(half.edge);
      liquidity += ch.available(ch.direction_from(v));
    }
    liquidity = std::max(liquidity, common::whole_tokens(10));
    const auto spoke = g.neighbors(v)[0].edge;
    const auto& ch = result.network.channel(spoke);
    EXPECT_EQ(ch.available(ch.direction_from(v)), liquidity);
    break;
  }
}

TEST(MultiStar, HubSpokeFactorScalesHubSide) {
  const auto fx = make_fixture(6);
  TransformOptions options;
  options.hub_spoke_factor = 3.0;
  const auto result = build_multi_star(fx.raw, fx.instance, fx.plan, options);
  const auto& g = result.network.topology();
  for (pcn::NodeId v = 0; v < g.node_count(); ++v) {
    if (result.is_hub[v]) continue;
    const auto spoke = g.neighbors(v)[0].edge;
    const auto& ch = result.network.channel(spoke);
    const auto client_side = ch.available(ch.direction_from(v));
    const auto hub_side = ch.available(ch.direction_from(result.hub_of[v]));
    EXPECT_EQ(hub_side, static_cast<pcn::Amount>(client_side * 3.0));
    break;
  }
}

TEST(MultiStar, TrunkFloorGuaranteesUsableTrunks) {
  const auto fx = make_fixture(7);
  TransformOptions options;
  options.min_trunk_side_tokens = 500.0;
  const auto result = build_multi_star(fx.raw, fx.instance, fx.plan, options);
  const auto& g = result.network.topology();
  for (graph::EdgeId e = 0; e < g.edge_count(); ++e) {
    const auto& edge = g.edge(e);
    if (result.is_hub[edge.u] && result.is_hub[edge.v]) {
      const auto& ch = result.network.channel(e);
      EXPECT_GE(ch.available(pcn::Direction::kForward), common::tokens(500.0));
      EXPECT_GE(ch.available(pcn::Direction::kBackward), common::tokens(500.0));
    }
  }
}

TEST(MultiStar, MismatchedPlanRejected) {
  const auto fx = make_fixture(8);
  PlacementPlan bad = fx.plan;
  bad.assignment.pop_back();
  EXPECT_THROW((void)build_multi_star(fx.raw, fx.instance, bad),
               std::invalid_argument);
}

TEST(SingleStar, StarShape) {
  const auto fx = make_fixture(9);
  const auto result = build_single_star(fx.raw);
  const auto& g = result.network.topology();
  ASSERT_EQ(result.hubs.size(), 1u);
  const auto hub = result.hubs.front();
  EXPECT_EQ(g.degree(hub), g.node_count() - 1);
  for (pcn::NodeId v = 0; v < g.node_count(); ++v) {
    if (v != hub) {
      EXPECT_EQ(g.degree(v), 1u);
    }
  }
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(SingleStar, DefaultHubIsTopDegree) {
  const auto fx = make_fixture(10);
  const auto result = build_single_star(fx.raw);
  EXPECT_EQ(result.hubs.front(),
            graph::nodes_by_degree(fx.raw.topology()).front());
}

TEST(SingleStar, ExplicitHubHonoured) {
  const auto fx = make_fixture(11);
  const auto result = build_single_star(fx.raw, 5);
  EXPECT_EQ(result.hubs.front(), 5u);
}

}  // namespace
}  // namespace splicer::placement
