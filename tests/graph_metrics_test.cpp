#include "graph/metrics.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"
#include "graph/shortest_path.h"

namespace splicer::graph {
namespace {

TEST(Components, SingleComponent) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_EQ(connected_components(g).size(), 1u);
  EXPECT_TRUE(is_connected(g));
}

TEST(Components, MultipleComponents) {
  Graph g(5);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  const auto reps = connected_components(g);
  EXPECT_EQ(reps.size(), 3u);
  EXPECT_EQ(reps[0], 0u);
  EXPECT_EQ(reps[1], 2u);
  EXPECT_EQ(reps[2], 4u);
  EXPECT_FALSE(is_connected(g));
}

TEST(Components, EmptyGraphIsConnected) {
  Graph g(0);
  EXPECT_TRUE(is_connected(g));
}

TEST(Clustering, TriangleIsOne) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 0);
  EXPECT_DOUBLE_EQ(average_clustering(g), 1.0);
}

TEST(Clustering, PathGraphIsZero) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  EXPECT_DOUBLE_EQ(average_clustering(g), 0.0);
}

TEST(HopMatrixTest, MatchesBfs) {
  common::Rng rng(1);
  const Graph g = watts_strogatz(50, 4, 0.2, rng);
  const HopMatrix hops(g);
  const auto reference = bfs_hops(g, 7);
  for (NodeId v = 0; v < g.node_count(); ++v) {
    EXPECT_EQ(hops.hops(7, v), reference[v]);
  }
}

TEST(HopMatrixTest, SymmetricAndZeroDiagonal) {
  common::Rng rng(2);
  const Graph g = watts_strogatz(40, 4, 0.2, rng);
  const HopMatrix hops(g);
  for (NodeId a = 0; a < 40; a += 5) {
    EXPECT_EQ(hops.hops(a, a), 0);
    for (NodeId b = 0; b < 40; b += 7) {
      EXPECT_EQ(hops.hops(a, b), hops.hops(b, a));
    }
  }
}

TEST(HopMatrixTest, UnreachableMarked) {
  Graph g(3);
  g.add_edge(0, 1);
  const HopMatrix hops(g);
  EXPECT_EQ(hops.hops(0, 2), kUnreachableHops);
}

TEST(HopMatrixTest, MeanHopsPositive) {
  common::Rng rng(3);
  const Graph g = watts_strogatz(100, 8, 0.15, rng);
  const double mean = HopMatrix(g).mean_hops();
  EXPECT_GT(mean, 1.0);
  EXPECT_LT(mean, 10.0);  // small world
}

TEST(DegreeStatsTest, Star) {
  const Graph g = star(5);
  const auto stats = degree_stats(g);
  EXPECT_EQ(stats.max, 4u);
  EXPECT_EQ(stats.min, 1u);
  EXPECT_DOUBLE_EQ(stats.mean, 8.0 / 5.0);
}

TEST(NodesByDegree, SortedDescendingStable) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(0, 3);
  g.add_edge(1, 2);
  const auto order = nodes_by_degree(g);
  EXPECT_EQ(order[0], 0u);            // degree 3
  EXPECT_EQ(order[1], 1u);            // degree 2, smaller id first
  EXPECT_EQ(order[2], 2u);            // degree 2
  EXPECT_EQ(order[3], 3u);            // degree 1
}

}  // namespace
}  // namespace splicer::graph
