#include "graph/yen.h"

#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "graph/generators.h"

namespace splicer::graph {
namespace {

Graph textbook() {
  // Classic Yen example: C-D-F-H grid-ish graph.
  //   0=C 1=D 2=E 3=F 4=G 5=H
  Graph g(6);
  g.add_edge(0, 1, 3.0);  // C-D
  g.add_edge(0, 2, 2.0);  // C-E
  g.add_edge(1, 3, 4.0);  // D-F
  g.add_edge(2, 1, 1.0);  // E-D
  g.add_edge(2, 3, 2.0);  // E-F
  g.add_edge(2, 4, 3.0);  // E-G
  g.add_edge(3, 4, 2.0);  // F-G
  g.add_edge(3, 5, 1.0);  // F-H
  g.add_edge(4, 5, 2.0);  // G-H
  return g;
}

TEST(Yen, TextbookThreeShortest) {
  const Graph g = textbook();
  const auto paths = yen_ksp(g, 0, 5, 3);
  ASSERT_EQ(paths.size(), 3u);
  // Undirected answers: C-E-F-H = 5, then two 7s (C-E-G-H and C-D-E-F-H,
  // the latter using E-D in reverse, which the undirected graph allows).
  EXPECT_DOUBLE_EQ(paths[0].length, 5.0);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{0, 2, 3, 5}));
  EXPECT_DOUBLE_EQ(paths[1].length, 7.0);
  EXPECT_DOUBLE_EQ(paths[2].length, 7.0);
}

TEST(Yen, LengthsNonDecreasing) {
  common::Rng rng(5);
  Graph g = watts_strogatz(60, 6, 0.3, rng);
  const auto paths = yen_ksp(g, 3, 42, 8);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].length, paths[i].length);
  }
}

TEST(Yen, PathsAreSimpleValidAndDistinct) {
  common::Rng rng(6);
  Graph g = watts_strogatz(60, 6, 0.3, rng);
  const auto paths = yen_ksp(g, 0, 30, 10);
  std::set<std::vector<NodeId>> unique_nodes;
  for (const auto& p : paths) {
    EXPECT_TRUE(is_valid_path(g, p));
    EXPECT_EQ(p.source(), 0u);
    EXPECT_EQ(p.target(), 30u);
    EXPECT_TRUE(unique_nodes.insert(p.nodes).second) << "duplicate path";
  }
}

TEST(Yen, FewerThanKWhenGraphIsThin) {
  Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  const auto paths = yen_ksp(g, 0, 2, 5);
  EXPECT_EQ(paths.size(), 1u);  // only one simple path exists
}

TEST(Yen, ZeroKOrSameEndpoints) {
  const Graph g = textbook();
  EXPECT_TRUE(yen_ksp(g, 0, 5, 0).empty());
  EXPECT_TRUE(yen_ksp(g, 2, 2, 3).empty());
}

TEST(Yen, DisconnectedReturnsEmpty) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_TRUE(yen_ksp(g, 0, 3, 2).empty());
}

TEST(Yen, FirstPathMatchesDijkstra) {
  common::Rng rng(7);
  Graph g = watts_strogatz(100, 8, 0.2, rng);
  for (int trial = 0; trial < 10; ++trial) {
    const auto s = static_cast<NodeId>(rng.index(100));
    const auto t = static_cast<NodeId>(rng.index(100));
    if (s == t) continue;
    const auto ksp = yen_ksp(g, s, t, 1);
    const auto sp = shortest_path(g, s, t);
    ASSERT_EQ(ksp.size(), 1u);
    ASSERT_TRUE(sp.has_value());
    EXPECT_DOUBLE_EQ(ksp[0].length, sp->length);
  }
}

TEST(HighestFundPaths, PrefersCapacityRichChannels) {
  // Two routes 0->3: top route capacity 100 each, bottom 1 each.
  Graph g(6);
  g.add_edge(0, 1, 1.0, 100.0);
  g.add_edge(1, 3, 1.0, 100.0);
  g.add_edge(0, 2, 1.0, 1.0);
  g.add_edge(2, 3, 1.0, 1.0);
  const auto paths = highest_fund_paths(g, 0, 3, 2);
  ASSERT_GE(paths.size(), 1u);
  EXPECT_EQ(paths[0].nodes, (std::vector<NodeId>{0, 1, 3}));
  // Reported length is true hop count, not the synthetic weight.
  EXPECT_DOUBLE_EQ(paths[0].length, 2.0);
}

}  // namespace
}  // namespace splicer::graph
