#include "pcn/workload.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/stats.h"

namespace splicer::pcn {
namespace {

std::vector<NodeId> make_clients(std::size_t n) {
  std::vector<NodeId> clients(n);
  for (std::size_t i = 0; i < n; ++i) clients[i] = static_cast<NodeId>(i);
  return clients;
}

TEST(Workload, GeneratesRequestedCount) {
  common::Rng rng(1);
  WorkloadConfig config;
  config.payment_count = 500;
  const auto payments = generate_payments(make_clients(50), config, rng);
  EXPECT_EQ(payments.size(), 500u);
}

TEST(Workload, SenderNeverEqualsReceiver) {
  common::Rng rng(2);
  WorkloadConfig config;
  config.payment_count = 2000;
  for (const auto& p : generate_payments(make_clients(20), config, rng)) {
    EXPECT_NE(p.sender, p.receiver);
  }
}

TEST(Workload, ArrivalsMonotoneWithinHorizonOrder) {
  common::Rng rng(3);
  WorkloadConfig config;
  config.payment_count = 1000;
  config.horizon_seconds = 10.0;
  const auto payments = generate_payments(make_clients(30), config, rng);
  for (std::size_t i = 1; i < payments.size(); ++i) {
    EXPECT_GE(payments[i].arrival_time, payments[i - 1].arrival_time);
  }
}

TEST(Workload, DeadlineIsArrivalPlusTimeout) {
  common::Rng rng(4);
  WorkloadConfig config;
  config.payment_count = 100;
  config.timeout_seconds = 3.0;  // paper value
  for (const auto& p : generate_payments(make_clients(10), config, rng)) {
    EXPECT_DOUBLE_EQ(p.deadline, p.arrival_time + 3.0);
  }
}

TEST(Workload, ValuesMatchCreditCardCalibration) {
  common::Rng rng(5);
  WorkloadConfig config;
  config.payment_count = 50000;
  const auto payments = generate_payments(make_clients(100), config, rng);
  std::vector<double> tokens;
  for (const auto& p : payments) tokens.push_back(common::to_tokens(p.value));
  EXPECT_NEAR(common::median(tokens), 22.0, 3.0);
  EXPECT_NEAR(common::mean_of(tokens), 88.35, 10.0);
}

TEST(Workload, ValueScaleApplies) {
  common::Rng rng1(6), rng2(6);
  WorkloadConfig base;
  base.payment_count = 5000;
  WorkloadConfig scaled = base;
  scaled.value_scale = 4.0;
  const auto a = generate_payments(make_clients(40), base, rng1);
  const auto b = generate_payments(make_clients(40), scaled, rng2);
  double sum_a = 0, sum_b = 0;
  for (const auto& p : a) sum_a += static_cast<double>(p.value);
  for (const auto& p : b) sum_b += static_cast<double>(p.value);
  EXPECT_NEAR(sum_b / sum_a, 4.0, 0.1);
}

TEST(Workload, MinimumValueOneToken) {
  common::Rng rng(7);
  WorkloadConfig config;
  config.payment_count = 3000;
  config.value_scale = 0.001;  // push everything below a token
  for (const auto& p : generate_payments(make_clients(10), config, rng)) {
    EXPECT_GE(p.value, common::whole_tokens(1));
  }
}

TEST(Workload, ImbalanceCreatesNetSinks) {
  // The paper's workload "is guaranteed to cause some local deadlocks":
  // net flows must be meaningfully unbalanced.
  common::Rng rng(8);
  WorkloadConfig config;
  config.payment_count = 20000;
  config.imbalance = 0.3;
  const auto clients = make_clients(50);
  const auto payments = generate_payments(clients, config, rng);
  const auto net = net_flow_by_node(50, payments);
  const Amount max_sink = *std::max_element(net.begin(), net.end());
  Amount total_value = 0;
  for (const auto& p : payments) total_value += p.value;
  // The biggest sink absorbs a sizeable share of total traffic.
  EXPECT_GT(max_sink, total_value / 50);
}

TEST(Workload, NetFlowSumsToZero) {
  common::Rng rng(9);
  WorkloadConfig config;
  config.payment_count = 1000;
  const auto payments = generate_payments(make_clients(25), config, rng);
  const auto net = net_flow_by_node(25, payments);
  Amount sum = 0;
  for (const Amount v : net) sum += v;
  EXPECT_EQ(sum, 0);
}

TEST(Workload, DeterministicGivenSeed) {
  common::Rng a(10), b(10);
  WorkloadConfig config;
  config.payment_count = 200;
  const auto pa = generate_payments(make_clients(20), config, a);
  const auto pb = generate_payments(make_clients(20), config, b);
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    EXPECT_EQ(pa[i].sender, pb[i].sender);
    EXPECT_EQ(pa[i].receiver, pb[i].receiver);
    EXPECT_EQ(pa[i].value, pb[i].value);
    EXPECT_DOUBLE_EQ(pa[i].arrival_time, pb[i].arrival_time);
  }
}

TEST(Workload, RequiresTwoClients) {
  common::Rng rng(11);
  WorkloadConfig config;
  EXPECT_THROW((void)generate_payments({1}, config, rng), std::invalid_argument);
}

TEST(WorkloadConfig, ValidateRejectsBadKnobs) {
  const auto expect_invalid = [](WorkloadConfig config) {
    EXPECT_THROW(config.validate(), std::invalid_argument);
  };
  WorkloadConfig ok;
  EXPECT_NO_THROW(ok.validate());

  WorkloadConfig config;
  config.payment_count = 0;
  expect_invalid(config);

  config = WorkloadConfig{};
  config.horizon_seconds = 0.0;
  expect_invalid(config);
  config.horizon_seconds = -2.0;
  expect_invalid(config);

  config = WorkloadConfig{};
  config.timeout_seconds = 0.0;
  expect_invalid(config);

  config = WorkloadConfig{};
  config.sink_fraction = -0.1;
  expect_invalid(config);
  config.sink_fraction = 1.1;
  expect_invalid(config);

  config = WorkloadConfig{};
  config.value_scale = 0.0;
  expect_invalid(config);

  config = WorkloadConfig{};
  config.kind = WorkloadKind::kTrace;  // no trace_file
  expect_invalid(config);

  config = WorkloadConfig{};
  config.kind = WorkloadKind::kBursty;
  config.burst_amplitude = 1.5;
  expect_invalid(config);

  config = WorkloadConfig{};
  config.kind = WorkloadKind::kHotspot;
  config.hotspot_shift_interval_s = 0.0;
  expect_invalid(config);
}

TEST(WorkloadConfig, GenerationPathsRejectInvalidConfigs) {
  common::Rng rng(12);
  WorkloadConfig config;
  config.payment_count = 0;
  std::vector<NodeId> clients{0, 1, 2};
  EXPECT_THROW((void)generate_payments(clients, config, rng),
               std::invalid_argument);
}

TEST(WorkloadKindNames, RoundTrip) {
  for (const auto kind : {WorkloadKind::kSynthetic, WorkloadKind::kTrace,
                          WorkloadKind::kBursty, WorkloadKind::kHotspot}) {
    EXPECT_EQ(workload_kind_from(to_string(kind)), kind);
  }
  EXPECT_THROW((void)workload_kind_from("poisson"), std::invalid_argument);
}

TEST(NetFlow, EmptyPaymentsGiveZeroFlows) {
  const auto net = net_flow_by_node(4, {});
  ASSERT_EQ(net.size(), 4u);
  for (const Amount v : net) EXPECT_EQ(v, 0);
}

TEST(NetFlow, KnownPaymentsGiveExactPerNodeFlows) {
  std::vector<Payment> payments(3);
  payments[0].sender = 0;
  payments[0].receiver = 1;
  payments[0].value = common::whole_tokens(5);
  payments[1].sender = 1;
  payments[1].receiver = 2;
  payments[1].value = common::whole_tokens(2);
  payments[2].sender = 0;
  payments[2].receiver = 2;
  payments[2].value = common::whole_tokens(1);
  const auto net = net_flow_by_node(3, payments);
  EXPECT_EQ(net[0], common::whole_tokens(-6));
  EXPECT_EQ(net[1], common::whole_tokens(3));
  EXPECT_EQ(net[2], common::whole_tokens(3));
}

TEST(NetFlow, OutOfRangeNodeThrows) {
  std::vector<Payment> payments(1);
  payments[0].sender = 0;
  payments[0].receiver = 9;
  payments[0].value = common::whole_tokens(1);
  EXPECT_THROW((void)net_flow_by_node(3, payments), std::out_of_range);
}

}  // namespace
}  // namespace splicer::pcn
