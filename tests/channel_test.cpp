#include "pcn/channel.h"

#include <gtest/gtest.h>

namespace splicer::pcn {
namespace {

using common::whole_tokens;

TEST(Channel, InitialState) {
  Channel ch(1, 2, whole_tokens(10), whole_tokens(7));
  EXPECT_EQ(ch.node_a(), 1u);
  EXPECT_EQ(ch.node_b(), 2u);
  EXPECT_EQ(ch.available(Direction::kForward), whole_tokens(10));
  EXPECT_EQ(ch.available(Direction::kBackward), whole_tokens(7));
  EXPECT_EQ(ch.total(), whole_tokens(17));
  EXPECT_EQ(ch.capacity(), whole_tokens(17));
}

TEST(Channel, DirectionFrom) {
  Channel ch(1, 2, 1, 1);
  EXPECT_EQ(ch.direction_from(1), Direction::kForward);
  EXPECT_EQ(ch.direction_from(2), Direction::kBackward);
  EXPECT_THROW((void)ch.direction_from(3), std::invalid_argument);
  EXPECT_EQ(ch.payer(Direction::kForward), 1u);
  EXPECT_EQ(ch.payee(Direction::kForward), 2u);
}

TEST(Channel, LockSettleMovesFundsAcross) {
  Channel ch(0, 1, whole_tokens(10), whole_tokens(10));
  ASSERT_TRUE(ch.lock(Direction::kForward, whole_tokens(4)));
  EXPECT_EQ(ch.available(Direction::kForward), whole_tokens(6));
  EXPECT_EQ(ch.locked(Direction::kForward), whole_tokens(4));
  EXPECT_EQ(ch.total(), whole_tokens(20));  // conservation during lock

  ch.settle(Direction::kForward, whole_tokens(4));
  EXPECT_EQ(ch.locked(Direction::kForward), 0);
  EXPECT_EQ(ch.available(Direction::kBackward), whole_tokens(14));
  EXPECT_EQ(ch.total(), whole_tokens(20));  // and after settle
}

TEST(Channel, LockRefundRestores) {
  Channel ch(0, 1, whole_tokens(10), whole_tokens(10));
  ASSERT_TRUE(ch.lock(Direction::kBackward, whole_tokens(3)));
  ch.refund(Direction::kBackward, whole_tokens(3));
  EXPECT_EQ(ch.available(Direction::kBackward), whole_tokens(10));
  EXPECT_EQ(ch.locked(Direction::kBackward), 0);
  EXPECT_EQ(ch.total(), whole_tokens(20));
}

TEST(Channel, LockFailsOnInsufficientBalance) {
  Channel ch(0, 1, whole_tokens(2), 0);
  EXPECT_FALSE(ch.lock(Direction::kForward, whole_tokens(3)));
  EXPECT_EQ(ch.available(Direction::kForward), whole_tokens(2));  // unchanged
  EXPECT_FALSE(ch.lock(Direction::kBackward, 1));
}

TEST(Channel, PartialSettleAndRefund) {
  Channel ch(0, 1, whole_tokens(10), 0);
  ASSERT_TRUE(ch.lock(Direction::kForward, whole_tokens(6)));
  ch.settle(Direction::kForward, whole_tokens(2));
  ch.refund(Direction::kForward, whole_tokens(1));
  EXPECT_EQ(ch.locked(Direction::kForward), whole_tokens(3));
  EXPECT_EQ(ch.available(Direction::kForward), whole_tokens(5));
  EXPECT_EQ(ch.available(Direction::kBackward), whole_tokens(2));
  EXPECT_EQ(ch.total(), whole_tokens(10));
}

TEST(Channel, OverSettleThrows) {
  Channel ch(0, 1, whole_tokens(10), 0);
  ASSERT_TRUE(ch.lock(Direction::kForward, whole_tokens(2)));
  EXPECT_THROW(ch.settle(Direction::kForward, whole_tokens(3)), std::logic_error);
  EXPECT_THROW(ch.refund(Direction::kForward, whole_tokens(3)), std::logic_error);
}

TEST(Channel, TransferDirect) {
  Channel ch(0, 1, whole_tokens(5), whole_tokens(5));
  ASSERT_TRUE(ch.transfer(Direction::kForward, whole_tokens(2)));
  EXPECT_EQ(ch.available(Direction::kForward), whole_tokens(3));
  EXPECT_EQ(ch.available(Direction::kBackward), whole_tokens(7));
  EXPECT_FALSE(ch.transfer(Direction::kForward, whole_tokens(4)));
}

TEST(Channel, Imbalance) {
  Channel ch(0, 1, whole_tokens(8), whole_tokens(3));
  EXPECT_EQ(ch.imbalance(), whole_tokens(5));
}

TEST(Channel, ConstructionValidation) {
  EXPECT_THROW(Channel(0, 0, 1, 1), std::invalid_argument);
  EXPECT_THROW(Channel(0, 1, -1, 1), std::invalid_argument);
}

TEST(Channel, NonPositiveAmountsRejected) {
  Channel ch(0, 1, whole_tokens(5), whole_tokens(5));
  EXPECT_THROW((void)ch.lock(Direction::kForward, 0), std::invalid_argument);
  EXPECT_THROW((void)ch.transfer(Direction::kForward, -1), std::invalid_argument);
}

TEST(Channel, BulkSettleMatchesIndividualSettles) {
  Channel a(0, 1, whole_tokens(10), whole_tokens(2));
  Channel b(0, 1, whole_tokens(10), whole_tokens(2));
  for (const Amount v : {whole_tokens(1), whole_tokens(3), whole_tokens(2)}) {
    ASSERT_TRUE(a.lock(Direction::kForward, v));
    ASSERT_TRUE(b.lock(Direction::kForward, v));
    a.settle(Direction::kForward, v);
  }
  b.settle_n(Direction::kForward, whole_tokens(6), 3);
  EXPECT_EQ(a.available(Direction::kForward), b.available(Direction::kForward));
  EXPECT_EQ(a.available(Direction::kBackward), b.available(Direction::kBackward));
  EXPECT_EQ(b.locked(Direction::kForward), 0);
  EXPECT_EQ(b.total(), whole_tokens(12));
}

TEST(Channel, BulkRefundMatchesIndividualRefunds) {
  Channel a(0, 1, whole_tokens(9), whole_tokens(1));
  Channel b(0, 1, whole_tokens(9), whole_tokens(1));
  for (const Amount v : {whole_tokens(4), whole_tokens(2)}) {
    ASSERT_TRUE(a.lock(Direction::kForward, v));
    ASSERT_TRUE(b.lock(Direction::kForward, v));
    a.refund(Direction::kForward, v);
  }
  b.refund_n(Direction::kForward, whole_tokens(6), 2);
  EXPECT_EQ(a.available(Direction::kForward), b.available(Direction::kForward));
  EXPECT_EQ(b.locked(Direction::kForward), 0);
}

TEST(Channel, BulkOperationsValidate) {
  Channel ch(0, 1, whole_tokens(10), whole_tokens(10));
  ASSERT_TRUE(ch.lock(Direction::kForward, whole_tokens(5)));
  EXPECT_THROW(ch.settle_n(Direction::kForward, whole_tokens(5), 0),
               std::invalid_argument);
  // A coalesced total below one token unit per operation is impossible.
  EXPECT_THROW(ch.settle_n(Direction::kForward, 1, 2), std::invalid_argument);
  // Settling more than the lock pool still trips the HTLC guard.
  EXPECT_THROW(ch.settle_n(Direction::kForward, whole_tokens(6), 2),
               std::logic_error);
  EXPECT_THROW(ch.refund_n(Direction::kForward, whole_tokens(6), 2),
               std::logic_error);
  ch.settle_n(Direction::kForward, whole_tokens(5), 1);
  EXPECT_EQ(ch.available(Direction::kBackward), whole_tokens(15));
}

TEST(DirectionHelpers, OppositeAndIndex) {
  EXPECT_EQ(opposite(Direction::kForward), Direction::kBackward);
  EXPECT_EQ(opposite(Direction::kBackward), Direction::kForward);
  EXPECT_EQ(dir_index(Direction::kForward), 0u);
  EXPECT_EQ(dir_index(Direction::kBackward), 1u);
}

}  // namespace
}  // namespace splicer::pcn
