#include "placement/cost_model.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "placement/assignment.h"
#include "submodular/checks.h"

namespace splicer::placement {
namespace {

PlacementInstance tiny_instance() {
  // Path graph 0-1-2-3-4; candidates {1, 3}; omega 0.5.
  graph::Graph g(5);
  for (graph::NodeId i = 0; i + 1 < 5; ++i) g.add_edge(i, i + 1);
  return build_instance(g, {1, 3}, 0.5);
}

TEST(CostModel, InstanceShape) {
  const auto instance = tiny_instance();
  EXPECT_EQ(instance.candidate_count(), 2u);
  EXPECT_EQ(instance.client_count(), 3u);  // nodes 0, 2, 4
  EXPECT_EQ(instance.clients, (std::vector<graph::NodeId>{0, 2, 4}));
}

TEST(CostModel, PaperCoefficientsFromHops) {
  const auto instance = tiny_instance();
  // Client 0 is 1 hop from candidate 1 and 3 hops from candidate 3.
  EXPECT_DOUBLE_EQ(instance.zeta[0][0], 0.02 * 1);
  EXPECT_DOUBLE_EQ(instance.zeta[0][1], 0.02 * 3);
  // Candidates 1 and 3 are 2 hops apart.
  EXPECT_DOUBLE_EQ(instance.delta[0][1], 0.01 * 2);
  EXPECT_DOUBLE_EQ(instance.epsilon[0][1], 0.05 * 2);
  EXPECT_DOUBLE_EQ(instance.delta[0][0], 0.0);  // zero diagonal
}

TEST(CostModel, UniformDeltaOption) {
  graph::Graph g(6);
  for (graph::NodeId i = 0; i + 1 < 6; ++i) g.add_edge(i, i + 1);
  CostCoefficients coefficients;
  coefficients.uniform_delta = true;
  const auto instance = build_instance(g, {0, 2, 5}, 0.1, coefficients);
  const double d01 = instance.delta[0][1];
  EXPECT_DOUBLE_EQ(instance.delta[1][2], d01);
  EXPECT_DOUBLE_EQ(instance.delta[2][0], d01);
}

TEST(CostModel, ManagementCostSumsAssignments) {
  const auto instance = tiny_instance();
  PlacementPlan plan;
  plan.placed = {1, 1};
  plan.assignment = {0, 0, 1};  // clients 0,2 -> cand 1; client 4 -> cand 3
  // zeta: 0->1: 1 hop, 2->1: 1 hop, 4->3: 1 hop = 3 * 0.02.
  EXPECT_DOUBLE_EQ(management_cost(instance, plan), 0.06);
}

TEST(CostModel, SynchronizationCostFormula) {
  const auto instance = tiny_instance();
  PlacementPlan plan;
  plan.placed = {1, 1};
  plan.assignment = {0, 0, 1};
  // CS = sum over ordered placed pairs (n != l):
  //   delta(2 hops = 0.02) * managed_n + epsilon(0.1)
  // pair (0,1): 0.02*2 + 0.1; pair (1,0): 0.02*1 + 0.1 => 0.26.
  EXPECT_NEAR(synchronization_cost(instance, plan), 0.26, 1e-12);
}

TEST(CostModel, BalanceCombinesWithOmega) {
  const auto instance = tiny_instance();
  PlacementPlan plan;
  plan.placed = {1, 1};
  plan.assignment = {0, 0, 1};
  const auto costs = balance_cost(instance, plan);
  EXPECT_NEAR(costs.balance, costs.management + 0.5 * costs.synchronization, 1e-12);
}

TEST(CostModel, SingleHubHasNoSyncCost) {
  const auto instance = tiny_instance();
  PlacementPlan plan;
  plan.placed = {1, 0};
  plan.assignment = {0, 0, 0};
  EXPECT_DOUBLE_EQ(synchronization_cost(instance, plan), 0.0);
}

TEST(Lemma1, AssignmentScoreFormula) {
  const auto instance = tiny_instance();
  const submodular::Subset both{1, 1};
  // score(m=0, n=0) = omega * sum_l delta[0][l] + zeta[0][0]
  EXPECT_DOUBLE_EQ(assignment_score(instance, both, 0, 0), 0.5 * 0.02 + 0.02);
}

TEST(Lemma1, OptimalAssignmentPicksArgmin) {
  const auto instance = tiny_instance();
  const auto plan = optimal_assignment(instance, {1, 1});
  // Client 0 (node 0): nearer to candidate 1; client 4: nearer candidate 3;
  // client 2 (node 2): equidistant, tie-breaks to the first candidate.
  EXPECT_EQ(plan.assignment[0], 0u);
  EXPECT_EQ(plan.assignment[1], 0u);
  EXPECT_EQ(plan.assignment[2], 1u);
}

TEST(Lemma1, ProofProperty_NoSingleReassignmentImproves) {
  // Lemma 1's argument: moving any client off its assigned hub cannot
  // lower the balance cost. Verified exhaustively on a random instance.
  common::Rng rng(9);
  const auto g = graph::watts_strogatz(40, 6, 0.2, rng);
  const auto instance = build_instance_by_degree(g, 5, 0.2);
  const submodular::Subset placed{1, 0, 1, 1, 0};
  const auto plan = optimal_assignment(instance, placed);
  const double base = balance_cost(instance, plan).balance;
  for (std::size_t m = 0; m < instance.client_count(); ++m) {
    for (std::size_t n = 0; n < instance.candidate_count(); ++n) {
      if (!placed[n] || n == plan.assignment[m]) continue;
      PlacementPlan moved = plan;
      moved.assignment[m] = n;
      EXPECT_GE(balance_cost(instance, moved).balance, base - 1e-9);
    }
  }
}

TEST(Lemma1, RejectsEmptyPlacement) {
  const auto instance = tiny_instance();
  EXPECT_THROW((void)optimal_assignment(instance, {0, 0}), std::invalid_argument);
}

TEST(SetFunctionView, MatchesDirectEvaluation) {
  const auto instance = tiny_instance();
  const auto f = placement_set_function(instance);
  const submodular::Subset both{1, 1};
  const auto plan = optimal_assignment(instance, both);
  EXPECT_DOUBLE_EQ(f.value(both), balance_cost(instance, plan).balance);
  // Empty set evaluates to the penalty.
  EXPECT_DOUBLE_EQ(f.value({0, 0}), empty_set_penalty(instance));
}

TEST(SetFunctionView, PenaltyDominatesAllRealCosts) {
  common::Rng rng(10);
  const auto g = graph::watts_strogatz(30, 4, 0.2, rng);
  const auto instance = build_instance_by_degree(g, 6, 0.3);
  const auto f = placement_set_function(instance);
  const double penalty = empty_set_penalty(instance);
  for (std::uint64_t mask = 1; mask < (1u << 6); ++mask) {
    submodular::Subset s(6, 0);
    for (int i = 0; i < 6; ++i) s[static_cast<std::size_t>(i)] = (mask >> i) & 1;
    EXPECT_LT(f.value(s), penalty);
  }
}

TEST(SetFunctionView, SupermodularUnderUniformDelta) {
  // Lemma 2: uniform delta implies f is supermodular; spot-check it.
  common::Rng rng(11);
  const auto g = graph::watts_strogatz(30, 4, 0.2, rng);
  CostCoefficients coefficients;
  coefficients.uniform_delta = true;
  const auto instance = build_instance(
      g, {0, 3, 7, 11, 15, 19}, 0.05, coefficients);
  const auto f = placement_set_function(instance);
  common::Rng check_rng(12);
  EXPECT_TRUE(submodular::is_supermodular_sampled(f, check_rng, 300, 1e-7));
}

TEST(InstanceValidation, CatchesShapeErrors) {
  PlacementInstance instance;
  instance.candidates = {1, 2};
  instance.clients = {0};
  instance.zeta = {{0.1}};  // wrong column count
  instance.delta = {{0, 0}, {0, 0}};
  instance.epsilon = {{0, 0}, {0, 0}};
  EXPECT_THROW(instance.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace splicer::placement
