#include "placement/approx_solver.h"
#include "placement/exhaustive_solver.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "placement/assignment.h"
#include "placement/cost_model.h"

namespace splicer::placement {
namespace {

PlacementInstance random_instance(std::uint64_t seed, std::size_t nodes,
                                  std::size_t candidates, double omega,
                                  bool uniform_delta = false) {
  common::Rng rng(seed);
  const auto g = graph::watts_strogatz(nodes, 6, 0.2, rng);
  CostCoefficients coefficients;
  coefficients.uniform_delta = uniform_delta;
  return build_instance_by_degree(g, candidates, omega, coefficients);
}

TEST(Exhaustive, EvaluatesAllNonEmptySubsets) {
  const auto instance = random_instance(1, 30, 5, 0.1);
  const auto result = solve_exhaustive(instance);
  EXPECT_EQ(result.subsets_evaluated, 31u);  // 2^5 - 1
  EXPECT_GE(result.plan.hub_count(), 1u);
}

TEST(Exhaustive, OptimumBeatsEverySingleHub) {
  const auto instance = random_instance(2, 40, 6, 0.2);
  const auto best = solve_exhaustive(instance).costs.balance;
  for (std::size_t n = 0; n < 6; ++n) {
    submodular::Subset single(6, 0);
    single[n] = 1;
    const auto plan = optimal_assignment(instance, single);
    EXPECT_LE(best, balance_cost(instance, plan).balance + 1e-12);
  }
}

TEST(Exhaustive, RejectsHugeCandidateSets) {
  PlacementInstance instance = random_instance(3, 30, 5, 0.1);
  instance.candidates.resize(25);  // force the guard
  EXPECT_THROW((void)solve_exhaustive(instance), std::invalid_argument);
}

TEST(Approx, ProducesValidPlan) {
  const auto instance = random_instance(4, 60, 8, 0.1);
  const auto result = solve_approx(instance);
  EXPECT_GE(result.plan.hub_count(), 1u);
  EXPECT_EQ(result.plan.assignment.size(), instance.client_count());
  for (const auto a : result.plan.assignment) {
    EXPECT_TRUE(result.plan.placed[a]) << "client assigned to unplaced hub";
  }
  EXPECT_GT(result.oracle_calls, 0u);
}

// Property sweep: on uniform-delta (Lemma-2 supermodular) instances the
// double greedy's cost stays within a small factor of the exhaustive
// optimum across seeds and omegas.
class ApproxQualityTest
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, double>> {};

TEST_P(ApproxQualityTest, CloseToOptimalUnderLemma2Conditions) {
  const auto [seed, omega] = GetParam();
  const auto instance = random_instance(seed, 50, 8, omega, /*uniform=*/true);
  const auto exact = solve_exhaustive(instance);
  const auto approx = solve_approx(instance);
  EXPECT_GE(approx.costs.balance, exact.costs.balance - 1e-9);
  // Empirically the double greedy tracks the optimum closely (Fig. 9(a));
  // enforce a conservative 1.6x envelope.
  EXPECT_LE(approx.costs.balance, exact.costs.balance * 1.6 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndOmegas, ApproxQualityTest,
    ::testing::Combine(::testing::Values(1, 2, 3, 4, 5),
                       ::testing::Values(0.02, 0.1, 0.4)));

TEST(ApproxRandomized, ValidAndReasonable) {
  const auto instance = random_instance(6, 50, 8, 0.1, /*uniform=*/true);
  common::Rng rng(7);
  const auto exact = solve_exhaustive(instance);
  const auto result = solve_approx_randomized(instance, rng);
  EXPECT_GE(result.plan.hub_count(), 1u);
  EXPECT_LE(result.costs.balance, exact.costs.balance * 2.0);
}

TEST(GreedyDescentSolver, ReachesLocalOptimum) {
  const auto instance = random_instance(8, 50, 7, 0.1);
  const auto result = solve_greedy_descent(instance);
  EXPECT_GE(result.plan.hub_count(), 1u);
  // Local optimality: no single toggle improves.
  const auto f = placement_set_function(instance);
  submodular::Subset s(instance.candidate_count());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = result.plan.placed[i];
  const double base = f.value(s);
  for (std::size_t i = 0; i < s.size(); ++i) {
    s[i] ^= 1;
    EXPECT_GE(f.value(s), base - 1e-9);
    s[i] ^= 1;
  }
}

TEST(HubCountTrend, MoreManagementWeightMeansMoreHubs) {
  // Fig. 9(c)/(d): small omega (management-dominated) places more hubs
  // than large omega (synchronisation-dominated).
  const auto low = random_instance(9, 80, 10, 0.01);
  const auto high = random_instance(9, 80, 10, 1.0);
  const auto hubs_low = solve_exhaustive(low).plan.hub_count();
  const auto hubs_high = solve_exhaustive(high).plan.hub_count();
  EXPECT_GE(hubs_low, hubs_high);
}

}  // namespace
}  // namespace splicer::placement
