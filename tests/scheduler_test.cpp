#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

namespace splicer::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(3.0, [&] { order.push_back(3); });
  s.at(1.0, [&] { order.push_back(1); });
  s.at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, TiesBreakBySchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&] { order.push_back(1); });
  s.at(1.0, [&] { order.push_back(2); });
  s.at(1.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  double fired_at = -1.0;
  s.at(5.0, [&] {
    s.after(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  double fired_at = -1.0;
  s.at(5.0, [&] {
    s.at(1.0, [&] { fired_at = s.now(); });  // in the past
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const auto id = s.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler s;
  const auto id = s.at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(9999));  // unknown id
}

TEST(Scheduler, RunUntilStopsEarly) {
  Scheduler s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  s.at(10.0, [&] { ++count; });
  const std::size_t executed = s.run(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, MaxEventsLimit) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.at(i, [&] { ++count; });
  s.run(Scheduler::kForever, 4);
  EXPECT_EQ(count, 4);
}

TEST(Scheduler, EveryRepeatsUntilFalse) {
  Scheduler s;
  int ticks = 0;
  s.every(1.0, [&] {
    ++ticks;
    return ticks < 5;
  });
  s.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Scheduler, PendingCountsLiveEvents) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  const auto a = s.at(1.0, [] {});
  s.at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, AtNextBoundaryCoalescesOntoEpochGrid) {
  Scheduler s;
  std::vector<double> fired;
  s.at(0.013, [&] {
    // Both requests from inside one epoch land on the same boundary.
    s.at_next_boundary(0.010, [&] { fired.push_back(s.now()); });
    s.at_next_boundary(0.010, [&] { fired.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_NEAR(fired[0], 0.020, 1e-12);
  // Coalescing requires the two boundary timestamps to be bit-identical.
  EXPECT_EQ(fired[0], fired[1]);
}

TEST(Scheduler, AtNextBoundaryIsStrictlyAfterNow) {
  Scheduler s;
  double fired = -1.0;
  s.at(0.020, [&] {
    // Exactly on a boundary: the next one must be chosen, not this one.
    s.at_next_boundary(0.010, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_NEAR(fired, 0.030, 1e-12);
  EXPECT_GT(fired, 0.020);
}

TEST(Scheduler, AtNextBoundaryRejectsNonPositivePeriod) {
  Scheduler s;
  EXPECT_THROW(s.at_next_boundary(0.0, [] {}), std::invalid_argument);
}

TEST(Scheduler, RunCountsOnlyRealExecutions) {
  Scheduler s;
  s.at(1.0, [] {});
  const auto cancelled = s.at(2.0, [] {});
  s.at(3.0, [] {});
  EXPECT_TRUE(s.cancel(cancelled));
  // Cancelled events are skipped without being counted as executed.
  EXPECT_EQ(s.run(), 2u);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&] {
    order.push_back(1);
    s.at(1.5, [&] { order.push_back(2); });
  });
  s.at(2.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace splicer::sim
