#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "common/rng.h"

namespace splicer::sim {
namespace {

/// Records every typed event it receives, in dispatch order.
class RecordingSink final : public EventSink {
 public:
  void handle_event(const EngineEvent& event) override {
    events.push_back(event);
  }
  std::vector<EngineEvent> events;
};

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(3.0, [&] { order.push_back(3); });
  s.at(1.0, [&] { order.push_back(1); });
  s.at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, TiesBreakBySchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&] { order.push_back(1); });
  s.at(1.0, [&] { order.push_back(2); });
  s.at(1.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  double fired_at = -1.0;
  s.at(5.0, [&] {
    s.after(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  double fired_at = -1.0;
  s.at(5.0, [&] {
    s.at(1.0, [&] { fired_at = s.now(); });  // in the past
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const auto id = s.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler s;
  const auto id = s.at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(9999));  // unknown id
}

TEST(Scheduler, RunUntilStopsEarly) {
  Scheduler s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  s.at(10.0, [&] { ++count; });
  const std::size_t executed = s.run(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, MaxEventsLimit) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.at(i, [&] { ++count; });
  s.run(Scheduler::kForever, 4);
  EXPECT_EQ(count, 4);
}

TEST(Scheduler, EveryRepeatsUntilFalse) {
  Scheduler s;
  int ticks = 0;
  s.every(1.0, [&] {
    ++ticks;
    return ticks < 5;
  });
  s.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Scheduler, PendingCountsLiveEvents) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  const auto a = s.at(1.0, [] {});
  s.at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, AtNextBoundaryCoalescesOntoEpochGrid) {
  Scheduler s;
  std::vector<double> fired;
  s.at(0.013, [&] {
    // Both requests from inside one epoch land on the same boundary.
    s.at_next_boundary(0.010, [&] { fired.push_back(s.now()); });
    s.at_next_boundary(0.010, [&] { fired.push_back(s.now()); });
  });
  s.run();
  ASSERT_EQ(fired.size(), 2u);
  EXPECT_NEAR(fired[0], 0.020, 1e-12);
  // Coalescing requires the two boundary timestamps to be bit-identical.
  EXPECT_EQ(fired[0], fired[1]);
}

TEST(Scheduler, AtNextBoundaryIsStrictlyAfterNow) {
  Scheduler s;
  double fired = -1.0;
  s.at(0.020, [&] {
    // Exactly on a boundary: the next one must be chosen, not this one.
    s.at_next_boundary(0.010, [&] { fired = s.now(); });
  });
  s.run();
  EXPECT_NEAR(fired, 0.030, 1e-12);
  EXPECT_GT(fired, 0.020);
}

TEST(Scheduler, AtNextBoundaryRejectsNonPositivePeriod) {
  Scheduler s;
  EXPECT_THROW(s.at_next_boundary(0.0, [] {}), std::invalid_argument);
}

TEST(Scheduler, RunCountsOnlyRealExecutions) {
  Scheduler s;
  s.at(1.0, [] {});
  const auto cancelled = s.at(2.0, [] {});
  s.at(3.0, [] {});
  EXPECT_TRUE(s.cancel(cancelled));
  // Cancelled events are skipped without being counted as executed.
  EXPECT_EQ(s.run(), 2u);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&] {
    order.push_back(1);
    s.at(1.5, [&] { order.push_back(2); });
  });
  s.at(2.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

// ---- Typed pooled events ---------------------------------------------------

TEST(Scheduler, TypedEventsDispatchThroughSinkInOrder) {
  Scheduler s;
  RecordingSink sink;
  s.set_sink(&sink);
  s.at(2.0, EngineEvent{.kind = EngineEvent::Kind::kArriveNext,
                        .channel = 7,
                        .aux = 1,
                        .a = 42});
  s.at(1.0, EngineEvent{.kind = EngineEvent::Kind::kAttemptHop, .a = 9});
  s.after(0.5, EngineEvent{.kind = EngineEvent::Kind::kDeadline, .a = 3});
  s.run();
  ASSERT_EQ(sink.events.size(), 3u);
  EXPECT_EQ(sink.events[0].kind, EngineEvent::Kind::kDeadline);
  EXPECT_EQ(sink.events[0].a, 3u);
  EXPECT_EQ(sink.events[1].kind, EngineEvent::Kind::kAttemptHop);
  EXPECT_EQ(sink.events[2].kind, EngineEvent::Kind::kArriveNext);
  EXPECT_EQ(sink.events[2].channel, 7u);
  EXPECT_EQ(sink.events[2].aux, 1u);
  EXPECT_EQ(sink.events[2].a, 42u);
}

TEST(Scheduler, TypedEventWithoutSinkThrows) {
  Scheduler s;
  EXPECT_THROW(s.at(1.0, EngineEvent{.kind = EngineEvent::Kind::kFlush}),
               std::logic_error);
}

TEST(Scheduler, TypedEventWithKindNoneIsRejectedAtScheduleTime) {
  // kNone discriminates callback nodes in the pool; a typed kNone event
  // would mis-dispatch at fire time, so it must fail loudly up front.
  Scheduler s;
  RecordingSink sink;
  s.set_sink(&sink);
  EXPECT_THROW(s.at(1.0, EngineEvent{}), std::invalid_argument);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, TypedAndCallbackEventsInterleaveInTimeOrder) {
  Scheduler s;
  RecordingSink sink;
  s.set_sink(&sink);
  std::vector<int> order;
  s.at(1.0, [&] { order.push_back(1); });
  s.at(2.0, EngineEvent{.kind = EngineEvent::Kind::kFlush});
  s.at(3.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 3}));
  ASSERT_EQ(sink.events.size(), 1u);
}

// ---- Eager cancellation / pool generations ---------------------------------

TEST(Scheduler, CancelAfterFireReturnsFalseAndKeepsAccounting) {
  // Regression: the tombstone scheduler accepted a cancel() of an already-
  // fired id, inserting a never-collected tombstone and corrupting
  // pending()/empty(). The generation counter now detects it.
  Scheduler s;
  const auto fired = s.at(1.0, [] {});
  s.at(2.0, [] {});
  EXPECT_TRUE(s.step());  // fires the first event
  EXPECT_FALSE(s.cancel(fired));
  EXPECT_EQ(s.pending(), 1u);  // untouched by the stale cancel
  EXPECT_FALSE(s.empty());
  EXPECT_EQ(s.run(), 1u);
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(Scheduler, GenerationReuseInvalidatesOldIds) {
  Scheduler s;
  int fired = 0;
  const auto first = s.at(1.0, [&] { ++fired; });
  EXPECT_TRUE(s.cancel(first));
  // The pool slot is recycled; the old id must not cancel the new event.
  const auto second = s.at(1.0, [&] { ++fired; });
  EXPECT_NE(first, second);
  EXPECT_FALSE(s.cancel(first));
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(s.cancel(second));  // fired: detected stale
}

TEST(Scheduler, CancelRemovesEagerly) {
  Scheduler s;
  std::vector<Scheduler::EventId> ids;
  for (int i = 0; i < 10; ++i) ids.push_back(s.at(1.0 + i, [] {}));
  // Cancel from the middle of the heap; pending must track exactly.
  EXPECT_TRUE(s.cancel(ids[4]));
  EXPECT_TRUE(s.cancel(ids[9]));
  EXPECT_TRUE(s.cancel(ids[0]));
  EXPECT_EQ(s.pending(), 7u);
  EXPECT_EQ(s.run(), 7u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, DrainWithInterleavedCancelsIsDeterministic) {
  // The same schedule/cancel/step sequence must produce the identical
  // firing order on independent schedulers (the substrate of the N-thread
  // ParallelRunner bit-identity guarantee).
  const auto run_once = [] {
    Scheduler s;
    common::Rng rng(1234);
    std::vector<std::uint64_t> fired;
    std::vector<Scheduler::EventId> live;
    for (int round = 0; round < 50; ++round) {
      for (int i = 0; i < 20; ++i) {
        const double when = rng.uniform(0.0, 100.0);
        const std::uint64_t tag =
            static_cast<std::uint64_t>(round) * 100 + static_cast<std::uint64_t>(i);
        live.push_back(s.at(when, [&fired, tag] { fired.push_back(tag); }));
      }
      // Cancel a random half of the still-known ids (stale ones no-op).
      for (int i = 0; i < 10; ++i) {
        s.cancel(live[rng.index(live.size())]);
      }
      s.run(Scheduler::kForever, 5);  // interleave partial drains
    }
    s.run();
    return fired;
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

TEST(Scheduler, PoolStressReusesSlotsConsistently) {
  // ASan food for the free list: heavy schedule/cancel/fire churn over a
  // small time window forces constant slot recycling and heap growth.
  Scheduler s;
  common::Rng rng(99);
  std::vector<Scheduler::EventId> ids;
  std::size_t fired = 0;
  std::size_t cancelled = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 50; ++i) {
      ids.push_back(s.after(rng.uniform(0.0, 2.0), [&] { ++fired; }));
    }
    for (int i = 0; i < 25; ++i) {
      if (s.cancel(ids[rng.index(ids.size())])) ++cancelled;
    }
    s.run(s.now() + 0.5);
  }
  s.run();
  EXPECT_EQ(fired + cancelled, 200u * 50u);
  EXPECT_TRUE(s.empty());
}

}  // namespace
}  // namespace splicer::sim
