#include "sim/scheduler.h"

#include <gtest/gtest.h>

#include <vector>

namespace splicer::sim {
namespace {

TEST(Scheduler, FiresInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(3.0, [&] { order.push_back(3); });
  s.at(1.0, [&] { order.push_back(1); });
  s.at(2.0, [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(s.now(), 3.0);
}

TEST(Scheduler, TiesBreakBySchedulingOrder) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&] { order.push_back(1); });
  s.at(1.0, [&] { order.push_back(2); });
  s.at(1.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, AfterIsRelative) {
  Scheduler s;
  double fired_at = -1.0;
  s.at(5.0, [&] {
    s.after(2.5, [&] { fired_at = s.now(); });
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Scheduler, PastTimesClampToNow) {
  Scheduler s;
  double fired_at = -1.0;
  s.at(5.0, [&] {
    s.at(1.0, [&] { fired_at = s.now(); });  // in the past
  });
  s.run();
  EXPECT_DOUBLE_EQ(fired_at, 5.0);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool fired = false;
  const auto id = s.at(1.0, [&] { fired = true; });
  EXPECT_TRUE(s.cancel(id));
  s.run();
  EXPECT_FALSE(fired);
}

TEST(Scheduler, CancelTwiceReturnsFalse) {
  Scheduler s;
  const auto id = s.at(1.0, [] {});
  EXPECT_TRUE(s.cancel(id));
  EXPECT_FALSE(s.cancel(id));
  EXPECT_FALSE(s.cancel(9999));  // unknown id
}

TEST(Scheduler, RunUntilStopsEarly) {
  Scheduler s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  s.at(10.0, [&] { ++count; });
  const std::size_t executed = s.run(5.0);
  EXPECT_EQ(executed, 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(Scheduler, MaxEventsLimit) {
  Scheduler s;
  int count = 0;
  for (int i = 0; i < 10; ++i) s.at(i, [&] { ++count; });
  s.run(Scheduler::kForever, 4);
  EXPECT_EQ(count, 4);
}

TEST(Scheduler, EveryRepeatsUntilFalse) {
  Scheduler s;
  int ticks = 0;
  s.every(1.0, [&] {
    ++ticks;
    return ticks < 5;
  });
  s.run();
  EXPECT_EQ(ticks, 5);
  EXPECT_DOUBLE_EQ(s.now(), 5.0);
}

TEST(Scheduler, PendingCountsLiveEvents) {
  Scheduler s;
  EXPECT_TRUE(s.empty());
  const auto a = s.at(1.0, [] {});
  s.at(2.0, [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(a);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, StepExecutesExactlyOne) {
  Scheduler s;
  int count = 0;
  s.at(1.0, [&] { ++count; });
  s.at(2.0, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler s;
  std::vector<int> order;
  s.at(1.0, [&] {
    order.push_back(1);
    s.at(1.5, [&] { order.push_back(2); });
  });
  s.at(2.0, [&] { order.push_back(3); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

}  // namespace
}  // namespace splicer::sim
