// Direct verification of the waiting-queue service orders (Table II's
// FIFO/LIFO/SPF/EDF): four TUs arrive while a rate-limited channel is
// busy; the drain order must follow the configured policy.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "routing/engine.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

class RecordingRouter : public Router {
 public:
  [[nodiscard]] std::string name() const override { return "recording"; }
  void on_payment(Engine& engine, const pcn::Payment& payment) override {
    // One TU per payment across the 2-hop line 0-1-2, value = payment value.
    TransactionUnit tu;
    tu.payment = payment.id;
    tu.value = payment.value;
    tu.path.nodes = {0, 1, 2};
    tu.path.edges = {engine.network().topology().find_edge(0, 1),
                     engine.network().topology().find_edge(1, 2)};
    tu.hop_amounts = {payment.value, payment.value};
    tu.deadline = payment.deadline;
    engine.send_tu(std::move(tu));
  }
  void on_tu_delivered(Engine&, const TransactionUnit& tu) override {
    delivered_payments.push_back(tu.payment);
  }
  std::vector<PaymentId> delivered_payments;
};

/// Four payments with distinct values and deadlines, all arriving at once.
/// Payment p: value tokens and deadline as listed.
///   p1: value 5, deadline 9.0      p2: value 2, deadline 8.0
///   p3: value 4, deadline 7.0      p4: value 3, deadline 6.0
std::vector<pcn::Payment> burst() {
  const double values[] = {5, 2, 4, 3};
  const double deadlines[] = {9.0, 8.0, 7.0, 6.0};
  std::vector<pcn::Payment> payments;
  for (int i = 0; i < 4; ++i) {
    pcn::Payment p;
    p.id = i + 1;
    p.sender = 0;
    p.receiver = 2;
    p.value = common::tokens(values[i]);
    p.arrival_time = 0.1 + 1e-4 * i;  // effectively simultaneous
    p.deadline = deadlines[i];
    payments.push_back(p);
  }
  return payments;
}

std::vector<PaymentId> run_policy(SchedulingPolicy policy) {
  graph::Graph g(3);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  auto net = pcn::Network::with_uniform_funds(std::move(g), whole_tokens(100));

  RecordingRouter router;
  EngineConfig config;
  config.queues_enabled = true;
  config.policy = policy;
  config.queue_delay_threshold_s = 30.0;  // no marking in this test
  // Second hop processes ~4 tokens/second: the first TU occupies it for
  // over a second, so the remaining three TUs queue behind it.
  config.process_rate_tokens_per_s = 4.0;
  Engine engine(std::move(net), burst(), router, config);
  (void)engine.run();
  return router.delivered_payments;
}

TEST(QueuePolicy, FifoServesArrivalOrder) {
  const auto order = run_policy(SchedulingPolicy::kFifo);
  ASSERT_EQ(order.size(), 4u);
  // First TU (p1) grabs the processor; the queue drains in arrival order.
  EXPECT_EQ(order, (std::vector<PaymentId>{1, 2, 3, 4}));
}

TEST(QueuePolicy, LifoServesNewestFirst) {
  const auto order = run_policy(SchedulingPolicy::kLifo);
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order, (std::vector<PaymentId>{1, 4, 3, 2}));
}

TEST(QueuePolicy, SpfServesSmallestValueFirst) {
  const auto order = run_policy(SchedulingPolicy::kSpf);
  ASSERT_EQ(order.size(), 4u);
  // Queued values: p2=2, p3=4, p4=3 -> smallest first: p2, p4, p3.
  EXPECT_EQ(order, (std::vector<PaymentId>{1, 2, 4, 3}));
}

TEST(QueuePolicy, EdfServesEarliestDeadlineFirst) {
  const auto order = run_policy(SchedulingPolicy::kEdf);
  ASSERT_EQ(order.size(), 4u);
  // Queued deadlines: p2=8, p3=7, p4=6 -> earliest first: p4, p3, p2.
  EXPECT_EQ(order, (std::vector<PaymentId>{1, 4, 3, 2}));
}

TEST(QueuePolicy, PolicyNames) {
  EXPECT_STREQ(to_string(SchedulingPolicy::kFifo), "FIFO");
  EXPECT_STREQ(to_string(SchedulingPolicy::kLifo), "LIFO");
  EXPECT_STREQ(to_string(SchedulingPolicy::kSpf), "SPF");
  EXPECT_STREQ(to_string(SchedulingPolicy::kEdf), "EDF");
}

TEST(QueuePolicy, RateLimitDelaysButDeliversEverything) {
  // Even at a crawling processing rate, with generous deadlines every TU
  // eventually gets through (no starvation in any policy).
  for (const auto policy :
       {SchedulingPolicy::kFifo, SchedulingPolicy::kLifo,
        SchedulingPolicy::kSpf, SchedulingPolicy::kEdf}) {
    const auto order = run_policy(policy);
    EXPECT_EQ(order.size(), 4u) << to_string(policy);
    EXPECT_EQ(order.front(), 1u) << to_string(policy);  // head TU never queued
  }
}

}  // namespace
}  // namespace splicer::routing
