#include "crypto/field.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace splicer::crypto {
namespace {

TEST(Field, ReduceIdentities) {
  EXPECT_EQ(reduce(0), 0u);
  EXPECT_EQ(reduce(kPrime), 0u);
  EXPECT_EQ(reduce(kPrime - 1), kPrime - 1);
  EXPECT_EQ(reduce(kPrime + 5), 5u);
}

TEST(Field, AddSub) {
  EXPECT_EQ(add_mod(kPrime - 1, 1), 0u);
  EXPECT_EQ(add_mod(kPrime - 1, 2), 1u);
  EXPECT_EQ(sub_mod(0, 1), kPrime - 1);
  EXPECT_EQ(sub_mod(5, 3), 2u);
}

TEST(Field, MulSmall) {
  EXPECT_EQ(mul_mod(3, 4), 12u);
  EXPECT_EQ(mul_mod(0, 12345), 0u);
  EXPECT_EQ(mul_mod(1, kPrime - 1), kPrime - 1);
}

TEST(Field, MulLargeMatchesInt128Reference) {
  common::Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = rng.next_below(kPrime);
    const std::uint64_t b = rng.next_below(kPrime);
    const auto reference = static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(a) * b) % kPrime);
    EXPECT_EQ(mul_mod(a, b), reference);
  }
}

TEST(Field, PowMatchesRepeatedMul) {
  std::uint64_t acc = 1;
  for (int e = 0; e < 20; ++e) {
    EXPECT_EQ(pow_mod(7, static_cast<std::uint64_t>(e)), acc);
    acc = mul_mod(acc, 7);
  }
}

TEST(Field, FermatLittleTheorem) {
  common::Rng rng(2);
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t a = 1 + rng.next_below(kPrime - 1);
    EXPECT_EQ(pow_mod(a, kPrime - 1), 1u) << a;
  }
}

TEST(Field, InverseIsInverse) {
  common::Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t a = 1 + rng.next_below(kPrime - 1);
    EXPECT_EQ(mul_mod(a, inv_mod(a)), 1u);
  }
}

TEST(Field, InverseOfZeroThrows) {
  EXPECT_THROW((void)inv_mod(0), std::domain_error);
}

}  // namespace
}  // namespace splicer::crypto
