#include "routing/parallel_experiment.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace splicer::routing {
namespace {

/// Small but non-trivial evaluation point: big enough to exercise queueing
/// and failures, small enough for an 8-way sweep in test time.
ScenarioConfig tiny_config() {
  ScenarioConfig config;
  config.seed = 7;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 150;
  config.workload.horizon_seconds = 5.0;
  return config;
}

void expect_identical(const EngineMetrics& a, const EngineMetrics& b) {
  EXPECT_EQ(a.payments_generated, b.payments_generated);
  EXPECT_EQ(a.payments_completed, b.payments_completed);
  EXPECT_EQ(a.payments_failed, b.payments_failed);
  EXPECT_EQ(a.value_generated, b.value_generated);
  EXPECT_EQ(a.value_completed, b.value_completed);
  EXPECT_EQ(a.completion_delay_stats.sum(),
            b.completion_delay_stats.sum());  // bit-exact
  EXPECT_EQ(a.tus_sent, b.tus_sent);
  EXPECT_EQ(a.tus_delivered, b.tus_delivered);
  EXPECT_EQ(a.tus_failed, b.tus_failed);
  EXPECT_EQ(a.tus_marked, b.tus_marked);
  EXPECT_EQ(a.tu_fail_reasons, b.tu_fail_reasons);
  EXPECT_EQ(a.payment_fail_reasons, b.payment_fail_reasons);
  EXPECT_EQ(a.messages.data_hops, b.messages.data_hops);
  EXPECT_EQ(a.messages.ack_messages, b.messages.ack_messages);
  EXPECT_EQ(a.messages.probe_messages, b.messages.probe_messages);
  EXPECT_EQ(a.messages.sync_messages, b.messages.sync_messages);
  EXPECT_EQ(a.messages.control_messages, b.messages.control_messages);
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds);
}

TEST(DeriveSeed, StableAndComponentSensitive) {
  const auto base = derive_seed(42, 0, 0, 0);
  EXPECT_EQ(base, derive_seed(42, 0, 0, 0));  // pure function

  // Every component must matter, and no two nearby points may collide.
  std::set<std::uint64_t> seen;
  for (std::uint64_t s = 0; s < 4; ++s) {
    for (std::uint64_t g = 0; g < 4; ++g) {
      for (std::uint64_t k = 0; k < 4; ++k) {
        seen.insert(derive_seed(42, s, g, k));
      }
    }
  }
  EXPECT_EQ(seen.size(), 4u * 4u * 4u);
  EXPECT_EQ(seen.count(derive_seed(43, 0, 0, 0)), 0u);
}

TEST(ParallelRunner, TrialZeroMatchesSequentialPath) {
  const auto config = tiny_config();
  const auto schemes = comparison_schemes();

  // Sequential reference: exactly what the old harness does.
  const auto scenario = prepare_scenario(config);
  std::vector<EngineMetrics> reference;
  reference.reserve(schemes.size());
  for (const auto scheme : schemes) {
    reference.push_back(run_scheme(scenario, scheme));
  }

  ParallelRunner runner({/*threads=*/8, /*trials=*/1});
  const auto results = runner.run(config, schemes);
  ASSERT_EQ(results.size(), schemes.size());
  for (std::size_t i = 0; i < schemes.size(); ++i) {
    SCOPED_TRACE(to_string(schemes[i]));
    expect_identical(results[i].first(), reference[i]);
  }
}

TEST(ParallelRunner, OneThreadAndEightThreadsAreBitIdentical) {
  const std::vector<ScenarioConfig> scenarios{tiny_config(), [] {
                                                auto c = tiny_config();
                                                c.topology.fund_scale = 2.0;
                                                return c;
                                              }()};
  const auto tasks = comparison_tasks();

  ParallelRunner single({/*threads=*/1, /*trials=*/2});
  ParallelRunner wide({/*threads=*/8, /*trials=*/2});
  const auto a = single.run(scenarios, tasks);
  const auto b = wide.run(scenarios, tasks);

  ASSERT_EQ(a.size(), b.size());
  for (std::size_t s = 0; s < a.size(); ++s) {
    ASSERT_EQ(a[s].size(), b[s].size());
    for (std::size_t t = 0; t < a[s].size(); ++t) {
      ASSERT_EQ(a[s][t].trials.size(), b[s][t].trials.size());
      for (std::size_t k = 0; k < a[s][t].trials.size(); ++k) {
        SCOPED_TRACE("scenario " + std::to_string(s) + " task " +
                     std::to_string(t) + " trial " + std::to_string(k));
        expect_identical(a[s][t].trials[k], b[s][t].trials[k]);
      }
      // The merged stats are derived from identical inputs in identical
      // order, so they must match bit-for-bit as well.
      EXPECT_EQ(a[s][t].tsr.mean(), b[s][t].tsr.mean());
      EXPECT_EQ(a[s][t].throughput.mean(), b[s][t].throughput.mean());
      EXPECT_EQ(a[s][t].messages.sum(), b[s][t].messages.sum());
    }
  }
}

TEST(ParallelRunner, TrialsProduceIndependentWorkloadsAndMergedStats) {
  ParallelRunner runner({/*threads=*/4, /*trials=*/3});
  const auto results =
      runner.run(tiny_config(), {Scheme::kSplicer, Scheme::kShortestPath});

  for (const auto& cell : results) {
    ASSERT_EQ(cell.trials.size(), 3u);
    EXPECT_EQ(cell.tsr.count(), 3u);
    EXPECT_EQ(cell.throughput.count(), 3u);
    EXPECT_EQ(cell.delay_s.count(), 3u);
    EXPECT_EQ(cell.messages.count(), 3u);
    EXPECT_GE(cell.tsr.mean(), 0.0);
    EXPECT_LE(cell.tsr.mean(), 1.0);
    EXPECT_LE(cell.tsr.min(), cell.tsr.mean());
    EXPECT_GE(cell.tsr.max(), cell.tsr.mean());

    // Derived-seed trials run different workloads: the exact generated
    // value should differ between at least one pair of trials.
    const bool any_different =
        cell.trials[0].value_generated != cell.trials[1].value_generated ||
        cell.trials[1].value_generated != cell.trials[2].value_generated;
    EXPECT_TRUE(any_different);
  }
}

TEST(ParallelRunner, LabelsNameTaskVariants) {
  SchemeTask plain{Scheme::kSplicer, {}, {}};
  SchemeTask labelled{Scheme::kSplicer, {}, "Splicer tau=0.1"};
  EXPECT_STREQ(plain.name(), "Splicer");
  EXPECT_STREQ(labelled.name(), "Splicer tau=0.1");
}

TEST(ParallelRunner, ZeroTrialsIsClampedToOne) {
  ParallelRunner runner({/*threads=*/2, /*trials=*/0});
  EXPECT_EQ(runner.config().trials, 1u);
  const auto results = runner.run(tiny_config(), {Scheme::kShortestPath});
  ASSERT_EQ(results.size(), 1u);
  EXPECT_EQ(results.front().trials.size(), 1u);
}

}  // namespace
}  // namespace splicer::routing
