#include "common/dense_id_map.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace splicer::common {
namespace {

TEST(DenseIdMap, EmplaceFindErase) {
  DenseIdMap<std::string> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.find(1), nullptr);

  auto [a, inserted] = map.emplace(1, "one");
  EXPECT_TRUE(inserted);
  EXPECT_EQ(*a, "one");
  EXPECT_EQ(map.size(), 1u);
  ASSERT_NE(map.find(1), nullptr);
  EXPECT_EQ(*map.find(1), "one");
  EXPECT_EQ(map.at(1), "one");

  EXPECT_TRUE(map.erase(1));
  EXPECT_FALSE(map.erase(1));
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_TRUE(map.empty());
  EXPECT_THROW((void)map.at(1), std::out_of_range);
}

TEST(DenseIdMap, DuplicateEmplaceKeepsExisting) {
  DenseIdMap<int> map;
  map.emplace(5, 50);
  auto [value, inserted] = map.emplace(5, 99);
  EXPECT_FALSE(inserted);
  EXPECT_EQ(*value, 50);
  EXPECT_EQ(map.size(), 1u);
}

TEST(DenseIdMap, WindowSlidesAsOldIdsErase) {
  // Sequential insert + in-order erase is the streaming-engine pattern: the
  // window must stay at the live-entry width, not grow with ids ever seen.
  DenseIdMap<int> map;
  for (std::uint64_t id = 1; id <= 10000; ++id) {
    map.emplace(id, static_cast<int>(id));
    if (id > 8) {
      EXPECT_TRUE(map.erase(id - 8));
    }
    ASSERT_LE(map.size(), 8u);
  }
  // Only the tail window remains reachable.
  EXPECT_EQ(map.find(9000), nullptr);
  ASSERT_NE(map.find(9999), nullptr);
  EXPECT_EQ(*map.find(9999), 9999);
}

TEST(DenseIdMap, OutOfOrderInsertBelowBase) {
  DenseIdMap<int> map;
  map.emplace(100, 1);
  map.emplace(97, 2);  // extends the window downwards
  ASSERT_NE(map.find(97), nullptr);
  EXPECT_EQ(*map.find(97), 2);
  EXPECT_EQ(*map.find(100), 1);
  EXPECT_EQ(map.find(98), nullptr);  // gap stays empty
  EXPECT_EQ(map.size(), 2u);
}

TEST(DenseIdMap, ReanchorsAfterWindowDrains) {
  DenseIdMap<int> map;
  map.emplace(1, 1);
  map.erase(1);
  // A far-away id after a full drain must not span the dead gap.
  map.emplace(1'000'000, 7);
  ASSERT_NE(map.find(1'000'000), nullptr);
  EXPECT_EQ(*map.find(1'000'000), 7);
  EXPECT_EQ(map.find(1), nullptr);
  EXPECT_EQ(map.size(), 1u);
}

TEST(DenseIdMap, GrowthPreservesEntriesAndGaps) {
  DenseIdMap<int> map;
  for (std::uint64_t id = 10; id < 10 + 100; id += 2) {
    map.emplace(id, static_cast<int>(id));
  }
  EXPECT_EQ(map.size(), 50u);
  for (std::uint64_t id = 10; id < 10 + 100; ++id) {
    if (id % 2 == 0) {
      ASSERT_NE(map.find(id), nullptr) << id;
      EXPECT_EQ(*map.find(id), static_cast<int>(id));
    } else {
      EXPECT_EQ(map.find(id), nullptr) << id;
    }
  }
}

TEST(DenseIdMap, RejectsPathologicallySparseIds) {
  // The map is for dense sequential ids; a gap that would force an O(gap)
  // ring must throw instead of OOMing (or wrapping the growth loop).
  DenseIdMap<int> map;
  map.emplace(1, 1);
  EXPECT_THROW(map.emplace(std::uint64_t{1} << 40, 2), std::length_error);
  EXPECT_THROW(map.emplace(~std::uint64_t{0}, 3), std::length_error);
  // The failed inserts left the map untouched.
  EXPECT_EQ(map.size(), 1u);
  EXPECT_EQ(*map.find(1), 1);
}

TEST(DenseIdMap, EraseFreesHeldResources) {
  DenseIdMap<std::shared_ptr<int>> map;
  auto value = std::make_shared<int>(42);
  map.emplace(3, value);
  EXPECT_EQ(value.use_count(), 2);
  map.emplace(4, nullptr);  // keeps the window alive past id 3
  EXPECT_TRUE(map.erase(3));
  // The slot is reset on erase, not on window reuse.
  EXPECT_EQ(value.use_count(), 1);
}

}  // namespace
}  // namespace splicer::common
