// ShardedScheduler: mailbox drain order, barrier clamping, cross-shard
// cancellation at barriers, drive() windowing/fast-forward, and the
// interleaving-independence contract (same results for any worker count).

#include "sim/sharded_scheduler.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/scheduler.h"
#include "sim/thread_pool.h"

namespace splicer::sim {
namespace {

EngineEvent tagged(std::uint64_t a) {
  EngineEvent event;
  event.kind = EngineEvent::Kind::kRouterTimer;
  event.a = a;
  return event;
}

/// One shard: a scheduler plus a log of (fire time, tag) in firing order.
struct Shard final : EventSink {
  Scheduler scheduler;
  std::vector<std::pair<Time, std::uint64_t>> log;

  Shard() { scheduler.set_sink(this); }
  void handle_event(const EngineEvent& event) override {
    log.emplace_back(scheduler.now(), event.a);
  }
};

std::vector<Scheduler*> schedulers_of(std::vector<Shard>& shards) {
  std::vector<Scheduler*> out;
  for (auto& s : shards) out.push_back(&s.scheduler);
  return out;
}

TEST(ShardedScheduler, ValidatesConstruction) {
  std::vector<Shard> shards(1);
  EXPECT_THROW(ShardedScheduler({}, 0.01), std::invalid_argument);
  EXPECT_THROW(ShardedScheduler({nullptr}, 0.01), std::invalid_argument);
  EXPECT_THROW(ShardedScheduler(schedulers_of(shards), 0.0),
               std::invalid_argument);
}

TEST(ShardedScheduler, PostValidatesArguments) {
  std::vector<Shard> shards(2);
  ShardedScheduler sharded(schedulers_of(shards), 0.01);
  EXPECT_THROW(sharded.post(2, 0, 0.0, tagged(1)), std::out_of_range);
  EXPECT_THROW(sharded.post(0, 2, 0.0, tagged(1)), std::out_of_range);
  EXPECT_THROW(sharded.post(0, 1, 0.0, EngineEvent{}), std::invalid_argument);
}

TEST(ShardedScheduler, DrainsInDestinationSourceEmissionOrder) {
  std::vector<Shard> shards(3);
  ShardedScheduler sharded(schedulers_of(shards), 0.01);

  // All mail is late (when < barrier), so every message clamps onto the
  // same timestamp and only the drain order decides the firing order.
  sharded.post(2, 0, 0.001, tagged(20));
  sharded.post(2, 0, 0.002, tagged(21));  // same lane: emission order
  sharded.post(1, 0, 0.003, tagged(10));
  sharded.post(0, 0, 0.004, tagged(0));
  EXPECT_TRUE(sharded.mail_pending());

  sharded.drain_mailboxes(0.05);
  EXPECT_FALSE(sharded.mail_pending());
  EXPECT_EQ(sharded.messages_delivered(), 4u);

  shards[0].scheduler.run();
  ASSERT_EQ(shards[0].log.size(), 4u);
  // Source ascending, then emission order within the (2, 0) lane.
  EXPECT_EQ(shards[0].log[0], (std::pair<Time, std::uint64_t>{0.05, 0}));
  EXPECT_EQ(shards[0].log[1], (std::pair<Time, std::uint64_t>{0.05, 10}));
  EXPECT_EQ(shards[0].log[2], (std::pair<Time, std::uint64_t>{0.05, 20}));
  EXPECT_EQ(shards[0].log[3], (std::pair<Time, std::uint64_t>{0.05, 21}));
}

TEST(ShardedScheduler, FutureMailKeepsItsTimestamp) {
  std::vector<Shard> shards(2);
  ShardedScheduler sharded(schedulers_of(shards), 0.01);
  sharded.post(0, 1, 0.5, tagged(7));   // future: keeps 0.5
  sharded.post(0, 1, 0.002, tagged(8)); // late: clamps to the barrier
  sharded.drain_mailboxes(0.01);
  shards[1].scheduler.run();
  ASSERT_EQ(shards[1].log.size(), 2u);
  EXPECT_EQ(shards[1].log[0], (std::pair<Time, std::uint64_t>{0.01, 8}));
  EXPECT_EQ(shards[1].log[1], (std::pair<Time, std::uint64_t>{0.5, 7}));
}

TEST(ShardedScheduler, CrossShardCancelAtBarrier) {
  // The coordinator may cancel another shard's pending event while all
  // workers are parked at a barrier (that is the only safe moment); a
  // cancelled event never fires, and cancelling it twice is detected.
  std::vector<Shard> shards(2);
  ShardedScheduler sharded(schedulers_of(shards), 0.01);
  const auto id = shards[1].scheduler.at(0.02, tagged(99));
  shards[1].scheduler.at(0.03, tagged(1));

  EXPECT_TRUE(sharded.shard(1).cancel(id));
  EXPECT_FALSE(sharded.shard(1).cancel(id));

  ThreadPool pool(2);
  class Runner final : public ShardedScheduler::ShardRunner {
   public:
    explicit Runner(ShardedScheduler& s) : sharded_(s) {}
    std::size_t run_shard(std::size_t shard, Time until) override {
      return sharded_.shard(shard).run(until);
    }
    void on_barrier(Time) override {}

   private:
    ShardedScheduler& sharded_;
  } runner(sharded);
  sharded.drive(pool, runner);

  ASSERT_EQ(shards[1].log.size(), 1u);
  EXPECT_EQ(shards[1].log[0].second, 1u);
}

/// Drive harness: runs each shard's scheduler and records the windows.
class RecordingRunner : public ShardedScheduler::ShardRunner {
 public:
  explicit RecordingRunner(ShardedScheduler& sharded) : sharded_(sharded) {}

  std::size_t run_shard(std::size_t shard, Time until) override {
    return sharded_.shard(shard).run(until);
  }
  void on_barrier(Time barrier) override { barriers.push_back(barrier); }
  void before_window(Time window_end) override { windows.push_back(window_end); }

  std::vector<Time> barriers;
  std::vector<Time> windows;

 protected:
  ShardedScheduler& sharded_;
};

TEST(ShardedScheduler, DriveFastForwardsOverEmptyEpochs) {
  std::vector<Shard> shards(2);
  ShardedScheduler sharded(schedulers_of(shards), 0.01);
  shards[0].scheduler.at(0.005, tagged(1));
  shards[1].scheduler.at(0.095, tagged(2));

  ThreadPool pool(2);
  RecordingRunner runner(sharded);
  const auto total = sharded.drive(pool, runner);

  EXPECT_EQ(total, 2u);
  // First window covers 0.005 -> (0, 0.01]; the next pending event is at
  // 0.095, so the loop jumps straight to (0.01, 0.1] instead of grinding
  // through eight empty epochs.
  ASSERT_EQ(runner.windows.size(), 2u);
  EXPECT_DOUBLE_EQ(runner.windows[0], 0.01);
  EXPECT_DOUBLE_EQ(runner.windows[1], 0.1);
  EXPECT_EQ(sharded.barriers(), 2u);
  EXPECT_DOUBLE_EQ(shards[0].log.at(0).first, 0.005);
  EXPECT_DOUBLE_EQ(shards[1].log.at(0).first, 0.095);
}

TEST(ShardedScheduler, DriveStopsAtHardStop) {
  std::vector<Shard> shards(2);
  ShardedScheduler sharded(schedulers_of(shards), 0.01);
  shards[0].scheduler.at(0.004, tagged(1));
  shards[0].scheduler.at(0.0061, tagged(2));  // past the stop: abandoned
  shards[1].scheduler.at(5.0, tagged(3));     // far past: abandoned

  class StopRunner final : public RecordingRunner {
   public:
    using RecordingRunner::RecordingRunner;
    [[nodiscard]] Time hard_stop() const override { return 0.006; }
  };

  ThreadPool pool(2);
  StopRunner runner(sharded);
  EXPECT_EQ(sharded.drive(pool, runner), 1u);
  // The window end itself clamps to the stop, not the grid.
  ASSERT_EQ(runner.windows.size(), 1u);
  EXPECT_DOUBLE_EQ(runner.windows[0], 0.006);
  EXPECT_EQ(shards[0].log.size(), 1u);
  EXPECT_TRUE(shards[1].log.empty());
}

TEST(ShardedScheduler, BeforeWindowCanMaterialiseWorkForTheWindow) {
  // next_work_time() advertises work the schedulers cannot see; drive sizes
  // the window to cover it and before_window() materialises it, so it fires
  // at its true timestamp inside that window.
  std::vector<Shard> shards(2);
  ShardedScheduler sharded(schedulers_of(shards), 0.01);

  class InjectingRunner final : public RecordingRunner {
   public:
    using RecordingRunner::RecordingRunner;
    [[nodiscard]] Time next_work_time() const override {
      return injected ? Scheduler::kForever : 0.042;
    }
    void before_window(Time window_end) override {
      RecordingRunner::before_window(window_end);
      if (!injected && 0.042 <= window_end) {
        sharded_.shard(1).at(0.042, tagged(5));
        injected = true;
      }
    }
    bool injected = false;
  };

  ThreadPool pool(2);
  InjectingRunner runner(sharded);
  EXPECT_EQ(sharded.drive(pool, runner), 1u);
  ASSERT_EQ(shards[1].log.size(), 1u);
  EXPECT_DOUBLE_EQ(shards[1].log[0].first, 0.042);
  ASSERT_EQ(runner.windows.size(), 1u);
  EXPECT_DOUBLE_EQ(runner.windows[0], 0.05);
}

/// Ping-pong runner: every fired event with a > 0 posts a successor to the
/// next shard; the full message cascade must be identical no matter how
/// many workers execute it.
struct PingPongShard final : EventSink {
  Scheduler scheduler;
  std::vector<std::pair<Time, std::uint64_t>> log;
  ShardedScheduler* sharded = nullptr;
  std::size_t index = 0;

  PingPongShard() { scheduler.set_sink(this); }
  void handle_event(const EngineEvent& event) override {
    log.emplace_back(scheduler.now(), event.a);
    if (event.a > 0) {
      const std::size_t to = (index + 1) % sharded->shard_count();
      sharded->post(index, to, scheduler.now() + 0.003, tagged(event.a - 1));
    }
  }
};

std::vector<std::vector<std::pair<Time, std::uint64_t>>> run_ping_pong(
    std::size_t workers) {
  constexpr std::size_t kShards = 4;
  std::vector<PingPongShard> shards(kShards);
  std::vector<Scheduler*> schedulers;
  for (auto& s : shards) schedulers.push_back(&s.scheduler);
  ShardedScheduler sharded(std::move(schedulers), 0.01);
  for (std::size_t i = 0; i < kShards; ++i) {
    shards[i].sharded = &sharded;
    shards[i].index = i;
    // Two independent cascades per shard, deliberately colliding in time.
    shards[i].scheduler.at(0.001 * static_cast<double>(i + 1), tagged(12));
    shards[i].scheduler.at(0.002, tagged(6));
  }

  ThreadPool pool(workers);
  class Runner final : public ShardedScheduler::ShardRunner {
   public:
    explicit Runner(ShardedScheduler& s) : sharded_(s) {}
    std::size_t run_shard(std::size_t shard, Time until) override {
      return sharded_.shard(shard).run(until);
    }
    void on_barrier(Time) override {}

   private:
    ShardedScheduler& sharded_;
  } runner(sharded);
  sharded.drive(pool, runner);

  std::vector<std::vector<std::pair<Time, std::uint64_t>>> logs;
  for (auto& s : shards) logs.push_back(std::move(s.log));
  return logs;
}

TEST(ShardedScheduler, OutcomeIsIndependentOfWorkerCount) {
  const auto serial = run_ping_pong(1);
  const auto two = run_ping_pong(2);
  const auto four = run_ping_pong(4);
  std::size_t fired = 0;
  for (const auto& log : serial) fired += log.size();
  EXPECT_GT(fired, 8u * 13u / 2u);  // the cascades actually ran
  EXPECT_EQ(serial, two);
  EXPECT_EQ(serial, four);
}

TEST(ShardedScheduler, RepeatedRunsAreIdentical) {
  const auto a = run_ping_pong(4);
  const auto b = run_ping_pong(4);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace splicer::sim
