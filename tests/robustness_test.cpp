// Cross-seed robustness sweeps: the headline orderings must not be
// artifacts of one RNG stream, and core invariants must hold across
// topology families and parameter corners.

#include <gtest/gtest.h>

#include "common/log.h"
#include "routing/experiment.h"

namespace splicer::routing {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, SplicerLeadsNaiveAndLandmarkOnEverySeed) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.topology.nodes = 80;
  config.placement.candidate_count = 8;
  config.workload.payment_count = 300;
  config.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(config);
  const auto splicer = run_scheme(scenario, Scheme::kSplicer);
  const auto naive = run_scheme(scenario, Scheme::kShortestPath);
  const auto landmark = run_scheme(scenario, Scheme::kLandmark);
  EXPECT_GT(splicer.tsr(), naive.tsr()) << "seed " << GetParam();
  EXPECT_GT(splicer.tsr(), landmark.tsr()) << "seed " << GetParam();
  EXPECT_GT(splicer.normalized_throughput(), naive.normalized_throughput())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(101, 202, 303, 404, 505));

class TopologyFamilyTest : public ::testing::TestWithParam<bool> {};

TEST_P(TopologyFamilyTest, PipelineWorksOnBothTopologyFamilies) {
  ScenarioConfig config;
  config.seed = 7;
  config.topology.nodes = 120;
  config.topology.scale_free = GetParam();
  config.placement.candidate_count = 8;
  config.workload.payment_count = 300;
  config.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(config);
  const auto m = run_scheme(scenario, Scheme::kSplicer);
  EXPECT_EQ(m.payments_completed + m.payments_failed, 300u);
  EXPECT_GT(m.tsr(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Families, TopologyFamilyTest, ::testing::Bool());

TEST(ParameterCorners, ExtremeFundScarcity) {
  ScenarioConfig config;
  config.seed = 9;
  config.topology.nodes = 60;
  config.topology.fund_scale = 0.05;  // starved channels
  config.placement.candidate_count = 6;
  config.workload.payment_count = 200;
  config.workload.horizon_seconds = 5.0;
  const auto scenario = prepare_scenario(config);
  for (const auto scheme : comparison_schemes()) {
    const auto m = run_scheme(scenario, scheme);
    // Sanity only: no crashes, conservation (checked in-engine), resolution.
    EXPECT_EQ(m.payments_completed + m.payments_failed, 200u)
        << to_string(scheme);
  }
}

TEST(ParameterCorners, ExtremeAbundance) {
  ScenarioConfig config;
  config.seed = 10;
  config.topology.nodes = 60;
  config.topology.fund_scale = 50.0;  // effectively unconstrained funds
  config.placement.candidate_count = 6;
  config.workload.payment_count = 200;
  config.workload.horizon_seconds = 5.0;
  const auto scenario = prepare_scenario(config);
  const auto m = run_scheme(scenario, Scheme::kSplicer);
  EXPECT_GT(m.tsr(), 0.9);  // nothing should fail with unlimited funds
}

TEST(ParameterCorners, SinglePaymentWorkload) {
  ScenarioConfig config;
  config.seed = 11;
  config.topology.nodes = 40;
  config.placement.candidate_count = 4;
  config.workload.payment_count = 1;
  config.workload.horizon_seconds = 0.5;
  const auto scenario = prepare_scenario(config);
  for (const auto scheme : comparison_schemes()) {
    const auto m = run_scheme(scenario, scheme);
    EXPECT_EQ(m.payments_generated, 1u) << to_string(scheme);
  }
}

TEST(ParameterCorners, TinyUpdateTime) {
  ScenarioConfig config;
  config.seed = 12;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 150;
  config.workload.horizon_seconds = 4.0;
  const auto scenario = prepare_scenario(config);
  SchemeConfig scheme_config;
  scheme_config.protocol.tau_s = 0.01;  // 10 ms updates
  const auto m = run_scheme(scenario, Scheme::kSplicer, scheme_config);
  EXPECT_GT(m.tsr(), 0.3);
  EXPECT_GT(m.messages.probe_messages, 0u);
}

TEST(LogFacility, LevelsFilter) {
  using namespace splicer::common;
  const auto previous = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_line(LogLevel::kDebug, "should be dropped silently");
  LogMessage(LogLevel::kInfo) << "also dropped " << 42;
  set_log_level(previous);
}

}  // namespace
}  // namespace splicer::routing
