// Cross-seed robustness sweeps: the headline orderings must not be
// artifacts of one RNG stream, and core invariants must hold across
// topology families and parameter corners — including the hostile-world
// scenario pack (fault injection, channel churn, adversarial policies),
// whose churn storms must never wedge liquidity in any scheme.

#include <gtest/gtest.h>

#include "common/log.h"
#include "routing/experiment.h"
#include "routing/sharded_engine.h"

namespace splicer::routing {
namespace {

class SeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweepTest, SplicerLeadsNaiveAndLandmarkOnEverySeed) {
  ScenarioConfig config;
  config.seed = GetParam();
  config.topology.nodes = 80;
  config.placement.candidate_count = 8;
  config.workload.payment_count = 300;
  config.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(config);
  const auto splicer = run_scheme(scenario, Scheme::kSplicer);
  const auto naive = run_scheme(scenario, Scheme::kShortestPath);
  const auto landmark = run_scheme(scenario, Scheme::kLandmark);
  EXPECT_GT(splicer.tsr(), naive.tsr()) << "seed " << GetParam();
  EXPECT_GT(splicer.tsr(), landmark.tsr()) << "seed " << GetParam();
  EXPECT_GT(splicer.normalized_throughput(), naive.normalized_throughput())
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweepTest,
                         ::testing::Values(101, 202, 303, 404, 505));

class TopologyFamilyTest : public ::testing::TestWithParam<bool> {};

TEST_P(TopologyFamilyTest, PipelineWorksOnBothTopologyFamilies) {
  ScenarioConfig config;
  config.seed = 7;
  config.topology.nodes = 120;
  config.topology.scale_free = GetParam();
  config.placement.candidate_count = 8;
  config.workload.payment_count = 300;
  config.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(config);
  const auto m = run_scheme(scenario, Scheme::kSplicer);
  EXPECT_EQ(m.payments_completed + m.payments_failed, 300u);
  EXPECT_GT(m.tsr(), 0.3);
}

INSTANTIATE_TEST_SUITE_P(Families, TopologyFamilyTest, ::testing::Bool());

TEST(ParameterCorners, ExtremeFundScarcity) {
  ScenarioConfig config;
  config.seed = 9;
  config.topology.nodes = 60;
  config.topology.fund_scale = 0.05;  // starved channels
  config.placement.candidate_count = 6;
  config.workload.payment_count = 200;
  config.workload.horizon_seconds = 5.0;
  const auto scenario = prepare_scenario(config);
  for (const auto scheme : comparison_schemes()) {
    const auto m = run_scheme(scenario, scheme);
    // Sanity only: no crashes, conservation (checked in-engine), resolution.
    EXPECT_EQ(m.payments_completed + m.payments_failed, 200u)
        << to_string(scheme);
  }
}

TEST(ParameterCorners, ExtremeAbundance) {
  ScenarioConfig config;
  config.seed = 10;
  config.topology.nodes = 60;
  config.topology.fund_scale = 50.0;  // effectively unconstrained funds
  config.placement.candidate_count = 6;
  config.workload.payment_count = 200;
  config.workload.horizon_seconds = 5.0;
  const auto scenario = prepare_scenario(config);
  const auto m = run_scheme(scenario, Scheme::kSplicer);
  EXPECT_GT(m.tsr(), 0.9);  // nothing should fail with unlimited funds
}

TEST(ParameterCorners, SinglePaymentWorkload) {
  ScenarioConfig config;
  config.seed = 11;
  config.topology.nodes = 40;
  config.placement.candidate_count = 4;
  config.workload.payment_count = 1;
  config.workload.horizon_seconds = 0.5;
  const auto scenario = prepare_scenario(config);
  for (const auto scheme : comparison_schemes()) {
    const auto m = run_scheme(scenario, scheme);
    EXPECT_EQ(m.payments_generated, 1u) << to_string(scheme);
  }
}

TEST(ParameterCorners, TinyUpdateTime) {
  ScenarioConfig config;
  config.seed = 12;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 150;
  config.workload.horizon_seconds = 4.0;
  const auto scenario = prepare_scenario(config);
  SchemeConfig scheme_config;
  scheme_config.protocol.tau_s = 0.01;  // 10 ms updates
  const auto m = run_scheme(scenario, Scheme::kSplicer, scheme_config);
  EXPECT_GT(m.tsr(), 0.3);
  EXPECT_GT(m.messages.probe_messages, 0u);
}

class HostileSeedSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(HostileSeedSweepTest, FaultInjectionPreservesConservationOnEverySeed) {
  // Node faults at a rate that downs most of the network over the run:
  // every payment still resolves exactly once, the engine's in-run funds
  // conservation check holds (finish_run() throws otherwise), and nothing
  // stays resident at quiescence.
  ScenarioConfig config;
  config.seed = GetParam();
  config.topology.nodes = 80;
  config.placement.candidate_count = 8;
  config.workload.payment_count = 300;
  config.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(config);
  SchemeConfig scheme_config;
  scheme_config.engine.hostile.fault_rate = 4.0;
  scheme_config.engine.hostile.mean_down_s = 0.4;
  scheme_config.engine.hostile.seed = GetParam() * 1315423911u + 1;
  for (const auto scheme : comparison_schemes()) {
    const auto m = run_scheme(scenario, scheme, scheme_config);
    EXPECT_EQ(m.payments_completed + m.payments_failed, 300u)
        << to_string(scheme) << " seed " << GetParam();
    EXPECT_GT(m.mutation_events, 0u) << to_string(scheme);
    EXPECT_EQ(m.resident_tus_at_end, 0u) << to_string(scheme);
    EXPECT_EQ(m.wedged_queue_value, 0) << to_string(scheme);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HostileSeedSweepTest,
                         ::testing::Values(61, 62, 63, 64, 65));

TEST(DeadlockUnderChurn, StormNeverWedgesAnySchemeOrSettlementMode) {
  // The stress gate: a combined fault + churn + policy storm across all six
  // schemes, exact and batched settlement, sequential and 4-shard
  // execution. A TU holding a lock on a channel that closes must unwind
  // (refund) rather than park forever, and queue accounting must release
  // every queued token — zero resident TUs and zero wedged queue value at
  // quiescence, in every combination.
  ScenarioConfig config;
  config.seed = 57;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 200;
  config.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(config);

  SchemeConfig storm;
  storm.engine.hostile.fault_rate = 3.0;
  storm.engine.hostile.mean_down_s = 0.5;
  storm.engine.hostile.churn_rate = 4.0;
  storm.engine.hostile.mean_closed_s = 0.5;
  storm.engine.hostile.fee_policy_rate = 1.0;
  storm.engine.hostile.timelock_rate = 1.0;
  storm.engine.hostile.timelock_budget = 16;

  const Scheme all_six[] = {Scheme::kSplicer,  Scheme::kSpider,
                            Scheme::kFlash,    Scheme::kLandmark,
                            Scheme::kA2l,      Scheme::kShortestPath};
  for (const auto scheme : all_six) {
    for (const double epoch_s : {0.0, 0.010}) {
      for (const std::uint32_t shards : {1u, 4u}) {
        SchemeConfig scheme_config = storm;
        scheme_config.engine.settlement_epoch_s = epoch_s;
        ShardedEngineConfig sharded;
        sharded.shards = shards;
        const auto m =
            shards == 1
                ? run_scheme(scenario, scheme, scheme_config)
                : run_scheme_sharded(scenario, scheme, scheme_config, sharded);
        const auto label = std::string(to_string(scheme)) + " epoch=" +
                           std::to_string(epoch_s) + " shards=" +
                           std::to_string(shards);
        EXPECT_EQ(m.payments_completed + m.payments_failed, 200u) << label;
        EXPECT_GT(m.mutation_events, 0u) << label;
        EXPECT_EQ(m.resident_tus_at_end, 0u) << label;
        EXPECT_EQ(m.wedged_queue_value, 0) << label;
        EXPECT_EQ(m.tus_delivered + m.tus_failed, m.tus_sent) << label;
      }
    }
  }
}

TEST(DeadlockUnderChurn, ChurnFailuresCarryTheChannelClosedReason) {
  // A churn-only storm must attribute its TU failures to kChannelClosed
  // (with kNodeOffline impossible: no fault mutator is active).
  ScenarioConfig config;
  config.seed = 58;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 300;
  config.workload.horizon_seconds = 6.0;
  const auto scenario = prepare_scenario(config);
  SchemeConfig scheme_config;
  scheme_config.engine.hostile.churn_rate = 6.0;
  scheme_config.engine.hostile.mean_closed_s = 1.0;
  std::uint64_t closed_failures = 0;
  for (const auto scheme : comparison_schemes()) {
    const auto m = run_scheme(scenario, scheme, scheme_config);
    const auto reason = [&m](FailReason r) {
      return m.tu_fail_reasons[static_cast<std::size_t>(r)] +
             m.payment_fail_reasons[static_cast<std::size_t>(r)];
    };
    closed_failures += reason(FailReason::kChannelClosed);
    EXPECT_EQ(reason(FailReason::kNodeOffline), 0u) << to_string(scheme);
  }
  EXPECT_GT(closed_failures, 0u);
}

TEST(LogFacility, LevelsFilter) {
  using namespace splicer::common;
  const auto previous = log_level();
  set_log_level(LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
  log_line(LogLevel::kDebug, "should be dropped silently");
  LogMessage(LogLevel::kInfo) << "also dropped " << 42;
  set_log_level(previous);
}

}  // namespace
}  // namespace splicer::routing
