// Forwarding-fee accounting (paper eq. 24): fees are transfers to the
// forwarding hubs, never sinks; senders pay value + downstream fees; the
// receiver gets exactly the value.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "routing/engine.h"
#include "routing/splicer_router.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

TEST(FeeAccounting, HubEarnsTheConfiguredMargin) {
  // Two hubs, one trunk; drive one-way traffic until prices (and hence
  // fees) become non-zero, then verify hub gains = sender losses - receiver
  // gains across the run.
  graph::Graph g(4);
  g.add_edge(0, 1);  // spoke s
  g.add_edge(1, 2);  // trunk
  g.add_edge(2, 3);  // spoke r
  pcn::Network net =
      pcn::Network::with_uniform_funds(std::move(g), whole_tokens(2000));

  std::vector<pcn::Payment> payments;
  for (int i = 0; i < 120; ++i) {
    pcn::Payment p;
    p.id = i + 1;
    p.sender = 0;
    p.receiver = 3;
    p.value = whole_tokens(10);
    p.arrival_time = 0.05 + 0.08 * i;
    p.deadline = p.arrival_time + 3.0;
    payments.push_back(p);
  }
  SplicerRouter::Config rc;
  rc.protocol.k_paths = 1;
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, rc);
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(std::move(net), payments, router, config);
  const auto m = engine.run();
  ASSERT_GT(m.payments_completed, 10u);

  const auto& network = engine.network();
  const auto side = [&](pcn::ChannelId c, pcn::NodeId node) {
    const auto& ch = network.channel(c);
    return ch.available(ch.direction_from(node)) +
           ch.locked(ch.direction_from(node));
  };
  // Hub 1's wealth: its side of the sender spoke + its side of the trunk.
  const pcn::Amount hub1 = side(0, 1) + side(1, 1);
  const pcn::Amount hub2 = side(1, 2) + side(2, 2);
  const pcn::Amount sender = side(0, 0);
  const pcn::Amount receiver = side(2, 3);

  // Initial wealth: 2000 per channel side.
  const pcn::Amount initial_hub = whole_tokens(4000);
  const pcn::Amount delivered = m.value_completed;
  // Receiver gained at least the completed value (plus any partials).
  EXPECT_GE(receiver - whole_tokens(2000), delivered);
  // Sender paid at least what was delivered (fees make it strictly more
  // once prices are positive; allow equality when fees stayed zero).
  EXPECT_LE(sender, whole_tokens(2000) - delivered);
  // Hubs never lose money by forwarding.
  EXPECT_GE(hub1 + hub2, 2 * initial_hub - 1);
}

TEST(FeeAccounting, FeesAreZeroWhenPricesAreZero) {
  // Balanced light traffic keeps prices at zero -> hop amounts equal the
  // value (fee = T_fee * xi = 0).
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(1, 2);
  g.add_edge(2, 3);
  pcn::Network net =
      pcn::Network::with_uniform_funds(std::move(g), whole_tokens(5000));
  std::vector<pcn::Payment> payments;
  pcn::Payment p;
  p.id = 1;
  p.sender = 0;
  p.receiver = 3;
  p.value = whole_tokens(4);
  p.arrival_time = 0.1;
  p.deadline = 3.1;
  payments.push_back(p);

  SplicerRouter::Config rc;
  rc.protocol.k_paths = 1;
  SplicerRouter router({1, 1, 2, 2}, {1, 2}, rc);
  EngineConfig config;
  Engine engine(std::move(net), payments, router, config);
  const auto m = engine.run();
  ASSERT_EQ(m.payments_completed, 1u);
  // Receiver got exactly the value: its spoke side grew by exactly 4.
  const auto& ch = engine.network().channel(2);
  EXPECT_EQ(ch.available(ch.direction_from(3)), whole_tokens(5004));
}

}  // namespace
}  // namespace splicer::routing
