#include "common/table.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace splicer::common {
namespace {

TEST(Table, RenderAlignsColumns) {
  Table t({"a", "long-header", "c"});
  t.add_row({"1", "2", "3"});
  const std::string out = t.render();
  EXPECT_NE(out.find("long-header"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
}

TEST(Table, NumericSetters) {
  Table t({"x", "y", "z"});
  const auto row = t.add_row();
  t.set(row, 0, 1.23456, 2);
  t.set(row, 1, static_cast<std::int64_t>(42));
  t.set(row, 2, "s");
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("1.23"), std::string::npos);
  EXPECT_NE(csv.find("42"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, EmptyHeaderThrows) {
  EXPECT_THROW(Table({}), std::invalid_argument);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"v"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.to_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, WriteCsvRoundTrips) {
  Table t({"k", "v"});
  t.add_row({"x", "1"});
  const std::string path = testing::TempDir() + "/splicer_table_test.csv";
  t.write_csv(path);
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "k,v");
  std::remove(path.c_str());
}

TEST(Table, WriteCsvBadPathThrows) {
  Table t({"k"});
  EXPECT_THROW(t.write_csv("/nonexistent-dir-xyz/file.csv"), std::runtime_error);
}

TEST(Format, Double) {
  EXPECT_EQ(format_double(3.14159, 2), "3.14");
  EXPECT_EQ(format_double(-1.0, 0), "-1");
}

TEST(Format, Percent) {
  EXPECT_EQ(format_percent(0.931), "93.1%");
  EXPECT_EQ(format_percent(1.0, 0), "100%");
}

}  // namespace
}  // namespace splicer::common
