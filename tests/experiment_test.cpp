// Scenario preparation + cross-scheme integration checks (the machinery
// behind the Fig. 7/8 benches).

#include "routing/experiment.h"

#include <gtest/gtest.h>

#include "graph/metrics.h"
#include "routing/sharded_engine.h"

namespace splicer::routing {
namespace {

constexpr Scheme kAllSchemes[] = {Scheme::kSplicer,  Scheme::kSpider,
                                  Scheme::kFlash,    Scheme::kLandmark,
                                  Scheme::kA2l,      Scheme::kShortestPath};

/// Field-by-field equality of two metrics blocks, excluding shard_barriers
/// (a sequential run has none by definition). Bitwise on every double.
void expect_metrics_identical(const EngineMetrics& a, const EngineMetrics& b,
                              const std::string& label) {
  EXPECT_EQ(a.payments_generated, b.payments_generated) << label;
  EXPECT_EQ(a.payments_completed, b.payments_completed) << label;
  EXPECT_EQ(a.payments_failed, b.payments_failed) << label;
  EXPECT_EQ(a.value_generated, b.value_generated) << label;
  EXPECT_EQ(a.value_completed, b.value_completed) << label;
  EXPECT_EQ(a.tus_sent, b.tus_sent) << label;
  EXPECT_EQ(a.tus_delivered, b.tus_delivered) << label;
  EXPECT_EQ(a.tus_failed, b.tus_failed) << label;
  EXPECT_EQ(a.tus_marked, b.tus_marked) << label;
  EXPECT_EQ(a.tu_fail_reasons, b.tu_fail_reasons) << label;
  EXPECT_EQ(a.payment_fail_reasons, b.payment_fail_reasons) << label;
  EXPECT_EQ(a.messages.data_hops, b.messages.data_hops) << label;
  EXPECT_EQ(a.messages.ack_messages, b.messages.ack_messages) << label;
  EXPECT_EQ(a.messages.probe_messages, b.messages.probe_messages) << label;
  EXPECT_EQ(a.messages.sync_messages, b.messages.sync_messages) << label;
  EXPECT_EQ(a.messages.control_messages, b.messages.control_messages) << label;
  EXPECT_EQ(a.simulated_seconds, b.simulated_seconds) << label;
  EXPECT_EQ(a.scheduler_events, b.scheduler_events) << label;
  EXPECT_EQ(a.settlement_flushes, b.settlement_flushes) << label;
  EXPECT_EQ(a.settlements_batched, b.settlements_batched) << label;
  EXPECT_EQ(a.peak_payment_buffer, b.peak_payment_buffer) << label;
  EXPECT_EQ(a.peak_resident_states, b.peak_resident_states) << label;
  EXPECT_EQ(a.states_evicted, b.states_evicted) << label;
  EXPECT_EQ(a.completion_delay_stats.count(), b.completion_delay_stats.count())
      << label;
  EXPECT_EQ(a.completion_delay_stats.sum(), b.completion_delay_stats.sum())
      << label;
  EXPECT_EQ(a.tus_per_payment_stats.count(), b.tus_per_payment_stats.count())
      << label;
  EXPECT_EQ(a.tus_per_payment_stats.sum(), b.tus_per_payment_stats.sum())
      << label;
  EXPECT_EQ(a.failed_delivered_value, b.failed_delivered_value) << label;
  EXPECT_EQ(a.cross_shard_messages, b.cross_shard_messages) << label;
}

ScenarioConfig small_config(std::uint64_t seed = 7) {
  ScenarioConfig config;
  config.seed = seed;
  config.topology.nodes = 80;
  config.placement.candidate_count = 8;
  config.workload.payment_count = 400;
  config.workload.horizon_seconds = 8.0;
  return config;
}

TEST(Scenario, PreparationIsConsistent) {
  const auto scenario = prepare_scenario(small_config());
  EXPECT_EQ(scenario.raw.node_count(), 80u);
  EXPECT_GE(scenario.multi_star.hubs.size(), 1u);
  EXPECT_EQ(scenario.payments.size(), 400u);
  // Clients exclude all hubs.
  for (const auto client : scenario.clients) {
    EXPECT_FALSE(scenario.multi_star.is_hub[client]);
    EXPECT_NE(client, scenario.single_star.hubs.front());
  }
  // Payment endpoints are clients.
  for (const auto& p : scenario.payments) {
    EXPECT_FALSE(scenario.multi_star.is_hub[p.sender]);
    EXPECT_FALSE(scenario.multi_star.is_hub[p.receiver]);
  }
}

TEST(Scenario, DeterministicAcrossCalls) {
  const auto a = prepare_scenario(small_config(11));
  const auto b = prepare_scenario(small_config(11));
  ASSERT_EQ(a.payments.size(), b.payments.size());
  for (std::size_t i = 0; i < a.payments.size(); ++i) {
    EXPECT_EQ(a.payments[i].sender, b.payments[i].sender);
    EXPECT_EQ(a.payments[i].value, b.payments[i].value);
  }
  EXPECT_EQ(a.multi_star.hubs, b.multi_star.hubs);
}

TEST(Scenario, ScaleFreeVariant) {
  auto config = small_config();
  config.topology.scale_free = true;
  const auto scenario = prepare_scenario(config);
  EXPECT_TRUE(graph::is_connected(scenario.raw.topology()));
}

TEST(RunScheme, AllSchemesProduceSaneMetrics) {
  const auto scenario = prepare_scenario(small_config());
  for (const auto scheme :
       {Scheme::kSplicer, Scheme::kSpider, Scheme::kFlash, Scheme::kLandmark,
        Scheme::kA2l, Scheme::kShortestPath}) {
    const auto m = run_scheme(scenario, scheme);
    EXPECT_EQ(m.payments_generated, 400u) << to_string(scheme);
    EXPECT_GE(m.tsr(), 0.0);
    EXPECT_LE(m.tsr(), 1.0);
    EXPECT_GE(m.normalized_throughput(), 0.0);
    EXPECT_LE(m.normalized_throughput(), 1.0);
    EXPECT_EQ(m.payments_completed + m.payments_failed, 400u)
        << to_string(scheme) << ": every payment must resolve";
    EXPECT_GT(m.messages.total(), 0u);
  }
}

TEST(RunScheme, SplicerBeatsNaiveBaselines) {
  const auto scenario = prepare_scenario(small_config(21));
  const auto splicer = run_scheme(scenario, Scheme::kSplicer);
  const auto naive = run_scheme(scenario, Scheme::kShortestPath);
  const auto landmark = run_scheme(scenario, Scheme::kLandmark);
  EXPECT_GT(splicer.tsr(), naive.tsr());
  EXPECT_GT(splicer.tsr(), landmark.tsr());
}

TEST(RunScheme, SplicerBeatsSpiderOnSameWorkload) {
  // The paper's headline comparison; the deadlock-prone workload favours
  // hub consolidation + global-state gating.
  const auto scenario = prepare_scenario(small_config(22));
  const auto splicer = run_scheme(scenario, Scheme::kSplicer);
  const auto spider = run_scheme(scenario, Scheme::kSpider);
  EXPECT_GT(splicer.tsr(), spider.tsr());
  EXPECT_GT(splicer.normalized_throughput(), spider.normalized_throughput());
}

TEST(RunScheme, RepeatRunsAreIdentical) {
  const auto scenario = prepare_scenario(small_config(23));
  const auto a = run_scheme(scenario, Scheme::kSplicer);
  const auto b = run_scheme(scenario, Scheme::kSplicer);
  EXPECT_EQ(a.payments_completed, b.payments_completed);
  EXPECT_EQ(a.tus_sent, b.tus_sent);
  EXPECT_EQ(a.messages.total(), b.messages.total());
}

TEST(RunScheme, UpdateTimeSweepKeepsSplicerStable) {
  // Fig. 7(c) property: Splicer TSR stays roughly flat as tau grows, while
  // A2L (epoch-bound tumbler) degrades under load.
  auto config = small_config(24);
  config.workload.payment_count = 600;
  config.workload.horizon_seconds = 6.0;  // ~100/s: stresses the A2L hub
  const auto scenario = prepare_scenario(config);
  SchemeConfig fast, slow;
  fast.protocol.tau_s = 0.1;
  slow.protocol.tau_s = 1.0;
  const auto splicer_fast = run_scheme(scenario, Scheme::kSplicer, fast);
  const auto splicer_slow = run_scheme(scenario, Scheme::kSplicer, slow);
  const auto a2l_fast = run_scheme(scenario, Scheme::kA2l, fast);
  const auto a2l_slow = run_scheme(scenario, Scheme::kA2l, slow);
  EXPECT_GT(splicer_slow.tsr(), splicer_fast.tsr() - 0.15);
  EXPECT_LT(a2l_slow.tsr(), a2l_fast.tsr());
}

TEST(Scenario, StreamingModeMatchesMaterialisedRuns) {
  // streaming=true keeps Scenario::payments empty; every run re-derives
  // the identical stream from the stored RNG snapshot, so payment-level
  // outcomes are exactly those of the materialised path.
  auto config = small_config(31);
  auto streaming_config = config;
  streaming_config.workload.streaming = true;

  const auto materialised = prepare_scenario(config);
  const auto streaming = prepare_scenario(streaming_config);
  EXPECT_EQ(materialised.payments.size(), 400u);
  EXPECT_TRUE(streaming.payments.empty());

  for (const auto scheme : {Scheme::kSplicer, Scheme::kShortestPath}) {
    const auto a = run_scheme(materialised, scheme);
    const auto b = run_scheme(streaming, scheme);
    EXPECT_EQ(a.payments_generated, b.payments_generated) << to_string(scheme);
    EXPECT_EQ(a.payments_completed, b.payments_completed) << to_string(scheme);
    EXPECT_EQ(a.payments_failed, b.payments_failed) << to_string(scheme);
    EXPECT_EQ(a.value_completed, b.value_completed) << to_string(scheme);
    EXPECT_DOUBLE_EQ(a.completion_delay_stats.sum(),
                     b.completion_delay_stats.sum())
        << to_string(scheme);
  }
}

TEST(RunScheme, EvictionMatchesRetainedRunsForEveryScheme) {
  // Retention contract: retain_resolved only changes the memory profile.
  // Real schemes exercise the hard paths (multi-split retries that outlive
  // a synchronous payment resolution, batched-epoch deferred eviction), so
  // every reported metric must match the retained run bit for bit.
  const auto scenario = prepare_scenario(small_config(33));
  for (const double epoch_s : {0.0, 0.005}) {
    for (const auto scheme :
         {Scheme::kSplicer, Scheme::kSpider, Scheme::kFlash,
          Scheme::kLandmark, Scheme::kA2l, Scheme::kShortestPath}) {
      SchemeConfig config;
      config.engine.settlement_epoch_s = epoch_s;
      config.engine.retain_resolved = true;
      const auto a = run_scheme(scenario, scheme, config);
      config.engine.retain_resolved = false;
      const auto b = run_scheme(scenario, scheme, config);
      const auto label = std::string(to_string(scheme)) + " epoch " +
                         std::to_string(epoch_s);
      EXPECT_EQ(a.payments_completed, b.payments_completed) << label;
      EXPECT_EQ(a.payments_failed, b.payments_failed) << label;
      EXPECT_EQ(a.value_completed, b.value_completed) << label;
      EXPECT_DOUBLE_EQ(a.completion_delay_stats.sum(),
                       b.completion_delay_stats.sum())
          << label;
      EXPECT_DOUBLE_EQ(a.tus_per_payment_stats.sum(),
                       b.tus_per_payment_stats.sum())
          << label;
      EXPECT_EQ(a.failed_delivered_value, b.failed_delivered_value) << label;
      EXPECT_EQ(a.tus_sent, b.tus_sent) << label;
      EXPECT_EQ(a.tus_failed, b.tus_failed) << label;
      EXPECT_EQ(a.messages.total(), b.messages.total()) << label;
      EXPECT_EQ(a.scheduler_events, b.scheduler_events) << label;
      // The memory profile is the only difference.
      EXPECT_EQ(a.states_evicted, 0u) << label;
      EXPECT_EQ(b.states_evicted, b.payments_generated) << label;
      EXPECT_LT(b.peak_resident_states, a.peak_resident_states) << label;
    }
  }
}

TEST(Scenario, AlternativeWorkloadKindsRunEndToEnd) {
  for (const auto kind : {pcn::WorkloadKind::kBursty,
                          pcn::WorkloadKind::kHotspot}) {
    auto config = small_config(32);
    config.workload.kind = kind;
    config.workload.payment_count = 200;
    const auto scenario = prepare_scenario(config);
    EXPECT_EQ(scenario.payments.size(), 200u) << pcn::to_string(kind);
    const auto m = run_scheme(scenario, Scheme::kSplicer);
    EXPECT_EQ(m.payments_generated, 200u) << pcn::to_string(kind);
    EXPECT_EQ(m.payments_completed + m.payments_failed, 200u)
        << pcn::to_string(kind);
  }
}

TEST(RunSchemeSharded, OneShardIsByteIdenticalToSequential) {
  // The tentpole invariant: a 1-shard sharded run reproduces the sequential
  // engine bit for bit — same event stream, same RNG draws, same metrics —
  // for every scheme, in both instant and batched settlement modes.
  const auto scenario = prepare_scenario(small_config(41));
  for (const double epoch_s : {0.0, 0.005}) {
    for (const auto scheme : kAllSchemes) {
      SchemeConfig config;
      config.engine.settlement_epoch_s = epoch_s;
      ShardedEngineConfig sharded;
      sharded.shards = 1;
      const auto sequential = run_scheme(scenario, scheme, config);
      const auto one_shard = run_scheme_sharded(scenario, scheme, config, sharded);
      expect_metrics_identical(sequential, one_shard,
                               std::string(to_string(scheme)) + " epoch " +
                                   std::to_string(epoch_s));
      EXPECT_EQ(one_shard.cross_shard_messages, 0u) << to_string(scheme);
    }
  }
}

TEST(RunSchemeSharded, FourShardRunsAreByteIdenticalToEachOther) {
  // Fixed N determinism: two 4-shard runs of the same scenario must agree
  // on every metric bit regardless of thread interleaving; at least one
  // multi-hub scheme must actually exercise the cross-shard machinery.
  const auto scenario = prepare_scenario(small_config(42));
  std::uint64_t crossings = 0;
  for (const auto scheme : kAllSchemes) {
    SchemeConfig config;
    ShardedEngineConfig sharded;
    sharded.shards = 4;
    const auto a = run_scheme_sharded(scenario, scheme, config, sharded);
    const auto b = run_scheme_sharded(scenario, scheme, config, sharded);
    expect_metrics_identical(a, b, to_string(scheme));
    EXPECT_EQ(a.shard_barriers, b.shard_barriers) << to_string(scheme);
    EXPECT_EQ(a.payments_generated, 400u) << to_string(scheme);
    EXPECT_EQ(a.payments_completed + a.payments_failed, 400u)
        << to_string(scheme);
    crossings += a.cross_shard_messages;
  }
  EXPECT_GT(crossings, 0u);
}

TEST(RunSchemeSharded, ShardCountChangesQuantisationNotSanity) {
  // Different shard counts are different (documented) quantisations of the
  // same workload: outcomes need not match the sequential run bit for bit,
  // but every payment still resolves and success stays in a sane band.
  const auto scenario = prepare_scenario(small_config(43));
  const auto sequential = run_scheme(scenario, Scheme::kSplicer);
  for (const std::uint32_t shards : {2u, 4u}) {
    ShardedEngineConfig sharded;
    sharded.shards = shards;
    const auto m =
        run_scheme_sharded(scenario, Scheme::kSplicer, SchemeConfig{}, sharded);
    EXPECT_EQ(m.payments_generated, 400u) << shards;
    EXPECT_EQ(m.payments_completed + m.payments_failed, 400u) << shards;
    EXPECT_GT(m.cross_shard_messages, 0u) << shards;
    EXPECT_GT(m.shard_barriers, 0u) << shards;
    EXPECT_GT(m.tsr(), sequential.tsr() - 0.2) << shards;
  }
}

TEST(SchemeNames, Strings) {
  EXPECT_STREQ(to_string(Scheme::kSplicer), "Splicer");
  EXPECT_STREQ(to_string(Scheme::kSpider), "Spider");
  EXPECT_STREQ(to_string(Scheme::kFlash), "Flash");
  EXPECT_STREQ(to_string(Scheme::kLandmark), "Landmark");
  EXPECT_STREQ(to_string(Scheme::kA2l), "A2L");
  EXPECT_EQ(comparison_schemes().size(), 5u);
}

}  // namespace
}  // namespace splicer::routing
