// Parity gate for the incremental rate-control tick: the default mode
// (dirty-channel price updates, memoized probe sums, sleeping pairs) must
// be bit-identical to the forced legacy full sweep
// (EngineConfig::full_recompute_ticks) in everything observable — channel
// prices, pair diagnostics, channel generations, metrics — with the sole
// exception of the three tick-work counters that exist to measure the
// difference.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "routing/engine.h"
#include "routing/experiment.h"
#include "routing/sharded_engine.h"
#include "routing/spider_router.h"
#include "routing/splicer_router.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

// ---- direct engine-level parity (router state inspected) -------------------

pcn::Network hub_pair_network() {
  // Clients 0, 3 on hubs 1, 2; trunk 1-2. Clients 4, 5 never transact:
  // their spokes are the never-touched channels the incremental tick must
  // skip from the first tick on.
  graph::Graph g(6);
  g.add_edge(0, 1);  // spoke
  g.add_edge(1, 2);  // trunk
  g.add_edge(2, 3);  // spoke
  g.add_edge(1, 4);  // idle spoke
  g.add_edge(2, 5);  // idle spoke
  return pcn::Network::with_uniform_funds(std::move(g), whole_tokens(1000));
}

/// Two traffic bursts separated by a quiet gap: the gap retires channels
/// (prices decay to exact zero) and puts pairs to sleep; the second burst
/// exercises wake-on-demand, so both the skip and the re-activation paths
/// run before the comparison.
std::vector<pcn::Payment> bursty_stream(NodeId s, NodeId r, Amount v,
                                        PaymentId first_id) {
  std::vector<pcn::Payment> payments;
  PaymentId id = first_id;
  const auto burst = [&](double start, double seconds, double rate) {
    for (double t = start; t < start + seconds; t += 1.0 / rate) {
      pcn::Payment p;
      p.id = id++;
      p.sender = s;
      p.receiver = r;
      p.value = v;
      p.arrival_time = t;
      p.deadline = t + 3.0;
      payments.push_back(p);
    }
  };
  burst(0.05, 3.0, 4.0);
  burst(9.0, 2.0, 4.0);
  return payments;
}

std::vector<pcn::Payment> two_way_bursts() {
  auto payments = bursty_stream(0, 3, whole_tokens(12), 1);
  const auto reverse = bursty_stream(3, 0, whole_tokens(6), 1000);
  payments.insert(payments.end(), reverse.begin(), reverse.end());
  std::sort(payments.begin(), payments.end(), [](const auto& a, const auto& b) {
    return a.arrival_time < b.arrival_time;
  });
  for (std::size_t i = 0; i < payments.size(); ++i) payments[i].id = i + 1;
  return payments;
}

struct DirectRun {
  std::vector<double> prices;           // channel_price, every (channel, dir)
  std::vector<RateRouterBase::PathDiagnostics> diagnostics;
  std::vector<std::uint64_t> generations;  // per-channel mutation stamps
  EngineMetrics metrics;
};

template <typename RouterT>
DirectRun run_direct(RouterT& router, bool full_recompute,
                     double settlement_epoch_s) {
  EngineConfig config;
  config.queues_enabled = true;
  config.settlement_epoch_s = settlement_epoch_s;
  config.full_recompute_ticks = full_recompute;
  Engine engine(hub_pair_network(), two_way_bursts(), router, config);
  DirectRun run;
  run.metrics = engine.run();
  for (ChannelId c = 0; c < engine.network().channel_count(); ++c) {
    run.prices.push_back(router.channel_price(c, pcn::Direction::kForward));
    run.prices.push_back(router.channel_price(c, pcn::Direction::kBackward));
    run.generations.push_back(engine.network().channel(c).generation());
  }
  run.diagnostics = router.pair_diagnostics(0, 3);
  return run;
}

/// Everything of EngineMetrics that both tick modes must agree on, as a
/// flat double vector (exact for the integer fields in range). The three
/// tick-work counters are excluded — they are the one allowed difference.
std::vector<double> metric_signature(const EngineMetrics& m) {
  std::vector<double> sig{
      static_cast<double>(m.payments_generated),
      static_cast<double>(m.payments_completed),
      static_cast<double>(m.payments_failed),
      static_cast<double>(m.value_generated),
      static_cast<double>(m.value_completed),
      static_cast<double>(m.tus_sent),
      static_cast<double>(m.tus_delivered),
      static_cast<double>(m.tus_failed),
      static_cast<double>(m.tus_marked),
      static_cast<double>(m.messages.data_hops),
      static_cast<double>(m.messages.ack_messages),
      static_cast<double>(m.messages.probe_messages),
      static_cast<double>(m.messages.sync_messages),
      static_cast<double>(m.messages.control_messages),
      m.simulated_seconds,
      static_cast<double>(m.scheduler_events),
      static_cast<double>(m.settlement_flushes),
      static_cast<double>(m.settlements_batched),
      static_cast<double>(m.peak_payment_buffer),
      static_cast<double>(m.peak_resident_states),
      static_cast<double>(m.states_evicted),
      static_cast<double>(m.cross_shard_messages),
      static_cast<double>(m.shard_barriers),
      static_cast<double>(m.completion_delay_stats.count()),
      m.completion_delay_stats.sum(),
      m.completion_delay_stats.min(),
      m.completion_delay_stats.max(),
      static_cast<double>(m.tus_per_payment_stats.count()),
      m.tus_per_payment_stats.sum(),
      static_cast<double>(m.failed_delivered_value),
  };
  for (const auto v : m.tu_fail_reasons) sig.push_back(static_cast<double>(v));
  for (const auto v : m.payment_fail_reasons) {
    sig.push_back(static_cast<double>(v));
  }
  return sig;
}

void expect_runs_identical(const DirectRun& incremental,
                           const DirectRun& full) {
  ASSERT_EQ(incremental.prices.size(), full.prices.size());
  for (std::size_t i = 0; i < full.prices.size(); ++i) {
    EXPECT_EQ(incremental.prices[i], full.prices[i]) << "price slot " << i;
  }
  EXPECT_EQ(incremental.generations, full.generations);
  ASSERT_EQ(incremental.diagnostics.size(), full.diagnostics.size());
  for (std::size_t i = 0; i < full.diagnostics.size(); ++i) {
    EXPECT_EQ(incremental.diagnostics[i].rate_tps, full.diagnostics[i].rate_tps);
    EXPECT_EQ(incremental.diagnostics[i].window, full.diagnostics[i].window);
    EXPECT_EQ(incremental.diagnostics[i].price, full.diagnostics[i].price);
    EXPECT_EQ(incremental.diagnostics[i].outstanding,
              full.diagnostics[i].outstanding);
  }
  EXPECT_EQ(metric_signature(incremental.metrics),
            metric_signature(full.metrics));
  // The full sweep must report no skipped work; the incremental run must
  // report some (otherwise the fast path silently degraded to the sweep).
  EXPECT_EQ(full.metrics.price_updates_skipped, 0u);
  EXPECT_EQ(full.metrics.probe_sums_reused, 0u);
  EXPECT_GT(incremental.metrics.price_updates_skipped, 0u);
}

TEST(RateIncrementalTick, SplicerDirectParityPerHopSettlement) {
  SplicerRouter::Config config;
  config.protocol.k_paths = 1;
  SplicerRouter inc_router({1, 1, 2, 2, 1, 2}, {1, 2}, config);
  SplicerRouter full_router({1, 1, 2, 2, 1, 2}, {1, 2}, config);
  const auto incremental = run_direct(inc_router, false, 0.0);
  const auto full = run_direct(full_router, true, 0.0);
  expect_runs_identical(incremental, full);
  EXPECT_GT(incremental.metrics.payments_completed, 0u);
}

TEST(RateIncrementalTick, SplicerDirectParityBatchedSettlement) {
  SplicerRouter::Config config;
  config.protocol.k_paths = 1;
  SplicerRouter inc_router({1, 1, 2, 2, 1, 2}, {1, 2}, config);
  SplicerRouter full_router({1, 1, 2, 2, 1, 2}, {1, 2}, config);
  const auto incremental = run_direct(inc_router, false, 0.01);
  const auto full = run_direct(full_router, true, 0.01);
  expect_runs_identical(incremental, full);
}

TEST(RateIncrementalTick, SpiderDirectParity) {
  SpiderRouter inc_router;
  SpiderRouter full_router;
  const auto incremental = run_direct(inc_router, false, 0.0);
  const auto full = run_direct(full_router, true, 0.0);
  expect_runs_identical(incremental, full);
}

// ---- scenario-level parity (full pipeline, three schemes, shards) ----------

Scenario small_scenario() {
  ScenarioConfig config;
  config.seed = 7;
  config.topology.nodes = 60;
  config.placement.candidate_count = 6;
  config.workload.payment_count = 250;
  config.workload.horizon_seconds = 12.0;
  return prepare_scenario(config);
}

EngineMetrics run_mode(const Scenario& scenario, Scheme scheme, bool full,
                       double settlement_epoch_s) {
  SchemeConfig config;
  config.engine.settlement_epoch_s = settlement_epoch_s;
  config.engine.full_recompute_ticks = full;
  return run_scheme(scenario, scheme, config);
}

TEST(RateIncrementalTick, SchemeParityAcrossSettlementModes) {
  const auto scenario = small_scenario();
  for (const auto scheme : {Scheme::kSplicer, Scheme::kSpider, Scheme::kA2l}) {
    for (const double epoch_s : {0.0, 0.01}) {
      const auto incremental = run_mode(scenario, scheme, false, epoch_s);
      const auto full = run_mode(scenario, scheme, true, epoch_s);
      EXPECT_EQ(metric_signature(incremental), metric_signature(full))
          << to_string(scheme) << " epoch=" << epoch_s;
      EXPECT_EQ(full.price_updates_skipped, 0u);
      EXPECT_EQ(full.probe_sums_reused, 0u);
      if (scheme != Scheme::kA2l) {
        // A2L is not a rate router; its counters stay zero in both modes.
        EXPECT_GT(incremental.price_updates_skipped, 0u) << to_string(scheme);
        EXPECT_GT(incremental.probe_sums_reused, 0u) << to_string(scheme);
        EXPECT_GT(incremental.active_pairs_peak, 0u) << to_string(scheme);
      }
    }
  }
}

TEST(RateIncrementalTick, ShardedParity) {
  // Each shard's engine keeps its own dirty list and router, so the tick
  // modes must agree shard count by shard count (sharded runs follow a
  // barrier grid of their own and are not compared against sequential
  // here — that contract has its own suite).
  const auto scenario = small_scenario();
  for (const std::uint32_t shards : {1u, 4u}) {
    ShardedEngineConfig sharded;
    sharded.shards = shards;
    EngineMetrics by_mode[2];
    for (const bool full : {false, true}) {
      SchemeConfig config;
      config.engine.full_recompute_ticks = full;
      by_mode[full ? 1 : 0] =
          run_scheme_sharded(scenario, Scheme::kSplicer, config, sharded);
    }
    EXPECT_EQ(metric_signature(by_mode[0]), metric_signature(by_mode[1]))
        << "shards=" << shards;
    EXPECT_EQ(by_mode[1].price_updates_skipped, 0u);
    EXPECT_GT(by_mode[0].price_updates_skipped, 0u) << "shards=" << shards;
  }
}

}  // namespace
}  // namespace splicer::routing
