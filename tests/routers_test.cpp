// Per-scheme router behaviour on small controlled networks.

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "routing/a2l_router.h"
#include "routing/engine.h"
#include "routing/flash_router.h"
#include "routing/landmark_router.h"
#include "routing/shortest_path_router.h"
#include "routing/spider_router.h"

namespace splicer::routing {
namespace {

using common::whole_tokens;

std::vector<pcn::Payment> single_payment(NodeId s, NodeId r, Amount v) {
  pcn::Payment p;
  p.id = 1;
  p.sender = s;
  p.receiver = r;
  p.value = v;
  p.arrival_time = 0.1;
  p.deadline = 3.1;
  return {p};
}

pcn::Network rich_ws_network(std::uint64_t seed, std::size_t n = 60) {
  common::Rng rng(seed);
  auto g = graph::watts_strogatz(n, 6, 0.2, rng);
  return pcn::Network::with_uniform_funds(std::move(g), whole_tokens(500));
}

TEST(ShortestPathRouterTest, DeliversSimplePayment) {
  ShortestPathRouter router;
  EngineConfig config;
  config.queues_enabled = false;
  Engine engine(rich_ws_network(1), single_payment(0, 30, whole_tokens(20)),
                router, config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  EXPECT_EQ(m.tus_sent, 1u);  // unsplit
}

TEST(ShortestPathRouterTest, FailsWhenValueExceedsBottleneck) {
  ShortestPathRouter router;
  EngineConfig config;
  config.queues_enabled = false;
  Engine engine(rich_ws_network(2), single_payment(0, 30, whole_tokens(600)),
                router, config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 0u);
}

TEST(SpiderRouterTest, SplitsAcrossPathsAndDelivers) {
  SpiderRouter router;
  EngineConfig config;
  config.queues_enabled = true;
  Engine engine(rich_ws_network(3), single_payment(0, 30, whole_tokens(40)),
                router, config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  EXPECT_GE(m.tus_sent, 10u);  // 40 tokens / Max-TU 4
}

TEST(SpiderRouterTest, DecisionDelayGrowsWithNetworkSize) {
  SpiderRouter::Config config = SpiderRouter::make_default_config();
  config.compute_base_s = 0.001;
  config.compute_per_node_s = 1e-5;
  // Verify via completion delay difference between a small and big net.
  SpiderRouter small_router(config);
  EngineConfig engine_config;
  Engine small_engine(rich_ws_network(4, 30),
                      single_payment(0, 20, whole_tokens(5)), small_router,
                      engine_config);
  const auto small_m = small_engine.run();

  SpiderRouter big_router(config);
  Engine big_engine(rich_ws_network(4, 600),
                    single_payment(0, 20, whole_tokens(5)), big_router,
                    engine_config);
  const auto big_m = big_engine.run();
  ASSERT_EQ(small_m.payments_completed, 1u);
  ASSERT_EQ(big_m.payments_completed, 1u);
  EXPECT_GT(big_m.average_delay_s(), small_m.average_delay_s());
}

TEST(FlashRouterTest, MicePaymentTakesPrecomputedPath) {
  FlashRouter::Config config;
  config.elephant_threshold = whole_tokens(50);
  FlashRouter router(config);
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  Engine engine(rich_ws_network(5), single_payment(0, 30, whole_tokens(10)),
                router, engine_config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  EXPECT_EQ(m.tus_sent, 1u);  // mice are unsplit
}

TEST(FlashRouterTest, ElephantSplitsAlongMaxFlow) {
  FlashRouter::Config config;
  config.elephant_threshold = whole_tokens(50);
  FlashRouter router(config);
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  // 600 tokens exceeds any single 500-token channel side: must split.
  Engine engine(rich_ws_network(6), single_payment(0, 30, whole_tokens(900)),
                router, engine_config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  EXPECT_GE(m.tus_sent, 2u);
}

TEST(FlashRouterTest, ImpossiblePaymentFails) {
  FlashRouter router;
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  // More than the sender's total adjacent capacity.
  Engine engine(rich_ws_network(7), single_payment(0, 30, whole_tokens(50000)),
                router, engine_config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 0u);
  EXPECT_GT(m.payment_fail_reasons[static_cast<std::size_t>(
                FailReason::kInsufficientFunds)],
            0u);
}

TEST(LandmarkRouterTest, DeliversViaLandmarks) {
  LandmarkRouter router;
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  Engine engine(rich_ws_network(8), single_payment(0, 30, whole_tokens(25)),
                router, engine_config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  EXPECT_GE(m.tus_sent, 2u);  // split across landmarks
}

TEST(LandmarkRouterTest, PruneLoopsProducesSimplePaths) {
  graph::Path looped;
  looped.nodes = {0, 1, 2, 1, 3};
  looped.edges = {10, 11, 11, 12};
  const auto pruned = LandmarkRouter::prune_loops(looped);
  EXPECT_EQ(pruned.nodes, (std::vector<graph::NodeId>{0, 1, 3}));
  EXPECT_EQ(pruned.edges, (std::vector<graph::EdgeId>{10, 12}));
}

TEST(LandmarkRouterTest, PruneLoopsIdentityOnSimplePath) {
  graph::Path simple;
  simple.nodes = {4, 5, 6};
  simple.edges = {1, 2};
  const auto pruned = LandmarkRouter::prune_loops(simple);
  EXPECT_EQ(pruned.nodes, simple.nodes);
  EXPECT_EQ(pruned.edges, simple.edges);
}

TEST(A2lRouterTest, RoutesThroughHubOnStar) {
  auto net = pcn::Network::with_uniform_funds(graph::star(10), whole_tokens(100));
  A2lRouter::Config config;
  config.hub = 0;
  A2lRouter router(config);
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  Engine engine(std::move(net), single_payment(3, 7, whole_tokens(15)), router,
                engine_config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 1u);
  EXPECT_EQ(m.messages.data_hops, 2u);  // sender->hub->receiver
}

TEST(A2lRouterTest, HubCryptoSerialisesAndOverloads) {
  auto net = pcn::Network::with_uniform_funds(graph::star(20), whole_tokens(1000));
  A2lRouter::Config config;
  config.hub = 0;
  config.hub_crypto_s = 0.5;  // absurdly slow hub
  config.epoch_s = 0.0;
  A2lRouter router(config);
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  // 20 payments arriving at once: only ~6 fit within the 3 s deadline.
  std::vector<pcn::Payment> payments;
  for (int i = 0; i < 20; ++i) {
    pcn::Payment p;
    p.id = i + 1;
    p.sender = 1 + (i % 9);
    p.receiver = 10 + (i % 9);
    p.value = whole_tokens(1);
    p.arrival_time = 0.1;
    p.deadline = 3.1;
    payments.push_back(p);
  }
  Engine engine(std::move(net), payments, router, engine_config);
  const auto m = engine.run();
  EXPECT_LT(m.tsr(), 0.5);
  EXPECT_GT(m.payment_fail_reasons[static_cast<std::size_t>(
                FailReason::kHubOverload)],
            5u);
}

TEST(A2lRouterTest, EpochBoundaryDelaysProcessing) {
  auto net = pcn::Network::with_uniform_funds(graph::star(6), whole_tokens(100));
  A2lRouter::Config config;
  config.hub = 0;
  config.epoch_s = 1.0;  // payment at 0.1 waits for t = 1.0
  A2lRouter router(config);
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  Engine engine(std::move(net), single_payment(1, 2, whole_tokens(5)), router,
                engine_config);
  const auto m = engine.run();
  ASSERT_EQ(m.payments_completed, 1u);
  EXPECT_GT(m.average_delay_s(), 0.85);
}

TEST(A2lRouterTest, NonStarEndpointFails) {
  // Receiver not connected to the hub: payment cannot route.
  graph::Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(0, 2);
  g.add_edge(2, 3);  // 3 reaches hub only through 2
  auto net = pcn::Network::with_uniform_funds(std::move(g), whole_tokens(100));
  A2lRouter::Config config;
  config.hub = 0;
  A2lRouter router(config);
  EngineConfig engine_config;
  engine_config.queues_enabled = false;
  Engine engine(std::move(net), single_payment(1, 3, whole_tokens(5)), router,
                engine_config);
  const auto m = engine.run();
  EXPECT_EQ(m.payments_completed, 0u);
  EXPECT_EQ(m.payment_fail_reasons[static_cast<std::size_t>(FailReason::kNoPath)],
            1u);
}

}  // namespace
}  // namespace splicer::routing
