// splicer-lint self-test: fixture files with known violations pin the exact
// (line, rule) output of every rule, allowlist honoring, bare-allow
// rejection and path scoping — plus the repo-is-clean self-gate, which
// lints the real tree exactly as tools/ci.sh does and requires zero
// findings. If a rule regex regresses (misses a violation or fires on
// clean idiom), a fixture pin breaks before CI does.
//
// The call_graph/ fixture corpus pins phase-2 resolution behaviour
// (overload sets, method-vs-free-function preference, deliberately
// unresolved member calls), the LintInterproc suites pin one true positive
// and one annotated negative per graph rule — including violations only
// visible through the call graph — and the Cli suites pin the documented
// exit codes and the json/sarif output formats.

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "splicer_lint/call_graph.h"
#include "splicer_lint/cli.h"
#include "splicer_lint/lint_core.h"

namespace splicer::lint {
namespace {

using LineRule = std::pair<int, std::string>;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SPLICER_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<LineRule> line_rules(const std::vector<Finding>& findings) {
  std::vector<LineRule> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.line, f.rule);
  return out;
}

TEST(LintRules, TableListsEveryRuleOnce) {
  const std::vector<std::string> expected = {
      "ambient-nondet", "unordered-decl", "unordered-iter",
      "std-function",   "slab-alias",     "writer-lanes",
      "writer-lanes-transitive", "hotpath-alloc", "slab-alias-escape",
      "float-order",    "stale-allow"};
  const auto& table = rules();
  ASSERT_EQ(table.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(table[i].id, expected[i]);
    EXPECT_FALSE(table[i].scope.empty());
    EXPECT_FALSE(table[i].summary.empty());
  }
}

TEST(LintAmbientNondet, FlagsClocksEntropyAndEnv) {
  const std::string src = read_fixture("ambient_nondet.cpp");
  const auto findings = lint_source("src/sim/fixture.cpp", src);
  const std::vector<LineRule> expected = {{8, "ambient-nondet"},
                                          {12, "ambient-nondet"},
                                          {13, "ambient-nondet"},
                                          {21, "ambient-nondet"},
                                          {22, "ambient-nondet"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintAmbientNondet, ScopedToDeterminismCriticalDirs) {
  const std::string src = read_fixture("ambient_nondet.cpp");
  // Outside src/sim, src/routing, src/pcn the rule does not apply: bench
  // harnesses may legitimately read wall clocks.
  EXPECT_TRUE(lint_source("bench/fixture.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/common/fixture.cpp", src).empty());
}

TEST(LintUnordered, FlagsDeclsAndIterationHonorsAllows) {
  const std::string src = read_fixture("unordered.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  // Line 6: unannotated declaration. Line 13: range-for over a tracked
  // unordered member. Line 16: explicit .begin() walk. The annotated
  // declaration (line 8) and annotated loop (line 15) are suppressed.
  const std::vector<LineRule> expected = {{6, "unordered-decl"},
                                          {13, "unordered-iter"},
                                          {16, "unordered-iter"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintUnordered, CrossFileNamesComeFromOptions) {
  // Iterating a member whose unordered declaration lives in another file
  // (the header) is caught only when the tree pass feeds the name in.
  const std::string src =
      "int sum() {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : remap_) total += v;\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/pcn/fixture.cpp", src).empty());
  Options options;
  options.extra_unordered_names.push_back("remap_");
  const auto findings = lint_source("src/pcn/fixture.cpp", src, options);
  const std::vector<LineRule> expected = {{3, "unordered-iter"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintStdFunction, FlagsUsesAcrossSrcHonorsAllows) {
  const std::string src = read_fixture("std_function.cpp");
  const auto findings = lint_source("src/pcn/fixture.cpp", src);
  const std::vector<LineRule> expected = {{4, "std-function"}};
  EXPECT_EQ(line_rules(findings), expected);
  // The rule covers all of src/ (not just the hot dirs) but not tools or
  // bench harness code.
  EXPECT_EQ(line_rules(lint_source("src/common/fixture.cpp", src)), expected);
  EXPECT_TRUE(lint_source("bench/fixture.cpp", src).empty());
  EXPECT_TRUE(lint_source("tools/fixture.cpp", src).empty());
}

TEST(LintSlabAlias, FlagsStaleRefsAndForwardHookDispatch) {
  const std::string src = read_fixture("slab_alias.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  // Line 8: 'state' used after the send_tu on line 7 relocated the slab.
  // Line 22: send_tu dispatched from inside on_tu_forwarded. The
  // guard-clause idiom (fail_payment + return inside an if block, line 14)
  // must NOT poison the use on line 17.
  const std::vector<LineRule> expected = {{8, "slab-alias"},
                                          {22, "slab-alias"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintSlabAlias, ScopedToRoutingDir) {
  const std::string src = read_fixture("slab_alias.cpp");
  EXPECT_TRUE(lint_source("src/common/fixture.cpp", src).empty());
}

TEST(LintWriterLanes, FlagsMailboxStateOutsideOwner) {
  const std::string src = read_fixture("writer_lanes.cpp");
  const auto findings = lint_source("src/sim/fixture.cpp", src);
  const std::vector<LineRule> expected = {{5, "writer-lanes"},
                                          {6, "writer-lanes"},
                                          {7, "writer-lanes"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintWriterLanes, FlagsRateRouterActiveSetOutsideOwner) {
  const std::string src = read_fixture("active_list.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  const std::vector<LineRule> expected = {{7, "writer-lanes"},
                                          {8, "writer-lanes"},
                                          {9, "writer-lanes"},
                                          {10, "writer-lanes"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintWriterLanes, FlagsMutationStateOutsideOwner) {
  const std::string src = read_fixture("mutation_lanes.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  const std::vector<LineRule> expected = {{7, "writer-lanes"},
                                          {8, "writer-lanes"},
                                          {9, "writer-lanes"},
                                          {10, "writer-lanes"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintWriterLanes, OwningComponentIsExempt) {
  EXPECT_TRUE(lint_source("src/sim/sharded_scheduler.cpp",
                          "void f() { lanes_[0].clear(); }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/routing/engine.cpp",
                          "void f() { handoff_inbox_.clear(); }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/routing/rate_protocol.cpp",
                          "void f() { active_pairs_.clear(); }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/routing/engine.cpp",
                          "void f() { staged_mutations_[0].reset(); }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/routing/engine.h",
                          "void f() { node_down_depth_.clear(); }\n")
                  .empty());
}

TEST(LintAllowMeta, BareAndUnknownAllowsAreFindingsAndSuppressNothing) {
  const std::string src = read_fixture("allow_meta.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  const std::vector<LineRule> expected = {
      {4, "bare-allow"},     {5, "unordered-decl"}, {7, "unknown-rule"},
      {8, "unordered-decl"}, {10, "bare-allow"},    {11, "unordered-decl"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintClean, CleanFileHasNoFindings) {
  const std::string src = read_fixture("clean.cpp");
  EXPECT_TRUE(lint_source("src/routing/fixture.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/sim/fixture.cpp", src).empty());
}

TEST(LintLiterals, BannedTokensInsideStringsAndCommentsDoNotMatch) {
  const std::string src =
      "// rand() and lanes_ and std::function<void()> in a comment\n"
      "const char* doc = \"getenv system_clock lanes_\";\n"
      "const char* raw = R\"(std::unordered_map<int, int> ghost_;)\";\n";
  EXPECT_TRUE(lint_source("src/sim/fixture.cpp", src).empty());
}

// The self-gate: the real tree, linted exactly as tools/ci.sh lints it,
// must be clean. Every suppression in src/ carries its reason; a new
// violation (or a new bare allow) fails this test before it fails CI.
TEST(LintRepo, TreeIsClean) {
  const auto findings = lint_tree(SPLICER_LINT_REPO_ROOT,
                                  {"src", "tools", "bench", "examples"});
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

// ---------------------------------------------------------------------------
// Scrubber edge cases
// ---------------------------------------------------------------------------

TEST(LintScrubber, RawStringWithEncodingPrefixAndDelimiter) {
  const std::string src =
      "const char* s = u8R\"delim(rand() lanes_ )quote\" still inside)delim\";"
      " int x = 0;\n";
  const auto lines = scrub_source(src);
  ASSERT_FALSE(lines.empty());
  // Everything between the custom delimiters is blanked — including the
  // lookalike terminator )quote" — and code after the literal survives.
  EXPECT_EQ(lines[0].code.find("rand"), std::string::npos);
  EXPECT_EQ(lines[0].code.find("still inside"), std::string::npos);
  EXPECT_NE(lines[0].code.find("int x = 0"), std::string::npos);
  EXPECT_TRUE(lint_source("src/sim/fixture.cpp", src).empty());
}

TEST(LintScrubber, UnterminatedRawStringAtEofScrubsToEnd) {
  const std::string src =
      "const char* s = R\"(never closed\n"
      "rand();\n"
      "lanes_.clear();\n";
  const auto lines = scrub_source(src);
  ASSERT_GE(lines.size(), 3u);
  EXPECT_EQ(lines[1].code.find("rand"), std::string::npos);
  EXPECT_EQ(lines[2].code.find("lanes_"), std::string::npos);
  EXPECT_TRUE(lint_source("src/sim/fixture.cpp", src).empty());
}

TEST(LintScrubber, AllowInsideRawStringIsInert) {
  const std::string src =
      "const char* doc = R\"(SPLICER_LINT_ALLOW(unordered-decl): fake)\";\n"
      "std::unordered_map<int, int> m_;\n";
  // The annotation text lives inside a literal (blanked code), not a
  // comment — it must suppress nothing.
  EXPECT_TRUE(collect_allows(scrub_source(src)).empty());
  const auto findings = lint_source("src/sim/fixture.cpp", src);
  const std::vector<LineRule> expected = {{2, "unordered-decl"}};
  EXPECT_EQ(line_rules(findings), expected);
}

// ---------------------------------------------------------------------------
// Call-graph fixture corpus
// ---------------------------------------------------------------------------

int find_unique(const CallGraph& graph, const std::string& qualified) {
  int found = -1;
  for (std::size_t i = 0; i < graph.functions().size(); ++i) {
    if (graph.qualified_name(static_cast<int>(i)) == qualified) {
      EXPECT_EQ(found, -1) << "duplicate definition of " << qualified;
      found = static_cast<int>(i);
    }
  }
  EXPECT_NE(found, -1) << qualified << " not indexed";
  return found;
}

std::vector<std::string> callee_names(const CallGraph& graph, int caller) {
  std::vector<std::string> names;
  for (const int callee : graph.out_edges()[static_cast<std::size_t>(caller)]) {
    names.push_back(graph.qualified_name(callee));
  }
  std::sort(names.begin(), names.end());
  return names;
}

CallGraph build_graph(const std::string& fixture, const std::string& vpath) {
  return CallGraph::build({FileContent{vpath, read_fixture(fixture)}});
}

TEST(CallGraphCorpus, ResolveBasic) {
  const CallGraph graph =
      build_graph("call_graph/resolve_basic.cpp", "src/sim/basic.cpp");
  ASSERT_EQ(graph.functions().size(), 4u);
  const int leaf = find_unique(graph, "leaf");
  const int caller = find_unique(graph, "caller");
  const int helper = find_unique(graph, "Widget::helper");
  const int run = find_unique(graph, "Widget::run");
  EXPECT_EQ(callee_names(graph, caller), std::vector<std::string>{"leaf"});
  EXPECT_EQ(callee_names(graph, helper), std::vector<std::string>{"leaf"});
  // run() resolves helper() to the sibling method and caller() to the free
  // function.
  EXPECT_EQ(callee_names(graph, run),
            (std::vector<std::string>{"Widget::helper", "caller"}));
  EXPECT_TRUE(callee_names(graph, leaf).empty());
  EXPECT_TRUE(graph.unresolved().empty());
}

TEST(CallGraphCorpus, OverloadsGetAnEdgeEach) {
  const CallGraph graph =
      build_graph("call_graph/overloads.cpp", "src/sim/overloads.cpp");
  const int use = find_unique(graph, "use");
  // Both pick(int) and pick(double) are indexed under one key; the call
  // fans out to the whole overload set.
  EXPECT_EQ(callee_names(graph, use),
            (std::vector<std::string>{"pick", "pick"}));
  EXPECT_TRUE(graph.unresolved().empty());
}

TEST(CallGraphCorpus, MethodShadowsFreeFunction) {
  const CallGraph graph =
      build_graph("call_graph/methods_vs_free.cpp", "src/sim/shadow.cpp");
  const int total = find_unique(graph, "Counter::total");
  const int outside = find_unique(graph, "outside");
  EXPECT_EQ(callee_names(graph, total),
            std::vector<std::string>{"Counter::tally"});
  EXPECT_EQ(callee_names(graph, outside), std::vector<std::string>{"tally"});
}

TEST(CallGraphCorpus, AmbiguousMemberCallIsUnresolved) {
  const CallGraph graph =
      build_graph("call_graph/unresolved.cpp", "src/sim/unresolved.cpp");
  const int drive = find_unique(graph, "drive");
  // obj.tick() matches both Alpha::tick and Beta::tick: no edge, one
  // recorded unresolved call naming both candidate scopes.
  EXPECT_TRUE(callee_names(graph, drive).empty());
  ASSERT_EQ(graph.unresolved().size(), 1u);
  const UnresolvedCall& u = graph.unresolved()[0];
  EXPECT_EQ(u.caller, drive);
  EXPECT_EQ(u.candidate_keys, 2);
  const CallSite& site =
      graph.functions()[static_cast<std::size_t>(u.caller)]
          .calls[static_cast<std::size_t>(u.call_index)];
  EXPECT_EQ(site.name, "tick");
}

TEST(CallGraphCorpus, OnlySrcFilesParticipate) {
  const CallGraph graph = CallGraph::build(
      {FileContent{"bench/basic.cpp", read_fixture("call_graph/resolve_basic.cpp")}});
  EXPECT_TRUE(graph.functions().empty());
}

// ---------------------------------------------------------------------------
// Interprocedural rules (lint_files over virtual src/ paths)
// ---------------------------------------------------------------------------

std::vector<Finding> lint_fixture_files(
    const std::vector<std::pair<std::string, std::string>>& path_fixture) {
  std::vector<FileContent> files;
  for (const auto& [vpath, fixture] : path_fixture) {
    files.push_back(FileContent{vpath, read_fixture(fixture)});
  }
  return lint_files(files);
}

TEST(LintInterproc, HotpathAllocFlagsReachableAllocHonorsAllow) {
  const auto findings = lint_fixture_files(
      {{"src/routing/hotpath_alloc.cpp", "hotpath_alloc.cpp"}});
  // The `new` two calls below handle_event is flagged; the annotated pool
  // refill is suppressed (and its allow is therefore not stale).
  const std::vector<LineRule> expected = {{19, "hotpath-alloc"}};
  EXPECT_EQ(line_rules(findings), expected);
  ASSERT_EQ(findings.size(), 1u);
  // The message carries the interprocedural evidence: the root-to-sink
  // call chain.
  EXPECT_NE(findings[0].message.find(
                "Engine::handle_event -> Engine::dispatch -> "
                "Engine::build_scratch"),
            std::string::npos)
      << findings[0].message;
}

TEST(LintInterproc, HotpathAllocNeedsAHotRoot) {
  // Same file without reachability from a hot entry point: helpers that no
  // handle_event/on_timer/run_protocol_tick reaches are not hot.
  const std::string src =
      "struct Cold {\n"
      "  void prepare() { data_ = new int[4]; }\n"
      "  int* data_ = nullptr;\n"
      "};\n";
  EXPECT_TRUE(lint_files({FileContent{"src/routing/cold.cpp", src}}).empty());
}

TEST(LintInterproc, SlabAliasEscapeFlagsEscapeHonorsAllow) {
  const auto findings =
      lint_fixture_files({{"src/routing/slab_escape.cpp", "slab_escape.cpp"}});
  const std::vector<LineRule> expected = {{16, "slab-alias-escape"}};
  EXPECT_EQ(line_rules(findings), expected);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("'state'"), std::string::npos);
  EXPECT_NE(findings[0].message.find("forward_one"), std::string::npos);
}

TEST(LintInterproc, SlabAliasEscapeScopedToRouting) {
  // The same shape outside src/routing is not slab state.
  const auto findings =
      lint_fixture_files({{"src/sim/slab_escape.cpp", "slab_escape.cpp"}});
  // Only the now-stale allow surfaces (its rule cannot fire here).
  const std::vector<LineRule> expected = {{21, "stale-allow"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintInterproc, FloatOrderFlagsHelperReachedFromMergeHonorsAllow) {
  const auto findings =
      lint_fixture_files({{"src/common/float_order.cpp", "float_order.cpp"}});
  const std::vector<LineRule> expected = {{15, "float-order"}};
  EXPECT_EQ(line_rules(findings), expected);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(
      findings[0].message.find("ShardStats::merge -> ShardStats::fold_in"),
      std::string::npos)
      << findings[0].message;
}

TEST(LintInterproc, WriterLanesTransitiveFlagsCallSiteOutsideOwner) {
  const auto findings = lint_fixture_files(
      {{"src/sim/sharded_scheduler.cpp", "writer_lanes_transitive_owner.cpp"},
       {"src/sim/shard_user.cpp", "writer_lanes_transitive_user.cpp"}});
  // bad_reset's call is flagged even though shard_user.cpp never names
  // lanes_ (the token rule is blind here); good_post goes through the
  // sanctioned API and excused_reset carries a reasoned allow.
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].file, "src/sim/shard_user.cpp");
  EXPECT_EQ(findings[0].line, 9);
  EXPECT_EQ(findings[0].rule, "writer-lanes-transitive");
  EXPECT_NE(findings[0].message.find("ShardedScheduler::clear_lane"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// stale-allow
// ---------------------------------------------------------------------------

TEST(LintStaleAllow, TreeRunFlagsRottedAllowKeepsUsedAllow) {
  const auto findings = lint_fixture_files(
      {{"src/routing/stale_allow.cpp", "stale_allow.cpp"}});
  const std::vector<LineRule> expected = {{10, "stale-allow"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintStaleAllow, FileLocalLintDoesNotFlagStaleAllows) {
  // lint_source sees one file at a time — a rule that needs the tree could
  // legitimately fire later, so staleness is only decided in tree runs.
  const std::string src = read_fixture("stale_allow.cpp");
  EXPECT_TRUE(lint_source("src/routing/stale_allow.cpp", src).empty());
}

// ---------------------------------------------------------------------------
// CLI: exit codes and output formats
// ---------------------------------------------------------------------------

namespace fs = std::filesystem;

fs::path make_cli_tree(const std::string& name, const std::string& source) {
  const fs::path root = fs::path(testing::TempDir()) / ("splicer_lint_" + name);
  fs::remove_all(root);
  fs::create_directories(root / "src" / "sim");
  std::ofstream(root / "src" / "sim" / "probe.cpp") << source;
  return root;
}

struct CliResult {
  int code = 0;
  std::string out;
  std::string err;
};

CliResult cli(const fs::path& root, const std::vector<std::string>& args) {
  std::ostringstream out;
  std::ostringstream err;
  const int code = run_cli(root, args, out, err);
  return CliResult{code, out.str(), err.str()};
}

TEST(CliExitCodes, CleanTreeIsZero) {
  const fs::path root = make_cli_tree("clean", "int f() { return 2; }\n");
  const CliResult r = cli(root, {"--error-on-findings", "src"});
  EXPECT_EQ(r.code, kExitClean);
  EXPECT_NE(r.out.find("splicer_lint: clean"), std::string::npos);
}

TEST(CliExitCodes, FindingsAreOneOnlyWithErrorFlag) {
  const fs::path root = make_cli_tree("dirty", "int f() { return rand(); }\n");
  EXPECT_EQ(cli(root, {"--error-on-findings", "src"}).code, kExitFindings);
  // Without the flag findings are reported but the exit stays 0 (report
  // mode for local runs).
  const CliResult r = cli(root, {"src"});
  EXPECT_EQ(r.code, kExitClean);
  EXPECT_NE(r.out.find("[ambient-nondet]"), std::string::npos);
}

TEST(CliExitCodes, UsageAndIoErrorsAreTwo) {
  const fs::path root = make_cli_tree("usage", "int f() { return 2; }\n");
  EXPECT_EQ(cli(root, {}).code, kExitUsage);                    // no paths
  EXPECT_EQ(cli(root, {"--wat", "src"}).code, kExitUsage);      // bad option
  EXPECT_EQ(cli(root, {"--format", "xml", "src"}).code, kExitUsage);
  EXPECT_EQ(cli(root, {"--format"}).code, kExitUsage);          // missing arg
  EXPECT_EQ(cli(root, {"no/such/dir"}).code, kExitUsage);       // IO error
}

TEST(CliExitCodes, InformationalInvocationsAreZero) {
  const fs::path root = make_cli_tree("info", "int f() { return 2; }\n");
  EXPECT_EQ(cli(root, {"--help"}).code, kExitClean);
  const CliResult r = cli(root, {"--list-rules"});
  EXPECT_EQ(r.code, kExitClean);
  for (const RuleInfo& rule : rules()) {
    EXPECT_NE(r.out.find(std::string(rule.id)), std::string::npos)
        << "missing rule " << rule.id;
  }
}

TEST(CliFormats, JsonCarriesFindings) {
  const fs::path root = make_cli_tree("json", "int f() { return rand(); }\n");
  const CliResult r = cli(root, {"--format", "json", "src"});
  EXPECT_EQ(r.code, kExitClean);
  EXPECT_EQ(r.out.compare(0, 2, "[\n"), 0);
  EXPECT_NE(r.out.find("\"rule\": \"ambient-nondet\""), std::string::npos);
  EXPECT_NE(r.out.find("\"file\": \"src/sim/probe.cpp\""), std::string::npos);
}

TEST(CliFormats, SarifCarriesSchemaRuleTableAndResults) {
  const fs::path root = make_cli_tree("sarif", "int f() { return rand(); }\n");
  const CliResult r = cli(root, {"--format", "sarif", "src"});
  EXPECT_EQ(r.code, kExitClean);
  EXPECT_NE(r.out.find("sarif-2.1.0.json"), std::string::npos);
  EXPECT_NE(r.out.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(r.out.find("\"name\": \"splicer_lint\""), std::string::npos);
  EXPECT_NE(r.out.find("\"ruleId\": \"ambient-nondet\""), std::string::npos);
  // The driver advertises every rule, not just the ones that fired.
  for (const RuleInfo& rule : rules()) {
    EXPECT_NE(r.out.find("\"id\": \"" + std::string(rule.id) + "\""),
              std::string::npos)
        << "missing rule " << rule.id;
  }
}

TEST(CliFormats, DumpCallgraphListsFunctionsAndUnresolved) {
  const fs::path root = make_cli_tree(
      "dump", "int leaf() { return 1; }\nint top() { return leaf(); }\n");
  const CliResult r = cli(root, {"--dump-callgraph", "src"});
  EXPECT_EQ(r.code, kExitClean);
  EXPECT_NE(r.out.find("functions: 2"), std::string::npos);
  EXPECT_NE(r.out.find("-> leaf"), std::string::npos);
  EXPECT_NE(r.out.find("unresolved calls: 0"), std::string::npos);
}

TEST(LintRenderers, JsonIsExactAndEscaped) {
  const std::vector<Finding> findings = {
      {"src/a.cpp", 3, "float-order", "msg \"quoted\"\twith\ttabs"}};
  EXPECT_EQ(to_json(findings),
            "[\n"
            "  {\"file\": \"src/a.cpp\", \"line\": 3, \"rule\": "
            "\"float-order\", \"message\": \"msg \\\"quoted\\\"\\twith\\t"
            "tabs\"}\n"
            "]\n");
  EXPECT_EQ(to_json({}), "[\n]\n");
}

}  // namespace
}  // namespace splicer::lint
