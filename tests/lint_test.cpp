// splicer-lint self-test: fixture files with known violations pin the exact
// (line, rule) output of every rule, allowlist honoring, bare-allow
// rejection and path scoping — plus the repo-is-clean self-gate, which
// lints the real tree exactly as tools/ci.sh does and requires zero
// findings. If a rule regex regresses (misses a violation or fires on
// clean idiom), a fixture pin breaks before CI does.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "splicer_lint/lint_core.h"

namespace splicer::lint {
namespace {

using LineRule = std::pair<int, std::string>;

std::string read_fixture(const std::string& name) {
  const std::string path = std::string(SPLICER_LINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

std::vector<LineRule> line_rules(const std::vector<Finding>& findings) {
  std::vector<LineRule> out;
  out.reserve(findings.size());
  for (const Finding& f : findings) out.emplace_back(f.line, f.rule);
  return out;
}

TEST(LintRules, TableListsEveryRuleOnce) {
  const std::vector<std::string> expected = {
      "ambient-nondet", "unordered-decl", "unordered-iter",
      "std-function",   "slab-alias",     "writer-lanes"};
  const auto& table = rules();
  ASSERT_EQ(table.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(table[i].id, expected[i]);
    EXPECT_FALSE(table[i].scope.empty());
    EXPECT_FALSE(table[i].summary.empty());
  }
}

TEST(LintAmbientNondet, FlagsClocksEntropyAndEnv) {
  const std::string src = read_fixture("ambient_nondet.cpp");
  const auto findings = lint_source("src/sim/fixture.cpp", src);
  const std::vector<LineRule> expected = {{8, "ambient-nondet"},
                                          {12, "ambient-nondet"},
                                          {13, "ambient-nondet"},
                                          {21, "ambient-nondet"},
                                          {22, "ambient-nondet"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintAmbientNondet, ScopedToDeterminismCriticalDirs) {
  const std::string src = read_fixture("ambient_nondet.cpp");
  // Outside src/sim, src/routing, src/pcn the rule does not apply: bench
  // harnesses may legitimately read wall clocks.
  EXPECT_TRUE(lint_source("bench/fixture.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/common/fixture.cpp", src).empty());
}

TEST(LintUnordered, FlagsDeclsAndIterationHonorsAllows) {
  const std::string src = read_fixture("unordered.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  // Line 6: unannotated declaration. Line 13: range-for over a tracked
  // unordered member. Line 16: explicit .begin() walk. The annotated
  // declaration (line 8) and annotated loop (line 15) are suppressed.
  const std::vector<LineRule> expected = {{6, "unordered-decl"},
                                          {13, "unordered-iter"},
                                          {16, "unordered-iter"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintUnordered, CrossFileNamesComeFromOptions) {
  // Iterating a member whose unordered declaration lives in another file
  // (the header) is caught only when the tree pass feeds the name in.
  const std::string src =
      "int sum() {\n"
      "  int total = 0;\n"
      "  for (const auto& [k, v] : remap_) total += v;\n"
      "  return total;\n"
      "}\n";
  EXPECT_TRUE(lint_source("src/pcn/fixture.cpp", src).empty());
  Options options;
  options.extra_unordered_names.push_back("remap_");
  const auto findings = lint_source("src/pcn/fixture.cpp", src, options);
  const std::vector<LineRule> expected = {{3, "unordered-iter"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintStdFunction, FlagsUsesAcrossSrcHonorsAllows) {
  const std::string src = read_fixture("std_function.cpp");
  const auto findings = lint_source("src/pcn/fixture.cpp", src);
  const std::vector<LineRule> expected = {{4, "std-function"}};
  EXPECT_EQ(line_rules(findings), expected);
  // The rule covers all of src/ (not just the hot dirs) but not tools or
  // bench harness code.
  EXPECT_EQ(line_rules(lint_source("src/common/fixture.cpp", src)), expected);
  EXPECT_TRUE(lint_source("bench/fixture.cpp", src).empty());
  EXPECT_TRUE(lint_source("tools/fixture.cpp", src).empty());
}

TEST(LintSlabAlias, FlagsStaleRefsAndForwardHookDispatch) {
  const std::string src = read_fixture("slab_alias.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  // Line 8: 'state' used after the send_tu on line 7 relocated the slab.
  // Line 22: send_tu dispatched from inside on_tu_forwarded. The
  // guard-clause idiom (fail_payment + return inside an if block, line 14)
  // must NOT poison the use on line 17.
  const std::vector<LineRule> expected = {{8, "slab-alias"},
                                          {22, "slab-alias"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintSlabAlias, ScopedToRoutingDir) {
  const std::string src = read_fixture("slab_alias.cpp");
  EXPECT_TRUE(lint_source("src/common/fixture.cpp", src).empty());
}

TEST(LintWriterLanes, FlagsMailboxStateOutsideOwner) {
  const std::string src = read_fixture("writer_lanes.cpp");
  const auto findings = lint_source("src/sim/fixture.cpp", src);
  const std::vector<LineRule> expected = {{5, "writer-lanes"},
                                          {6, "writer-lanes"},
                                          {7, "writer-lanes"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintWriterLanes, FlagsRateRouterActiveSetOutsideOwner) {
  const std::string src = read_fixture("active_list.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  const std::vector<LineRule> expected = {{7, "writer-lanes"},
                                          {8, "writer-lanes"},
                                          {9, "writer-lanes"},
                                          {10, "writer-lanes"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintWriterLanes, OwningComponentIsExempt) {
  EXPECT_TRUE(lint_source("src/sim/sharded_scheduler.cpp",
                          "void f() { lanes_[0].clear(); }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/routing/engine.cpp",
                          "void f() { handoff_inbox_.clear(); }\n")
                  .empty());
  EXPECT_TRUE(lint_source("src/routing/rate_protocol.cpp",
                          "void f() { active_pairs_.clear(); }\n")
                  .empty());
}

TEST(LintAllowMeta, BareAndUnknownAllowsAreFindingsAndSuppressNothing) {
  const std::string src = read_fixture("allow_meta.cpp");
  const auto findings = lint_source("src/routing/fixture.cpp", src);
  const std::vector<LineRule> expected = {
      {4, "bare-allow"},     {5, "unordered-decl"}, {7, "unknown-rule"},
      {8, "unordered-decl"}, {10, "bare-allow"},    {11, "unordered-decl"}};
  EXPECT_EQ(line_rules(findings), expected);
}

TEST(LintClean, CleanFileHasNoFindings) {
  const std::string src = read_fixture("clean.cpp");
  EXPECT_TRUE(lint_source("src/routing/fixture.cpp", src).empty());
  EXPECT_TRUE(lint_source("src/sim/fixture.cpp", src).empty());
}

TEST(LintLiterals, BannedTokensInsideStringsAndCommentsDoNotMatch) {
  const std::string src =
      "// rand() and lanes_ and std::function<void()> in a comment\n"
      "const char* doc = \"getenv system_clock lanes_\";\n"
      "const char* raw = R\"(std::unordered_map<int, int> ghost_;)\";\n";
  EXPECT_TRUE(lint_source("src/sim/fixture.cpp", src).empty());
}

// The self-gate: the real tree, linted exactly as tools/ci.sh lints it,
// must be clean. Every suppression in src/ carries its reason; a new
// violation (or a new bare allow) fails this test before it fails CI.
TEST(LintRepo, TreeIsClean) {
  const auto findings = lint_tree(SPLICER_LINT_REPO_ROOT,
                                  {"src", "tools", "bench", "examples"});
  for (const Finding& f : findings) {
    ADD_FAILURE() << f.file << ":" << f.line << ": [" << f.rule << "] "
                  << f.message;
  }
}

}  // namespace
}  // namespace splicer::lint
