#include "submodular/checks.h"
#include "submodular/double_greedy.h"
#include "submodular/greedy_descent.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace splicer::submodular {
namespace {

/// Cut function of a random graph: classic non-monotone submodular example.
SetFunction random_cut_function(std::size_t n, common::Rng& rng,
                                std::vector<std::pair<int, int>>& edges_out) {
  edges_out.clear();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.bernoulli(0.5)) edges_out.emplace_back(static_cast<int>(i),
                                                     static_cast<int>(j));
    }
  }
  SetFunction f;
  f.ground_size = n;
  f.value = [&edges_out](const Subset& s) {
    double cut = 0.0;
    for (const auto& [a, b] : edges_out) {
      if (s[static_cast<std::size_t>(a)] != s[static_cast<std::size_t>(b)]) {
        cut += 1.0;
      }
    }
    return cut;
  };
  return f;
}

TEST(Subset, Helpers) {
  EXPECT_EQ(cardinality(empty_subset(5)), 0u);
  EXPECT_EQ(cardinality(full_subset(5)), 5u);
}

TEST(Checks, ModularIsSupermodularAndSubmodular) {
  // Linear (modular) functions satisfy Definition 2 with equality.
  SetFunction f;
  f.ground_size = 6;
  f.value = [](const Subset& s) {
    double total = 0.0;
    for (std::size_t i = 0; i < s.size(); ++i) total += s[i] ? double(i + 1) : 0.0;
    return total;
  };
  EXPECT_TRUE(is_supermodular_exhaustive(f));
}

TEST(Checks, CutFunctionIsNotSupermodular) {
  common::Rng rng(3);
  std::vector<std::pair<int, int>> edges;
  const auto f = random_cut_function(6, rng, edges);
  ASSERT_FALSE(edges.empty());
  EXPECT_FALSE(is_supermodular_exhaustive(f));
}

TEST(Checks, ProductOfComplementIsSupermodular) {
  // f(S) = |S|^2 is supermodular (increasing differences).
  SetFunction f;
  f.ground_size = 7;
  f.value = [](const Subset& s) {
    const double k = static_cast<double>(cardinality(s));
    return k * k;
  };
  EXPECT_TRUE(is_supermodular_exhaustive(f));
  common::Rng rng(4);
  EXPECT_TRUE(is_supermodular_sampled(f, rng, 500));
}

TEST(BruteForce, FindsMinimumAndMaximum) {
  SetFunction f;
  f.ground_size = 4;
  f.value = [](const Subset& s) {
    // min at {1,3}: encode by distance from target subset.
    double d = 0.0;
    const Subset target{0, 1, 0, 1};
    for (std::size_t i = 0; i < 4; ++i) d += s[i] != target[i] ? 1.0 : 0.0;
    return d;
  };
  const auto min = brute_force_minimum(f);
  EXPECT_EQ(min.subset, (Subset{0, 1, 0, 1}));
  EXPECT_DOUBLE_EQ(min.value, 0.0);
  const auto max = brute_force_maximum(f);
  EXPECT_DOUBLE_EQ(max.value, 4.0);
}

// Property: deterministic double greedy achieves >= 1/3 OPT and randomised
// achieves >= 1/4 OPT per run on non-negative submodular cut functions
// (theory: 1/3 deterministic, 1/2 expected randomised; per-run randomised
// can dip, so we assert the weaker per-run bound).
class DoubleGreedyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DoubleGreedyPropertyTest, ApproximationBoundsOnCutFunctions) {
  common::Rng rng(GetParam());
  std::vector<std::pair<int, int>> edges;
  const auto f = random_cut_function(9, rng, edges);
  const double opt = brute_force_maximum(f).value;
  if (opt == 0.0) return;  // empty graph

  const auto det = double_greedy(f);
  EXPECT_GE(det.value, opt / 3.0 - 1e-9);
  EXPECT_DOUBLE_EQ(det.value, f.value(det.subset));

  common::Rng greedy_rng(GetParam() ^ 0xabc);
  const auto rand = double_greedy_randomized(f, greedy_rng);
  EXPECT_GE(rand.value, opt / 4.0 - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DoubleGreedyPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

TEST(DoubleGreedy, OracleCallCountIsLinear) {
  SetFunction f;
  f.ground_size = 20;
  f.value = [](const Subset& s) { return static_cast<double>(cardinality(s)); };
  const auto result = double_greedy(f);
  // 2 initial + 2 per element.
  EXPECT_EQ(result.oracle_calls, 2u + 2u * 20u);
}

TEST(MinimizeSupermodular, QuadraticCardinalityMinimisedAtEmpty) {
  SetFunction f;
  f.ground_size = 8;
  f.value = [](const Subset& s) {
    const double k = static_cast<double>(cardinality(s));
    return (k - 0.0) * k;  // minimum at empty set, f = 0
  };
  const double f_ub = 64.0 + 1.0;
  const auto result = minimize_supermodular(f, f_ub);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
}

TEST(MinimizeSupermodular, ShiftedQuadraticMinimisedMidway) {
  // f = (k - 3)^2 over 8 elements: supermodular? (k-3)^2 = k^2 -6k +9:
  // k^2 supermodular, -6k modular => supermodular. Min at |S| = 3.
  SetFunction f;
  f.ground_size = 8;
  f.value = [](const Subset& s) {
    const double k = static_cast<double>(cardinality(s));
    return (k - 3.0) * (k - 3.0);
  };
  ASSERT_TRUE(is_supermodular_exhaustive(f));
  const auto result = minimize_supermodular(f, 26.0);
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_EQ(cardinality(result.subset), 3u);
}

TEST(GreedyDescent, ReachesLocalMinimum) {
  SetFunction f;
  f.ground_size = 6;
  f.value = [](const Subset& s) {
    const double k = static_cast<double>(cardinality(s));
    return (k - 2.0) * (k - 2.0);
  };
  const auto result = greedy_descent(f, full_subset(6));
  EXPECT_DOUBLE_EQ(result.value, 0.0);
  EXPECT_EQ(cardinality(result.subset), 2u);
  EXPECT_EQ(result.moves, 4u);
}

TEST(GreedyDescent, StartSizeMismatchThrows) {
  SetFunction f;
  f.ground_size = 3;
  f.value = [](const Subset&) { return 0.0; };
  EXPECT_THROW((void)greedy_descent(f, empty_subset(4)), std::invalid_argument);
}

}  // namespace
}  // namespace splicer::submodular
