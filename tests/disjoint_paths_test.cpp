#include "graph/disjoint_paths.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "graph/generators.h"

namespace splicer::graph {
namespace {

TEST(DisjointPaths, ShortestSetIsDisjointAndOrdered) {
  common::Rng rng(1);
  const Graph g = watts_strogatz(80, 8, 0.2, rng);
  const auto paths = edge_disjoint_shortest_paths(g, 0, 40, 5);
  EXPECT_GE(paths.size(), 2u);
  EXPECT_TRUE(paths_edge_disjoint(paths));
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_LE(paths[i - 1].length, paths[i].length);
  }
  for (const auto& p : paths) EXPECT_TRUE(is_valid_path(g, p));
}

TEST(DisjointPaths, WidestSetIsDisjoint) {
  common::Rng rng(2);
  Graph g = watts_strogatz(80, 8, 0.2, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) g.set_capacity(e, rng.uniform(1, 500));
  const auto paths = edge_disjoint_widest_paths(g, 0, 40, 5);
  EXPECT_GE(paths.size(), 2u);
  EXPECT_TRUE(paths_edge_disjoint(paths));
  // Successively removed widest paths have non-increasing bottlenecks.
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].bottleneck(g), paths[i].bottleneck(g));
  }
}

TEST(DisjointPaths, CountBoundedByMinCut) {
  // Two vertex-disjoint routes only -> at most 2 edge-disjoint paths.
  Graph g(6);
  g.add_edge(0, 1);
  g.add_edge(1, 5);
  g.add_edge(0, 2);
  g.add_edge(2, 5);
  g.add_edge(1, 2);  // cross edge does not add a third route
  const auto paths = edge_disjoint_shortest_paths(g, 0, 5, 5);
  EXPECT_EQ(paths.size(), 2u);
}

TEST(DisjointPaths, EmptyWhenDisconnected) {
  Graph g(4);
  g.add_edge(0, 1);
  EXPECT_TRUE(edge_disjoint_shortest_paths(g, 0, 3, 3).empty());
  EXPECT_TRUE(edge_disjoint_widest_paths(g, 0, 3, 3).empty());
}

TEST(SelectPaths, DispatchesAllFourTypes) {
  common::Rng rng(3);
  Graph g = watts_strogatz(60, 6, 0.2, rng);
  for (EdgeId e = 0; e < g.edge_count(); ++e) g.set_capacity(e, rng.uniform(1, 500));
  for (const auto type :
       {PathType::kShortest, PathType::kHeuristic, PathType::kEdgeDisjointWidest,
        PathType::kEdgeDisjointShortest}) {
    const auto paths = select_paths(g, 5, 30, 3, type);
    EXPECT_FALSE(paths.empty()) << to_string(type);
    for (const auto& p : paths) {
      EXPECT_TRUE(is_valid_path(g, p)) << to_string(type);
      EXPECT_EQ(p.source(), 5u);
      EXPECT_EQ(p.target(), 30u);
    }
  }
}

TEST(SelectPaths, DisjointVariantsAreDisjointButKspMayShare) {
  common::Rng rng(4);
  const Graph g = watts_strogatz(60, 6, 0.2, rng);
  EXPECT_TRUE(paths_edge_disjoint(
      select_paths(g, 2, 33, 4, PathType::kEdgeDisjointWidest)));
  EXPECT_TRUE(paths_edge_disjoint(
      select_paths(g, 2, 33, 4, PathType::kEdgeDisjointShortest)));
  // KSP paths typically share edges; just confirm they exist.
  EXPECT_FALSE(select_paths(g, 2, 33, 4, PathType::kShortest).empty());
}

TEST(PathTypeNames, Strings) {
  EXPECT_STREQ(to_string(PathType::kShortest), "KSP");
  EXPECT_STREQ(to_string(PathType::kHeuristic), "Heuristic");
  EXPECT_STREQ(to_string(PathType::kEdgeDisjointWidest), "EDW");
  EXPECT_STREQ(to_string(PathType::kEdgeDisjointShortest), "EDS");
}

TEST(PathsEdgeDisjoint, DetectsSharing) {
  Path a{{0, 1}, {7}, 1.0};
  Path b{{2, 3}, {7}, 1.0};
  EXPECT_FALSE(paths_edge_disjoint({a, b}));
  Path c{{2, 3}, {8}, 1.0};
  EXPECT_TRUE(paths_edge_disjoint({a, c}));
}

}  // namespace
}  // namespace splicer::graph
